// Quickstart: the SoftRate loop in its smallest form.
//
// A frame travels through the real PHY chain over a fading channel; the
// receiver computes SoftPHY hints with the soft-output BCJR decoder,
// estimates the interference-free channel BER (Equations 3 and 4 of the
// paper), and the SoftRate sender uses that one number to pick the next
// transmit bit rate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/phy"
	"softrate/internal/softphy"
)

func main() {
	// A walking-speed Rayleigh fading channel around 14 dB mean SNR.
	rng := rand.New(rand.NewSource(42))
	link := &phy.Link{
		Cfg:   phy.DefaultConfig(),
		Model: channel.NewStaticModel(14, channel.NewRayleigh(rng, 40, 0)),
		Rng:   rand.New(rand.NewSource(43)),
	}

	// The SoftRate sender: starts at 6 Mbps, adapts on per-frame BER
	// feedback.
	sr := core.New(core.DefaultConfig())
	detector := softphy.DefaultDetector()

	payload := make([]byte, 700)
	rng.Read(payload)

	fmt.Println("frame  rate          SNRest   est BER    true BER   delivered  next rate")
	t := 0.0
	for i := 0; i < 25; i++ {
		r := sr.CurrentRate()
		tx := phy.Transmit(link.Cfg, phy.Frame{
			Header:  []byte{0x01, 0x02},
			Payload: payload,
			Rate:    r,
		})
		rx := link.Deliver(tx, t, nil)
		t += 0.02 // frames every 20 ms

		if !rx.Detected {
			// No preamble, no feedback: a silent loss.
			sr.OnSilentLoss()
			fmt.Printf("%5d  %-12s  (silent loss)                               %s\n",
				i, r.Name(), sr.CurrentRate().Name())
			continue
		}

		// Receiver side: hints -> per-symbol BERs -> interference-free
		// BER estimate, echoed to the sender in the link-layer ACK.
		analysis := softphy.Analyze(rx.Hints, softphy.BlockBits(rx.InfoBitsPerSymbol), detector)
		sr.OnFeedback(core.Feedback{
			RateIndex: r.Index,
			BER:       analysis.InterferenceFreeBER,
			Collision: analysis.Collision,
		})

		fmt.Printf("%5d  %-12s  %5.1fdB  %-9.2e  %-9.2e  %-9v  %s\n",
			i, r.Name(), rx.SNREstDB, analysis.InterferenceFreeBER, rx.TrueBER,
			rx.PayloadOK, sr.CurrentRate().Name())
	}
}
