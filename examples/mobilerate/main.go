// Mobilerate: the paper's motivating scenario — a user walks away from the
// access point while uploading over TCP (§6.2).
//
// The example builds a walking-mobility channel (path loss + Jakes
// fading), captures per-rate link traces exactly as the evaluation
// methodology prescribes (§6.1), then runs the full stack — TCP over
// CSMA/CA over the trace-driven PHY — once per rate adaptation algorithm
// and reports goodput, TCP recovery events, and rate-selection accuracy
// against the omniscient oracle.
//
// Run with: go run ./examples/mobilerate
package main

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/netsim"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

func main() {
	const duration = 5.0

	// One walking link per direction (the paper uses independent traces
	// for the two unidirectional links).
	mkTrace := func(seed int64) *trace.LinkTrace {
		rng := rand.New(rand.NewSource(seed))
		model := channel.NewWalkingModel(rng,
			channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
			channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2})
		return trace.Generate(trace.GenConfig{Model: model, Duration: duration, Seed: seed + 7})
	}
	fwd := []*trace.LinkTrace{mkTrace(1)}
	rev := []*trace.LinkTrace{mkTrace(2)}

	lossless := make([]float64, len(rate.Evaluation()))
	for i, r := range rate.Evaluation() {
		lossless[i] = ofdm.Simulation.PayloadAirtime(1400, r, false)
	}

	algorithms := []struct {
		name    string
		factory netsim.AdapterFactory
	}{
		{"Omniscient", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(&ratectl.Omniscient{Oracle: f.BestRateAt})
		}},
		{"SoftRate", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.NewSoftRate(core.DefaultConfig())
		}},
		{"SNR-trained", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			th := ratectl.TrainThresholds(f.TrainingSamples(), f.NumRates(), 0.9)
			return ctl.Wrap(ratectl.NewSNRBased(th, "SNR (trained)"))
		}},
		{"RRAA", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewRRAA(rate.Evaluation(), lossless, true))
		}},
		{"SampleRate", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSampleRate(rate.Evaluation(), lossless, rand.New(rand.NewSource(rng.Int63()))))
		}},
	}

	fmt.Printf("Walking upload, %g s simulated, one TCP flow\n\n", duration)
	fmt.Println("algorithm     goodput   TCP retx  timeouts  under/accurate/over vs oracle")
	for _, alg := range algorithms {
		cfg := netsim.DefaultConfig()
		cfg.Duration = duration
		cfg.RecordTx = true
		cfg.Seed = 99
		res := netsim.RunUplink(cfg, fwd, rev, alg.factory)

		var under, ok, over int
		for _, r := range res.ClientStats[0].Records {
			switch {
			case r.RateIndex < r.OracleIndex:
				under++
			case r.RateIndex == r.OracleIndex:
				ok++
			default:
				over++
			}
		}
		total := under + ok + over
		fmt.Printf("%-12s  %5.2f Mbps  %6d  %8d  %5.1f%% / %5.1f%% / %5.1f%%\n",
			alg.name,
			res.AggregateBps/1e6,
			res.Flows[0].Retransmits,
			res.Flows[0].Timeouts,
			pct(under, total), pct(ok, total), pct(over, total))
	}
	fmt.Println("\nThe shape to look for (paper §6.2): SoftRate tracks the omniscient")
	fmt.Println("oracle; frame-level protocols lag the fades and lose TCP windows.")
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
