// Hiddenterminal: why collision losses must not drive the bit rate down
// (§3.2, §6.4).
//
// Two stations that cannot carrier-sense each other upload through one
// access point. Every loss they see is a collision, not attenuation — the
// right response is to keep the rate and let backoff resolve contention.
// The example contrasts SoftRate (whose receiver excises interference from
// the BER estimate) with RRAA (which reacts to short-term frame loss and
// spirals down), and demonstrates the receiver-side detector on a single
// collided frame.
//
// Run with: go run ./examples/hiddenterminal
package main

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/netsim"
	"softrate/internal/ofdm"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
	"softrate/internal/softphy"
	"softrate/internal/trace"
)

func main() {
	part1DetectorDemo()
	part2ThroughputContest()
}

// part1DetectorDemo collides one frame mid-air and shows the per-symbol
// BER series the receiver computes, the detector verdict, and the excised
// interference-free BER.
func part1DetectorDemo() {
	fmt.Println("--- Part 1: one collided frame through the real PHY ---")
	cfg := phy.DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 600)
	rng.Read(payload)
	link := &phy.Link{Cfg: cfg, Model: channel.NewStaticModel(16, nil), Rng: rng}
	tx := phy.Transmit(cfg, phy.Frame{Header: []byte{1}, Payload: payload, Rate: rate.ByIndex(3)})

	T := cfg.Mode.SymbolTime()
	n := float64(tx.NumSymbols())
	burst := phy.Burst{Start: 0.4 * n * T, End: 0.7 * n * T, Power: channel.DBToLinear(14)}
	rx := link.Deliver(tx, 0, []phy.Burst{burst})

	a := softphy.Analyze(rx.Hints, softphy.BlockBits(rx.InfoBitsPerSymbol), softphy.DefaultDetector())
	fmt.Printf("frame delivered: %v, true BER %.2e\n", rx.PayloadOK, rx.TrueBER)
	fmt.Printf("whole-frame estimated BER:      %.2e\n", a.FrameBER)
	fmt.Printf("interference detected:          %v (excised %d/%d symbols)\n",
		a.Collision, excised(a), len(a.SymbolBERs))
	fmt.Printf("interference-free BER estimate: %.2e\n", a.InterferenceFreeBER)
	fmt.Println("-> the sender keeps its rate: the channel itself is fine")
	fmt.Println()
}

func excised(a *softphy.Analysis) int {
	n := 0
	for _, e := range a.Excised {
		if e {
			n++
		}
	}
	return n
}

// part2ThroughputContest runs two hidden-terminal TCP uploads under
// SoftRate and under RRAA and compares aggregate goodput and the rates the
// stations ended up using.
func part2ThroughputContest() {
	fmt.Println("--- Part 2: two hidden terminals, TCP uploads, 5 s ---")
	const duration = 5.0
	mk := func(seed int64) *trace.LinkTrace {
		return trace.Generate(trace.GenConfig{
			Model:    channel.NewStaticModel(20, nil), // clean static links
			Duration: duration,
			Seed:     seed,
		})
	}
	fwd := []*trace.LinkTrace{mk(11), mk(12)}
	rev := []*trace.LinkTrace{mk(13), mk(14)}

	lossless := make([]float64, len(rate.Evaluation()))
	for i, r := range rate.Evaluation() {
		lossless[i] = ofdm.Simulation.PayloadAirtime(1400, r, false)
	}

	run := func(name string, factory netsim.AdapterFactory) {
		cfg := netsim.DefaultConfig()
		cfg.Duration = duration
		cfg.CSProb = 0 // perfect hidden terminals
		cfg.RecordTx = true
		cfg.Seed = 21
		res := netsim.RunUplink(cfg, fwd, rev, factory)
		hist := map[int]int{}
		total := 0
		for _, st := range res.ClientStats {
			for _, r := range st.Records {
				hist[r.RateIndex]++
				total++
			}
		}
		fmt.Printf("%-9s aggregate %5.2f Mbps, rate usage:", name, res.AggregateBps/1e6)
		for ri := 0; ri < 6; ri++ {
			if hist[ri] > 0 {
				fmt.Printf(" %s=%d%%", rate.Evaluation()[ri].Name(), 100*hist[ri]/total)
			}
		}
		fmt.Println()
	}

	run("SoftRate", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
		return ctl.NewSoftRate(core.DefaultConfig())
	})
	run("RRAA", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
		return ctl.Wrap(ratectl.NewRRAA(rate.Evaluation(), lossless, true))
	})
	fmt.Println("\nThe shape to look for (paper §6.4): RRAA underselects and loses")
	fmt.Println("throughput; SoftRate stays at the channel's true best rate.")
}
