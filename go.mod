module softrate

go 1.24
