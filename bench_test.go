// Package softrate's root-level benchmarks regenerate every table and
// figure of the paper's evaluation, one bench per artifact:
//
//	go test -bench=Fig13 -benchtime=1x .
//	go test -bench=. -benchmem -benchtime=1x .
//
// Each benchmark runs the corresponding experiment harness at a reduced
// sample scale (shape-preserving; pass -scale via cmd/softrate-experiments
// for paper-scale runs) and prints the regenerated table on the first
// iteration so `go test -bench` output doubles as a results report.
package softrate

import (
	"os"
	"runtime"
	"sync"
	"testing"

	"softrate/internal/experiments"
)

// benchScale keeps the full bench suite tractable while preserving every
// shape the paper reports.
const benchScale = 0.2

var printOnce sync.Map

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, experiments.Options{Scale: benchScale, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
			b.StopTimer()
			for _, t := range tables {
				t.Fprint(os.Stdout)
			}
			b.StartTimer()
		}
	}
}

// ---- Section 5: SoftPHY evaluation ----

// BenchmarkFig1SNRTrace regenerates Figure 1: SNR/BER fluctuation over a
// walking-speed fading channel.
func BenchmarkFig1SNRTrace(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3HintPatterns regenerates Figure 3: SoftPHY hint patterns
// for collision vs fading losses.
func BenchmarkFig3HintPatterns(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkTable1SilentLoss regenerates Table 1: fraction of frames losing
// both preamble and postamble under hidden-terminal collisions.
func BenchmarkTable1SilentLoss(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkFig4SilentLossRuns regenerates Figure 4: CCDF of consecutive
// silent-loss runs.
func BenchmarkFig4SilentLossRuns(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable2RateTable regenerates Table 2: the 802.11a/g rate set.
func BenchmarkTable2RateTable(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkTable3Modes regenerates Table 3: OFDM prototype modes.
func BenchmarkTable3Modes(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkFig5BERvsBER regenerates Figure 5: BER at QPSK 3/4 vs BER at
// other rates (the §3.3 prediction observations).
func BenchmarkFig5BERvsBER(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig7SoftPHYBER regenerates Figure 7(a,b,c): SoftPHY- and
// SNR-based BER estimation in a static channel.
func BenchmarkFig7SoftPHYBER(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8MobileSoftPHY regenerates Figure 8: SoftPHY BER estimation
// under mobility.
func BenchmarkFig8MobileSoftPHY(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9MobileSNR regenerates Figure 9: the SNR-BER curve shift
// under mobility.
func BenchmarkFig9MobileSNR(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10InterfererPower regenerates Figure 10: interference
// detection accuracy vs interferer power.
func BenchmarkFig10InterfererPower(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11InterfererRate regenerates Figure 11: interference
// detection accuracy vs transmit bit rate.
func BenchmarkFig11InterfererRate(b *testing.B) { runExperiment(b, "fig11") }

// ---- Section 6: SoftRate evaluation ----

// BenchmarkFig13SlowFadingTCP regenerates Figure 13: aggregate TCP
// throughput vs number of clients over slow-fading mobile channels.
func BenchmarkFig13SlowFadingTCP(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14RateAccuracy regenerates Figure 14: rate selection
// accuracy in the mobile channel.
func BenchmarkFig14RateAccuracy(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15Convergence regenerates Figure 15: RRAA and SampleRate
// convergence on an alternating synthetic channel.
func BenchmarkFig15Convergence(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16FastFading regenerates Figure 16: normalized TCP
// throughput vs channel coherence time.
func BenchmarkFig16FastFading(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Interference regenerates Figure 17: aggregate TCP
// throughput vs carrier sense probability.
func BenchmarkFig17Interference(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkFig18InterferenceAccuracy regenerates Figure 18: rate selection
// accuracy at Pr[CS]=0.8.
func BenchmarkFig18InterferenceAccuracy(b *testing.B) { runExperiment(b, "fig18") }

// ---- Design ablations (DESIGN.md §4) ----

// BenchmarkAblationDecoder compares log-MAP vs max-log hints.
func BenchmarkAblationDecoder(b *testing.B) { runExperiment(b, "ablation-decoder") }

// BenchmarkAblationExcision toggles interference excision.
func BenchmarkAblationExcision(b *testing.B) { runExperiment(b, "ablation-excision") }

// BenchmarkAblationJumps compares 1- vs 2-level rate jumps.
func BenchmarkAblationJumps(b *testing.B) { runExperiment(b, "ablation-jumps") }

// BenchmarkAblationHARQ contrasts frame-ARQ and hybrid-ARQ thresholds.
func BenchmarkAblationHARQ(b *testing.B) { runExperiment(b, "ablation-harq") }

// BenchmarkAblationSilentRuns sweeps the silent-loss run threshold.
func BenchmarkAblationSilentRuns(b *testing.B) { runExperiment(b, "ablation-silent") }

// ---- Trial-sharded engine scaling ----

// runExperimentWorkers runs one experiment at an explicit worker count,
// for before/after comparison of the engine's trial fan-out:
//
//	go test -bench=Workers -benchtime=1x .
func runExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, experiments.Options{Scale: benchScale, Seed: 1, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Workers1 runs the heaviest harness (90 TCP simulations +
// 30 trace generations) strictly serially.
func BenchmarkFig13Workers1(b *testing.B) { runExperimentWorkers(b, "fig13", 1) }

// BenchmarkFig13WorkersNumCPU runs it with one worker per CPU; on
// multicore hardware the wall-clock ratio to Workers1 is the engine's
// speedup.
func BenchmarkFig13WorkersNumCPU(b *testing.B) {
	runExperimentWorkers(b, "fig13", runtime.NumCPU())
}

// BenchmarkFig7Workers1 runs the 20-point SNR sweep serially.
func BenchmarkFig7Workers1(b *testing.B) { runExperimentWorkers(b, "fig7", 1) }

// BenchmarkFig7WorkersNumCPU runs the sweep one trial per CPU.
func BenchmarkFig7WorkersNumCPU(b *testing.B) {
	runExperimentWorkers(b, "fig7", runtime.NumCPU())
}
