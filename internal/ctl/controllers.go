package ctl

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"softrate/internal/core"
	"softrate/internal/ofdm"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
)

// nominalFrameBytes is the frame size behind every serving-configuration
// constant: the paper's 1400-byte evaluation frame.
const nominalFrameBytes = 1400

// servingWindowCap bounds SampleRate's per-rate sample ring in the
// serving configuration: the averaging metric sees at most the last 16
// transmissions per rate, which keeps the relocatable snapshot at a fixed
// ~1.7 KB instead of the simulators' unbounded in-window sample set.
const servingWindowCap = 16

var (
	nominalOnce     sync.Once
	nominalAirtime  []float64
	servingSNROnce  sync.Once
	servingSNRThres []float64
)

// NominalAirtimes returns the lossless airtime of a 1400-byte frame at
// each evaluation rate in simulation mode — the constant vector SampleRate
// and RRAA derive their thresholds from, and the virtual-clock fallback
// for feedback that carries no measured airtime.
func NominalAirtimes() []float64 {
	nominalOnce.Do(func() {
		rates := rate.Evaluation()
		nominalAirtime = make([]float64, len(rates))
		for i, r := range rates {
			nominalAirtime[i] = ofdm.Simulation.PayloadAirtime(nominalFrameBytes, r, false)
		}
	})
	out := make([]float64, len(nominalAirtime))
	copy(out, nominalAirtime)
	return out
}

// ServingSNRThresholds returns the registry's SNR/CHARM threshold vector:
// for each evaluation rate, the lowest SNR (0.5 dB grid) at which the
// calibrated PHY model predicts at least 90% delivery of a 1400-byte
// frame over a flat channel. This is the serving-side stand-in for the
// per-trace training the simulators perform (§6.1): deterministic,
// derived from the same embedded BERModel the trace generator uses, and
// therefore "trained on the right environment" for AWGN-like links.
func ServingSNRThresholds() []float64 {
	servingSNROnce.Do(func() {
		rates := rate.Evaluation()
		bits := float64(nominalFrameBytes * 8)
		servingSNRThres = make([]float64, len(rates))
		for i := range rates {
			th := math.Inf(1)
			for s := 30.0; s >= -2; s -= 0.5 {
				p := math.Exp(-phy.DefaultBERModel.LambdaAt(i, s) * bits)
				if p < 0.9 {
					break
				}
				th = s
			}
			servingSNRThres[i] = th
		}
		if math.IsInf(servingSNRThres[0], 1) {
			servingSNRThres[0] = -30 // there must always be a usable rate
		}
		for i := 1; i < len(servingSNRThres); i++ {
			if servingSNRThres[i] < servingSNRThres[i-1] {
				servingSNRThres[i] = servingSNRThres[i-1]
			}
		}
	})
	out := make([]float64, len(servingSNRThres))
	copy(out, servingSNRThres)
	return out
}

// --- SoftRate ---

// SoftRate adapts core.SoftRate to the Controller contract. Its snapshot
// is the same 8 bytes as core.State (rate index and silent-loss run, both
// int32 little-endian), so the store's SoftRate path stays as small and
// as fast as it was when the store knew only SoftRate.
type SoftRate struct {
	*ratectl.SoftRateAdapter
}

// NewSoftRate builds a SoftRate controller with the given core config.
func NewSoftRate(cfg core.Config) *SoftRate {
	return &SoftRate{ratectl.NewSoftRate(cfg)}
}

// softRateStateBytes is core.State encoded: RateIndex i32, SilentRun i32.
const softRateStateBytes = 8

// Apply implements Controller.
func (c *SoftRate) Apply(fb Feedback) int {
	return c.SR.Apply(fb.Kind, fb.RateIndex, fb.BER)
}

// StateLen implements Controller.
func (c *SoftRate) StateLen() int { return softRateStateBytes }

// EncodeState implements Controller.
func (c *SoftRate) EncodeState(dst []byte) {
	st := c.SR.Snapshot()
	binary.LittleEndian.PutUint32(dst[0:4], uint32(st.RateIndex))
	binary.LittleEndian.PutUint32(dst[4:8], uint32(st.SilentRun))
}

// DecodeState implements Controller.
func (c *SoftRate) DecodeState(src []byte) error {
	if len(src) < softRateStateBytes {
		return fmt.Errorf("ctl: SoftRate state is %d bytes, need %d", len(src), softRateStateBytes)
	}
	c.SR.Restore(core.State{
		RateIndex: int32(binary.LittleEndian.Uint32(src[0:4])),
		SilentRun: int32(binary.LittleEndian.Uint32(src[4:8])),
	})
	return nil
}

// --- clocked: glue for the frame-level ratectl algorithms ---

// stateCodec is the snapshot surface the ratectl algorithms implement.
type stateCodec interface {
	StateLen() int
	EncodeState(dst []byte)
	DecodeState(src []byte) error
}

// clocked lifts a ratectl.Adapter into a Controller. The frame-level
// algorithms reason in transmission time (SampleRate's window, RRAA's
// ordering), which the decision service does not have — so clocked keeps
// a per-link virtual clock advanced by each frame's airtime (measured
// when the feedback carries it, the rate's nominal airtime otherwise) and
// snapshots the clock alongside the algorithm state, making window
// arithmetic relocate with the link. codec is nil for stateless adapters
// (Fixed, Omniscient): their snapshot is just the 8-byte clock.
type clocked struct {
	a       ratectl.Adapter
	codec   stateCodec
	nominal []float64
	clock   float64
}

// Name implements Controller.
func (c *clocked) Name() string { return c.a.Name() }

// NextRate implements Controller.
func (c *clocked) NextRate(now float64) int { return c.a.NextRate(now) }

// WantRTS implements Controller.
func (c *clocked) WantRTS() bool { return c.a.WantRTS() }

// OnResult implements Controller. Simulator-driven results carry their
// own timestamps; the virtual clock tracks them so a controller moved
// between the two worlds stays monotonic.
func (c *clocked) OnResult(res Result) {
	if res.Time > c.clock {
		c.clock = res.Time
	}
	c.a.OnResult(res)
}

// resultFor maps one service-side feedback to the simulator Result the
// wrapped algorithm consumes, advancing the given virtual clock by the
// frame's airtime (measured when the feedback carries it, the rate's
// nominal airtime otherwise). Both Apply and ApplyInPlace go through
// this one mapping, so the two serving paths cannot diverge.
func (c *clocked) resultFor(fb Feedback, clock float64) (Result, float64) {
	at := fb.Airtime
	if !(at > 0) || math.IsInf(at, 0) {
		ri := fb.RateIndex
		if ri < 0 {
			ri = 0
		}
		if ri >= len(c.nominal) {
			ri = len(c.nominal) - 1
		}
		at = c.nominal[ri]
	}
	clock += at
	res := Result{
		Time:      clock,
		RateIndex: fb.RateIndex,
		Airtime:   at,
		SNRdB:     math.NaN(),
	}
	switch fb.Kind {
	case core.KindBER:
		res.FeedbackReceived = true
		res.BER = fb.BER
		res.SNRdB = fb.SNRdB
		res.Delivered = fb.Delivered
	case core.KindCollision:
		res.FeedbackReceived = true
		res.Collision = true
		res.BER = fb.BER
		res.SNRdB = fb.SNRdB
	case core.KindPostamble:
		res.FeedbackReceived = true
		res.PostambleOnly = true
	default:
		// Silent loss (and unknown kinds, read conservatively): no
		// feedback of any kind.
	}
	return res, clock
}

// Apply implements Controller.
func (c *clocked) Apply(fb Feedback) int {
	res, clock := c.resultFor(fb, c.clock)
	c.clock = clock
	c.a.OnResult(res)
	return c.a.NextRate(c.clock)
}

// clockBytes prefixes every clocked snapshot: the virtual clock as f64.
const clockBytes = 8

// inPlaceCodec is the codec-side surface of the in-slab fast path:
// OnResult + NextRate executed directly against an encoded snapshot (sans
// the clock prefix, which clocked manages itself).
type inPlaceCodec interface {
	InPlaceOK() bool
	ApplyEncoded(state []byte, res Result) (int, bool)
}

// InPlaceOK implements InPlace: true when the wrapped algorithm's codec
// can run against its encoded state (currently SampleRate in the serving
// configuration — bounded window, relocatable SplitMix PRNG).
func (c *clocked) InPlaceOK() bool {
	ip, ok := c.codec.(inPlaceCodec)
	return ok && ip.InPlaceOK()
}

// ApplyInPlace implements InPlace: Apply's exact mapping (via resultFor),
// but the clock is read from and written to the snapshot and the
// algorithm state never leaves the buffer.
func (c *clocked) ApplyInPlace(state []byte, fb Feedback) (int, bool) {
	ip, ok := c.codec.(inPlaceCodec)
	if !ok || len(state) < c.StateLen() {
		return 0, false
	}
	res, clock := c.resultFor(fb, math.Float64frombits(binary.LittleEndian.Uint64(state[0:8])))
	ri, ok := ip.ApplyEncoded(state[clockBytes:], res)
	if !ok {
		return 0, false // state untouched; caller recovers via DecodeState
	}
	binary.LittleEndian.PutUint64(state[0:8], math.Float64bits(clock))
	return ri, true
}

// StateLen implements Controller.
func (c *clocked) StateLen() int {
	n := clockBytes
	if c.codec != nil {
		n += c.codec.StateLen()
	}
	return n
}

// EncodeState implements Controller.
func (c *clocked) EncodeState(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], math.Float64bits(c.clock))
	if c.codec != nil {
		c.codec.EncodeState(dst[clockBytes:])
	}
}

// DecodeState implements Controller.
func (c *clocked) DecodeState(src []byte) error {
	if len(src) < c.StateLen() {
		return fmt.Errorf("ctl: %s state is %d bytes, need %d", c.Name(), len(src), c.StateLen())
	}
	c.clock = math.Float64frombits(binary.LittleEndian.Uint64(src[0:8]))
	if c.codec != nil {
		return c.codec.DecodeState(src[clockBytes:])
	}
	return nil
}

// Wrap lifts any ratectl.Adapter into a Controller. The frame-level
// algorithm types get their real relocatable snapshot; unknown adapters
// (Fixed, Omniscient, experiment oracles) get a clock-only snapshot —
// fine for simulators, which never relocate, and honest about the fact
// that an oracle closure cannot be serialized. A value that already is a
// Controller passes through unchanged.
func Wrap(a ratectl.Adapter) Controller {
	switch v := a.(type) {
	case Controller:
		return v
	case *ratectl.SoftRateAdapter:
		return &SoftRate{v}
	case *ratectl.SampleRate:
		return &clocked{a: v, codec: srCodec{v}, nominal: v.LosslessAirtime}
	case *ratectl.RRAA:
		return &clocked{a: v, codec: v, nominal: NominalAirtimes()}
	case *ratectl.SNRBased:
		return &clocked{a: v, codec: v, nominal: NominalAirtimes()}
	default:
		return &clocked{a: a, nominal: NominalAirtimes()}
	}
}

// srCodec guards SampleRate's snapshot surface: an unbounded instance
// (WindowCap 0, the simulator configuration) has no fixed state width, so
// it is treated as snapshot-less rather than letting StateLen panic deep
// inside a store.
type srCodec struct{ s *ratectl.SampleRate }

func (c srCodec) StateLen() int {
	if c.s.WindowCap <= 0 {
		return 0
	}
	return c.s.StateLen()
}

func (c srCodec) EncodeState(dst []byte) {
	if c.s.WindowCap > 0 {
		c.s.EncodeState(dst)
	}
}

func (c srCodec) DecodeState(src []byte) error {
	if c.s.WindowCap > 0 {
		return c.s.DecodeState(src)
	}
	return nil
}

func (c srCodec) InPlaceOK() bool { return c.s.InPlaceOK() }

func (c srCodec) ApplyEncoded(state []byte, res Result) (int, bool) {
	return c.s.ApplyEncoded(state, res)
}

// --- registry ---

func init() {
	nominal := NominalAirtimes
	Register(Spec{
		ID: AlgoSoftRate, Name: "softrate", StateLen: softRateStateBytes,
		New: func() Controller { return NewSoftRate(core.DefaultConfig()) },
	})
	srLen := clockBytes + 16 + len(rate.Evaluation())*(2+servingWindowCap*17)
	Register(Spec{
		ID: AlgoSampleRate, Name: "samplerate", StateLen: srLen,
		New: func() Controller {
			s := ratectl.NewSampleRate(rate.Evaluation(), nominal(), ratectl.NewSplitMix(1))
			s.WindowCap = servingWindowCap
			return &clocked{a: s, codec: srCodec{s}, nominal: s.LosslessAirtime}
		},
	})
	Register(Spec{
		ID: AlgoRRAA, Name: "rraa", StateLen: clockBytes + 8,
		New: func() Controller {
			// No adaptive RTS in the serving configuration: the decision
			// service answers rates, the sender owns its RTS policy.
			r := ratectl.NewRRAA(rate.Evaluation(), nominal(), false)
			return &clocked{a: r, codec: r, nominal: nominal()}
		},
	})
	Register(Spec{
		ID: AlgoSNR, Name: "snr", StateLen: clockBytes + 12,
		New: func() Controller {
			s := ratectl.NewSNRBased(ServingSNRThresholds(), "SNR")
			return &clocked{a: s, codec: s, nominal: nominal()}
		},
	})
	Register(Spec{
		ID: AlgoCHARM, Name: "charm", StateLen: clockBytes + 12,
		New: func() Controller {
			s := ratectl.NewCHARM(ServingSNRThresholds())
			return &clocked{a: s, codec: s, nominal: nominal()}
		},
	})
}
