// Package ctl defines the relocatable rate-controller contract that
// unifies the repository's two controller worlds: the simulator-facing
// ratectl.Adapter algorithms of §6.1 (SampleRate, RRAA, the SNR-based
// schemes) and the serving-stack core.SoftRate controller behind
// linkstore/server/softrated. A Controller is an Adapter that can
// additionally (a) consume one service-side Feedback and answer with the
// next rate in a single call, and (b) snapshot and restore its complete
// dynamic state as a fixed number of bytes — so a store can hold millions
// of per-link states and rebuild any algorithm's controller on demand,
// exactly as it always could for SoftRate's 8-byte State.
//
// The package also keeps the algorithm registry: each servable algorithm
// has a stable one-byte ID (part of the softrated v2 wire protocol), a
// name for CLI flags, a fixed state width, and a constructor producing the
// canonical serving configuration. Stores, the wire codec, and the load
// generator all resolve algorithms through it.
package ctl

import (
	"fmt"
	"sort"

	"softrate/internal/core"
	"softrate/internal/ratectl"
)

// Result aliases ratectl.Result: every Controller is also a full
// simulator-side Adapter, so the MAC can drive served algorithms and the
// service can host simulated ones through one type.
type Result = ratectl.Result

// Feedback is one frame's worth of sender-side information, the superset
// every §6.1 algorithm needs: SoftRate reads Kind/RateIndex/BER,
// SampleRate reads Airtime/Delivered, RRAA reads Delivered, the SNR
// schemes read SNRdB. Fields an algorithm does not use are ignored — this
// mirrors reality, where the information exists at the receiver and each
// protocol chooses which part is fed back.
type Feedback struct {
	// Kind is the §3.2 outcome class (BER, collision, silent, postamble).
	Kind core.FeedbackKind
	// RateIndex is the rate the frame was sent at.
	RateIndex int
	// BER is the interference-free BER estimate (KindBER/KindCollision).
	BER float64
	// SNRdB is the receiver's SNR estimate; NaN when unknown (v1 wire
	// records carry none). Ignored for kinds without a received preamble.
	SNRdB float64
	// Airtime is the transmission's airtime in seconds; 0 means unknown
	// and lets the controller substitute the rate's nominal airtime.
	Airtime float64
	// Delivered reports whether the frame body arrived intact.
	Delivered bool
}

// Controller is a relocatable per-link rate controller. It is a full
// simulator Adapter (NextRate/WantRTS/OnResult drive the MAC) plus the
// decision-service surface: Apply for one-call feedback→rate, and a
// fixed-width binary snapshot of the dynamic state.
type Controller interface {
	// Name identifies the algorithm in experiment output and logs.
	Name() string
	// NextRate returns the rate index to use for the next frame.
	NextRate(now float64) int
	// WantRTS reports whether the next frame should use RTS/CTS.
	WantRTS() bool
	// OnResult feeds back the outcome of a simulated transmission.
	OnResult(res Result)

	// Apply consumes one service-side feedback and returns the rate index
	// for the link's next frame.
	Apply(fb Feedback) int
	// StateLen is the snapshot width in bytes — fixed per configuration,
	// never a function of the dynamic state.
	StateLen() int
	// EncodeState writes the dynamic state into dst[:StateLen()].
	EncodeState(dst []byte)
	// DecodeState overwrites the dynamic state from src[:StateLen()]. A
	// Decode → Apply → Encode cycle through any Controller built by the
	// same constructor is byte-identical in its decisions to a long-lived
	// instance.
	DecodeState(src []byte) error
}

// InPlace is the optional in-slab fast path: a Controller that can apply
// feedback directly to an encoded state buffer, with no DecodeState /
// EncodeState round trip. For wide-state algorithms (SampleRate's ~1.7 KB
// snapshot) the round trip dominates the serving cost, so stores probe
// for this interface and drive slab-backed state through it.
//
// The contract mirrors the codec one bit for bit: ApplyInPlace(state, fb)
// must leave state exactly as DecodeState(state) → Apply(fb) →
// EncodeState(state) would — including bytes EncodeState leaves untouched
// — and return the identical decision.
type InPlace interface {
	Controller
	// InPlaceOK reports whether this instance's configuration supports the
	// in-place path at all (a pure function of the configuration).
	InPlaceOK() bool
	// ApplyInPlace is Apply executed against the encoded state. ok=false
	// means the buffer failed validation (or the configuration cannot run
	// in place); state is then untouched and the caller should recover
	// through DecodeState.
	ApplyInPlace(state []byte, fb Feedback) (rate int, ok bool)
}

// Algo is a registered algorithm's stable one-byte ID. IDs are part of
// the softrated v2 wire protocol — never renumber.
type Algo uint8

const (
	// AlgoDefault means "whatever the store is configured to default to";
	// it is what v1 wire records and zero-valued ops carry.
	AlgoDefault Algo = 0
	// AlgoSoftRate is the paper's §3.3 algorithm (core.SoftRate).
	AlgoSoftRate Algo = 1
	// AlgoSampleRate is Bicket's SampleRate [4].
	AlgoSampleRate Algo = 2
	// AlgoRRAA is Robust Rate Adaptation [24].
	AlgoRRAA Algo = 3
	// AlgoSNR is the per-frame RBAR-like SNR protocol [10].
	AlgoSNR Algo = 4
	// AlgoCHARM is the averaged-SNR variant [13].
	AlgoCHARM Algo = 5
)

// Spec describes one registered algorithm.
type Spec struct {
	// ID is the wire-stable algorithm ID.
	ID Algo
	// Name is the CLI/registry name (lower-case, no spaces).
	Name string
	// StateLen is the fixed snapshot width of controllers built by New.
	StateLen int
	// New builds a controller in the canonical serving configuration.
	// Controllers from one Spec are interchangeable up to their encoded
	// state.
	New func() Controller
}

var (
	registry   = map[Algo]Spec{}
	byName     = map[string]Spec{}
	maxAlgoID  Algo
	registered []Spec
)

// Register adds an algorithm to the registry. It panics on a duplicate ID
// or name, on AlgoDefault, or on a Spec whose constructor's StateLen
// disagrees with the declared one — registration is an init-time,
// single-goroutine affair.
func Register(s Spec) {
	if s.ID == AlgoDefault {
		panic("ctl: cannot register AlgoDefault")
	}
	if _, dup := registry[s.ID]; dup {
		panic(fmt.Sprintf("ctl: duplicate algorithm ID %d", s.ID))
	}
	if _, dup := byName[s.Name]; dup {
		panic(fmt.Sprintf("ctl: duplicate algorithm name %q", s.Name))
	}
	if got := s.New().StateLen(); got != s.StateLen {
		panic(fmt.Sprintf("ctl: %s declares state width %d but builds %d", s.Name, s.StateLen, got))
	}
	registry[s.ID] = s
	byName[s.Name] = s
	if s.ID > maxAlgoID {
		maxAlgoID = s.ID
	}
	registered = append(registered, s)
	sort.Slice(registered, func(i, j int) bool { return registered[i].ID < registered[j].ID })
}

// Lookup resolves an algorithm ID. AlgoDefault is not a registered
// algorithm and resolves to false.
func Lookup(id Algo) (Spec, bool) {
	s, ok := registry[id]
	return s, ok
}

// ByName resolves a registry name (e.g. "softrate", "rraa").
func ByName(name string) (Spec, bool) {
	s, ok := byName[name]
	return s, ok
}

// Specs returns all registered algorithms in ID order.
func Specs() []Spec {
	out := make([]Spec, len(registered))
	copy(out, registered)
	return out
}

// MaxID returns the highest registered algorithm ID (for dense
// per-algorithm tables).
func MaxID() Algo { return maxAlgoID }

// New builds a fresh serving-configuration controller for a registered
// algorithm; it panics on an unknown ID (callers validate via Lookup).
func New(id Algo) Controller {
	s, ok := registry[id]
	if !ok {
		panic(fmt.Sprintf("ctl: unknown algorithm ID %d", id))
	}
	return s.New()
}

// Names returns the registered algorithm names in ID order, for CLI usage
// strings.
func Names() []string {
	out := make([]string, 0, len(registered))
	for _, s := range registered {
		out = append(out, s.Name)
	}
	return out
}
