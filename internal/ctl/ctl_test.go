package ctl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
)

func TestRegistryInvariants(t *testing.T) {
	specs := Specs()
	if len(specs) < 5 {
		t.Fatalf("only %d registered algorithms, want the §6.1 set (softrate, samplerate, rraa, snr, charm)", len(specs))
	}
	seenName := map[string]bool{}
	for i, s := range specs {
		if i > 0 && specs[i-1].ID >= s.ID {
			t.Fatalf("Specs not in strict ID order: %d then %d", specs[i-1].ID, s.ID)
		}
		if seenName[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		seenName[s.Name] = true
		if got, ok := Lookup(s.ID); !ok || got.Name != s.Name {
			t.Fatalf("Lookup(%d) = %+v, %v", s.ID, got, ok)
		}
		if got, ok := ByName(s.Name); !ok || got.ID != s.ID {
			t.Fatalf("ByName(%q) = %+v, %v", s.Name, got, ok)
		}
		c := New(s.ID)
		if c.StateLen() != s.StateLen {
			t.Fatalf("%s: built controller state width %d != spec %d", s.Name, c.StateLen(), s.StateLen)
		}
	}
	if _, ok := Lookup(AlgoDefault); ok {
		t.Fatal("AlgoDefault must not resolve to a registered algorithm")
	}
	for _, want := range []struct {
		id   Algo
		name string
	}{
		{AlgoSoftRate, "softrate"}, {AlgoSampleRate, "samplerate"},
		{AlgoRRAA, "rraa"}, {AlgoSNR, "snr"}, {AlgoCHARM, "charm"},
	} {
		if s, ok := Lookup(want.id); !ok || s.Name != want.name {
			t.Fatalf("wire ID %d should be %q, got %+v (these IDs are protocol — never renumber)", want.id, want.name, s)
		}
	}
}

func TestFreshControllersEncodeIdentically(t *testing.T) {
	for _, spec := range Specs() {
		a := make([]byte, spec.StateLen)
		b := make([]byte, spec.StateLen)
		spec.New().EncodeState(a)
		spec.New().EncodeState(b)
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: two fresh controllers encode differently — the Spec constructor is not canonical", spec.Name)
		}
	}
}

// randFeedback draws one service-side feedback for the closed loop: the
// rate is whatever the controller last decided, the rest is randomized
// across the full kind/BER/SNR/airtime space.
func randFeedback(rng *rand.Rand, rateIndex int) Feedback {
	fb := Feedback{
		Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
		RateIndex: rateIndex,
		BER:       math.Pow(10, -8*rng.Float64()), // 1e-8 .. 1
		SNRdB:     rng.Float64()*30 - 2,
		Delivered: rng.Intn(3) > 0,
	}
	if rng.Intn(4) == 0 {
		fb.SNRdB = math.NaN()
	}
	if rng.Intn(3) > 0 {
		fb.Airtime = 2e-4 + rng.Float64()*2e-3
	}
	return fb
}

// TestRelocationPreservesDecisions is the contract at the center of the
// store: for every registered algorithm, encode → decode through a
// *different* instance at every step must yield the decision stream of a
// long-lived controller.
func TestRelocationPreservesDecisions(t *testing.T) {
	for _, spec := range Specs() {
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			longLived := spec.New()
			hopA, hopB := spec.New(), spec.New()
			buf := make([]byte, spec.StateLen)
			hopA.EncodeState(buf)

			rate := 0
			for step := 0; step < 5000; step++ {
				fb := randFeedback(rng, rate)
				want := longLived.Apply(fb)

				// Relocate: restore into whichever hop is "cold",
				// alternating instances like shards alternate scratch
				// controllers.
				c := hopA
				if step%2 == 1 {
					c = hopB
				}
				if err := c.DecodeState(buf); err != nil {
					t.Fatalf("step %d: decode: %v", step, err)
				}
				got := c.Apply(fb)
				c.EncodeState(buf)

				if got != want {
					t.Fatalf("step %d: relocated %s decided %d, long-lived %d (fb %+v)",
						step, spec.Name, got, want, fb)
				}
				rate = want
			}
		})
	}
}

// TestInPlaceMatchesCodecPath extends the relocation contract to the
// in-slab path: for every registered algorithm that advertises in-place
// execution, driving a state buffer through ApplyInPlace must yield (a)
// the decision stream of a long-lived controller and (b) a buffer that
// stays byte-identical to one driven through the DecodeState → Apply →
// EncodeState cycle — including the stale bytes beyond each ring's live
// length, which neither path may touch.
func TestInPlaceMatchesCodecPath(t *testing.T) {
	covered := 0
	for _, spec := range Specs() {
		ip, ok := spec.New().(InPlace)
		if !ok || !ip.InPlaceOK() {
			continue
		}
		covered++
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			longLived := spec.New()
			hopA, hopB := spec.New(), spec.New() // codec-path scratch, alternating
			inplace := spec.New().(InPlace)      // in-place scratch

			bufIP := make([]byte, spec.StateLen)
			bufCodec := make([]byte, spec.StateLen)
			inplace.EncodeState(bufIP)
			hopA.EncodeState(bufCodec)
			if !bytes.Equal(bufIP, bufCodec) {
				t.Fatal("fresh snapshots differ before any feedback")
			}

			rate := 0
			for step := 0; step < 5000; step++ {
				fb := randFeedback(rng, rate)
				want := longLived.Apply(fb)

				got, ok := inplace.ApplyInPlace(bufIP, fb)
				if !ok {
					t.Fatalf("step %d: in-place apply refused a valid buffer", step)
				}

				c := hopA
				if step%2 == 1 {
					c = hopB
				}
				if err := c.DecodeState(bufCodec); err != nil {
					t.Fatalf("step %d: decode: %v", step, err)
				}
				gotCodec := c.Apply(fb)
				c.EncodeState(bufCodec)

				if got != want || gotCodec != want {
					t.Fatalf("step %d: in-place %d, codec %d, long-lived %d (fb %+v)",
						step, got, gotCodec, want, fb)
				}
				if !bytes.Equal(bufIP, bufCodec) {
					t.Fatalf("step %d: in-place buffer diverged from the codec-path buffer", step)
				}
				rate = want
			}
		})
	}
	if covered == 0 {
		t.Fatal("no registered algorithm advertises in-place execution (SampleRate should)")
	}
}

// TestInPlaceGating pins which configurations run in place: the serving
// SampleRate does; unbounded or shared-PRNG SampleRates and the other
// clocked algorithms fall back to the codec path.
func TestInPlaceGating(t *testing.T) {
	if ip, ok := New(AlgoSampleRate).(InPlace); !ok || !ip.InPlaceOK() {
		t.Fatal("serving SampleRate must advertise in-place execution")
	}
	for _, id := range []Algo{AlgoRRAA, AlgoSNR, AlgoCHARM} {
		if ip, ok := New(id).(InPlace); ok && ip.InPlaceOK() {
			t.Fatalf("algorithm %d claims in-place execution without an engine", id)
		}
	}
	// A SampleRate on a shared *rand.Rand has no relocatable PRNG state.
	s := ratectl.NewSampleRate(rate.Evaluation(), NominalAirtimes(), rand.New(rand.NewSource(1)))
	s.WindowCap = servingWindowCap
	if Wrap(s).(InPlace).InPlaceOK() {
		t.Fatal("shared-PRNG SampleRate must not run in place")
	}
	// And the unbounded simulator configuration has no fixed-width state.
	u := ratectl.NewSampleRate(rate.Evaluation(), NominalAirtimes(), ratectl.NewSplitMix(1))
	if Wrap(u).(InPlace).InPlaceOK() {
		t.Fatal("unbounded SampleRate must not run in place")
	}
	if _, ok := New(AlgoSoftRate).(InPlace); ok {
		t.Fatal("SoftRate has its own 8-byte fast path; it should not pass through the InPlace probe")
	}
}

// TestFeedbackKindMapping pins the Apply → OnResult translation against
// the MAC's (mac.resToRatectl): same kinds, same flags.
func TestFeedbackKindMapping(t *testing.T) {
	probe := &recordingAdapter{}
	c := &clocked{a: probe, nominal: NominalAirtimes()}

	c.Apply(Feedback{Kind: core.KindBER, RateIndex: 2, BER: 1e-4, SNRdB: 17, Delivered: true})
	r := probe.last
	if !r.FeedbackReceived || r.PostambleOnly || r.Collision || !r.Delivered || r.BER != 1e-4 || r.SNRdB != 17 {
		t.Fatalf("KindBER mapped to %+v", r)
	}
	c.Apply(Feedback{Kind: core.KindCollision, RateIndex: 2, BER: 2e-3, SNRdB: 9})
	r = probe.last
	if !r.FeedbackReceived || !r.Collision || r.Delivered || r.BER != 2e-3 {
		t.Fatalf("KindCollision mapped to %+v", r)
	}
	c.Apply(Feedback{Kind: core.KindPostamble, RateIndex: 2, SNRdB: 9})
	r = probe.last
	if !r.FeedbackReceived || !r.PostambleOnly || !math.IsNaN(r.SNRdB) {
		t.Fatalf("KindPostamble mapped to %+v (postambles carry no SNR)", r)
	}
	c.Apply(Feedback{Kind: core.KindSilentLoss, RateIndex: 2, SNRdB: 9})
	r = probe.last
	if r.FeedbackReceived || !math.IsNaN(r.SNRdB) {
		t.Fatalf("KindSilentLoss mapped to %+v", r)
	}
	if probe.times[0] <= 0 || probe.times[1] <= probe.times[0] {
		t.Fatalf("virtual clock not advancing: %v", probe.times)
	}
}

type recordingAdapter struct {
	last  Result
	times []float64
}

func (a *recordingAdapter) Name() string         { return "probe" }
func (a *recordingAdapter) NextRate(float64) int { return 0 }
func (a *recordingAdapter) WantRTS() bool        { return false }
func (a *recordingAdapter) OnResult(res Result) {
	a.last = res
	a.times = append(a.times, res.Time)
}

func TestWrap(t *testing.T) {
	// Controllers pass through.
	sr := NewSoftRate(core.DefaultConfig())
	if Wrap(sr) != Controller(sr) {
		t.Fatal("Wrap re-wrapped a Controller")
	}
	// The known frame-level types get their real snapshot widths.
	lossless := NominalAirtimes()
	s := ratectl.NewSampleRate(rate.Evaluation(), lossless, ratectl.NewSplitMix(7))
	s.WindowCap = 4
	if got := Wrap(s).StateLen(); got != 8+16+len(rate.Evaluation())*(2+4*17) {
		t.Fatalf("wrapped SampleRate state width %d", got)
	}
	if got := Wrap(ratectl.NewRRAA(rate.Evaluation(), lossless, false)).StateLen(); got != 16 {
		t.Fatalf("wrapped RRAA state width %d, want 16", got)
	}
	// An unbounded SampleRate (simulator config) degrades to a clock-only
	// snapshot instead of panicking.
	unbounded := ratectl.NewSampleRate(rate.Evaluation(), lossless, ratectl.NewSplitMix(7))
	if got := Wrap(unbounded).StateLen(); got != 8 {
		t.Fatalf("wrapped unbounded SampleRate state width %d, want clock-only 8", got)
	}
	// Stateless adapters wrap to a clock-only snapshot too.
	w := Wrap(&ratectl.Fixed{Index: 3})
	if w.StateLen() != 8 || w.NextRate(0) != 3 || w.Name() != "Fixed" {
		t.Fatalf("wrapped Fixed: len %d rate %d name %q", w.StateLen(), w.NextRate(0), w.Name())
	}
	// Every Controller is a ratectl.Adapter (the MAC's contract).
	var _ ratectl.Adapter = w
	var _ ratectl.Adapter = sr
}

func TestServingSNRThresholds(t *testing.T) {
	th := ServingSNRThresholds()
	if len(th) != len(rate.Evaluation()) {
		t.Fatalf("%d thresholds for %d rates", len(th), len(rate.Evaluation()))
	}
	if math.IsInf(th[0], 1) {
		t.Fatal("rate 0 must always be usable")
	}
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatalf("thresholds not monotone: th[%d]=%v < th[%d]=%v", i, th[i], i-1, th[i-1])
		}
	}
	// The lowest rate must be usable at a clearly workable SNR, and the
	// fastest must require more than the slowest.
	if th[0] > 15 || th[len(th)-1] <= th[0] {
		t.Fatalf("implausible thresholds %v", th)
	}
}

// TestSoftRateParityWithCoreApply pins the SoftRate wrapper to the exact
// semantics the PR 2 store had: Apply == core.SoftRate.Apply.
func TestSoftRateParityWithCoreApply(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewSoftRate(core.DefaultConfig())
	bare := core.New(core.DefaultConfig())
	rate := 0
	for i := 0; i < 2000; i++ {
		kind := core.FeedbackKind(rng.Intn(int(core.NumKinds)))
		ber := rng.Float64() * 0.01
		got := c.Apply(Feedback{Kind: kind, RateIndex: rate, BER: ber, SNRdB: 10, Airtime: 1e-3, Delivered: true})
		want := bare.Apply(kind, rate, ber)
		if got != want {
			t.Fatalf("step %d: wrapper %d != core %d", i, got, want)
		}
		rate = got
	}
}
