// Package bitutil provides bit-level utilities shared by the PHY and link
// layers: bit/byte packing, CRC computation for frame and header integrity,
// and a small deterministic PRNG wrapper used to make every experiment
// reproducible from a seed.
package bitutil

import "math/rand"

// Mix64 applies the SplitMix64 finalizer (Steele, Lea & Flood: "Fast
// splittable pseudorandom number generators", OOPSLA 2014): an invertible
// avalanche mix in which every input bit affects every output bit. It is
// the shared bit-mixing primitive behind the experiment engine's per-trial
// seeding and the link store's shard hashing — one source of truth for the
// constants.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// BytesToBits unpacks a byte slice into one bit per byte (values 0 or 1),
// most-significant bit first, matching the transmission order used by the
// PHY encoder.
func BytesToBits(data []byte) []byte {
	return AppendBytesToBits(make([]byte, 0, len(data)*8), data)
}

// BitsToBytes packs a bit slice (one bit per byte, MSB first) back into
// bytes. If len(bits) is not a multiple of 8 the final byte is zero-padded
// in its least-significant positions.
func BitsToBytes(bits []byte) []byte {
	return AppendBitsToBytes(make([]byte, 0, (len(bits)+7)/8), bits)
}

// AppendBitsToBytes appends the packed form of bits (MSB first, final byte
// zero-padded) to dst and returns the extended slice, allocating nothing
// when dst has sufficient capacity.
func AppendBitsToBytes(dst []byte, bits []byte) []byte {
	for base := 0; base < len(bits); base += 8 {
		var b byte
		end := base + 8
		if end > len(bits) {
			end = len(bits)
		}
		for i := base; i < end; i++ {
			if bits[i] != 0 {
				b |= 1 << uint(7-i%8)
			}
		}
		dst = append(dst, b)
	}
	return dst
}

// AppendBytesToBits appends the unpacked bits of data (one bit per byte,
// MSB first) to dst and returns the extended slice, allocating nothing
// when dst has sufficient capacity.
func AppendBytesToBits(dst []byte, data []byte) []byte {
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			dst = append(dst, (b>>uint(i))&1)
		}
	}
	return dst
}

// CountBitErrors returns the number of positions at which a and b differ.
// The comparison runs over the shorter of the two slices; a length mismatch
// beyond that is counted as one error per missing bit so that truncated
// frames register as heavily errored rather than silently clean.
func CountBitErrors(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	errs := 0
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			errs++
		}
	}
	if len(a) > n {
		errs += len(a) - n
	}
	if len(b) > n {
		errs += len(b) - n
	}
	return errs
}

// XORBits returns the element-wise XOR of two equal-length bit slices.
// It panics if the lengths differ; callers are expected to align inputs.
func XORBits(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("bitutil: XORBits length mismatch")
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// RandomBits fills a new slice of n bits using rng, for payload generation
// in tests and experiments.
func RandomBits(rng *rand.Rand, n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

// RandomBytes returns n random bytes drawn from rng.
func RandomBytes(rng *rand.Rand, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	return data
}
