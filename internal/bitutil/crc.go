package bitutil

// CRC16CCITT computes the CRC-16/CCITT-FALSE checksum (polynomial 0x1021,
// initial value 0xFFFF) over data. SoftRate protects the link-layer header
// with this separate CRC so that the sender and receiver identities can be
// recovered even when the frame body has bit errors (§3 of the paper).
func CRC16CCITT(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// crc32Table is the reflected CRC-32 (IEEE 802.3) lookup table, built once
// at init. We implement CRC-32 locally rather than importing hash/crc32 so
// the PHY package can checksum raw bit streams without allocation churn and
// so the implementation is visible for the property tests that check CRC
// linearity.
var crc32Table [256]uint32

func init() {
	const poly = 0xEDB88320
	for i := range crc32Table {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		crc32Table[i] = crc
	}
}

// CRC32 computes the IEEE 802.3 CRC-32 over data, as used by the 802.11 FCS
// that decides whether a received frame is error-free.
func CRC32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc32Table[byte(crc)^b] ^ crc>>8
	}
	return ^crc
}

// AppendCRC32 returns data with its CRC-32 appended big-endian, forming the
// over-the-air frame body the PHY encodes.
func AppendCRC32(data []byte) []byte {
	return AppendCRC32To(make([]byte, 0, len(data)+4), data)
}

// AppendCRC32To appends data followed by its big-endian CRC-32 to dst and
// returns the extended slice, allocating nothing when dst has sufficient
// capacity. It is the single source of the frame-body wire format that
// CheckCRC32 verifies.
func AppendCRC32To(dst []byte, data []byte) []byte {
	crc := CRC32(data)
	dst = append(dst, data...)
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// CheckCRC32 verifies a frame produced by AppendCRC32 and returns the
// payload with the checksum stripped along with the verdict.
func CheckCRC32(frame []byte) (payload []byte, ok bool) {
	if len(frame) < 4 {
		return nil, false
	}
	payload = frame[:len(frame)-4]
	want := uint32(frame[len(frame)-4])<<24 |
		uint32(frame[len(frame)-3])<<16 |
		uint32(frame[len(frame)-2])<<8 |
		uint32(frame[len(frame)-1])
	return payload, CRC32(payload) == want
}
