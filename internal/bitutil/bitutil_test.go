package bitutil

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytesToBitsKnown(t *testing.T) {
	bits := BytesToBits([]byte{0xA5})
	want := []byte{1, 0, 1, 0, 0, 1, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Fatalf("BytesToBits(0xA5) = %v, want %v", bits, want)
	}
}

func TestBitsToBytesPadding(t *testing.T) {
	// 10 bits: the last byte must be zero-padded on the LSB side.
	bits := []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}
	got := BitsToBytes(bits)
	want := []byte{0xFF, 0xC0}
	if !bytes.Equal(got, want) {
		t.Fatalf("BitsToBytes = %x, want %x", got, want)
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCountBitErrors(t *testing.T) {
	a := []byte{0, 1, 0, 1}
	b := []byte{0, 0, 0, 1}
	if got := CountBitErrors(a, b); got != 1 {
		t.Fatalf("CountBitErrors = %d, want 1", got)
	}
	if got := CountBitErrors(a, a); got != 0 {
		t.Fatalf("CountBitErrors(a,a) = %d, want 0", got)
	}
	// Length mismatch counts the tail as errors.
	if got := CountBitErrors(a, b[:2]); got != 2+1 {
		t.Fatalf("CountBitErrors with truncation = %d, want 3", got)
	}
}

func TestXORBitsSelfInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomBits(rng, 64)
	b := RandomBits(rng, 64)
	if !bytes.Equal(XORBits(XORBits(a, b), b), a) {
		t.Fatal("XORBits is not self-inverse")
	}
}

func TestXORBitsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	XORBits([]byte{1}, []byte{1, 0})
}

func TestCRC32MatchesStdlib(t *testing.T) {
	f := func(data []byte) bool {
		return CRC32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRC32Linearity(t *testing.T) {
	// CRC of equal-length messages: crc(a) ^ crc(b) == crc(a^b) ^ crc(0).
	// This linearity property is what makes CRCs detect burst errors; it is
	// a strong structural check on the table construction.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := RandomBytes(rng, n)
		b := RandomBytes(rng, n)
		ab := make([]byte, n)
		for i := range a {
			ab[i] = a[i] ^ b[i]
		}
		zero := make([]byte, n)
		return CRC32(a)^CRC32(b) == CRC32(ab)^CRC32(zero)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAppendCheckCRC32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	payload := RandomBytes(rng, 100)
	frame := AppendCRC32(payload)
	got, ok := CheckCRC32(frame)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("CRC32 round trip failed")
	}
	// Flip one bit anywhere: the check must fail.
	for i := 0; i < len(frame); i += 13 {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x10
		if _, ok := CheckCRC32(bad); ok {
			t.Fatalf("CRC32 missed a bit flip at byte %d", i)
		}
	}
}

func TestCheckCRC32Short(t *testing.T) {
	if _, ok := CheckCRC32([]byte{1, 2, 3}); ok {
		t.Fatal("short frame must fail CRC check")
	}
}

func TestCRC16Known(t *testing.T) {
	// CRC-16/CCITT-FALSE of "123456789" is 0x29B1 (standard check value).
	if got := CRC16CCITT([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16CCITT check value = %#04x, want 0x29B1", got)
	}
}

func TestCRC16DetectsFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := RandomBytes(rng, 16)
	orig := CRC16CCITT(data)
	for i := range data {
		data[i] ^= 1
		if CRC16CCITT(data) == orig {
			t.Fatalf("CRC16 missed flip at byte %d", i)
		}
		data[i] ^= 1
	}
}

func TestRandomBitsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bits := RandomBits(rng, 1000)
	ones := 0
	for _, b := range bits {
		if b != 0 && b != 1 {
			t.Fatalf("RandomBits produced %d", b)
		}
		ones += int(b)
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("RandomBits balance suspicious: %d ones of 1000", ones)
	}
}

func TestMix64AvalancheAndStability(t *testing.T) {
	// Golden values pin the constants: both the experiment engine's trial
	// seeding and the link store's shard hashing depend on this exact
	// mapping staying stable across refactors.
	golden := map[uint64]uint64{
		0:          0,
		1:          0x5692161d100b05e5,
		0xdeadbeef: 0x4e062702ec929eea,
	}
	for in, want := range golden {
		if got := Mix64(in); got != want {
			t.Fatalf("Mix64(%#x) = %#x, want %#x", in, got, want)
		}
	}
	// Avalanche: flipping one input bit must flip roughly half the output
	// bits on average.
	totalFlips := 0
	const trials = 64
	for bit := 0; bit < trials; bit++ {
		d := Mix64(0x123456789abcdef) ^ Mix64(0x123456789abcdef^(1<<bit))
		for ; d != 0; d &= d - 1 {
			totalFlips++
		}
	}
	avg := float64(totalFlips) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average %.1f bits flipped, want ~32", avg)
	}
}
