package mac

import (
	"math/rand"

	"softrate/internal/ofdm"
	"softrate/internal/ratectl"
	"softrate/internal/sim"
	"softrate/internal/trace"
)

// Medium coordinates the shared wireless channel: who is on the air, who
// senses whom, and what overlaps.
type Medium struct {
	// Eng is the discrete-event engine driving the simulation.
	Eng *sim.Engine
	// Cfg is the MAC configuration.
	Cfg Config
	// Rng drives carrier sense draws, backoff and detection coin flips.
	Rng *rand.Rand
	// CSProb returns the probability that station a senses station b's
	// transmissions (1.0 = perfect carrier sense). Symmetry is up to the
	// caller; the default is perfect sensing.
	CSProb func(a, b int) float64

	stations []*Station
	active   []*onAir
}

// onAir is a transmission occupying the channel, including its SIFS+ACK
// tail during which the channel is also effectively busy.
type onAir struct {
	from      int
	airStart  float64 // first energy on the air (RTS start, if any)
	start     float64 // data frame start (== airStart without RTS)
	dataEnd   float64 // end of the data frame
	busyEnd   float64 // end including SIFS + ACK (what others defer to)
	protected bool    // RTS/CTS in use: data is shielded once the CTS is out
}

// NewMedium builds an empty medium.
func NewMedium(eng *sim.Engine, cfg Config, rng *rand.Rand) *Medium {
	return &Medium{
		Eng:    eng,
		Cfg:    cfg,
		Rng:    rng,
		CSProb: func(a, b int) float64 { return 1 },
	}
}

// NewStation creates a station bound to this medium.
func (m *Medium) NewStation(adapter ratectl.Adapter, fwd *trace.LinkTrace) *Station {
	s := &Station{
		ID:      len(m.stations),
		Adapter: adapter,
		Fwd:     fwd,
		med:     m,
		cw:      m.Cfg.CWMin,
	}
	m.stations = append(m.stations, s)
	return s
}

// Stations returns the registered stations.
func (m *Medium) Stations() []*Station { return m.stations }

// ackAirtime returns the feedback frame's airtime (lowest rate, with
// postamble if the configuration uses them).
func (m *Medium) ackAirtime() float64 {
	return m.Cfg.Mode.PayloadAirtime(m.Cfg.AckBytes, m.Cfg.Rates[0], false)
}

// rtsOverhead returns the RTS+SIFS+CTS+SIFS time prefix.
func (m *Medium) rtsOverhead() float64 {
	return m.Cfg.Mode.PayloadAirtime(m.Cfg.RTSBytes, m.Cfg.Rates[0], false) +
		m.Cfg.Mode.PayloadAirtime(m.Cfg.CTSBytes, m.Cfg.Rates[0], false) +
		2*m.Cfg.SIFS
}

// senses reports whether station id perceives the channel busy at time
// now. A transmission is sensed with probability CSProb(id, from), except
// during its first SlotTime, which models the detection blind spot that
// makes same-slot collisions possible even with perfect carrier sense.
func (m *Medium) senses(id int, now float64) (busy bool, until float64) {
	for _, tx := range m.active {
		if tx.from == id || now >= tx.busyEnd {
			continue
		}
		if now < tx.start+m.Cfg.SlotTime {
			continue // blind spot: energy not yet detectable
		}
		p := m.CSProb(id, tx.from)
		if tx.protected {
			// Everyone hears the AP's CTS: the reservation is visible
			// even to hidden terminals.
			p = 1
		}
		if m.Rng.Float64() < p {
			busy = true
			if tx.busyEnd > until {
				until = tx.busyEnd
			}
		}
	}
	return busy, until
}

// overlaps returns the transmissions (other than tx) whose on-air energy
// (RTS included) overlaps tx's full on-air span.
func (m *Medium) overlaps(tx *onAir) []*onAir {
	var out []*onAir
	for _, o := range m.active {
		if o == tx || o.from == tx.from {
			continue
		}
		if o.airStart < tx.dataEnd && tx.airStart < o.dataEnd {
			out = append(out, o)
		}
	}
	return out
}

// gc drops finished transmissions from the active list. Called whenever a
// transmission completes; entries must survive until every overlapping
// frame has resolved its outcome, so we keep anything whose busy window
// extends past the earliest still-active start.
func (m *Medium) gc(now float64) {
	kept := m.active[:0]
	for _, tx := range m.active {
		if tx.busyEnd > now-1e-3 {
			kept = append(kept, tx)
		}
	}
	m.active = kept
}

// overlapCovers reports whether any of the overlapping transmissions'
// energy covers the window [a, b) of the victim frame.
func overlapCovers(others []*onAir, a, b float64) bool {
	for _, o := range others {
		if o.airStart < b && a < o.dataEnd {
			return true
		}
	}
	return false
}

// preambleTime returns the duration of the preamble at the head of every
// frame.
func (m *Medium) preambleTime() float64 {
	return float64(ofdm.PreambleSymbols) * m.Cfg.Mode.SymbolTime()
}

// postambleTime returns the postamble duration.
func (m *Medium) postambleTime() float64 {
	return float64(ofdm.PostambleSymbols) * m.Cfg.Mode.SymbolTime()
}

func clampCW(cw, lo, hi int) int {
	if cw < lo {
		return lo
	}
	if cw > hi {
		return hi
	}
	return cw
}
