// Package mac implements the link layer of the trace-driven evaluation: a
// CSMA/CA medium-access protocol with DIFS/SIFS timing, binary exponential
// backoff, probabilistic pairwise carrier sense (the knob of Figure 17's
// hidden-terminal sweep), frame-level ARQ, SoftRate-style feedback ACKs
// (sent even for errored frames, carrying the interference-free BER), an
// optional postamble path, and RTS/CTS support for RRAA's adaptive RTS.
//
// Frame outcomes on a link come from a trace.LinkTrace exactly as in the
// paper's ns-3 methodology (§6.1): traces are collected in isolation, so
// they model interference-free reception; when transmissions overlap, the
// MAC declares a collision and both bodies are lost, while the SoftPHY
// machinery (preamble/postamble overlap geometry, interference detection
// probability) decides what feedback, if any, the sender gets.
package mac

import (
	"softrate/internal/ofdm"
	"softrate/internal/rate"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

// Config collects MAC timing and protocol parameters.
type Config struct {
	// Mode is the OFDM mode, which sets frame airtimes.
	Mode ofdm.Mode
	// Rates is the rate set shared with the adaptation algorithms.
	Rates []rate.Rate
	// SIFS, DIFS and SlotTime are the 802.11 interframe timings.
	SIFS, DIFS, SlotTime float64
	// CWMin and CWMax bound the contention window (in slots).
	CWMin, CWMax int
	// RetryLimit drops a frame after this many failed attempts.
	RetryLimit int
	// AckBytes is the feedback frame size (sent at the lowest rate).
	AckBytes int
	// RTSBytes/CTSBytes size the RTS/CTS exchange.
	RTSBytes, CTSBytes int
	// Postamble appends postambles to data frames and enables
	// postamble-only feedback (§3.2).
	Postamble bool
	// InterferenceDetectionProb is the probability the receiver's
	// SoftPHY heuristic correctly flags a collision-damaged reception
	// (0.8 for the implemented detector per §5.3/§6.4; 1.0 for the
	// "ideal" SoftRate variant).
	InterferenceDetectionProb float64
	// FeedbackBERNoise is the multiplicative jitter already baked into
	// trace BERs; kept for documentation symmetry (no extra noise here).
	FeedbackBERNoise float64
}

// DefaultConfig returns 802.11a-like timings over the simulation OFDM mode.
func DefaultConfig() Config {
	return Config{
		Mode:                      ofdm.Simulation,
		Rates:                     rate.Evaluation(),
		SIFS:                      16e-6,
		DIFS:                      34e-6,
		SlotTime:                  9e-6,
		CWMin:                     15,
		CWMax:                     1023,
		RetryLimit:                7,
		AckBytes:                  14,
		RTSBytes:                  20,
		CTSBytes:                  14,
		InterferenceDetectionProb: 0.8,
	}
}

// Packet is one link-layer SDU queued at a station.
type Packet struct {
	// Bytes is the payload size.
	Bytes int
	// Seq is a caller-assigned identifier.
	Seq int64
	// UserData carries upper-layer context (e.g. a TCP segment) through
	// the MAC untouched.
	UserData interface{}
}

// TxRecord logs one completed transmission attempt for the accuracy
// analyses (Figures 14 and 18) and the silent-loss studies (Table 1,
// Figure 4).
type TxRecord struct {
	// Time is the attempt's start time.
	Time float64
	// RateIndex is the rate used.
	RateIndex int
	// OracleIndex is the omniscient best rate at that instant.
	OracleIndex int
	// Delivered reports end-to-end frame success.
	Delivered bool
	// Collided reports overlap with another transmission.
	Collided bool
	// PreambleLost and PostambleLost report the overlap geometry at the
	// receiver (PostambleLost is meaningful only with Config.Postamble).
	PreambleLost, PostambleLost bool
	// Silent reports that the sender received no feedback at all.
	Silent bool
}

// Stats aggregates a station's activity.
type Stats struct {
	// Enqueued, Delivered and Dropped count packets (not attempts).
	Enqueued, Delivered, Dropped int
	// Attempts counts transmission attempts including retries.
	Attempts int
	// BytesDelivered totals delivered payload bytes.
	BytesDelivered int64
	// Records holds the per-attempt log (nil unless RecordTx).
	Records []TxRecord
}

// Station is one sending node: a queue, an ARQ machine and a rate
// adaptation algorithm, bound to a forward-link trace toward its receiver.
type Station struct {
	// ID indexes the station within its Medium.
	ID int
	// Adapter chooses rates.
	Adapter ratectl.Adapter
	// Fwd is the forward-link trace to this station's receiver.
	Fwd *trace.LinkTrace
	// RouteFor, when set, overrides Adapter and Fwd per packet — the
	// access point uses this to run an independent rate adaptation state
	// and reverse-link trace for each client it serves.
	RouteFor func(p Packet) (ratectl.Adapter, *trace.LinkTrace)
	// OnDeliver, when set, fires at the receiver with the delivered
	// packet and the delivery time.
	OnDeliver func(p Packet, at float64)
	// OnDrop fires when a packet exhausts its retries.
	OnDrop func(p Packet, at float64)
	// RecordTx enables the per-attempt log in Stats.
	RecordTx bool
	// MaxQueue bounds the interface queue (0 = unlimited); excess
	// enqueues are dropped, which is how TCP experiences congestion at
	// the bottleneck.
	MaxQueue int
	// Stats accumulates counters.
	Stats Stats

	med     *Medium
	queue   []Packet
	pending bool // an attempt is scheduled or in flight
	cw      int
	retries int
}
