package mac

import (
	"math"

	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

// traceSnapshot aliases trace.Snapshot for brevity inside the outcome
// logic.
type traceSnapshot = trace.Snapshot

// resToRatectl translates a receiver-side outcome into the Result fed to
// the rate adaptation algorithm.
func resToRatectl(o resultOutcome, at float64, ri int, airtime float64, usedRTS bool) ratectl.Result {
	snr := math.NaN()
	if o.snrValid {
		snr = o.snrDB
	}
	return ratectl.Result{
		Time:             at,
		RateIndex:        ri,
		Airtime:          airtime,
		Delivered:        o.delivered,
		FeedbackReceived: o.feedback,
		PostambleOnly:    o.postambleOnly,
		BER:              o.ber,
		Collision:        o.collisionFlag,
		SNRdB:            snr,
		UsedRTS:          usedRTS,
	}
}
