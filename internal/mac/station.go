package mac

import (
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

// routeAdapter is the adapter type returned by routing (an alias keeps the
// RouteFor signature readable).
type routeAdapter = ratectl.Adapter

// This file holds the per-station CSMA/CA state machine: enqueue →
// (DIFS + backoff) → carrier sense → transmit → outcome → feedback/ARQ.

// Enqueue hands a packet to the station's interface queue, dropping it if
// the queue is full (tail drop — the congestion signal TCP sees).
func (s *Station) Enqueue(p Packet) {
	if s.MaxQueue > 0 && len(s.queue) >= s.MaxQueue {
		if s.OnDrop != nil {
			s.OnDrop(p, s.med.Eng.Now())
		}
		return
	}
	s.Stats.Enqueued++
	s.queue = append(s.queue, p)
	if !s.pending {
		s.scheduleAttempt(s.med.Cfg.DIFS + s.backoff())
	}
}

// QueueLen returns the interface queue depth (for BDP-sized-queue checks).
func (s *Station) QueueLen() int { return len(s.queue) }

// backoff draws a uniform backoff from the current contention window.
func (s *Station) backoff() float64 {
	return float64(s.med.Rng.Intn(s.cw+1)) * s.med.Cfg.SlotTime
}

func (s *Station) scheduleAttempt(delay float64) {
	s.pending = true
	s.med.Eng.Schedule(delay, s.attempt)
}

// attempt fires when DIFS+backoff expires: sense, then transmit or defer.
func (s *Station) attempt() {
	if len(s.queue) == 0 {
		s.pending = false
		return
	}
	m := s.med
	now := m.Eng.Now()
	if busy, until := m.senses(s.ID, now); busy {
		// Defer: wait out the perceived busy period, then DIFS + fresh
		// backoff (no freeze-resume; the redraw preserves the fairness
		// and collision structure the experiments depend on).
		s.scheduleAttempt(until - now + m.Cfg.DIFS + s.backoff())
		return
	}
	s.transmit()
}

// route resolves the adapter and forward trace for a packet, honouring the
// per-destination override.
func (s *Station) route(p Packet) (adapter routeAdapter, fwd *trace.LinkTrace) {
	if s.RouteFor != nil {
		return s.RouteFor(p)
	}
	return s.Adapter, s.Fwd
}

// transmit puts the head-of-queue packet on the air.
func (s *Station) transmit() {
	m := s.med
	now := m.Eng.Now()
	p := s.queue[0]
	adapter, fwd := s.route(p)
	ri := adapter.NextRate(now)
	if ri < 0 {
		ri = 0
	}
	if ri >= len(m.Cfg.Rates) {
		ri = len(m.Cfg.Rates) - 1
	}
	useRTS := adapter.WantRTS()

	prefix := 0.0
	if useRTS {
		prefix = m.rtsOverhead()
	}
	air := m.Cfg.Mode.PayloadAirtime(p.Bytes, m.Cfg.Rates[ri], m.Cfg.Postamble)
	start := now + prefix
	dataEnd := start + air
	busyEnd := dataEnd + m.Cfg.SIFS + m.ackAirtime()
	// The RTS/CTS exchange occupies [now, start) unprotected: the RTS
	// itself is an ordinary short frame and collides like one. Protection
	// takes effect only once the CTS reservation is out — so under
	// relentless hidden-terminal pressure RTS fails as often as data does
	// (the paper finds RRAA's adaptive RTS "ineffective", §6.4).
	tx := &onAir{from: s.ID, airStart: now, start: start, dataEnd: dataEnd, busyEnd: busyEnd, protected: useRTS}
	m.active = append(m.active, tx)
	s.Stats.Attempts++
	m.Eng.At(dataEnd, func() { s.complete(tx, p, ri, useRTS, air+prefix, adapter, fwd) })
}

// complete resolves the outcome of a finished transmission and runs
// feedback and ARQ.
func (s *Station) complete(tx *onAir, p Packet, ri int, usedRTS bool, airtime float64, adapter routeAdapter, fwd *trace.LinkTrace) {
	m := s.med
	now := m.Eng.Now()
	snap := fwd.At(ri, tx.start)

	others := m.overlaps(tx)

	rec := TxRecord{
		Time:        tx.start,
		RateIndex:   ri,
		OracleIndex: fwd.BestRateAt(tx.start),
	}

	var res resultOutcome
	switch {
	case tx.protected && len(others) > 0:
		// Overlap hit the unshielded RTS/CTS exchange (or leaked into
		// the reservation): no CTS, no transmission worth speaking of —
		// a silent loss from the sender's perspective.
		rec.Collided = true
		rec.PreambleLost, rec.PostambleLost = true, true
		res = resultOutcome{}
	case len(others) > 0:
		rec.Collided = true
		res = s.collisionOutcome(tx, others, snap, &rec)
	default:
		res = s.cleanOutcome(snap)
	}
	rec.Delivered = res.delivered
	rec.Silent = !res.feedback
	if s.RecordTx {
		s.Stats.Records = append(s.Stats.Records, rec)
	}

	// Inform the adapter. SNR feedback rides every ACK; silent losses
	// give NaN.
	adapter.OnResult(resToRatectl(res, tx.start, ri, airtime, usedRTS))

	// ARQ.
	if res.delivered {
		s.queue = s.queue[1:]
		s.Stats.Delivered++
		s.Stats.BytesDelivered += int64(p.Bytes)
		s.retries = 0
		s.cw = m.Cfg.CWMin
		if s.OnDeliver != nil {
			s.OnDeliver(p, now)
		}
	} else {
		s.retries++
		s.cw = clampCW(s.cw*2+1, m.Cfg.CWMin, m.Cfg.CWMax)
		if s.retries > m.Cfg.RetryLimit {
			s.queue = s.queue[1:]
			s.Stats.Dropped++
			s.retries = 0
			s.cw = m.Cfg.CWMin
			if s.OnDrop != nil {
				s.OnDrop(p, now)
			}
		}
	}

	m.gc(now)
	if len(s.queue) > 0 {
		s.scheduleAttempt(m.Cfg.SIFS + m.ackAirtime() + m.Cfg.DIFS + s.backoff())
	} else {
		s.pending = false
	}
}

// resultOutcome is the receiver-side verdict before translation into a
// ratectl.Result.
type resultOutcome struct {
	delivered     bool
	feedback      bool
	postambleOnly bool
	ber           float64
	collisionFlag bool
	snrValid      bool
	snrDB         float64
}

// cleanOutcome resolves a frame that suffered no overlap: the trace
// snapshot speaks directly.
func (s *Station) cleanOutcome(snap traceSnapshot) resultOutcome {
	if !snap.Detected {
		return resultOutcome{} // silent loss: weak signal
	}
	return resultOutcome{
		delivered: snap.Delivered,
		feedback:  true,
		ber:       snap.BER,
		snrValid:  true,
		snrDB:     snap.SNRdB,
	}
}

// collisionOutcome resolves an overlapped frame: the body is lost (§6.1:
// "we assume both colliding frames are lost"); what feedback the sender
// gets depends on the overlap geometry and the interference detector.
func (s *Station) collisionOutcome(tx *onAir, others []*onAir, snap traceSnapshot, rec *TxRecord) resultOutcome {
	m := s.med
	preClean := !overlapCovers(others, tx.start, tx.start+m.preambleTime())
	postClean := !overlapCovers(others, tx.dataEnd-m.postambleTime(), tx.dataEnd)
	rec.PreambleLost = !preClean
	rec.PostambleLost = !postClean

	// The channel itself must also be good enough for sync.
	if !snap.Detected {
		preClean = false
		postClean = false
		rec.PreambleLost, rec.PostambleLost = true, true
	}

	switch {
	case preClean:
		// Receiver synchronized with our frame; body errored by the
		// interferer. Header survives (lowest rate + own CRC), so BER
		// feedback is sent. The detector identifies the collision with
		// probability InterferenceDetectionProb, in which case the
		// feedback carries the interference-free BER from the excised
		// portions (§6.4 methodology); otherwise it reports the raw,
		// interference-inflated BER — a noise verdict.
		if m.Rng.Float64() < m.Cfg.InterferenceDetectionProb {
			return resultOutcome{
				feedback:      true,
				ber:           snap.BER,
				collisionFlag: true,
				snrValid:      true,
				snrDB:         snap.SNRdB,
			}
		}
		return resultOutcome{
			feedback: true,
			ber:      0.2, // interference-inflated estimate
			snrValid: true,
			snrDB:    snap.SNRdB,
		}
	case m.Cfg.Postamble && postClean:
		// Preamble gone, postamble caught: postamble-only ACK (§3.2).
		return resultOutcome{feedback: true, postambleOnly: true}
	default:
		return resultOutcome{} // silent loss: full overlap
	}
}
