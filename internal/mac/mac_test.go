package mac

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/ratectl"
	"softrate/internal/sim"
	"softrate/internal/trace"
)

func coreDefaultForTest() core.Config { return core.DefaultConfig() }

// perfectTrace builds a synthetic trace where rates 0..good deliver with
// certainty and rates above never do.
func perfectTrace(nRates, good int, dur, interval float64) *trace.LinkTrace {
	nSlots := int(dur / interval)
	snaps := make([][]trace.Snapshot, nRates)
	for ri := 0; ri < nRates; ri++ {
		row := make([]trace.Snapshot, nSlots)
		for s := range row {
			ok := ri <= good
			// A physically-shaped BER ladder: two decades per rate step
			// (within the paper's ">= factor 10" observation), centered
			// so the optimal rate sits inside SoftRate's (alpha, beta)
			// band for 1400-byte frames.
			ber := 1e-6 * math.Pow(100, float64(ri-good))
			if ber > 0.3 {
				ber = 0.3
			}
			row[s] = trace.Snapshot{
				Detected:    true,
				Delivered:   ok,
				DeliverProb: boolProb(ok),
				BER:         ber,
				SNRdB:       15,
			}
		}
		snaps[ri] = row
	}
	return trace.NewSynthetic(interval, 1400*8, snaps)
}

func boolProb(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// saturate keeps a station's queue topped up.
func saturate(eng *sim.Engine, s *Station, bytes int, until float64) {
	var seq int64
	var feed func()
	feed = func() {
		for s.QueueLen() < 4 {
			seq++
			s.Enqueue(Packet{Bytes: bytes, Seq: seq})
		}
		if eng.Now() < until {
			eng.Schedule(1e-3, feed)
		}
	}
	eng.Schedule(0, feed)
}

func TestSingleStationDelivers(t *testing.T) {
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(1)))
	tr := perfectTrace(6, 3, 1, 1e-3)
	st := m.NewStation(&ratectl.Fixed{Index: 3}, tr)
	delivered := 0
	st.OnDeliver = func(p Packet, at float64) { delivered++ }
	saturate(&eng, st, 1400, 0.5)
	eng.Run(0.5)
	if delivered == 0 {
		t.Fatal("nothing delivered on a perfect channel")
	}
	if st.Stats.Delivered != delivered {
		t.Fatal("stats and callback disagree")
	}
	if st.Stats.Dropped != 0 {
		t.Fatalf("%d drops on a perfect channel", st.Stats.Dropped)
	}
	// Throughput sanity: 1400B frames at 18 Mbps with MAC overhead should
	// land in the 6..18 Mbps goodput range.
	goodput := float64(st.Stats.BytesDelivered) * 8 / 0.5
	if goodput < 6e6 || goodput > 18e6 {
		t.Fatalf("goodput %.1f Mbps implausible", goodput/1e6)
	}
}

func TestBadRateRetriesAndDrops(t *testing.T) {
	var eng sim.Engine
	cfg := DefaultConfig()
	cfg.RetryLimit = 3
	m := NewMedium(&eng, cfg, rand.New(rand.NewSource(2)))
	tr := perfectTrace(6, 2, 1, 1e-3) // rate 5 never delivers
	st := m.NewStation(&ratectl.Fixed{Index: 5}, tr)
	dropped := 0
	st.OnDrop = func(p Packet, at float64) { dropped++ }
	st.Enqueue(Packet{Bytes: 1400, Seq: 1})
	eng.Run(1)
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	if st.Stats.Attempts != cfg.RetryLimit+1 {
		t.Fatalf("attempts %d, want %d", st.Stats.Attempts, cfg.RetryLimit+1)
	}
}

func TestAdapterSeesFeedbackBER(t *testing.T) {
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(3)))
	tr := perfectTrace(6, 3, 1, 1e-3)
	sr := ratectl.NewSoftRate(coreDefaultForTest())
	st := m.NewStation(sr, tr)
	saturate(&eng, st, 1400, 0.3)
	eng.Run(0.3)
	// SoftRate starts at rate 0 with BER 1e-12 feedback -> must climb to
	// the optimal rate 3 and stay (trace BER at 3 is 1e-9, within band).
	if got := sr.NextRate(0); got != 3 {
		t.Fatalf("SoftRate settled at %d, want 3", got)
	}
	if st.Stats.Delivered == 0 {
		t.Fatal("no deliveries")
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(4)))
	m.CSProb = func(a, b int) float64 { return 0 } // perfect hidden terminals
	tr1 := perfectTrace(6, 5, 1, 1e-3)
	tr2 := perfectTrace(6, 5, 1, 1e-3)
	s1 := m.NewStation(&ratectl.Fixed{Index: 3}, tr1)
	s2 := m.NewStation(&ratectl.Fixed{Index: 3}, tr2)
	s1.RecordTx = true
	s2.RecordTx = true
	saturate(&eng, s1, 1400, 0.5)
	saturate(&eng, s2, 1400, 0.5)
	eng.Run(0.5)
	collisions := 0
	for _, r := range s1.Stats.Records {
		if r.Collided {
			collisions++
		}
	}
	if collisions == 0 {
		t.Fatal("hidden terminals never collided")
	}
	// Collided frames must not be delivered.
	for _, r := range s1.Stats.Records {
		if r.Collided && r.Delivered {
			t.Fatal("collided frame delivered")
		}
	}
}

func TestPerfectCarrierSensePreventsMostCollisions(t *testing.T) {
	run := func(cs float64, seed int64) float64 {
		var eng sim.Engine
		m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(seed)))
		m.CSProb = func(a, b int) float64 { return cs }
		var sts []*Station
		for i := 0; i < 3; i++ {
			st := m.NewStation(&ratectl.Fixed{Index: 3}, perfectTrace(6, 5, 1, 1e-3))
			st.RecordTx = true
			saturate(&eng, st, 1400, 0.5)
			sts = append(sts, st)
		}
		eng.Run(0.5)
		coll, total := 0, 0
		for _, st := range sts {
			for _, r := range st.Stats.Records {
				total++
				if r.Collided {
					coll++
				}
			}
		}
		return float64(coll) / float64(total)
	}
	withCS := run(1, 5)
	withoutCS := run(0, 6)
	if withCS >= withoutCS/2 {
		t.Fatalf("collision rate with CS (%v) not well below without (%v)", withCS, withoutCS)
	}
}

func TestRTSSemantics(t *testing.T) {
	// RTS/CTS under hidden terminals: the data portion is shielded (a
	// protected frame is never received-with-errors — overlaps kill the
	// RTS exchange and the loss is silent), but the exchange itself is
	// collision-vulnerable, so RTS is no free lunch (§6.4 finds RRAA's
	// adaptive RTS ineffective under unpredictable interference).
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(7)))
	m.CSProb = func(a, b int) float64 { return 0 }
	rts := &alwaysRTS{inner: &ratectl.Fixed{Index: 3}}
	s1 := m.NewStation(rts, perfectTrace(6, 5, 1, 1e-3))
	s2 := m.NewStation(&ratectl.Fixed{Index: 3}, perfectTrace(6, 5, 1, 1e-3))
	s1.RecordTx = true
	saturate(&eng, s1, 1400, 0.5)
	saturate(&eng, s2, 1400, 0.5)
	eng.Run(0.5)
	for _, r := range s1.Stats.Records {
		if r.Collided && r.Delivered {
			t.Fatal("a collided protected frame must not be delivered")
		}
		if r.Collided && !r.Silent {
			t.Fatal("protected-frame collisions must be silent (the RTS died, not the data)")
		}
	}
	if s1.Stats.Delivered == 0 {
		t.Fatal("protected station starved entirely")
	}
}

// TestRTSShieldsDataWhenExchangeClean verifies the other half: with no
// contention during the exchange, the reservation protects the data.
func TestRTSShieldsDataWhenExchangeClean(t *testing.T) {
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(8)))
	m.CSProb = func(a, b int) float64 { return 0 }
	rts := &alwaysRTS{inner: &ratectl.Fixed{Index: 3}}
	s1 := m.NewStation(rts, perfectTrace(6, 5, 1, 1e-3))
	s2 := m.NewStation(&ratectl.Fixed{Index: 3}, perfectTrace(6, 5, 1, 1e-3))
	s1.RecordTx = true
	// Only s1 transmits: its frames must all deliver despite CSProb 0.
	saturate(&eng, s1, 1400, 0.3)
	_ = s2
	eng.Run(0.3)
	if s1.Stats.Delivered == 0 || s1.Stats.Dropped > 0 {
		t.Fatalf("clean RTS exchange failed: delivered %d dropped %d",
			s1.Stats.Delivered, s1.Stats.Dropped)
	}
}

// alwaysRTS wraps an adapter and always requests RTS.
type alwaysRTS struct{ inner ratectl.Adapter }

func (a *alwaysRTS) Name() string              { return "RTS+" + a.inner.Name() }
func (a *alwaysRTS) NextRate(now float64) int  { return a.inner.NextRate(now) }
func (a *alwaysRTS) WantRTS() bool             { return true }
func (a *alwaysRTS) OnResult(r ratectl.Result) { a.inner.OnResult(r) }

func TestSilentLossOnUndetectedFrame(t *testing.T) {
	// A trace slot with Detected=false must produce a silent result.
	nSlots := 100
	snaps := make([][]trace.Snapshot, 6)
	for ri := range snaps {
		row := make([]trace.Snapshot, nSlots)
		for s := range row {
			row[s] = trace.Snapshot{Detected: false}
		}
		snaps[ri] = row
	}
	tr := trace.NewSynthetic(1e-3, 1400*8, snaps)
	var eng sim.Engine
	rec := &recordingAdapter{}
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(8)))
	st := m.NewStation(rec, tr)
	st.Enqueue(Packet{Bytes: 1400})
	eng.Run(1)
	if len(rec.results) == 0 {
		t.Fatal("no results recorded")
	}
	for _, r := range rec.results {
		if r.FeedbackReceived || r.Delivered {
			t.Fatal("undetected frame produced feedback")
		}
		if !math.IsNaN(r.SNRdB) {
			t.Fatal("silent loss must carry NaN SNR")
		}
	}
}

// recordingAdapter logs every result at a fixed rate.
type recordingAdapter struct {
	results []ratectl.Result
}

func (r *recordingAdapter) Name() string                { return "rec" }
func (r *recordingAdapter) NextRate(float64) int        { return 2 }
func (r *recordingAdapter) WantRTS() bool               { return false }
func (r *recordingAdapter) OnResult(res ratectl.Result) { r.results = append(r.results, res) }

func TestCollisionFeedbackGeometry(t *testing.T) {
	// Force a full overlap of a short and a long frame and verify the
	// preamble/postamble flags behave: the long frame keeps both clean
	// (interferer inside), the short frame loses both.
	cfg := DefaultConfig()
	cfg.Postamble = true
	var eng sim.Engine
	m := NewMedium(&eng, cfg, rand.New(rand.NewSource(9)))
	m.CSProb = func(a, b int) float64 { return 0 }
	long := m.NewStation(&ratectl.Fixed{Index: 0}, perfectTrace(6, 5, 1, 1e-3))
	short := m.NewStation(&ratectl.Fixed{Index: 0}, perfectTrace(6, 5, 1, 1e-3))
	long.RecordTx = true
	short.RecordTx = true
	// Long frame starts at ~0; short frame starts inside it.
	long.Enqueue(Packet{Bytes: 1400})
	eng.Run(0.0008)
	short.Enqueue(Packet{Bytes: 60})
	eng.Run(1)
	if len(long.Stats.Records) == 0 || len(short.Stats.Records) == 0 {
		t.Fatal("missing records")
	}
	lr := long.Stats.Records[0]
	sr := short.Stats.Records[0]
	if !lr.Collided || !sr.Collided {
		t.Fatalf("expected both to collide: %+v %+v", lr, sr)
	}
	if lr.PreambleLost {
		t.Fatal("long frame's preamble should be clean (interferer started later)")
	}
	if !sr.PreambleLost || !sr.PostambleLost {
		t.Fatalf("short frame fully inside the long one must lose both: %+v", sr)
	}
	if sr.Silent != true {
		t.Fatal("fully-overlapped short frame must be a silent loss")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, int) {
		var eng sim.Engine
		m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(42)))
		m.CSProb = func(a, b int) float64 { return 0.5 }
		s1 := m.NewStation(&ratectl.Fixed{Index: 2}, perfectTrace(6, 4, 1, 1e-3))
		s2 := m.NewStation(&ratectl.Fixed{Index: 3}, perfectTrace(6, 4, 1, 1e-3))
		saturate(&eng, s1, 1400, 0.4)
		saturate(&eng, s2, 1400, 0.4)
		eng.Run(0.4)
		return s1.Stats.Delivered, s2.Stats.Delivered
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

func TestQueueBound(t *testing.T) {
	var eng sim.Engine
	m := NewMedium(&eng, DefaultConfig(), rand.New(rand.NewSource(10)))
	st := m.NewStation(&ratectl.Fixed{Index: 3}, perfectTrace(6, 5, 1, 1e-3))
	st.MaxQueue = 5
	drops := 0
	st.OnDrop = func(Packet, float64) { drops++ }
	for i := 0; i < 10; i++ {
		st.Enqueue(Packet{Bytes: 1400, Seq: int64(i)})
	}
	if drops != 5 {
		t.Fatalf("dropped %d at enqueue, want 5", drops)
	}
	if st.QueueLen() != 5 {
		t.Fatalf("queue %d, want 5", st.QueueLen())
	}
}
