package ratectl

import (
	"softrate/internal/rate"
)

// RRAA implements Robust Rate Adaptation [24]: short-term frame loss
// ratios over a small estimation window drive the rate up or down against
// two per-rate thresholds, and an adaptive RTS filter (A-RTS) tries to
// shield the loss statistics from collisions.
//
//   - P_MTL(i) ("maximum tolerable loss") is the loss ratio at which rate
//     i's throughput falls to rate i-1's lossless throughput:
//     P_MTL = 1 - airtime(i)/airtime(i-1).
//   - P_ORI(i) ("opportunistic rate increase") is P_MTL(i+1)/10.
//
// After each estimation window of EWnd frames: loss ratio > P_MTL ⇒ step
// down; < P_ORI ⇒ step up; otherwise hold. A mid-window check steps down
// early once the losses already seen guarantee the window will exceed
// P_MTL (RRAA's responsiveness trick).
type RRAA struct {
	// Rates is the available rate set.
	Rates []rate.Rate
	// EWnd is the estimation window in frames (default 20).
	EWnd int
	// EnableARTS turns on the adaptive RTS filter.
	EnableARTS bool

	pmtl, pori []float64
	cur        int
	wndFrames  int
	wndLosses  int

	// A-RTS state.
	rtsWnd     int
	rtsCounter int
	lastRTS    bool
}

// NewRRAA builds an RRAA instance from the rate set and the per-rate
// lossless airtimes (same vector SampleRate uses).
func NewRRAA(rates []rate.Rate, lossless []float64, arts bool) *RRAA {
	n := len(rates)
	r := &RRAA{
		Rates:      rates,
		EWnd:       20,
		EnableARTS: arts,
		pmtl:       make([]float64, n),
		pori:       make([]float64, n),
	}
	for i := 1; i < n; i++ {
		r.pmtl[i] = 1 - lossless[i]/lossless[i-1]
		if r.pmtl[i] < 0.05 {
			r.pmtl[i] = 0.05
		}
	}
	r.pmtl[0] = 1.1 // lowest rate never steps down
	for i := 0; i < n-1; i++ {
		r.pori[i] = r.pmtl[i+1] / 10
	}
	r.pori[n-1] = 0 // highest rate never steps up
	return r
}

// Name implements Adapter.
func (r *RRAA) Name() string { return "RRAA" }

// NextRate implements Adapter.
func (r *RRAA) NextRate(float64) int { return r.cur }

// WantRTS implements Adapter: true while the adaptive RTS window is open.
func (r *RRAA) WantRTS() bool {
	r.lastRTS = r.EnableARTS && r.rtsCounter > 0
	if r.rtsCounter > 0 {
		r.rtsCounter--
	}
	return r.lastRTS
}

// OnResult implements Adapter.
func (r *RRAA) OnResult(res Result) {
	if r.EnableARTS {
		// A-RTS filter: a loss without RTS suggests a collision RTS
		// could have avoided — widen the RTS window. A loss with RTS on
		// (collision already prevented) means the loss was channel
		// noise — halve it.
		if (!res.UsedRTS && !res.Delivered) || (res.UsedRTS && res.Delivered) {
			if r.rtsWnd < 40 {
				r.rtsWnd++
			}
		} else {
			r.rtsWnd /= 2
		}
		if r.rtsCounter < r.rtsWnd {
			r.rtsCounter = r.rtsWnd
		}
		// Losses protected by RTS are excluded from loss statistics:
		// they cannot have been collisions... and conversely: RRAA
		// counts only non-RTS frames toward the loss ratio when A-RTS
		// active. Simpler and faithful enough: count everything; the
		// filter's job is to prevent the collisions themselves.
	}

	r.wndFrames++
	if !res.Delivered {
		r.wndLosses++
	}

	lossRatio := float64(r.wndLosses) / float64(r.EWnd)
	if lossRatio > r.pmtl[r.cur] {
		// Early exit: even if the rest of the window is clean the loss
		// ratio already exceeds P_MTL.
		r.stepDown()
		return
	}
	if r.wndFrames >= r.EWnd {
		p := float64(r.wndLosses) / float64(r.wndFrames)
		switch {
		case p > r.pmtl[r.cur]:
			r.stepDown()
		case p < r.pori[r.cur]:
			r.stepUp()
		default:
			r.resetWindow()
		}
	}
}

func (r *RRAA) stepDown() {
	if r.cur > 0 {
		r.cur--
	}
	r.resetWindow()
}

func (r *RRAA) stepUp() {
	if r.cur < len(r.Rates)-1 {
		r.cur++
	}
	r.resetWindow()
}

func (r *RRAA) resetWindow() {
	r.wndFrames = 0
	r.wndLosses = 0
}
