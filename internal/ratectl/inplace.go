package ratectl

import (
	"math"

	"softrate/internal/bitutil"

	"encoding/binary"
)

// This file is SampleRate's in-slab execution engine: OnResult + NextRate
// run directly against an encoded snapshot (state.go's layout), so a store
// can service a feedback op without the DecodeState → EncodeState round
// trip. For SampleRate that round trip is ~1.7 KB of parsing and
// re-serialization per op while the op itself touches one ring slot and a
// few counters — it dominates the serving cost of the algorithm (the
// SampleRate row of BENCH_loadgen.json).
//
// The contract is strict byte equivalence: for any snapshot buffer,
// ApplyEncoded(buf, res) leaves buf exactly as DecodeState(buf) →
// OnResult(res) → NextRate(res.Time) → EncodeState(buf) would — including
// the bytes beyond each ring's live length, which EncodeState leaves
// untouched and ApplyEncoded therefore never writes either. The decision
// returned is identical too. TestInPlaceMatchesCodecPath holds both
// properties over long randomized runs.

// InPlaceOK reports whether this configuration supports the in-place
// engine: a fixed-width snapshot (bounded WindowCap) and a relocatable
// SplitMix PRNG whose state lives in the snapshot header. The simulators'
// unbounded, shared-*rand.Rand instances do not qualify and keep using the
// codec path.
func (s *SampleRate) InPlaceOK() bool {
	if s.WindowCap <= 0 || s.WindowCap > 255 {
		return false
	}
	_, ok := s.Rng.(*SplitMix)
	return ok
}

// ApplyEncoded performs OnResult(res) followed by NextRate(res.Time)
// directly on the encoded snapshot st (the layout written by EncodeState,
// without the wrapper's clock prefix). It returns the chosen rate index
// and ok=true; ok=false means the configuration does not support in-place
// execution or st failed validation, in which case st is untouched and the
// caller should fall back to the codec path.
func (s *SampleRate) ApplyEncoded(st []byte, res Result) (int, bool) {
	if !s.InPlaceOK() || len(st) < s.StateLen() {
		return 0, false
	}
	wcap := s.WindowCap
	stride := 2 + wcap*srSampleBytes
	// Validate every ring length before mutating anything, so a corrupt
	// buffer is rejected whole rather than half-applied.
	for i := range s.Rates {
		if int(st[srHeaderBytes+i*stride+1]) > wcap {
			return 0, false
		}
	}

	// --- OnResult(res), against the encoded rings ---
	if i := res.RateIndex; i >= 0 && i < len(s.Rates) {
		off := srHeaderBytes + i*stride
		n := int(st[off+1])
		samples := st[off+2 : off+2+wcap*srSampleBytes]
		// The oldest sample goes first when the ring is at cap
		// (push-overwrite), then any further leading samples that have
		// aged out of twice the averaging window (OnResult's expiry).
		drop := 0
		if n >= wcap {
			drop = 1
		}
		cut := res.Time - 2*s.Window
		for drop < n {
			t := math.Float64frombits(binary.LittleEndian.Uint64(samples[drop*srSampleBytes:]))
			if t >= cut {
				break
			}
			drop++
		}
		if drop > 0 {
			copy(samples, samples[drop*srSampleBytes:n*srSampleBytes])
			n -= drop
		}
		p := n * srSampleBytes
		binary.LittleEndian.PutUint64(samples[p:], math.Float64bits(res.Time))
		binary.LittleEndian.PutUint64(samples[p+8:], math.Float64bits(res.Airtime))
		if res.Delivered {
			samples[p+16] = 1
		} else {
			samples[p+16] = 0
		}
		st[off+1] = uint8(n + 1)

		if res.Delivered {
			st[off] = 0
		} else if st[off] < 255 {
			// The in-memory counter can exceed 255 but encodes saturated;
			// saturating here is byte-identical and behaviourally identical
			// (every comparison is against MaxConsecFail, far below 255).
			st[off]++
		}
		// If every rate is locked out, forgive — exactly OnResult's rule.
		all := true
		for j := range s.Rates {
			if int(st[srHeaderBytes+j*stride]) < s.MaxConsecFail {
				all = false
				break
			}
		}
		if all {
			for j := range s.Rates {
				st[srHeaderBytes+j*stride] = 0
			}
		}
	}

	// --- NextRate(res.Time), against the encoded rings ---
	now := res.Time
	winStart := now - s.Window
	best, bestT := 0, math.Inf(1)
	for i := range s.Rates {
		off := srHeaderBytes + i*stride
		n := int(st[off+1])
		var total float64
		cnt, okCnt := 0, 0
		for k := 0; k < n; k++ {
			p := off + 2 + k*srSampleBytes
			if math.Float64frombits(binary.LittleEndian.Uint64(st[p:])) < winStart {
				continue
			}
			cnt++
			total += math.Float64frombits(binary.LittleEndian.Uint64(st[p+8:]))
			if st[p+16] != 0 {
				okCnt++
			}
		}
		var avg float64
		switch {
		case cnt == 0:
			avg = s.LosslessAirtime[i] // optimistic: untried rates look good
		case okCnt == 0:
			avg = math.Inf(1)
		default:
			avg = total / float64(okCnt)
		}
		if avg < bestT {
			best, bestT = i, avg
		}
	}
	frameCount := binary.LittleEndian.Uint64(st[0:8]) + 1
	binary.LittleEndian.PutUint64(st[0:8], frameCount)
	if s.ProbeEvery > 0 && frameCount%uint64(s.ProbeEvery) == 0 {
		cands := s.cands[:0]
		for i := range s.Rates {
			if i == best || int(st[srHeaderBytes+i*stride]) >= s.MaxConsecFail {
				continue
			}
			if s.LosslessAirtime[i] < bestT {
				cands = append(cands, i)
			}
		}
		s.cands = cands
		if len(cands) > 0 {
			// SplitMix.Intn inlined against the header-resident PRNG state.
			rng := binary.LittleEndian.Uint64(st[8:16]) + 0x9e3779b97f4a7c15
			binary.LittleEndian.PutUint64(st[8:16], rng)
			return cands[int(bitutil.Mix64(rng)%uint64(len(cands)))], true
		}
	}
	return best, true
}
