package ratectl

import (
	"encoding/binary"
	"fmt"
	"math"

	"softrate/internal/bitutil"
)

// This file makes the frame-level algorithms relocatable: each gets a
// compact fixed-width binary snapshot of its dynamic state (windows,
// counters, EWMA — everything that distinguishes a live instance from a
// freshly built one with the same configuration), so a store can evict a
// link to bytes and later rebuild an equivalent controller, exactly like
// core.SoftRate's 8-byte State. The contract shared by all three codecs:
//
//   - StateLen is a pure function of the configuration (never of the
//     dynamic state), so stores can slab-allocate fixed-width slots.
//   - EncodeState writes into dst[:StateLen()]; DecodeState overwrites the
//     dynamic state from src[:StateLen()]. A Decode → apply → Encode cycle
//     through any instance built with the same configuration yields
//     byte-identical decisions to a long-lived instance.
//
// All multi-byte fields are little-endian; floats are IEEE 754 bit
// patterns (lossless round-trip).

// SplitMix is an 8-byte-state PRNG (SplitMix64: a Weyl sequence finalized
// by bitutil.Mix64). It exists so SampleRate's probe randomness can ride
// along in the algorithm snapshot: *math/rand.Rand has unexportable
// internal state, a SplitMix relocates as one uint64.
type SplitMix struct {
	state uint64
}

// NewSplitMix seeds a SplitMix PRNG.
func NewSplitMix(seed uint64) *SplitMix { return &SplitMix{state: seed} }

// Intn implements Intner: a uniform-enough draw in [0, n) (modulo bias is
// irrelevant at the candidate-set sizes SampleRate draws over).
func (s *SplitMix) Intn(n int) int {
	s.state += 0x9e3779b97f4a7c15
	return int(bitutil.Mix64(s.state) % uint64(n))
}

// --- SampleRate ---

// srSampleBytes is the encoded size of one ring sample: time f64,
// airtime f64, delivered flag.
const srSampleBytes = 17

// srHeaderBytes covers frameCount (u64) and the SplitMix state (u64).
const srHeaderBytes = 16

// StateLen returns the snapshot size. It requires a positive WindowCap
// (≤ 255): unbounded rings have no fixed width, so only cap-bounded
// instances — the decision service's — are relocatable.
func (s *SampleRate) StateLen() int {
	if s.WindowCap <= 0 || s.WindowCap > 255 {
		panic(fmt.Sprintf("ratectl: SampleRate.StateLen needs WindowCap in [1,255], have %d", s.WindowCap))
	}
	return srHeaderBytes + len(s.Rates)*(2+s.WindowCap*srSampleBytes)
}

// EncodeState writes the dynamic state into dst[:StateLen()]. Ring slots
// beyond each ring's current length are left untouched (DecodeState never
// reads them). If Rng is not a *SplitMix the PRNG state is encoded as
// zero and a decoding instance reseeds deterministically.
func (s *SampleRate) EncodeState(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], s.frameCount)
	var rng uint64
	if sm, ok := s.Rng.(*SplitMix); ok {
		rng = sm.state
	}
	binary.LittleEndian.PutUint64(dst[8:16], rng)
	off := srHeaderBytes
	stride := 2 + s.WindowCap*srSampleBytes
	for i := range s.Rates {
		cf := s.consecFail[i]
		if cf > 255 {
			cf = 255
		}
		r := &s.rings[i]
		dst[off] = uint8(cf)
		dst[off+1] = uint8(r.n)
		p := off + 2
		for k := 0; k < r.n; k++ {
			sm := r.at(k)
			binary.LittleEndian.PutUint64(dst[p:p+8], math.Float64bits(sm.time))
			binary.LittleEndian.PutUint64(dst[p+8:p+16], math.Float64bits(sm.airtime))
			if sm.ok {
				dst[p+16] = 1
			} else {
				dst[p+16] = 0
			}
			p += srSampleBytes
		}
		off += stride
	}
}

// DecodeState overwrites the dynamic state from src[:StateLen()].
func (s *SampleRate) DecodeState(src []byte) error {
	if len(src) < s.StateLen() {
		return fmt.Errorf("ratectl: SampleRate state is %d bytes, need %d", len(src), s.StateLen())
	}
	s.frameCount = binary.LittleEndian.Uint64(src[0:8])
	if sm, ok := s.Rng.(*SplitMix); ok {
		sm.state = binary.LittleEndian.Uint64(src[8:16])
	}
	off := srHeaderBytes
	stride := 2 + s.WindowCap*srSampleBytes
	for i := range s.Rates {
		s.consecFail[i] = int(src[off])
		n := int(src[off+1])
		if n > s.WindowCap {
			return fmt.Errorf("ratectl: SampleRate ring %d holds %d samples, cap %d", i, n, s.WindowCap)
		}
		r := &s.rings[i]
		if len(r.buf) < n {
			r.grow(n)
		}
		r.head, r.n = 0, n
		p := off + 2
		for k := 0; k < n; k++ {
			r.buf[k] = srSample{
				time:    math.Float64frombits(binary.LittleEndian.Uint64(src[p : p+8])),
				airtime: math.Float64frombits(binary.LittleEndian.Uint64(src[p+8 : p+16])),
				ok:      src[p+16] != 0,
			}
			p += srSampleBytes
		}
		off += stride
	}
	return nil
}

// --- RRAA ---

// rraaStateBytes: cur u8, rtsWnd u8, rtsCounter u8, pad, wndFrames u16,
// wndLosses u16.
const rraaStateBytes = 8

// StateLen returns the snapshot size (8 bytes; the P_MTL/P_ORI thresholds
// are pure functions of the configuration).
func (r *RRAA) StateLen() int { return rraaStateBytes }

// EncodeState writes the dynamic state into dst[:8].
func (r *RRAA) EncodeState(dst []byte) {
	dst[0] = uint8(r.cur)
	dst[1] = uint8(min(r.rtsWnd, 255))
	dst[2] = uint8(min(r.rtsCounter, 255))
	dst[3] = 0
	binary.LittleEndian.PutUint16(dst[4:6], uint16(min(r.wndFrames, 65535)))
	binary.LittleEndian.PutUint16(dst[6:8], uint16(min(r.wndLosses, 65535)))
}

// DecodeState overwrites the dynamic state from src[:8].
func (r *RRAA) DecodeState(src []byte) error {
	if len(src) < rraaStateBytes {
		return fmt.Errorf("ratectl: RRAA state is %d bytes, need %d", len(src), rraaStateBytes)
	}
	r.cur = int(src[0])
	if max := len(r.Rates) - 1; r.cur > max {
		r.cur = max
	}
	r.rtsWnd = int(src[1])
	r.rtsCounter = int(src[2])
	r.wndFrames = int(binary.LittleEndian.Uint16(src[4:6]))
	r.wndLosses = int(binary.LittleEndian.Uint16(src[6:8]))
	return nil
}

// --- SNRBased (per-frame SNR and CHARM) ---

// snrStateBytes: flags u8 (bit0 haveSNR), silent u8, downBias u8, pad,
// snrDB f64.
const snrStateBytes = 12

// StateLen returns the snapshot size (12 bytes; the thresholds are
// configuration).
func (s *SNRBased) StateLen() int { return snrStateBytes }

// EncodeState writes the dynamic state into dst[:12].
func (s *SNRBased) EncodeState(dst []byte) {
	if s.haveSNR {
		dst[0] = 1
	} else {
		dst[0] = 0
	}
	dst[1] = uint8(min(s.silent, 255))
	dst[2] = uint8(min(s.downBias, 255))
	dst[3] = 0
	binary.LittleEndian.PutUint64(dst[4:12], math.Float64bits(s.snrDB))
}

// DecodeState overwrites the dynamic state from src[:12].
func (s *SNRBased) DecodeState(src []byte) error {
	if len(src) < snrStateBytes {
		return fmt.Errorf("ratectl: SNRBased state is %d bytes, need %d", len(src), snrStateBytes)
	}
	s.haveSNR = src[0] != 0
	s.silent = int(src[1])
	s.downBias = int(src[2])
	if s.downBias > len(s.Thresholds) {
		s.downBias = len(s.Thresholds)
	}
	s.snrDB = math.Float64frombits(binary.LittleEndian.Uint64(src[4:12]))
	return nil
}
