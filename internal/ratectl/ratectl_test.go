package ratectl

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
)

func lossless1400() []float64 {
	return ratesAirtime(rate.Evaluation(), func(r rate.Rate) float64 {
		return ofdm.Simulation.PayloadAirtime(1400, r, false)
	})
}

func TestFixed(t *testing.T) {
	f := &Fixed{Index: 3}
	if f.NextRate(0) != 3 || f.WantRTS() {
		t.Fatal("Fixed misbehaves")
	}
	if f.Name() != "Fixed" {
		t.Fatal("name")
	}
	f.Label = "Fixed-18"
	if f.Name() != "Fixed-18" {
		t.Fatal("label override")
	}
	f.OnResult(Result{}) // must be a no-op
	if f.NextRate(1) != 3 {
		t.Fatal("Fixed changed rate")
	}
}

func TestOmniscient(t *testing.T) {
	o := &Omniscient{Oracle: func(now float64) int { return int(now) % 5 }}
	if o.NextRate(3.7) != 3 {
		t.Fatal("oracle not consulted")
	}
	if o.Name() != "Omniscient" || o.WantRTS() {
		t.Fatal("metadata wrong")
	}
}

func TestSoftRateAdapterRouting(t *testing.T) {
	a := NewSoftRate(core.DefaultConfig())
	if a.Name() != "SoftRate" || a.WantRTS() {
		t.Fatal("metadata wrong")
	}
	// Drive up with very low BER feedback.
	start := a.NextRate(0)
	a.OnResult(Result{RateIndex: start, FeedbackReceived: true, BER: 1e-12})
	if a.NextRate(0) <= start {
		t.Fatal("low-BER feedback did not raise rate")
	}
	// Three silent losses step down.
	cur := a.NextRate(0)
	for i := 0; i < 3; i++ {
		a.OnResult(Result{RateIndex: cur, FeedbackReceived: false})
	}
	if a.NextRate(0) != cur-1 {
		t.Fatalf("silent losses moved rate to %d, want %d", a.NextRate(0), cur-1)
	}
	// Postamble-only feedback resets the silent counter and holds rate.
	cur = a.NextRate(0)
	a.OnResult(Result{RateIndex: cur, FeedbackReceived: true, PostambleOnly: true})
	if a.NextRate(0) != cur {
		t.Fatal("postamble-only feedback changed rate")
	}
}

func TestSNRBasedMapping(t *testing.T) {
	th := []float64{0, 5, 10, 15, 20, 25}
	s := NewSNRBased(th, "SNR (trained)")
	if s.Name() != "SNR (trained)" {
		t.Fatal("label")
	}
	// Before any feedback: lowest rate.
	if s.NextRate(0) != 0 {
		t.Fatal("must start at the lowest rate")
	}
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 17})
	if got := s.NextRate(0); got != 3 {
		t.Fatalf("SNR 17 dB -> rate %d, want 3", got)
	}
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 99})
	if got := s.NextRate(0); got != 5 {
		t.Fatalf("SNR 99 dB -> rate %d, want 5 (clamped)", got)
	}
}

func TestSNRBasedSilentLossBias(t *testing.T) {
	th := []float64{0, 5, 10, 15, 20, 25}
	s := NewSNRBased(th, "")
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 30})
	if s.NextRate(0) != 5 {
		t.Fatal("setup failed")
	}
	for i := 0; i < 3; i++ {
		s.OnResult(Result{FeedbackReceived: false, SNRdB: math.NaN()})
	}
	if got := s.NextRate(0); got != 4 {
		t.Fatalf("after 3 silent losses rate %d, want 4", got)
	}
	// Fresh SNR clears the bias.
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 30})
	if s.NextRate(0) != 5 {
		t.Fatal("bias not cleared by fresh SNR")
	}
}

func TestCHARMSmoothes(t *testing.T) {
	th := []float64{0, 5, 10, 15, 20, 25}
	c := NewCHARM(th)
	if c.Name() != "CHARM" {
		t.Fatal("name")
	}
	c.OnResult(Result{FeedbackReceived: true, SNRdB: 25})
	// A single outlier dip must *not* drop the averaged estimate much:
	// 0.9*25 + 0.1*0 = 22.5 dB, still rate 4.
	c.OnResult(Result{FeedbackReceived: true, SNRdB: 0})
	if got := c.NextRate(0); got != 4 {
		t.Fatalf("CHARM moved to %d on a single outlier, want 4", got)
	}
	// The per-frame variant would have crashed to rate 0.
	s := NewSNRBased(th, "")
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 25})
	s.OnResult(Result{FeedbackReceived: true, SNRdB: 0})
	if got := s.NextRate(0); got != 0 {
		t.Fatalf("per-frame SNR moved to %d on outlier, want 0", got)
	}
}

func TestTrainThresholds(t *testing.T) {
	// Synthetic ground truth: rate i usable from 5*i dB upward.
	var samples []TrainingSample
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 6; i++ {
		for snr := -5.0; snr < 35; snr += 0.25 {
			for k := 0; k < 4; k++ {
				ok := snr >= float64(5*i)
				// 5% label noise.
				if rng.Float64() < 0.05 {
					ok = !ok
				}
				samples = append(samples, TrainingSample{RateIndex: i, SNRdB: snr, Delivered: ok})
			}
		}
	}
	th := TrainThresholds(samples, 6, 0.9)
	for i := range th {
		want := float64(5 * i)
		if math.Abs(th[i]-want) > 2.5 {
			t.Errorf("threshold[%d] = %v, want ~%v", i, th[i], want)
		}
	}
	// Monotone.
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatalf("thresholds not monotone: %v", th)
		}
	}
}

func TestTrainThresholdsEmptyRate(t *testing.T) {
	th := TrainThresholds(nil, 3, 0.9)
	if math.IsInf(th[0], 1) {
		t.Fatal("rate 0 threshold must be finite even without data")
	}
}

func TestSampleRateStartsOptimistic(t *testing.T) {
	sr := NewSampleRate(rate.Evaluation(), lossless1400(), rand.New(rand.NewSource(2)))
	// With no data, every rate looks lossless, so the highest (shortest
	// airtime) wins.
	if got := sr.NextRate(0); got != 5 {
		t.Fatalf("initial rate %d, want 5", got)
	}
}

func TestSampleRateConvergesToBestRate(t *testing.T) {
	// Channel: rates 0..3 always deliver, rates 4,5 always fail. The
	// throughput-optimal choice is rate 3.
	sr := NewSampleRate(rate.Evaluation(), lossless1400(), rand.New(rand.NewSource(3)))
	now := 0.0
	for i := 0; i < 300; i++ {
		idx := sr.NextRate(now)
		ok := idx <= 3
		at := lossless1400()[idx]
		if !ok {
			at *= 2 // retries burn extra airtime
		}
		now += at
		sr.OnResult(Result{Time: now, RateIndex: idx, Airtime: at, Delivered: ok})
	}
	// Count decisions over the next 50 frames.
	votes := map[int]int{}
	for i := 0; i < 50; i++ {
		idx := sr.NextRate(now)
		votes[idx]++
		at := lossless1400()[idx]
		now += at
		sr.OnResult(Result{Time: now, RateIndex: idx, Airtime: at, Delivered: idx <= 3})
	}
	if votes[3] < 40 {
		t.Fatalf("SampleRate chose rate 3 only %d/50 times: %v", votes[3], votes)
	}
}

func TestSampleRateProbes(t *testing.T) {
	sr := NewSampleRate(rate.Evaluation(), lossless1400(), rand.New(rand.NewSource(4)))
	sr.ProbeEvery = 5
	now := 0.0
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		idx := sr.NextRate(now)
		seen[idx] = true
		at := lossless1400()[idx]
		now += at
		// Rate 2 is best; everything else fails.
		sr.OnResult(Result{Time: now, RateIndex: idx, Airtime: at, Delivered: idx == 2})
	}
	if len(seen) < 3 {
		t.Fatalf("SampleRate explored only %d rates", len(seen))
	}
	if !seen[2] {
		t.Fatal("never found the working rate")
	}
}

func TestSampleRateWindowForgets(t *testing.T) {
	// A rate that failed long ago must become eligible again once its
	// failures age out of the window (via the optimistic default).
	sr := NewSampleRate(rate.Evaluation(), lossless1400(), rand.New(rand.NewSource(5)))
	sr.Window = 0.5
	for i := 0; i < 4; i++ {
		sr.OnResult(Result{Time: 0.01 * float64(i), RateIndex: 5, Airtime: 1e-3, Delivered: false})
	}
	if sr.avgTxTime(5, 0.05) != math.Inf(1) {
		t.Fatal("recent failures must give +Inf metric")
	}
	// consecFail keeps rate 5 locked out even after the window; clear it
	// by a success elsewhere... it's per-rate, so check the window path:
	sr.consecFail[5] = 0
	if got := sr.avgTxTime(5, 10); got != sr.LosslessAirtime[5] {
		t.Fatalf("aged-out rate metric %v, want optimistic lossless", got)
	}
}

func TestRRAAThresholds(t *testing.T) {
	r := NewRRAA(rate.Evaluation(), lossless1400(), false)
	for i := 1; i < 6; i++ {
		if r.pmtl[i] <= 0 || r.pmtl[i] >= 1 {
			t.Fatalf("P_MTL[%d] = %v out of (0,1)", i, r.pmtl[i])
		}
	}
	for i := 0; i < 5; i++ {
		if r.pori[i] >= r.pmtl[i+1] {
			t.Fatalf("P_ORI[%d]=%v not below P_MTL[%d]=%v", i, r.pori[i], i+1, r.pmtl[i+1])
		}
	}
	if r.pmtl[0] <= 1 {
		t.Fatal("lowest rate must never step down")
	}
}

func TestRRAAStepsDownFastUnderLoss(t *testing.T) {
	r := NewRRAA(rate.Evaluation(), lossless1400(), false)
	r.cur = 5
	frames := 0
	for r.NextRate(0) == 5 && frames < 100 {
		r.OnResult(Result{RateIndex: 5, Delivered: false})
		frames++
	}
	// With the early-exit check RRAA abandons a failing rate within a few
	// frames (P_MTL*EWnd ≈ 4-8 losses), far sooner than a full window.
	if frames > r.EWnd {
		t.Fatalf("RRAA took %d frames to react (window %d)", frames, r.EWnd)
	}
}

func TestRRAAStepsUpOnCleanWindows(t *testing.T) {
	r := NewRRAA(rate.Evaluation(), lossless1400(), false)
	if r.NextRate(0) != 0 {
		t.Fatal("RRAA must start at the lowest rate")
	}
	for i := 0; i < r.EWnd*8; i++ {
		r.OnResult(Result{RateIndex: r.NextRate(0), Delivered: true})
	}
	if got := r.NextRate(0); got < 3 {
		t.Fatalf("after clean windows rate %d, want >= 3", got)
	}
}

func TestRRAAHoldsInBand(t *testing.T) {
	// Loss ratio between P_ORI and P_MTL: hold.
	r := NewRRAA(rate.Evaluation(), lossless1400(), false)
	r.cur = 3
	p := (r.pori[3] + r.pmtl[3]) / 2
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < r.EWnd*6; i++ {
		r.OnResult(Result{RateIndex: 3, Delivered: rng.Float64() > p})
	}
	if got := r.NextRate(0); got < 2 || got > 4 {
		t.Fatalf("in-band loss moved rate to %d", got)
	}
}

func TestRRAAAdaptiveRTS(t *testing.T) {
	r := NewRRAA(rate.Evaluation(), lossless1400(), true)
	if r.WantRTS() {
		t.Fatal("RTS must start off")
	}
	// Unprotected losses grow the RTS window.
	for i := 0; i < 5; i++ {
		r.OnResult(Result{RateIndex: 0, Delivered: false, UsedRTS: false})
	}
	if !r.WantRTS() {
		t.Fatal("RTS window did not open after unprotected losses")
	}
	// Losses *with* RTS shrink it back.
	for i := 0; i < 10; i++ {
		r.OnResult(Result{RateIndex: 0, Delivered: false, UsedRTS: true})
	}
	// Drain the counter.
	for i := 0; i < 50; i++ {
		r.WantRTS()
	}
	if r.rtsWnd != 0 {
		t.Fatalf("rtsWnd = %d after protected losses, want 0", r.rtsWnd)
	}
}

func TestRRAAWithoutARTSNeverRTS(t *testing.T) {
	r := NewRRAA(rate.Evaluation(), lossless1400(), false)
	for i := 0; i < 10; i++ {
		r.OnResult(Result{RateIndex: 0, Delivered: false})
		if r.WantRTS() {
			t.Fatal("A-RTS disabled but RTS requested")
		}
	}
}
