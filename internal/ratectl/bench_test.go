package ratectl

import (
	"testing"

	"softrate/internal/rate"
)

// The per-frame feedback path of every §6.1 algorithm is hot in both the
// MAC simulators and the decision service, so — mirroring core's
// BenchmarkOnFeedback — each algorithm gets an allocation-tracking
// benchmark of one decide→observe cycle. SampleRate's ring buffers reach
// a steady state during warmup; after that the loop must not allocate.

// benchCycle drives one NextRate/OnResult round at virtual time t.
func benchCycle(a Adapter, t float64, delivered bool) {
	ri := a.NextRate(t)
	a.OnResult(Result{
		Time:      t,
		RateIndex: ri,
		Airtime:   1e-3,
		Delivered: delivered,
		// FeedbackReceived and the BER drive SoftRate-style consumers;
		// harmless for the others.
		FeedbackReceived: delivered,
		BER:              1e-6,
		SNRdB:            15,
	})
}

func benchAdapter(b *testing.B, mk func() Adapter) {
	a := mk()
	// Warmup: let windows fill and rings grow to their working size.
	for i := 0; i < 4096; i++ {
		benchCycle(a, float64(i)*1e-3, i%7 != 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCycle(a, float64(4096+i)*1e-3, i%7 != 0)
	}
}

func BenchmarkOnResult(b *testing.B) {
	rates := rate.Evaluation()
	lossless := lossless1400()
	b.Run("SampleRate", func(b *testing.B) {
		benchAdapter(b, func() Adapter {
			return NewSampleRate(rates, lossless, NewSplitMix(1))
		})
	})
	b.Run("SampleRate/capped", func(b *testing.B) {
		benchAdapter(b, func() Adapter {
			s := NewSampleRate(rates, lossless, NewSplitMix(1))
			s.WindowCap = 16
			return s
		})
	})
	b.Run("RRAA", func(b *testing.B) {
		benchAdapter(b, func() Adapter {
			return NewRRAA(rates, lossless, true)
		})
	})
	b.Run("SNR", func(b *testing.B) {
		benchAdapter(b, func() Adapter {
			return NewSNRBased([]float64{3, 6, 9, 12, 16, 20}, "SNR")
		})
	})
	b.Run("CHARM", func(b *testing.B) {
		benchAdapter(b, func() Adapter {
			return NewCHARM([]float64{3, 6, 9, 12, 16, 20})
		})
	})
}

// BenchmarkEncodeDecodeState measures the snapshot round-trip the store
// pays per op for each relocatable algorithm.
func BenchmarkEncodeDecodeState(b *testing.B) {
	rates := rate.Evaluation()
	lossless := lossless1400()

	b.Run("SampleRate", func(b *testing.B) {
		s := NewSampleRate(rates, lossless, NewSplitMix(1))
		s.WindowCap = 16
		for i := 0; i < 4096; i++ {
			benchCycle(s, float64(i)*1e-3, i%7 != 0)
		}
		buf := make([]byte, s.StateLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.EncodeState(buf)
			if err := s.DecodeState(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RRAA", func(b *testing.B) {
		r := NewRRAA(rates, lossless, false)
		buf := make([]byte, r.StateLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.EncodeState(buf)
			if err := r.DecodeState(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SNR", func(b *testing.B) {
		s := NewSNRBased([]float64{3, 6, 9, 12, 16, 20}, "SNR")
		s.OnResult(Result{FeedbackReceived: true, SNRdB: 14})
		buf := make([]byte, s.StateLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.EncodeState(buf)
			if err := s.DecodeState(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestOnResultDoesNotAllocateSteadyState pins the satellite requirement
// (not just benchmarks it): after warmup, a feedback cycle performs zero
// heap allocations for every algorithm.
func TestOnResultDoesNotAllocateSteadyState(t *testing.T) {
	rates := rate.Evaluation()
	lossless := lossless1400()
	mks := map[string]func() Adapter{
		"SampleRate": func() Adapter { return NewSampleRate(rates, lossless, NewSplitMix(1)) },
		"SampleRate/capped": func() Adapter {
			s := NewSampleRate(rates, lossless, NewSplitMix(1))
			s.WindowCap = 16
			return s
		},
		"RRAA": func() Adapter { return NewRRAA(rates, lossless, true) },
		"SNR":  func() Adapter { return NewSNRBased([]float64{3, 6, 9, 12, 16, 20}, "SNR") },
	}
	for name, mk := range mks {
		a := mk()
		for i := 0; i < 4096; i++ {
			benchCycle(a, float64(i)*1e-3, i%7 != 0)
		}
		n := 1000
		avg := testing.AllocsPerRun(n, func() {
			benchCycle(a, 4.2, true)
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per steady-state feedback cycle, want 0", name, avg)
		}
	}
}

// TestSampleRateRingMatchesUnboundedHistory replays the same outcome
// sequence through a capped and an uncapped instance whose in-window
// sample count never exceeds the cap: their decisions must be identical —
// the ring is a memory bound, not a behaviour change, until it saturates.
func TestSampleRateRingMatchesUnboundedHistory(t *testing.T) {
	rates := rate.Evaluation()
	lossless := lossless1400()
	a := NewSampleRate(rates, lossless, NewSplitMix(9))
	b := NewSampleRate(rates, lossless, NewSplitMix(9))
	b.WindowCap = 255 // larger than one window's worth of frames below
	rng := NewSplitMix(77)
	ta, tb := 0.0, 0.0
	for i := 0; i < 20000; i++ {
		// ~50 frames per 1s window per rate at most: far below the cap.
		dt := 0.02 + float64(rng.Intn(100))/5000
		ta += dt
		tb += dt
		ra, rb := a.NextRate(ta), b.NextRate(tb)
		if ra != rb {
			t.Fatalf("frame %d: capped chose %d, unbounded %d", i, rb, ra)
		}
		ok := rng.Intn(5) != 0
		air := 1e-3 * float64(1+rng.Intn(3))
		a.OnResult(Result{Time: ta, RateIndex: ra, Airtime: air, Delivered: ok})
		b.OnResult(Result{Time: tb, RateIndex: rb, Airtime: air, Delivered: ok})
	}
}
