// Package ratectl provides the rate adaptation algorithms SoftRate is
// evaluated against (§6.1): the frame-level protocols SampleRate [4] and
// RRAA [24], two SNR-based protocols (a per-frame RBAR-like scheme and a
// CHARM-like averaged-SNR scheme), an omniscient oracle, and a fixed-rate
// control — plus the Adapter wrapper for SoftRate itself so every
// algorithm drives the same MAC through one interface.
package ratectl

import (
	"math"

	"softrate/internal/core"
	"softrate/internal/rate"
)

// Result reports the outcome of one frame transmission to the adaptation
// algorithm. Fields not applicable to a given protocol are simply ignored
// by it; this mirrors reality, where the information *exists* at the
// receiver and each protocol chooses which part of it to feed back.
type Result struct {
	// Time is when the transmission completed (seconds).
	Time float64
	// RateIndex is the rate the frame was sent at.
	RateIndex int
	// Airtime is the time spent on this transmission attempt, including
	// MAC overheads (used by SampleRate's transmission-time metric).
	Airtime float64
	// Delivered reports whether the frame was ACKed (body intact).
	Delivered bool
	// FeedbackReceived reports whether *any* link-layer feedback arrived
	// (SoftRate receivers ACK errored frames too, carrying BER).
	FeedbackReceived bool
	// PostambleOnly reports a postamble-only ACK: the receiver caught
	// only the tail of a collided frame (§3.2).
	PostambleOnly bool
	// BER is the interference-free BER estimate from SoftPHY feedback.
	BER float64
	// Collision is the SoftRate receiver's interference verdict.
	Collision bool
	// SNRdB is the receiver's SNR estimate echoed in the ACK (NaN when
	// no feedback arrived).
	SNRdB float64
	// UsedRTS reports whether this transmission was preceded by RTS/CTS.
	UsedRTS bool
}

// Adapter is a sender-side rate adaptation algorithm.
type Adapter interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// NextRate returns the rate index to use for the next frame.
	NextRate(now float64) int
	// WantRTS reports whether the next frame should use RTS/CTS
	// (RRAA's adaptive RTS filter; other algorithms return false).
	WantRTS() bool
	// OnResult feeds back the outcome of a transmission.
	OnResult(res Result)
}

// Fixed always transmits at one rate.
type Fixed struct {
	// Index is the rate index to use.
	Index int
	// Label optionally overrides the name.
	Label string
}

// Name implements Adapter.
func (f *Fixed) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "Fixed"
}

// NextRate implements Adapter.
func (f *Fixed) NextRate(float64) int { return f.Index }

// WantRTS implements Adapter.
func (f *Fixed) WantRTS() bool { return false }

// OnResult implements Adapter.
func (f *Fixed) OnResult(Result) {}

// Omniscient consults an oracle that knows the channel's future: it
// returns, for any instant, the highest rate index guaranteed to deliver a
// frame started then ("always picks the highest rate guaranteed to
// succeed", §6.1). The oracle function is supplied by the trace harness.
type Omniscient struct {
	// Oracle maps a transmission start time to the optimal rate index.
	Oracle func(now float64) int
}

// Name implements Adapter.
func (o *Omniscient) Name() string { return "Omniscient" }

// NextRate implements Adapter.
func (o *Omniscient) NextRate(now float64) int { return o.Oracle(now) }

// WantRTS implements Adapter.
func (o *Omniscient) WantRTS() bool { return false }

// OnResult implements Adapter.
func (o *Omniscient) OnResult(Result) {}

// SoftRateAdapter drives the core SoftRate algorithm through the Adapter
// interface.
type SoftRateAdapter struct {
	// SR is the underlying algorithm state.
	SR *core.SoftRate
}

// NewSoftRate builds a SoftRate adapter with the given core configuration.
func NewSoftRate(cfg core.Config) *SoftRateAdapter {
	return &SoftRateAdapter{SR: core.New(cfg)}
}

// Name implements Adapter.
func (s *SoftRateAdapter) Name() string { return "SoftRate" }

// NextRate implements Adapter.
func (s *SoftRateAdapter) NextRate(float64) int { return s.SR.CurrentIndex() }

// WantRTS implements Adapter.
func (s *SoftRateAdapter) WantRTS() bool { return false }

// OnResult implements Adapter.
func (s *SoftRateAdapter) OnResult(res Result) {
	switch {
	case res.FeedbackReceived && !res.PostambleOnly:
		s.SR.OnFeedback(core.Feedback{
			RateIndex: res.RateIndex,
			BER:       res.BER,
			Collision: res.Collision,
		})
	case res.PostambleOnly:
		s.SR.OnPostambleFeedback()
	default:
		s.SR.OnSilentLoss()
	}
}

// SNRBased is a per-frame SNR feedback protocol in the spirit of RBAR
// [10]: the receiver echoes its SNR estimate in the link-layer ACK (no
// RTS/CTS overhead, as in the paper's §6.1 variant) and the sender picks
// the highest rate whose trained SNR threshold the estimate clears.
//
// Thresholds[i] is the minimum SNR (dB) at which rate i is usable. The
// quality of these thresholds is the protocol's Achilles heel: trained on
// the wrong environment they are simply wrong (§6.3) — construct them
// with TrainThresholds against the target environment for the "trained"
// variant, or against a different one for "untrained".
type SNRBased struct {
	// Thresholds[i] is the minimum usable SNR in dB for rate index i;
	// must be non-decreasing.
	Thresholds []float64
	// Averaged, when true, smooths the SNR with an EWMA across frames —
	// the CHARM-like variant [13]. CHARM gains robustness against
	// outliers but loses responsiveness to short-term variation (§6.2).
	Averaged bool
	// AveragingGain is the EWMA weight of a new sample (default 0.1).
	AveragingGain float64
	// SilentLossRun steps the rate down after this many consecutive
	// frames with no feedback (default 3, same rule as SoftRate so the
	// comparison does not penalize SNR protocols on silent losses).
	SilentLossRun int

	label     string
	haveSNR   bool
	snrDB     float64
	silent    int
	downBias  int
	lastIndex int
}

// NewSNRBased builds a per-frame SNR protocol with the given thresholds.
func NewSNRBased(thresholds []float64, label string) *SNRBased {
	return &SNRBased{Thresholds: thresholds, label: label, SilentLossRun: 3}
}

// NewCHARM builds the averaged-SNR variant.
func NewCHARM(thresholds []float64) *SNRBased {
	return &SNRBased{
		Thresholds:    thresholds,
		Averaged:      true,
		AveragingGain: 0.1,
		label:         "CHARM",
		SilentLossRun: 3,
	}
}

// Name implements Adapter.
func (s *SNRBased) Name() string {
	if s.label != "" {
		return s.label
	}
	if s.Averaged {
		return "CHARM"
	}
	return "SNR"
}

// WantRTS implements Adapter.
func (s *SNRBased) WantRTS() bool { return false }

// NextRate implements Adapter.
func (s *SNRBased) NextRate(float64) int {
	if !s.haveSNR {
		s.lastIndex = 0
		return 0
	}
	idx := 0
	for i, th := range s.Thresholds {
		if s.snrDB >= th {
			idx = i
		}
	}
	idx -= s.downBias
	if idx < 0 {
		idx = 0
	}
	s.lastIndex = idx
	return idx
}

// OnResult implements Adapter.
func (s *SNRBased) OnResult(res Result) {
	if !res.FeedbackReceived || math.IsNaN(res.SNRdB) {
		s.silent++
		run := s.SilentLossRun
		if run <= 0 {
			run = 3
		}
		if s.silent >= run {
			s.silent = 0
			// Bias the mapping downward until fresh SNR arrives.
			s.downBias++
			if s.downBias > len(s.Thresholds) {
				s.downBias = len(s.Thresholds)
			}
		}
		return
	}
	s.silent = 0
	s.downBias = 0
	if s.Averaged && s.haveSNR {
		g := s.AveragingGain
		if g <= 0 {
			g = 0.1
		}
		s.snrDB = (1-g)*s.snrDB + g*res.SNRdB
	} else {
		s.snrDB = res.SNRdB
	}
	s.haveSNR = true
}

// TrainThresholds derives per-rate SNR thresholds from labelled samples:
// for each rate it finds the lowest SNR bin (0.5 dB granularity) at and
// above which the average frame delivery rate is at least target (e.g.
// 0.9). Samples below any usable SNR leave the rate's threshold at +Inf,
// which NextRate treats as unusable. The rate-0 threshold is forced
// finite (there must always be a usable rate).
//
// This mimics the in-situ training the paper performs when it computes
// "SNR-BER relationships ... from the traces used for evaluation" (§6.1).
type TrainingSample struct {
	// RateIndex is the rate the probe frame used.
	RateIndex int
	// SNRdB is the receiver's SNR estimate for that frame.
	SNRdB float64
	// Delivered reports whether the frame was intact.
	Delivered bool
}

// TrainThresholds computes SNR thresholds from samples for nRates rates.
func TrainThresholds(samples []TrainingSample, nRates int, target float64) []float64 {
	const binW = 0.5
	type bin struct{ ok, n int }
	perRate := make([]map[int]*bin, nRates)
	for i := range perRate {
		perRate[i] = map[int]*bin{}
	}
	for _, s := range samples {
		if s.RateIndex < 0 || s.RateIndex >= nRates {
			continue
		}
		k := int(math.Floor(s.SNRdB / binW))
		b := perRate[s.RateIndex][k]
		if b == nil {
			b = &bin{}
			perRate[s.RateIndex][k] = b
		}
		b.n++
		if s.Delivered {
			b.ok++
		}
	}
	th := make([]float64, nRates)
	for i := range th {
		th[i] = math.Inf(1)
		// Scan bins from high SNR downwards, tracking cumulative delivery
		// above each candidate threshold.
		lo, hi := math.MaxInt32, math.MinInt32
		for k := range perRate[i] {
			if k < lo {
				lo = k
			}
			if k > hi {
				hi = k
			}
		}
		if hi < lo {
			continue
		}
		cumOK, cumN := 0, 0
		for k := hi; k >= lo; k-- {
			if b := perRate[i][k]; b != nil {
				cumOK += b.ok
				cumN += b.n
			}
			if cumN >= 10 && float64(cumOK)/float64(cumN) >= target {
				th[i] = float64(k) * binW
			}
		}
	}
	if math.IsInf(th[0], 1) {
		th[0] = -30
	}
	// Enforce monotonicity: a faster rate can never need less SNR.
	for i := 1; i < nRates; i++ {
		if th[i] < th[i-1] {
			th[i] = th[i-1]
		}
	}
	return th
}

// ratesAirtime is a helper giving the lossless airtime of each rate for a
// given frame size, used by SampleRate and RRAA threshold computation.
func ratesAirtime(rates []rate.Rate, airtime func(rate.Rate) float64) []float64 {
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = airtime(r)
	}
	return out
}
