package ratectl

import (
	"math"

	"softrate/internal/rate"
)

// Intner is the probe-selection randomness source for SampleRate. Both
// *math/rand.Rand (the simulators' shared PRNG) and *SplitMix (the
// relocatable 8-byte PRNG the decision service snapshots) satisfy it.
type Intner interface {
	Intn(n int) int
}

// SampleRate implements Bicket's SampleRate algorithm [4]: pick the rate
// with the smallest average transmission time per successfully delivered
// frame, measured over a sliding window, while occasionally sampling other
// rates to discover changes. The paper's evaluation shortens the averaging
// window from Bicket's 10 s to 1 s because it performed better (§6.1); we
// default to 1 s and make it configurable.
type SampleRate struct {
	// Rates is the available rate set.
	Rates []rate.Rate
	// Window is the averaging window in seconds (default 1).
	Window float64
	// ProbeEvery makes every n-th frame a sampling probe (default 10).
	ProbeEvery int
	// LosslessAirtime gives the no-retry airtime of a frame at each rate
	// (used both as the initial optimistic estimate and to rule out
	// sampling rates that cannot possibly win).
	LosslessAirtime []float64
	// MaxConsecFail skips rates with this many consecutive failures
	// (Bicket's rule, default 4).
	MaxConsecFail int
	// Rng drives probe rate selection.
	Rng Intner
	// WindowCap, when positive, bounds each per-rate sample ring to that
	// many entries (oldest overwritten first). It makes the dynamic state a
	// fixed size so the decision service can snapshot it; 0 (the
	// simulators' setting) keeps every in-window sample, growing the rings
	// as needed.
	WindowCap int

	frameCount uint64
	rings      []srRing
	consecFail []int
	lastProbe  int
	cands      []int // probe-candidate scratch, reused across frames
}

type srSample struct {
	time    float64
	airtime float64
	ok      bool
}

// srRing is a FIFO of samples in a power-of-two ring buffer: appends at
// the tail, expires from the head, and (under WindowCap) overwrites the
// oldest entry when full — the per-frame bookkeeping never allocates once
// the ring has grown to its working size.
type srRing struct {
	buf  []srSample
	head int // index of the oldest sample
	n    int
}

func (r *srRing) at(i int) *srSample { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *srRing) push(s srSample, maxCap int) {
	if maxCap > 0 && r.n >= maxCap {
		// Full at the cap: the oldest slot becomes the newest sample.
		r.buf[r.head] = s
		r.head = (r.head + 1) & (len(r.buf) - 1)
		return
	}
	if r.n == len(r.buf) {
		r.grow(r.n + 1)
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = s
	r.n++
}

// grow re-linearizes the ring into a power-of-two buffer holding at least
// need samples.
func (r *srRing) grow(need int) {
	newCap := len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	for newCap < need {
		newCap *= 2
	}
	nb := make([]srSample, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = *r.at(i)
	}
	r.buf, r.head = nb, 0
}

func (r *srRing) popFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// NewSampleRate builds a SampleRate instance.
func NewSampleRate(rates []rate.Rate, lossless []float64, rng Intner) *SampleRate {
	return &SampleRate{
		Rates:           rates,
		Window:          1.0,
		ProbeEvery:      10,
		LosslessAirtime: lossless,
		MaxConsecFail:   4,
		Rng:             rng,
		rings:           make([]srRing, len(rates)),
		consecFail:      make([]int, len(rates)),
		cands:           make([]int, 0, len(rates)),
	}
}

// Name implements Adapter.
func (s *SampleRate) Name() string { return "SampleRate" }

// WantRTS implements Adapter.
func (s *SampleRate) WantRTS() bool { return false }

// avgTxTime returns the average airtime per delivered frame at rate i over
// the window ending at now; +Inf if nothing was delivered, and the
// optimistic lossless airtime if the rate is untried in the window.
func (s *SampleRate) avgTxTime(i int, now float64) float64 {
	var total float64
	n, ok := 0, 0
	r := &s.rings[i]
	for k := 0; k < r.n; k++ {
		sm := r.at(k)
		if sm.time < now-s.Window {
			continue
		}
		n++
		total += sm.airtime
		if sm.ok {
			ok++
		}
	}
	if n == 0 {
		return s.LosslessAirtime[i] // optimistic: untried rates look good
	}
	if ok == 0 {
		return math.Inf(1)
	}
	return total / float64(ok)
}

// NextRate implements Adapter: normally the best-metric rate; every
// ProbeEvery-th frame, a random different rate whose lossless transmission
// time beats the current best average (Bicket's sampling criterion).
//
// The consecutive-failure rule gates only *sampling*: a rate that failed
// MaxConsecFail times in a row is not probed, but the best-metric choice
// is purely window-driven — a collapsing rate is abandoned when its
// delivered-airtime metric goes bad, which takes on the order of the
// averaging window. That window-bound sluggishness is SampleRate's
// defining behaviour in Figure 15.
func (s *SampleRate) NextRate(now float64) int {
	best, bestT := 0, math.Inf(1)
	for i := range s.Rates {
		if t := s.avgTxTime(i, now); t < bestT {
			best, bestT = i, t
		}
	}
	s.frameCount++
	if s.ProbeEvery > 0 && s.frameCount%uint64(s.ProbeEvery) == 0 {
		// Candidate probes: rates other than best whose lossless time is
		// under the current best average (could conceivably do better)
		// and that aren't failing consecutively.
		cands := s.cands[:0]
		for i := range s.Rates {
			if i == best || s.consecFail[i] >= s.MaxConsecFail {
				continue
			}
			if s.LosslessAirtime[i] < bestT {
				cands = append(cands, i)
			}
		}
		s.cands = cands
		if len(cands) > 0 {
			s.lastProbe = cands[s.Rng.Intn(len(cands))]
			return s.lastProbe
		}
	}
	return best
}

// OnResult implements Adapter.
func (s *SampleRate) OnResult(res Result) {
	i := res.RateIndex
	if i < 0 || i >= len(s.Rates) {
		return
	}
	r := &s.rings[i]
	r.push(srSample{res.Time, res.Airtime, res.Delivered}, s.WindowCap)
	// Expire samples outside the window to bound memory.
	cut := res.Time - 2*s.Window
	for r.n > 0 && r.at(0).time < cut {
		r.popFront()
	}
	if res.Delivered {
		s.consecFail[i] = 0
	} else {
		s.consecFail[i]++
	}
	// If every rate is locked out, forgive.
	all := true
	for j := range s.consecFail {
		if s.consecFail[j] < s.MaxConsecFail {
			all = false
			break
		}
	}
	if all {
		for j := range s.consecFail {
			s.consecFail[j] = 0
		}
	}
}
