package softphy

import "math"

// DetectorConfig parameterizes the interference detector of §3.2/§4.
//
// The paper's heuristic is a threshold on the per-symbol BER difference
// d_j = |p_j − p_{j−1}|: stochastic fading moves the BER gradually at
// OFDM-symbol timescales, while a colliding transmission (which degrades
// every subcarrier at once, thanks to the frequency interleaver) moves it
// by orders of magnitude within one symbol.
//
// Because p_j is an empirical mean over the nbps bits of one detection
// block — and convolutional decoding makes bit errors bursty — the raw
// pairwise test is noisy: a single trellis error event can spike one
// block's estimate. This implementation is the same heuristic made
// numerically robust: it searches for the contiguous block interval that
// contrasts most strongly with the rest of the frame and declares a
// collision only if the interval
//
//   - is at least MinBurstSymbols blocks long,
//   - exceeds the clean floor (the median of the remaining blocks) by
//     RatioThreshold multiplicatively ("a sudden change in BER by orders
//     of magnitude", §3.2) and by JumpThreshold plus the sampling-noise
//     term absolutely, and
//   - has sharp edges: the step at each boundary must carry at least
//     EdgeFraction of the burst/floor contrast — the signature that
//     separates an interference onset from the smooth ramp of a fade.
//
// The detection block is one OFDM symbol in large-symbol modes (the
// paper's long-range prototype packs 768+ bits per symbol); in modes with
// small symbols callers should group several symbols per block (pass
// nbps = k × InfoBitsPerSymbol) so the per-block BER statistics are
// stable.
type DetectorConfig struct {
	// JumpThreshold is the absolute floor on the burst/rest BER contrast.
	JumpThreshold float64
	// NoiseSigmas scales the binomial sampling-noise term.
	NoiseSigmas float64
	// BurstinessDiscount divides the per-block bit count when computing
	// sampling noise (decoder error events are ~4 bits long).
	BurstinessDiscount float64
	// RatioThreshold is the minimum multiplicative contrast.
	RatioThreshold float64
	// BurstSigmas scales the burst-side sampling-noise term: the contrast
	// must also exceed the fluctuation a clean channel could produce at
	// the burst's own measured level, which is what rejects isolated
	// decoder error events masquerading as one-block bursts.
	BurstSigmas float64
	// MinBurstSymbols is the minimum burst length in blocks.
	MinBurstSymbols int
	// EdgeFraction is the minimum boundary step, as a fraction of the
	// burst/floor contrast.
	EdgeFraction float64
	// MaxBursts bounds the excision iterations.
	MaxBursts int
}

// DefaultDetector returns the detector configuration used throughout the
// experiments.
func DefaultDetector() DetectorConfig {
	return DetectorConfig{
		JumpThreshold:      3e-3,
		NoiseSigmas:        5,
		BurstinessDiscount: 4,
		RatioThreshold:     8,
		BurstSigmas:        2.5,
		MinBurstSymbols:    1,
		EdgeFraction:       0.3,
		MaxBursts:          3,
	}
}

// Analysis is the receiver-side summary of one frame's SoftPHY hints.
type Analysis struct {
	// FrameBER is the hint-estimated BER over the whole frame.
	FrameBER float64
	// InterferenceFreeBER is the hint-estimated BER over the blocks not
	// attributed to a collision. Equal to FrameBER when no collision was
	// detected; falls back to FrameBER if every block was excised.
	InterferenceFreeBER float64
	// Collision reports whether the detector fired.
	Collision bool
	// Excised flags, per detection block, the portions attributed to
	// interference.
	Excised []bool
	// SymbolBERs is the per-block BER series p_j (Equation 4).
	SymbolBERs []float64
}

// maxBlocks caps the number of detection blocks per frame: beyond this the
// interval search cost grows cubically and the extra granularity buys
// nothing, so Analyze merges adjacent blocks (doubling nbps) until the
// frame fits.
const maxBlocks = 48

// Analyze computes per-block BERs from the hints of one frame (nbps hints
// per detection block) and runs the interference detector.
func Analyze(hints []float64, nbps int, cfg DetectorConfig) *Analysis {
	for nbps < len(hints) && (len(hints)+nbps-1)/nbps > maxBlocks {
		nbps *= 2
	}
	p := SymbolBERs(hints, nbps)
	a := &Analysis{
		FrameBER:   FrameBER(hints),
		SymbolBERs: p,
		Excised:    make([]bool, len(p)),
	}
	if cfg.MaxBursts <= 0 {
		cfg.MaxBursts = 3
	}
	minBurst := cfg.MinBurstSymbols
	if minBurst < 1 {
		minBurst = 1
	}
	if len(p) < minBurst+1 {
		a.InterferenceFreeBER = a.FrameBER
		return a
	}

	for iter := 0; iter < cfg.MaxBursts; iter++ {
		if !a.exciseOneBurst(cfg, nbps, minBurst) {
			break
		}
		a.Collision = true
	}

	if !a.Collision {
		a.InterferenceFreeBER = a.FrameBER
		return a
	}
	// Interference-free BER over the surviving blocks, weighted by the
	// number of bits each block contributed.
	var sum, n float64
	for j, excised := range a.Excised {
		if excised {
			continue
		}
		bits := float64(nbps)
		if j == len(a.SymbolBERs)-1 && len(hints)%nbps != 0 {
			bits = float64(len(hints) % nbps)
		}
		sum += a.SymbolBERs[j] * bits
		n += bits
	}
	if n == 0 {
		a.InterferenceFreeBER = a.FrameBER
	} else {
		a.InterferenceFreeBER = sum / n
	}
	return a
}

// exciseOneBurst evaluates the collision criteria on every candidate
// interval among the non-excised blocks and excises the passing interval
// with the largest contrast. Returns whether an interval was excised.
func (a *Analysis) exciseOneBurst(cfg DetectorConfig, nbps, minBurst int) bool {
	p := a.SymbolBERs
	totalN := 0
	for _, e := range a.Excised {
		if !e {
			totalN++
		}
	}
	if totalN <= minBurst {
		return false
	}

	bestDiff := 0.0
	var bestI, bestJ int
	found := false

	segStart := -1
	for j := 0; j <= len(p); j++ {
		if j < len(p) && !a.Excised[j] {
			if segStart < 0 {
				segStart = j
			}
			continue
		}
		if segStart >= 0 {
			for i := segStart; i < j; i++ {
				for k := i + minBurst; k <= j; k++ {
					if k-i >= totalN {
						continue // rest must be nonempty
					}
					if diff, ok := a.burstQualifies(cfg, nbps, i, k); ok && diff > bestDiff {
						bestDiff = diff
						bestI, bestJ = i, k
						found = true
					}
				}
			}
			segStart = -1
		}
	}
	if !found {
		return false
	}
	for k := bestI; k < bestJ; k++ {
		a.Excised[k] = true
	}
	return true
}

// burstQualifies applies the collision criteria to the interval [i, j) and
// returns its contrast over the clean floor.
func (a *Analysis) burstQualifies(cfg DetectorConfig, nbps, i, j int) (diff float64, ok bool) {
	p := a.SymbolBERs
	L := j - i
	var burstSum float64
	for k := i; k < j; k++ {
		burstSum += p[k]
	}
	burstMean := burstSum / float64(L)
	floor := a.cleanFloor(i, j)
	diff = burstMean - floor

	disc := cfg.BurstinessDiscount
	if disc < 1 {
		disc = 1
	}
	neff := float64(nbps) / disc * float64(L)
	noise := cfg.NoiseSigmas * math.Sqrt(math.Max(floor, 1e-12)*(1-floor)/neff)
	noise += cfg.BurstSigmas * math.Sqrt(math.Max(burstMean, 1e-12)*(1-burstMean)/neff)
	ratio := cfg.RatioThreshold
	if ratio <= 1 {
		ratio = 8
	}
	if diff < cfg.JumpThreshold+noise {
		return 0, false
	}
	if burstMean < ratio*floor {
		return 0, false
	}
	// Edge sharpness at existing boundaries. A boundary block that the
	// interferer covered only partially carries an intermediate BER, so
	// the step is measured across a two-block window: either the boundary
	// block itself or its inner neighbour must stand sharply above the
	// clean side.
	edge := cfg.EdgeFraction
	if i > 0 && !a.Excised[i-1] {
		step := p[i] - p[i-1]
		if i+1 < j {
			if s2 := p[i+1] - p[i-1]; s2 > step {
				step = s2
			}
		}
		if step < edge*diff {
			return 0, false
		}
	}
	if j < len(p) && !a.Excised[j] {
		step := p[j-1] - p[j]
		if j-2 >= i {
			if s2 := p[j-2] - p[j]; s2 > step {
				step = s2
			}
		}
		if step < edge*diff {
			return 0, false
		}
	}
	return diff, true
}

// cleanFloor returns the median of the non-excised blocks outside [i, j) —
// a burst-robust estimate of the frame's clean BER level. (The median,
// unlike the mean, is unaffected by a second, not-yet-excised burst; and,
// unlike a lower-quantile estimate, it does not under-read noisy flat
// frames and inflate the contrast ratio.)
func (a *Analysis) cleanFloor(i, j int) float64 {
	var rest []float64
	for k, e := range a.Excised {
		if e || (k >= i && k < j) {
			continue
		}
		rest = append(rest, a.SymbolBERs[k])
	}
	if len(rest) == 0 {
		return 0
	}
	// Insertion sort: rest is small.
	for x := 1; x < len(rest); x++ {
		for y := x; y > 0 && rest[y] < rest[y-1]; y-- {
			rest[y], rest[y-1] = rest[y-1], rest[y]
		}
	}
	return rest[len(rest)/2]
}
