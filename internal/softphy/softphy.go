// Package softphy implements the SoftPHY interface math of §3.1–§3.2: the
// conversion from per-bit SoftPHY hints (|LLR| values exported by the
// decoder) to bit error probabilities (Equation 3), per-frame and
// per-OFDM-symbol BER estimation (Equation 4), and the interference
// detection heuristic that excises collision-damaged portions of a frame
// so that rate adaptation reacts only to the interference-free channel BER.
package softphy

import "math"

// BitErrorProb converts a SoftPHY hint s_k = |LLR(k)| into the probability
// that bit k was decoded incorrectly (Equation 3):
//
//	p_k = 1 / (1 + exp(s_k))
//
// Hints are |LLR| by contract, so s_k >= 0 and p_k ∈ (0, 0.5]. In that
// domain the direct form is numerically exact: exp(s) >= 1, the addition
// never cancels, and for large hints exp overflows gracefully to +Inf and
// p_k to 0 (an Expm1-based rearrangement would buy nothing). Out-of-domain
// inputs degrade softly rather than trap — a negative hint yields
// p_k ∈ (0.5, 1) (exact until exp underflows to 0 near s < -745, where p_k
// saturates at 1), and a NaN propagates — but they indicate a caller bug;
// ValidHints is the debug assertion test code uses to enforce the
// contract.
func BitErrorProb(hint float64) float64 {
	return 1 / (1 + math.Exp(hint))
}

// ValidHints reports whether every hint satisfies the SoftPHY contract:
// non-negative and not NaN (+Inf is a legal "certainly correct" hint).
// The receiver produces hints via math.Abs, so this holds by construction;
// tests assert it at package boundaries to catch sign-convention bugs
// before they silently halve every probability.
func ValidHints(hints []float64) bool {
	for _, s := range hints {
		if math.IsNaN(s) || s < 0 {
			return false
		}
	}
	return true
}

// HintForProb inverts Equation 3: the hint magnitude corresponding to a
// given error probability, s = log((1-p)/p).
func HintForProb(p float64) float64 {
	return math.Log((1 - p) / p)
}

// FrameBER averages p_k over all hints in a frame, the receiver's estimate
// of the channel BER during the frame — computable even when the frame had
// no bit errors at all, which is what lets SoftRate tell a 1e-9 channel
// from a 1e-4 one (§1).
func FrameBER(hints []float64) float64 {
	if len(hints) == 0 {
		return 0
	}
	var sum float64
	for _, s := range hints {
		sum += BitErrorProb(s)
	}
	return sum / float64(len(hints))
}

// minBlockBits is the target detection-block size: the paper's long-range
// prototype carries 768+ information bits per OFDM symbol, which is what
// makes its per-symbol BER estimates stable enough for the jump heuristic;
// modes with smaller symbols group several per block to match.
const minBlockBits = 512

// BlockBits returns the detection-block size (in hints) for a PHY whose
// OFDM symbols carry infoBitsPerSymbol information bits: the smallest
// whole number of symbols reaching minBlockBits.
func BlockBits(infoBitsPerSymbol int) int {
	if infoBitsPerSymbol <= 0 {
		return minBlockBits
	}
	k := (minBlockBits + infoBitsPerSymbol - 1) / infoBitsPerSymbol
	return k * infoBitsPerSymbol
}

// SymbolBERs averages p_k in groups of nbps bits — one group per OFDM
// symbol (Equation 4). The final group may be shorter because the
// trellis tail bits carry no hints.
func SymbolBERs(hints []float64, nbps int) []float64 {
	n := (len(hints) + nbps - 1) / nbps
	return AppendSymbolBERs(make([]float64, 0, n), hints, nbps)
}

// AppendSymbolBERs appends the per-symbol BER series to dst and returns
// the extended slice, allocating nothing when dst has sufficient capacity.
// The per-group summation order matches SymbolBERs exactly, so batch
// consumers see bit-identical estimates.
func AppendSymbolBERs(dst []float64, hints []float64, nbps int) []float64 {
	if nbps <= 0 {
		panic("softphy: nbps must be positive")
	}
	for base := 0; base < len(hints); base += nbps {
		end := base + nbps
		if end > len(hints) {
			end = len(hints)
		}
		var sum float64
		for _, s := range hints[base:end] {
			sum += BitErrorProb(s)
		}
		dst = append(dst, sum/float64(end-base))
	}
	return dst
}
