// Package softphy implements the SoftPHY interface math of §3.1–§3.2: the
// conversion from per-bit SoftPHY hints (|LLR| values exported by the
// decoder) to bit error probabilities (Equation 3), per-frame and
// per-OFDM-symbol BER estimation (Equation 4), and the interference
// detection heuristic that excises collision-damaged portions of a frame
// so that rate adaptation reacts only to the interference-free channel BER.
package softphy

import "math"

// BitErrorProb converts a SoftPHY hint s_k = |LLR(k)| into the probability
// that bit k was decoded incorrectly (Equation 3):
//
//	p_k = 1 / (1 + exp(s_k))
func BitErrorProb(hint float64) float64 {
	// For large hints exp overflows gracefully to +Inf and p_k to 0.
	return 1 / (1 + math.Exp(hint))
}

// HintForProb inverts Equation 3: the hint magnitude corresponding to a
// given error probability, s = log((1-p)/p).
func HintForProb(p float64) float64 {
	return math.Log((1 - p) / p)
}

// FrameBER averages p_k over all hints in a frame, the receiver's estimate
// of the channel BER during the frame — computable even when the frame had
// no bit errors at all, which is what lets SoftRate tell a 1e-9 channel
// from a 1e-4 one (§1).
func FrameBER(hints []float64) float64 {
	if len(hints) == 0 {
		return 0
	}
	var sum float64
	for _, s := range hints {
		sum += BitErrorProb(s)
	}
	return sum / float64(len(hints))
}

// minBlockBits is the target detection-block size: the paper's long-range
// prototype carries 768+ information bits per OFDM symbol, which is what
// makes its per-symbol BER estimates stable enough for the jump heuristic;
// modes with smaller symbols group several per block to match.
const minBlockBits = 512

// BlockBits returns the detection-block size (in hints) for a PHY whose
// OFDM symbols carry infoBitsPerSymbol information bits: the smallest
// whole number of symbols reaching minBlockBits.
func BlockBits(infoBitsPerSymbol int) int {
	if infoBitsPerSymbol <= 0 {
		return minBlockBits
	}
	k := (minBlockBits + infoBitsPerSymbol - 1) / infoBitsPerSymbol
	return k * infoBitsPerSymbol
}

// SymbolBERs averages p_k in groups of nbps bits — one group per OFDM
// symbol (Equation 4). The final group may be shorter because the
// trellis tail bits carry no hints.
func SymbolBERs(hints []float64, nbps int) []float64 {
	if nbps <= 0 {
		panic("softphy: nbps must be positive")
	}
	n := (len(hints) + nbps - 1) / nbps
	out := make([]float64, 0, n)
	for base := 0; base < len(hints); base += nbps {
		end := base + nbps
		if end > len(hints) {
			end = len(hints)
		}
		var sum float64
		for _, s := range hints[base:end] {
			sum += BitErrorProb(s)
		}
		out = append(out, sum/float64(end-base))
	}
	return out
}
