package softphy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEquation3KnownValues(t *testing.T) {
	// s=0 means no information: p = 1/2. Large s means near-certain.
	if p := BitErrorProb(0); p != 0.5 {
		t.Fatalf("BitErrorProb(0) = %v, want 0.5", p)
	}
	if p := BitErrorProb(100); p > 1e-40 {
		t.Fatalf("BitErrorProb(100) = %v, want ~0", p)
	}
	// log(9) hint -> p = 0.1.
	if p := BitErrorProb(math.Log(9)); math.Abs(p-0.1) > 1e-12 {
		t.Fatalf("BitErrorProb(log 9) = %v, want 0.1", p)
	}
}

func TestEquation3Inverse(t *testing.T) {
	// Property: HintForProb and BitErrorProb are inverses on (0, 1/2].
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 0.5)
		if p < 1e-9 {
			p = 0.25
		}
		back := BitErrorProb(HintForProb(p))
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEquation3Monotone(t *testing.T) {
	prev := 1.0
	for s := 0.0; s < 30; s += 0.5 {
		p := BitErrorProb(s)
		if p >= prev {
			t.Fatalf("BitErrorProb not strictly decreasing at s=%v", s)
		}
		prev = p
	}
}

func TestFrameBER(t *testing.T) {
	if FrameBER(nil) != 0 {
		t.Fatal("empty frame must give 0")
	}
	// Two bits: one certain (p~0), one coin-flip (p=0.5) -> 0.25.
	hints := []float64{1000, 0}
	// Debug assertion for the hints-are-|LLR| contract Equation 3 relies
	// on: every stream this suite feeds FrameBER must pass ValidHints.
	if !ValidHints(hints) {
		t.Fatal("test hints violate the non-negative contract")
	}
	got := FrameBER(hints)
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("FrameBER = %v, want 0.25", got)
	}
}

// TestBitErrorProbEdgeCases pins the documented behaviour of Equation 3 at
// the domain boundaries: the zero-information hint, the two infinities,
// NaN propagation, and the out-of-contract negative range (soft
// degradation toward p=1, never a trap).
func TestBitErrorProbEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		hint float64
		want float64
	}{
		{"zero", 0, 0.5},
		{"+inf", math.Inf(1), 0},
		{"-inf (out of contract)", math.Inf(-1), 1},
		{"large negative saturates", -746, 1},
		{"moderate negative exact", -math.Log(9), 0.9},
	}
	for _, c := range cases {
		if got := BitErrorProb(c.hint); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: BitErrorProb(%v) = %v, want %v", c.name, c.hint, got, c.want)
		}
	}
	if got := BitErrorProb(math.NaN()); !math.IsNaN(got) {
		t.Errorf("BitErrorProb(NaN) = %v, want NaN", got)
	}
}

// TestValidHints pins the contract checker itself.
func TestValidHints(t *testing.T) {
	cases := []struct {
		name  string
		hints []float64
		want  bool
	}{
		{"empty", nil, true},
		{"clean", []float64{0, 3.5, 1000}, true},
		{"+inf is legal certainty", []float64{math.Inf(1)}, true},
		{"negative", []float64{2, -0.1}, false},
		{"-inf", []float64{math.Inf(-1)}, false},
		{"nan", []float64{1, math.NaN()}, false},
	}
	for _, c := range cases {
		if got := ValidHints(c.hints); got != c.want {
			t.Errorf("%s: ValidHints = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestAppendSymbolBERsMatches checks the alloc-free form against the
// allocating one bit-for-bit, including reuse of a dirty destination.
func TestAppendSymbolBERsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	buf := make([]float64, 0, 64)
	for trial := 0; trial < 50; trial++ {
		hints := make([]float64, 1+rng.Intn(100))
		for i := range hints {
			hints[i] = rng.Float64() * 12
		}
		nbps := 1 + rng.Intn(16)
		want := SymbolBERs(hints, nbps)
		buf = AppendSymbolBERs(buf[:0], hints, nbps)
		if len(buf) != len(want) {
			t.Fatalf("trial %d: length %d want %d", trial, len(buf), len(want))
		}
		for i := range want {
			if math.Float64bits(buf[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: group %d differs: %v vs %v", trial, i, buf[i], want[i])
			}
		}
	}
}

func TestSymbolBERsGrouping(t *testing.T) {
	// 10 hints, 4 per symbol: groups of 4,4,2.
	hints := make([]float64, 10)
	for i := range hints {
		hints[i] = 1000 // p ~ 0
	}
	hints[8], hints[9] = 0, 0 // last short group: p = 0.5
	p := SymbolBERs(hints, 4)
	if len(p) != 3 {
		t.Fatalf("got %d groups, want 3", len(p))
	}
	if p[0] > 1e-12 || p[1] > 1e-12 {
		t.Fatalf("clean groups nonzero: %v", p)
	}
	if math.Abs(p[2]-0.5) > 1e-12 {
		t.Fatalf("short group = %v, want 0.5", p[2])
	}
}

func TestSymbolBERsPanicsOnBadNbps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SymbolBERs([]float64{1}, 0)
}

// mkHints builds a hint stream of nSym symbols with nbps hints each, with
// per-symbol error probability taken from probs.
func mkHints(probs []float64, nbps int) []float64 {
	hints := make([]float64, 0, len(probs)*nbps)
	for _, p := range probs {
		s := HintForProb(p)
		for i := 0; i < nbps; i++ {
			hints = append(hints, s)
		}
	}
	return hints
}

func TestDetectMidFrameBurst(t *testing.T) {
	probs := []float64{1e-4, 1e-4, 1e-4, 0.2, 0.2, 0.2, 1e-4, 1e-4}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if !a.Collision {
		t.Fatal("mid-frame burst not detected")
	}
	wantExcised := []bool{false, false, false, true, true, true, false, false}
	for j, w := range wantExcised {
		if a.Excised[j] != w {
			t.Fatalf("excision[%d] = %v, want %v (%v)", j, a.Excised[j], w, a.Excised)
		}
	}
	if a.InterferenceFreeBER > 2e-4 {
		t.Fatalf("interference-free BER %v, want ~1e-4", a.InterferenceFreeBER)
	}
	if a.FrameBER < 0.05 {
		t.Fatalf("whole-frame BER %v should reflect the burst", a.FrameBER)
	}
}

func TestDetectBurstAtStart(t *testing.T) {
	// Interferer ends mid-frame: elevated head, clean tail. First jump
	// seen is a drop.
	probs := []float64{0.3, 0.3, 0.3, 1e-4, 1e-4, 1e-4}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if !a.Collision {
		t.Fatal("head burst not detected")
	}
	for j := 0; j < 3; j++ {
		if !a.Excised[j] {
			t.Fatalf("head symbol %d not excised: %v", j, a.Excised)
		}
	}
	for j := 3; j < 6; j++ {
		if a.Excised[j] {
			t.Fatalf("clean symbol %d excised", j)
		}
	}
	if a.InterferenceFreeBER > 2e-4 {
		t.Fatalf("interference-free BER %v too high", a.InterferenceFreeBER)
	}
}

func TestDetectBurstToEnd(t *testing.T) {
	// Interferer starts mid-frame and lasts past the end.
	probs := []float64{1e-4, 1e-4, 1e-4, 0.25, 0.25, 0.25}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if !a.Collision {
		t.Fatal("tail burst not detected")
	}
	for j := 3; j < 6; j++ {
		if !a.Excised[j] {
			t.Fatalf("tail symbol %d not excised", j)
		}
	}
	if a.InterferenceFreeBER > 2e-4 {
		t.Fatalf("interference-free BER %v too high", a.InterferenceFreeBER)
	}
}

func TestDetectTwoBursts(t *testing.T) {
	// Two separate interferers, each spanning two OFDM symbols.
	probs := []float64{1e-4, 0.2, 0.2, 1e-4, 1e-4, 0.3, 0.3, 1e-4, 1e-4}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if !a.Collision {
		t.Fatal("bursts not detected")
	}
	want := []bool{false, true, true, false, false, true, true, false, false}
	for j, w := range want {
		if a.Excised[j] != w {
			t.Fatalf("excision %v, want %v", a.Excised, want)
		}
	}
	if a.InterferenceFreeBER > 2e-4 {
		t.Fatalf("interference-free BER %v too high", a.InterferenceFreeBER)
	}
}

func TestNoFalsePositiveOnSmoothFade(t *testing.T) {
	// A gradual fade: BER ramps smoothly across the frame. No jump
	// exceeds the threshold, so no collision may be declared.
	probs := make([]float64, 40)
	for i := range probs {
		// Geometric ramp from 1e-5 to ~2e-2: large overall change, small
		// per-symbol steps.
		probs[i] = 1e-5 * math.Pow(1.21, float64(i))
	}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if a.Collision {
		t.Fatalf("smooth fade flagged as collision (max step %v)", maxStep(probs))
	}
	if a.InterferenceFreeBER != a.FrameBER {
		t.Fatal("without collision, interference-free BER must equal frame BER")
	}
}

func maxStep(p []float64) float64 {
	m := 0.0
	for i := 1; i < len(p); i++ {
		if d := math.Abs(p[i] - p[i-1]); d > m {
			m = d
		}
	}
	return m
}

func TestAllSymbolsExcisedFallsBack(t *testing.T) {
	// One clean symbol then everything interfered... actually make burst
	// cover all but trigger via initial drop+rise pattern impossible;
	// instead: rise at symbol 1 and never fall, with symbol 0 tiny.
	probs := []float64{1e-4, 0.3, 0.3}
	a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
	if !a.Collision {
		t.Fatal("expected collision")
	}
	// Symbol 0 survives, so interference-free BER ~1e-4.
	if a.InterferenceFreeBER > 2e-4 {
		t.Fatalf("got %v", a.InterferenceFreeBER)
	}
	// Single-symbol frame: trivially no detection possible.
	b := Analyze(mkHints([]float64{0.3}, 512), 512, DefaultDetector())
	if b.Collision {
		t.Fatal("single-symbol frame cannot signal collision")
	}
	if b.InterferenceFreeBER != b.FrameBER {
		t.Fatal("single symbol: interference-free must equal frame BER")
	}
}

func TestAnalyzeRandomizedNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := rng.Intn(500)
		hints := make([]float64, n)
		for j := range hints {
			hints[j] = rng.Float64() * 20
		}
		nbps := 1 + rng.Intn(64)
		a := Analyze(hints, nbps, DefaultDetector())
		if n > 0 && (a.InterferenceFreeBER < 0 || a.InterferenceFreeBER > 0.5+1e-9) {
			t.Fatalf("interference-free BER out of range: %v", a.InterferenceFreeBER)
		}
	}
}

func TestExcisionRecoversCleanBER(t *testing.T) {
	// Property: for any clean-floor BER and any burst placement, the
	// interference-free estimate must be within 2x of the clean floor.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clean := math.Pow(10, -(1.5 + 3*rng.Float64())) // 3e-5..3e-2... keep <=1e-2
		if clean > 0.009 {
			clean = 0.009
		}
		nSym := 10 + rng.Intn(30)
		probs := make([]float64, nSym)
		for i := range probs {
			probs[i] = clean
		}
		// Burst strictly inside the frame, at least two symbols long (the
		// detector's MinBurstSymbols — real interferer frames span many
		// OFDM symbols). A real interferer transmits at constant power
		// for the duration of its frame, so the elevated BER level is
		// flat across the burst.
		b0 := 1 + rng.Intn(nSym-4)
		b1 := b0 + 2 + rng.Intn(nSym-b0-2)
		level := 0.15 + 0.3*rng.Float64()
		for i := b0; i < b1; i++ {
			probs[i] = level
		}
		// Realistic block size (512 bits) keeps the detector's
		// sampling-noise term small relative to the burst jump.
		a := Analyze(mkHints(probs, 512), 512, DefaultDetector())
		return a.Collision && a.InterferenceFreeBER < 2*clean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
