package modulation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softrate/internal/bitutil"
)

var allSchemes = []Scheme{BPSK, QPSK, QAM16, QAM64}

func TestBitsPerSymbol(t *testing.T) {
	want := map[Scheme]int{BPSK: 1, QPSK: 2, QAM16: 4, QAM64: 6}
	for s, n := range want {
		if s.BitsPerSymbol() != n {
			t.Errorf("%v.BitsPerSymbol() = %d, want %d", s, s.BitsPerSymbol(), n)
		}
	}
}

func TestUnitEnergy(t *testing.T) {
	for _, s := range allSchemes {
		if e := SymbolEnergy(s); math.Abs(e-1) > 1e-12 {
			t.Errorf("%v: average energy %v, want 1", s, e)
		}
	}
}

func TestMinDistanceOrdering(t *testing.T) {
	// Denser constellations must have smaller minimum distance — this is
	// the physical basis of observation 1 in §3.3 (BER increases with bit
	// rate at fixed SNR).
	d := make([]float64, len(allSchemes))
	for i, s := range allSchemes {
		d[i] = MinDistance(s)
	}
	for i := 1; i < len(d); i++ {
		if d[i] >= d[i-1] {
			t.Fatalf("min distance not strictly decreasing: %v", d)
		}
	}
}

func TestGrayMappingAdjacency(t *testing.T) {
	// Along each axis, constellation points adjacent in amplitude must
	// differ in exactly one bit (the Gray property).
	for _, s := range allSchemes {
		levels := s.axisLevels()
		type lg struct {
			amp  float64
			gray int
		}
		sorted := make([]lg, len(levels))
		for g, a := range levels {
			sorted[g] = lg{a, g}
		}
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j].amp < sorted[i].amp {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		for i := 1; i < len(sorted); i++ {
			x := sorted[i].gray ^ sorted[i-1].gray
			if x&(x-1) != 0 || x == 0 {
				t.Errorf("%v: levels %v and %v differ in %b (not one bit)",
					s, sorted[i-1].amp, sorted[i].amp, x)
			}
		}
	}
}

func TestModulateHardDemapRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, s := range allSchemes {
			n := s.BitsPerSymbol() * (1 + rng.Intn(50))
			bits := bitutil.RandomBits(rng, n)
			syms := Modulate(s, bits)
			got := make([]byte, 0, n)
			for _, y := range syms {
				got = append(got, HardDemap(s, y)...)
			}
			if bitutil.CountBitErrors(bits, got) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestModulatePadding(t *testing.T) {
	// 5 bits into QPSK -> 3 symbols, last padded with a zero bit.
	syms := Modulate(QPSK, []byte{1, 1, 1, 1, 1})
	if len(syms) != 3 {
		t.Fatalf("got %d symbols, want 3", len(syms))
	}
	bits := HardDemap(QPSK, syms[2])
	if bits[0] != 1 || bits[1] != 0 {
		t.Fatalf("padded symbol decoded to %v, want [1 0]", bits)
	}
}

func TestDemapSignsNoiseless(t *testing.T) {
	// With no noise, every LLR must have the sign of its transmitted bit.
	rng := rand.New(rand.NewSource(5))
	for _, s := range allSchemes {
		bits := bitutil.RandomBits(rng, s.BitsPerSymbol()*64)
		syms := Modulate(s, bits)
		for _, exact := range []bool{true, false} {
			var llrs []float64
			for _, y := range syms {
				llrs = Demap(s, y, 1, 0.01, exact, llrs)
			}
			for i, l := range llrs {
				if (bits[i] == 1) != (l > 0) {
					t.Fatalf("%v exact=%v: LLR[%d]=%v for bit %d", s, exact, i, l, bits[i])
				}
			}
		}
	}
}

func TestDemapWithChannelGain(t *testing.T) {
	// A rotated and scaled channel must be transparent after equalization.
	rng := rand.New(rand.NewSource(6))
	h := complex(0.3, -0.7)
	for _, s := range allSchemes {
		bits := bitutil.RandomBits(rng, s.BitsPerSymbol()*32)
		syms := Modulate(s, bits)
		var llrs []float64
		for _, x := range syms {
			llrs = Demap(s, h*x, h, 0.001, true, llrs)
		}
		for i, l := range llrs {
			if (bits[i] == 1) != (l > 0) {
				t.Fatalf("%v: wrong sign at %d through channel", s, i)
			}
		}
	}
}

func TestDemapZeroGain(t *testing.T) {
	out := Demap(QAM16, 1+1i, 0, 0.1, true, nil)
	if len(out) != 4 {
		t.Fatalf("got %d LLRs, want 4", len(out))
	}
	for _, l := range out {
		if l != 0 {
			t.Fatalf("zero-gain channel must produce erasures, got %v", out)
		}
	}
}

// TestDemapLLRCalibration verifies that the exact demapper's LLRs are true
// posteriors: grouping coded bits by LLR value, the empirical bit value
// frequency must match the sigmoid of the LLR.
func TestDemapLLRCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range []Scheme{BPSK, QPSK, QAM16} {
		noiseVar := 0.5
		sd := math.Sqrt(noiseVar / 2)
		nSym := 30000 / s.BitsPerSymbol()
		bits := bitutil.RandomBits(rng, nSym*s.BitsPerSymbol())
		syms := Modulate(s, bits)
		var llrs []float64
		for _, x := range syms {
			y := x + complex(sd*rng.NormFloat64(), sd*rng.NormFloat64())
			llrs = Demap(s, y, 1, noiseVar, true, llrs)
		}
		var pred, act, n float64
		for i, l := range llrs {
			if math.Abs(l) > 3 {
				continue
			}
			pred += 1 / (1 + math.Exp(-l)) // P(bit=1)
			act += float64(bits[i])
			n++
		}
		if n < 1000 {
			t.Fatalf("%v: not enough low-confidence samples (%v)", s, n)
		}
		if math.Abs(pred/n-act/n) > 0.03 {
			t.Errorf("%v: predicted P(1)=%.3f, actual %.3f", s, pred/n, act/n)
		}
	}
}

func TestExactVsMaxLogAgreeAtHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range allSchemes {
		bits := bitutil.RandomBits(rng, s.BitsPerSymbol()*128)
		syms := Modulate(s, bits)
		noiseVar := 0.005
		sd := math.Sqrt(noiseVar / 2)
		var le, lm []float64
		for _, x := range syms {
			y := x + complex(sd*rng.NormFloat64(), sd*rng.NormFloat64())
			le = Demap(s, y, 1, noiseVar, true, le)
			lm = Demap(s, y, 1, noiseVar, false, lm)
		}
		for i := range le {
			if (le[i] > 0) != (lm[i] > 0) {
				t.Fatalf("%v: exact and max-log disagree in sign at %d", s, i)
			}
			// Magnitudes should be close at high SNR.
			if math.Abs(le[i]-lm[i]) > 0.1*math.Abs(le[i])+1 {
				t.Fatalf("%v: exact %v vs max-log %v at %d", s, le[i], lm[i], i)
			}
		}
	}
}

func TestConstellationComplete(t *testing.T) {
	for _, s := range allSchemes {
		pts := constellation(s)
		want := 1 << s.BitsPerSymbol()
		if len(pts) != want {
			t.Fatalf("%v: %d points, want %d", s, len(pts), want)
		}
		seen := map[complex128]bool{}
		for _, p := range pts {
			if seen[p] {
				t.Fatalf("%v: duplicate constellation point %v", s, p)
			}
			seen[p] = true
		}
	}
}

func BenchmarkDemapQAM64Exact(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	bits := bitutil.RandomBits(rng, 6*1000)
	syms := Modulate(QAM64, bits)
	out := make([]float64, 0, 6*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, y := range syms {
			out = Demap(QAM64, y, 1, 0.1, true, out)
		}
	}
}

func BenchmarkDemapQAM64MaxLog(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	bits := bitutil.RandomBits(rng, 6*1000)
	syms := Modulate(QAM64, bits)
	out := make([]float64, 0, 6*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = out[:0]
		for _, y := range syms {
			out = Demap(QAM64, y, 1, 0.1, false, out)
		}
	}
}
