// Package modulation implements the Gray-mapped linear modulations of
// 802.11a/g — BPSK, QPSK, 16-QAM and 64-QAM — together with soft demappers
// that produce per-coded-bit channel log-likelihood ratios.
//
// All constellations are normalized to unit average symbol energy so that
// SNR is E_s/N_0 directly. The demappers take the received sample, the
// (complex) channel gain and the total complex noise variance, and emit one
// LLR per coded bit with the convention LLR > 0 ⇔ bit 1.
package modulation

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Scheme identifies a modulation.
type Scheme int

// The supported modulation schemes.
const (
	BPSK Scheme = iota
	QPSK
	QAM16
	QAM64
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "QAM16"
	case QAM64:
		return "QAM64"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// BitsPerSymbol returns the number of coded bits carried per constellation
// symbol.
func (s Scheme) BitsPerSymbol() int {
	switch s {
	case BPSK:
		return 1
	case QPSK:
		return 2
	case QAM16:
		return 4
	case QAM64:
		return 6
	}
	panic("modulation: unknown scheme")
}

// bitsPerAxis is BitsPerSymbol/2 for QAM schemes; BPSK uses only the real
// axis.
func (s Scheme) bitsPerAxis() int {
	if s == BPSK {
		return 1
	}
	return s.BitsPerSymbol() / 2
}

// levelTables holds the per-scheme axis amplitude tables, built once at
// init so that the per-tone hot path (Demap, HardDecision) never
// allocates. levelTables[s][g] is the amplitude transmitted for per-axis
// Gray bits g (MSB first), normalized to unit average symbol energy.
var levelTables = [4][]float64{
	BPSK:  buildAxisLevels(BPSK),
	QPSK:  buildAxisLevels(QPSK),
	QAM16: buildAxisLevels(QAM16),
	QAM64: buildAxisLevels(QAM64),
}

// buildAxisLevels computes the per-axis amplitude for each Gray-coded bit
// group of one scheme.
func buildAxisLevels(s Scheme) []float64 {
	switch s {
	case BPSK:
		return []float64{-1, 1} // 0 -> -1, 1 -> +1
	case QPSK:
		a := 1 / math.Sqrt2
		return []float64{-a, a}
	case QAM16:
		// Gray per axis: 00 -> -3, 01 -> -1, 11 -> +1, 10 -> +3.
		a := 1 / math.Sqrt(10)
		return []float64{-3 * a, -1 * a, 3 * a, 1 * a}
	case QAM64:
		// Gray per axis: 000→-7 001→-5 011→-3 010→-1 110→+1 111→+3
		// 101→+5 100→+7.
		a := 1 / math.Sqrt(42)
		lv := make([]float64, 8)
		lv[0b000] = -7 * a
		lv[0b001] = -5 * a
		lv[0b011] = -3 * a
		lv[0b010] = -1 * a
		lv[0b110] = 1 * a
		lv[0b111] = 3 * a
		lv[0b101] = 5 * a
		lv[0b100] = 7 * a
		return lv
	}
	panic("modulation: unknown scheme")
}

// axisLevels returns the shared amplitude table for s. Callers must treat
// the slice as read-only.
func (s Scheme) axisLevels() []float64 {
	if s < BPSK || s > QAM64 {
		panic("modulation: unknown scheme")
	}
	return levelTables[s]
}

// Modulate maps coded bits onto constellation symbols. If len(bits) is not
// a multiple of BitsPerSymbol the tail is zero-padded (the PHY pads frames
// to whole OFDM symbols before calling this).
func Modulate(s Scheme, bits []byte) []complex128 {
	bps := s.BitsPerSymbol()
	return AppendModulate(make([]complex128, 0, (len(bits)+bps-1)/bps), s, bits)
}

// AppendModulate appends the constellation symbols for bits to dst and
// returns the extended slice, allocating nothing when dst has sufficient
// capacity.
func AppendModulate(dst []complex128, s Scheme, bits []byte) []complex128 {
	bps := s.BitsPerSymbol()
	nSym := (len(bits) + bps - 1) / bps
	levels := s.axisLevels()
	bpa := s.bitsPerAxis()
	bit := func(i int) int {
		if i < len(bits) && bits[i] != 0 {
			return 1
		}
		return 0
	}
	for k := 0; k < nSym; k++ {
		base := k * bps
		gi := 0
		for j := 0; j < bpa; j++ {
			gi = gi<<1 | bit(base+j)
		}
		if s == BPSK {
			dst = append(dst, complex(levels[gi], 0))
			continue
		}
		gq := 0
		for j := 0; j < bpa; j++ {
			gq = gq<<1 | bit(base+bpa+j)
		}
		dst = append(dst, complex(levels[gi], levels[gq]))
	}
	return dst
}

// nearestLevelIndex returns the Gray index of the axis level closest to v,
// breaking ties toward the lowest index — the same order HardDemap has
// always used.
func nearestLevelIndex(levels []float64, v float64) int {
	best, bd := 0, math.Inf(1)
	for g, lv := range levels {
		d := math.Abs(v - lv)
		if d < bd {
			bd, best = d, g
		}
	}
	return best
}

// HardDemap maps a received (already equalized) symbol to the nearest
// constellation point's bits, for hard-decision baselines and tests.
func HardDemap(s Scheme, z complex128) []byte {
	levels := s.axisLevels()
	bpa := s.bitsPerAxis()
	bits := make([]byte, 0, s.BitsPerSymbol())
	appendGray := func(g int) {
		for j := bpa - 1; j >= 0; j-- {
			bits = append(bits, byte(g>>j&1))
		}
	}
	appendGray(nearestLevelIndex(levels, real(z)))
	if s != BPSK {
		appendGray(nearestLevelIndex(levels, imag(z)))
	}
	return bits
}

// HardDecision returns the constellation point nearest to the (already
// equalized) sample z — exactly Modulate(s, HardDemap(s, z))[0], including
// tie-breaking — without allocating. It is the receiver's per-tone
// decision-directed EVM reference.
func HardDecision(s Scheme, z complex128) complex128 {
	levels := s.axisLevels()
	re := levels[nearestLevelIndex(levels, real(z))]
	if s == BPSK {
		return complex(re, 0)
	}
	return complex(re, levels[nearestLevelIndex(levels, imag(z))])
}

// Demap computes soft LLRs for the coded bits carried by received sample y
// given channel gain h and total complex noise variance noiseVar. LLRs are
// appended to out and the extended slice returned. If exact is true the
// full log-sum-exp marginalization over the constellation is used;
// otherwise the max-log approximation.
//
// The demapper equalizes z = y/h and scales the noise accordingly, which is
// exact for a flat per-symbol gain; the I and Q axes then demap
// independently.
func Demap(s Scheme, y, h complex128, noiseVar float64, exact bool, out []float64) []float64 {
	hm2 := real(h)*real(h) + imag(h)*imag(h)
	if hm2 < 1e-18 {
		// Channel gain effectively zero: no information in this sample.
		for i := 0; i < s.BitsPerSymbol(); i++ {
			out = append(out, 0)
		}
		return out
	}
	z := y / h
	sigma2 := noiseVar / hm2
	levels := s.axisLevels()
	bpa := s.bitsPerAxis()
	out = demapAxis(real(z), levels, bpa, sigma2, exact, out)
	if s != BPSK {
		out = demapAxis(imag(z), levels, bpa, sigma2, exact, out)
	}
	return out
}

// demapAxis computes LLRs for the bpa Gray bits of one constellation axis.
// For a complex Gaussian with total variance sigma2 the per-axis exponent
// is -(v - level)^2 / sigma2.
func demapAxis(v float64, levels []float64, bpa int, sigma2 float64, exact bool, out []float64) []float64 {
	inv := 1 / sigma2
	for j := 0; j < bpa; j++ {
		mask := 1 << (bpa - 1 - j)
		var m1, m0 float64 // log-domain accumulators
		first1, first0 := true, true
		for g, lv := range levels {
			d := v - lv
			metric := -d * d * inv
			if g&mask != 0 {
				if first1 {
					m1, first1 = metric, false
				} else if exact {
					m1 = logAdd(m1, metric)
				} else if metric > m1 {
					m1 = metric
				}
			} else {
				if first0 {
					m0, first0 = metric, false
				} else if exact {
					m0 = logAdd(m0, metric)
				} else if metric > m0 {
					m0 = metric
				}
			}
		}
		out = append(out, m1-m0)
	}
	return out
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	d := a - b
	if d > 30 {
		return a
	}
	return a + math.Log1p(math.Exp(-d))
}

// SymbolEnergy returns the average energy of the constellation (should be
// 1.0 by construction; exposed for tests and sanity checks).
func SymbolEnergy(s Scheme) float64 {
	levels := s.axisLevels()
	var e float64
	for _, li := range levels {
		if s == BPSK {
			e += li * li
		} else {
			for _, lq := range levels {
				e += li*li + lq*lq
			}
		}
	}
	if s == BPSK {
		return e / float64(len(levels))
	}
	return e / float64(len(levels)*len(levels))
}

// MinDistance returns the minimum Euclidean distance between distinct
// constellation points, which orders the schemes by noise robustness.
func MinDistance(s Scheme) float64 {
	pts := constellation(s)
	min := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			d := cmplx.Abs(pts[i] - pts[j])
			if d < min {
				min = d
			}
		}
	}
	return min
}

// constellation enumerates all points of the scheme.
func constellation(s Scheme) []complex128 {
	bps := s.BitsPerSymbol()
	n := 1 << bps
	pts := make([]complex128, 0, n)
	for v := 0; v < n; v++ {
		bits := make([]byte, bps)
		for j := 0; j < bps; j++ {
			bits[j] = byte(v >> (bps - 1 - j) & 1)
		}
		pts = append(pts, Modulate(s, bits)[0])
	}
	return pts
}
