package modulation

import (
	"math/rand"
	"testing"
)

// TestHardDecisionMatchesDemapModulateRoundTrip pins the allocation-free
// hard decision against its definition, including tie-breaking: for any
// sample z, HardDecision(s, z) == Modulate(s, HardDemap(s, z))[0] exactly.
func TestHardDecisionMatchesDemapModulateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, s := range allSchemes {
		for trial := 0; trial < 2000; trial++ {
			z := complex(rng.NormFloat64()*1.2, rng.NormFloat64()*1.2)
			if trial%17 == 0 {
				// Exact level hits and midpoints exercise the tie-break.
				lv := s.axisLevels()
				z = complex(lv[rng.Intn(len(lv))], lv[rng.Intn(len(lv))])
				if trial%34 == 0 && len(lv) > 1 {
					z += complex((lv[1]-lv[0])/2, 0)
				}
			}
			want := Modulate(s, HardDemap(s, z))[0]
			if got := HardDecision(s, z); got != want {
				t.Fatalf("%v: HardDecision(%v) = %v, want %v", s, z, got, want)
			}
		}
	}
}

// TestAppendModulateMatchesModulate checks the appending modulator against
// the allocating one, including reuse of a dirty destination.
func TestAppendModulateMatchesModulate(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	buf := make([]complex128, 0, 256)
	for _, s := range allSchemes {
		for trial := 0; trial < 50; trial++ {
			bits := make([]byte, rng.Intn(120))
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			want := Modulate(s, bits)
			buf = AppendModulate(buf[:0], s, bits)
			if len(buf) != len(want) {
				t.Fatalf("%v: length %d want %d", s, len(buf), len(want))
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("%v: symbol %d differs: %v vs %v", s, i, buf[i], want[i])
				}
			}
		}
	}
}

// TestHotPathDoesNotAllocate pins the per-tone operations the receiver
// runs thousands of times per frame: soft demap into a warm buffer, the
// EVM hard decision, and modulation into a warm buffer.
func TestHotPathDoesNotAllocate(t *testing.T) {
	out := make([]float64, 0, 64)
	sym := make([]complex128, 0, 64)
	bits := []byte{1, 0, 1, 1, 0, 1}
	z := complex(0.31, -0.4)
	for _, s := range allSchemes {
		if avg := testing.AllocsPerRun(100, func() {
			out = Demap(s, z, 1, 0.3, true, out[:0])
		}); avg != 0 {
			t.Errorf("%v: Demap allocates %v per tone, want 0", s, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			_ = HardDecision(s, z)
		}); avg != 0 {
			t.Errorf("%v: HardDecision allocates %v per tone, want 0", s, avg)
		}
		if avg := testing.AllocsPerRun(100, func() {
			sym = AppendModulate(sym[:0], s, bits)
		}); avg != 0 {
			t.Errorf("%v: AppendModulate allocates %v per call, want 0", s, avg)
		}
	}
}
