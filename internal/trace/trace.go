// Package trace implements the trace-driven PHY methodology of §6.1: a
// link's channel behaviour is captured, per bit rate, as a time series of
// snapshots that completely specify what would happen to a frame sent at
// any instant — whether it is detected and delivered, what SNR estimate
// the receiver would measure, and what interference-free BER its SoftPHY
// hints would report. The network simulator then replays these snapshots
// instead of running the expensive PHY chain per frame.
//
// The paper seeds its ns-3 simulations with traces captured from live
// software-radio runs; lacking radios, we generate traces by sweeping the
// same fading channel models through the PHY's Monte-Carlo calibration
// (phy.BERModel). Crucially, all rates of a link share one fading process
// evaluated at identical times, satisfying the consistency requirement the
// paper verifies ("the BER across the various bit rates is monotonic in
// 96% of such 5 ms cycles").
package trace

import (
	"math"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/ofdm"
	"softrate/internal/phy"
	"softrate/internal/rate"
)

// Snapshot captures the channel's effect on one hypothetical frame sent at
// one instant at one rate.
type Snapshot struct {
	// Detected reports whether the preamble would be found.
	Detected bool
	// Delivered reports whether the frame would be received intact.
	Delivered bool
	// DeliverProb is the underlying delivery probability (the oracle's
	// knowledge; Delivered is one draw from it).
	DeliverProb float64
	// BER is the interference-free channel BER the receiver's SoftPHY
	// hints would estimate over the frame.
	BER float64
	// SNRdB is the preamble-based SNR estimate the receiver would echo.
	SNRdB float64
}

// LinkTrace is the per-rate snapshot series for one unidirectional link.
type LinkTrace struct {
	// Interval is the snapshot spacing in seconds.
	Interval float64
	// FrameBits is the frame size the snapshots were generated for.
	FrameBits int
	// Snapshots[rateIdx][slot] is the snapshot grid.
	Snapshots [][]Snapshot
}

// NumRates returns the number of rates traced.
func (lt *LinkTrace) NumRates() int { return len(lt.Snapshots) }

// Duration returns the trace length in seconds.
func (lt *LinkTrace) Duration() float64 {
	if len(lt.Snapshots) == 0 {
		return 0
	}
	return float64(len(lt.Snapshots[0])) * lt.Interval
}

// slot maps a time to a snapshot index, wrapping so simulations may run
// longer than the trace (the paper's ten 10-second traces are similarly
// reused across runs).
func (lt *LinkTrace) slot(t float64) int {
	n := len(lt.Snapshots[0])
	s := int(math.Floor(t/lt.Interval)) % n
	if s < 0 {
		s += n
	}
	return s
}

// At returns the snapshot governing a frame sent at time t at rate index
// ri.
func (lt *LinkTrace) At(ri int, t float64) Snapshot {
	return lt.Snapshots[ri][lt.slot(t)]
}

// BestRateAt implements the omniscient oracle of §6.1: "always picks the
// highest rate guaranteed to succeed, which a simulator with a priori
// knowledge of channel characteristics computes from the traces". Since a
// trace completely specifies each frame's fate, "guaranteed" means the
// realized outcome at that slot: the highest rate whose snapshot actually
// delivers; rate 0 if none does.
func (lt *LinkTrace) BestRateAt(t float64) int {
	best := 0
	s := lt.slot(t)
	for ri := range lt.Snapshots {
		if lt.Snapshots[ri][s].Delivered {
			best = ri
		}
	}
	return best
}

// MonotoneBERFraction returns the fraction of slots in which the BER is
// non-decreasing across rates — the cross-rate consistency metric the
// paper reports as 96%. Like any measurement on estimated BERs, the check
// tolerates estimator noise: a violation requires the faster rate's BER to
// fall below half of the slower rate's, and BERs beneath 1e-9 (far below
// one expected error per trace) are treated as indistinguishable.
func (lt *LinkTrace) MonotoneBERFraction() float64 {
	if lt.NumRates() == 0 {
		return 0
	}
	n := len(lt.Snapshots[0])
	good := 0
	for s := 0; s < n; s++ {
		ok := true
		for ri := 1; ri < lt.NumRates(); ri++ {
			hi := lt.Snapshots[ri-1][s].BER
			lo := lt.Snapshots[ri][s].BER
			if hi > 1e-9 && lo < hi/2 {
				ok = false
				break
			}
		}
		if ok {
			good++
		}
	}
	return float64(good) / float64(n)
}

// GenConfig controls trace generation.
type GenConfig struct {
	// Model is the time-varying channel (shared across all rates).
	Model *channel.Model
	// BERModel is the PHY calibration (default phy.DefaultBERModel).
	BERModel *phy.BERModel
	// Rates is the traced rate set (default rate.Evaluation()).
	Rates []rate.Rate
	// Mode is the OFDM mode (default ofdm.Simulation).
	Mode ofdm.Mode
	// Duration is the trace length in seconds.
	Duration float64
	// Interval is the snapshot spacing (default 1 ms).
	Interval float64
	// PayloadBytes is the frame size snapshots describe (default 1400).
	PayloadBytes int
	// DetectSINR is the linear preamble detection threshold (default 0.8).
	DetectSINR float64
	// SNRNoiseDB is the σ of Gaussian measurement noise on the SNR
	// estimate (default 0.7 dB, matching the preamble estimator's
	// finite-sample spread).
	SNRNoiseDB float64
	// BERJitter is the σ (natural-log units) of lognormal noise on the
	// hint-estimated BER. The default 0.23 reproduces the paper's
	// measured estimator spread of "below one-tenth of one order of
	// magnitude" (§5.2).
	BERJitter float64
	// EffJitterDB is the σ (dB) of the gap between the preamble SNR
	// estimate and the SNR that actually governs the frame body's BER.
	// Physically this is frequency-selective fading across the band plus
	// receiver calibration error — the reason the paper's Figure 7(c)
	// scatter is so wide and SNR-based protocols misfire even when
	// trained in situ. One draw per time slot, shared by all rates, so
	// cross-rate BER consistency is preserved. Default 2 dB.
	EffJitterDB float64
	// Seed drives all randomness in generation.
	Seed int64
}

func (gc *GenConfig) fill() {
	if gc.BERModel == nil {
		gc.BERModel = phy.DefaultBERModel
	}
	if len(gc.Rates) == 0 {
		gc.Rates = rate.Evaluation()
	}
	if gc.Mode.Tones == 0 {
		gc.Mode = ofdm.Simulation
	}
	if gc.Interval <= 0 {
		gc.Interval = 1e-3
	}
	if gc.PayloadBytes <= 0 {
		gc.PayloadBytes = 1400
	}
	if gc.DetectSINR <= 0 {
		gc.DetectSINR = 0.8
	}
	if gc.SNRNoiseDB == 0 {
		gc.SNRNoiseDB = 0.7
	}
	if gc.BERJitter == 0 {
		gc.BERJitter = 0.23
	}
	if gc.EffJitterDB == 0 {
		gc.EffJitterDB = 2
	}
	if gc.Duration <= 0 {
		gc.Duration = 10
	}
}

// Generate builds a LinkTrace by sweeping the channel model across time
// and querying the PHY calibration per rate — the software-radio trace
// collection of Table 4, one level down.
func Generate(gc GenConfig) *LinkTrace {
	gc.fill()
	rng := rand.New(rand.NewSource(gc.Seed))
	nSlots := int(gc.Duration / gc.Interval)
	lt := &LinkTrace{
		Interval:  gc.Interval,
		FrameBits: (gc.PayloadBytes + 4) * 8,
	}
	T := gc.Mode.SymbolTime()
	// Per-slot effective-SNR offset, invisible to the preamble estimator
	// and shared across rates (a channel property, not a rate property).
	effJitter := make([]float64, nSlots)
	for s := range effJitter {
		effJitter[s] = rng.NormFloat64() * gc.EffJitterDB
	}
	for ri, r := range gc.Rates {
		snaps := make([]Snapshot, nSlots)
		nSym := gc.Mode.DataSymbols((lt.FrameBits+6)*2, r.Scheme) // rate-1/2 upper bound is fine for symbol count shape
		// Use the precise symbol count for the punctured stream.
		num, den := r.Code.Fraction()
		nSym = gc.Mode.DataSymbols((lt.FrameBits+6)*den/num, r.Scheme)
		bitsPerSym := float64(gc.Mode.InfoBitsPerSymbol(r))
		for s := 0; s < nSlots; s++ {
			t0 := float64(s) * gc.Interval
			// Per-symbol SNR across the frame duration, preamble first.
			preSNR := lt.sampleSNR(gc.Model, t0, T, ofdm.PreambleSymbols)
			dataSNR := lt.sampleSNR(gc.Model, t0+float64(ofdm.PreambleSymbols)*T, T, nSym)
			for j := range dataSNR {
				dataSNR[j] += effJitter[s]
			}
			var preLin float64
			for _, s := range preSNR {
				preLin += channel.DBToLinear(s)
			}
			preLin /= float64(len(preSNR))
			detected := preLin >= gc.DetectSINR

			ber := gc.BERModel.MeanBER(ri, dataSNR)
			ber *= math.Exp(rng.NormFloat64() * gc.BERJitter)
			if ber > 0.5 {
				ber = 0.5
			}
			dp := gc.BERModel.DeliverProb(ri, dataSNR, bitsPerSym)
			if !detected {
				dp = 0
			}
			snaps[s] = Snapshot{
				Detected:    detected,
				Delivered:   detected && rng.Float64() < dp,
				DeliverProb: dp,
				BER:         ber,
				SNRdB:       channel.LinearToDB(preLin) + rng.NormFloat64()*gc.SNRNoiseDB,
			}
		}
		lt.Snapshots = append(lt.Snapshots, snaps)
	}
	return lt
}

// sampleSNR evaluates the channel's instantaneous SNR (dB) at n symbol
// midpoints starting at t0.
func (lt *LinkTrace) sampleSNR(m *channel.Model, t0, T float64, n int) []float64 {
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = channel.LinearToDB(m.SNR(t0 + (float64(j)+0.5)*T))
	}
	return out
}

// NewSynthetic builds a trace directly from per-rate snapshot series, for
// controlled experiments like the good/bad channel switch of Figure 15.
func NewSynthetic(interval float64, frameBits int, snapshots [][]Snapshot) *LinkTrace {
	return &LinkTrace{Interval: interval, FrameBits: frameBits, Snapshots: snapshots}
}
