package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/ratectl"
)

func walkingTrace(seed int64, dur float64) *LinkTrace {
	rng := rand.New(rand.NewSource(seed))
	model := channel.NewStaticModel(16, channel.NewRayleigh(rng, 40, 0))
	return Generate(GenConfig{
		Model:    model,
		Duration: dur,
		Seed:     seed + 1,
	})
}

func TestGenerateShape(t *testing.T) {
	lt := walkingTrace(1, 2)
	if lt.NumRates() != 6 {
		t.Fatalf("rates %d, want 6", lt.NumRates())
	}
	if got := lt.Duration(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("duration %v, want 2", got)
	}
	if lt.FrameBits != (1400+4)*8 {
		t.Fatalf("frame bits %d", lt.FrameBits)
	}
}

func TestSnapshotsConsistent(t *testing.T) {
	lt := walkingTrace(2, 2)
	for ri := 0; ri < lt.NumRates(); ri++ {
		for s, snap := range lt.Snapshots[ri] {
			if snap.Delivered && !snap.Detected {
				t.Fatalf("rate %d slot %d: delivered but not detected", ri, s)
			}
			if snap.DeliverProb < 0 || snap.DeliverProb > 1 {
				t.Fatalf("deliver prob %v out of range", snap.DeliverProb)
			}
			if snap.BER < 0 || snap.BER > 0.5 {
				t.Fatalf("BER %v out of range", snap.BER)
			}
		}
	}
}

func TestMonotoneBERAcrossRates(t *testing.T) {
	// The cross-rate consistency property the paper measures at 96%; with
	// a shared fading process and lognormal estimator jitter we expect
	// the same ballpark.
	lt := walkingTrace(3, 5)
	if f := lt.MonotoneBERFraction(); f < 0.85 {
		t.Fatalf("monotone BER fraction %v, want >= 0.85", f)
	}
}

func TestWrapAround(t *testing.T) {
	lt := walkingTrace(4, 1)
	a := lt.At(2, 0.25)
	b := lt.At(2, 1.25) // exactly one trace length later
	if a != b {
		t.Fatal("trace does not wrap around")
	}
	c := lt.At(2, -0.75) // negative time wraps too
	if a != c {
		t.Fatal("negative time does not wrap")
	}
}

func TestOracleGuaranteesDelivery(t *testing.T) {
	// The oracle has a-priori knowledge of the trace: any rate it picks
	// (other than the rate-0 fallback) must actually deliver at that
	// instant, and no faster rate may also deliver.
	lt := walkingTrace(5, 3)
	for ti := 0; ti < 300; ti++ {
		now := float64(ti) * 0.01
		best := lt.BestRateAt(now)
		if best > 0 && !lt.At(best, now).Delivered {
			t.Fatalf("oracle chose rate %d which does not deliver", best)
		}
		for ri := best + 1; ri < lt.NumRates(); ri++ {
			if lt.At(ri, now).Delivered {
				t.Fatalf("oracle chose %d but rate %d also delivers", best, ri)
			}
		}
	}
}

func TestOracleTracksFades(t *testing.T) {
	// Over a fading trace the oracle must actually move around.
	lt := walkingTrace(6, 5)
	seen := map[int]bool{}
	for ti := 0; ti < 500; ti++ {
		seen[lt.BestRateAt(float64(ti)*0.01)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("oracle used only %d rates over a fading trace", len(seen))
	}
}

func TestHigherMeanSNRDeliversMore(t *testing.T) {
	mk := func(snr float64) float64 {
		rng := rand.New(rand.NewSource(7))
		model := channel.NewStaticModel(snr, channel.NewRayleigh(rng, 40, 0))
		lt := Generate(GenConfig{Model: model, Duration: 3, Seed: 8})
		n, ok := 0, 0
		for _, s := range lt.Snapshots[3] {
			n++
			if s.Delivered {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}
	low, high := mk(8), mk(25)
	if high <= low {
		t.Fatalf("delivery at 25 dB (%v) not above 8 dB (%v)", high, low)
	}
	if high < 0.9 {
		t.Fatalf("QPSK 3/4 at mean 25 dB delivered only %v", high)
	}
}

func TestSNREstimateNearChannel(t *testing.T) {
	model := channel.NewStaticModel(14, nil) // pure AWGN
	lt := Generate(GenConfig{Model: model, Duration: 1, Seed: 9})
	var sum float64
	for _, s := range lt.Snapshots[0] {
		sum += s.SNRdB
	}
	mean := sum / float64(len(lt.Snapshots[0]))
	if math.Abs(mean-14) > 0.5 {
		t.Fatalf("mean SNR estimate %v, want ~14", mean)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	lt := walkingTrace(10, 1)
	var buf bytes.Buffer
	if err := Save(&buf, lt); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != lt.Interval || got.NumRates() != lt.NumRates() {
		t.Fatal("metadata mismatch after round trip")
	}
	if got.At(3, 0.123) != lt.At(3, 0.123) {
		t.Fatal("snapshots mismatch after round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gzip"))); err == nil {
		t.Fatal("expected error on garbage input")
	}
}

func TestTrainingSamplesAndThresholds(t *testing.T) {
	lt := walkingTrace(11, 5)
	samples := lt.TrainingSamples()
	if len(samples) < 1000 {
		t.Fatalf("only %d training samples", len(samples))
	}
	th := ratectl.TrainThresholds(samples, lt.NumRates(), 0.9)
	// Thresholds must be finite for the low rates and increasing overall.
	if math.IsInf(th[0], 1) || math.IsInf(th[2], 1) {
		t.Fatalf("low-rate thresholds untrained: %v", th)
	}
	for i := 1; i < len(th); i++ {
		if th[i] < th[i-1] {
			t.Fatalf("thresholds not monotone: %v", th)
		}
	}
}

func TestNewSynthetic(t *testing.T) {
	snaps := [][]Snapshot{
		{{Delivered: true, DeliverProb: 1, BER: 1e-6, SNRdB: 20, Detected: true}},
		{{Delivered: false, DeliverProb: 0, BER: 0.2, SNRdB: 20, Detected: true}},
	}
	lt := NewSynthetic(1e-3, 11200, snaps)
	if lt.BestRateAt(0) != 0 {
		t.Fatal("synthetic oracle wrong")
	}
	if !lt.At(0, 0).Delivered || lt.At(1, 0).Delivered {
		t.Fatal("synthetic snapshots wrong")
	}
}

func TestFastFadingTraceDegrades(t *testing.T) {
	// At 4 kHz Doppler (100 us coherence), deep fades hit within frames:
	// high rates should deliver clearly less often than in a static
	// channel at the same mean SNR.
	mkDoppler := func(fd float64) float64 {
		rng := rand.New(rand.NewSource(12))
		model := channel.NewStaticModel(18, channel.NewRayleigh(rng, fd, 0))
		lt := Generate(GenConfig{Model: model, Duration: 2, Seed: 13})
		n, ok := 0, 0
		for _, s := range lt.Snapshots[5] { // QAM16 3/4
			n++
			if s.Delivered {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}
	static := func() float64 {
		model := channel.NewStaticModel(18, nil)
		lt := Generate(GenConfig{Model: model, Duration: 2, Seed: 14})
		n, ok := 0, 0
		for _, s := range lt.Snapshots[5] {
			n++
			if s.Delivered {
				ok++
			}
		}
		return float64(ok) / float64(n)
	}()
	fading := mkDoppler(4000)
	if fading >= static {
		t.Fatalf("fast fading delivery %v not below static %v", fading, static)
	}
}
