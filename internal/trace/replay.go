package trace

import (
	"math/rand"

	"softrate/internal/core"
)

// This file implements frame-by-frame trace replay: the bridge between a
// captured LinkTrace and anything that consumes sender-side feedback
// events — the softrated load generator, determinism harnesses, and any
// future experiment that walks a trace one transmission at a time. It
// centralizes the slot-walking and outcome-derivation logic that would
// otherwise be re-implemented per consumer.

// FrameEvent is what the sender learns about one replayed transmission: the
// feedback kind (§3.2's four outcomes), and — for the kinds that carry a
// BER — the interference-free estimate from the trace snapshot.
type FrameEvent struct {
	// Slot is the trace slot the frame occupied.
	Slot int
	// RateIndex is the rate the frame was (hypothetically) sent at — the
	// value the caller passed to Next.
	RateIndex int
	// Kind is the sender-side outcome.
	Kind core.FeedbackKind
	// BER is the receiver's interference-free BER estimate; meaningful
	// only for KindBER and KindCollision.
	BER float64
	// SNRdB is the preamble SNR estimate, for SNR-based consumers;
	// meaningful only when the preamble was received (KindBER,
	// KindCollision).
	SNRdB float64
	// Delivered reports whether the frame body arrived intact (always
	// false under collision kinds: both colliding frames are lost, §6.1).
	Delivered bool
}

// Mix overlays a synthetic hidden-terminal interference process on a
// replay, mirroring the collision-outcome geometry of the MAC simulator
// (preamble-clean → collision-tagged feedback; preamble lost but postamble
// caught → postamble-only feedback; both lost → silent loss). A zero Mix
// replays the trace without interference.
type Mix struct {
	// CollisionProb is the per-frame probability that an interferer
	// overlaps the transmission.
	CollisionProb float64
	// PreambleLossProb is, given a collision, the probability the overlap
	// covers the preamble (Table 1 puts preamble loss around 10–15% under
	// hidden terminals).
	PreambleLossProb float64
	// PostambleProb is, given a lost preamble, the probability the
	// postamble survives and the receiver sends a postamble-only ACK.
	// Zero models a sender without the postamble extension.
	PostambleProb float64
}

// FrameIter replays a LinkTrace one frame per snapshot slot. The caller
// drives it with the rate it would transmit at (the closed adaptation
// loop: decide → transmit → observe), and the iterator answers with the
// frame's fate. Iteration wraps past the end of the trace indefinitely —
// use Len to bound a single pass.
type FrameIter struct {
	lt   *LinkTrace
	mix  Mix
	rng  *rand.Rand
	pos  int // next slot, 0..Len()-1
	wrap int
}

// Frames returns a replay iterator over the trace, one frame per snapshot
// slot. The seed drives the iterator's private randomness: the starting
// slot offset (so concurrent replays of one shared trace don't walk in
// lockstep) and nothing else — a zero-Mix replay visits every snapshot
// deterministically.
func (lt *LinkTrace) Frames(seed int64) *FrameIter {
	return lt.FramesMix(seed, Mix{})
}

// FramesMix is Frames with a synthetic interference overlay; the same seed
// always yields the same event sequence for the same rate decisions.
func (lt *LinkTrace) FramesMix(seed int64, mix Mix) *FrameIter {
	rng := rand.New(rand.NewSource(seed))
	it := &FrameIter{lt: lt, mix: mix, rng: rng}
	if n := it.Len(); n > 0 {
		it.pos = rng.Intn(n)
	}
	return it
}

// Len returns the number of slots in one pass over the trace.
func (it *FrameIter) Len() int {
	if len(it.lt.Snapshots) == 0 {
		return 0
	}
	return len(it.lt.Snapshots[0])
}

// Epoch returns how many times the iterator has wrapped past the end of
// the trace.
func (it *FrameIter) Epoch() int { return it.wrap }

// Next replays one frame sent at rateIndex (clamped into the traced rate
// range) and advances. ok is false only for an empty trace.
func (it *FrameIter) Next(rateIndex int) (ev FrameEvent, ok bool) {
	n := it.Len()
	if n == 0 {
		return FrameEvent{}, false
	}
	if rateIndex < 0 {
		rateIndex = 0
	}
	if max := it.lt.NumRates() - 1; rateIndex > max {
		rateIndex = max
	}
	slot := it.pos
	it.pos++
	if it.pos == n {
		it.pos = 0
		it.wrap++
	}
	snap := it.lt.Snapshots[rateIndex][slot]
	ev = FrameEvent{Slot: slot, RateIndex: rateIndex, SNRdB: snap.SNRdB}

	if it.mix.CollisionProb > 0 && it.rng.Float64() < it.mix.CollisionProb {
		// Collision: the body is lost regardless of the channel. What the
		// sender hears depends on which frame edges survived the overlap.
		preambleLost := !snap.Detected || it.rng.Float64() < it.mix.PreambleLossProb
		switch {
		case !preambleLost:
			ev.Kind = core.KindCollision
			ev.BER = snap.BER
		case it.rng.Float64() < it.mix.PostambleProb:
			ev.Kind = core.KindPostamble
		default:
			ev.Kind = core.KindSilentLoss
		}
		return ev, true
	}

	if !snap.Detected {
		ev.Kind = core.KindSilentLoss
		return ev, true
	}
	ev.Kind = core.KindBER
	ev.BER = snap.BER
	ev.Delivered = snap.Delivered
	return ev, true
}
