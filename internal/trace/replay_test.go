package trace

import (
	"math"
	"testing"

	"softrate/internal/core"
)

// synthTrace builds a small trace by hand: nRates rates, nSlots slots,
// detection and BER patterned so tests can predict every event.
func synthTrace(nRates, nSlots int) *LinkTrace {
	snaps := make([][]Snapshot, nRates)
	for ri := range snaps {
		snaps[ri] = make([]Snapshot, nSlots)
		for s := range snaps[ri] {
			snaps[ri][s] = Snapshot{
				Detected:  s%5 != 4, // every fifth slot is a silent loss
				Delivered: s%2 == 0,
				BER:       math.Pow(10, float64(ri))*1e-8 + float64(s)*1e-12,
				SNRdB:     20 - float64(ri),
			}
		}
	}
	return NewSynthetic(1e-3, 1400*8, snaps)
}

func TestFramesWalksEverySlotOnce(t *testing.T) {
	lt := synthTrace(3, 50)
	it := lt.Frames(7)
	if it.Len() != 50 {
		t.Fatalf("Len = %d, want 50", it.Len())
	}
	seen := make([]int, 50)
	for i := 0; i < it.Len(); i++ {
		ev, ok := it.Next(1)
		if !ok {
			t.Fatal("Next returned !ok on a non-empty trace")
		}
		seen[ev.Slot]++
	}
	for s, c := range seen {
		if c != 1 {
			t.Fatalf("slot %d visited %d times in one pass, want exactly 1", s, c)
		}
	}
}

func TestFramesEventsMatchSnapshots(t *testing.T) {
	lt := synthTrace(3, 40)
	it := lt.Frames(3)
	for i := 0; i < 2*it.Len(); i++ {
		ri := i % 3
		ev, _ := it.Next(ri)
		snap := lt.Snapshots[ri][ev.Slot]
		if !snap.Detected {
			if ev.Kind != core.KindSilentLoss {
				t.Fatalf("slot %d: undetected frame produced %v, want silent loss", ev.Slot, ev.Kind)
			}
			continue
		}
		if ev.Kind != core.KindBER || ev.BER != snap.BER || ev.Delivered != snap.Delivered || ev.SNRdB != snap.SNRdB {
			t.Fatalf("slot %d rate %d: event %+v does not match snapshot %+v", ev.Slot, ri, ev, snap)
		}
	}
	if it.Epoch() != 2 {
		t.Fatalf("Epoch = %d after two passes, want 2", it.Epoch())
	}
}

func TestFramesDeterministicPerSeed(t *testing.T) {
	lt := synthTrace(4, 64)
	mix := Mix{CollisionProb: 0.3, PreambleLossProb: 0.4, PostambleProb: 0.5}
	a := lt.FramesMix(42, mix)
	b := lt.FramesMix(42, mix)
	c := lt.FramesMix(43, mix)
	diff := 0
	for i := 0; i < 3*a.Len(); i++ {
		ri := (i * 7) % 4
		ea, _ := a.Next(ri)
		eb, _ := b.Next(ri)
		ec, _ := c.Next(ri)
		if ea != eb {
			t.Fatalf("same seed diverged at step %d: %+v vs %+v", i, ea, eb)
		}
		if ea != ec {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical mixed replays")
	}
}

func TestFramesSeedOffsetsDecorrelateClients(t *testing.T) {
	lt := synthTrace(2, 200)
	starts := map[int]bool{}
	for seed := int64(0); seed < 20; seed++ {
		ev, _ := lt.Frames(seed).Next(0)
		starts[ev.Slot] = true
	}
	if len(starts) < 5 {
		t.Fatalf("20 seeds produced only %d distinct start slots — replays walk in lockstep", len(starts))
	}
}

func TestFramesMixProducesAllCollisionKinds(t *testing.T) {
	lt := synthTrace(2, 100)
	it := lt.FramesMix(1, Mix{CollisionProb: 0.5, PreambleLossProb: 0.5, PostambleProb: 0.5})
	counts := map[core.FeedbackKind]int{}
	deliveredUnderCollision := 0
	for i := 0; i < 4000; i++ {
		ev, _ := it.Next(1)
		counts[ev.Kind]++
		if ev.Kind == core.KindCollision && ev.Delivered {
			deliveredUnderCollision++
		}
	}
	for _, k := range []core.FeedbackKind{core.KindBER, core.KindCollision, core.KindSilentLoss, core.KindPostamble} {
		if counts[k] == 0 {
			t.Fatalf("mix never produced kind %v (counts %v)", k, counts)
		}
	}
	if deliveredUnderCollision != 0 {
		t.Fatal("collision events must never deliver the frame body")
	}
}

func TestFramesClampsRateIndex(t *testing.T) {
	lt := synthTrace(3, 10)
	it := lt.Frames(0)
	if ev, ok := it.Next(99); !ok || ev.RateIndex != 2 {
		t.Fatalf("rate index not clamped down: %+v", ev)
	}
	if ev, ok := it.Next(-3); !ok || ev.RateIndex != 0 {
		t.Fatalf("rate index not clamped up: %+v", ev)
	}
}

func TestFramesEmptyTrace(t *testing.T) {
	lt := NewSynthetic(1e-3, 1400*8, nil)
	it := lt.Frames(1)
	if _, ok := it.Next(0); ok {
		t.Fatal("Next on an empty trace must report !ok")
	}
}

func TestFramesDrivesControllerLikeDirectReplay(t *testing.T) {
	// Closing the loop through the iterator must be equivalent to walking
	// the snapshots by hand — the property the loadgen determinism check
	// builds on.
	lt := synthTrace(6, 80)
	it := lt.Frames(9)

	viaIter := core.New(core.DefaultConfig())
	var itRates []int
	cur := viaIter.CurrentIndex()
	startSlot := -1
	for i := 0; i < it.Len(); i++ {
		ev, _ := it.Next(cur)
		if startSlot < 0 {
			startSlot = ev.Slot
		}
		cur = viaIter.Apply(ev.Kind, ev.RateIndex, ev.BER)
		itRates = append(itRates, cur)
	}

	byHand := core.New(core.DefaultConfig())
	var handRates []int
	cur = byHand.CurrentIndex()
	for i := 0; i < it.Len(); i++ {
		slot := (startSlot + i) % it.Len()
		snap := lt.Snapshots[cur][slot]
		if snap.Detected {
			byHand.OnFeedback(core.Feedback{RateIndex: cur, BER: snap.BER})
		} else {
			byHand.OnSilentLoss()
		}
		cur = byHand.CurrentIndex()
		handRates = append(handRates, cur)
	}

	for i := range itRates {
		if itRates[i] != handRates[i] {
			t.Fatalf("step %d: iterator-driven rate %d != hand-walked rate %d", i, itRates[i], handRates[i])
		}
	}
}
