package trace

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"softrate/internal/ratectl"
)

// Save writes a LinkTrace as gzip-compressed JSON.
func Save(w io.Writer, lt *LinkTrace) error {
	gz := gzip.NewWriter(w)
	if err := json.NewEncoder(gz).Encode(lt); err != nil {
		gz.Close()
		return fmt.Errorf("trace: encode: %w", err)
	}
	return gz.Close()
}

// Load reads a LinkTrace written by Save.
func Load(r io.Reader) (*LinkTrace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: gzip: %w", err)
	}
	defer gz.Close()
	var lt LinkTrace
	if err := json.NewDecoder(gz).Decode(&lt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if lt.Interval <= 0 || len(lt.Snapshots) == 0 {
		return nil, fmt.Errorf("trace: malformed trace (interval %v, %d rates)", lt.Interval, len(lt.Snapshots))
	}
	return &lt, nil
}

// SaveFile writes a trace to path.
func SaveFile(path string, lt *LinkTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Save(f, lt)
}

// LoadFile reads a trace from path.
func LoadFile(path string) (*LinkTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// TrainingSamples converts every snapshot of the trace into labelled
// (rate, SNR, delivered) samples for ratectl.TrainThresholds — the in-situ
// training the paper performs for its "SNR (trained)" baseline, which
// computes "the SNR-BER relationships ... from the traces used for
// evaluation" (§6.1).
func (lt *LinkTrace) TrainingSamples() []ratectl.TrainingSample {
	var out []ratectl.TrainingSample
	for ri, snaps := range lt.Snapshots {
		for _, s := range snaps {
			if !s.Detected {
				continue
			}
			out = append(out, ratectl.TrainingSample{
				RateIndex: ri,
				SNRdB:     s.SNRdB,
				Delivered: s.Delivered,
			})
		}
	}
	return out
}
