package tcpsim

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/sim"
)

// pipe wires a sender and receiver through a one-way-delay lossy
// bottleneck link with a fixed rate and queue, entirely on the event
// engine — a miniature network for unit-testing TCP behaviour.
type pipe struct {
	eng      *sim.Engine
	delay    float64
	rateBps  float64
	queueCap int
	lossFn   func(seg Segment) bool

	sndQ     []Segment
	sndBusy  bool
	deliver  func(Segment) // forward direction sink
	ackPath  func(Segment) // reverse direction sink (delay only)
	dropped  int
	enqueued int
}

func newPipe(eng *sim.Engine, delay, rateBps float64, queueCap int) *pipe {
	return &pipe{eng: eng, delay: delay, rateBps: rateBps, queueCap: queueCap,
		lossFn: func(Segment) bool { return false }}
}

func (p *pipe) sendData(seg Segment) {
	if len(p.sndQ) >= p.queueCap {
		p.dropped++
		return
	}
	p.enqueued++
	p.sndQ = append(p.sndQ, seg)
	if !p.sndBusy {
		p.pump()
	}
}

func (p *pipe) pump() {
	if len(p.sndQ) == 0 {
		p.sndBusy = false
		return
	}
	p.sndBusy = true
	seg := p.sndQ[0]
	p.sndQ = p.sndQ[1:]
	txTime := float64(seg.Len+40) * 8 / p.rateBps
	p.eng.Schedule(txTime, func() {
		if !p.lossFn(seg) {
			s := seg
			p.eng.Schedule(p.delay, func() { p.deliver(s) })
		}
		p.pump()
	})
}

func (p *pipe) sendAck(seg Segment) {
	s := seg
	p.eng.Schedule(p.delay, func() { p.ackPath(s) })
}

func setup(eng *sim.Engine, delay, rateBps float64, queueCap int) (*Sender, *Receiver, *pipe) {
	snd := NewSender(eng, DefaultConfig())
	rcv := NewReceiver()
	p := newPipe(eng, delay, rateBps, queueCap)
	snd.Output = p.sendData
	p.deliver = rcv.OnSegment
	rcv.Output = p.sendAck
	p.ackPath = func(seg Segment) { snd.OnAck(seg.AckNo, seg.SentAt) }
	return snd, rcv, p
}

func TestBulkTransferFillsPipe(t *testing.T) {
	var eng sim.Engine
	// 10 Mbps, 20 ms RTT: BDP = 25 KB ≈ 18 segments; queue 40.
	snd, rcv, _ := setup(&eng, 0.01, 10e6, 40)
	snd.Start()
	eng.Run(10)
	goodput := float64(rcv.BytesDelivered) * 8 / 10
	if goodput < 8e6 {
		t.Fatalf("goodput %.2f Mbps, want > 8 on a clean 10 Mbps pipe", goodput/1e6)
	}
	if snd.Timeouts > 2 {
		t.Fatalf("%d timeouts on a clean pipe", snd.Timeouts)
	}
}

func TestSlowStartDoubles(t *testing.T) {
	var eng sim.Engine
	snd, _, _ := setup(&eng, 0.05, 100e6, 1000)
	snd.Start()
	// After ~3 RTTs of slow start, cwnd should have grown well beyond
	// the initial window and below the (infinite) ssthresh.
	eng.Run(0.32)
	if snd.Cwnd() < 8*float64(snd.cfg.MSS) {
		t.Fatalf("cwnd %.0f after 3 RTTs, want >= 8 MSS", snd.Cwnd()/float64(snd.cfg.MSS))
	}
}

func TestLossTriggersFastRetransmit(t *testing.T) {
	var eng sim.Engine
	snd, rcv, p := setup(&eng, 0.01, 10e6, 100)
	dropOnce := true
	n := 0
	p.lossFn = func(seg Segment) bool {
		if seg.IsAck {
			return false
		}
		n++
		if n == 20 && dropOnce {
			dropOnce = false
			return true
		}
		return false
	}
	snd.Start()
	eng.Run(5)
	if snd.FastRetx < 1 {
		t.Fatal("dropped segment did not trigger fast retransmit")
	}
	if snd.Timeouts > 0 {
		t.Fatalf("single loss caused %d timeouts; dupACKs should have handled it", snd.Timeouts)
	}
	if rcv.BytesDelivered == 0 {
		t.Fatal("no data delivered")
	}
}

func TestBurstLossCausesTimeout(t *testing.T) {
	// Losing a whole window leaves no dupACK source: only the RTO can
	// recover — exactly the TCP pathology that unresponsive rate
	// adaptation causes in fading channels (§6.2).
	var eng sim.Engine
	snd, _, p := setup(&eng, 0.01, 10e6, 100)
	blackout := false
	p.lossFn = func(seg Segment) bool { return blackout && !seg.IsAck }
	snd.Start()
	eng.Schedule(2, func() { blackout = true })
	eng.Schedule(2.5, func() { blackout = false })
	eng.Run(6)
	if snd.Timeouts == 0 {
		t.Fatal("whole-window blackout did not cause an RTO")
	}
}

func TestThroughputDropsWithLossRate(t *testing.T) {
	run := func(loss float64, seed int64) float64 {
		var eng sim.Engine
		snd, rcv, p := setup(&eng, 0.01, 10e6, 100)
		rng := rand.New(rand.NewSource(seed))
		p.lossFn = func(seg Segment) bool { return !seg.IsAck && rng.Float64() < loss }
		snd.Start()
		eng.Run(20)
		return float64(rcv.BytesDelivered) * 8 / 20
	}
	clean := run(0, 1)
	lossy := run(0.05, 2)
	if lossy >= clean/2 {
		t.Fatalf("5%% loss throughput %.2f Mbps not well below clean %.2f", lossy/1e6, clean/1e6)
	}
}

func TestCongestionNotCollapse(t *testing.T) {
	// A queue below the BDP forces loss-based operation; Reno suffers
	// (classic sub-BDP-buffer underutilization) but must not collapse to
	// a trickle.
	var eng sim.Engine
	snd, rcv, _ := setup(&eng, 0.01, 5e6, 8)
	snd.Start()
	eng.Run(20)
	goodput := float64(rcv.BytesDelivered) * 8 / 20
	if goodput < 0.8e6 {
		t.Fatalf("goodput %.2f Mbps with a small queue, want > 0.8", goodput/1e6)
	}
}

func TestReceiverReordersOutOfOrder(t *testing.T) {
	rcv := NewReceiver()
	var acks []int64
	rcv.Output = func(seg Segment) { acks = append(acks, seg.AckNo) }
	mss := 100
	// Deliver 2, 0, 1 (in units of MSS).
	rcv.OnSegment(Segment{Seq: int64(2 * mss), Len: mss})
	rcv.OnSegment(Segment{Seq: 0, Len: mss})
	rcv.OnSegment(Segment{Seq: int64(mss), Len: mss})
	wantAcks := []int64{0, int64(mss), int64(3 * mss)}
	if len(acks) != 3 {
		t.Fatalf("acks %v", acks)
	}
	for i := range wantAcks {
		if acks[i] != wantAcks[i] {
			t.Fatalf("acks %v, want %v", acks, wantAcks)
		}
	}
	if rcv.BytesDelivered != int64(3*mss) {
		t.Fatalf("delivered %d, want %d", rcv.BytesDelivered, 3*mss)
	}
}

func TestDuplicateSegmentHarmless(t *testing.T) {
	rcv := NewReceiver()
	var lastAck int64
	rcv.Output = func(seg Segment) { lastAck = seg.AckNo }
	rcv.OnSegment(Segment{Seq: 0, Len: 100})
	rcv.OnSegment(Segment{Seq: 0, Len: 100}) // duplicate
	if rcv.BytesDelivered != 100 {
		t.Fatalf("duplicate counted twice: %d", rcv.BytesDelivered)
	}
	if lastAck != 100 {
		t.Fatalf("lastAck %d, want 100", lastAck)
	}
}

func TestRTTEstimation(t *testing.T) {
	var eng sim.Engine
	snd, _, _ := setup(&eng, 0.025, 50e6, 1000) // RTT 50 ms + tx time
	snd.Start()
	// Stop before the lossless window builds a large standing queue,
	// which would (correctly) inflate the measured RTT.
	eng.Run(0.4)
	if !snd.haveRTT {
		t.Fatal("no RTT samples")
	}
	if snd.srtt < 0.045 || snd.srtt > 0.12 {
		t.Fatalf("SRTT %v, want ~0.05-0.1", snd.srtt)
	}
	if snd.rto < snd.cfg.MinRTO {
		t.Fatalf("RTO %v below floor", snd.rto)
	}
}

func TestAIMDSawtooth(t *testing.T) {
	// With periodic single losses, cwnd must repeatedly halve (multiplicative
	// decrease) and re-grow (additive increase) rather than collapse.
	var eng sim.Engine
	snd, rcv, p := setup(&eng, 0.01, 10e6, 60)
	rng := rand.New(rand.NewSource(3))
	p.lossFn = func(seg Segment) bool { return !seg.IsAck && rng.Float64() < 0.003 }
	snd.Start()
	var cwndSamples []float64
	var sample func()
	sample = func() {
		cwndSamples = append(cwndSamples, snd.Cwnd())
		eng.Schedule(0.1, sample)
	}
	eng.Schedule(1, sample)
	eng.Run(30)
	if rcv.BytesDelivered == 0 {
		t.Fatal("nothing delivered")
	}
	mean := 0.0
	for _, c := range cwndSamples {
		mean += c
	}
	mean /= float64(len(cwndSamples))
	variance := 0.0
	for _, c := range cwndSamples {
		variance += (c - mean) * (c - mean)
	}
	variance /= float64(len(cwndSamples))
	if math.Sqrt(variance) < float64(snd.cfg.MSS) {
		t.Fatal("cwnd shows no sawtooth variation under periodic loss")
	}
}
