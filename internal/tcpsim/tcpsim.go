// Package tcpsim implements a Reno-style TCP for the end-to-end
// evaluation: slow start, congestion avoidance, duplicate-ACK fast
// retransmit, and RTO with exponential backoff and RFC 6298-style RTT
// estimation. It is deliberately a model, not a stack — no handshake, no
// teardown, segments are MSS-aligned, and the application always has data
// — but it reproduces the dynamics the paper's TCP results hinge on: burst
// losses collapse the window, and a responsive link layer that prevents
// those bursts keeps the pipe full (§6.2).
package tcpsim

import (
	"math"

	"softrate/internal/sim"
)

// Segment is a TCP segment or ACK traveling through the simulated network.
type Segment struct {
	// Seq is the byte offset of the segment's first payload byte.
	Seq int64
	// Len is the payload length (0 for pure ACKs).
	Len int
	// IsAck marks an acknowledgment.
	IsAck bool
	// AckNo is the cumulative acknowledgment (next expected byte).
	AckNo int64
	// SentAt timestamps the original transmission (for RTT sampling;
	// retransmissions clear it to sidestep Karn's ambiguity).
	SentAt float64
}

// Config parameterizes a sender.
type Config struct {
	// MSS is the maximum segment size in bytes (default 1400, the
	// paper's frame payload).
	MSS int
	// InitialWindow is the initial congestion window in segments
	// (default 2).
	InitialWindow int
	// RWnd is the receiver window in bytes (default 1 MiB — effectively
	// unlimited, so the congestion window governs).
	RWnd int64
	// MinRTO floors the retransmission timeout (default 200 ms).
	MinRTO float64
	// MaxCwnd optionally caps the window in bytes (0 = uncapped).
	MaxCwnd float64
	// Debug, when set, receives trace events (timeouts, fast
	// retransmits) for diagnosis: (event, time, arg1, arg2).
	Debug func(ev string, t, a, b float64)
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	return Config{MSS: 1400, InitialWindow: 2, RWnd: 1 << 20, MinRTO: 0.2}
}

// Sender is one TCP sending endpoint with an infinite data source.
type Sender struct {
	cfg Config
	eng *sim.Engine
	// Output transmits a segment toward the receiver; wired up by the
	// network layer.
	Output func(seg Segment)

	sndUna  int64 // oldest unacknowledged byte
	sndNext int64 // next byte to send
	cwnd    float64
	ssth    float64

	dupAcks    int
	inRecovery bool
	recoverTo  int64

	srtt, rttvar float64
	haveRTT      bool
	rto          float64
	timerGen     int
	timerSet     bool

	// Stats
	Retransmits int
	Timeouts    int
	FastRetx    int
}

// NewSender builds a sender bound to the engine; call Start to begin.
func NewSender(eng *sim.Engine, cfg Config) *Sender {
	if cfg.MSS <= 0 {
		cfg.MSS = 1400
	}
	if cfg.InitialWindow <= 0 {
		cfg.InitialWindow = 2
	}
	if cfg.RWnd <= 0 {
		cfg.RWnd = 1 << 20
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 0.2
	}
	return &Sender{
		cfg:  cfg,
		eng:  eng,
		cwnd: float64(cfg.InitialWindow * cfg.MSS),
		ssth: math.Inf(1),
		rto:  1.0,
	}
}

// Cwnd returns the current congestion window in bytes.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// Start begins transmission.
func (s *Sender) Start() { s.trySend() }

// window returns the effective send window in bytes.
func (s *Sender) window() float64 {
	w := s.cwnd
	if float64(s.cfg.RWnd) < w {
		w = float64(s.cfg.RWnd)
	}
	if s.cfg.MaxCwnd > 0 && w > s.cfg.MaxCwnd {
		w = s.cfg.MaxCwnd
	}
	return w
}

// trySend emits new segments while the window allows.
func (s *Sender) trySend() {
	for float64(s.sndNext-s.sndUna)+float64(s.cfg.MSS) <= s.window() {
		seg := Segment{Seq: s.sndNext, Len: s.cfg.MSS, SentAt: s.eng.Now()}
		s.sndNext += int64(s.cfg.MSS)
		s.armTimer()
		s.Output(seg)
	}
}

// armTimer (re)arms the retransmission timer if unset.
func (s *Sender) armTimer() {
	if s.timerSet {
		return
	}
	s.timerSet = true
	gen := s.timerGen
	s.eng.Schedule(s.rto, func() { s.onTimer(gen) })
}

// resetTimer cancels the pending timer logically (by generation) and
// re-arms if data is in flight.
func (s *Sender) resetTimer() {
	s.timerGen++
	s.timerSet = false
	if s.sndNext > s.sndUna {
		s.armTimer()
	}
}

// onTimer fires the RTO.
func (s *Sender) onTimer(gen int) {
	if gen != s.timerGen || s.sndUna >= s.sndNext {
		return // stale timer
	}
	s.Timeouts++
	s.Retransmits++
	if s.cfg.Debug != nil {
		s.cfg.Debug("timeout", s.eng.Now(), float64(s.sndUna), s.rto)
	}
	// Classic Reno timeout response: collapse the window and go back to
	// snd_una. Rewinding sndNext makes trySend retransmit the whole lost
	// window in slow start as ACKs return — without it, a whole-window
	// loss would crawl forward one segment per (exponentially backed-off)
	// RTO, which is not how any real TCP behaves.
	flight := float64(s.sndNext - s.sndUna)
	s.ssth = math.Max(flight/2, float64(2*s.cfg.MSS))
	s.cwnd = float64(s.cfg.MSS)
	s.dupAcks = 0
	s.inRecovery = false
	s.rto = math.Min(s.rto*2, 60)
	s.timerGen++
	s.timerSet = false
	s.sndNext = s.sndUna
	s.trySend()
	s.armTimer()
}

// OnAck processes a cumulative acknowledgment.
func (s *Sender) OnAck(ackNo int64, echoedSentAt float64) {
	now := s.eng.Now()
	if echoedSentAt > 0 {
		s.sampleRTT(now - echoedSentAt)
	}
	switch {
	case ackNo > s.sndUna:
		acked := float64(ackNo - s.sndUna)
		s.sndUna = ackNo
		s.dupAcks = 0
		if s.inRecovery {
			if ackNo >= s.recoverTo {
				// Recovery complete: deflate to ssthresh.
				s.inRecovery = false
				s.cwnd = s.ssth
			} else {
				// Partial ACK (NewReno): retransmit next hole.
				s.Retransmits++
				s.Output(Segment{Seq: s.sndUna, Len: s.cfg.MSS})
			}
		} else if s.cwnd < s.ssth {
			s.cwnd += acked // slow start
		} else {
			s.cwnd += float64(s.cfg.MSS) * acked / s.cwnd // AIMD
		}
		s.resetTimer()
	case ackNo == s.sndUna && s.sndNext > s.sndUna:
		s.dupAcks++
		if s.dupAcks == 3 && !s.inRecovery {
			// Fast retransmit.
			if s.cfg.Debug != nil {
				s.cfg.Debug("fastretx", s.eng.Now(), float64(s.sndUna), s.cwnd)
			}
			s.FastRetx++
			s.Retransmits++
			flight := float64(s.sndNext - s.sndUna)
			s.ssth = math.Max(flight/2, float64(2*s.cfg.MSS))
			s.cwnd = s.ssth + 3*float64(s.cfg.MSS)
			s.inRecovery = true
			s.recoverTo = s.sndNext
			s.Output(Segment{Seq: s.sndUna, Len: s.cfg.MSS})
		} else if s.inRecovery {
			s.cwnd += float64(s.cfg.MSS) // window inflation
		}
	}
	s.trySend()
}

// sampleRTT updates SRTT/RTTVAR and the RTO per RFC 6298.
func (s *Sender) sampleRTT(rtt float64) {
	if rtt <= 0 {
		return
	}
	if !s.haveRTT {
		s.srtt = rtt
		s.rttvar = rtt / 2
		s.haveRTT = true
	} else {
		const alpha, beta = 1.0 / 8, 1.0 / 4
		s.rttvar = (1-beta)*s.rttvar + beta*math.Abs(s.srtt-rtt)
		s.srtt = (1-alpha)*s.srtt + alpha*rtt
	}
	s.rto = math.Max(s.srtt+4*s.rttvar, s.cfg.MinRTO)
}

// Receiver is the TCP receiving endpoint: cumulative ACKs with
// out-of-order buffering.
type Receiver struct {
	// Output transmits ACK segments back toward the sender.
	Output func(seg Segment)

	rcvNext int64
	ooo     map[int64]int // seq -> len of buffered out-of-order segments

	// BytesDelivered counts in-order payload delivered to the
	// application — the throughput numerator of the experiments.
	BytesDelivered int64
}

// NewReceiver builds a receiver.
func NewReceiver() *Receiver {
	return &Receiver{ooo: map[int64]int{}}
}

// OnSegment processes an arriving data segment and emits an ACK.
func (r *Receiver) OnSegment(seg Segment) {
	if seg.Len > 0 {
		switch {
		case seg.Seq == r.rcvNext:
			r.rcvNext += int64(seg.Len)
			r.BytesDelivered += int64(seg.Len)
			// Drain contiguous out-of-order data.
			for {
				l, ok := r.ooo[r.rcvNext]
				if !ok {
					break
				}
				delete(r.ooo, r.rcvNext)
				r.BytesDelivered += int64(l)
				r.rcvNext += int64(l)
			}
		case seg.Seq > r.rcvNext:
			r.ooo[seg.Seq] = seg.Len
		}
		// else: old duplicate; ACK anyway.
	}
	r.Output(Segment{IsAck: true, AckNo: r.rcvNext, SentAt: seg.SentAt})
}
