package coldstore

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func stateFor(id uint64, w int) []byte {
	st := make([]byte, w)
	for i := range st {
		st[i] = byte(id + uint64(i)*131)
	}
	binary.LittleEndian.PutUint64(st[:8], id)
	return st
}

func putOne(t *testing.T, s *Store, id uint64, algo uint8, state []byte) {
	t.Helper()
	if err := s.PutBatch([]Record{{LinkID: id, Algo: algo, State: state}}); err != nil {
		t.Fatalf("PutBatch(%d): %v", id, err)
	}
}

func TestPutTakeRoundtrip(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	widths := []int{8, 16, 20, 1668}
	var batch []Record
	for i := 0; i < 64; i++ {
		id := uint64(i + 1)
		batch = append(batch, Record{LinkID: id, Algo: uint8(i%5 + 1), State: stateFor(id, widths[i%len(widths)])})
	}
	if err := s.PutBatch(batch); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if got := s.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
	for i, r := range batch {
		algo, st, ok, err := s.Take(r.LinkID, nil)
		if err != nil || !ok {
			t.Fatalf("Take(%d): ok=%v err=%v", r.LinkID, ok, err)
		}
		if algo != r.Algo {
			t.Fatalf("Take(%d): algo %d, want %d", r.LinkID, algo, r.Algo)
		}
		if !bytes.Equal(st, stateFor(r.LinkID, widths[i%len(widths)])) {
			t.Fatalf("Take(%d): state mismatch", r.LinkID)
		}
	}
	// Taken links are gone.
	if _, _, ok, err := s.Take(1, nil); ok || err != nil {
		t.Fatalf("re-Take(1): ok=%v err=%v, want miss", ok, err)
	}
	st := s.Stats()
	if st.Links != 0 || st.Spills != 64 || st.Restores != 64 {
		t.Fatalf("stats = %+v", st)
	}
	if st.RestoreLatency.Count != 64 {
		t.Fatalf("restore latency count = %d, want 64", st.RestoreLatency.Count)
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	putOne(t, s, 7, 3, stateFor(7, 16))
	for i := 0; i < 2; i++ {
		algo, st, ok, err := s.Peek(7, nil)
		if err != nil || !ok || algo != 3 || !bytes.Equal(st, stateFor(7, 16)) {
			t.Fatalf("Peek #%d: algo=%d ok=%v err=%v", i, algo, ok, err)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("Peek removed the link")
	}
}

func TestSupersedeKeepsLatest(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	putOne(t, s, 42, 1, stateFor(42, 8))
	next := stateFor(43, 8) // different bytes, same link
	putOne(t, s, 42, 1, next)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after supersede, want 1", s.Len())
	}
	_, st, ok, err := s.Take(42, nil)
	if err != nil || !ok || !bytes.Equal(st, next) {
		t.Fatalf("Take after supersede: ok=%v err=%v state=%x", ok, err, st)
	}
	stats := s.Stats()
	if stats.DeadBytes == 0 {
		t.Fatalf("superseded record not counted dead: %+v", stats)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	// Tiny segments so a few batches rotate; ratio 0.4 so a half-dead
	// segment is rewritten.
	s := openT(t, t.TempDir(), Config{SegmentBytes: 1 << 10, CompactRatio: 0.4})
	const n = 200
	for i := 0; i < n; i++ {
		putOne(t, s, uint64(i+1), 1, stateFor(uint64(i+1), 32))
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	// Kill most of the population, then compact to quiescence.
	for i := 0; i < n-10; i++ {
		if _, _, ok, err := s.Take(uint64(i+1), nil); !ok || err != nil {
			t.Fatalf("Take(%d): ok=%v err=%v", i+1, ok, err)
		}
	}
	for {
		progressed, err := s.CompactOnce()
		if err != nil {
			t.Fatalf("CompactOnce: %v", err)
		}
		if !progressed {
			break
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	if st.Links != 10 {
		t.Fatalf("Links = %d, want 10", st.Links)
	}
	// The survivors must still read back exactly.
	for i := n - 10; i < n; i++ {
		id := uint64(i + 1)
		_, got, ok, err := s.Take(id, nil)
		if err != nil || !ok || !bytes.Equal(got, stateFor(id, 32)) {
			t.Fatalf("post-compaction Take(%d): ok=%v err=%v", id, ok, err)
		}
	}
}

func TestReopenRecoversEverything(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{SegmentBytes: 1 << 10})
	const n = 100
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		putOne(t, s, id, uint8(i%5+1), stateFor(id, 8+(i%4)*8))
	}
	// Supersede one so the reopened index must honor later-wins; take one
	// to pin the documented resurrection semantics (a taken link's record
	// stays in the log, so reopen recovers its spill-time state — the
	// owner supersedes it on the next spill, or SpillAll at shutdown).
	putOne(t, s, 5, 2, stateFor(500, 16))
	if _, _, ok, err := s.Take(9, nil); !ok || err != nil {
		t.Fatalf("Take(9): ok=%v err=%v", ok, err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, dir, Config{SegmentBytes: 1 << 10})
	if got, want := r.Len(), n; got != want {
		t.Fatalf("reopened Len = %d, want %d", got, want)
	}
	if _, st, ok, _ := r.Peek(9, nil); !ok || !bytes.Equal(st, stateFor(9, 8+(9-1)%4*8)) {
		t.Fatalf("taken link 9 should resurrect with its spill-time state; ok=%v", ok)
	}
	algo, st, ok, err := r.Peek(5, nil)
	if err != nil || !ok || algo != 2 || !bytes.Equal(st, stateFor(500, 16)) {
		t.Fatalf("reopened Peek(5): algo=%d ok=%v err=%v", algo, ok, err)
	}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		if id == 5 || id == 9 {
			continue
		}
		_, st, ok, err := r.Peek(id, nil)
		if err != nil || !ok || !bytes.Equal(st, stateFor(id, 8+(i%4)*8)) {
			t.Fatalf("reopened Peek(%d): ok=%v err=%v", id, ok, err)
		}
	}
}

// TestTornTailTruncated crashes mid-commit by chopping bytes off the
// active segment: every fully-written record must survive reopen and the
// torn suffix must be dropped, not parsed.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	for i := 0; i < 10; i++ {
		putOne(t, s, uint64(i+1), 1, stateFor(uint64(i+1), 32))
	}
	putOne(t, s, 999, 1, stateFor(999, 32))
	s.Close()

	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear halfway through the final record.
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Config{})
	if _, _, ok, _ := r.Peek(999, nil); ok {
		t.Fatalf("torn record 999 came back")
	}
	for i := 0; i < 10; i++ {
		id := uint64(i + 1)
		_, st, ok, err := r.Peek(id, nil)
		if err != nil || !ok || !bytes.Equal(st, stateFor(id, 32)) {
			t.Fatalf("committed record %d lost to torn tail: ok=%v err=%v", id, ok, err)
		}
	}
	if st := r.Stats(); st.TornTails != 1 {
		t.Fatalf("TornTails = %d, want 1", st.TornTails)
	}
	// The tier keeps working after repair.
	putOne(t, r, 999, 1, stateFor(999, 32))
	_, st, ok, err := r.Take(999, nil)
	if err != nil || !ok || !bytes.Equal(st, stateFor(999, 32)) {
		t.Fatalf("post-repair Take(999): ok=%v err=%v", ok, err)
	}
}

// TestCorruptTailNeverFabricates flips a byte inside the final record:
// recovery must drop that record (CRC) without inventing state, keeping
// all earlier ones.
func TestCorruptTailNeverFabricates(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{})
	for i := 0; i < 5; i++ {
		putOne(t, s, uint64(i+1), 1, stateFor(uint64(i+1), 24))
	}
	s.Close()

	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x40 // inside the last record's state
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, Config{})
	if r.Len() != 4 {
		t.Fatalf("Len = %d after corrupt tail, want 4", r.Len())
	}
	if _, _, ok, _ := r.Peek(5, nil); ok {
		t.Fatalf("corrupt record 5 came back")
	}
	for i := 0; i < 4; i++ {
		id := uint64(i + 1)
		_, st, ok, err := r.Peek(id, nil)
		if err != nil || !ok || !bytes.Equal(st, stateFor(id, 24)) {
			t.Fatalf("record %d lost: ok=%v err=%v", id, ok, err)
		}
	}
}

func TestStatsBytesAndAlgos(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	putOne(t, s, 1, 1, stateFor(1, 8))
	putOne(t, s, 2, 2, stateFor(2, 1668))
	st := s.Stats()
	wantLive := int64(recOverhead+8) + int64(recOverhead+1668)
	if st.LiveBytes != wantLive {
		t.Fatalf("LiveBytes = %d, want %d", st.LiveBytes, wantLive)
	}
	if st.AlgoLinks[1] != 1 || st.AlgoLinks[2] != 1 {
		t.Fatalf("AlgoLinks = %v", st.AlgoLinks)
	}
	if _, _, ok, _ := s.Take(2, nil); !ok {
		t.Fatal("Take(2) missed")
	}
	st = s.Stats()
	if st.LiveBytes != int64(recOverhead+8) || st.DeadBytes != int64(recOverhead+1668) {
		t.Fatalf("after Take: live=%d dead=%d", st.LiveBytes, st.DeadBytes)
	}
	if _, ok := st.AlgoLinks[2]; ok {
		t.Fatalf("algo 2 still counted: %v", st.AlgoLinks)
	}
}

func TestRejectsOversizeState(t *testing.T) {
	s := openT(t, t.TempDir(), Config{})
	err := s.PutBatch([]Record{{LinkID: 1, Algo: 1, State: make([]byte, maxStateLen+1)}})
	if err == nil {
		t.Fatal("oversize state accepted")
	}
	if s.Len() != 0 {
		t.Fatal("oversize batch partially applied")
	}
}

func TestRejectsForeignFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(0)), []byte("not a segment file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("Open accepted a foreign file as a segment")
	}
}

func TestManyBatchesManySegmentsReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Config{SegmentBytes: 4 << 10})
	want := make(map[uint64][]byte)
	for b := 0; b < 40; b++ {
		var batch []Record
		for i := 0; i < 25; i++ {
			id := uint64(b*1000 + i + 1)
			st := stateFor(id, 8+(i%3)*12)
			want[id] = st
			batch = append(batch, Record{LinkID: id, Algo: uint8(b%5 + 1), State: st})
		}
		if err := s.PutBatch(batch); err != nil {
			t.Fatalf("PutBatch #%d: %v", b, err)
		}
	}
	s.Close()
	r := openT(t, dir, Config{SegmentBytes: 4 << 10})
	if r.Len() != len(want) {
		t.Fatalf("reopened Len = %d, want %d", r.Len(), len(want))
	}
	for id, st := range want {
		_, got, ok, err := r.Take(id, nil)
		if err != nil || !ok || !bytes.Equal(got, st) {
			t.Fatalf("Take(%d): ok=%v err=%v", id, ok, err)
		}
	}
}

// FuzzSegmentRecovery is the crash-recovery contract under fire: commit
// a known population, then corrupt the tail of the last segment in an
// arbitrary way (truncate to any length, or flip arbitrary suffix
// bytes). Reopen must (a) never return a record that was not committed
// byte-for-byte, and (b) recover every record strictly before the
// damage.
func FuzzSegmentRecovery(f *testing.F) {
	f.Add(uint16(0), uint8(0), uint64(0))
	f.Add(uint16(20), uint8(1), uint64(0x40))
	f.Add(uint16(300), uint8(7), uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, chop uint16, nflips uint8, flipSeed uint64) {
		dir := t.TempDir()
		s, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10})
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64][]byte)
		for b := 0; b < 6; b++ {
			var batch []Record
			for i := 0; i < 10; i++ {
				id := uint64(b*100 + i + 1)
				st := stateFor(id, 8+(int(id)%5)*7)
				want[id] = st
				batch = append(batch, Record{LinkID: id, Algo: uint8(id%5 + 1), State: st})
			}
			if err := s.PutBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()

		// Find the last segment and damage its tail.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		last := ""
		for _, e := range entries {
			if e.Name() > last {
				last = e.Name()
			}
		}
		path := filepath.Join(dir, last)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Parse the pre-damage image: only these links may be lost.
		lastIDs := make(map[uint64]bool)
		for off := headerLen; off+recOverhead <= len(data); {
			w := int(binary.LittleEndian.Uint16(data[off : off+2]))
			lastIDs[binary.LittleEndian.Uint64(data[off+3:off+11])] = true
			off += recOverhead + w
		}
		// damageStart marks the first byte that may differ from the
		// committed image.
		damageStart := len(data)
		if n := int(chop) % (len(data) + 1); n > 0 {
			data = data[:len(data)-n]
			damageStart = len(data)
		}
		rng := flipSeed
		for i := 0; i < int(nflips%8) && len(data) > headerLen; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			// Flip within the last quarter of the file (past the header)
			// so the damage is tail-shaped.
			span := (len(data)-headerLen)/4 + 1
			pos := len(data) - 1 - int(rng>>33)%span
			if pos < headerLen {
				pos = headerLen
			}
			data[pos] ^= byte(rng) | 1
			if pos < damageStart {
				damageStart = pos
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		r, err := Open(Config{Dir: dir, SegmentBytes: 1 << 10})
		if err != nil {
			// A fully unparseable segment header is a refused Open, not a
			// fabricated record — acceptable only if the header itself was
			// damaged.
			if damageStart < headerLen {
				return
			}
			t.Fatalf("Open after tail damage: %v", err)
		}
		defer r.Close()

		for id, st := range want {
			algo, got, ok, err := r.Peek(id, nil)
			if err != nil {
				t.Fatalf("Peek(%d): %v", id, err)
			}
			if !ok {
				// Only links whose record lived in the damaged segment may
				// be lost.
				if !lastIDs[id] {
					t.Fatalf("Peek(%d): lost a record from an undamaged segment", id)
				}
				continue
			}
			// Never a garbage record: anything returned must be the
			// committed bytes.
			if !bytes.Equal(got, st) || algo != uint8(id%5+1) {
				t.Fatalf("Peek(%d) returned fabricated state: algo=%d got=%x want=%x", id, algo, got, st)
			}
		}
	})
}
