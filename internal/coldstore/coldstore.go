// Package coldstore is the link store's disk tier: an append-only
// segment log of encoded per-link controller states with a compact
// in-memory index. It exists so that resident memory tracks the *hot*
// link population instead of the total one — at 10M+ links the RAM cost
// of an idle link drops from its full archived state (up to ~1.7 KB for
// SampleRate, plus map overhead) to one index entry (a 16-byte
// linkID → location pair plus map overhead).
//
// Design, in the spirit of every log-structured store:
//
//   - Writes are batched appends. The link store evicts links in
//     generations, and one generation becomes one PutBatch: every record
//     is serialized into a single buffer and committed with one write
//     syscall (group commit). Records are CRC-framed — [width u16,
//     algo u8, linkID u64, state, crc32 over all of it] — so a torn
//     tail is detectable.
//   - Reads are single-shot. The index maps a link to (segment, offset);
//     Take issues one pread of at most the largest record width and
//     validates the CRC before handing the state back. A restored link's
//     record becomes dead — the hot store owns the state again.
//   - Segments rotate at a size threshold. Superseded and restored
//     records make a segment's dead ratio grow; a background compactor
//     rewrites any segment past Config.CompactRatio by re-appending its
//     live records and deleting the file, so disk usage tracks the live
//     population.
//   - Recovery is a scan. Open rebuilds the index by reading every
//     segment in ID order (later segments supersede earlier ones, later
//     offsets supersede earlier ones); the first CRC or framing failure
//     in a segment is treated as a torn tail and truncated away, so a
//     crash mid-commit recovers every fully-written record and never
//     fabricates one. Take deletes only the index entry, so a link taken
//     back into RAM and then lost to a crash resurrects at reopen with
//     its spill-time state — best-available semantics; a clean shutdown
//     (linkstore.SpillAll) supersedes every such record first, making
//     restart exact.
//
// The store never decodes controller state — bytes in are bytes out,
// which is what keeps decisions byte-identical across evict → spill →
// restore (the link store's -verify contract extends over this tier).
package coldstore

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"softrate/internal/faultfs"
	"softrate/internal/obs"
	"softrate/internal/stats"
)

// segmentFile is the per-file I/O surface a segment needs. It is
// faultfs.File so a fault-injecting Config.FS reaches every read, write
// and sync the tier ever issues — there is no *os.File fast path to slip
// past the injector.
type segmentFile = faultfs.File

const (
	// segMagic/segVersion head every segment file.
	segMagic   = 0x53524353 // "SRCS"
	segVersion = 1
	headerLen  = 8

	// recHeaderLen is [width u16][algo u8][linkID u64]; recOverhead adds
	// the trailing CRC32.
	recHeaderLen = 2 + 1 + 8
	recOverhead  = recHeaderLen + 4

	// maxStateLen bounds a record's state width: anything larger in a
	// segment is corruption, not a controller snapshot (the widest
	// registered state is SampleRate's ~1.7 KB).
	maxStateLen = 1 << 16

	// DefaultSegmentBytes is the rotation threshold when
	// Config.SegmentBytes is zero.
	DefaultSegmentBytes = 64 << 20
	// DefaultCompactRatio is the dead-byte ratio past which a segment is
	// rewritten, when Config.CompactRatio is zero.
	DefaultCompactRatio = 0.5
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the segment directory (created if absent).
	Dir string
	// SegmentBytes is the size at which the active segment is rotated.
	// A batch is never split across segments, so a segment may exceed
	// this by up to one batch. 0 means DefaultSegmentBytes.
	SegmentBytes int
	// CompactRatio is the dead/total byte ratio past which a sealed
	// segment is compacted, in (0, 1]; 1 rewrites only fully-dead
	// segments (which are always reclaimed). 0 means
	// DefaultCompactRatio.
	CompactRatio float64
	// Sync fsyncs after every committed batch. Off by default: the tier
	// targets crash-*restart* recovery (process death), not power-loss
	// durability, and the TTL-eviction write path should not pay an
	// fsync per generation.
	Sync bool
	// FS is the filesystem the tier runs on. Nil means the real one
	// (faultfs.OS); chaos runs pass a faultfs.Injector here.
	FS faultfs.FS
}

// Record is one link's encoded state handed to PutBatch. State is only
// read during the call.
type Record struct {
	LinkID uint64
	Algo   uint8
	State  []byte
}

// segment is one on-disk log file.
type segment struct {
	id        uint32
	f         segmentFile
	size      int64 // committed bytes, including the header
	liveBytes int64 // record bytes still referenced by the index
	deadBytes int64 // record bytes superseded or restored
	liveRecs  int64
	deadRecs  int64
}

func (sg *segment) deadRatio() float64 {
	total := sg.liveBytes + sg.deadBytes
	if total == 0 {
		return 0
	}
	return float64(sg.deadBytes) / float64(total)
}

// Store is the disk-backed cold tier.
type Store struct {
	cfg          Config
	fs           faultfs.FS
	segmentBytes int64
	compactRatio float64

	mu      sync.Mutex
	segs    map[uint32]*segment
	active  *segment
	nextSeg uint32
	// index maps linkID → (segment ID << 32 | byte offset). A Go map of
	// two uint64s costs ~16 payload bytes per link plus bucket overhead
	// — the whole point of the tier: this is all an idle link keeps in
	// RAM.
	index map[uint64]uint64
	// maxRec is the largest committed record length; Take preads this
	// much so a restore is one syscall regardless of the record's width.
	maxRec int64
	// perAlgo counts live indexed links per algorithm ID.
	perAlgo [256]int64

	batchBuf []byte // PutBatch serialization buffer, reused
	readBuf  []byte // Take/Peek pread buffer, reused

	spills      uint64
	restores    uint64
	compactions uint64
	tornTails   uint64
	restoreLat  obs.Latency

	compactCh chan struct{}
	stopCh    chan struct{}
	done      sync.WaitGroup
	closed    bool
}

func pack(seg uint32, off int64) uint64   { return uint64(seg)<<32 | uint64(uint32(off)) }
func unpack(v uint64) (uint32, int64)     { return uint32(v >> 32), int64(v & 0xffffffff) }
func segName(id uint32) string            { return fmt.Sprintf("seg-%08d.slog", id) }
func (s *Store) segPath(id uint32) string { return filepath.Join(s.cfg.Dir, segName(id)) }

// Open creates or recovers a Store in cfg.Dir. Existing segments are
// scanned to rebuild the index: later segments supersede earlier ones,
// and a torn tail (partial final batch from a crash) is truncated away.
func Open(cfg Config) (*Store, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.CompactRatio <= 0 {
		cfg.CompactRatio = DefaultCompactRatio
	}
	if cfg.CompactRatio > 1 {
		cfg.CompactRatio = 1
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	if err := cfg.FS.MkdirAll(cfg.Dir); err != nil {
		return nil, err
	}
	s := &Store{
		cfg:          cfg,
		fs:           cfg.FS,
		segmentBytes: int64(cfg.SegmentBytes),
		compactRatio: cfg.CompactRatio,
		segs:         make(map[uint32]*segment),
		index:        make(map[uint64]uint64),
		compactCh:    make(chan struct{}, 1),
		stopCh:       make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.done.Add(1)
	go s.compactLoop()
	s.kickCompact()
	return s, nil
}

// recover scans the directory and rebuilds segments and index.
func (s *Store) recover() error {
	names, err := s.fs.ReadDir(s.cfg.Dir)
	if err != nil {
		return err
	}
	var ids []uint32
	for _, name := range names {
		var id uint32
		if n, _ := fmt.Sscanf(name, "seg-%08d.slog", &id); n == 1 && name == segName(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sg, err := s.openSegment(id)
		if err != nil {
			return err
		}
		if err := s.scanSegment(sg); err != nil {
			return err
		}
		s.segs[id] = sg
		if id >= s.nextSeg {
			s.nextSeg = id + 1
		}
	}
	// The highest segment resumes as the active one; with none, start
	// fresh at segment 0.
	if len(ids) > 0 {
		s.active = s.segs[ids[len(ids)-1]]
		return nil
	}
	return s.rotateLocked()
}

// openSegment opens an existing segment file, repairing a torn header
// (a crash during creation) by rewriting it.
func (s *Store) openSegment(id uint32) (*segment, error) {
	f, err := s.fs.Open(s.segPath(id))
	if err != nil {
		return nil, err
	}
	sg := &segment{id: id, f: f}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return nil, err
	}
	if size < headerLen {
		if err := s.writeHeader(sg); err != nil {
			f.Close()
			return nil, err
		}
		return sg, nil
	}
	var hdr [headerLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != segVersion {
		f.Close()
		return nil, fmt.Errorf("coldstore: %s: not a cold-tier segment", s.segPath(id))
	}
	sg.size = size
	return sg, nil
}

func (s *Store) writeHeader(sg *segment) error {
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segVersion)
	if _, err := sg.f.WriteAt(hdr[:], 0); err != nil {
		return err
	}
	if err := sg.f.Truncate(headerLen); err != nil {
		return err
	}
	sg.size = headerLen
	return nil
}

// scanSegment replays one segment's records into the index. The first
// framing or CRC failure is a torn tail: everything before it is
// committed, everything at and after it is truncated away.
func (s *Store) scanSegment(sg *segment) error {
	if sg.size <= headerLen {
		return nil
	}
	data := make([]byte, sg.size-headerLen)
	if _, err := sg.f.ReadAt(data, headerLen); err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		rec := data[off:]
		if len(rec) < recOverhead {
			break // torn: not even a frame
		}
		w := int(binary.LittleEndian.Uint16(rec[0:2]))
		if w > maxStateLen || len(rec) < recOverhead+w {
			break // torn: width runs past the tail
		}
		n := recOverhead + w
		want := binary.LittleEndian.Uint32(rec[n-4 : n])
		if crc32IEEE(rec[:n-4]) != want {
			break // torn: partial write inside the frame
		}
		algo := rec[2]
		id := binary.LittleEndian.Uint64(rec[3:11])
		s.indexPut(id, algo, sg, int64(headerLen+off), int64(n))
		off += n
	}
	if int64(headerLen+off) != sg.size {
		// Torn tail: drop the unparseable suffix so a later append can
		// never concatenate into it.
		s.tornTails++
		if err := sg.f.Truncate(int64(headerLen + off)); err != nil {
			return err
		}
		sg.size = int64(headerLen + off)
	}
	return nil
}

// indexPut points the index at a freshly scanned or written record,
// marking any superseded record dead in its segment.
func (s *Store) indexPut(id uint64, algo uint8, sg *segment, off, n int64) {
	if old, ok := s.index[id]; ok {
		oldSeg, oldOff := unpack(old)
		if osg := s.segs[oldSeg]; osg != nil {
			s.markDead(osg, oldOff)
		} else if oldSeg == sg.id {
			s.markDead(sg, oldOff)
		}
	} else {
		s.perAlgo[algo]++
	}
	s.index[id] = pack(sg.id, off)
	sg.liveBytes += n
	sg.liveRecs++
	if n > s.maxRec {
		s.maxRec = n
	}
}

// markDead moves one record at off from live to dead accounting. The
// record length is re-read from the frame header; segments are only
// ever appended to, so the frame at a live offset is always intact.
func (s *Store) markDead(sg *segment, off int64) {
	var hdr [2]byte
	n := int64(recOverhead)
	if _, err := sg.f.ReadAt(hdr[:], off); err == nil {
		n += int64(binary.LittleEndian.Uint16(hdr[:]))
	}
	s.markDeadN(sg, n)
}

// markDeadN is markDead with the record length already in hand (the
// restore path just read the frame, so no extra pread is needed).
func (s *Store) markDeadN(sg *segment, n int64) {
	sg.liveBytes -= n
	sg.deadBytes += n
	sg.liveRecs--
	sg.deadRecs++
}

// rotateLocked seals the active segment and starts a new one.
func (s *Store) rotateLocked() error {
	id := s.nextSeg
	f, err := s.fs.Create(s.segPath(id))
	if err != nil {
		return err
	}
	sg := &segment{id: id, f: f}
	if err := s.writeHeader(sg); err != nil {
		f.Close()
		s.fs.Remove(s.segPath(id))
		return err
	}
	s.nextSeg++
	s.segs[id] = sg
	s.active = sg
	return nil
}

// appendRecord serializes one record into buf.
func appendRecord(buf []byte, r Record) []byte {
	start := len(buf)
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint16(hdr[0:2], uint16(len(r.State)))
	hdr[2] = r.Algo
	binary.LittleEndian.PutUint64(hdr[3:11], r.LinkID)
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.State...)
	crc := crc32IEEE(buf[start:])
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	return append(buf, tail[:]...)
}

// PutBatch group-commits a batch of encoded states: one serialization
// pass, one write syscall, then the index is updated. A link already in
// the tier is superseded (its old record becomes dead). Records' State
// slices are not retained.
func (s *Store) PutBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("coldstore: store is closed")
	}
	if err := s.putLocked(recs); err != nil {
		return err
	}
	s.spills += uint64(len(recs))
	s.maybeKickCompactLocked()
	return nil
}

func (s *Store) putLocked(recs []Record) error {
	for _, r := range recs {
		if len(r.State) > maxStateLen {
			return fmt.Errorf("coldstore: link %d state is %d bytes, beyond the %d-byte record bound", r.LinkID, len(r.State), maxStateLen)
		}
	}
	if s.active.size >= s.segmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	buf := s.batchBuf[:0]
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	s.batchBuf = buf[:0]
	sg := s.active
	if _, err := sg.f.WriteAt(buf, sg.size); err != nil {
		// A partial append is exactly the torn-tail shape recovery
		// handles; trim it now so the in-process store stays coherent.
		sg.f.Truncate(sg.size)
		return err
	}
	if s.cfg.Sync {
		if err := sg.f.Sync(); err != nil {
			return err
		}
	}
	off := sg.size
	sg.size += int64(len(buf))
	for _, r := range recs {
		n := int64(recOverhead + len(r.State))
		s.indexPut(r.LinkID, r.Algo, sg, off, n)
		off += n
	}
	return nil
}

// readRecord preads and validates the record for id. Returns the algo
// and a view of the state inside s.readBuf (valid until the next call;
// caller holds s.mu).
func (s *Store) readRecord(id uint64) (uint8, []byte, bool, error) {
	ref, ok := s.index[id]
	if !ok {
		return 0, nil, false, nil
	}
	segID, off := unpack(ref)
	sg := s.segs[segID]
	if sg == nil {
		return 0, nil, false, fmt.Errorf("coldstore: link %d indexed in missing segment %d", id, segID)
	}
	n := s.maxRec
	if rem := sg.size - off; n > rem {
		n = rem
	}
	if int64(cap(s.readBuf)) < n {
		s.readBuf = make([]byte, n)
	}
	buf := s.readBuf[:n]
	if _, err := sg.f.ReadAt(buf, off); err != nil {
		return 0, nil, false, err
	}
	if len(buf) < recOverhead {
		return 0, nil, false, fmt.Errorf("coldstore: link %d record truncated", id)
	}
	w := int(binary.LittleEndian.Uint16(buf[0:2]))
	if recOverhead+w > len(buf) {
		return 0, nil, false, fmt.Errorf("coldstore: link %d record overruns its segment", id)
	}
	rec := buf[:recOverhead+w]
	if got := binary.LittleEndian.Uint64(rec[3:11]); got != id {
		return 0, nil, false, fmt.Errorf("coldstore: index for link %d points at link %d", id, got)
	}
	if crc32IEEE(rec[:len(rec)-4]) != binary.LittleEndian.Uint32(rec[len(rec)-4:]) {
		return 0, nil, false, fmt.Errorf("coldstore: link %d record failed its CRC", id)
	}
	return rec[2], rec[recHeaderLen : recHeaderLen+w], true, nil
}

// Take restores one link: a single pread, CRC validation, and removal
// from the index (the caller owns the state again; the record becomes
// dead). The state is appended to dst. ok is false when the link is not
// in the tier.
func (s *Store) Take(id uint64, dst []byte) (algo uint8, state []byte, ok bool, err error) {
	t0 := time.Now()
	s.mu.Lock()
	a, view, ok, err := s.readRecord(id)
	if err != nil || !ok {
		s.mu.Unlock()
		return 0, nil, false, err
	}
	dst = append(dst, view...)
	segID, _ := unpack(s.index[id])
	delete(s.index, id)
	s.perAlgo[a]--
	s.markDeadN(s.segs[segID], int64(recOverhead+len(view)))
	s.restores++
	s.maybeKickCompactLocked()
	s.mu.Unlock()
	s.restoreLat.Observe(time.Since(t0))
	return a, dst, true, nil
}

// Peek reads a link's state without removing it (the link store's Peek
// surface). The state is appended to dst.
func (s *Store) Peek(id uint64, dst []byte) (algo uint8, state []byte, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, view, ok, err := s.readRecord(id)
	if err != nil || !ok {
		return 0, nil, false, err
	}
	return a, append(dst, view...), true, nil
}

// Len returns the number of links in the tier.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// kickCompact nudges the background compactor (nonblocking).
func (s *Store) kickCompact() {
	select {
	case s.compactCh <- struct{}{}:
	default:
	}
}

// maybeKickCompactLocked kicks the compactor if any sealed segment is
// past the dead-ratio threshold.
func (s *Store) maybeKickCompactLocked() {
	for _, sg := range s.segs {
		if sg != s.active && (sg.liveRecs == 0 || sg.deadRatio() >= s.compactRatio) {
			s.kickCompact()
			return
		}
	}
}

// compactLoop drains compaction kicks until Close.
func (s *Store) compactLoop() {
	defer s.done.Done()
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.compactCh:
			for {
				progressed, err := s.CompactOnce()
				if err != nil || !progressed {
					break
				}
			}
		}
	}
}

// CompactOnce rewrites (or, when fully dead, deletes) the sealed
// segment with the worst dead ratio at or past the threshold. Returns
// whether a segment was reclaimed. Exported for tests and for callers
// that want compaction on their own schedule.
func (s *Store) CompactOnce() (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, nil
	}
	var victim *segment
	for _, sg := range s.segs {
		if sg == s.active {
			continue
		}
		if sg.liveRecs > 0 && sg.deadRatio() < s.compactRatio {
			continue
		}
		if victim == nil || sg.deadRatio() > victim.deadRatio() {
			victim = sg
		}
	}
	if victim == nil {
		return false, nil
	}
	if victim.liveRecs > 0 {
		// Re-append the live records through the ordinary put path. The
		// whole segment is read once; records whose index entry still
		// points into it are live, everything else is garbage to drop.
		data := make([]byte, victim.size-headerLen)
		if _, err := victim.f.ReadAt(data, headerLen); err != nil {
			return false, err
		}
		var live []Record
		var liveOffs []int64
		off := int64(headerLen)
		for rel := 0; rel < len(data); {
			rec := data[rel:]
			w := int(binary.LittleEndian.Uint16(rec[0:2]))
			n := recOverhead + w
			id := binary.LittleEndian.Uint64(rec[3:11])
			if ref, ok := s.index[id]; ok {
				if segID, recOff := unpack(ref); segID == victim.id && recOff == off {
					live = append(live, Record{LinkID: id, Algo: rec[2], State: rec[recHeaderLen : recHeaderLen+w]})
					liveOffs = append(liveOffs, off)
					// Drop the index entry so putLocked re-adding it does
					// not mark the victim's copy dead (the whole segment
					// is deleted below) or double-count the link's algo.
					delete(s.index, id)
					s.perAlgo[rec[2]]--
				}
			}
			rel += n
			off += int64(n)
		}
		if err := s.putLocked(live); err != nil {
			// putLocked made no index changes on error; re-point the live
			// records at the victim so no state is lost. The segment
			// survives until a later compaction retries.
			for i, r := range live {
				s.index[r.LinkID] = pack(victim.id, liveOffs[i])
				s.perAlgo[r.Algo]++
			}
			return false, err
		}
	}
	victim.f.Close()
	if err := s.fs.Remove(s.segPath(victim.id)); err != nil {
		return false, err
	}
	delete(s.segs, victim.id)
	s.compactions++
	return true, nil
}

// LatencySnapshot returns the merged restore-latency histogram.
func (s *Store) LatencySnapshot() stats.Histogram {
	return s.restoreLat.Snapshot()
}

// Stats is a point-in-time view of the tier.
type Stats struct {
	// Links is the number of links resident in the tier; Segments the
	// number of on-disk log files.
	Links    int `json:"links"`
	Segments int `json:"segments"`
	// LiveBytes/DeadBytes split the segment bytes by whether the index
	// still references them; DiskBytes is their sum plus headers.
	LiveBytes int64 `json:"live_bytes"`
	DeadBytes int64 `json:"dead_bytes"`
	DiskBytes int64 `json:"disk_bytes"`
	// Spills and Restores count links written to and taken back from
	// the tier (cumulative, this process).
	Spills   uint64 `json:"spilled_links_total"`
	Restores uint64 `json:"restored_links_total"`
	// Compactions counts segments reclaimed; TornTails counts truncated
	// partial tails found at recovery.
	Compactions uint64 `json:"compactions_total"`
	TornTails   uint64 `json:"torn_tails_total"`
	// RestoreLatency digests the disk-restore latency histogram;
	// RestoreHist is the full merged histogram behind it (for the
	// Prometheus renderer — omitted from JSON).
	RestoreLatency obs.LatencySummary `json:"restore_latency"`
	RestoreHist    stats.Histogram    `json:"-"`
	// AlgoLinks counts resident links per algorithm ID.
	AlgoLinks map[uint8]int `json:"algo_links,omitempty"`
}

// Stats snapshots the tier's counters.
func (s *Store) Stats() Stats {
	hist := s.restoreLat.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Links:       len(s.index),
		Segments:    len(s.segs),
		Spills:      s.spills,
		Restores:    s.restores,
		Compactions: s.compactions,
		TornTails:   s.tornTails,
	}
	for _, sg := range s.segs {
		out.LiveBytes += sg.liveBytes
		out.DeadBytes += sg.deadBytes
		out.DiskBytes += sg.size
	}
	for a, n := range s.perAlgo {
		if n != 0 {
			if out.AlgoLinks == nil {
				out.AlgoLinks = make(map[uint8]int)
			}
			out.AlgoLinks[uint8(a)] = int(n)
		}
	}
	out.RestoreLatency = obs.Summarize(&hist)
	out.RestoreHist = hist
	return out
}

func (s *Store) closeFiles() {
	for _, sg := range s.segs {
		sg.f.Close()
	}
}

// Close stops the compactor and closes every segment file. The store is
// unusable afterwards; reopen with Open.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	s.done.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, sg := range s.segs {
		if s.cfg.Sync {
			if e := sg.f.Sync(); e != nil && err == nil {
				err = e
			}
		}
		if e := sg.f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}
