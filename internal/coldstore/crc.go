package coldstore

import "softrate/internal/bitutil"

// crc32IEEE frames every record with the repo's own reflected IEEE
// CRC-32 (the same table the PHY uses for the 802.11 FCS) — one CRC
// implementation across the codebase, and no hash/crc32 import.
func crc32IEEE(b []byte) uint32 { return bitutil.CRC32(b) }
