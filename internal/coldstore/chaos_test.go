package coldstore

import (
	"bytes"
	"testing"

	"softrate/internal/faultfs"
)

// TestCompactOnceVictimReadFault: a read fault while rewriting a
// compaction victim must fail the compaction cleanly — (false, err),
// index untouched, every live record (including the victim's) still
// readable with its latest state — and a later retry on a healed disk
// must reclaim the segment.
func TestCompactOnceVictimReadFault(t *testing.T) {
	inj := faultfs.Wrap(faultfs.OS{}, 13, faultfs.Rates{ReadErr: 1})
	inj.Arm(false)
	// The compact threshold is sized so the armed supersedes below cross
	// it. While reads fault, markDead cannot re-read a superseded
	// record's width and accounts only the frame overhead — so the dead
	// ratio of the 13-record sealed segment (64-byte states at 1 KiB
	// segments) grows by recOverhead/(13*(recOverhead+64)) per
	// supersede, not by a full record.
	const sealedRecs, stateW, superseded = 13, 64, 6
	ratio := superseded * float64(recOverhead) / (sealedRecs * float64(recOverhead+stateW))
	s := openT(t, t.TempDir(), Config{SegmentBytes: 1 << 10, CompactRatio: ratio * 0.99, FS: inj})

	// Fill past one rotation with unique ids: no dead bytes anywhere, so
	// nothing is compactable and the background compactor stays idle
	// while the injector is disarmed.
	const n = 24
	for id := uint64(1); id <= n; id++ {
		putOne(t, s, id, 1, stateFor(id, stateW))
	}
	if st := s.Stats(); st.Segments < 2 {
		t.Fatalf("need a sealed segment; got %d segments", st.Segments)
	}

	// Arm, then supersede ids from the sealed segment: the dead ratio
	// crosses the threshold only now, so every compaction attempt —
	// background or explicit — runs against the faulty disk.
	inj.Arm(true)
	super := make(map[uint64][]byte)
	for id := uint64(1); id <= superseded; id++ {
		state := stateFor(id+1000, stateW)
		putOne(t, s, id, 1, state)
		super[id] = state
	}
	progressed, err := s.CompactOnce()
	if progressed || err == nil {
		t.Fatalf("CompactOnce over a faulty disk: progressed=%v err=%v, want (false, error)", progressed, err)
	}
	if !faultfs.IsInjected(err) {
		t.Fatalf("CompactOnce error %v does not wrap the injected fault", err)
	}

	// Heal: no state was lost and the index still points at the latest
	// copy of every record.
	inj.Arm(false)
	check := func(when string) {
		t.Helper()
		for id := uint64(1); id <= n; id++ {
			want := stateFor(id, stateW)
			if w, ok := super[id]; ok {
				want = w
			}
			_, state, ok, err := s.Peek(id, nil)
			if err != nil || !ok {
				t.Fatalf("Peek(%d) %s: ok=%v err=%v", id, when, ok, err)
			}
			if !bytes.Equal(state, want) {
				t.Fatalf("link %d serves stale state %s", id, when)
			}
		}
	}
	check("after failed compaction")
	progressed, err = s.CompactOnce()
	if err != nil || !progressed {
		t.Fatalf("CompactOnce retry on a healed disk: progressed=%v err=%v", progressed, err)
	}
	check("after successful compaction")
}
