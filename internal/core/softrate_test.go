package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softrate/internal/rate"
)

func TestFrameARQThresholdsMatchPaperExample(t *testing.T) {
	// §3.3: "For a packet size of 10000 bits, that BER would be of the
	// order 1e-5" (frame loss rate 1/3), and the optimal thresholds for
	// 18 Mbps would be (1e-7, 1e-5).
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	s := New(cfg)
	alpha, beta := s.Thresholds(3) // QPSK 3/4 = 18 Mbps
	if beta < 1e-5/3 || beta > 1e-4 {
		t.Errorf("beta = %v, want order 1e-5", beta)
	}
	if alpha < 1e-7/3 || alpha > 1e-6 {
		t.Errorf("alpha = %v, want order 1e-7", alpha)
	}
	if math.Abs(alpha*cfg.UpMargin-beta) > 1e-15 {
		t.Errorf("alpha must be beta/UpMargin")
	}
}

func TestHybridARQShiftsThresholdsUp(t *testing.T) {
	// §3.3: a smarter ARQ tolerates BER up to ~1e-3 for 10^4-bit frames.
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	cfg.Recovery = HybridARQ{}
	s := New(cfg)
	_, beta := s.Thresholds(3)
	if beta != 1e-3 {
		t.Errorf("H-ARQ beta = %v, want 1e-3", beta)
	}
	frame := New(DefaultConfig())
	_, betaFrame := frame.Thresholds(3)
	if beta <= betaFrame*10 {
		t.Errorf("H-ARQ thresholds (%v) must sit well above frame-ARQ (%v)", beta, betaFrame)
	}
}

func TestStartsAtLowestRate(t *testing.T) {
	s := New(DefaultConfig())
	if s.CurrentRate().Mbps != 6 {
		t.Fatalf("start rate %v, want 6 Mbps", s.CurrentRate())
	}
}

func TestRateHoldsInsideOptimalBand(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 3
	alpha, beta := s.Thresholds(3)
	mid := math.Sqrt(alpha * beta)
	s.OnFeedback(Feedback{RateIndex: 3, BER: mid})
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate moved to %d on in-band BER", s.CurrentIndex())
	}
}

func TestRateStepsUpOnLowBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 2
	alpha, _ := s.Thresholds(2)
	s.OnFeedback(Feedback{RateIndex: 2, BER: alpha / 2})
	if s.CurrentIndex() != 3 {
		t.Fatalf("index %d after slightly-low BER, want 3", s.CurrentIndex())
	}
}

func TestRateJumpsTwoUpOnVeryLowBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 2
	_, beta := s.Thresholds(2)
	// BER below beta/UpMargin^2 justifies a two-level jump (e.g. 1e-9
	// against an 1e-5 threshold, the paper's example).
	s.OnFeedback(Feedback{RateIndex: 2, BER: beta / (100 * 100 * 10)})
	if s.CurrentIndex() != 4 {
		t.Fatalf("index %d after very low BER, want 4", s.CurrentIndex())
	}
}

func TestRateStepsDownOnHighBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 3
	_, beta := s.Thresholds(3)
	s.OnFeedback(Feedback{RateIndex: 3, BER: beta * 5})
	if s.CurrentIndex() != 2 {
		t.Fatalf("index %d after high BER, want 2", s.CurrentIndex())
	}
}

func TestRateJumpsTwoDownOnVeryHighBER(t *testing.T) {
	// The paper's example: threshold 1e-5, observed BER above 1e-2 ⇒ jump
	// two rates down.
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	s := New(cfg)
	s.cur = 3
	s.OnFeedback(Feedback{RateIndex: 3, BER: 0.05})
	if s.CurrentIndex() != 1 {
		t.Fatalf("index %d after BER 0.05, want 1", s.CurrentIndex())
	}
}

func TestJumpsClampAtTableEdges(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 0
	s.OnFeedback(Feedback{RateIndex: 0, BER: 0.4})
	if s.CurrentIndex() != 0 {
		t.Fatal("fell below the lowest rate")
	}
	s.cur = len(s.cfg.Rates) - 1
	s.OnFeedback(Feedback{RateIndex: s.cur, BER: 0})
	if s.CurrentIndex() != len(s.cfg.Rates)-1 {
		t.Fatal("climbed past the highest rate")
	}
}

func TestMaxJumpBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxJump = 1
	s := New(cfg)
	s.cur = 4
	s.OnFeedback(Feedback{RateIndex: 4, BER: 0.4})
	if s.CurrentIndex() != 3 {
		t.Fatalf("MaxJump=1 moved %d levels", 4-s.CurrentIndex())
	}
}

func TestSilentLossRule(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 4
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("rate dropped before the third silent loss")
	}
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate %d after 3 silent losses, want 3", s.CurrentIndex())
	}
	// The run counter must reset after the drop.
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatal("counter did not reset after stepping down")
	}
}

func TestFeedbackResetsSilentRun(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnFeedback(Feedback{RateIndex: 4, BER: math.Sqrt(alpha * beta)})
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("silent-loss run not reset by feedback")
	}
}

func TestPostambleFeedbackKeepsRate(t *testing.T) {
	// Postamble-only receptions indicate collisions; the rate must hold
	// and the silent-run counter reset.
	s := New(DefaultConfig())
	s.cur = 4
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnPostambleFeedback()
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("postamble feedback did not reset the silent-loss run")
	}
}

func TestCollisionFeedbackUsesInterferenceFreeBER(t *testing.T) {
	// A collision-flagged feedback carrying a clean interference-free BER
	// must not lower the rate — this is the core robustness property
	// versus frame-level schemes (§6.4).
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	for i := 0; i < 20; i++ {
		s.OnFeedback(Feedback{RateIndex: 4, BER: math.Sqrt(alpha * beta), Collision: true})
	}
	if s.CurrentIndex() != 4 {
		t.Fatalf("rate fell to %d under pure collision losses", s.CurrentIndex())
	}
}

func TestFeedbackForStaleRateAdjustsRelativeToIt(t *testing.T) {
	// Feedback is interpreted relative to the rate the frame was actually
	// sent at, not the sender's current rate.
	s := New(DefaultConfig())
	s.cur = 5
	_, beta2 := s.Thresholds(2)
	s.OnFeedback(Feedback{RateIndex: 2, BER: beta2 * 2}) // rate 2 too fast
	if s.CurrentIndex() != 1 {
		t.Fatalf("index %d, want 1 (one below the frame's rate)", s.CurrentIndex())
	}
}

func TestConvergenceFromConstantChannelBER(t *testing.T) {
	// Simulate a channel with a fixed BER-vs-rate profile obeying the
	// factor-10 heuristic; from any start, the algorithm must converge to
	// the optimal rate and stay there.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(DefaultConfig())
		// Channel: BER at rate i = base * 10^i with random base.
		base := math.Pow(10, -12+6*rng.Float64()) // 1e-12 .. 1e-6
		berAt := func(i int) float64 {
			b := base * math.Pow(10, float64(i)*1.5)
			if b > 0.5 {
				b = 0.5
			}
			return b
		}
		// Optimal rate: the highest one whose BER is below its beta.
		opt := 0
		for i := range s.cfg.Rates {
			if berAt(i) < s.bands[i].beta {
				opt = i
			}
		}
		s.cur = rng.Intn(len(s.cfg.Rates))
		for step := 0; step < 20; step++ {
			s.OnFeedback(Feedback{RateIndex: s.cur, BER: berAt(s.cur)})
		}
		// Must sit at opt or at most one step below (alpha margins are
		// deliberately conservative).
		return s.CurrentIndex() == opt || s.CurrentIndex() == opt-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBER(t *testing.T) {
	cases := []struct {
		name     string
		ber      float64
		from, to int
		want     float64
	}{
		{"up two steps", 1e-6, 2, 4, 1e-4},
		{"down two steps", 1e-4, 3, 1, 1e-6},
		{"same index is identity", 3e-5, 3, 3, 3e-5},
		{"caps at 0.5", 0.1, 0, 5, 0.5},
		{"BER exactly 1 caps at 0.5", 1.0, 2, 2, 0.5},
		{"BER above 1 caps at 0.5", 7.0, 2, 3, 0.5},
		{"BER above 0.5 clamps before scaling down", 3.0, 5, 0, 0.5 * 1e-5},
		{"BER zero stays zero", 0, 0, 5, 0},
		{"BER zero stepping down stays zero", 0, 5, 0, 0},
		{"negative BER clamps to zero", -1e-3, 1, 4, 0},
		{"indices far past the table still finite", 1e-9, 0, 40, 0.5},
		{"indices far below the table clamp to zero-ish", 1e-9, 40, 0, 1e-49},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := PredictBER(c.ber, c.from, c.to)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("PredictBER(%v, %d, %d) = %v, want finite", c.ber, c.from, c.to, got)
			}
			if diff := math.Abs(got - c.want); diff > c.want*1e-9+1e-60 {
				t.Fatalf("PredictBER(%v, %d, %d) = %v, want %v", c.ber, c.from, c.to, got, c.want)
			}
		})
	}
}

func TestCollisionFeedbackPreservesSilentRun(t *testing.T) {
	// §3.3 interplay: collision-tagged feedback must not reset the
	// silent-loss counter. Two silent losses, a collision verdict, then a
	// third silent loss must still complete the run of three and drop the
	// rate — otherwise sporadic interference could mask a weak link forever.
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	inBand := math.Sqrt(alpha * beta)
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnFeedback(Feedback{RateIndex: 4, BER: inBand, Collision: true})
	if s.CurrentIndex() != 4 {
		t.Fatalf("in-band collision feedback moved the rate to %d", s.CurrentIndex())
	}
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate %d after silent,silent,collision,silent — want 3 (run not reset)", s.CurrentIndex())
	}
}

func TestCleanFeedbackStillResetsSilentRunAmongCollisions(t *testing.T) {
	// The counterpart: one clean reception is positive evidence the signal
	// is fine, and clears the run even when collisions surround it.
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	inBand := math.Sqrt(alpha * beta)
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnFeedback(Feedback{RateIndex: 4, BER: inBand, Collision: true})
	s.OnFeedback(Feedback{RateIndex: 4, BER: inBand}) // clean: resets
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatalf("rate %d, want 4: clean feedback must reset the run", s.CurrentIndex())
	}
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate %d, want 3 after a fresh run of three", s.CurrentIndex())
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 4
	s.OnSilentLoss()
	s.OnSilentLoss()
	st := s.Snapshot()
	if st.RateIndex != 4 || st.SilentRun != 2 {
		t.Fatalf("snapshot = %+v, want {4 2}", st)
	}

	// Restoring into a fresh controller must reproduce behaviour exactly:
	// the third silent loss completes the run.
	r := New(DefaultConfig())
	r.Restore(st)
	if r.CurrentIndex() != 4 {
		t.Fatalf("restored index %d, want 4", r.CurrentIndex())
	}
	r.OnSilentLoss()
	if r.CurrentIndex() != 3 {
		t.Fatalf("restored controller lost the silent run: index %d, want 3", r.CurrentIndex())
	}
}

func TestRestoreClampsOutOfRangeState(t *testing.T) {
	s := New(DefaultConfig())
	s.Restore(State{RateIndex: 99, SilentRun: 99})
	if s.CurrentIndex() != len(rate.Evaluation())-1 {
		t.Fatalf("rate index not clamped: %d", s.CurrentIndex())
	}
	if got := s.Snapshot().SilentRun; int(got) >= s.cfg.SilentLossRun {
		t.Fatalf("silent run not clamped below the threshold: %d", got)
	}
	s.Restore(State{RateIndex: -5, SilentRun: -5})
	if s.CurrentIndex() != 0 || s.Snapshot().SilentRun != 0 {
		t.Fatalf("negative state not clamped: %+v", s.Snapshot())
	}
}

func TestApplyDispatchMatchesMethods(t *testing.T) {
	// Apply(kind, ...) must behave identically to calling the individual
	// methods — it is the decision service's single entry point.
	type ev struct {
		kind FeedbackKind
		ri   int
		ber  float64
	}
	alphaAt := func(s *SoftRate, i int) float64 { a, _ := s.Thresholds(i); return a }
	seq := []ev{
		{KindBER, 0, 0},
		{KindBER, 1, 0},
		{KindSilentLoss, 0, 0},
		{KindCollision, 3, 0.2},
		{KindSilentLoss, 0, 0},
		{KindSilentLoss, 0, 0},
		{KindPostamble, 0, 0},
		{KindBER, 2, 1e-9},
	}
	a, b := New(DefaultConfig()), New(DefaultConfig())
	for i, e := range seq {
		ber := e.ber
		if e.kind == KindBER && ber == 0 {
			ber = alphaAt(a, e.ri) / 2 // climb
		}
		got := a.Apply(e.kind, e.ri, ber)
		switch e.kind {
		case KindBER:
			b.OnFeedback(Feedback{RateIndex: e.ri, BER: ber})
		case KindCollision:
			b.OnFeedback(Feedback{RateIndex: e.ri, BER: ber, Collision: true})
		case KindSilentLoss:
			b.OnSilentLoss()
		case KindPostamble:
			b.OnPostambleFeedback()
		}
		if got != b.CurrentIndex() || a.Snapshot() != b.Snapshot() {
			t.Fatalf("step %d (%v): Apply=%d state=%+v, methods state=%+v",
				i, e.kind, got, a.Snapshot(), b.Snapshot())
		}
	}
	// Unknown kinds degrade to silent losses.
	c := New(DefaultConfig())
	c.cur = 3
	for i := 0; i < 3; i++ {
		c.Apply(FeedbackKind(200), 0, 0)
	}
	if c.CurrentIndex() != 2 {
		t.Fatalf("unknown kind not treated as silent loss: index %d", c.CurrentIndex())
	}
}

func TestPrecomputedJumpThresholdsMatchFormula(t *testing.T) {
	// The hot path reads precomputed tables; they must equal the formulas
	// they replaced bit-for-bit so decisions are unchanged.
	cfg := DefaultConfig()
	cfg.MaxJump = 4
	s := New(cfg)
	stride := cfg.MaxJump - 1
	for i := range s.cfg.Rates {
		for n := 1; n < cfg.MaxJump; n++ {
			wantDown := s.bands[i].beta * math.Pow(cfg.DownMargin, float64(n))
			wantUp := s.bands[i].beta / math.Pow(cfg.UpMargin, float64(n+1))
			if s.downJump[i*stride+n-1] != wantDown {
				t.Fatalf("downJump[%d][%d] = %v, want %v", i, n-1, s.downJump[i*stride+n-1], wantDown)
			}
			if s.upJump[i*stride+n-1] != wantUp {
				t.Fatalf("upJump[%d][%d] = %v, want %v", i, n-1, s.upJump[i*stride+n-1], wantUp)
			}
		}
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	s := New(Config{})
	if len(s.cfg.Rates) != len(rate.Evaluation()) {
		t.Fatal("default rates not applied")
	}
	if s.cfg.MaxJump != 2 || s.cfg.SilentLossRun != 3 {
		t.Fatal("default jump/silent-loss parameters not applied")
	}
	if s.cfg.UpMargin != 100 || s.cfg.DownMargin != 1000 {
		t.Fatal("default margins not applied")
	}
}

func TestThresholdsMonotoneAcrossFrameSize(t *testing.T) {
	// Bigger frames are more fragile: beta must decrease with frame size.
	small := New(Config{FrameBits: 1000})
	big := New(Config{FrameBits: 100000})
	_, bs := small.Thresholds(3)
	_, bb := big.Thresholds(3)
	if bb >= bs {
		t.Fatalf("beta(100k bits)=%v not below beta(1k bits)=%v", bb, bs)
	}
}
