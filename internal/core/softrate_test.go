package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softrate/internal/rate"
)

func TestFrameARQThresholdsMatchPaperExample(t *testing.T) {
	// §3.3: "For a packet size of 10000 bits, that BER would be of the
	// order 1e-5" (frame loss rate 1/3), and the optimal thresholds for
	// 18 Mbps would be (1e-7, 1e-5).
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	s := New(cfg)
	alpha, beta := s.Thresholds(3) // QPSK 3/4 = 18 Mbps
	if beta < 1e-5/3 || beta > 1e-4 {
		t.Errorf("beta = %v, want order 1e-5", beta)
	}
	if alpha < 1e-7/3 || alpha > 1e-6 {
		t.Errorf("alpha = %v, want order 1e-7", alpha)
	}
	if math.Abs(alpha*cfg.UpMargin-beta) > 1e-15 {
		t.Errorf("alpha must be beta/UpMargin")
	}
}

func TestHybridARQShiftsThresholdsUp(t *testing.T) {
	// §3.3: a smarter ARQ tolerates BER up to ~1e-3 for 10^4-bit frames.
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	cfg.Recovery = HybridARQ{}
	s := New(cfg)
	_, beta := s.Thresholds(3)
	if beta != 1e-3 {
		t.Errorf("H-ARQ beta = %v, want 1e-3", beta)
	}
	frame := New(DefaultConfig())
	_, betaFrame := frame.Thresholds(3)
	if beta <= betaFrame*10 {
		t.Errorf("H-ARQ thresholds (%v) must sit well above frame-ARQ (%v)", beta, betaFrame)
	}
}

func TestStartsAtLowestRate(t *testing.T) {
	s := New(DefaultConfig())
	if s.CurrentRate().Mbps != 6 {
		t.Fatalf("start rate %v, want 6 Mbps", s.CurrentRate())
	}
}

func TestRateHoldsInsideOptimalBand(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 3
	alpha, beta := s.Thresholds(3)
	mid := math.Sqrt(alpha * beta)
	s.OnFeedback(Feedback{RateIndex: 3, BER: mid})
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate moved to %d on in-band BER", s.CurrentIndex())
	}
}

func TestRateStepsUpOnLowBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 2
	alpha, _ := s.Thresholds(2)
	s.OnFeedback(Feedback{RateIndex: 2, BER: alpha / 2})
	if s.CurrentIndex() != 3 {
		t.Fatalf("index %d after slightly-low BER, want 3", s.CurrentIndex())
	}
}

func TestRateJumpsTwoUpOnVeryLowBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 2
	_, beta := s.Thresholds(2)
	// BER below beta/UpMargin^2 justifies a two-level jump (e.g. 1e-9
	// against an 1e-5 threshold, the paper's example).
	s.OnFeedback(Feedback{RateIndex: 2, BER: beta / (100 * 100 * 10)})
	if s.CurrentIndex() != 4 {
		t.Fatalf("index %d after very low BER, want 4", s.CurrentIndex())
	}
}

func TestRateStepsDownOnHighBER(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 3
	_, beta := s.Thresholds(3)
	s.OnFeedback(Feedback{RateIndex: 3, BER: beta * 5})
	if s.CurrentIndex() != 2 {
		t.Fatalf("index %d after high BER, want 2", s.CurrentIndex())
	}
}

func TestRateJumpsTwoDownOnVeryHighBER(t *testing.T) {
	// The paper's example: threshold 1e-5, observed BER above 1e-2 ⇒ jump
	// two rates down.
	cfg := DefaultConfig()
	cfg.FrameBits = 10000
	s := New(cfg)
	s.cur = 3
	s.OnFeedback(Feedback{RateIndex: 3, BER: 0.05})
	if s.CurrentIndex() != 1 {
		t.Fatalf("index %d after BER 0.05, want 1", s.CurrentIndex())
	}
}

func TestJumpsClampAtTableEdges(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 0
	s.OnFeedback(Feedback{RateIndex: 0, BER: 0.4})
	if s.CurrentIndex() != 0 {
		t.Fatal("fell below the lowest rate")
	}
	s.cur = len(s.cfg.Rates) - 1
	s.OnFeedback(Feedback{RateIndex: s.cur, BER: 0})
	if s.CurrentIndex() != len(s.cfg.Rates)-1 {
		t.Fatal("climbed past the highest rate")
	}
}

func TestMaxJumpBound(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxJump = 1
	s := New(cfg)
	s.cur = 4
	s.OnFeedback(Feedback{RateIndex: 4, BER: 0.4})
	if s.CurrentIndex() != 3 {
		t.Fatalf("MaxJump=1 moved %d levels", 4-s.CurrentIndex())
	}
}

func TestSilentLossRule(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 4
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("rate dropped before the third silent loss")
	}
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatalf("rate %d after 3 silent losses, want 3", s.CurrentIndex())
	}
	// The run counter must reset after the drop.
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 3 {
		t.Fatal("counter did not reset after stepping down")
	}
}

func TestFeedbackResetsSilentRun(t *testing.T) {
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnFeedback(Feedback{RateIndex: 4, BER: math.Sqrt(alpha * beta)})
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("silent-loss run not reset by feedback")
	}
}

func TestPostambleFeedbackKeepsRate(t *testing.T) {
	// Postamble-only receptions indicate collisions; the rate must hold
	// and the silent-run counter reset.
	s := New(DefaultConfig())
	s.cur = 4
	s.OnSilentLoss()
	s.OnSilentLoss()
	s.OnPostambleFeedback()
	s.OnSilentLoss()
	s.OnSilentLoss()
	if s.CurrentIndex() != 4 {
		t.Fatal("postamble feedback did not reset the silent-loss run")
	}
}

func TestCollisionFeedbackUsesInterferenceFreeBER(t *testing.T) {
	// A collision-flagged feedback carrying a clean interference-free BER
	// must not lower the rate — this is the core robustness property
	// versus frame-level schemes (§6.4).
	s := New(DefaultConfig())
	s.cur = 4
	alpha, beta := s.Thresholds(4)
	for i := 0; i < 20; i++ {
		s.OnFeedback(Feedback{RateIndex: 4, BER: math.Sqrt(alpha * beta), Collision: true})
	}
	if s.CurrentIndex() != 4 {
		t.Fatalf("rate fell to %d under pure collision losses", s.CurrentIndex())
	}
}

func TestFeedbackForStaleRateAdjustsRelativeToIt(t *testing.T) {
	// Feedback is interpreted relative to the rate the frame was actually
	// sent at, not the sender's current rate.
	s := New(DefaultConfig())
	s.cur = 5
	_, beta2 := s.Thresholds(2)
	s.OnFeedback(Feedback{RateIndex: 2, BER: beta2 * 2}) // rate 2 too fast
	if s.CurrentIndex() != 1 {
		t.Fatalf("index %d, want 1 (one below the frame's rate)", s.CurrentIndex())
	}
}

func TestConvergenceFromConstantChannelBER(t *testing.T) {
	// Simulate a channel with a fixed BER-vs-rate profile obeying the
	// factor-10 heuristic; from any start, the algorithm must converge to
	// the optimal rate and stay there.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(DefaultConfig())
		// Channel: BER at rate i = base * 10^i with random base.
		base := math.Pow(10, -12+6*rng.Float64()) // 1e-12 .. 1e-6
		berAt := func(i int) float64 {
			b := base * math.Pow(10, float64(i)*1.5)
			if b > 0.5 {
				b = 0.5
			}
			return b
		}
		// Optimal rate: the highest one whose BER is below its beta.
		opt := 0
		for i := range s.cfg.Rates {
			if berAt(i) < s.beta[i] {
				opt = i
			}
		}
		s.cur = rng.Intn(len(s.cfg.Rates))
		for step := 0; step < 20; step++ {
			s.OnFeedback(Feedback{RateIndex: s.cur, BER: berAt(s.cur)})
		}
		// Must sit at opt or at most one step below (alpha margins are
		// deliberately conservative).
		return s.CurrentIndex() == opt || s.CurrentIndex() == opt-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictBER(t *testing.T) {
	if got := PredictBER(1e-6, 2, 4); math.Abs(got-1e-4) > 1e-18 {
		t.Fatalf("PredictBER up 2 = %v, want 1e-4", got)
	}
	if got := PredictBER(1e-4, 3, 1); math.Abs(got-1e-6) > 1e-18 {
		t.Fatalf("PredictBER down 2 = %v, want 1e-6", got)
	}
	if got := PredictBER(0.1, 0, 5); got != 0.5 {
		t.Fatalf("PredictBER must cap at 0.5, got %v", got)
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	s := New(Config{})
	if len(s.cfg.Rates) != len(rate.Evaluation()) {
		t.Fatal("default rates not applied")
	}
	if s.cfg.MaxJump != 2 || s.cfg.SilentLossRun != 3 {
		t.Fatal("default jump/silent-loss parameters not applied")
	}
	if s.cfg.UpMargin != 100 || s.cfg.DownMargin != 1000 {
		t.Fatal("default margins not applied")
	}
}

func TestThresholdsMonotoneAcrossFrameSize(t *testing.T) {
	// Bigger frames are more fragile: beta must decrease with frame size.
	small := New(Config{FrameBits: 1000})
	big := New(Config{FrameBits: 100000})
	_, bs := small.Thresholds(3)
	_, bb := big.Thresholds(3)
	if bb >= bs {
		t.Fatalf("beta(100k bits)=%v not below beta(1k bits)=%v", bb, bs)
	}
}
