// Package core implements the SoftRate bit rate adaptation algorithm of
// §3.3 — the paper's primary contribution. A SoftRate sender receives one
// interference-free BER measurement per transmitted frame (computed by the
// receiver from SoftPHY hints and echoed in the link-layer feedback) and
// steers the transmit bit rate toward the one that minimizes air time.
//
// The algorithm rests on three mechanisms:
//
//  1. A BER prediction heuristic: at a fixed SNR the BER is monotonically
//     increasing in bit rate, and within the usable range (< 1e-2) each
//     step up in rate costs at least a factor of 10 in BER.
//  2. Per-rate optimal threshold ranges (α_i, β_i): when the BER at rate
//     R_i lies inside (α_i, β_i), R_i is the throughput-optimal rate. The
//     thresholds depend on the link layer's error recovery scheme, which
//     is abstracted behind the ErrorRecovery interface — this is the
//     modularity argument of §3.3 (rate adaptation decoupled from error
//     recovery).
//  3. A selection rule that moves the rate in the direction of optimum,
//     jumping up to MaxJump levels at a time when the BER is orders of
//     magnitude outside the optimal band.
//
// Silent losses (no feedback at all) are handled per §3.2: a run of
// SilentLossRun consecutive silent losses is taken as evidence of a weak
// signal (collisions essentially never produce runs of 3+, Figure 4) and
// the sender steps the rate down.
package core

import (
	"math"

	"softrate/internal/rate"
)

// ErrorRecovery abstracts the link layer's error recovery scheme for
// threshold computation. UpperBER returns β_i: the channel BER at rate r
// above which dropping to the next lower rate wins.
type ErrorRecovery interface {
	UpperBER(r rate.Rate, frameBits int) float64
}

// FrameARQ models 802.11-style whole-frame retransmission. With
// frame-level ARQ the throughput at rate R_i beats R_{i-1} until the frame
// loss rate reaches roughly the rate step ratio; following the paper's
// worked example (§3.3), the break-even frame loss rate is 1/3 (an 18→12
// Mbps step), giving β = -ln(1 - 1/3)/L for L-bit frames — order 1e-5 for
// 10^4-bit frames, exactly the paper's number.
type FrameARQ struct {
	// LossTolerance is the break-even frame loss rate (default 1/3).
	LossTolerance float64
}

// UpperBER implements ErrorRecovery.
func (f FrameARQ) UpperBER(_ rate.Rate, frameBits int) float64 {
	tol := f.LossTolerance
	if tol <= 0 {
		tol = 1.0 / 3
	}
	if frameBits <= 0 {
		frameBits = 10000
	}
	return -math.Log(1-tol) / float64(frameBits)
}

// HybridARQ models a smarter recovery scheme that retransmits only a small
// number of parity bits on error (incremental redundancy / PPR-style). A
// few bit errors are cheap to repair, so a rate stays profitable up to a
// much higher BER; the paper's example sets β at 1e-3 for 10^4-bit frames,
// i.e. about bit-errors-per-frame ≈ 10 being the break-even point.
type HybridARQ struct {
	// TolerableErrorsPerFrame is the number of bit errors per frame at
	// which the retransmission overhead cancels the rate gain
	// (default 10).
	TolerableErrorsPerFrame float64
}

// UpperBER implements ErrorRecovery.
func (h HybridARQ) UpperBER(_ rate.Rate, frameBits int) float64 {
	tol := h.TolerableErrorsPerFrame
	if tol <= 0 {
		tol = 10
	}
	if frameBits <= 0 {
		frameBits = 10000
	}
	return tol / float64(frameBits)
}

// Config parameterizes the SoftRate algorithm.
type Config struct {
	// Rates is the available rate set in increasing order (default: the
	// six-rate evaluation subset).
	Rates []rate.Rate
	// FrameBits is the nominal frame size used for threshold computation.
	FrameBits int
	// Recovery selects the error recovery model (default FrameARQ).
	Recovery ErrorRecovery
	// UpMargin is the per-level safety factor between β_i and the
	// increase threshold: α_i = β_i / UpMargin. The default 100 encodes
	// the paper's worked example (β=1e-5 ⇒ α=1e-7) and covers rate steps
	// that cost up to two orders of magnitude in BER.
	UpMargin float64
	// DownMargin is the per-extra-level factor for multi-level down
	// jumps: jump n levels down when BER > β_i · DownMargin^(n-1). The
	// default 1000 encodes the example "BER above 1e-2 ⇒ jump two rates
	// below an 1e-5 threshold".
	DownMargin float64
	// MaxJump bounds the levels moved per decision (the implementation in
	// the paper does up to two).
	MaxJump int
	// SilentLossRun is the number of consecutive silent losses taken to
	// mean a weak signal (Figure 4 analysis ⇒ 3).
	SilentLossRun int
}

// DefaultConfig returns the configuration matching the paper's
// implementation: six evaluation rates, 1400-byte frames, frame-level ARQ,
// two-level jumps, three-silent-loss rule.
func DefaultConfig() Config {
	return Config{
		Rates:         rate.Evaluation(),
		FrameBits:     1400 * 8,
		Recovery:      FrameARQ{},
		UpMargin:      100,
		DownMargin:    1000,
		MaxJump:       2,
		SilentLossRun: 3,
	}
}

// Feedback is the per-frame information echoed by a SoftRate receiver: the
// interference-free BER estimate for the frame, the rate it was sent at,
// and whether the receiver's heuristic attributed damage to a collision.
type Feedback struct {
	// RateIndex is the index (into Config.Rates) the frame was sent at.
	RateIndex int
	// BER is the receiver's interference-free BER estimate.
	BER float64
	// Collision reports the receiver's interference verdict. The BER is
	// already interference-free, so the threshold rule treats the frame
	// like any other — but a collision-tagged feedback does not clear the
	// silent-loss run (see OnFeedback), so the flag does influence the
	// §3.2 weak-signal rule.
	Collision bool
}

// FeedbackKind enumerates the four sender-side outcomes of a transmission
// (§3.2–§3.3): a clean BER feedback, a collision-tagged BER feedback, no
// feedback at all, and a postamble-only reception. The values are part of
// the softrated wire protocol — do not reorder.
type FeedbackKind uint8

const (
	// KindBER is an ordinary per-frame BER feedback.
	KindBER FeedbackKind = iota
	// KindCollision is a BER feedback the receiver tagged as
	// interference-damaged (the BER is the excised, interference-free
	// estimate).
	KindCollision
	// KindSilentLoss is a transmission with no feedback of any kind.
	KindSilentLoss
	// KindPostamble is a postamble-only reception: the body was lost to a
	// collision but the receiver proved it can hear the sender.
	KindPostamble

	// NumKinds is the number of feedback kinds (for validation).
	NumKinds
)

// String names the kind for logs and stats tables.
func (k FeedbackKind) String() string {
	switch k {
	case KindBER:
		return "ber"
	case KindCollision:
		return "collision"
	case KindSilentLoss:
		return "silent"
	case KindPostamble:
		return "postamble"
	default:
		return "invalid"
	}
}

// State is the relocatable dynamic state of a controller: everything that
// distinguishes one link's SoftRate instance from a freshly built one with
// the same Config. It is deliberately tiny (8 bytes) so a store can hold
// millions of link states and rebuild the full controller on demand via
// Restore.
type State struct {
	// RateIndex is the current rate index.
	RateIndex int32
	// SilentRun is the current consecutive-silent-loss count.
	SilentRun int32
}

// band holds one rate's optimal-BER threshold range (α_i, β_i). The two
// thresholds are read together on every feedback, so they share a struct
// (and almost always a cache line) rather than living in parallel slices
// — the decision service cycles through many cold controllers per batch
// and pays for every line a decision touches.
type band struct {
	alpha, beta float64
}

// SoftRate is the sender-side algorithm state.
type SoftRate struct {
	cfg       Config
	cur       int
	silentRun int

	bands []band // per-rate (α_i, β_i)

	// Precomputed multi-level jump thresholds, flattened with stride
	// MaxJump-1: downJump[i*stride+n-1] = β_i·DownMargin^n and
	// upJump[i*stride+n-1] = β_i/UpMargin^(n+1) for n in 1..MaxJump-1.
	// Precomputing keeps math.Pow out of the per-feedback hot path, which
	// must stay allocation-free and branch-cheap for the decision service.
	downJump []float64
	upJump   []float64
}

// New builds a SoftRate instance starting at the lowest rate.
func New(cfg Config) *SoftRate {
	if len(cfg.Rates) == 0 {
		cfg.Rates = rate.Evaluation()
	}
	if cfg.FrameBits <= 0 {
		cfg.FrameBits = 1400 * 8
	}
	if cfg.Recovery == nil {
		cfg.Recovery = FrameARQ{}
	}
	if cfg.UpMargin <= 1 {
		cfg.UpMargin = 100
	}
	if cfg.DownMargin <= 1 {
		cfg.DownMargin = 1000
	}
	if cfg.MaxJump <= 0 {
		cfg.MaxJump = 2
	}
	if cfg.SilentLossRun <= 0 {
		cfg.SilentLossRun = 3
	}
	s := &SoftRate{cfg: cfg}
	stride := cfg.MaxJump - 1
	s.bands = make([]band, len(cfg.Rates))
	s.downJump = make([]float64, len(cfg.Rates)*stride)
	s.upJump = make([]float64, len(cfg.Rates)*stride)
	for i, r := range cfg.Rates {
		beta := cfg.Recovery.UpperBER(r, cfg.FrameBits)
		s.bands[i] = band{alpha: beta / cfg.UpMargin, beta: beta}
		for n := 1; n < cfg.MaxJump; n++ {
			s.downJump[i*stride+n-1] = beta * math.Pow(cfg.DownMargin, float64(n))
			s.upJump[i*stride+n-1] = beta / math.Pow(cfg.UpMargin, float64(n+1))
		}
	}
	return s
}

// CurrentRate returns the rate the sender will use for the next frame.
func (s *SoftRate) CurrentRate() rate.Rate { return s.cfg.Rates[s.cur] }

// CurrentIndex returns the index of the current rate in the configured set.
func (s *SoftRate) CurrentIndex() int { return s.cur }

// Thresholds exposes (α_i, β_i) for rate index i, mainly for tests,
// documentation and the threshold-ablation bench.
func (s *SoftRate) Thresholds(i int) (alpha, beta float64) {
	return s.bands[i].alpha, s.bands[i].beta
}

// OnFeedback processes one per-frame BER feedback and adjusts the rate in
// the direction of the optimal one, moving multiple levels when the BER is
// far outside the optimal band. The path is allocation-free and avoids
// math.Pow (thresholds are precomputed in New) — it is the inner loop of
// the softrated decision service.
//
// Only a clean (non-collision) feedback clears the silent-loss run: the
// run counter exists to detect signal loss, and feedback for a frame
// damaged by interference carries no fresh evidence that the *signal* is
// strong — its excised BER already drives the threshold rule. If
// collisions reset the counter, sporadic interference could mask a
// genuinely weakening link indefinitely (§3.3; postamble disambiguation in
// §3.2 is the mechanism that positively rules out attenuation).
func (s *SoftRate) OnFeedback(fb Feedback) {
	if !fb.Collision {
		s.silentRun = 0
	}
	i := fb.RateIndex
	if i < 0 || i >= len(s.cfg.Rates) {
		i = s.cur
	}
	b := fb.BER
	th := s.bands[i]
	stride := s.cfg.MaxJump - 1
	switch {
	case b > th.beta:
		// Jump n levels down while the BER exceeds β_i by DownMargin per
		// extra level.
		n := 1
		for n < s.cfg.MaxJump && b > s.downJump[i*stride+n-1] {
			n++
		}
		s.cur = clamp(i-n, 0, len(s.cfg.Rates)-1)
	case b < th.alpha:
		// Jump n levels up while the BER clears α_i by UpMargin per
		// extra level.
		n := 1
		for n < s.cfg.MaxJump && b < s.upJump[i*stride+n-1] {
			n++
		}
		s.cur = clamp(i+n, 0, len(s.cfg.Rates)-1)
	default:
		s.cur = clamp(i, 0, len(s.cfg.Rates)-1)
	}
}

// OnSilentLoss records a transmission for which no feedback of any kind
// arrived. After SilentLossRun consecutive silent losses the sender
// concludes the signal is too weak for the receiver to even detect frames
// and steps down one rate (§3.2).
func (s *SoftRate) OnSilentLoss() {
	s.silentRun++
	if s.silentRun >= s.cfg.SilentLossRun {
		s.silentRun = 0
		s.cur = clamp(s.cur-1, 0, len(s.cfg.Rates)-1)
	}
}

// OnPostambleFeedback handles the postamble-only reception case: the
// receiver saw the postamble (so it ACKed) but the preamble — and with it
// the body — was lost to a collision. The sender learns the loss was
// interference, not attenuation, and keeps its rate (§3.2). Unlike a
// collision-tagged BER feedback, the postamble positively proves the
// receiver still hears the sender, so it clears the silent-loss run.
func (s *SoftRate) OnPostambleFeedback() {
	s.silentRun = 0
}

// Apply dispatches one feedback event by kind and returns the rate index
// chosen for the next frame. It is the single entry point the decision
// service uses; rateIndex and ber are ignored for the kinds that carry no
// BER (silent loss, postamble). Unknown kinds are treated as silent losses
// — the conservative reading of garbage feedback.
func (s *SoftRate) Apply(kind FeedbackKind, rateIndex int, ber float64) int {
	switch kind {
	case KindBER:
		s.OnFeedback(Feedback{RateIndex: rateIndex, BER: ber})
	case KindCollision:
		s.OnFeedback(Feedback{RateIndex: rateIndex, BER: ber, Collision: true})
	case KindPostamble:
		s.OnPostambleFeedback()
	default:
		s.OnSilentLoss()
	}
	return s.cur
}

// Snapshot captures the controller's dynamic state. Together with Restore
// it makes controllers relocatable: a store can evict an idle link to an
// 8-byte State and later rebuild an equivalent controller from any
// instance built with the same Config.
func (s *SoftRate) Snapshot() State {
	return State{RateIndex: int32(s.cur), SilentRun: int32(s.silentRun)}
}

// Restore overwrites the controller's dynamic state with a snapshot,
// clamping out-of-range values (a snapshot may have been taken under a
// different rate-set size).
func (s *SoftRate) Restore(st State) {
	s.cur = clamp(int(st.RateIndex), 0, len(s.cfg.Rates)-1)
	s.silentRun = clamp(int(st.SilentRun), 0, s.cfg.SilentLossRun-1)
}

// PredictBER applies the §3.3 prediction heuristic: each rate step changes
// BER by at least a factor of 10 within the usable range. It returns the
// (conservative) predicted BER at rate index 'to' given a measured BER at
// index 'from' — a tool for tests and the omniscient comparisons, not used
// in the decision rule itself (the thresholds already encode the margins).
func PredictBER(ber float64, from, to int) float64 {
	// Clamp the input to the meaningful probability range: no estimator
	// can report above 0.5 (random guessing), and negatives are noise.
	if ber <= 0 {
		return 0
	}
	if ber > 0.5 {
		ber = 0.5
	}
	steps := float64(to - from)
	p := ber * math.Pow(10, steps)
	if p > 0.5 {
		p = 0.5
	}
	return p
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
