package core

import (
	"testing"
)

// feedbackLoad is a mixed, branch-exercising feedback sequence: in-band
// holds, climbs, multi-level drops, collisions, stale rate indices.
var feedbackLoad = []Feedback{
	{RateIndex: 0, BER: 1e-9},
	{RateIndex: 2, BER: 1e-12},
	{RateIndex: 4, BER: 3e-6},
	{RateIndex: 4, BER: 0.2},
	{RateIndex: 2, BER: 4e-6, Collision: true},
	{RateIndex: 1, BER: 0},
	{RateIndex: 3, BER: 5e-5},
	{RateIndex: -1, BER: 2e-6},
}

func BenchmarkOnFeedback(b *testing.B) {
	s := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.OnFeedback(feedbackLoad[i&7])
	}
}

func BenchmarkApply(b *testing.B) {
	s := New(DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fb := feedbackLoad[i&7]
		kind := KindBER
		switch {
		case fb.Collision:
			kind = KindCollision
		case i&15 == 7:
			kind = KindSilentLoss
		}
		s.Apply(kind, fb.RateIndex, fb.BER)
	}
}

func TestFeedbackHotPathAllocFree(t *testing.T) {
	// The decision service applies millions of feedbacks per second; the
	// hot path must not allocate. AllocsPerRun gives the average across
	// runs, so any per-call allocation shows up as >= 1.
	s := New(DefaultConfig())
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		s.OnFeedback(feedbackLoad[i&7])
		s.OnSilentLoss()
		s.Apply(KindPostamble, 0, 0)
		s.Apply(KindCollision, 3, 0.3)
		i++
	})
	if allocs != 0 {
		t.Fatalf("feedback hot path allocates %.1f allocs/op, want 0", allocs)
	}
}
