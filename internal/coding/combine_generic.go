//go:build !amd64

package coding

// Non-amd64 builds run the scalar row-combine loops, which are trivially
// bit-identical to the single-frame decoder.
const hasFastJacobian = false
const hasAVX512Jacobian = false

func combineRows2AVX2(dst, src, bm *float64, n int) uint64 {
	panic("coding: combineRows2AVX2 without amd64 vector support")
}

func combineRows3AVX2(dst, a, bm, b *float64, n int) uint64 {
	panic("coding: combineRows3AVX2 without amd64 vector support")
}

func stepCombineDualAVX2(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64 {
	panic("coding: stepCombineDualAVX2 without amd64 vector support")
}

func stepAPPBlockAVX2(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int) {
	panic("coding: stepAPPBlockAVX2 without amd64 vector support")
}

func normalizeLanesAVX2(plane *float64, n, stride int) {
	panic("coding: normalizeLanesAVX2 without amd64 vector support")
}

func stepCombineDualAVX512(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64 {
	panic("coding: stepCombineDualAVX512 without amd64 vector support")
}

func stepAPPBlockAVX512(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int) {
	panic("coding: stepAPPBlockAVX512 without amd64 vector support")
}

func normalizeLanesAVX512(plane *float64, n, stride int) {
	panic("coding: normalizeLanesAVX512 without amd64 vector support")
}
