package coding

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/bitutil"
)

// mkNoisyLLRs builds a depunctured LLR lattice for a random nInfo-bit
// frame at code rate r under AWGN of the given sigma.
func mkNoisyLLRs(rng *rand.Rand, nInfo int, r CodeRate, sigma float64) []float64 {
	info := bitutil.RandomBits(rng, nInfo)
	tx := Puncture(Encode(info), r)
	llrs := make([]float64, len(tx))
	for i, b := range tx {
		x := -1.0
		if b != 0 {
			x = 1.0
		}
		llrs[i] = 2 * (x + sigma*rng.NormFloat64()) / (sigma * sigma)
	}
	return DepunctureLLR(llrs, r, CodedLen(nInfo))
}

// TestWorkspaceDecodeMatchesFresh drives a single warm workspace through a
// mixed sequence of frame sizes, rates and modes and requires bit- and
// LLR-identical output versus the allocating package-level decoders.
func TestWorkspaceDecodeMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var ws Workspace
	for trial := 0; trial < 60; trial++ {
		nInfo := 1 + rng.Intn(700)
		r := CodeRate(rng.Intn(3))
		mode := BCJRMode(rng.Intn(2))
		sigma := 0.4 + rng.Float64()*1.2
		llrs := mkNoisyLLRs(rng, nInfo, r, sigma)

		wantInfo, wantLLR := DecodeBCJR(llrs, nInfo, mode)
		gotInfo, gotLLR := ws.DecodeBCJR(llrs, nInfo, mode)
		for k := range wantInfo {
			if gotInfo[k] != wantInfo[k] {
				t.Fatalf("trial %d: BCJR bit %d differs (reused %d, fresh %d)", trial, k, gotInfo[k], wantInfo[k])
			}
			if math.Float64bits(gotLLR[k]) != math.Float64bits(wantLLR[k]) {
				t.Fatalf("trial %d: BCJR LLR %d differs (reused %v, fresh %v)", trial, k, gotLLR[k], wantLLR[k])
			}
		}

		wantV := DecodeViterbi(llrs, nInfo)
		gotV := ws.DecodeViterbi(llrs, nInfo)
		if bitutil.CountBitErrors(gotV, wantV) != 0 {
			t.Fatalf("trial %d: Viterbi output differs between reused and fresh", trial)
		}
	}
}

// TestWorkspaceDepunctureMatchesFresh checks the scratch depuncture
// lattice against the allocating form, including the trailing erasures a
// short input leaves behind.
func TestWorkspaceDepunctureMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var ws Workspace
	for trial := 0; trial < 200; trial++ {
		r := CodeRate(rng.Intn(3))
		nCoded := rng.Intn(400)
		nIn := rng.Intn(nCoded + 1)
		llrs := make([]float64, nIn)
		for i := range llrs {
			llrs[i] = rng.NormFloat64() * 10
		}
		want := DepunctureLLR(llrs, r, nCoded)
		got := ws.DepunctureLLR(llrs, r, nCoded)
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d: position %d differs (reused %v, fresh %v)", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeDoesNotAllocateSteadyState pins the hot-path requirement
// (mirroring ratectl's steady-state tests): with a warm workspace, BCJR
// decode, Viterbi decode and depuncture perform zero heap allocations.
func TestDecodeDoesNotAllocateSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	const nInfo = 1952 // the Fig 7/9 payload shape (244 bytes)
	llrs := mkNoisyLLRs(rng, nInfo, Rate12, 0.7)
	punct := make([]float64, PuncturedLen(CodedLen(nInfo), Rate34))
	for i := range punct {
		punct[i] = rng.NormFloat64() * 4
	}
	var ws Workspace
	// Warm every scratch plane once.
	ws.DecodeBCJR(llrs, nInfo, LogMAP)
	ws.DecodeViterbi(llrs, nInfo)
	ws.DepunctureLLR(punct, Rate34, CodedLen(nInfo))

	cases := map[string]func(){
		"DecodeBCJR/LogMAP": func() { ws.DecodeBCJR(llrs, nInfo, LogMAP) },
		"DecodeBCJR/MaxLog": func() { ws.DecodeBCJR(llrs, nInfo, MaxLog) },
		"DecodeViterbi":     func() { ws.DecodeViterbi(llrs, nInfo) },
		"DepunctureLLR":     func() { ws.DepunctureLLR(punct, Rate34, CodedLen(nInfo)) },
	}
	for name, fn := range cases {
		if avg := testing.AllocsPerRun(5, fn); avg != 0 {
			t.Errorf("%s: %v allocs per warm-workspace call, want 0", name, avg)
		}
	}
}

// TestAppendEncodeMatchesEncode checks the appending encoder against the
// allocating one, including reuse of a dirty destination buffer.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	buf := make([]byte, 0, 4096)
	for trial := 0; trial < 100; trial++ {
		info := bitutil.RandomBits(rng, rng.Intn(500))
		want := Encode(info)
		buf = AppendEncode(buf[:0], info)
		if bitutil.CountBitErrors(buf, want) != 0 {
			t.Fatalf("trial %d: AppendEncode differs from Encode", trial)
		}
		for _, r := range []CodeRate{Rate12, Rate23, Rate34} {
			wp := Puncture(want, r)
			gp := AppendPuncture(nil, buf, r)
			if bitutil.CountBitErrors(wp, gp) != 0 {
				t.Fatalf("trial %d: AppendPuncture differs from Puncture at %v", trial, r)
			}
		}
	}
}

// BenchmarkDecodeBCJR measures the allocating package-level decode of a
// Fig 7/9-shaped payload (244 info bytes at rate 1/2).
func BenchmarkDecodeBCJR(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const nInfo = 1952
	llrs := mkNoisyLLRs(rng, nInfo, Rate12, 0.7)
	b.SetBytes(nInfo / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBCJR(llrs, nInfo, LogMAP)
	}
}

// BenchmarkDecodeBCJRWorkspace measures the warm-workspace decode of a Fig
// 7/9-shaped payload (244 info bytes at rate 1/2).
func BenchmarkDecodeBCJRWorkspace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const nInfo = 1952
	llrs := mkNoisyLLRs(rng, nInfo, Rate12, 0.7)
	var ws Workspace
	ws.DecodeBCJR(llrs, nInfo, LogMAP)
	b.SetBytes(nInfo / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.DecodeBCJR(llrs, nInfo, LogMAP)
	}
}

// BenchmarkDecodeViterbiWorkspace is the Viterbi counterpart.
func BenchmarkDecodeViterbiWorkspace(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const nInfo = 1952
	llrs := mkNoisyLLRs(rng, nInfo, Rate12, 0.7)
	var ws Workspace
	ws.DecodeViterbi(llrs, nInfo)
	b.SetBytes(nInfo / 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.DecodeViterbi(llrs, nInfo)
	}
}
