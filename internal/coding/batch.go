package coding

import "math/bits"

// Lockstep batch decoder. A BatchWorkspace lays B frames' channel LLRs out
// as structure-of-arrays planes — plane[t*lanes+l] holds frame l's value at
// trellis position t — and advances all frames one trellis step at a time,
// so the per-step branch-metric table, the output-table indexing, and the
// max*/comb combines amortize across the batch and run through the
// vectorized row primitives of combine.go.
//
// The batch path is contractually bit-identical to the single-frame
// decoders: for every job, DecodeBCJRBatch produces exactly the bytes and
// float bits of Workspace.DecodeBCJR, and DecodeViterbiBatch exactly those
// of Workspace.DecodeViterbi (NaN LLR inputs may yield NaN outputs whose
// payload bits differ; they compare equal as NaNs). The equivalence suite
// in batch_test.go and FuzzBatchDecodeMatchesSingle pin this. Exact log-MAP
// remains the default everywhere; the optional Quantized flag enables a
// float32 max-log fast path that trades exactness for speed and is never
// used by the experiment harnesses.
//
// Jobs are grouped by trellis length (frames with equal step counts run in
// lockstep; mixed-length batches form one group per length) and each group
// is capped at maxBatchLanes lanes.

const maxBatchLanes = 64

// appBlockT is how many trellis steps the backward sweep materializes (and
// the APP block kernel interleaves) at a time.
const appBlockT = 8

// BatchJob describes one frame's decode within a batch: the rate-1/2
// channel LLR lattice (after DepunctureLLR for punctured rates; short
// slices are zero-extended exactly like the single-frame decoders) and the
// number of information bits to recover.
type BatchJob struct {
	LLRs  []float64
	NInfo int
}

// BatchResult holds one job's outputs. Both slices alias the workspace and
// are valid until its next Decode call. LLR is nil for Viterbi decodes.
type BatchResult struct {
	Info []byte
	LLR  []float64
}

// BatchWorkspace holds the structure-of-arrays planes of the lockstep batch
// decoder. Like Workspace it is owned by one goroutine at a time, performs
// zero heap allocations in steady state once warm, and reuse is
// contractually invisible in its outputs.
type BatchWorkspace struct {
	// Quantized enables the float32 max-log fast path for
	// DecodeBCJRBatch(..., MaxLog). It is an approximate mode: outputs are
	// NOT bit-identical to the exact decoders and no experiment harness
	// uses it. LogMAP decodes ignore the flag.
	Quantized bool

	llrP   []float64 // [2*steps][lanes] transposed channel LLRs
	alphaP []float64 // [(steps+1)*numStates][lanes] forward plane
	betaP  []float64 // [(steps+1)*numStates][lanes] backward plane
	bmP    []float64 // [8][lanes] fwd+bwd per-step branch metric rows
	bmBlk  []float64 // [appBlockT*4][lanes] APP block branch metric rows
	numBlk []float64 // [appBlockT][lanes] APP accumulators, input 1
	denBlk []float64 // [appBlockT][lanes] APP accumulators, input 0
	appAcc []uint64  // [appBlockT*17] block kernel acc records + fix words

	metricP []float64 // [numStates][lanes] Viterbi path metrics
	nextP   []float64 // [numStates][lanes]
	survP   []uint8   // [steps][numStates][lanes] Viterbi traceback

	qMetric []float32 // quantized fast path planes
	qNext   []float32
	qAlpha  []float32
	qBetaA  []float32
	qBetaB  []float32
	qBM     []float32
	qNum    []float32
	qDen    []float32

	maxP []float64  // [lanes] normalizeLanes per-lane maxima
	fixF [64]uint64 // forward-leg fixup lane masks from the step kernels
	fixB [64]uint64 // backward-leg fixup lane masks

	infoFlat []byte
	llrFlat  []float64
	results  []BatchResult
	order    []int
}

// grow32 is growF for float32 slices.
func grow32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// prepare sizes the per-job output buffers and sorts job indices by trellis
// length so equal-length frames run in lockstep. The sort is a stable
// insertion sort to stay allocation-free (batches are small).
func (w *BatchWorkspace) prepare(jobs []BatchJob, withLLR bool) {
	tot := 0
	for i := range jobs {
		tot += jobs[i].NInfo
	}
	w.infoFlat = growB(w.infoFlat, tot)
	if withLLR {
		w.llrFlat = growF(w.llrFlat, tot)
	}
	if cap(w.results) < len(jobs) {
		w.results = make([]BatchResult, len(jobs))
	}
	w.results = w.results[:len(jobs)]
	off := 0
	for i := range jobs {
		n := jobs[i].NInfo
		r := BatchResult{Info: w.infoFlat[off : off+n : off+n]}
		if withLLR {
			r.LLR = w.llrFlat[off : off+n : off+n]
		}
		w.results[i] = r
		off += n
	}
	if cap(w.order) < len(jobs) {
		w.order = make([]int, len(jobs))
	}
	w.order = w.order[:len(jobs)]
	for i := range w.order {
		w.order[i] = i
	}
	for i := 1; i < len(w.order); i++ {
		j := w.order[i]
		k := i - 1
		for k >= 0 && jobs[w.order[k]].NInfo > jobs[j].NInfo {
			w.order[k+1] = w.order[k]
			k--
		}
		w.order[k+1] = j
	}
}

// groups invokes fn for each maximal run of equal-length jobs (chunked at
// maxBatchLanes) in w.order.
func (w *BatchWorkspace) groups(jobs []BatchJob, fn func(lanes []int)) {
	for lo := 0; lo < len(w.order); {
		hi := lo + 1
		n := jobs[w.order[lo]].NInfo
		for hi < len(w.order) && jobs[w.order[hi]].NInfo == n {
			hi++
		}
		for ; lo < hi; lo += maxBatchLanes {
			end := lo + maxBatchLanes
			if end > hi {
				end = hi
			}
			fn(w.order[lo:end])
		}
		lo = hi
	}
}

// transposeLLRs fills w.llrP with the group's LLRs in [t][lane] order,
// zero-extending short inputs exactly like padLLRs.
func (w *BatchWorkspace) transposeLLRs(jobs []BatchJob, lanes []int, steps int) {
	L := len(lanes)
	w.llrP = growF(w.llrP, 2*steps*L)
	llrP := w.llrP
	for l, ji := range lanes {
		src := jobs[ji].LLRs
		if len(src) > 2*steps {
			src = src[:2*steps]
		}
		for t, v := range src {
			llrP[t*L+l] = v
		}
		for t := len(src); t < 2*steps; t++ {
			llrP[t*L+l] = 0
		}
	}
}

// stepBM fills the four branch-metric rows for trellis step t with exactly
// the branchMetrics arithmetic, lane by lane.
func stepBM(bmP, llrP []float64, t, L int) {
	r0 := llrP[2*t*L : (2*t+1)*L]
	r1 := llrP[(2*t+1)*L : (2*t+2)*L]
	b0 := bmP[0*L : 1*L]
	b1 := bmP[1*L : 2*L]
	b2 := bmP[2*L : 3*L]
	b3 := bmP[3*L : 4*L]
	for l := 0; l < L; l++ {
		l0, l1 := r0[l], r1[l]
		base := -0.5 * (l0 + l1)
		b0[l] = base
		b1[l] = base + l1
		b2[l] = base + l0
		b3[l] = (base + l0) + l1
	}
}

// fillRow sets every element of a metric row to the sentinel except state 0,
// which anchors the terminated trellis at zero.
func anchorRow(row []float64, L int) {
	for i := range row {
		row[i] = bcjrNegInf
	}
	for l := 0; l < L; l++ {
		row[l] = 0
	}
}

func sentinelRow(row []float64) {
	for i := range row {
		row[i] = bcjrNegInf
	}
}

// normalizeLanes applies the single-frame normalize to each lane of a
// [numStates][lanes] plane row: subtract the lane's maximum unless the lane
// is entirely sentinel. Full 4-lane groups run through the vector kernel on
// AVX2 hardware (bit-identical; normalization is mode-independent
// arithmetic, so both BCJR modes use it); the ragged tail — and non-AVX2
// configurations in full — run the scalar passes with the per-lane maxima
// staged in w.maxP. Per lane the comparison and subtraction order matches
// the single-frame normalize exactly.
func (w *BatchWorkspace) normalizeLanes(plane []float64, L int) {
	lo := 0
	if hasAVX512Jacobian {
		if nv := L &^ 7; nv > 0 {
			normalizeLanesAVX512(&plane[0], nv, L*8)
			lo = nv
		}
	}
	if hasFastJacobian {
		if nv := (L - lo) &^ 3; nv > 0 {
			normalizeLanesAVX2(&plane[lo], nv, L*8)
			lo += nv
		}
	}
	if lo == L {
		return
	}
	w.maxP = growF(w.maxP, L)
	maxP := w.maxP
	copy(maxP[lo:], plane[lo:L])
	for s := 1; s < numStates; s++ {
		row := plane[s*L : (s+1)*L : (s+1)*L]
		for l := lo; l < L; l++ {
			if x := row[l]; x > maxP[l] {
				maxP[l] = x
			}
		}
	}
	for s := 0; s < numStates; s++ {
		row := plane[s*L : (s+1)*L : (s+1)*L]
		for l := lo; l < L; l++ {
			if x := row[l]; x > bcjrNegInf && !(maxP[l] <= bcjrNegInf) {
				row[l] = x - maxP[l]
			}
		}
	}
}

// DecodeBCJRBatch decodes every job with the BCJR algorithm in lockstep and
// returns one result per job, in job order. Outputs are bit-identical to
// calling Workspace.DecodeBCJR per job. Results alias the workspace and are
// valid until the next Decode call on it.
func (w *BatchWorkspace) DecodeBCJRBatch(jobs []BatchJob, mode BCJRMode) []BatchResult {
	if w.Quantized && mode == MaxLog {
		return w.decodeBCJRBatchQuantized(jobs)
	}
	w.prepare(jobs, true)
	w.groups(jobs, func(lanes []int) {
		w.decodeBCJRGroup(jobs, lanes, mode)
	})
	return w.results
}

func (w *BatchWorkspace) decodeBCJRGroup(jobs []BatchJob, lanes []int, mode BCJRMode) {
	L := len(lanes)
	nInfo := jobs[lanes[0]].NInfo
	steps := nInfo + TailBits
	w.transposeLLRs(jobs, lanes, steps)
	llrP := w.llrP
	w.bmP = growF(w.bmP, 8*L)
	bmF := w.bmP[0*L : 4*L : 4*L]
	bmB := w.bmP[4*L : 8*L : 8*L]

	rowSz := numStates * L
	w.alphaP = growF(w.alphaP, (steps+1)*rowSz)
	w.betaP = growF(w.betaP, (steps+1)*rowSz)
	alphaP, betaP := w.alphaP, w.betaP

	// Each recursion step runs as one whole-step table walk: the first nv
	// lanes through the vector kernels (log-MAP on AVX2 hardware), the
	// ragged tail — and the MaxLog / non-AVX2 configurations in full —
	// through the scalar walk. Both rebuild every destination row, so no
	// sentinel initialization pass is needed.
	nv := 0
	wide := false
	if mode == LogMAP {
		if hasAVX512Jacobian && L >= 8 {
			nv = L &^ 7
			wide = true
		} else if hasFastJacobian {
			nv = L &^ 3
		}
	}
	stride := L * 8

	// Phase 1: the forward and backward recursions advance together, one
	// dual-step call per iteration (forward step t, backward step
	// steps-1-t). Each recursion's per-step work is a serial dependency, but
	// the two recursions are independent of each other, so pairing them
	// keeps twice as many Jacobian chains in the reorder window.
	anchorRow(alphaP[:rowSz], L)
	anchorRow(betaP[steps*rowSz:(steps+1)*rowSz], L)
	for t := 0; t < steps; t++ {
		tb := steps - 1 - t
		stepBM(bmF, llrP, t, L)
		stepBM(bmB, llrP, tb, L)
		aCur := alphaP[t*rowSz : (t+1)*rowSz : (t+1)*rowSz]
		aNxt := alphaP[(t+1)*rowSz : (t+2)*rowSz : (t+2)*rowSz]
		bSrc := betaP[(tb+1)*rowSz : (tb+2)*rowSz : (tb+2)*rowSz]
		bDst := betaP[tb*rowSz : (tb+1)*rowSz : (tb+1)*rowSz]
		if nv > 0 {
			var fixed uint64
			if wide {
				fixed = stepCombineDualAVX512(&aNxt[0], &aCur[0], &bmF[0], &bDst[0], &bSrc[0], &bmB[0],
					&fwdStepTable[0], &bwdStepTable[0], &w.fixF[0], &w.fixB[0], nv, stride)
			} else {
				fixed = stepCombineDualAVX2(&aNxt[0], &aCur[0], &bmF[0], &bDst[0], &bSrc[0], &bmB[0],
					&fwdStepTable[0], &bwdStepTable[0], &w.fixF[0], &w.fixB[0], nv, stride)
			}
			if fixed != 0 {
				w.applyStepFixups(&w.fixF, aNxt, aCur, bmF, &fwdStepTable, L, mode)
				w.applyStepFixups(&w.fixB, bDst, bSrc, bmB, &bwdStepTable, L, mode)
			}
		}
		if nv < L {
			stepCombineLanes(aNxt, aCur, bmF, &fwdStepTable, nv, L, L, mode)
			stepCombineLanes(bDst, bSrc, bmB, &bwdStepTable, nv, L, L, mode)
		}
		w.normalizeLanes(aNxt, L)
		w.normalizeLanes(bDst, L)
	}

	// Phase 2: APP accumulation in blocks of appBlockT trellis steps. Each
	// step's maxStar fold is serial by construction (the fold order is
	// observable in the output bits), but the steps are mutually
	// independent, so the block kernel interleaves them and hides the chain
	// latency.
	w.bmBlk = growF(w.bmBlk, appBlockT*4*L)
	w.numBlk = growF(w.numBlk, appBlockT*L)
	w.denBlk = growF(w.denBlk, appBlockT*L)
	recW := 9 // acc record: {den[4], num[4], fix}
	if wide {
		recW = 17 // {den[8], num[8], fix}
	}
	if cap(w.appAcc) < appBlockT*17 {
		w.appAcc = make([]uint64, appBlockT*17)
	}
	w.appAcc = w.appAcc[:appBlockT*17]
	numBlk, denBlk := w.numBlk, w.denBlk
	for t0 := 0; t0 < nInfo; t0 += appBlockT {
		ka := appBlockT
		if t0+ka > nInfo {
			ka = nInfo - t0
		}
		for j := 0; j < ka; j++ {
			stepBM(w.bmBlk[j*4*L:(j+1)*4*L:(j+1)*4*L], llrP, t0+j, L)
		}
		if nv > 0 {
			if wide {
				stepAPPBlockAVX512(&numBlk[0], &denBlk[0], &alphaP[t0*rowSz], &betaP[(t0+1)*rowSz], &w.bmBlk[0], &appStepTable[0], &w.appAcc[0], nv, stride, ka)
			} else {
				stepAPPBlockAVX2(&numBlk[0], &denBlk[0], &alphaP[t0*rowSz], &betaP[(t0+1)*rowSz], &w.bmBlk[0], &appStepTable[0], &w.appAcc[0], nv, stride, ka)
			}
		}
		for j := 0; j < ka; j++ {
			t := t0 + j
			at := alphaP[t*rowSz : (t+1)*rowSz : (t+1)*rowSz]
			bt := betaP[(t+1)*rowSz : (t+2)*rowSz : (t+2)*rowSz]
			bmj := w.bmBlk[j*4*L : (j+1)*4*L : (j+1)*4*L]
			if nv > 0 {
				mask := w.appAcc[j*recW+recW-1]
				for mask != 0 {
					l := bits.TrailingZeros64(mask)
					mask &^= 1 << uint(l)
					numBlk[j*L+l], denBlk[j*L+l] = appLane(at, bt, bmj, L, l, mode)
				}
			}
			for l := nv; l < L; l++ {
				numBlk[j*L+l], denBlk[j*L+l] = appLane(at, bt, bmj, L, l, mode)
			}
			for l, ji := range lanes {
				r := &w.results[ji]
				llr := numBlk[j*L+l] - denBlk[j*L+l]
				r.LLR[t] = llr
				if llr >= 0 {
					r.Info[t] = 1
				} else {
					r.Info[t] = 0
				}
			}
		}
	}
}

// DecodeViterbiBatch decodes every job with the soft-decision Viterbi
// decoder in lockstep. Outputs are bit-identical to calling
// Workspace.DecodeViterbi per job; Result.LLR is nil (Viterbi yields no
// per-bit confidences). Results alias the workspace and are valid until the
// next Decode call on it.
func (w *BatchWorkspace) DecodeViterbiBatch(jobs []BatchJob) []BatchResult {
	w.prepare(jobs, false)
	w.groups(jobs, func(lanes []int) {
		w.decodeViterbiGroup(jobs, lanes)
	})
	return w.results
}

func (w *BatchWorkspace) decodeViterbiGroup(jobs []BatchJob, lanes []int) {
	L := len(lanes)
	nInfo := jobs[lanes[0]].NInfo
	steps := nInfo + TailBits
	tr := theTrellis
	w.transposeLLRs(jobs, lanes, steps)
	llrP := w.llrP
	w.bmP = growF(w.bmP, 4*L)
	bmP := w.bmP

	rowSz := numStates * L
	w.metricP = growF(w.metricP, rowSz)
	w.nextP = growF(w.nextP, rowSz)
	w.survP = growB(w.survP, steps*rowSz)
	metric, next := w.metricP, w.nextP
	surv := w.survP
	clear(surv)
	anchorRow(metric, L)
	for t := 0; t < steps; t++ {
		stepBM(bmP, llrP, t, L)
		row := surv[t*rowSz : (t+1)*rowSz : (t+1)*rowSz]
		sentinelRow(next)
		for s := 0; s < numStates; s++ {
			mrow := metric[s*L : (s+1)*L : (s+1)*L]
			for u := 0; u < 2; u++ {
				ns := int(tr.nextState[s][u])
				o := int(tr.output[s][u])
				nrow := next[ns*L : (ns+1)*L : (ns+1)*L]
				brow := bmP[o*L : (o+1)*L : (o+1)*L]
				srow := row[ns*L : (ns+1)*L : (ns+1)*L]
				for l := 0; l < L; l++ {
					m := mrow[l]
					if m <= bcjrNegInf {
						continue
					}
					if cand := m + brow[l]; cand > nrow[l] {
						nrow[l] = cand
						srow[l] = uint8(s)
					}
				}
			}
		}
		metric, next = next, metric
	}
	w.metricP, w.nextP = metric, next
	// Per-lane traceback from state 0.
	for l, ji := range lanes {
		info := w.results[ji].Info
		state := uint8(0)
		for t := steps - 1; t >= 0; t-- {
			if t < nInfo {
				info[t] = state >> (Constraint - 2) & 1
			}
			state = surv[t*rowSz+int(state)*L+l]
		}
	}
}
