package coding

// Quantized max-log fast path of the lockstep batch decoder: the whole
// trellis runs in float32 with the pure max combine (no Jacobian
// correction). This is an approximate mode — hard decisions occasionally
// differ near ties and the confidences are coarser than the exact decoders'
// — so it sits behind BatchWorkspace.Quantized and is never used for
// artifact regeneration. It exists for throughput experiments on the
// decision pipeline, where hint quantization is acceptable.

const qNegInf = float32(-1e30)

func (w *BatchWorkspace) decodeBCJRBatchQuantized(jobs []BatchJob) []BatchResult {
	w.prepare(jobs, true)
	w.groups(jobs, func(lanes []int) {
		w.decodeBCJRGroupQuantized(jobs, lanes)
	})
	return w.results
}

func sentinelRow32(row []float32) {
	for i := range row {
		row[i] = qNegInf
	}
}

func anchorRow32(row []float32, L int) {
	sentinelRow32(row)
	for l := 0; l < L; l++ {
		row[l] = 0
	}
}

// combineRows32 folds src+bm into dst with the max-log combine, skipping
// sentinel sources. The plain loop vectorizes well and float32 halves the
// memory traffic of the exact path.
func combineRows32(dst, src, bm []float32) {
	for l := range dst {
		a := src[l]
		if a <= qNegInf {
			continue
		}
		m := a + bm[l]
		if m > dst[l] {
			dst[l] = m
		}
	}
}

func combineRows32x3(dst, a, bm, b []float32) {
	for l := range dst {
		av, bv := a[l], b[l]
		if av <= qNegInf || bv <= qNegInf {
			continue
		}
		m := (av + bm[l]) + bv
		if m > dst[l] {
			dst[l] = m
		}
	}
}

func normalizeLanes32(plane []float32, L int) {
	for l := 0; l < L; l++ {
		max := plane[l]
		for s := 1; s < numStates; s++ {
			if x := plane[s*L+l]; x > max {
				max = x
			}
		}
		if max <= qNegInf {
			continue
		}
		for s := 0; s < numStates; s++ {
			if plane[s*L+l] > qNegInf {
				plane[s*L+l] -= max
			}
		}
	}
}

func (w *BatchWorkspace) decodeBCJRGroupQuantized(jobs []BatchJob, lanes []int) {
	L := len(lanes)
	nInfo := jobs[lanes[0]].NInfo
	steps := nInfo + TailBits
	tr := theTrellis

	// Quantize the channel LLRs straight into the transposed plane.
	w.qBM = grow32(w.qBM, (2*steps+4)*L)
	llrP := w.qBM[:2*steps*L]
	bmP := w.qBM[2*steps*L:]
	for l, ji := range lanes {
		src := jobs[ji].LLRs
		if len(src) > 2*steps {
			src = src[:2*steps]
		}
		for t, v := range src {
			llrP[t*L+l] = float32(v)
		}
		for t := len(src); t < 2*steps; t++ {
			llrP[t*L+l] = 0
		}
	}
	stepBM := func(t int) {
		r0 := llrP[2*t*L : (2*t+1)*L]
		r1 := llrP[(2*t+1)*L : (2*t+2)*L]
		for l := 0; l < L; l++ {
			l0, l1 := r0[l], r1[l]
			base := -0.5 * (l0 + l1)
			bmP[0*L+l] = base
			bmP[1*L+l] = base + l1
			bmP[2*L+l] = base + l0
			bmP[3*L+l] = (base + l0) + l1
		}
	}

	rowSz := numStates * L
	w.qAlpha = grow32(w.qAlpha, (steps+1)*rowSz)
	alphaP := w.qAlpha
	anchorRow32(alphaP[:rowSz], L)
	for t := 0; t < steps; t++ {
		stepBM(t)
		cur := alphaP[t*rowSz : (t+1)*rowSz : (t+1)*rowSz]
		nxt := alphaP[(t+1)*rowSz : (t+2)*rowSz : (t+2)*rowSz]
		sentinelRow32(nxt)
		for s := 0; s < numStates; s++ {
			src := cur[s*L : (s+1)*L : (s+1)*L]
			for u := 0; u < 2; u++ {
				ns := int(tr.nextState[s][u])
				o := int(tr.output[s][u])
				combineRows32(nxt[ns*L:(ns+1)*L:(ns+1)*L], src, bmP[o*L:(o+1)*L:(o+1)*L])
			}
		}
		normalizeLanes32(nxt, L)
	}

	w.qBetaA = grow32(w.qBetaA, rowSz)
	w.qBetaB = grow32(w.qBetaB, rowSz)
	w.qNum = grow32(w.qNum, L)
	w.qDen = grow32(w.qDen, L)
	nxtB, curB := w.qBetaA, w.qBetaB
	anchorRow32(nxtB, L)
	for t := steps - 1; t >= 0; t-- {
		stepBM(t)
		if t < nInfo {
			at := alphaP[t*rowSz : (t+1)*rowSz : (t+1)*rowSz]
			sentinelRow32(w.qNum)
			sentinelRow32(w.qDen)
			for s := 0; s < numStates; s++ {
				arow := at[s*L : (s+1)*L : (s+1)*L]
				for u := 0; u < 2; u++ {
					ns := int(tr.nextState[s][u])
					o := int(tr.output[s][u])
					dst := w.qDen
					if u == 1 {
						dst = w.qNum
					}
					combineRows32x3(dst, arow, bmP[o*L:(o+1)*L:(o+1)*L], nxtB[ns*L:(ns+1)*L:(ns+1)*L])
				}
			}
			for l, ji := range lanes {
				r := &w.results[ji]
				llr := w.qNum[l] - w.qDen[l]
				r.LLR[t] = float64(llr)
				if llr >= 0 {
					r.Info[t] = 1
				} else {
					r.Info[t] = 0
				}
			}
		}
		sentinelRow32(curB)
		for s := 0; s < numStates; s++ {
			dst := curB[s*L : (s+1)*L : (s+1)*L]
			for u := 0; u < 2; u++ {
				ns := int(tr.nextState[s][u])
				o := int(tr.output[s][u])
				combineRows32(dst, nxtB[ns*L:(ns+1)*L:(ns+1)*L], bmP[o*L:(o+1)*L:(o+1)*L])
			}
		}
		normalizeLanes32(curB, L)
		nxtB, curB = curB, nxtB
	}
	w.qBetaA, w.qBetaB = nxtB, curB
}
