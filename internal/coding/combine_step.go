package coding

import "math/bits"

// Whole-trellis-step combine tables. The trellis is fixed (K=7, 64 states,
// in-degree and out-degree exactly 2), so each recursion step decomposes
// into 64 independent destination rows, each folding exactly two
// (source row, branch-metric row) candidates. The step kernels walk these
// tables in a single call per trellis step, which exposes ~128 independent
// Jacobian evaluations to the out-of-order core at once — the per-row
// combine calls expose only two — and removes the sentinel-initialization
// pass entirely, since every destination row is fully rebuilt.
//
// Entries are 8 bytes: [dstRow, srcRowA, bmRowA, srcRowB, bmRowB, 0, 0, 0],
// with candidate A ordered before B exactly as the scalar decoder's (s, u)
// loop visits them, so the combine order (and therefore every float bit) is
// preserved. The APP table reuses the layout as
// [alphaRow, bmRow(u=0), betaRow(u=0), bmRow(u=1), betaRow(u=1)].
var (
	fwdStepTable [512]uint8
	bwdStepTable [512]uint8
	appStepTable [512]uint8
)

func init() {
	tr := theTrellis
	var seen [numStates]int
	for s := 0; s < numStates; s++ {
		for u := 0; u < 2; u++ {
			ns := int(tr.nextState[s][u])
			e := fwdStepTable[ns*8 : ns*8+8]
			if seen[ns] == 0 {
				e[0] = uint8(ns)
				e[1] = uint8(s)
				e[2] = tr.output[s][u]
			} else {
				e[3] = uint8(s)
				e[4] = tr.output[s][u]
			}
			seen[ns]++
		}
	}
	for s := 0; s < numStates; s++ {
		b := bwdStepTable[s*8 : s*8+8]
		b[0] = uint8(s)
		b[1] = tr.nextState[s][0]
		b[2] = tr.output[s][0]
		b[3] = tr.nextState[s][1]
		b[4] = tr.output[s][1]
		a := appStepTable[s*8 : s*8+8]
		a[0] = uint8(s)
		a[1] = tr.output[s][0]
		a[2] = tr.nextState[s][0]
		a[3] = tr.output[s][1]
		a[4] = tr.nextState[s][1]
	}
}

// combRows folds candidate m into accumulator x with the mode's comb.
func combRows(x, m float64, mode BCJRMode) float64 {
	if mode == MaxLog {
		return combMaxLog(x, m)
	}
	return combLogMAP(x, m)
}

// stepCombineEntry computes one destination lane of a whole-step combine
// from scratch: candidate A is assigned first (a sentinel source leaves the
// sentinel), candidate B folds in with the full comb semantics. This is
// exactly sentinel-init followed by the two combineRows2 applications of
// the per-row formulation.
func stepCombineEntry(ent []uint8, src, bm []float64, L, l int, mode BCJRMode) float64 {
	x := bcjrNegInf
	if a := src[int(ent[1])*L+l]; !(a <= bcjrNegInf) {
		x = a + bm[int(ent[2])*L+l]
	}
	if b := src[int(ent[3])*L+l]; !(b <= bcjrNegInf) {
		x = combRows(x, b+bm[int(ent[4])*L+l], mode)
	}
	return x
}

// stepCombineLanes is the scalar whole-step combine for lanes [lo, hi): the
// non-AVX2 fallback, the MaxLog path, and the ragged-tail lanes next to the
// vector step kernel. Every destination row is fully written.
func stepCombineLanes(dst, src, bm []float64, table *[512]uint8, lo, hi, L int, mode BCJRMode) {
	for e := 0; e < numStates; e++ {
		ent := table[e*8 : e*8+8]
		drow := dst[int(ent[0])*L:]
		for l := lo; l < hi; l++ {
			drow[l] = stepCombineEntry(ent, src, bm, L, l, mode)
		}
	}
}

// applyStepFixups redoes, in scalar code, every (entry, lane) the vector
// step kernel flagged and left unstored.
func (w *BatchWorkspace) applyStepFixups(fix *[64]uint64, dst, src, bm []float64, table *[512]uint8, L int, mode BCJRMode) {
	for e := range fix {
		mask := fix[e]
		for mask != 0 {
			l := bits.TrailingZeros64(mask)
			mask &^= 1 << uint(l)
			ent := table[e*8 : e*8+8]
			dst[int(ent[0])*L+l] = stepCombineEntry(ent, src, bm, L, l, mode)
		}
	}
}

// appLane computes one lane's APP accumulators at one trellis step in the
// exact scalar recursion order (states ascending, u=0 into den then u=1
// into num).
func appLane(at, bt, bm []float64, L, l int, mode BCJRMode) (num, den float64) {
	tr := theTrellis
	num, den = bcjrNegInf, bcjrNegInf
	for s := 0; s < numStates; s++ {
		a := at[s*L+l]
		if a <= bcjrNegInf {
			continue
		}
		for u := 0; u < 2; u++ {
			b := bt[int(tr.nextState[s][u])*L+l]
			if b <= bcjrNegInf {
				continue
			}
			m := (a + bm[int(tr.output[s][u])*L+l]) + b
			if u == 1 {
				num = combRows(num, m, mode)
			} else {
				den = combRows(den, m, mode)
			}
		}
	}
	return num, den
}
