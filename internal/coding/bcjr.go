package coding

import "math"

// BCJRMode selects the recursion arithmetic of the BCJR decoder.
type BCJRMode int

const (
	// LogMAP uses the exact Jacobian logarithm via a lookup-table
	// correction; it is the reference mode and produces calibrated LLRs.
	LogMAP BCJRMode = iota
	// MaxLog drops the correction term (max-log-MAP). It is faster and
	// slightly optimistic in its confidences; used in the decoder ablation.
	MaxLog
)

// maxStarRange is the difference beyond which the Jacobian correction term
// log(1+exp(-d)) is below 3e-5 and is skipped.
const maxStarRange = 10.0

// maxStar computes log(exp(a)+exp(b)) exactly (up to the cutoff above).
// Keeping the correction exact matters: the SoftPHY hint calibration of
// Equation 3 is a statement about true a-posteriori probabilities, and a
// coarse tabulated correction accumulates enough bias over a frame-length
// recursion to visibly distort the hint-vs-BER curve.
func maxStar(a, b float64) float64 {
	d := a - b
	if d < 0 {
		a = b
		d = -d
	}
	if d >= maxStarRange {
		return a
	}
	return a + math.Log1p(math.Exp(-d))
}

const bcjrNegInf = -1e30

// DecodeBCJR runs the BCJR (log-MAP) algorithm over rate-1/2 channel LLRs
// (after DepunctureLLR for punctured rates) and returns the hard decisions
// together with the a-posteriori LLR for each information bit. |llrOut[k]|
// is the SoftPHY hint s_k; Equation 3 of the paper converts it to the
// probability that bit k was decoded in error:
//
//	p_k = 1 / (1 + exp(s_k))
//
// The trellis is terminated (Encode's tail), so both recursions are
// anchored in state 0.
//
// This package-level form allocates fresh output and trellis planes per
// call; the hot path uses Workspace.DecodeBCJR, which is bit-for-bit
// equivalent and allocation-free in steady state.
func DecodeBCJR(llrs []float64, nInfo int, mode BCJRMode) (info []byte, llrOut []float64) {
	var w Workspace
	wsInfo, wsLLR := w.DecodeBCJR(llrs, nInfo, mode)
	// The workspace is function-local, so its buffers can be handed out
	// directly — they are freshly allocated and never reused.
	return wsInfo, wsLLR
}

// branchMetrics computes the four possible branch log-likelihoods of one
// trellis step, indexed by the packed coded-bit pair o (out0 in bit 1,
// out1 in bit 0). The arithmetic matches the historical per-branch
// computation exactly: bm[o] = -0.5*(l0+l1), then +l0 if o&2, then +l1 if
// o&1, in that association order — recomputed once per step instead of
// once per (state, input) branch.
func branchMetrics(l0, l1 float64) (bm [4]float64) {
	base := -0.5 * (l0 + l1)
	bm[0] = base
	bm[1] = base + l1
	bm[2] = base + l0
	bm[3] = (base + l0) + l1
	return bm
}

// DecodeBCJR is the workspace form of the package-level DecodeBCJR: same
// inputs, bit-identical outputs, zero steady-state allocations. The
// returned slices alias the workspace and are valid until its next call.
func (w *Workspace) DecodeBCJR(llrs []float64, nInfo int, mode BCJRMode) (info []byte, llrOut []float64) {
	steps := nInfo + TailBits
	llrs = w.padLLRs(llrs, steps)
	tr := theTrellis

	w.alpha = growF(w.alpha, (steps+1)*numStates)
	w.beta = growF(w.beta, (steps+1)*numStates)
	alpha, beta := w.alpha, w.beta

	// Forward recursion. Every plane row is fully initialized before it is
	// combined into, so a reused workspace is indistinguishable from a
	// fresh one.
	alpha[0] = 0
	for s := 1; s < numStates; s++ {
		alpha[s] = bcjrNegInf
	}
	for t := 0; t < steps; t++ {
		bm := branchMetrics(llrs[2*t], llrs[2*t+1])
		cur := alpha[t*numStates : (t+1)*numStates : (t+1)*numStates]
		nxt := alpha[(t+1)*numStates : (t+2)*numStates : (t+2)*numStates]
		for s := range nxt {
			nxt[s] = bcjrNegInf
		}
		for s := 0; s < numStates; s++ {
			a := cur[s]
			if a <= bcjrNegInf {
				continue
			}
			for u := 0; u < 2; u++ {
				ns := tr.nextState[s][u]
				m := a + bm[tr.output[s][u]]
				// Inlined comb(nxt[ns], m): sentinel checks first, then
				// max-log or exact Jacobian combine.
				if x := nxt[ns]; x <= bcjrNegInf {
					nxt[ns] = m
				} else if m <= bcjrNegInf {
					// keep x
				} else if mode == MaxLog {
					if !(x > m) {
						nxt[ns] = m
					}
				} else {
					nxt[ns] = maxStar(x, m)
				}
			}
		}
		normalize(nxt)
	}

	// Backward recursion.
	beta[steps*numStates] = 0
	for s := 1; s < numStates; s++ {
		beta[steps*numStates+s] = bcjrNegInf
	}
	for t := steps - 1; t >= 0; t-- {
		bm := branchMetrics(llrs[2*t], llrs[2*t+1])
		cur := beta[t*numStates : (t+1)*numStates : (t+1)*numStates]
		nxt := beta[(t+1)*numStates : (t+2)*numStates : (t+2)*numStates]
		for s := range cur {
			cur[s] = bcjrNegInf
		}
		for s := 0; s < numStates; s++ {
			for u := 0; u < 2; u++ {
				b := nxt[tr.nextState[s][u]]
				if b <= bcjrNegInf {
					continue
				}
				m := b + bm[tr.output[s][u]]
				if x := cur[s]; x <= bcjrNegInf {
					cur[s] = m
				} else if m <= bcjrNegInf {
					// keep x
				} else if mode == MaxLog {
					if !(x > m) {
						cur[s] = m
					}
				} else {
					cur[s] = maxStar(x, m)
				}
			}
		}
		normalize(cur)
	}

	// Per-bit APP LLRs.
	w.info = growB(w.info, nInfo)
	w.llrOut = growF(w.llrOut, nInfo)
	info, llrOut = w.info, w.llrOut
	for t := 0; t < nInfo; t++ {
		bm := branchMetrics(llrs[2*t], llrs[2*t+1])
		at := alpha[t*numStates : (t+1)*numStates : (t+1)*numStates]
		bt := beta[(t+1)*numStates : (t+2)*numStates : (t+2)*numStates]
		num, den := bcjrNegInf, bcjrNegInf // input 1, input 0
		for s := 0; s < numStates; s++ {
			a := at[s]
			if a <= bcjrNegInf {
				continue
			}
			for u := 0; u < 2; u++ {
				b := bt[tr.nextState[s][u]]
				if b <= bcjrNegInf {
					continue
				}
				m := (a + bm[tr.output[s][u]]) + b
				if u == 1 {
					if num <= bcjrNegInf {
						num = m
					} else if m <= bcjrNegInf {
						// keep num
					} else if mode == MaxLog {
						if !(num > m) {
							num = m
						}
					} else {
						num = maxStar(num, m)
					}
				} else {
					if den <= bcjrNegInf {
						den = m
					} else if m <= bcjrNegInf {
						// keep den
					} else if mode == MaxLog {
						if !(den > m) {
							den = m
						}
					} else {
						den = maxStar(den, m)
					}
				}
			}
		}
		llr := num - den
		llrOut[t] = llr
		if llr >= 0 {
			info[t] = 1
		} else {
			info[t] = 0
		}
	}
	return info, llrOut
}

// normalize subtracts the maximum from a metric row to keep the log domain
// recursion numerically bounded over long frames.
func normalize(v []float64) {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	if max <= bcjrNegInf {
		return
	}
	for i := range v {
		if v[i] > bcjrNegInf {
			v[i] -= max
		}
	}
}
