package coding

import "math"

// BCJRMode selects the recursion arithmetic of the BCJR decoder.
type BCJRMode int

const (
	// LogMAP uses the exact Jacobian logarithm via a lookup-table
	// correction; it is the reference mode and produces calibrated LLRs.
	LogMAP BCJRMode = iota
	// MaxLog drops the correction term (max-log-MAP). It is faster and
	// slightly optimistic in its confidences; used in the decoder ablation.
	MaxLog
)

// maxStarRange is the difference beyond which the Jacobian correction term
// log(1+exp(-d)) is below 3e-5 and is skipped.
const maxStarRange = 10.0

// maxStar computes log(exp(a)+exp(b)) exactly (up to the cutoff above).
// Keeping the correction exact matters: the SoftPHY hint calibration of
// Equation 3 is a statement about true a-posteriori probabilities, and a
// coarse tabulated correction accumulates enough bias over a frame-length
// recursion to visibly distort the hint-vs-BER curve.
func maxStar(a, b float64) float64 {
	d := a - b
	if d < 0 {
		a = b
		d = -d
	}
	if d >= maxStarRange {
		return a
	}
	return a + math.Log1p(math.Exp(-d))
}

const bcjrNegInf = -1e30

// DecodeBCJR runs the BCJR (log-MAP) algorithm over rate-1/2 channel LLRs
// (after DepunctureLLR for punctured rates) and returns the hard decisions
// together with the a-posteriori LLR for each information bit. |llrOut[k]|
// is the SoftPHY hint s_k; Equation 3 of the paper converts it to the
// probability that bit k was decoded in error:
//
//	p_k = 1 / (1 + exp(s_k))
//
// The trellis is terminated (Encode's tail), so both recursions are
// anchored in state 0.
func DecodeBCJR(llrs []float64, nInfo int, mode BCJRMode) (info []byte, llrOut []float64) {
	steps := nInfo + TailBits
	if len(llrs) < 2*steps {
		padded := make([]float64, 2*steps)
		copy(padded, llrs)
		llrs = padded
	}
	tr := theTrellis

	comb := func(a, b float64) float64 {
		if a <= bcjrNegInf {
			return b
		}
		if b <= bcjrNegInf {
			return a
		}
		if mode == MaxLog {
			if a > b {
				return a
			}
			return b
		}
		return maxStar(a, b)
	}

	// Forward recursion.
	alpha := make([][numStates]float64, steps+1)
	for s := 1; s < numStates; s++ {
		alpha[0][s] = bcjrNegInf
	}
	for t := 0; t < steps; t++ {
		l0, l1 := llrs[2*t], llrs[2*t+1]
		for s := 0; s < numStates; s++ {
			alpha[t+1][s] = bcjrNegInf
		}
		for s := 0; s < numStates; s++ {
			a := alpha[t][s]
			if a <= bcjrNegInf {
				continue
			}
			for u := uint8(0); u < 2; u++ {
				ns := tr.nextState[s][u]
				g := branchMetric(tr.output[s][u], l0, l1)
				alpha[t+1][ns] = comb(alpha[t+1][ns], a+g)
			}
		}
		normalize(&alpha[t+1])
	}

	// Backward recursion.
	beta := make([][numStates]float64, steps+1)
	for s := 1; s < numStates; s++ {
		beta[steps][s] = bcjrNegInf
	}
	for t := steps - 1; t >= 0; t-- {
		l0, l1 := llrs[2*t], llrs[2*t+1]
		for s := 0; s < numStates; s++ {
			beta[t][s] = bcjrNegInf
		}
		for s := 0; s < numStates; s++ {
			for u := uint8(0); u < 2; u++ {
				ns := tr.nextState[s][u]
				b := beta[t+1][ns]
				if b <= bcjrNegInf {
					continue
				}
				g := branchMetric(tr.output[s][u], l0, l1)
				beta[t][s] = comb(beta[t][s], b+g)
			}
		}
		normalize(&beta[t])
	}

	// Per-bit APP LLRs.
	info = make([]byte, nInfo)
	llrOut = make([]float64, nInfo)
	for t := 0; t < nInfo; t++ {
		l0, l1 := llrs[2*t], llrs[2*t+1]
		num, den := bcjrNegInf, bcjrNegInf // input 1, input 0
		for s := 0; s < numStates; s++ {
			a := alpha[t][s]
			if a <= bcjrNegInf {
				continue
			}
			for u := uint8(0); u < 2; u++ {
				ns := tr.nextState[s][u]
				b := beta[t+1][ns]
				if b <= bcjrNegInf {
					continue
				}
				m := a + branchMetric(tr.output[s][u], l0, l1) + b
				if u == 1 {
					num = comb(num, m)
				} else {
					den = comb(den, m)
				}
			}
		}
		llr := num - den
		llrOut[t] = llr
		if llr >= 0 {
			info[t] = 1
		}
	}
	return info, llrOut
}

// normalize subtracts the maximum from a metric vector to keep the log
// domain recursion numerically bounded over long frames.
func normalize(v *[numStates]float64) {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	if max <= bcjrNegInf {
		return
	}
	for i := range v {
		if v[i] > bcjrNegInf {
			v[i] -= max
		}
	}
}
