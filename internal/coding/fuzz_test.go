package coding

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzWS is the shared dirty workspace the fuzzer drives: carrying state
// from one input to the next is the point — any residue that leaks into a
// decode shows up as a divergence from the fresh-allocation reference.
var fuzzWS Workspace

// FuzzDecodeWorkspaceReuse feeds arbitrary LLR lattices (including
// non-finite values) through depuncture and both decoders twice — once
// through the persistent dirty workspace, once through the allocating
// package-level functions — and requires bit-for-bit identical outputs.
// This is the coding-layer analogue of the server's FuzzDecodeBatch: the
// property under test is that buffer reuse is contractually invisible.
func FuzzDecodeWorkspaceReuse(f *testing.F) {
	mk := func(n int, fill byte) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = fill
		}
		return b
	}
	f.Add(uint8(0), uint8(0), uint16(4), mk(64, 0x3c))
	f.Add(uint8(1), uint8(1), uint16(40), mk(256, 0x81))
	f.Add(uint8(2), uint8(0), uint16(121), mk(400, 0x55))
	f.Add(uint8(1), uint8(1), uint16(13), mk(8, 0xff)) // short input: padding path
	f.Fuzz(func(t *testing.T, rateSel, modeSel uint8, nInfoRaw uint16, raw []byte) {
		r := CodeRate(rateSel % 3)
		mode := BCJRMode(modeSel % 2)
		nInfo := 1 + int(nInfoRaw)%512
		nCoded := CodedLen(nInfo)

		// Interpret the raw bytes as packed float64 LLRs of the punctured
		// stream; out-of-range and non-finite values are kept — the decoder
		// must treat them identically with and without buffer reuse.
		llrs := make([]float64, len(raw)/8)
		for i := range llrs {
			llrs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		if want := PuncturedLen(nCoded, r); len(llrs) > want {
			llrs = llrs[:want]
		}

		wantLat := DepunctureLLR(llrs, r, nCoded)
		gotLat := fuzzWS.DepunctureLLR(llrs, r, nCoded)
		for i := range wantLat {
			if math.Float64bits(gotLat[i]) != math.Float64bits(wantLat[i]) {
				t.Fatalf("depuncture position %d differs: reused %v, fresh %v", i, gotLat[i], wantLat[i])
			}
		}

		wantInfo, wantLLR := DecodeBCJR(wantLat, nInfo, mode)
		// Decode from the workspace's own lattice: the decoder must not
		// corrupt its input, and reuse must not change the result.
		gotInfo, gotLLR := fuzzWS.DecodeBCJR(gotLat, nInfo, mode)
		for k := 0; k < nInfo; k++ {
			if gotInfo[k] != wantInfo[k] {
				t.Fatalf("BCJR bit %d differs: reused %d, fresh %d", k, gotInfo[k], wantInfo[k])
			}
			if math.Float64bits(gotLLR[k]) != math.Float64bits(wantLLR[k]) {
				t.Fatalf("BCJR LLR %d differs: reused %v (bits %x), fresh %v (bits %x)",
					k, gotLLR[k], math.Float64bits(gotLLR[k]), wantLLR[k], math.Float64bits(wantLLR[k]))
			}
		}

		wantV := DecodeViterbi(wantLat, nInfo)
		gotV := fuzzWS.DecodeViterbi(wantLat, nInfo)
		for k := 0; k < nInfo; k++ {
			if gotV[k] != wantV[k] {
				t.Fatalf("Viterbi bit %d differs: reused %d, fresh %d", k, gotV[k], wantV[k])
			}
		}
	})
}
