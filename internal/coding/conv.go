// Package coding implements the 802.11a/g channel code: the constraint
// length K=7, rate-1/2 convolutional code with generator polynomials 133
// and 171 (octal), the 2/3 and 3/4 puncturing patterns that derive the
// higher code rates, a hard/soft-decision Viterbi decoder, and a
// soft-output BCJR (log-MAP) decoder.
//
// The BCJR decoder is the source of SoftPHY hints: it emits, for every
// information bit, the a-posteriori log-likelihood ratio
//
//	LLR(k) = log P(x_k = 1 | r) / P(x_k = 0 | r)
//
// whose magnitude |LLR(k)| is the SoftPHY hint s_k of the paper (§3.1).
//
// LLR sign convention throughout this package: positive means "bit = 1 is
// more likely". Channel LLRs for punctured (untransmitted) bits are zero,
// i.e. erasures.
package coding

import "math/bits"

// Constraint is the constraint length of the 802.11 convolutional code.
const Constraint = 7

// numStates is the number of trellis states (2^(K-1)).
const numStates = 1 << (Constraint - 1)

// TailBits is the number of zero tail bits appended by Encode to terminate
// the trellis in the all-zero state, which lets the decoders anchor the
// backward recursion.
const TailBits = Constraint - 1

// Generator polynomials, written with the current input bit as the MSB of a
// 7-bit window [x_k, x_{k-1}, ..., x_{k-6}]: 133 octal and 171 octal.
const (
	gen0 = 0o133 // 1011011b
	gen1 = 0o171 // 1111001b
)

// trellis holds the precomputed state-transition tables shared by the
// encoder and both decoders.
type trellis struct {
	// nextState[s][u] is the state reached from s on input bit u.
	nextState [numStates][2]uint8
	// output[s][u] packs the two coded bits (out0 in bit 1, out1 in bit 0)
	// emitted on the transition from s with input u.
	output [numStates][2]uint8
}

// theTrellis is built once; the tables are tiny (64 states).
var theTrellis = buildTrellis()

func buildTrellis() *trellis {
	t := &trellis{}
	for s := 0; s < numStates; s++ {
		for u := 0; u < 2; u++ {
			// Window layout: bit 6 = current input, bits 5..0 = state
			// (bit 5 = most recent past bit).
			window := uint(u)<<6 | uint(s)
			out0 := uint8(bits.OnesCount(window&gen0) & 1)
			out1 := uint8(bits.OnesCount(window&gen1) & 1)
			ns := uint8((window >> 1) & (numStates - 1))
			t.nextState[s][u] = ns
			t.output[s][u] = out0<<1 | out1
		}
	}
	return t
}

// Encode convolutionally encodes the information bits at rate 1/2 and
// terminates the trellis by appending TailBits zero bits. The output has
// 2*(len(info)+TailBits) coded bits, interleaved as out0, out1 per input.
func Encode(info []byte) []byte {
	return AppendEncode(make([]byte, 0, 2*(len(info)+TailBits)), info)
}

// AppendEncode appends the rate-1/2 coded stream (including the
// terminating tail) to dst and returns the extended slice, allocating
// nothing when dst has sufficient capacity.
func AppendEncode(dst []byte, info []byte) []byte {
	state := uint8(0)
	tr := theTrellis
	for _, b := range info {
		o := tr.output[state][b&1]
		dst = append(dst, o>>1&1, o&1)
		state = tr.nextState[state][b&1]
	}
	for i := 0; i < TailBits; i++ {
		o := tr.output[state][0]
		dst = append(dst, o>>1&1, o&1)
		state = tr.nextState[state][0]
	}
	return dst
}

// CodedLen returns the number of rate-1/2 coded bits produced by Encode for
// nInfo information bits (before puncturing).
func CodedLen(nInfo int) int { return 2 * (nInfo + TailBits) }
