package coding

import "fmt"

// CodeRate identifies one of the three 802.11a/g code rates. Rate 1/2 is
// the mother code; 2/3 and 3/4 are obtained by puncturing.
type CodeRate int

// The supported code rates.
const (
	Rate12 CodeRate = iota // rate 1/2, no puncturing
	Rate23                 // rate 2/3
	Rate34                 // rate 3/4
)

// String implements fmt.Stringer.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("CodeRate(%d)", int(r))
}

// Fraction returns the code rate as numerator/denominator (information bits
// per coded bit).
func (r CodeRate) Fraction() (num, den int) {
	switch r {
	case Rate12:
		return 1, 2
	case Rate23:
		return 2, 3
	case Rate34:
		return 3, 4
	}
	panic("coding: unknown code rate")
}

// Value returns the code rate as a float.
func (r CodeRate) Value() float64 {
	n, d := r.Fraction()
	return float64(n) / float64(d)
}

// puncturePattern returns the keep/drop mask applied cyclically to the
// rate-1/2 coded stream (ordered out0,out1 per input bit). The patterns are
// the standard 802.11a ones: for rate 3/4 the puncturing matrix is
// A=[1 1 0], B=[1 0 1] (transmit a1 b1 a2 b3); for rate 2/3 it is
// A=[1 1], B=[1 0] (transmit a1 b1 a2).
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate12:
		return []bool{true, true}
	case Rate23:
		// Stream order a1 b1 a2 b2 -> keep a1 b1 a2.
		return []bool{true, true, true, false}
	case Rate34:
		// Stream order a1 b1 a2 b2 a3 b3 -> keep a1 b1 a2 b3.
		return []bool{true, true, true, false, false, true}
	}
	panic("coding: unknown code rate")
}

// Puncture drops coded bits from the rate-1/2 stream according to the
// pattern for r, producing the transmitted coded stream.
func Puncture(coded []byte, r CodeRate) []byte {
	pat := r.puncturePattern()
	out := make([]byte, 0, len(coded)*3/4)
	for i, b := range coded {
		if pat[i%len(pat)] {
			out = append(out, b)
		}
	}
	return out
}

// PuncturedLen returns the number of transmitted coded bits for a rate-1/2
// stream of length n punctured at rate r.
func PuncturedLen(n int, r CodeRate) int {
	pat := r.puncturePattern()
	full := n / len(pat)
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	total := full * kept
	for i := full * len(pat); i < n; i++ {
		if pat[i%len(pat)] {
			total++
		}
	}
	return total
}

// DepunctureLLR expands the received channel LLRs of a punctured stream
// back to the rate-1/2 lattice, inserting zero LLRs (erasures) at punctured
// positions. nCoded is the rate-1/2 coded length, i.e. CodedLen(nInfo).
// It returns an error-shaped panic-free nil if llrs is shorter than the
// punctured length implies; callers validate sizes upstream.
func DepunctureLLR(llrs []float64, r CodeRate, nCoded int) []float64 {
	pat := r.puncturePattern()
	out := make([]float64, nCoded)
	j := 0
	for i := 0; i < nCoded && j < len(llrs); i++ {
		if pat[i%len(pat)] {
			out[i] = llrs[j]
			j++
		}
	}
	return out
}
