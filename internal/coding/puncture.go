package coding

import "fmt"

// CodeRate identifies one of the three 802.11a/g code rates. Rate 1/2 is
// the mother code; 2/3 and 3/4 are obtained by puncturing.
type CodeRate int

// The supported code rates.
const (
	Rate12 CodeRate = iota // rate 1/2, no puncturing
	Rate23                 // rate 2/3
	Rate34                 // rate 3/4
)

// String implements fmt.Stringer.
func (r CodeRate) String() string {
	switch r {
	case Rate12:
		return "1/2"
	case Rate23:
		return "2/3"
	case Rate34:
		return "3/4"
	}
	return fmt.Sprintf("CodeRate(%d)", int(r))
}

// Fraction returns the code rate as numerator/denominator (information bits
// per coded bit).
func (r CodeRate) Fraction() (num, den int) {
	switch r {
	case Rate12:
		return 1, 2
	case Rate23:
		return 2, 3
	case Rate34:
		return 3, 4
	}
	panic("coding: unknown code rate")
}

// Value returns the code rate as a float.
func (r CodeRate) Value() float64 {
	n, d := r.Fraction()
	return float64(n) / float64(d)
}

// The keep/drop masks applied cyclically to the rate-1/2 coded stream
// (ordered out0,out1 per input bit), shared read-only so the hot path
// never rebuilds them. The patterns are the standard 802.11a ones: for
// rate 3/4 the puncturing matrix is A=[1 1 0], B=[1 0 1] (transmit
// a1 b1 a2 b3); for rate 2/3 it is A=[1 1], B=[1 0] (transmit a1 b1 a2).
var (
	patRate12 = []bool{true, true}
	// Stream order a1 b1 a2 b2 -> keep a1 b1 a2.
	patRate23 = []bool{true, true, true, false}
	// Stream order a1 b1 a2 b2 a3 b3 -> keep a1 b1 a2 b3.
	patRate34 = []bool{true, true, true, false, false, true}
)

// puncturePattern returns the shared keep/drop mask for r. Callers must
// treat the slice as read-only.
func (r CodeRate) puncturePattern() []bool {
	switch r {
	case Rate12:
		return patRate12
	case Rate23:
		return patRate23
	case Rate34:
		return patRate34
	}
	panic("coding: unknown code rate")
}

// Puncture drops coded bits from the rate-1/2 stream according to the
// pattern for r, producing the transmitted coded stream.
func Puncture(coded []byte, r CodeRate) []byte {
	return AppendPuncture(make([]byte, 0, len(coded)*3/4), coded, r)
}

// AppendPuncture appends the punctured stream to dst and returns the
// extended slice, allocating nothing when dst has sufficient capacity.
func AppendPuncture(dst []byte, coded []byte, r CodeRate) []byte {
	pat := r.puncturePattern()
	for i, b := range coded {
		if pat[i%len(pat)] {
			dst = append(dst, b)
		}
	}
	return dst
}

// PuncturedLen returns the number of transmitted coded bits for a rate-1/2
// stream of length n punctured at rate r.
func PuncturedLen(n int, r CodeRate) int {
	pat := r.puncturePattern()
	full := n / len(pat)
	kept := 0
	for _, k := range pat {
		if k {
			kept++
		}
	}
	total := full * kept
	for i := full * len(pat); i < n; i++ {
		if pat[i%len(pat)] {
			total++
		}
	}
	return total
}

// DepunctureLLR expands the received channel LLRs of a punctured stream
// back to the rate-1/2 lattice, inserting zero LLRs (erasures) at punctured
// positions. nCoded is the rate-1/2 coded length, i.e. CodedLen(nInfo).
// It returns an error-shaped panic-free nil if llrs is shorter than the
// punctured length implies; callers validate sizes upstream.
func DepunctureLLR(llrs []float64, r CodeRate, nCoded int) []float64 {
	return depunctureInto(make([]float64, nCoded), llrs, r)
}

// DepunctureLLR is the workspace form of the package-level DepunctureLLR:
// same semantics, zero steady-state allocations. The returned slice
// aliases the workspace and is valid until its next call.
func (w *Workspace) DepunctureLLR(llrs []float64, r CodeRate, nCoded int) []float64 {
	w.depunct = growF(w.depunct, nCoded)
	clear(w.depunct)
	return depunctureInto(w.depunct, llrs, r)
}

// depunctureInto scatters llrs into the zeroed rate-1/2 lattice out.
func depunctureInto(out []float64, llrs []float64, r CodeRate) []float64 {
	pat := r.puncturePattern()
	j := 0
	for i := 0; i < len(out) && j < len(llrs); i++ {
		if pat[i%len(pat)] {
			out[i] = llrs[j]
			j++
		}
	}
	return out
}
