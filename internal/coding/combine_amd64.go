//go:build amd64

package coding

// The vectorized log-MAP row combine requires AVX2 (256-bit integer ops)
// and FMA3. On such hardware math.Exp's amd64 assembly takes its FMA path
// (math.useFMA is AVX&&FMA), which is the operation sequence the kernels
// in combine_amd64.s replicate lane-for-lane — packed IEEE-754 ops are
// bit-identical to their scalar forms, so the vector path produces exactly
// the floats the scalar decoder produces. Rare inputs whose math.Log1p
// control flow leaves the replicated fast paths (NaNs, Inf-Inf candidate
// collisions, arguments within ulps of u==2 inside Log1p) are reported in
// the returned fixup mask and re-run through the scalar code by the
// wrappers in combine.go.
var hasFastJacobian = detectFastJacobian()

// hasAVX512Jacobian additionally requires AVX512 F/DQ/VL (and OS ZMM+opmask
// state support): the 8-lane step kernels use ZMM vectors, opmask-register
// compares and merges, and EVEX-encoded YMM integer ops for the ldexp step.
// The arithmetic is the same lane-wise IEEE sequence as the 4-lane kernels,
// so the bit-identity contract is unchanged; the wider vectors halve the
// number of long-latency Jacobian chains per trellis step.
var hasAVX512Jacobian = hasFastJacobian && detectAVX512Jacobian()

func detectAVX512Jacobian() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	// The OS must save/restore opmask, ZMM-high, and high-ZMM register
	// state in addition to the XMM/YMM state hasFastJacobian checked.
	if lo, _ := xgetbv0(); lo&0xE6 != 0xE6 {
		return false
	}
	const (
		cpuidAVX512F  = 1 << 16
		cpuidAVX512DQ = 1 << 17
		cpuidAVX512VL = 1 << 31
	)
	_, b7, _, _ := cpuidx(7, 0)
	return b7&cpuidAVX512F != 0 && b7&cpuidAVX512DQ != 0 && b7&cpuidAVX512VL != 0
}

func detectFastJacobian() bool {
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		cpuidFMA     = 1 << 12
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
		cpuidAVX2    = 1 << 5
	)
	_, _, c1, _ := cpuidx(1, 0)
	if c1&cpuidOSXSAVE == 0 || c1&cpuidAVX == 0 || c1&cpuidFMA == 0 {
		return false
	}
	// The OS must save/restore the XMM and YMM register state.
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidx(7, 0)
	return b7&cpuidAVX2 != 0
}

// cpuidx executes CPUID with the given leaf/subleaf.
func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (OS AVX state support).
func xgetbv0() (eax, edx uint32)

// combineRows2AVX2 is the vector form of combineRows2's LogMAP loop over
// n&^3 lanes (n must be a multiple of 4 and at most maxBatchLanes). Lanes
// whose control flow cannot be replicated in-vector are left untouched and
// reported in the returned bitmask (bit i = lane i).
//
//go:noescape
func combineRows2AVX2(dst, src, bm *float64, n int) uint64

// combineRows3AVX2 is the vector form of combineRows3's LogMAP loop.
//
//go:noescape
func combineRows3AVX2(dst, a, bm, b *float64, n int) uint64

// stepCombineDualAVX2 runs one forward and one backward trellis recursion
// step (64 table entries each, see combine_step.go) over n lanes, n a
// multiple of 4. Rows are stride bytes apart. fixA/fixB[entry] receive the
// entries' fixup lane masks; fixup lanes are left unstored for
// applyStepFixups. The return value is the OR of all masks, so callers skip
// both fixup scans when it is zero.
//
//go:noescape
func stepCombineDualAVX2(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64

// stepAPPBlockAVX2 runs k consecutive APP accumulation steps in one call,
// interleaving their serial accumulation chains so the Jacobian latency
// overlaps across steps (see combine_amd64.s for the pointer and acc record
// layout). acc[j*9+8] receives step j's fixup lane mask; the caller redoes
// flagged lanes entirely with appLane.
//
//go:noescape
func stepAPPBlockAVX2(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int)

// stepCombineDualAVX512 is the 8-lane form of stepCombineDualAVX2 (n a
// multiple of 8).
//
//go:noescape
func stepCombineDualAVX512(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64

// stepAPPBlockAVX512 is the 8-lane form of stepAPPBlockAVX2 (n a multiple
// of 8); acc holds k records of 17 words {den[8], num[8], fix}.
//
//go:noescape
func stepAPPBlockAVX512(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int)

// normalizeLanesAVX512 is the 8-lane form of normalizeLanesAVX2 (n a
// multiple of 8).
//
//go:noescape
func normalizeLanesAVX512(plane *float64, n, stride int)

// normalizeLanesAVX2 is the vector form of BatchWorkspace.normalizeLanes
// over n lanes (a multiple of 4), bit-identical to the scalar passes.
//
//go:noescape
func normalizeLanesAVX2(plane *float64, n, stride int)
