//go:build amd64

#include "textflag.h"

// Vectorized log-MAP combines for the lockstep batch decoder. Each lane
// folds a candidate branch metric m into an accumulator x with the
// single-frame decoder's comb semantics:
//
//	if x <= bcjrNegInf      -> x = m
//	else if m <= bcjrNegInf -> keep x
//	else                    -> x = maxStar(x, m)
//
// where maxStar(x, m) = max(x,m) + Log1p(Exp(-|x-m|)) with the correction
// dropped when |x-m| >= 10. Bit-identity with the scalar decoder comes
// from replicating the exact operation sequences of math.Exp's avxfma
// assembly path and math.Log1p's pure-Go fast paths: packed AVX ops are
// lane-wise IEEE-identical to their scalar counterparts, FMA is used
// exactly where the scalar code fuses (math.Exp) and never where it does
// not (math.Log1p). The correction argument d = |x-m| lies in [0, 10), so
// Exp's overflow/underflow branches and Log1p's tiny-argument branches are
// unreachable. Lanes whose control flow cannot be replicated in-vector —
// NaN differences (including Inf-Inf collisions) and Log1p arguments that
// reach the |f| < 2^-20 special case (iu2 == 0, e.g. exp(-d) == 1 exactly)
// — are excluded from the result store and reported in a fixup bitmask for
// the Go wrapper to redo with scalar code.
//
// Two granularities share one core:
//
//   - combineRows2/combineRows3: one transition row per call (the testing
//     primitives and ragged-tail helpers).
//   - stepCombineDualAVX2/stepAPPBlockAVX2: one whole trellis recursion step
//     (or a block of APP steps) per call, driven by a 64-entry table
//     (combine_step.go). Every entry's Jacobian work is independent, so one
//     call exposes ~128 overlapping evaluation pipelines to the out-of-order
//     core instead of the two a per-row call can. The APP kernel additionally
//     interleaves a block of trellis steps per call, because each step's
//     accumulation is a serial maxStar chain: with K steps in flight the
//     chains overlap and the kernel runs at Jacobian throughput instead of
//     chain latency.

// 8-lane broadcast float64/uint64 constants. The AVX2 kernels read the low
// 32 bytes, the AVX-512 kernels the full 64.
#define CONST8(name, bits) \
	DATA name<>+0(SB)/8, $bits \
	DATA name<>+8(SB)/8, $bits \
	DATA name<>+16(SB)/8, $bits \
	DATA name<>+24(SB)/8, $bits \
	DATA name<>+32(SB)/8, $bits \
	DATA name<>+40(SB)/8, $bits \
	DATA name<>+48(SB)/8, $bits \
	DATA name<>+56(SB)/8, $bits \
	GLOBL name<>(SB), RODATA|NOPTR, $64

CONST8(jcNegInf, 0xC6293E5939A08CEA)    // bcjrNegInf = -1e30
CONST8(jcTen, 0x4024000000000000)       // maxStarRange = 10.0
CONST8(jcAbs, 0x7FFFFFFFFFFFFFFF)
CONST8(jcSign, 0x8000000000000000)
CONST8(jcOne, 0x3FF0000000000000)       // also exponent field 0x3FF<<52
CONST8(jcHalf, 0x3FE0000000000000)      // also exponent field 0x3FE<<52
CONST8(jcTwo, 0x4000000000000000)
// math.Exp avxfma-path constants (exprodata in exp_amd64.s).
CONST8(jcLog2e, 0x3FF71547652B82FE)
CONST8(jcLn2U, 0x3FE62E42FEFA3000)
CONST8(jcLn2L, 0x3D53DE6AF278ECE6)
CONST8(jcSixteenth, 0x3FB0000000000000)
CONST8(jcC3, 0x3FC5555555555555)
CONST8(jcC4, 0x3FA5555555555555)
CONST8(jcC5, 0x3F81111111111111)
CONST8(jcC6, 0x3F56C16C16C16C17)
CONST8(jcC7, 0x3F2A01A01A01A01A)
CONST8(jcC8, 0x3EFA01A01A01A01A)
// math.Log1p constants (log1p.go).
CONST8(jcSqrt2M1, 0x3FDA827999FCEF32)   // Sqrt(2)-1, actual parsed bits
CONST8(jcMant, 0x000FFFFFFFFFFFFF)
CONST8(jcBound, 0x0006A09E667F3BCD)     // mantissa of Sqrt(2)
CONST8(jcHidden, 0x0010000000000000)
CONST8(jcLn2Hi, 0x3FE62E42FEE00000)
CONST8(jcLn2Lo, 0x3DEA39EF35793C76)
CONST8(jcLp1, 0x3FE5555555555593)
CONST8(jcLp2, 0x3FD999999997FA04)
CONST8(jcLp3, 0x3FD2492494229359)
CONST8(jcLp4, 0x3FCC71C51D8E78AF)
CONST8(jcLp5, 0x3FC7466496CB03DE)
CONST8(jcLp6, 0x3FC39A09D078C69F)
CONST8(jcLp7, 0x3FC2F112DF3E5244)

// exp bias 1023 as packed int32 for the ldexp step (low 16 bytes serve the
// 4-lane kernels, all 32 the 8-lane ones).
DATA jcBias<>+0(SB)/8, $0x000003FF000003FF
DATA jcBias<>+8(SB)/8, $0x000003FF000003FF
DATA jcBias<>+16(SB)/8, $0x000003FF000003FF
DATA jcBias<>+24(SB)/8, $0x000003FF000003FF
GLOBL jcBias<>(SB), RODATA|NOPTR, $32

// The combine core is split into composable pieces so the row kernels and
// the whole-step kernels can share it with different prologues/epilogues.
//
// Common register contract:
//   Inputs:  Y0 = x (accumulator), Y1 = m (candidates), Y2 = skip mask,
//            Y15 = 1.0 broadcast, R8 = fixup accumulator, R9 = lane base.
//   Outputs: Y3 = Ksx, Y4 = Ksm, Y5 = fixup mask, Y8 = a (max candidate),
//            Y9 = Kfar, Y13 = combined result (after CORE_BLEND).
//   Clobbers Y6-Y14, X13, AX, CX. Preserves Y0, Y1, Y2, Y15.

// CORE_MASKS classifies the lanes and sets flags for the all-excluded
// bailout: JE <fast label> must follow, where the fast label does
// VMOVUPD Y8, Y13 and falls through to CORE_BLEND.
#define CORE_MASKS \
	VCMPPD $2, jcNegInf<>(SB), Y0, Y3   /* Ksx = x <= sentinel          */ \
	VCMPPD $2, jcNegInf<>(SB), Y1, Y4   /* Ksm = m <= sentinel          */ \
	VSUBPD Y1, Y0, Y6                   /* d = x - m                    */ \
	VCMPPD $3, Y6, Y6, Y5               /* Kun = isNaN(d)               */ \
	VXORPD Y7, Y7, Y7                   \
	VCMPPD $1, Y7, Y6, Y7               /* Kswap = d < 0                */ \
	VBLENDVPD Y7, Y1, Y0, Y8            /* a = max candidate            */ \
	VANDPD jcAbs<>(SB), Y6, Y6          /* d = |d|                      */ \
	VCMPPD $13, jcTen<>(SB), Y6, Y9     /* Kfar = d >= 10               */ \
	VORPD Y3, Y2, Y7                    \
	VORPD Y4, Y7, Y7                    /* skip|Ksx|Ksm                 */ \
	VANDNPD Y5, Y7, Y5                  /* fixup = Kun & ~that          */ \
	VORPD Y9, Y7, Y10                   \
	VORPD Y5, Y10, Y10                  /* Kexcl: no Jacobian needed    */ \
	VMOVMSKPD Y10, AX                   \
	CMPL AX, $0x0F

// CORE_JACOBIAN computes Y13 = a + Log1p(Exp(-|d|)) for the non-excluded
// lanes and folds Log1p's unreplicable-branch lanes into the Y5 fixup mask.
#define CORE_JACOBIAN \
	VBLENDVPD Y10, Y15, Y6, Y11         /* din = excl ? 1.0 : d         */ \
	/* ---- exp(-din): math.Exp avxfma path, din in [0, 10) --------- */ \
	VXORPD jcSign<>(SB), Y11, Y11       /* xe = -din                    */ \
	VMULPD jcLog2e<>(SB), Y11, Y12      \
	VCVTPD2DQY Y12, X13                 /* k = round(xe*log2(e))        */ \
	VCVTDQ2PD X13, Y14                  \
	VMOVUPD Y11, Y12                    \
	VFNMADD231PD jcLn2U<>(SB), Y14, Y12 /* r = xe - kf*Ln2Hi            */ \
	VFNMADD231PD jcLn2L<>(SB), Y14, Y12 /* r -= kf*Ln2Lo                */ \
	VMULPD jcSixteenth<>(SB), Y12, Y12  \
	VMOVUPD jcC8<>(SB), Y11             \
	VFMADD213PD jcC7<>(SB), Y12, Y11    \
	VFMADD213PD jcC6<>(SB), Y12, Y11    \
	VFMADD213PD jcC5<>(SB), Y12, Y11    \
	VFMADD213PD jcC4<>(SB), Y12, Y11    \
	VFMADD213PD jcC3<>(SB), Y12, Y11    \
	VFMADD213PD jcHalf<>(SB), Y12, Y11  \
	VFMADD213PD jcOne<>(SB), Y12, Y11   \
	VMULPD Y11, Y12, Y12                /* s = r*q                      */ \
	VADDPD jcTwo<>(SB), Y12, Y14        \
	VMULPD Y14, Y12, Y12                /* s = s*(s+2), 1st squaring    */ \
	VADDPD jcTwo<>(SB), Y12, Y14        \
	VMULPD Y14, Y12, Y12                \
	VADDPD jcTwo<>(SB), Y12, Y14        \
	VMULPD Y14, Y12, Y12                \
	VADDPD jcTwo<>(SB), Y12, Y14        \
	VFMADD213PD jcOne<>(SB), Y14, Y12   /* s = s*(s+2) + 1              */ \
	VPADDD jcBias<>(SB), X13, X13       /* ldexp: 2^k via int bits      */ \
	VPMOVZXDQ X13, Y14                  \
	VPSLLQ $52, Y14, Y14                \
	VMULPD Y14, Y12, Y12                /* v = exp(-din), in (4e-5, 1]  */ \
	/* ---- log1p(v): math.Log1p fast paths ------------------------- */ \
	VCMPPD $1, jcSqrt2M1<>(SB), Y12, Y11 /* Ksimple = v < Sqrt(2)-1     */ \
	VADDPD Y15, Y12, Y13                /* u = 1 + v                    */ \
	VSUBPD Y12, Y13, Y14                \
	VSUBPD Y14, Y15, Y14                /* cA = 1 - (u-v)               */ \
	VSUBPD Y15, Y13, Y10                \
	VSUBPD Y10, Y12, Y10                /* cB = v - (u-1)               */ \
	VCMPPD $13, jcTwo<>(SB), Y13, Y7    /* exponent k0 > 0 iff u >= 2   */ \
	VBLENDVPD Y7, Y14, Y10, Y10         \
	VDIVPD Y13, Y10, Y10                /* c = (k0>0 ? cA : cB) / u     */ \
	VPAND jcMant<>(SB), Y13, Y14        /* iu = bits(u) & mantissa      */ \
	VMOVUPD jcBound<>(SB), Y7           \
	VPCMPGTQ Y14, Y7, Y7                /* KnoInc = iu < sqrt2 mantissa */ \
	VPOR jcOne<>(SB), Y14, Y13          \
	VPOR jcHalf<>(SB), Y14, Y6          \
	VBLENDVPD Y7, Y13, Y6, Y6           /* unorm: u or u/2 renormalized */ \
	VMOVUPD jcHidden<>(SB), Y13         \
	VPSUBQ Y14, Y13, Y13                \
	VPSRLQ $2, Y13, Y13                 \
	VBLENDVPD Y7, Y14, Y13, Y13         /* iu2 per log1p.go             */ \
	VPXOR Y14, Y14, Y14                 \
	VPCMPEQQ Y14, Y13, Y13              /* iu2 == 0: |f| < 2^-20 branch */ \
	VANDNPD Y13, Y11, Y13               /* ... only on the else path    */ \
	VORPD Y13, Y5, Y5                   /* fold into fixup mask         */ \
	VSUBPD Y15, Y6, Y6                  \
	VBLENDVPD Y11, Y12, Y6, Y6          /* f = simple ? v : unorm-1     */ \
	VORPD Y11, Y7, Y7                   /* Kk0: lanes with k == 0       */ \
	VMULPD jcHalf<>(SB), Y6, Y11        \
	VMULPD Y6, Y11, Y11                 /* hfsq = (0.5*f)*f             */ \
	VADDPD jcTwo<>(SB), Y6, Y12         \
	VDIVPD Y12, Y6, Y12                 /* s = f/(2+f)                  */ \
	VMULPD Y12, Y12, Y14                /* z = s*s                      */ \
	VMOVUPD jcLp7<>(SB), Y13            /* Horner chain, no FMA         */ \
	VMULPD Y13, Y14, Y13                \
	VADDPD jcLp6<>(SB), Y13, Y13        \
	VMULPD Y14, Y13, Y13                \
	VADDPD jcLp5<>(SB), Y13, Y13        \
	VMULPD Y14, Y13, Y13                \
	VADDPD jcLp4<>(SB), Y13, Y13        \
	VMULPD Y14, Y13, Y13                \
	VADDPD jcLp3<>(SB), Y13, Y13        \
	VMULPD Y14, Y13, Y13                \
	VADDPD jcLp2<>(SB), Y13, Y13        \
	VMULPD Y14, Y13, Y13                \
	VADDPD jcLp1<>(SB), Y13, Y13        \
	VMULPD Y13, Y14, Y13                /* R = z*poly                   */ \
	VADDPD Y11, Y13, Y13                \
	VMULPD Y13, Y12, Y13                /* sp = s*(hfsq+R)              */ \
	VSUBPD Y13, Y11, Y14                \
	VSUBPD Y14, Y6, Y14                 /* k=0: f - (hfsq-sp)           */ \
	VADDPD jcLn2Lo<>(SB), Y10, Y10      \
	VADDPD Y10, Y13, Y13                \
	VSUBPD Y13, Y11, Y13                \
	VSUBPD Y6, Y13, Y13                 \
	VMOVUPD jcLn2Hi<>(SB), Y11          \
	VSUBPD Y13, Y11, Y13                /* k=1: Ln2Hi - ((hfsq-(sp+(Ln2Lo+c)))-f) */ \
	VBLENDVPD Y7, Y14, Y13, Y13         /* g = log1p(exp(-d))           */ \
	VADDPD Y13, Y8, Y13                 /* a + g                        */

// CORE_BLEND resolves the excluded lanes to their scalar-path results.
// The x-sentinel blend comes last: x <= sentinel means unconditional
// assignment of m, whatever m is.
#define CORE_BLEND \
	VBLENDVPD Y9, Y8, Y13, Y13          /* far lanes: plain max         */ \
	VBLENDVPD Y4, Y0, Y13, Y13          /* m sentinel: keep x           */ \
	VBLENDVPD Y3, Y1, Y13, Y13          /* x sentinel: take m           */

// CORE_FIXBITS shifts the group's fixup lanes to their batch positions and
// accumulates them into R8.
#define CORE_FIXBITS \
	VMOVMSKPD Y5, AX                    \
	MOVQ R9, CX                         \
	SHLQ CX, AX                         \
	ORQ AX, R8

// Row-kernel epilogue: skip lanes keep their dst memory (masked store),
// fixup lanes are left for the Go wrapper.
#define CORE_STORE_ROW \
	VORPD Y5, Y2, Y12                   \
	VPCMPEQD Y14, Y14, Y14              \
	VANDNPD Y14, Y12, Y14               /* store unless skip or fixup   */ \
	VMASKMOVPD Y13, Y14, (DI)           \
	CORE_FIXBITS

// Step-kernel epilogue: the destination row is fully overwritten (skip
// lanes resolve to the in-register x). Fixup lanes are stored too — their
// values are garbage, but the scalar redo recomputes them from the source
// plane and overwrites, never reads, dst. A masked store here would be
// poison for throughput: its mask hangs off the end of the Jacobian
// dependency chain, and a store whose mask is unresolved blocks every
// younger load, serializing otherwise-independent iterations at full chain
// latency.
#define CORE_STORE_STEP \
	VBLENDVPD Y2, Y0, Y13, Y13          /* skip lanes keep x            */ \
	VMOVUPD Y13, (DI)(R10*1)            \
	CORE_FIXBITS

// Accumulator epilogue: no store; the caller keeps Y13 as the new x.
#define CORE_ACC \
	VBLENDVPD Y2, Y0, Y13, Y13          /* skip lanes keep x            */ \
	CORE_FIXBITS

// func combineRows2AVX2(dst, src, bm *float64, n int) uint64
TEXT ·combineRows2AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ bm+16(FP), DX
	MOVQ n+24(FP), R10
	SHRQ $2, R10
	XORQ R8, R8
	XORQ R9, R9
	VMOVUPD jcOne<>(SB), Y15
	JMP  r2cond

r2loop:
	VMOVUPD (DI), Y0                    // x
	VMOVUPD (SI), Y1                    // src state metric
	VCMPPD  $2, jcNegInf<>(SB), Y1, Y2  // Kskip = src <= sentinel
	VADDPD  (DX), Y1, Y1                // m = src + bm
	CORE_MASKS
	JE r2fast
	CORE_JACOBIAN
	JMP r2blend

r2fast:
	VMOVUPD Y8, Y13                     // no lane needs the correction

r2blend:
	CORE_BLEND
	CORE_STORE_ROW
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $4, R9
	DECQ R10

r2cond:
	TESTQ R10, R10
	JNZ   r2loop
	VZEROUPPER
	MOVQ  R8, ret+32(FP)
	RET

// func combineRows3AVX2(dst, a, bm, b *float64, n int) uint64
TEXT ·combineRows3AVX2(SB), NOSPLIT, $0-48
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ bm+16(FP), DX
	MOVQ b+24(FP), BX
	MOVQ n+32(FP), R10
	SHRQ $2, R10
	XORQ R8, R8
	XORQ R9, R9
	VMOVUPD jcOne<>(SB), Y15
	JMP  r3cond

r3loop:
	VMOVUPD (DI), Y0                    // x
	VMOVUPD (SI), Y1                    // alpha
	VMOVUPD (BX), Y4                    // beta
	VCMPPD  $2, jcNegInf<>(SB), Y1, Y2
	VCMPPD  $2, jcNegInf<>(SB), Y4, Y3
	VORPD   Y3, Y2, Y2                  // Kskip = either sentinel
	VADDPD  (DX), Y1, Y1
	VADDPD  Y4, Y1, Y1                  // m = (alpha + bm) + beta
	CORE_MASKS
	JE r3fast
	CORE_JACOBIAN
	JMP r3blend

r3fast:
	VMOVUPD Y8, Y13

r3blend:
	CORE_BLEND
	CORE_STORE_ROW
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, BX
	ADDQ $4, R9
	DECQ R10

r3cond:
	TESTQ R10, R10
	JNZ   r3loop
	VZEROUPPER
	MOVQ  R8, ret+40(FP)
	RET

// func stepCombineDualAVX2(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64
//
// One forward AND one backward trellis recursion step in a single call. The
// two recursions (plane set A with tableA, plane set B with tableB) are
// mutually independent, so running their per-entry work back to back gives
// the out-of-order core two adjacent, data-independent Jacobian chains per
// loop iteration — roughly a 1.4x throughput gain over single-step calls,
// which are limited by how few ~115-instruction iterations fit in the
// reorder window.
//
// Per 64-entry table row (combine_step.go layout) the destination row is
// rebuilt from its two candidates over n lanes (n a multiple of 4), with
// candidate A assigned first and candidate B folded via the combine core.
// Rows are stride bytes apart in all planes. fixA/fixB[entry] receive the
// per-entry fixup lane masks; fixup lanes are not stored. Returns the OR of
// all masks so the caller skips both fixup scans in the (overwhelmingly
// common) clean case.
//
// Frame locals: per-entry row pointers for leg A at 0/8/16/24 (srcA, bmA,
// srcB, bmB) and 32 (dst), for leg B at 40/48/56/64/72, entry index at 80.
TEXT ·stepCombineDualAVX2(SB), NOSPLIT, $88-104
	VMOVUPD jcOne<>(SB), Y15
	MOVQ $0, 80(SP)
	XORQ R12, R12

dcentry:
	MOVQ 80(SP), DX
	CMPQ DX, $64
	JGE  dcdone
	MOVQ stride+88(FP), R11
	MOVQ tableA+48(FP), BX
	MOVBLZX (BX)(DX*8), AX              // leg A dst row
	IMULQ R11, AX
	ADDQ dstA+0(FP), AX
	MOVQ AX, 32(SP)
	MOVBLZX 1(BX)(DX*8), AX             // leg A candidate A source row
	IMULQ R11, AX
	ADDQ srcA+8(FP), AX
	MOVQ AX, 0(SP)
	MOVBLZX 2(BX)(DX*8), AX             // leg A candidate A bm row
	IMULQ R11, AX
	ADDQ bmA+16(FP), AX
	MOVQ AX, 8(SP)
	MOVBLZX 3(BX)(DX*8), AX             // leg A candidate B source row
	IMULQ R11, AX
	ADDQ srcA+8(FP), AX
	MOVQ AX, 16(SP)
	MOVBLZX 4(BX)(DX*8), AX             // leg A candidate B bm row
	IMULQ R11, AX
	ADDQ bmA+16(FP), AX
	MOVQ AX, 24(SP)
	MOVQ tableB+56(FP), BX
	MOVBLZX (BX)(DX*8), AX              // leg B dst row
	IMULQ R11, AX
	ADDQ dstB+24(FP), AX
	MOVQ AX, 72(SP)
	MOVBLZX 1(BX)(DX*8), AX             // leg B candidate A source row
	IMULQ R11, AX
	ADDQ srcB+32(FP), AX
	MOVQ AX, 40(SP)
	MOVBLZX 2(BX)(DX*8), AX             // leg B candidate A bm row
	IMULQ R11, AX
	ADDQ bmB+40(FP), AX
	MOVQ AX, 48(SP)
	MOVBLZX 3(BX)(DX*8), AX             // leg B candidate B source row
	IMULQ R11, AX
	ADDQ srcB+32(FP), AX
	MOVQ AX, 56(SP)
	MOVBLZX 4(BX)(DX*8), AX             // leg B candidate B bm row
	IMULQ R11, AX
	ADDQ bmB+40(FP), AX
	MOVQ AX, 64(SP)
	XORQ R8, R8
	XORQ R13, R13
	XORQ R9, R9
	XORQ R10, R10
	MOVQ n+80(FP), R11
	SHLQ $3, R11

dcgroup:
	CMPQ R10, R11
	JGE  dcgdone
	MOVQ 0(SP), SI
	VMOVUPD (SI)(R10*1), Y1             // leg A srcA
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2   // KskipA
	MOVQ 8(SP), SI
	VADDPD (SI)(R10*1), Y1, Y1          // mA
	VBLENDVPD Y2, jcNegInf<>(SB), Y1, Y0 // x = skipA ? sentinel : mA
	MOVQ 16(SP), SI
	VMOVUPD (SI)(R10*1), Y1             // srcB
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2   // Kskip = KskipB
	MOVQ 24(SP), SI
	VADDPD (SI)(R10*1), Y1, Y1          // m = mB
	CORE_MASKS
	JE dcafast
	CORE_JACOBIAN
	JMP dcablend

dcafast:
	VMOVUPD Y8, Y13

dcablend:
	CORE_BLEND
	MOVQ 32(SP), DI
	CORE_STORE_STEP
	MOVQ 40(SP), SI
	VMOVUPD (SI)(R10*1), Y1             // leg B srcA
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2
	MOVQ 48(SP), SI
	VADDPD (SI)(R10*1), Y1, Y1
	VBLENDVPD Y2, jcNegInf<>(SB), Y1, Y0
	MOVQ 56(SP), SI
	VMOVUPD (SI)(R10*1), Y1
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2
	MOVQ 64(SP), SI
	VADDPD (SI)(R10*1), Y1, Y1
	CORE_MASKS
	JE dcbfast
	CORE_JACOBIAN
	JMP dcbblend

dcbfast:
	VMOVUPD Y8, Y13

dcbblend:
	CORE_BLEND
	VBLENDVPD Y2, Y0, Y13, Y13          // skip lanes keep x
	MOVQ 72(SP), DI
	VMOVUPD Y13, (DI)(R10*1)
	VMOVMSKPD Y5, AX                    // leg B fixups land in R13
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, R13
	ADDQ $32, R10
	ADDQ $4, R9
	JMP  dcgroup

dcgdone:
	MOVQ 80(SP), DX
	MOVQ fixA+64(FP), SI
	MOVQ R8, (SI)(DX*8)
	ORQ  R8, R12
	MOVQ fixB+72(FP), SI
	MOVQ R13, (SI)(DX*8)
	ORQ  R13, R12
	INCQ DX
	MOVQ DX, 80(SP)
	JMP  dcentry

dcdone:
	VZEROUPPER
	MOVQ R12, ret+96(FP)
	RET

// func stepAPPBlockAVX2(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int)
//
// A block of k consecutive APP accumulation steps in one call. Each step's
// num (u=1) and den (u=0) accumulators start at the sentinel and fold all
// 64 states' candidates (alpha + bm) + beta in table order — a serial
// maxStar chain whose latency cannot be hidden within one step. Interleaving
// the block is what buys the throughput: the entry loop is outermost and the
// step loop innermost, so the k steps' chains (2k accumulators) advance
// round-robin and their ~200-cycle Jacobian latencies overlap.
//
// Pointer layout: alpha rows for step j live at alpha + j*stride*64 (the
// caller passes the plane position of the block's first step); beta rows at
// beta + j*stride*64 (the caller pre-offsets beta by one row-plane so step j
// reads beta[t0+j+1]); branch metrics at bm + j*stride*4 (4 rows per step).
// acc holds k records of 72 bytes: {den[4]float64, num[4]float64,
// fix uint64}. The fix words are zeroed once per call and accumulate lane
// bits across lane groups (lane bases are distinct); the caller redoes
// flagged lanes' entire num+den accumulation in scalar code, so a poisoned
// lane accumulating garbage in place is harmless. The den/num records are
// re-sentineled per lane group and their final values stored to the num/den
// planes (row j at j*stride bytes).
//
// Frame locals: 0(SP) u=0 bm row offset, 8(SP) u=0 beta row offset,
// 16(SP) u=1 bm row offset, 24(SP) u=1 beta row offset, 32(SP) entry index,
// 40(SP) bm block stride.
TEXT ·stepAPPBlockAVX2(SB), NOSPLIT, $48-80
	VMOVUPD jcOne<>(SB), Y15
	MOVQ stride+64(FP), R8
	SHLQ $6, R8                         // plane stride: 64 rows per step
	MOVQ stride+64(FP), AX
	SHLQ $2, AX
	MOVQ AX, 40(SP)                     // bm block stride: 4 rows per step
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11

bazfix:
	MOVQ $0, 64(DI)
	ADDQ $72, DI
	DECQ R11
	JNZ  bazfix
	XORQ R9, R9
	XORQ R10, R10

bagroup:
	MOVQ n+56(FP), AX
	SHLQ $3, AX
	CMPQ R10, AX
	JGE  badone
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11
	VMOVUPD jcNegInf<>(SB), Y0

bainit:
	VMOVUPD Y0, (DI)
	VMOVUPD Y0, 32(DI)
	ADDQ $72, DI
	DECQ R11
	JNZ  bainit
	MOVQ $0, 32(SP)

baentry:
	MOVQ 32(SP), DX
	CMPQ DX, $64
	JGE  baedone
	MOVQ table+40(FP), SI
	MOVQ stride+64(FP), CX
	MOVBLZX (SI)(DX*8), AX              // alpha row s
	IMULQ CX, AX
	MOVQ alpha+16(FP), R12
	ADDQ AX, R12
	MOVBLZX 1(SI)(DX*8), AX             // u=0 branch-metric row
	IMULQ CX, AX
	MOVQ AX, 0(SP)
	MOVBLZX 2(SI)(DX*8), AX             // u=0 beta row
	IMULQ CX, AX
	MOVQ AX, 8(SP)
	MOVBLZX 3(SI)(DX*8), AX             // u=1 branch-metric row
	IMULQ CX, AX
	MOVQ AX, 16(SP)
	MOVBLZX 4(SI)(DX*8), AX             // u=1 beta row
	IMULQ CX, AX
	MOVQ AX, 24(SP)
	MOVQ beta+24(FP), R13
	MOVQ bm+32(FP), BX
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11

bajloop:
	VMOVUPD (R12)(R10*1), Y1            // a
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2
	MOVQ 0(SP), DX
	ADDQ BX, DX
	VADDPD (DX)(R10*1), Y1, Y1          // a + bm
	MOVQ 8(SP), DX
	ADDQ R13, DX
	VMOVUPD (DX)(R10*1), Y7             // b
	VCMPPD $2, jcNegInf<>(SB), Y7, Y6
	VORPD Y6, Y2, Y2                    // Kskip = aSent | bSent
	VADDPD Y7, Y1, Y1                   // m = (a + bm) + b
	VMOVUPD (DI), Y0                    // x = step j's den accumulator
	CORE_MASKS
	JE badfast
	CORE_JACOBIAN
	JMP badblend

badfast:
	VMOVUPD Y8, Y13

badblend:
	CORE_BLEND
	VBLENDVPD Y2, Y0, Y13, Y13          // skip lanes keep x
	VMOVUPD Y13, (DI)
	VMOVMSKPD Y5, AX
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, 64(DI)                     // fold fixups into step j's word
	VMOVUPD (R12)(R10*1), Y1            // a again, u=1 leg
	VCMPPD $2, jcNegInf<>(SB), Y1, Y2
	MOVQ 16(SP), DX
	ADDQ BX, DX
	VADDPD (DX)(R10*1), Y1, Y1
	MOVQ 24(SP), DX
	ADDQ R13, DX
	VMOVUPD (DX)(R10*1), Y7
	VCMPPD $2, jcNegInf<>(SB), Y7, Y6
	VORPD Y6, Y2, Y2
	VADDPD Y7, Y1, Y1
	VMOVUPD 32(DI), Y0                  // x = step j's num accumulator
	CORE_MASKS
	JE banfast
	CORE_JACOBIAN
	JMP banblend

banfast:
	VMOVUPD Y8, Y13

banblend:
	CORE_BLEND
	VBLENDVPD Y2, Y0, Y13, Y13
	VMOVUPD Y13, 32(DI)
	VMOVMSKPD Y5, AX
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, 64(DI)
	ADDQ R8, R12                        // next step's alpha row
	ADDQ R8, R13                        // next step's beta plane
	ADDQ 40(SP), BX                     // next step's bm rows
	ADDQ $72, DI                        // next step's accumulators
	DECQ R11
	JNZ  bajloop
	MOVQ 32(SP), DX
	INCQ DX
	MOVQ DX, 32(SP)
	JMP  baentry

baedone:
	MOVQ acc+48(FP), DI
	MOVQ num+0(FP), R12
	MOVQ den+8(FP), R13
	MOVQ k+72(FP), R11

bastore:
	VMOVUPD (DI), Y0
	VMOVUPD Y0, (R13)(R10*1)
	VMOVUPD 32(DI), Y0
	VMOVUPD Y0, (R12)(R10*1)
	ADDQ $72, DI
	MOVQ stride+64(FP), DX
	ADDQ DX, R12
	ADDQ DX, R13
	DECQ R11
	JNZ  bastore
	ADDQ $32, R10
	ADDQ $4, R9
	JMP  bagroup

badone:
	VZEROUPPER
	RET

// func normalizeLanesAVX2(plane *float64, n, stride int)
//
// Per-lane normalize of a 64-row metric plane: each lane's running maximum
// over the rows (pass 1) is subtracted from every finite value unless the
// lane is entirely sentinel (pass 2). Bit-identical to the scalar loops in
// batch.go: VMAXPD's NaN/equal resolution (return the second source, here
// the running maximum) matches `if x > max`, the GT_OS compare matches
// `x > sentinel` under NaN, and the subtraction is the same IEEE op.
TEXT ·normalizeLanesAVX2(SB), NOSPLIT, $0-24
	XORQ R10, R10

nlgroup:
	MOVQ n+8(FP), AX
	SHLQ $3, AX
	CMPQ R10, AX
	JGE  nldone
	MOVQ plane+0(FP), SI
	ADDQ R10, SI
	MOVQ stride+16(FP), DX
	VMOVUPD (SI), Y0                    // running max = row 0
	MOVQ SI, DI
	MOVQ $63, CX

nlmax:
	ADDQ DX, DI
	VMOVUPD (DI), Y1
	VMAXPD Y0, Y1, Y0                   // x > max ? x : max
	DECQ CX
	JNZ  nlmax
	VCMPPD $2, jcNegInf<>(SB), Y0, Y2   // lane entirely sentinel
	MOVQ SI, DI
	MOVQ $64, CX

nlsub:
	VMOVUPD (DI), Y1
	VCMPPD $14, jcNegInf<>(SB), Y1, Y3  // x > sentinel
	VANDNPD Y3, Y2, Y3                  // ... and lane not all-sentinel
	VSUBPD Y0, Y1, Y4                   // x - max
	VBLENDVPD Y3, Y4, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ DX, DI
	DECQ CX
	JNZ  nlsub
	ADDQ $32, R10
	JMP  nlgroup

nldone:
	VZEROUPPER
	RET

// ---------------------------------------------------------------------------
// AVX-512 forms of the step kernels: 8 lanes per vector, comparisons landing
// in opmask registers, and merging VMOVAPD replacing every VBLENDVPD. Each
// packed operation is lane-wise IEEE-identical to its 4-lane counterpart, so
// bit-identity with the scalar decoder is inherited unchanged. The win is
// structural: the Jacobian evaluation is a ~200-cycle dependency chain the
// core overlaps poorly, and 8-lane vectors halve the number of chains per
// trellis step.
//
// Opmask contract (core Z macros):
//   Inputs:  Z0 = x, Z1 = m, K2 = skip, Z15 = 1.0, R8 = fixup acc,
//            R9 = lane base.
//   CORE_MASKS_Z sets K1 = Ksx, K3 = Ksm, K4 = Kfar, K5 = fixup, K7 = Kexcl,
//   Z8 = a, and leaves CF = 1 iff all 8 lanes are excluded: JC <fast label>
//   must follow, where the fast label does VMOVAPD Z8, Z13 and falls through
//   to CORE_BLEND_Z. Clobbers Z6, Z10-Z14, Y13, K0, K6, K7, AX, CX.
//   Preserves Z0, Z1, K2, Z15.

#define CORE_MASKS_Z \
	VCMPPD $2, jcNegInf<>(SB), Z0, K1   /* Ksx = x <= sentinel          */ \
	VCMPPD $2, jcNegInf<>(SB), Z1, K3   /* Ksm = m <= sentinel          */ \
	VSUBPD Z1, Z0, Z6                   /* d = x - m                    */ \
	VCMPPD $3, Z6, Z6, K5               /* Kun = isNaN(d)               */ \
	VPXORQ Z7, Z7, Z7                   \
	VCMPPD $1, Z7, Z6, K6               /* Kswap = d < 0                */ \
	VMOVAPD Z0, Z8                      \
	VMOVAPD Z1, K6, Z8                  /* a = max candidate            */ \
	VANDPD jcAbs<>(SB), Z6, Z6          /* d = |d|                      */ \
	VCMPPD $13, jcTen<>(SB), Z6, K4     /* Kfar = d >= 10               */ \
	KORW K1, K2, K7                     \
	KORW K3, K7, K7                     /* skip|Ksx|Ksm                 */ \
	KANDNW K5, K7, K5                   /* fixup = Kun & ~that          */ \
	KORW K4, K7, K7                     \
	KORW K5, K7, K7                     /* Kexcl: no Jacobian needed    */ \
	KORTESTB K7, K7                     /* CF = 1 iff all excluded      */

#define CORE_JACOBIAN_Z \
	VMOVAPD Z6, Z11                     \
	VMOVAPD Z15, K7, Z11                /* din = excl ? 1.0 : d         */ \
	/* ---- exp(-din): math.Exp avxfma path, din in [0, 10) --------- */ \
	VXORPD jcSign<>(SB), Z11, Z11       /* xe = -din                    */ \
	VMULPD jcLog2e<>(SB), Z11, Z12      \
	VCVTPD2DQ Z12, Y13                  /* k = round(xe*log2(e))        */ \
	VCVTDQ2PD Y13, Z14                  \
	VMOVAPD Z11, Z12                    \
	VFNMADD231PD jcLn2U<>(SB), Z14, Z12 /* r = xe - kf*Ln2Hi            */ \
	VFNMADD231PD jcLn2L<>(SB), Z14, Z12 /* r -= kf*Ln2Lo                */ \
	VMULPD jcSixteenth<>(SB), Z12, Z12  \
	VMOVUPD jcC8<>(SB), Z11             \
	VFMADD213PD jcC7<>(SB), Z12, Z11    \
	VFMADD213PD jcC6<>(SB), Z12, Z11    \
	VFMADD213PD jcC5<>(SB), Z12, Z11    \
	VFMADD213PD jcC4<>(SB), Z12, Z11    \
	VFMADD213PD jcC3<>(SB), Z12, Z11    \
	VFMADD213PD jcHalf<>(SB), Z12, Z11  \
	VFMADD213PD jcOne<>(SB), Z12, Z11   \
	VMULPD Z11, Z12, Z12                /* s = r*q                      */ \
	VADDPD jcTwo<>(SB), Z12, Z14        \
	VMULPD Z14, Z12, Z12                /* s = s*(s+2), 1st squaring    */ \
	VADDPD jcTwo<>(SB), Z12, Z14        \
	VMULPD Z14, Z12, Z12                \
	VADDPD jcTwo<>(SB), Z12, Z14        \
	VMULPD Z14, Z12, Z12                \
	VADDPD jcTwo<>(SB), Z12, Z14        \
	VFMADD213PD jcOne<>(SB), Z14, Z12   /* s = s*(s+2) + 1              */ \
	VPADDD jcBias<>(SB), Y13, Y13       /* ldexp: 2^k via int bits      */ \
	VPMOVZXDQ Y13, Z14                  \
	VPSLLQ $52, Z14, Z14                \
	VMULPD Z14, Z12, Z12                /* v = exp(-din), in (4e-5, 1]  */ \
	/* ---- log1p(v): math.Log1p fast paths ------------------------- */ \
	VCMPPD $1, jcSqrt2M1<>(SB), Z12, K6 /* Ksimple = v < Sqrt(2)-1      */ \
	VADDPD Z15, Z12, Z13                /* u = 1 + v                    */ \
	VSUBPD Z12, Z13, Z14                \
	VSUBPD Z14, Z15, Z14                /* cA = 1 - (u-v)               */ \
	VSUBPD Z15, Z13, Z10                \
	VSUBPD Z10, Z12, Z10                /* cB = v - (u-1)               */ \
	VCMPPD $13, jcTwo<>(SB), Z13, K7    /* exponent k0 > 0 iff u >= 2   */ \
	VMOVAPD Z14, K7, Z10                \
	VDIVPD Z13, Z10, Z10                /* c = (k0>0 ? cA : cB) / u     */ \
	VPANDQ jcMant<>(SB), Z13, Z14       /* iu = bits(u) & mantissa      */ \
	VPCMPQ $1, jcBound<>(SB), Z14, K7   /* KnoInc = iu < sqrt2 mantissa */ \
	VPORQ jcOne<>(SB), Z14, Z13         \
	VPORQ jcHalf<>(SB), Z14, Z6         \
	VMOVAPD Z13, K7, Z6                 /* unorm: u or u/2 renormalized */ \
	VMOVUPD jcHidden<>(SB), Z13         \
	VPSUBQ Z14, Z13, Z13                \
	VPSRLQ $2, Z13, Z13                 \
	VMOVAPD Z14, K7, Z13                /* iu2 per log1p.go             */ \
	VPTESTNMQ Z13, Z13, K0              /* iu2 == 0: |f| < 2^-20 branch */ \
	KANDNW K0, K6, K0                   /* ... only on the else path    */ \
	KORW K0, K5, K5                     /* fold into fixup mask         */ \
	VSUBPD Z15, Z6, Z6                  \
	VMOVAPD Z12, K6, Z6                 /* f = simple ? v : unorm-1     */ \
	KORW K6, K7, K7                     /* Kk0: lanes with k == 0       */ \
	VMULPD jcHalf<>(SB), Z6, Z11        \
	VMULPD Z6, Z11, Z11                 /* hfsq = (0.5*f)*f             */ \
	VADDPD jcTwo<>(SB), Z6, Z12         \
	VDIVPD Z12, Z6, Z12                 /* s = f/(2+f)                  */ \
	VMULPD Z12, Z12, Z14                /* z = s*s                      */ \
	VMOVUPD jcLp7<>(SB), Z13            /* Horner chain, no FMA         */ \
	VMULPD Z13, Z14, Z13                \
	VADDPD jcLp6<>(SB), Z13, Z13        \
	VMULPD Z14, Z13, Z13                \
	VADDPD jcLp5<>(SB), Z13, Z13        \
	VMULPD Z14, Z13, Z13                \
	VADDPD jcLp4<>(SB), Z13, Z13        \
	VMULPD Z14, Z13, Z13                \
	VADDPD jcLp3<>(SB), Z13, Z13        \
	VMULPD Z14, Z13, Z13                \
	VADDPD jcLp2<>(SB), Z13, Z13        \
	VMULPD Z14, Z13, Z13                \
	VADDPD jcLp1<>(SB), Z13, Z13        \
	VMULPD Z13, Z14, Z13                /* R = z*poly                   */ \
	VADDPD Z11, Z13, Z13                \
	VMULPD Z13, Z12, Z13                /* sp = s*(hfsq+R)              */ \
	VSUBPD Z13, Z11, Z14                \
	VSUBPD Z14, Z6, Z14                 /* k=0: f - (hfsq-sp)           */ \
	VADDPD jcLn2Lo<>(SB), Z10, Z10      \
	VADDPD Z10, Z13, Z13                \
	VSUBPD Z13, Z11, Z13                \
	VSUBPD Z6, Z13, Z13                 \
	VMOVUPD jcLn2Hi<>(SB), Z11          \
	VSUBPD Z13, Z11, Z13                /* k=1: Ln2Hi - ((hfsq-(sp+(Ln2Lo+c)))-f) */ \
	VMOVAPD Z14, K7, Z13                /* g = log1p(exp(-d))           */ \
	VADDPD Z13, Z8, Z13                 /* a + g                        */

#define CORE_BLEND_Z \
	VMOVAPD Z8, K4, Z13                 /* far lanes: plain max         */ \
	VMOVAPD Z0, K3, Z13                 /* m sentinel: keep x           */ \
	VMOVAPD Z1, K1, Z13                 /* x sentinel: take m           */

#define CORE_FIXBITS_Z \
	KMOVW K5, AX                        \
	MOVQ R9, CX                         \
	SHLQ CX, AX                         \
	ORQ AX, R8

#define CORE_STORE_STEP_Z \
	VMOVAPD Z0, K2, Z13                 /* skip lanes keep x            */ \
	VMOVUPD Z13, (DI)(R10*1)            \
	CORE_FIXBITS_Z

// func stepCombineDualAVX512(dstA, srcA, bmA, dstB, srcB, bmB *float64, tableA, tableB *uint8, fixA, fixB *uint64, n, stride int) uint64
//
// The 8-lane form of stepCombineDualAVX2 (n a multiple of 8); same frame
// and table layout, same fixup reporting.
TEXT ·stepCombineDualAVX512(SB), NOSPLIT, $88-104
	VMOVUPD jcOne<>(SB), Z15
	MOVQ $0, 80(SP)
	XORQ R12, R12

dzentry:
	MOVQ 80(SP), DX
	CMPQ DX, $64
	JGE  dzdone
	MOVQ stride+88(FP), R11
	MOVQ tableA+48(FP), BX
	MOVBLZX (BX)(DX*8), AX              // leg A dst row
	IMULQ R11, AX
	ADDQ dstA+0(FP), AX
	MOVQ AX, 32(SP)
	MOVBLZX 1(BX)(DX*8), AX             // leg A candidate A source row
	IMULQ R11, AX
	ADDQ srcA+8(FP), AX
	MOVQ AX, 0(SP)
	MOVBLZX 2(BX)(DX*8), AX             // leg A candidate A bm row
	IMULQ R11, AX
	ADDQ bmA+16(FP), AX
	MOVQ AX, 8(SP)
	MOVBLZX 3(BX)(DX*8), AX             // leg A candidate B source row
	IMULQ R11, AX
	ADDQ srcA+8(FP), AX
	MOVQ AX, 16(SP)
	MOVBLZX 4(BX)(DX*8), AX             // leg A candidate B bm row
	IMULQ R11, AX
	ADDQ bmA+16(FP), AX
	MOVQ AX, 24(SP)
	MOVQ tableB+56(FP), BX
	MOVBLZX (BX)(DX*8), AX              // leg B dst row
	IMULQ R11, AX
	ADDQ dstB+24(FP), AX
	MOVQ AX, 72(SP)
	MOVBLZX 1(BX)(DX*8), AX             // leg B candidate A source row
	IMULQ R11, AX
	ADDQ srcB+32(FP), AX
	MOVQ AX, 40(SP)
	MOVBLZX 2(BX)(DX*8), AX             // leg B candidate A bm row
	IMULQ R11, AX
	ADDQ bmB+40(FP), AX
	MOVQ AX, 48(SP)
	MOVBLZX 3(BX)(DX*8), AX             // leg B candidate B source row
	IMULQ R11, AX
	ADDQ srcB+32(FP), AX
	MOVQ AX, 56(SP)
	MOVBLZX 4(BX)(DX*8), AX             // leg B candidate B bm row
	IMULQ R11, AX
	ADDQ bmB+40(FP), AX
	MOVQ AX, 64(SP)
	XORQ R8, R8
	XORQ R13, R13
	XORQ R9, R9
	XORQ R10, R10
	MOVQ n+80(FP), R11
	SHLQ $3, R11

dzgroup:
	CMPQ R10, R11
	JGE  dzgdone
	MOVQ 0(SP), SI
	VMOVUPD (SI)(R10*1), Z1             // leg A srcA
	VCMPPD $2, jcNegInf<>(SB), Z1, K2   // KskipA
	MOVQ 8(SP), SI
	VADDPD (SI)(R10*1), Z1, Z1          // mA
	VMOVAPD Z1, Z0
	VMOVUPD jcNegInf<>(SB), K2, Z0      // x = skipA ? sentinel : mA
	MOVQ 16(SP), SI
	VMOVUPD (SI)(R10*1), Z1             // srcB
	VCMPPD $2, jcNegInf<>(SB), Z1, K2   // Kskip = KskipB
	MOVQ 24(SP), SI
	VADDPD (SI)(R10*1), Z1, Z1          // m = mB
	CORE_MASKS_Z
	JC dzafast
	CORE_JACOBIAN_Z
	JMP dzablend

dzafast:
	VMOVAPD Z8, Z13

dzablend:
	CORE_BLEND_Z
	MOVQ 32(SP), DI
	CORE_STORE_STEP_Z
	MOVQ 40(SP), SI
	VMOVUPD (SI)(R10*1), Z1             // leg B srcA
	VCMPPD $2, jcNegInf<>(SB), Z1, K2
	MOVQ 48(SP), SI
	VADDPD (SI)(R10*1), Z1, Z1
	VMOVAPD Z1, Z0
	VMOVUPD jcNegInf<>(SB), K2, Z0
	MOVQ 56(SP), SI
	VMOVUPD (SI)(R10*1), Z1
	VCMPPD $2, jcNegInf<>(SB), Z1, K2
	MOVQ 64(SP), SI
	VADDPD (SI)(R10*1), Z1, Z1
	CORE_MASKS_Z
	JC dzbfast
	CORE_JACOBIAN_Z
	JMP dzbblend

dzbfast:
	VMOVAPD Z8, Z13

dzbblend:
	CORE_BLEND_Z
	VMOVAPD Z0, K2, Z13                 // skip lanes keep x
	MOVQ 72(SP), DI
	VMOVUPD Z13, (DI)(R10*1)
	KMOVW K5, AX                        // leg B fixups land in R13
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, R13
	ADDQ $64, R10
	ADDQ $8, R9
	JMP  dzgroup

dzgdone:
	MOVQ 80(SP), DX
	MOVQ fixA+64(FP), SI
	MOVQ R8, (SI)(DX*8)
	ORQ  R8, R12
	MOVQ fixB+72(FP), SI
	MOVQ R13, (SI)(DX*8)
	ORQ  R13, R12
	INCQ DX
	MOVQ DX, 80(SP)
	JMP  dzentry

dzdone:
	VZEROUPPER
	MOVQ R12, ret+96(FP)
	RET

// func stepAPPBlockAVX512(num, den, alpha, beta, bm *float64, table *uint8, acc *uint64, n, stride, k int)
//
// The 8-lane form of stepAPPBlockAVX2 (n a multiple of 8). The acc records
// widen to 136 bytes: {den[8]float64, num[8]float64, fix uint64}; pointer
// layout is otherwise identical.
TEXT ·stepAPPBlockAVX512(SB), NOSPLIT, $48-80
	VMOVUPD jcOne<>(SB), Z15
	MOVQ stride+64(FP), R8
	SHLQ $6, R8                         // plane stride: 64 rows per step
	MOVQ stride+64(FP), AX
	SHLQ $2, AX
	MOVQ AX, 40(SP)                     // bm block stride: 4 rows per step
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11

bzzfix:
	MOVQ $0, 128(DI)
	ADDQ $136, DI
	DECQ R11
	JNZ  bzzfix
	XORQ R9, R9
	XORQ R10, R10

bzgroup:
	MOVQ n+56(FP), AX
	SHLQ $3, AX
	CMPQ R10, AX
	JGE  bzdone
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11
	VMOVUPD jcNegInf<>(SB), Z0

bzinit:
	VMOVUPD Z0, (DI)
	VMOVUPD Z0, 64(DI)
	ADDQ $136, DI
	DECQ R11
	JNZ  bzinit
	MOVQ $0, 32(SP)

bzentry:
	MOVQ 32(SP), DX
	CMPQ DX, $64
	JGE  bzedone
	MOVQ table+40(FP), SI
	MOVQ stride+64(FP), CX
	MOVBLZX (SI)(DX*8), AX              // alpha row s
	IMULQ CX, AX
	MOVQ alpha+16(FP), R12
	ADDQ AX, R12
	MOVBLZX 1(SI)(DX*8), AX             // u=0 branch-metric row
	IMULQ CX, AX
	MOVQ AX, 0(SP)
	MOVBLZX 2(SI)(DX*8), AX             // u=0 beta row
	IMULQ CX, AX
	MOVQ AX, 8(SP)
	MOVBLZX 3(SI)(DX*8), AX             // u=1 branch-metric row
	IMULQ CX, AX
	MOVQ AX, 16(SP)
	MOVBLZX 4(SI)(DX*8), AX             // u=1 beta row
	IMULQ CX, AX
	MOVQ AX, 24(SP)
	MOVQ beta+24(FP), R13
	MOVQ bm+32(FP), BX
	MOVQ acc+48(FP), DI
	MOVQ k+72(FP), R11

bzjloop:
	VMOVUPD (R12)(R10*1), Z1            // a
	VCMPPD $2, jcNegInf<>(SB), Z1, K2
	MOVQ 0(SP), DX
	ADDQ BX, DX
	VADDPD (DX)(R10*1), Z1, Z1          // a + bm
	MOVQ 8(SP), DX
	ADDQ R13, DX
	VMOVUPD (DX)(R10*1), Z7             // b
	VCMPPD $2, jcNegInf<>(SB), Z7, K6
	KORW K6, K2, K2                     // Kskip = aSent | bSent
	VADDPD Z7, Z1, Z1                   // m = (a + bm) + b
	VMOVUPD (DI), Z0                    // x = step j's den accumulator
	CORE_MASKS_Z
	JC bzdfast
	CORE_JACOBIAN_Z
	JMP bzdblend

bzdfast:
	VMOVAPD Z8, Z13

bzdblend:
	CORE_BLEND_Z
	VMOVAPD Z0, K2, Z13                 // skip lanes keep x
	VMOVUPD Z13, (DI)
	KMOVW K5, AX
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, 128(DI)                    // fold fixups into step j's word
	VMOVUPD (R12)(R10*1), Z1            // a again, u=1 leg
	VCMPPD $2, jcNegInf<>(SB), Z1, K2
	MOVQ 16(SP), DX
	ADDQ BX, DX
	VADDPD (DX)(R10*1), Z1, Z1
	MOVQ 24(SP), DX
	ADDQ R13, DX
	VMOVUPD (DX)(R10*1), Z7
	VCMPPD $2, jcNegInf<>(SB), Z7, K6
	KORW K6, K2, K2
	VADDPD Z7, Z1, Z1
	VMOVUPD 64(DI), Z0                  // x = step j's num accumulator
	CORE_MASKS_Z
	JC bznfast
	CORE_JACOBIAN_Z
	JMP bznblend

bznfast:
	VMOVAPD Z8, Z13

bznblend:
	CORE_BLEND_Z
	VMOVAPD Z0, K2, Z13
	VMOVUPD Z13, 64(DI)
	KMOVW K5, AX
	MOVQ R9, CX
	SHLQ CX, AX
	ORQ  AX, 128(DI)
	ADDQ R8, R12                        // next step's alpha row
	ADDQ R8, R13                        // next step's beta plane
	ADDQ 40(SP), BX                     // next step's bm rows
	ADDQ $136, DI                       // next step's accumulators
	DECQ R11
	JNZ  bzjloop
	MOVQ 32(SP), DX
	INCQ DX
	MOVQ DX, 32(SP)
	JMP  bzentry

bzedone:
	MOVQ acc+48(FP), DI
	MOVQ num+0(FP), R12
	MOVQ den+8(FP), R13
	MOVQ k+72(FP), R11

bzstore:
	VMOVUPD (DI), Z0
	VMOVUPD Z0, (R13)(R10*1)
	VMOVUPD 64(DI), Z0
	VMOVUPD Z0, (R12)(R10*1)
	ADDQ $136, DI
	MOVQ stride+64(FP), DX
	ADDQ DX, R12
	ADDQ DX, R13
	DECQ R11
	JNZ  bzstore
	ADDQ $64, R10
	ADDQ $8, R9
	JMP  bzgroup

bzdone:
	VZEROUPPER
	RET

// func normalizeLanesAVX512(plane *float64, n, stride int)
//
// The 8-lane form of normalizeLanesAVX2 (n a multiple of 8). VMAXPD's ZMM
// form has the same per-lane NaN/equal resolution, so bit-identity with the
// scalar passes is inherited.
TEXT ·normalizeLanesAVX512(SB), NOSPLIT, $0-24
	XORQ R10, R10

nzgroup:
	MOVQ n+8(FP), AX
	SHLQ $3, AX
	CMPQ R10, AX
	JGE  nzdone
	MOVQ plane+0(FP), SI
	ADDQ R10, SI
	MOVQ stride+16(FP), DX
	VMOVUPD (SI), Z0                    // running max = row 0
	MOVQ SI, DI
	MOVQ $63, CX

nzmax:
	ADDQ DX, DI
	VMOVUPD (DI), Z1
	VMAXPD Z0, Z1, Z0                   // x > max ? x : max
	DECQ CX
	JNZ  nzmax
	VCMPPD $2, jcNegInf<>(SB), Z0, K2   // lane entirely sentinel
	MOVQ SI, DI
	MOVQ $64, CX

nzsub:
	VMOVUPD (DI), Z1
	VCMPPD $14, jcNegInf<>(SB), Z1, K3  // x > sentinel
	KANDNW K3, K2, K3                   // ... and lane not all-sentinel
	VSUBPD Z0, Z1, Z4                   // x - max
	VMOVAPD Z4, K3, Z1
	VMOVUPD Z1, (DI)
	ADDQ DX, DI
	DECQ CX
	JNZ  nzsub
	ADDQ $64, R10
	JMP  nzgroup

nzdone:
	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
