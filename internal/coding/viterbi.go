package coding

// DecodeViterbi runs a soft-decision Viterbi decoder over the rate-1/2
// channel LLRs (use DepunctureLLR first for punctured rates) and returns
// the nInfo decoded information bits. The trellis is assumed terminated in
// the all-zero state by the TailBits appended by Encode.
//
// Viterbi yields maximum-likelihood *sequence* decisions but no per-bit
// confidence; it exists as the baseline decoder against which the
// soft-output BCJR decoder is compared (ablation in DESIGN.md §4).
func DecodeViterbi(llrs []float64, nInfo int) []byte {
	var w Workspace
	return w.DecodeViterbi(llrs, nInfo)
}

// DecodeViterbi is the workspace form of the package-level DecodeViterbi:
// same inputs, bit-identical output, zero steady-state allocations. The
// returned slice aliases the workspace and is valid until its next call.
func (w *Workspace) DecodeViterbi(llrs []float64, nInfo int) []byte {
	steps := nInfo + TailBits
	llrs = w.padLLRs(llrs, steps)
	const negInf = -1e30
	w.metric = growF(w.metric, numStates)
	w.next = growF(w.next, numStates)
	metric, next := w.metric, w.next
	metric[0] = 0
	for s := 1; s < numStates; s++ {
		metric[s] = negInf
	}
	// survivors[t*numStates+s] holds the predecessor state of the winning
	// branch into state s at step t. Both branches entering a state carry
	// the same input bit (the state's top bit), so the input is recovered
	// from the state itself during traceback. The plane is cleared so that
	// a reused workspace matches a fresh zeroed allocation even on inputs
	// that leave states unreachable.
	w.survivors = growB(w.survivors, steps*numStates)
	survivors := w.survivors
	clear(survivors)
	tr := theTrellis
	for t := 0; t < steps; t++ {
		bm := branchMetrics(llrs[2*t], llrs[2*t+1])
		row := survivors[t*numStates : (t+1)*numStates : (t+1)*numStates]
		for s := range next {
			next[s] = negInf
		}
		for s := 0; s < numStates; s++ {
			m := metric[s]
			if m <= negInf {
				continue
			}
			for u := 0; u < 2; u++ {
				ns := tr.nextState[s][u]
				cand := m + bm[tr.output[s][u]]
				if cand > next[ns] {
					next[ns] = cand
					row[ns] = uint8(s)
				}
			}
		}
		metric, next = next, metric
	}
	w.metric, w.next = metric, next
	// Traceback from state 0 (terminated trellis). The input bit consumed
	// when entering state s is s's most significant state bit.
	w.info = growB(w.info, steps)
	info := w.info
	state := uint8(0)
	for t := steps - 1; t >= 0; t-- {
		info[t] = state >> (Constraint - 2) & 1
		state = survivors[t*numStates+int(state)]
	}
	return info[:nInfo]
}

// branchMetric is the log-likelihood contribution of a branch emitting the
// coded bit pair o (out0 in bit 1, out1 in bit 0) given channel LLRs l0,l1.
// With the convention LLR>0 <=> bit 1, the metric for coded bit c with LLR
// l is +l/2 if c=1, -l/2 if c=0 (the constant common term cancels). The
// decoder inner loops use the per-step branchMetrics table instead; this
// form remains for tests and documentation.
func branchMetric(o uint8, l0, l1 float64) float64 {
	m := -0.5 * (l0 + l1)
	if o&2 != 0 {
		m += l0
	}
	if o&1 != 0 {
		m += l1
	}
	return m
}

// HardToLLR converts hard-decision bits into saturated LLRs of magnitude
// mag, for driving the soft decoders with hard-decision inputs in tests.
func HardToLLR(bits []byte, mag float64) []float64 {
	llrs := make([]float64, len(bits))
	for i, b := range bits {
		if b != 0 {
			llrs[i] = mag
		} else {
			llrs[i] = -mag
		}
	}
	return llrs
}
