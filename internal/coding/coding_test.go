package coding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softrate/internal/bitutil"
)

func TestEncodeImpulseResponse(t *testing.T) {
	// A single 1 followed by zeros must emit the generator polynomials as
	// the two output streams: g0=1011011, g1=1111001.
	coded := Encode([]byte{1})
	wantOut0 := []byte{1, 0, 1, 1, 0, 1, 1}
	wantOut1 := []byte{1, 1, 1, 1, 0, 0, 1}
	for i := 0; i < 7; i++ {
		if coded[2*i] != wantOut0[i] || coded[2*i+1] != wantOut1[i] {
			t.Fatalf("impulse response mismatch at step %d: got (%d,%d) want (%d,%d)",
				i, coded[2*i], coded[2*i+1], wantOut0[i], wantOut1[i])
		}
	}
}

func TestEncodeAllZeros(t *testing.T) {
	coded := Encode(make([]byte, 20))
	for i, b := range coded {
		if b != 0 {
			t.Fatalf("all-zero input produced 1 at position %d", i)
		}
	}
	if len(coded) != CodedLen(20) {
		t.Fatalf("coded length %d, want %d", len(coded), CodedLen(20))
	}
}

func TestEncodeLinearity(t *testing.T) {
	// Convolutional codes are linear: enc(a XOR b) == enc(a) XOR enc(b).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := bitutil.RandomBits(rng, n)
		b := bitutil.RandomBits(rng, n)
		ab := bitutil.XORBits(a, b)
		ea, eb, eab := Encode(a), Encode(b), Encode(ab)
		for i := range eab {
			if eab[i] != ea[i]^eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreeDistance(t *testing.T) {
	// The (133,171) K=7 code has free distance 10: the minimum-weight
	// nonzero codeword over short inputs must weigh exactly 10.
	best := 1 << 30
	for n := 1; n <= 8; n++ {
		for v := 1; v < 1<<n; v++ {
			info := make([]byte, n)
			for i := 0; i < n; i++ {
				info[i] = byte(v >> i & 1)
			}
			w := 0
			for _, b := range Encode(info) {
				w += int(b)
			}
			if w < best {
				best = w
			}
		}
	}
	if best != 10 {
		t.Fatalf("free distance = %d, want 10", best)
	}
}

func TestPunctureLengths(t *testing.T) {
	coded := make([]byte, 24)
	if got := len(Puncture(coded, Rate12)); got != 24 {
		t.Fatalf("Rate12 puncture length %d, want 24", got)
	}
	if got := len(Puncture(coded, Rate23)); got != 18 {
		t.Fatalf("Rate23 puncture length %d, want 18", got)
	}
	if got := len(Puncture(coded, Rate34)); got != 16 {
		t.Fatalf("Rate34 puncture length %d, want 16", got)
	}
}

func TestPuncturedLenMatchesPuncture(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		coded := bitutil.RandomBits(rng, n)
		for _, r := range []CodeRate{Rate12, Rate23, Rate34} {
			if len(Puncture(coded, r)) != PuncturedLen(n, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDepunctureInverse(t *testing.T) {
	// Depuncturing the punctured stream restores kept positions and puts
	// erasure zeros elsewhere.
	rng := rand.New(rand.NewSource(7))
	nCoded := 60
	llrs := make([]float64, nCoded)
	for i := range llrs {
		llrs[i] = rng.NormFloat64() + 2 // nonzero with overwhelming probability
	}
	for _, r := range []CodeRate{Rate12, Rate23, Rate34} {
		hard := make([]byte, nCoded)
		punctured := Puncture(hard, r)
		keptLLR := make([]float64, 0, len(punctured))
		pat := r.puncturePattern()
		for i := 0; i < nCoded; i++ {
			if pat[i%len(pat)] {
				keptLLR = append(keptLLR, llrs[i])
			}
		}
		back := DepunctureLLR(keptLLR, r, nCoded)
		for i := 0; i < nCoded; i++ {
			if pat[i%len(pat)] {
				if back[i] != llrs[i] {
					t.Fatalf("rate %v: kept position %d not restored", r, i)
				}
			} else if back[i] != 0 {
				t.Fatalf("rate %v: punctured position %d not erased", r, i)
			}
		}
	}
}

func TestCodeRateStringsAndFractions(t *testing.T) {
	cases := []struct {
		r    CodeRate
		s    string
		num  int
		den  int
		want float64
	}{
		{Rate12, "1/2", 1, 2, 0.5},
		{Rate23, "2/3", 2, 3, 2.0 / 3},
		{Rate34, "3/4", 3, 4, 0.75},
	}
	for _, c := range cases {
		if c.r.String() != c.s {
			t.Errorf("String() = %q want %q", c.r.String(), c.s)
		}
		n, d := c.r.Fraction()
		if n != c.num || d != c.den {
			t.Errorf("Fraction() = %d/%d want %d/%d", n, d, c.num, c.den)
		}
		if math.Abs(c.r.Value()-c.want) > 1e-12 {
			t.Errorf("Value() = %v want %v", c.r.Value(), c.want)
		}
	}
}

func noiselessRoundTrip(t *testing.T, decode func([]float64, int) []byte) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		info := bitutil.RandomBits(rng, n)
		for _, r := range []CodeRate{Rate12, Rate23, Rate34} {
			tx := Puncture(Encode(info), r)
			llrs := DepunctureLLR(HardToLLR(tx, 8), r, CodedLen(n))
			got := decode(llrs, n)
			if bitutil.CountBitErrors(got, info) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestViterbiNoiselessRoundTrip(t *testing.T) {
	noiselessRoundTrip(t, DecodeViterbi)
}

func TestBCJRNoiselessRoundTrip(t *testing.T) {
	noiselessRoundTrip(t, func(llrs []float64, n int) []byte {
		bits, _ := DecodeBCJR(llrs, n, LogMAP)
		return bits
	})
	noiselessRoundTrip(t, func(llrs []float64, n int) []byte {
		bits, _ := DecodeBCJR(llrs, n, MaxLog)
		return bits
	})
}

// addAWGN maps coded bits to BPSK (+1/-1), adds Gaussian noise of standard
// deviation sigma and returns channel LLRs 2y/sigma^2.
func addAWGN(rng *rand.Rand, coded []byte, sigma float64) []float64 {
	llrs := make([]float64, len(coded))
	for i, b := range coded {
		x := -1.0
		if b != 0 {
			x = 1.0
		}
		y := x + sigma*rng.NormFloat64()
		llrs[i] = 2 * y / (sigma * sigma)
	}
	return llrs
}

func TestViterbiCorrectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 512
	// sigma=0.6 is ~4.4 dB Eb/N0 at rate 1/2: raw BER ~5%, coded BER ~0.
	totalErrs := 0
	for trial := 0; trial < 20; trial++ {
		info := bitutil.RandomBits(rng, n)
		llrs := addAWGN(rng, Encode(info), 0.6)
		got := DecodeViterbi(llrs, n)
		totalErrs += bitutil.CountBitErrors(got, info)
	}
	if totalErrs > 5 {
		t.Fatalf("Viterbi left %d errors over %d bits at high SNR", totalErrs, 20*n)
	}
}

func TestBCJRMatchesViterbiAtHighSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 256
	for trial := 0; trial < 10; trial++ {
		info := bitutil.RandomBits(rng, n)
		llrs := addAWGN(rng, Encode(info), 0.5)
		v := DecodeViterbi(llrs, n)
		b, _ := DecodeBCJR(llrs, n, LogMAP)
		if bitutil.CountBitErrors(v, b) != 0 {
			t.Fatalf("trial %d: BCJR and Viterbi disagree at high SNR", trial)
		}
	}
}

// TestBCJRLLRCalibration is the keystone property behind Equation 3 of the
// paper: p_k = 1/(1+exp(s_k)) must match the empirically observed error
// rate of bits carrying hint s_k. We bucket decoded bits by hint magnitude
// and compare predicted vs measured error probability.
func TestBCJRLLRCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 600
	sigma := 1.05 // low SNR so there are plenty of errors to measure
	type bucket struct {
		predicted float64
		errors    float64
		count     float64
	}
	buckets := map[int]*bucket{}
	for trial := 0; trial < 60; trial++ {
		info := bitutil.RandomBits(rng, n)
		llrs := addAWGN(rng, Encode(info), sigma)
		got, app := DecodeBCJR(llrs, n, LogMAP)
		for k := 0; k < n; k++ {
			s := math.Abs(app[k])
			// Above s=4 the error probability drops under ~2% and a bucket
			// collects only a handful of (bursty, correlated) error events;
			// the comparison is statistically meaningless there.
			if s > 4 {
				continue
			}
			idx := int(s / 0.5)
			b := buckets[idx]
			if b == nil {
				b = &bucket{}
				buckets[idx] = b
			}
			b.predicted += 1 / (1 + math.Exp(s))
			b.count++
			if got[k] != info[k] {
				b.errors++
			}
		}
	}
	for idx, b := range buckets {
		if b.count < 2000 || b.errors < 30 {
			continue
		}
		pred := b.predicted / b.count
		meas := b.errors / b.count
		// Within a factor of 1.6 is tight for a probability calibration
		// check with this sample size.
		if meas > 0 && (pred/meas > 1.6 || meas/pred > 1.6) {
			t.Errorf("bucket %d: predicted p=%.4f measured p=%.4f (n=%.0f)",
				idx, pred, meas, b.count)
		}
	}
}

func TestBCJRAverageBERTracksTruth(t *testing.T) {
	// The frame-average of p_k must track the true BER of the decoded
	// frame — this is exactly how the SoftRate receiver estimates BER
	// without knowing the transmitted bits (§3.1).
	rng := rand.New(rand.NewSource(19))
	n := 2000
	for _, sigma := range []float64{0.9, 1.0, 1.15} {
		var predicted, measured float64
		var total float64
		for trial := 0; trial < 15; trial++ {
			info := bitutil.RandomBits(rng, n)
			llrs := addAWGN(rng, Encode(info), sigma)
			got, app := DecodeBCJR(llrs, n, LogMAP)
			for k := 0; k < n; k++ {
				predicted += 1 / (1 + math.Exp(math.Abs(app[k])))
			}
			measured += float64(bitutil.CountBitErrors(got, info))
			total += float64(n)
		}
		p, m := predicted/total, measured/total
		if m == 0 {
			continue
		}
		if p/m > 2 || m/p > 2 {
			t.Errorf("sigma=%.2f: predicted BER %.2e vs measured %.2e", sigma, p, m)
		}
	}
}

func TestMaxStarAccuracy(t *testing.T) {
	for _, pair := range [][2]float64{{0, 0}, {1, 0.5}, {-3, 2}, {5, 5.01}, {-10, 4}} {
		a, b := pair[0], pair[1]
		exact := math.Log(math.Exp(a) + math.Exp(b))
		got := maxStar(a, b)
		if math.Abs(got-exact) > 0.04 {
			t.Errorf("maxStar(%v,%v) = %v, exact %v", a, b, got, exact)
		}
	}
}

func TestBCJRErasuresDecodable(t *testing.T) {
	// With rate 3/4 puncturing a third of the coded bits are erased; the
	// decoder must still recover the message from clean kept bits.
	rng := rand.New(rand.NewSource(23))
	info := bitutil.RandomBits(rng, 300)
	tx := Puncture(Encode(info), Rate34)
	llrs := DepunctureLLR(HardToLLR(tx, 10), Rate34, CodedLen(300))
	got, app := DecodeBCJR(llrs, 300, LogMAP)
	if bitutil.CountBitErrors(got, info) != 0 {
		t.Fatal("BCJR failed on punctured noiseless input")
	}
	for k, l := range app {
		if math.Abs(l) < 1 {
			t.Fatalf("suspiciously weak confidence %v at clean bit %d", l, k)
		}
	}
}

func BenchmarkEncode1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	info := bitutil.RandomBits(rng, 1500*8)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(info)
	}
}

func BenchmarkViterbi1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	info := bitutil.RandomBits(rng, 1500*8)
	llrs := addAWGN(rng, Encode(info), 0.7)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeViterbi(llrs, len(info))
	}
}

func BenchmarkBCJR1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	info := bitutil.RandomBits(rng, 1500*8)
	llrs := addAWGN(rng, Encode(info), 0.7)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBCJR(llrs, len(info), LogMAP)
	}
}

func BenchmarkBCJRMaxLog1500B(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	info := bitutil.RandomBits(rng, 1500*8)
	llrs := addAWGN(rng, Encode(info), 0.7)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DecodeBCJR(llrs, len(info), MaxLog)
	}
}
