package coding

import (
	"math"
	"math/rand"
	"testing"
)

// makeBatchJob builds a decodable LLR lattice for a random message at the
// given puncture rate and noise level, returning the depunctured rate-1/2
// lattice the decoders consume.
func makeBatchJob(rng *rand.Rand, nInfoBytes int, rate CodeRate, sigma float64) BatchJob {
	nInfo := nInfoBytes * 8
	info := make([]byte, nInfo)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	coded := Encode(info)
	punct := AppendPuncture(nil, coded, rate)
	soft := make([]float64, len(punct))
	for i, b := range punct {
		x := -1.0
		if b != 0 {
			x = 1.0
		}
		soft[i] = 2 * (x + sigma*rng.NormFloat64()) / (sigma * sigma)
	}
	return BatchJob{LLRs: DepunctureLLR(soft, rate, len(coded)), NInfo: nInfo}
}

// 12 lands between the vector widths: on AVX-512 hardware a 12-lane group
// runs 8 lanes through the ZMM kernels, the next 4 through the AVX2
// normalize, and the rest through the scalar tails.
func batchSizes() []int { return []int{1, 2, 7, 12, 64} }

// TestDecodeBCJRBatchMatchesSingle is the batch-vs-single equivalence
// suite: every job in every batch must come out bit-identical to a fresh
// single-frame decode, across batch sizes, modes, puncture patterns, mixed
// frame lengths, and dirty-workspace reuse (one BatchWorkspace serves all
// cases without reset).
func TestDecodeBCJRBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var bw BatchWorkspace // reused across all subcases: dirty reuse is part of the contract
	rates := []CodeRate{Rate12, Rate23, Rate34}
	for _, mode := range []BCJRMode{LogMAP, MaxLog} {
		for _, B := range batchSizes() {
			jobs := make([]BatchJob, B)
			for i := range jobs {
				// Mixed frame lengths and rates within one batch — except
				// B=12, which stays uniform-length so the whole batch forms
				// one 12-lane group (the deterministic 8+4 width split on
				// AVX-512 hardware).
				nBytes := []int{4, 7, 31, 40}[rng.Intn(4)]
				if B == 12 {
					nBytes = 31
				}
				rate := rates[rng.Intn(len(rates))]
				sigma := []float64{0.2, 0.7, 1.5}[rng.Intn(3)]
				jobs[i] = makeBatchJob(rng, nBytes, rate, sigma)
			}
			got := bw.DecodeBCJRBatch(jobs, mode)
			if len(got) != B {
				t.Fatalf("mode=%v B=%d: got %d results", mode, B, len(got))
			}
			for i, j := range jobs {
				var sw Workspace
				wantInfo, wantLLR := sw.DecodeBCJR(j.LLRs, j.NInfo, mode)
				if len(got[i].Info) != len(wantInfo) || len(got[i].LLR) != len(wantLLR) {
					t.Fatalf("mode=%v B=%d job=%d: length mismatch", mode, B, i)
				}
				for k := range wantInfo {
					if got[i].Info[k] != wantInfo[k] {
						t.Fatalf("mode=%v B=%d job=%d bit %d: info %d != %d", mode, B, i, k, got[i].Info[k], wantInfo[k])
					}
					if !sameBits(got[i].LLR[k], wantLLR[k]) {
						t.Fatalf("mode=%v B=%d job=%d bit %d: llr %x != %x (%v vs %v)",
							mode, B, i, k, math.Float64bits(got[i].LLR[k]), math.Float64bits(wantLLR[k]), got[i].LLR[k], wantLLR[k])
					}
				}
			}
		}
	}
}

func TestDecodeViterbiBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var bw BatchWorkspace
	rates := []CodeRate{Rate12, Rate23, Rate34}
	for _, B := range batchSizes() {
		jobs := make([]BatchJob, B)
		for i := range jobs {
			nBytes := []int{4, 7, 31, 40}[rng.Intn(4)]
			rate := rates[rng.Intn(len(rates))]
			sigma := []float64{0.2, 0.7, 1.5}[rng.Intn(3)]
			jobs[i] = makeBatchJob(rng, nBytes, rate, sigma)
		}
		got := bw.DecodeViterbiBatch(jobs)
		for i, j := range jobs {
			var sw Workspace
			want := sw.DecodeViterbi(j.LLRs, j.NInfo)
			if len(got[i].Info) != len(want) {
				t.Fatalf("B=%d job=%d: length mismatch %d != %d", B, i, len(got[i].Info), len(want))
			}
			if got[i].LLR != nil {
				t.Fatalf("B=%d job=%d: Viterbi result has non-nil LLR", B, i)
			}
			for k := range want {
				if got[i].Info[k] != want[k] {
					t.Fatalf("B=%d job=%d bit %d: %d != %d", B, i, k, got[i].Info[k], want[k])
				}
			}
		}
	}
}

// TestDecodeBCJRBatchShortAndEmptyInputs pins the zero-extension contract:
// short (even empty) LLR slices behave exactly like the single-frame
// decoders' padLLRs path.
func TestDecodeBCJRBatchShortAndEmptyInputs(t *testing.T) {
	var bw BatchWorkspace
	jobs := []BatchJob{
		{LLRs: nil, NInfo: 16},
		{LLRs: []float64{3, -1, 0.5}, NInfo: 16},
		{LLRs: make([]float64, 2*(16+TailBits)+10), NInfo: 16}, // over-long: extra entries ignored
	}
	for i := range jobs[2].LLRs {
		jobs[2].LLRs[i] = float64(i%5) - 2
	}
	for _, mode := range []BCJRMode{LogMAP, MaxLog} {
		got := bw.DecodeBCJRBatch(jobs, mode)
		for i, j := range jobs {
			var sw Workspace
			wantInfo, wantLLR := sw.DecodeBCJR(j.LLRs, j.NInfo, mode)
			for k := range wantInfo {
				if got[i].Info[k] != wantInfo[k] || !sameBits(got[i].LLR[k], wantLLR[k]) {
					t.Fatalf("mode=%v job=%d bit %d mismatch", mode, i, k)
				}
			}
		}
	}
}

// TestDecodeBatchQuantizedSanity checks the quantized fast path against the
// exact max-log decoder on clean (noise-free) inputs, where quantization
// cannot flip any decision.
func TestDecodeBatchQuantizedSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bw := BatchWorkspace{Quantized: true}
	nInfo := 24 * 8
	info := make([]byte, nInfo)
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	llrs := HardToLLR(AppendPuncture(nil, Encode(info), Rate12), 8)
	jobs := []BatchJob{{LLRs: llrs, NInfo: nInfo}, {LLRs: llrs, NInfo: nInfo}}
	got := bw.DecodeBCJRBatch(jobs, MaxLog)
	for i := range got {
		for k, b := range info {
			if got[i].Info[k] != b {
				t.Fatalf("quantized job %d bit %d: %d != %d", i, k, got[i].Info[k], b)
			}
		}
	}
	// The flag must not affect exact log-MAP decodes.
	exact := bw.DecodeBCJRBatch(jobs, LogMAP)
	var sw Workspace
	wantInfo, wantLLR := sw.DecodeBCJR(llrs, nInfo, LogMAP)
	for k := range wantInfo {
		if exact[0].Info[k] != wantInfo[k] || !sameBits(exact[0].LLR[k], wantLLR[k]) {
			t.Fatalf("LogMAP under Quantized flag diverged at bit %d", k)
		}
	}
}

// TestBatchDecodeDoesNotAllocateSteadyState extends the single-frame
// allocation pin to warm batch workspaces at every batch size.
func TestBatchDecodeDoesNotAllocateSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, B := range batchSizes() {
		jobs := make([]BatchJob, B)
		for i := range jobs {
			jobs[i] = makeBatchJob(rng, 12, Rate12, 0.7)
		}
		var bw BatchWorkspace
		bw.DecodeBCJRBatch(jobs, LogMAP)
		bw.DecodeViterbiBatch(jobs)
		if n := testing.AllocsPerRun(3, func() {
			bw.DecodeBCJRBatch(jobs, LogMAP)
		}); n != 0 {
			t.Errorf("B=%d: DecodeBCJRBatch allocates %v/op when warm", B, n)
		}
		if n := testing.AllocsPerRun(3, func() {
			bw.DecodeViterbiBatch(jobs)
		}); n != 0 {
			t.Errorf("B=%d: DecodeViterbiBatch allocates %v/op when warm", B, n)
		}
	}
}

// FuzzBatchDecodeMatchesSingle drives arbitrary LLR lattices — including
// non-finite values — through a reused BatchWorkspace and requires
// bit-identical outputs vs fresh single-frame references (NaN payloads
// compare as NaN).
func FuzzBatchDecodeMatchesSingle(f *testing.F) {
	f.Add(uint16(3), uint16(2), int64(1), false)
	f.Add(uint16(17), uint16(40), int64(9), true)
	f.Add(uint16(64), uint16(1), int64(77), false)
	var bw BatchWorkspace // deliberately shared across fuzz iterations
	f.Fuzz(func(t *testing.T, rawB, rawLen uint16, seed int64, maxlog bool) {
		B := int(rawB)%8 + 1
		rng := rand.New(rand.NewSource(seed))
		mode := LogMAP
		if maxlog {
			mode = MaxLog
		}
		jobs := make([]BatchJob, B)
		for i := range jobs {
			nInfo := (int(rawLen)+i)%96 + 1
			nLLR := rng.Intn(2*(nInfo+TailBits) + 8)
			llrs := make([]float64, nLLR)
			for k := range llrs {
				switch rng.Intn(12) {
				case 0:
					llrs[k] = math.Inf(1)
				case 1:
					llrs[k] = math.Inf(-1)
				case 2:
					llrs[k] = math.NaN()
				case 3:
					llrs[k] = 0
				case 4:
					llrs[k] = rng.NormFloat64() * 1e30
				default:
					llrs[k] = rng.NormFloat64() * 20
				}
			}
			jobs[i] = BatchJob{LLRs: llrs, NInfo: nInfo}
		}
		got := bw.DecodeBCJRBatch(jobs, mode)
		for i, j := range jobs {
			var sw Workspace
			wantInfo, wantLLR := sw.DecodeBCJR(j.LLRs, j.NInfo, mode)
			for k := range wantInfo {
				if got[i].Info[k] != wantInfo[k] {
					t.Fatalf("BCJR job %d bit %d: info %d != %d", i, k, got[i].Info[k], wantInfo[k])
				}
				if !sameBits(got[i].LLR[k], wantLLR[k]) {
					t.Fatalf("BCJR job %d bit %d: llr bits %x != %x", i, k,
						math.Float64bits(got[i].LLR[k]), math.Float64bits(wantLLR[k]))
				}
			}
		}
		gotV := bw.DecodeViterbiBatch(jobs)
		for i, j := range jobs {
			var sw Workspace
			want := sw.DecodeViterbi(j.LLRs, j.NInfo)
			for k := range want {
				if gotV[i].Info[k] != want[k] {
					t.Fatalf("Viterbi job %d bit %d: %d != %d", i, k, gotV[i].Info[k], want[k])
				}
			}
		}
	})
}

func BenchmarkDecodeBCJRBatch8(b *testing.B) {
	benchDecodeBatch(b, 8)
}

func BenchmarkDecodeBCJRBatch64(b *testing.B) {
	benchDecodeBatch(b, 64)
}

func benchDecodeBatch(b *testing.B, B int) {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]BatchJob, B)
	for i := range jobs {
		jobs[i] = makeBatchJob(rng, 244, Rate12, 0.7)
	}
	var bw BatchWorkspace
	bw.DecodeBCJRBatch(jobs, LogMAP)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bw.DecodeBCJRBatch(jobs, LogMAP)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*B)/b.Elapsed().Seconds(), "frames/s")
}
