package coding

// Workspace holds the scratch memory of the soft decoders so that the
// simulation hot path (one decode per received segment, thousands per
// experiment) performs zero heap allocations in steady state. A Workspace
// is owned by one goroutine at a time — the experiment engine hands one to
// each worker — and the slices returned by its Decode methods alias its
// internal buffers: they are valid until the next call on the same
// Workspace, so callers must consume (or copy) them before decoding again.
//
// Reuse is contractually invisible: for any input, a warm Workspace
// produces bit-for-bit the same output as the allocating package-level
// functions (FuzzDecodeWorkspaceReuse pins this).
type Workspace struct {
	// alpha and beta are the BCJR forward/backward trellis planes, stored
	// row-major: plane[t*numStates+s].
	alpha, beta []float64
	// metric and next are the Viterbi path-metric rows.
	metric, next []float64
	// survivors is the Viterbi traceback plane, row-major like alpha.
	survivors []uint8
	// padded holds zero-extended channel LLRs when a caller passes a short
	// slice.
	padded []float64
	// depunct is the DepunctureLLR output lattice.
	depunct []float64
	// info and llrOut back the decoded-bit and APP-LLR return values.
	info   []byte
	llrOut []float64
}

// growF returns buf resized to n, reallocating only when capacity is
// insufficient. Contents are unspecified; callers fully initialize what
// they read.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growB is growF for byte slices.
func growB(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// padLLRs zero-extends llrs to 2*steps entries using the workspace pad
// buffer, mirroring the padding the package-level decoders apply.
func (w *Workspace) padLLRs(llrs []float64, steps int) []float64 {
	if len(llrs) >= 2*steps {
		return llrs
	}
	w.padded = growF(w.padded, 2*steps)
	n := copy(w.padded, llrs)
	for i := n; i < 2*steps; i++ {
		w.padded[i] = 0
	}
	return w.padded
}
