package coding

import (
	"math"
	"math/rand"
	"testing"
)

// sameBits reports bit-identity, with any-NaN == any-NaN: IEEE addition is
// free to propagate either operand's NaN payload, and the compiler may
// commute operands differently at different sites, so NaN payload bits are
// not stable across otherwise identical expressions.
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// referenceRows2 is the scalar semantics combineRows2 must match bit-for-bit.
func referenceRows2(dst, src, bm []float64, mode BCJRMode) {
	for i := range dst {
		a := src[i]
		if a <= bcjrNegInf {
			continue
		}
		m := a + bm[i]
		x := dst[i]
		if x <= bcjrNegInf {
			dst[i] = m
			continue
		}
		if m <= bcjrNegInf {
			continue
		}
		if mode == MaxLog {
			if !(x > m) {
				dst[i] = m
			}
			continue
		}
		dst[i] = maxStar(x, m)
	}
}

func referenceRows3(dst, a, bm, b []float64, mode BCJRMode) {
	for i := range dst {
		av, bv := a[i], b[i]
		if av <= bcjrNegInf || bv <= bcjrNegInf {
			continue
		}
		m := (av + bm[i]) + bv
		x := dst[i]
		if x <= bcjrNegInf {
			dst[i] = m
			continue
		}
		if m <= bcjrNegInf {
			continue
		}
		if mode == MaxLog {
			if !(x > m) {
				dst[i] = m
			}
			continue
		}
		dst[i] = maxStar(x, m)
	}
}

// adversarialValue draws from a pool of values chosen to hit every branch of
// the combine: sentinels, ±Inf, NaN, exact ties (d == ±0 so exp(-d) == 1,
// the Log1p u == 2 fixup), differences straddling the maxStar range cutoff
// by ulps, and magnitudes spanning the Jacobian's whole input range.
func adversarialValue(rng *rand.Rand, base float64) float64 {
	switch rng.Intn(16) {
	case 0:
		return bcjrNegInf
	case 1:
		return bcjrNegInf * 2
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return math.NaN()
	case 5:
		return base // exact tie with the other operand
	case 6:
		return base + maxStarRange // exactly at the cutoff
	case 7:
		return base + math.Nextafter(maxStarRange, 0)
	case 8:
		return base + math.Nextafter(maxStarRange, 20)
	case 9:
		return base + 5e-324 // subnormal difference
	case 10:
		return base + rng.Float64()*1e-15 // u within ulps of 2 inside Log1p
	case 11:
		return base - rng.Float64()*1e-15
	case 12:
		return 0.0
	case 13:
		return math.Copysign(0, -1)
	default:
		return base + (rng.Float64()*30 - 15)
	}
}

func fillCombineCase(rng *rand.Rand, dst, other []float64) {
	for i := range dst {
		base := rng.NormFloat64() * 20
		dst[i] = adversarialValue(rng, base)
		other[i] = adversarialValue(rng, base)
	}
}

func TestCombineRowsMatchesScalar(t *testing.T) {
	if !hasFastJacobian {
		t.Log("no vector Jacobian on this host; exercising scalar path only")
	}
	rng := rand.New(rand.NewSource(61))
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 64}
	for _, mode := range []BCJRMode{LogMAP, MaxLog} {
		for _, n := range sizes {
			dst := make([]float64, n)
			ref := make([]float64, n)
			src := make([]float64, n)
			bm := make([]float64, n)
			b := make([]float64, n)
			iters := 4000
			if testing.Short() {
				iters = 400
			}
			for it := 0; it < iters; it++ {
				fillCombineCase(rng, dst, src)
				for i := range bm {
					bm[i] = adversarialValue(rng, rng.NormFloat64()*5)
					b[i] = adversarialValue(rng, rng.NormFloat64()*5)
				}
				copy(ref, dst)
				referenceRows2(ref, src, bm, mode)
				got := append([]float64(nil), dst...)
				combineRows2(got, src, bm, mode)
				for i := range got {
					if !sameBits(got[i], ref[i]) {
						t.Fatalf("rows2 mode=%v n=%d iter=%d lane %d: got %x (%v) want %x (%v); dst=%v src=%v bm=%v",
							mode, n, it, i, math.Float64bits(got[i]), got[i], math.Float64bits(ref[i]), ref[i], dst[i], src[i], bm[i])
					}
				}
				copy(ref, dst)
				referenceRows3(ref, src, bm, b, mode)
				got3 := append([]float64(nil), dst...)
				combineRows3(got3, src, bm, b, mode)
				for i := range got3 {
					if !sameBits(got3[i], ref[i]) {
						t.Fatalf("rows3 mode=%v n=%d iter=%d lane %d: got %x (%v) want %x (%v); dst=%v a=%v bm=%v b=%v",
							mode, n, it, i, math.Float64bits(got3[i]), got3[i], math.Float64bits(ref[i]), ref[i], dst[i], src[i], bm[i], b[i])
					}
				}
			}
		}
	}
}

// TestCombineRowsDenseSweep sweeps the difference d = x-m through a dense
// grid focused on the Jacobian's sensitive regions so every exponent of
// exp(-d) and both Log1p normalization branches get exercised.
func TestCombineRowsDenseSweep(t *testing.T) {
	var ds []float64
	for d := -12.0; d <= 12.0; d += 0.00097 {
		ds = append(ds, d)
	}
	// Dense ulp-level scan around the exp(-d) = Sqrt2M1 path split and the
	// range cutoff.
	for _, center := range []float64{0, 0.8813735870195429, maxStarRange, -maxStarRange} {
		d := center
		for i := 0; i < 64; i++ {
			ds = append(ds, d)
			d = math.Nextafter(d, 100)
		}
		d = center
		for i := 0; i < 64; i++ {
			ds = append(ds, d)
			d = math.Nextafter(d, -100)
		}
	}
	n := 4
	for base := 0; base < len(ds); base += n {
		dst := make([]float64, n)
		src := make([]float64, n)
		bm := make([]float64, n)
		for i := 0; i < n; i++ {
			d := ds[(base+i)%len(ds)]
			dst[i] = d // x - m = d with m = 0
			src[i] = 0
			bm[i] = 0
		}
		ref := append([]float64(nil), dst...)
		referenceRows2(ref, src, bm, LogMAP)
		got := append([]float64(nil), dst...)
		combineRows2(got, src, bm, LogMAP)
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("dense sweep d=%v: got %x (%v) want %x (%v)",
					dst[i], math.Float64bits(got[i]), got[i], math.Float64bits(ref[i]), ref[i])
			}
		}
	}
}
