package coding

import "math/bits"

// This file implements the row-combine primitives of the lockstep batch
// decoder: folding one candidate branch metric per lane into an
// accumulator row, with exactly the sentinel/maxStar semantics of the
// single-frame decoder's inlined comb logic. The log-MAP form has a
// vectorized amd64 implementation (combine_amd64.s) that replicates the
// scalar math.Exp/math.Log1p operation sequences bit-for-bit; every other
// configuration runs the scalar loops below. Both paths are contractually
// bit-identical to the single-frame decoder (the batch equivalence suite
// and FuzzBatchDecodeMatchesSingle pin this).

// combLogMAP folds candidate m into accumulator x with the BCJR sentinel
// semantics and the exact Jacobian combine. It mirrors the single-frame
// decoder's inlined check-for-check logic.
func combLogMAP(x, m float64) float64 {
	if x <= bcjrNegInf {
		return m
	}
	if m <= bcjrNegInf {
		return x
	}
	return maxStar(x, m)
}

// combMaxLog is combLogMAP without the Jacobian correction (max-log-MAP).
func combMaxLog(x, m float64) float64 {
	if x <= bcjrNegInf {
		return m
	}
	if m <= bcjrNegInf {
		return x
	}
	if !(x > m) {
		return m
	}
	return x
}

// combineRows2 performs, for every lane i:
//
//	if src[i] > sentinel { dst[i] = comb(dst[i], src[i]+bm[i]) }
//
// which is one (state, input) trellis transition applied across a batch.
// len(dst) == len(src) == len(bm) and must be at most maxBatchLanes.
func combineRows2(dst, src, bm []float64, mode BCJRMode) {
	n := len(dst)
	i := 0
	if mode == LogMAP && hasFastJacobian && n >= 4 {
		nv := n &^ 3
		fix := combineRows2AVX2(&dst[0], &src[0], &bm[0], nv)
		for fix != 0 {
			j := bits.TrailingZeros64(fix)
			fix &^= 1 << uint(j)
			if a := src[j]; !(a <= bcjrNegInf) {
				dst[j] = combLogMAP(dst[j], a+bm[j])
			}
		}
		i = nv
	}
	if mode == LogMAP {
		for ; i < n; i++ {
			if a := src[i]; !(a <= bcjrNegInf) {
				dst[i] = combLogMAP(dst[i], a+bm[i])
			}
		}
		return
	}
	for ; i < n; i++ {
		if a := src[i]; !(a <= bcjrNegInf) {
			dst[i] = combMaxLog(dst[i], a+bm[i])
		}
	}
}

// combineRows3 performs, for every lane i:
//
//	if a[i] > sentinel && b[i] > sentinel {
//		dst[i] = comb(dst[i], (a[i]+bm[i])+b[i])
//	}
//
// which is one a-posteriori (alpha + branch + beta) accumulation across a
// batch. All slices share a length of at most maxBatchLanes.
func combineRows3(dst, a, bm, b []float64, mode BCJRMode) {
	n := len(dst)
	i := 0
	if mode == LogMAP && hasFastJacobian && n >= 4 {
		nv := n &^ 3
		fix := combineRows3AVX2(&dst[0], &a[0], &bm[0], &b[0], nv)
		for fix != 0 {
			j := bits.TrailingZeros64(fix)
			fix &^= 1 << uint(j)
			av, bv := a[j], b[j]
			if !(av <= bcjrNegInf) && !(bv <= bcjrNegInf) {
				dst[j] = combLogMAP(dst[j], (av+bm[j])+bv)
			}
		}
		i = nv
	}
	if mode == LogMAP {
		for ; i < n; i++ {
			av, bv := a[i], b[i]
			if !(av <= bcjrNegInf) && !(bv <= bcjrNegInf) {
				dst[i] = combLogMAP(dst[i], (av+bm[i])+bv)
			}
		}
		return
	}
	for ; i < n; i++ {
		av, bv := a[i], b[i]
		if !(av <= bcjrNegInf) && !(bv <= bcjrNegInf) {
			dst[i] = combMaxLog(dst[i], (av+bm[i])+bv)
		}
	}
}
