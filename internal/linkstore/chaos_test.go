package linkstore

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/faultfs"
)

// openColdFS opens a cold tier on an injected filesystem.
func openColdFS(t *testing.T, dir string, fs faultfs.FS) *coldstore.Store {
	t.Helper()
	c, err := coldstore.Open(coldstore.Config{Dir: dir, SegmentBytes: 64 << 10, FS: fs})
	if err != nil {
		t.Fatalf("coldstore.Open: %v", err)
	}
	return c
}

// TestColdSpillBreakerKeepsStateAndRecovers walks the whole degradation
// cycle on a fake clock: every spill fails → breaker trips after
// breakerTripAfter consecutive failures and the store degrades to the
// unbounded RAM archive (no link lost, decisions still exact) → a
// backoff-paced probe fails and doubles the backoff → the disk heals,
// the next probe succeeds, the breaker closes and the backlog drains to
// disk — after which decisions are still byte-identical to bare
// controllers that never saw any of it.
func TestColdSpillBreakerKeepsStateAndRecovers(t *testing.T) {
	clk := &fakeClock{}
	inj := faultfs.Wrap(faultfs.OS{}, 11, faultfs.Rates{WriteErr: 1})
	inj.Arm(false) // open cleanly; faults start under load
	cold := openColdFS(t, t.TempDir(), inj)
	defer cold.Close()
	st := New(Config{
		Shards: 4, TTL: 10 * time.Millisecond, Clock: clk.Now,
		Cold: cold, ColdFront: 16,
	})
	spec := ctl.Specs()[0]
	const nLinks = 120
	bare := make([]ctl.Controller, nLinks)
	rates := make([]int32, nLinks)
	for i := range bare {
		bare[i] = spec.New()
	}
	apply := func(id int, ber float64) {
		t.Helper()
		op := Op{
			LinkID: uint64(id) + 1, Algo: spec.ID, Kind: core.KindBER,
			RateIndex: rates[id], BER: ber, Delivered: true,
		}
		got := st.Apply(op)
		want := bare[id].Apply(ctl.Feedback{
			Kind: op.Kind, RateIndex: int(op.RateIndex), BER: op.BER, Delivered: op.Delivered,
		})
		if got != want {
			t.Fatalf("link %d: store %d != bare %d", id, got, want)
		}
		rates[id] = int32(got)
	}
	for i := 0; i < nLinks; i++ {
		apply(i, 1e-4)
	}

	// Idle everything out with the disk failing: the whole population
	// must stay resident in RAM, and the breaker must trip after exactly
	// breakerTripAfter consecutive spill failures (later rotations stand
	// down instead of hammering the disk).
	inj.Arm(true)
	clk.Advance(50 * time.Millisecond)
	st.EvictIdle()
	s := st.Stats()
	if s.ColdSpillErrors != breakerTripAfter {
		t.Fatalf("spill errors %d, want exactly breakerTripAfter=%d (breaker should stop further attempts)",
			s.ColdSpillErrors, breakerTripAfter)
	}
	if s.BreakerTrips != 1 || !s.ColdDegraded || !st.ColdDegraded() {
		t.Fatalf("breaker state after failures: trips=%d degraded=%v", s.BreakerTrips, s.ColdDegraded)
	}
	if s.Archived != nLinks || cold.Len() != 0 {
		t.Fatalf("degraded store holds %d in RAM and %d on disk, want all %d in RAM",
			s.Archived, cold.Len(), nLinks)
	}

	// Nothing was lost: every link revives from the retained generations
	// with its exact state.
	for i := 0; i < nLinks; i++ {
		apply(i, 2e-4)
	}

	// Past the backoff the breaker grants exactly one probe; the disk is
	// still broken, so the probe fails and the backoff doubles.
	clk.Advance(150 * time.Millisecond)
	st.EvictIdle()
	s = st.Stats()
	if s.SpillRetries != 1 || s.ColdSpillErrors != breakerTripAfter+1 {
		t.Fatalf("after failed probe: retries=%d spill errors=%d, want 1 and %d",
			s.SpillRetries, s.ColdSpillErrors, breakerTripAfter+1)
	}
	if !st.ColdDegraded() {
		t.Fatal("breaker closed on a failed probe")
	}

	// Heal the disk; the next granted probe succeeds, closes the breaker,
	// and the backlog drains to the cold tier.
	inj.Arm(false)
	clk.Advance(500 * time.Millisecond)
	st.EvictIdle()
	s = st.Stats()
	if st.ColdDegraded() || s.ColdDegraded {
		t.Fatal("breaker still open after a successful probe")
	}
	if s.SpillRetries != 2 {
		t.Fatalf("spill retries %d, want 2 (one failed probe, one successful)", s.SpillRetries)
	}
	if cold.Len() != nLinks {
		t.Fatalf("recovered cold tier holds %d links, want the whole backlog of %d", cold.Len(), nLinks)
	}

	// Post-recovery decisions restore from disk and stay exact.
	for i := 0; i < nLinks; i++ {
		apply(i, 3e-4)
	}
	s = st.Stats()
	if s.ColdRestoreErrors != 0 {
		t.Fatalf("restore errors after recovery: %d", s.ColdRestoreErrors)
	}
	if s.Cold == nil || s.Cold.Restores == 0 {
		t.Fatal("post-recovery churn never restored from disk")
	}
}

// TestColdRestoreFaultFallsThroughFresh pins the read-fault contract: a
// failed restore counts ColdRestoreErrors and serves a FRESH controller
// (never a half-decoded one), the breaker stays closed (read faults say
// nothing about the spill path), and the link continues from the fresh
// state once the disk heals.
func TestColdRestoreFaultFallsThroughFresh(t *testing.T) {
	clk := &fakeClock{}
	inj := faultfs.Wrap(faultfs.OS{}, 5, faultfs.Rates{ReadErr: 1})
	inj.Arm(false)
	cold := openColdFS(t, t.TempDir(), inj)
	defer cold.Close()
	st := New(Config{
		Shards: 1, TTL: 10 * time.Millisecond, Clock: clk.Now,
		Cold: cold, ColdFront: 4,
	})
	spec := ctl.Specs()[0]
	const nLinks = 32
	bare := make([]ctl.Controller, nLinks)
	rates := make([]int32, nLinks)
	for i := range bare {
		bare[i] = spec.New()
	}
	feedback := func(id int, ber float64) (Op, ctl.Feedback) {
		op := Op{
			LinkID: uint64(id) + 1, Algo: spec.ID, Kind: core.KindBER,
			RateIndex: rates[id], BER: ber, Delivered: true,
		}
		return op, ctl.Feedback{Kind: op.Kind, RateIndex: int(op.RateIndex), BER: op.BER, Delivered: op.Delivered}
	}
	for step := 0; step < 5; step++ {
		for i := 0; i < nLinks; i++ {
			op, fb := feedback(i, float64(step+1)*1e-4)
			got := st.Apply(op)
			if want := bare[i].Apply(fb); got != want {
				t.Fatalf("warmup link %d: store %d != bare %d", i, got, want)
			}
			rates[i] = int32(got)
		}
		clk.Advance(time.Millisecond)
	}
	clk.Advance(50 * time.Millisecond)
	st.EvictIdle() // disarmed: spills reach the disk

	// Pick a link whose state actually lives on disk.
	victim := -1
	for i := 0; i < nLinks; i++ {
		if _, _, ok, err := cold.Peek(uint64(i)+1, nil); err == nil && ok {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("eviction churn left no link on disk")
	}

	inj.Arm(true)
	op, fb := feedback(victim, 9e-4)
	got := st.Apply(op)
	fresh := spec.New()
	if want := fresh.Apply(fb); got != want {
		t.Fatalf("restore-fault decision %d, want fresh controller's %d", got, want)
	}
	rates[victim] = int32(got)
	s := st.Stats()
	if s.ColdRestoreErrors != 1 {
		t.Fatalf("ColdRestoreErrors %d, want 1", s.ColdRestoreErrors)
	}
	if s.ColdErrors != s.ColdSpillErrors+s.ColdRestoreErrors {
		t.Fatalf("ColdErrors %d != spill %d + restore %d", s.ColdErrors, s.ColdSpillErrors, s.ColdRestoreErrors)
	}
	if st.ColdDegraded() || s.BreakerTrips != 0 {
		t.Fatal("a read fault tripped the spill breaker")
	}

	// The link's future is the fresh controller's future.
	inj.Arm(false)
	for step := 0; step < 5; step++ {
		op, fb := feedback(victim, float64(step+2)*1e-4)
		got := st.Apply(op)
		if want := fresh.Apply(fb); got != want {
			t.Fatalf("post-fault step %d: store %d != fresh mirror %d", step, got, want)
		}
		rates[victim] = int32(got)
	}
}

// TestColdChaosChurnExact is the in-process version of the chaos smoke:
// mixed-algorithm churn through a cold tier on a ChaosRates-injected
// disk (write errors, torn writes, stalls — read path clean). Spills
// fail constantly; every decision must still match a bare controller
// byte-for-byte, because a failed spill keeps the generation in RAM.
func TestColdChaosChurnExact(t *testing.T) {
	clk := &fakeClock{}
	r := faultfs.ChaosRates(0.3)
	r.StallDur = 0 // keep the unit test fast; stall scheduling still draws
	inj := faultfs.Wrap(faultfs.OS{}, 1, r)
	inj.Arm(false)
	cold := openColdFS(t, t.TempDir(), inj)
	defer cold.Close()
	st := New(Config{
		Shards: 4, TTL: 10 * time.Millisecond, Clock: clk.Now,
		Cold: cold, ColdFront: 16,
	})
	inj.Arm(true)
	specs := ctl.Specs()
	const nLinks = 120
	bare := make([]ctl.Controller, nLinks)
	algo := make([]ctl.Algo, nLinks)
	for i := range bare {
		spec := specs[i%len(specs)]
		bare[i] = spec.New()
		algo[i] = spec.ID
	}
	rng := rand.New(rand.NewSource(77))
	rates := make([]int32, nLinks)
	for step := 0; step < 6000; step++ {
		id := rng.Intn(nLinks)
		op := Op{
			LinkID:    uint64(id) + 1,
			Algo:      algo[id],
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: rates[id],
			BER:       rng.Float64() * 0.01,
			SNRdB:     float32(rng.Float64()*30 - 2),
			Delivered: rng.Intn(3) > 0,
		}
		got := st.Apply(op)
		want := bare[id].Apply(ctl.Feedback{
			Kind:      op.Kind,
			RateIndex: int(op.RateIndex),
			BER:       op.BER,
			SNRdB:     float64(op.SNRdB),
			Delivered: op.Delivered,
		})
		if got != want {
			t.Fatalf("step %d link %d: store %d != bare %d under chaos", step, id, got, want)
		}
		rates[id] = int32(got)
		clk.Advance(time.Millisecond)
	}
	s := st.Stats()
	if s.ColdRestoreErrors != 0 {
		t.Fatalf("restore errors under a write-only fault mix: %d", s.ColdRestoreErrors)
	}
	if s.ColdSpillErrors == 0 {
		t.Fatal("a 30% write-fault rate never failed a spill; the chaos path was not exercised")
	}
	fstats := inj.Stats()
	if fstats.WriteFaults == 0 && fstats.ShortWrites == 0 {
		t.Fatalf("injector delivered no write faults: %+v", fstats)
	}
}

// TestSpillAllReportsEveryShardFailure pins the errors.Join contract: a
// drain over a broken disk reports each failing shard (not just the
// first) and loses nothing — every link still serves its exact state.
func TestSpillAllReportsEveryShardFailure(t *testing.T) {
	clk := &fakeClock{}
	inj := faultfs.Wrap(faultfs.OS{}, 9, faultfs.Rates{WriteErr: 1})
	inj.Arm(false)
	cold := openColdFS(t, t.TempDir(), inj)
	defer cold.Close()
	st := New(Config{
		Shards: 4, TTL: time.Minute, Clock: clk.Now,
		Cold: cold, ColdFront: 16,
	})
	spec := ctl.Specs()[0]
	const nLinks = 64
	bare := make([]ctl.Controller, nLinks)
	rates := make([]int32, nLinks)
	for i := range bare {
		bare[i] = spec.New()
		op := Op{LinkID: uint64(i) + 1, Algo: spec.ID, Kind: core.KindBER, BER: 1e-4, Delivered: true}
		got := st.Apply(op)
		if want := bare[i].Apply(ctl.Feedback{Kind: op.Kind, BER: op.BER, Delivered: op.Delivered}); got != want {
			t.Fatalf("warmup link %d: store %d != bare %d", i, got, want)
		}
		rates[i] = int32(got)
	}
	inj.Arm(true)
	if _, err := st.SpillAll(); err == nil {
		t.Fatal("SpillAll over a broken disk reported success")
	} else if n := strings.Count(err.Error(), "shard "); n < 2 {
		t.Fatalf("SpillAll error names %d shards, want every failing shard joined:\n%v", n, err)
	}
	inj.Arm(false)
	for i := 0; i < nLinks; i++ {
		op := Op{LinkID: uint64(i) + 1, Algo: spec.ID, Kind: core.KindBER, RateIndex: rates[i], BER: 2e-4, Delivered: true}
		got := st.Apply(op)
		want := bare[i].Apply(ctl.Feedback{Kind: op.Kind, RateIndex: int(op.RateIndex), BER: op.BER, Delivered: op.Delivered})
		if got != want {
			t.Fatalf("link %d after failed drain: store %d != bare %d", i, got, want)
		}
	}
}
