package linkstore

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
)

// fakeClock is a manually advanced nanosecond clock.
type fakeClock struct {
	mu  sync.Mutex
	now int64
}

func (c *fakeClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now += d.Nanoseconds()
	c.mu.Unlock()
}

// softPeek decodes a SoftRate link's 8-byte relocatable state.
func softPeek(t *testing.T, st *Store, id uint64) (core.State, bool) {
	t.Helper()
	algo, b, ok := st.Peek(id)
	if !ok {
		return core.State{}, false
	}
	if algo != ctl.AlgoSoftRate {
		t.Fatalf("link %d runs algorithm %d, want SoftRate", id, algo)
	}
	return core.State{
		RateIndex: int32(binary.LittleEndian.Uint32(b[0:4])),
		SilentRun: int32(binary.LittleEndian.Uint32(b[4:8])),
	}, true
}

// berFor returns a BER that drives a default controller at rate index ri
// up (dir>0), down (dir<0) or holds it (dir==0).
func berFor(s *core.SoftRate, ri, dir int) float64 {
	alpha, beta := s.Thresholds(ri)
	switch {
	case dir > 0:
		return alpha / 2
	case dir < 0:
		return beta * 5
	default:
		return (alpha + beta) / 2
	}
}

func TestLazyCreationAndDecisions(t *testing.T) {
	st := New(Config{Shards: 8})
	ref := core.New(core.DefaultConfig())

	// First touch creates the link at the lowest rate; a climb-worthy BER
	// moves it up exactly like a bare controller.
	got := st.Apply(Op{LinkID: 42, Kind: core.KindBER, RateIndex: 0, BER: berFor(ref, 0, 1)})
	ref.OnFeedback(core.Feedback{RateIndex: 0, BER: berFor(ref, 0, 1)})
	if got != ref.CurrentIndex() {
		t.Fatalf("first decision %d != bare controller %d", got, ref.CurrentIndex())
	}
	s := st.Stats()
	if s.Creates != 1 || s.Live != 1 || s.Hits != 0 {
		t.Fatalf("stats after first touch: %+v", s)
	}
	st.Apply(Op{LinkID: 42, Kind: core.KindSilentLoss})
	if s := st.Stats(); s.Hits != 1 || s.Creates != 1 {
		t.Fatalf("stats after second touch: %+v", s)
	}
}

func TestManyLinksAreIndependent(t *testing.T) {
	st := New(Config{Shards: 16})
	// Walk link A up and link B down; they must not interfere even when
	// they hash anywhere (including the same shard).
	ref := core.New(core.DefaultConfig())
	for i := 0; i < 5; i++ {
		cur := int32(0)
		if s, ok := softPeek(t, st, 1); ok {
			cur = s.RateIndex
		}
		st.Apply(Op{LinkID: 1, Kind: core.KindBER, RateIndex: cur, BER: berFor(ref, int(cur), 1)})
		st.Apply(Op{LinkID: 2, Kind: core.KindSilentLoss})
	}
	a, _ := softPeek(t, st, 1)
	b, _ := softPeek(t, st, 2)
	if a.RateIndex != 5 {
		t.Fatalf("link 1 should have climbed to 5, got %d", a.RateIndex)
	}
	if b.RateIndex != 0 || b.SilentRun != 2 {
		t.Fatalf("link 2 state %+v, want rate 0, silent run 2 (5 silents = 1 drop clamped + run 2)", b)
	}
}

func TestTTLEvictionArchivesAndRestoresTransparently(t *testing.T) {
	clk := &fakeClock{}
	st := New(Config{Shards: 4, TTL: time.Second, Clock: clk.Now})
	ref := core.New(core.DefaultConfig())

	// Build up state: two silent losses at rate 3.
	st.Apply(Op{LinkID: 7, Kind: core.KindBER, RateIndex: 0, BER: berFor(ref, 0, 1)})
	st.Apply(Op{LinkID: 7, Kind: core.KindSilentLoss})
	st.Apply(Op{LinkID: 7, Kind: core.KindSilentLoss})
	before, _ := softPeek(t, st, 7)

	clk.Advance(2 * time.Second)
	if n := st.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle evicted %d links, want 1", n)
	}
	s := st.Stats()
	if s.Live != 0 || s.Archived != 1 || s.Evictions != 1 {
		t.Fatalf("post-eviction stats %+v", s)
	}
	// Peek still sees the archived state.
	if got, ok := softPeek(t, st, 7); !ok || got != before {
		t.Fatalf("archived state %+v (ok=%v), want %+v", got, ok, before)
	}
	// The next touch restores it: a third silent loss completes the run of
	// three and steps the rate down — proof the counter survived eviction.
	got := st.Apply(Op{LinkID: 7, Kind: core.KindSilentLoss})
	if int32(got) != before.RateIndex-1 {
		t.Fatalf("restored link decided %d, want %d (run preserved across eviction)", got, before.RateIndex-1)
	}
	s = st.Stats()
	if s.Restores != 1 || s.Archived != 0 || s.Live != 1 {
		t.Fatalf("post-restore stats %+v", s)
	}
}

func TestDropOnEvictForgetsState(t *testing.T) {
	clk := &fakeClock{}
	st := New(Config{Shards: 4, TTL: time.Second, Clock: clk.Now, DropOnEvict: true})
	ref := core.New(core.DefaultConfig())
	st.Apply(Op{LinkID: 9, Kind: core.KindBER, RateIndex: 0, BER: berFor(ref, 0, 1)})
	clk.Advance(2 * time.Second)
	st.EvictIdle()
	if _, _, ok := st.Peek(9); ok {
		t.Fatal("DropOnEvict kept state after eviction")
	}
	// Recreated from scratch: starts at the lowest rate again.
	got := st.Apply(Op{LinkID: 9, Kind: core.KindBER, RateIndex: 0, BER: berFor(ref, 0, 0)})
	if got != 0 {
		t.Fatalf("recreated link decided %d, want 0 (fresh controller)", got)
	}
	if s := st.Stats(); s.Creates != 2 || s.Restores != 0 {
		t.Fatalf("stats %+v, want 2 creates and no restores", s)
	}
}

func TestIncrementalSweepEvictsDuringTraffic(t *testing.T) {
	// Idle links must be evicted by ongoing traffic to *other* links,
	// without anyone calling EvictIdle.
	clk := &fakeClock{}
	st := New(Config{Shards: 1, TTL: time.Second, Clock: clk.Now})
	st.Apply(Op{LinkID: 1, Kind: core.KindSilentLoss})
	for i := 0; i < 10; i++ {
		clk.Advance(400 * time.Millisecond)
		st.Apply(Op{LinkID: 2, Kind: core.KindSilentLoss})
	}
	s := st.Stats()
	if s.Evictions == 0 {
		t.Fatalf("busy shard never evicted the idle link: %+v", s)
	}
	if got, ok := softPeek(t, st, 1); !ok {
		t.Fatal("evicted link lost from archive")
	} else if got.SilentRun != 1 {
		t.Fatalf("archived state %+v, want silent run 1", got)
	}
}

func TestApplyBatchMatchesSequentialApply(t *testing.T) {
	mkOps := func(rng *rand.Rand, n int) []Op {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = Op{
				LinkID:    uint64(rng.Intn(50)),
				Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
				RateIndex: int32(rng.Intn(6)),
				BER:       rng.Float64() * 0.01,
			}
		}
		return ops
	}
	rng := rand.New(rand.NewSource(5))
	ops := mkOps(rng, 4096)

	a := New(Config{Shards: 16})
	b := New(Config{Shards: 16})
	out := make([]int32, len(ops))
	a.ApplyBatch(ops, out)
	for i, op := range ops {
		if got := int32(b.Apply(op)); got != out[i] {
			t.Fatalf("op %d (%+v): batch decided %d, sequential %d", i, op, out[i], got)
		}
	}
}

func TestShardDistributionOfSequentialIDs(t *testing.T) {
	st := New(Config{Shards: 16})
	for id := uint64(0); id < 16000; id++ {
		st.Apply(Op{LinkID: id, Kind: core.KindSilentLoss})
	}
	for i, s := range st.PerShard() {
		if s.Live < 500 || s.Live > 1500 {
			t.Fatalf("shard %d holds %d of 16000 sequential links — hash is not mixing", i, s.Live)
		}
	}
}

func TestConcurrentApplyIsRaceFreeAndConserves(t *testing.T) {
	st := New(Config{Shards: 8, TTL: 50 * time.Millisecond})
	const goroutines = 8
	const perG = 2048 // multiple of the batch size below
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			ops := make([]Op, 32)
			out := make([]int32, 32)
			for i := 0; i < perG; i += len(ops) {
				for j := range ops {
					ops[j] = Op{
						LinkID:    uint64(rng.Intn(200)),
						Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
						RateIndex: int32(rng.Intn(6)),
						BER:       rng.Float64() * 0.01,
					}
				}
				st.ApplyBatch(ops, out)
				if rng.Intn(10) == 0 {
					st.EvictIdle()
					st.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	s := st.Stats()
	if s.Hits+s.Creates+s.Restores != goroutines*perG {
		t.Fatalf("op accounting leaked: hits %d + creates %d + restores %d != %d",
			s.Hits, s.Creates, s.Restores, goroutines*perG)
	}
	if s.Live+s.Archived == 0 || s.Live+s.Archived > 200 {
		t.Fatalf("link population %d+%d, want in (0, 200]", s.Live, s.Archived)
	}
}

func TestStoreDeterminismAgainstBareControllers(t *testing.T) {
	// The acceptance property: per link, the store's decision stream is
	// byte-identical to feeding the same feedback sequence into a bare
	// core.SoftRate — including across TTL evictions.
	clk := &fakeClock{}
	st := New(Config{Shards: 8, TTL: 10 * time.Millisecond, Clock: clk.Now})
	const nLinks = 300
	bare := make([]*core.SoftRate, nLinks)
	for i := range bare {
		bare[i] = core.New(core.DefaultConfig())
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 5000; step++ {
		id := uint64(rng.Intn(nLinks))
		op := Op{
			LinkID:    id,
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: int32(rng.Intn(6)),
			BER:       rng.Float64() * 0.01,
		}
		got := st.Apply(op)
		want := bare[id].Apply(op.Kind, int(op.RateIndex), op.BER)
		if got != want {
			t.Fatalf("step %d link %d: store %d != bare %d", step, id, got, want)
		}
		clk.Advance(time.Millisecond) // ages links; forces constant eviction churn
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("test never exercised eviction — weaken the TTL")
	}
}

// TestMixedAlgorithmsPerLink drives every registered algorithm through
// one store concurrently and checks each link's decision stream against a
// bare controller of its algorithm — including across eviction/restore
// churn. This is the multi-algorithm generalization of
// TestStoreDeterminismAgainstBareControllers.
func TestMixedAlgorithmsPerLink(t *testing.T) {
	clk := &fakeClock{}
	st := New(Config{Shards: 8, TTL: 10 * time.Millisecond, Clock: clk.Now})
	specs := ctl.Specs()
	const nLinks = 120
	bare := make([]ctl.Controller, nLinks)
	algo := make([]ctl.Algo, nLinks)
	for i := range bare {
		spec := specs[i%len(specs)]
		bare[i] = spec.New()
		algo[i] = spec.ID
	}
	rng := rand.New(rand.NewSource(23))
	rates := make([]int32, nLinks)
	for step := 0; step < 6000; step++ {
		id := rng.Intn(nLinks)
		op := Op{
			LinkID:    uint64(id) + 1,
			Algo:      algo[id],
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: rates[id],
			BER:       rng.Float64() * 0.01,
			SNRdB:     float32(rng.Float64()*30 - 2),
			Delivered: rng.Intn(3) > 0,
		}
		got := st.Apply(op)
		want := bare[id].Apply(ctl.Feedback{
			Kind:      op.Kind,
			RateIndex: int(op.RateIndex),
			BER:       op.BER,
			SNRdB:     float64(op.SNRdB),
			Delivered: op.Delivered,
		})
		if got != want {
			t.Fatalf("step %d link %d (%s): store %d != bare %d",
				step, id, specs[id%len(specs)].Name, got, want)
		}
		rates[id] = int32(got)
		clk.Advance(time.Millisecond)
	}
	s := st.Stats()
	if s.Evictions == 0 || s.Restores == 0 {
		t.Fatalf("test never exercised eviction/restore churn: %+v", s)
	}
	if len(s.Algos) != len(specs) {
		t.Fatalf("per-algo stats cover %d algorithms, want %d: %+v", len(s.Algos), len(specs), s.Algos)
	}
	var live, creates int
	for _, as := range s.Algos {
		live += as.Live
		creates += int(as.Creates)
	}
	if live != s.Live || creates != int(s.Creates) {
		t.Fatalf("per-algo stats don't sum to totals: %+v vs %+v", s.Algos, s.ShardStats)
	}
}

// TestAlgorithmStickyAtFirstTouch pins the binding rule: a link's
// algorithm is whatever its first op named, and later ops naming a
// different algorithm keep driving the original controller — including
// after the link was evicted and restored from the archive.
func TestAlgorithmStickyAtFirstTouch(t *testing.T) {
	clk := &fakeClock{}
	st := New(Config{Shards: 4, TTL: time.Second, Clock: clk.Now})

	// First touch binds RRAA.
	st.Apply(Op{LinkID: 5, Algo: ctl.AlgoRRAA, Kind: core.KindBER, BER: 1e-7, Delivered: true})
	if a, _, ok := st.Peek(5); !ok || a != ctl.AlgoRRAA {
		t.Fatalf("first touch bound algo %d, want RRAA", a)
	}
	// A later op claiming SoftRate must not rebind.
	st.Apply(Op{LinkID: 5, Algo: ctl.AlgoSoftRate, Kind: core.KindBER, BER: 1e-7, Delivered: true})
	if a, _, _ := st.Peek(5); a != ctl.AlgoRRAA {
		t.Fatalf("algo rebound to %d on second touch", a)
	}
	// Nor after eviction + restore.
	clk.Advance(2 * time.Second)
	if n := st.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d links, want 1", n)
	}
	st.Apply(Op{LinkID: 5, Algo: ctl.AlgoCHARM, Kind: core.KindSilentLoss})
	if a, _, _ := st.Peek(5); a != ctl.AlgoRRAA {
		t.Fatalf("algo rebound to %d after restore", a)
	}
	if s := st.Stats(); s.Restores != 1 {
		t.Fatalf("expected one restore, got %+v", s)
	}
}

// TestDefaultAlgoConfig checks that AlgoDefault ops land on the
// configured default algorithm.
func TestDefaultAlgoConfig(t *testing.T) {
	st := New(Config{Shards: 4, DefaultAlgo: ctl.AlgoCHARM})
	st.Apply(Op{LinkID: 1, Kind: core.KindSilentLoss})
	if a, state, ok := st.Peek(1); !ok || a != ctl.AlgoCHARM {
		t.Fatalf("default-algo op bound %d, want CHARM", a)
	} else if spec, _ := ctl.Lookup(ctl.AlgoCHARM); len(state) != spec.StateLen {
		t.Fatalf("CHARM state is %d bytes, want %d", len(state), spec.StateLen)
	}
}
