package linkstore

import (
	"testing"
	"time"

	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
)

// benchChurn drives idle-skew evict/restore churn: each cycle touches a
// rotating window of the population and sweeps, so every touched link is
// a restore (a link recurs only after nLinks/window further cycles —
// long after its state left the RAM front, when the store has a cold
// tier) and every cycle evicts the previous window. One b.N iteration is
// one window, so the reported links/s is evict+restore pairs per second.
func benchChurn(b *testing.B, st *Store, clk *fakeClock, nLinks, window int, algo ctl.Algo) {
	const batch = 128
	ops := make([]Op, batch)
	out := make([]int32, batch)
	pos := 0
	cycle := func() {
		for base := 0; base < window; base += batch {
			n := 0
			for i := 0; i < batch && base+i < window; i++ {
				ops[n] = Op{LinkID: uint64((pos+base+i)%nLinks) + 1, Algo: algo, Kind: core.KindSilentLoss}
				n++
			}
			st.ApplyBatch(ops[:n], out)
		}
		pos = (pos + window) % nLinks
		clk.Advance(2 * time.Second)
		st.EvictIdle()
	}
	for i := 0; i < nLinks/window+2; i++ {
		cycle() // populate the whole population and push it through eviction
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
	b.ReportMetric(float64(window)*float64(b.N)/b.Elapsed().Seconds(), "links/s")
}

// BenchmarkEvictRestoreRAMArchive is the A side: eviction churn with the
// unbounded in-RAM archive (the pre-cold-tier store).
func BenchmarkEvictRestoreRAMArchive(b *testing.B) {
	const nLinks = 8192
	clk := &fakeClock{}
	st := New(Config{Shards: 64, TTL: time.Second, Clock: clk.Now, ExpectedLinks: nLinks})
	benchChurn(b, st, clk, nLinks, 512, ctl.AlgoSoftRate)
}

// BenchmarkEvictRestoreColdTier is the B side: the same churn through a
// disk tier behind a front far smaller than the population, so most
// restores are single-read disk hits and every eviction eventually
// group-commits through a spilled generation.
func BenchmarkEvictRestoreColdTier(b *testing.B) {
	const nLinks = 8192
	cold, err := coldstore.Open(coldstore.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer cold.Close()
	clk := &fakeClock{}
	st := New(Config{Shards: 64, TTL: time.Second, Clock: clk.Now, ExpectedLinks: nLinks,
		Cold: cold, ColdFront: 1024})
	benchChurn(b, st, clk, nLinks, 512, ctl.AlgoSoftRate)
	if cold.Stats().Restores == 0 {
		b.Fatal("benchmark never restored from disk")
	}
}

// BenchmarkEvictRestoreColdTierWide is the B side for the widest state
// (SampleRate ~1.7 KB): spill bandwidth and restore reads dominate here.
func BenchmarkEvictRestoreColdTierWide(b *testing.B) {
	const nLinks = 2048
	cold, err := coldstore.Open(coldstore.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer cold.Close()
	clk := &fakeClock{}
	st := New(Config{Shards: 64, TTL: time.Second, Clock: clk.Now, ExpectedLinks: nLinks,
		Cold: cold, ColdFront: 256})
	benchChurn(b, st, clk, nLinks, 256, ctl.AlgoSampleRate)
}
