package linkstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
)

// churnBatches builds a deterministic multi-algorithm op stream shaped to
// stress every apply path at once: every registered algorithm (so the
// inline, slab, and in-place paths all run), contiguous same-link runs
// (the coalescing path), and link IDs reused across batches (eviction /
// restore churn when replayed against a TTL store).
func churnBatches(seed int64, nBatches, batchLen, nLinks int) [][]Op {
	rng := rand.New(rand.NewSource(seed))
	specs := ctl.Specs()
	batches := make([][]Op, nBatches)
	for b := range batches {
		ops := make([]Op, 0, batchLen)
		for len(ops) < batchLen {
			id := uint64(rng.Intn(nLinks)) + 1
			// Runs of 1-4 ops per link, contiguous — the coalescing shape.
			runLen := 1 + rng.Intn(4)
			if rem := batchLen - len(ops); runLen > rem {
				runLen = rem
			}
			algo := specs[int(id)%len(specs)].ID
			for r := 0; r < runLen; r++ {
				ops = append(ops, Op{
					LinkID:    id,
					Algo:      algo,
					Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
					RateIndex: int32(rng.Intn(6)),
					BER:       rng.Float64() * 0.01,
					SNRdB:     float32(rng.Float64()*30 - 2),
					Airtime:   float32(rng.Float64()) * 2e-3,
					Delivered: rng.Intn(3) > 0,
				})
			}
		}
		batches[b] = ops
	}
	return batches
}

// replay drives the batches through a fresh store with the given worker
// count and returns every batch's outputs plus the final per-link state.
func replay(t *testing.T, workers int, batches [][]Op, nLinks int) ([][]int32, []byte) {
	t.Helper()
	clk := &fakeClock{}
	st := New(Config{
		Shards:       8,
		TTL:          5 * time.Millisecond,
		Clock:        clk.Now,
		BatchWorkers: workers,
	})
	outs := make([][]int32, len(batches))
	for b, ops := range batches {
		out := make([]int32, len(ops))
		st.ApplyBatch(ops, out)
		outs[b] = out
		clk.Advance(time.Millisecond) // ages links; forces eviction churn
	}
	if st.Stats().Evictions == 0 {
		t.Fatal("replay never exercised eviction churn — weaken the TTL")
	}
	var state bytes.Buffer
	for id := uint64(1); id <= uint64(nLinks); id++ {
		algo, b, ok := st.Peek(id)
		fmt.Fprintf(&state, "%d/%d/%v:%x\n", id, algo, ok, b)
	}
	return outs, state.Bytes()
}

// TestParallelApplyBatchByteIdentical is the parallel executor's
// acceptance property: at every worker count, each batch's outputs and
// the final encoded state of every link are byte-identical to the
// sequential executor — across all apply paths (SoftRate inline, small
// slab states, SampleRate in-place) and under eviction/restore churn.
// The CI race step runs this under -race, which also proves the worker
// fan-out is data-race-free.
func TestParallelApplyBatchByteIdentical(t *testing.T) {
	const nLinks = 200
	batches := churnBatches(77, 120, 512, nLinks)
	wantOuts, wantState := replay(t, 1, batches, nLinks)
	for _, workers := range []int{4, 8} {
		gotOuts, gotState := replay(t, workers, batches, nLinks)
		for b := range wantOuts {
			for i := range wantOuts[b] {
				if gotOuts[b][i] != wantOuts[b][i] {
					t.Fatalf("workers=%d batch %d op %d: decided %d, sequential %d",
						workers, b, i, gotOuts[b][i], wantOuts[b][i])
				}
			}
		}
		if !bytes.Equal(gotState, wantState) {
			t.Fatalf("workers=%d: final store state diverged from sequential", workers)
		}
	}
}

// TestCoalescedRunsMatchOpAtATime pins the run-coalescing rewrite: a
// batch full of contiguous same-link runs must decide exactly like
// feeding the same ops through Apply one at a time, for every algorithm.
func TestCoalescedRunsMatchOpAtATime(t *testing.T) {
	batches := churnBatches(13, 40, 512, 64)
	a := New(Config{Shards: 8})
	b := New(Config{Shards: 8})
	for bi, ops := range batches {
		out := make([]int32, len(ops))
		a.ApplyBatch(ops, out)
		for i, op := range ops {
			if want := int32(b.Apply(op)); want != out[i] {
				t.Fatalf("batch %d op %d (link %d): batched %d, op-at-a-time %d",
					bi, i, op.LinkID, out[i], want)
			}
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Hits+sa.Creates+sa.Restores != sb.Hits+sb.Creates+sb.Restores {
		t.Fatalf("op accounting diverged: %+v vs %+v", sa.ShardStats, sb.ShardStats)
	}
}

// TestApplyBatchStatsKinds checks the routing-pass tallies: same counts
// the server used to gather with its own second pass over the batch.
func TestApplyBatchStatsKinds(t *testing.T) {
	st := New(Config{Shards: 4})
	rng := rand.New(rand.NewSource(3))
	ops := make([]Op, 1000)
	// Every op carries AlgoDefault, so the batch resolves uniformly to the
	// store default.
	want := BatchStats{Algo: ctl.AlgoSoftRate}
	for i := range ops {
		k := core.FeedbackKind(rng.Intn(int(core.NumKinds)))
		ops[i] = Op{LinkID: uint64(rng.Intn(100)), Kind: k, BER: 1e-6}
		want.Kinds[k]++
	}
	var got BatchStats
	out := make([]int32, len(ops))
	st.ApplyBatchStats(ops, out, &got)
	if got != want {
		t.Fatalf("batch stats %+v, want %+v", got, want)
	}

	// Naming a second algorithm anywhere in the batch marks it mixed.
	ops[500].Algo = 2
	st.ApplyBatchStats(ops, out, &got)
	if !got.Mixed || got.Algo != ctl.AlgoSoftRate {
		t.Fatalf("mixed batch stats %+v, want Mixed with first algo softrate", got)
	}
}

// TestExpectedLinksPresize checks pre-sizing is behaviour-neutral: a
// pre-sized store makes the same decisions as an unsized one, and the
// hint reaches the slabs (a wide-state algorithm's first allocation jumps
// to the reserved capacity instead of starting at one slot).
func TestExpectedLinksPresize(t *testing.T) {
	sized := New(Config{Shards: 4, ExpectedLinks: 4096})
	plain := New(Config{Shards: 4})
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		op := Op{
			LinkID:    uint64(rng.Intn(500)) + 1,
			Algo:      ctl.AlgoSampleRate,
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: int32(rng.Intn(6)),
			BER:       rng.Float64() * 0.01,
			Delivered: rng.Intn(2) == 0,
		}
		if got, want := sized.Apply(op), plain.Apply(op); got != want {
			t.Fatalf("op %d: pre-sized store decided %d, plain %d", i, got, want)
		}
	}
	spec, _ := ctl.Lookup(ctl.AlgoSampleRate)
	perShard := 4096/sized.NumShards() + 1
	for i := range sized.shards {
		sh := &sized.shards[i]
		sh.mu.Lock()
		c := cap(sh.slabs[ctl.AlgoSampleRate].data)
		sh.mu.Unlock()
		if c == 0 {
			continue // shard saw no SampleRate traffic
		}
		if c < perShard*spec.StateLen {
			t.Fatalf("shard %d slab capacity %d, want at least the %d-slot reserve (%d bytes)",
				i, c, perShard, perShard*spec.StateLen)
		}
	}
}
