package linkstore

import (
	"math/rand"
	"testing"
	"time"

	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
)

func openCold(t *testing.T, dir string) *coldstore.Store {
	t.Helper()
	c, err := coldstore.Open(coldstore.Config{Dir: dir, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatalf("coldstore.Open: %v", err)
	}
	return c
}

// TestColdTierDeterminismMixedAlgorithms is TestMixedAlgorithmsPerLink
// with a disk tier behind a deliberately tiny RAM front: eviction churn
// pushes links through spill → disk → restore, and every decision must
// still match a bare controller byte-for-byte. This is the -verify
// contract extended over the cold tier.
func TestColdTierDeterminismMixedAlgorithms(t *testing.T) {
	clk := &fakeClock{}
	cold := openCold(t, t.TempDir())
	defer cold.Close()
	st := New(Config{
		Shards: 4, TTL: 10 * time.Millisecond, Clock: clk.Now,
		Cold: cold, ColdFront: 16, // ~2 links per generation per shard
	})
	specs := ctl.Specs()
	const nLinks = 120
	bare := make([]ctl.Controller, nLinks)
	algo := make([]ctl.Algo, nLinks)
	for i := range bare {
		spec := specs[i%len(specs)]
		bare[i] = spec.New()
		algo[i] = spec.ID
	}
	rng := rand.New(rand.NewSource(31))
	rates := make([]int32, nLinks)
	for step := 0; step < 8000; step++ {
		id := rng.Intn(nLinks)
		op := Op{
			LinkID:    uint64(id) + 1,
			Algo:      algo[id],
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: rates[id],
			BER:       rng.Float64() * 0.01,
			SNRdB:     float32(rng.Float64()*30 - 2),
			Delivered: rng.Intn(3) > 0,
		}
		got := st.Apply(op)
		want := bare[id].Apply(ctl.Feedback{
			Kind:      op.Kind,
			RateIndex: int(op.RateIndex),
			BER:       op.BER,
			SNRdB:     float64(op.SNRdB),
			Delivered: op.Delivered,
		})
		if got != want {
			t.Fatalf("step %d link %d (%s): store %d != bare %d",
				step, id, specs[id%len(specs)].Name, got, want)
		}
		rates[id] = int32(got)
		clk.Advance(time.Millisecond)
	}
	s := st.Stats()
	if s.ColdErrors != 0 {
		t.Fatalf("cold errors: %d", s.ColdErrors)
	}
	if s.Cold == nil || s.Cold.Spills == 0 || s.Cold.Restores == 0 {
		t.Fatalf("churn never reached the disk tier: %+v", s.Cold)
	}
	// The RAM front stays bounded: two generations of the per-shard cap
	// (plus at most one unrotated sweep's overshoot).
	if s.Archived > 64 {
		t.Fatalf("RAM archive grew to %d links despite a 16-link front", s.Archived)
	}
	if s.Cold.RestoreLatency.Count != s.Cold.Restores {
		t.Fatalf("restore latency histogram saw %d of %d restores",
			s.Cold.RestoreLatency.Count, s.Cold.Restores)
	}
}

// TestColdCrashRestartByteIdentical pins the crash-restart half of the
// -verify contract: run mixed-algorithm churn through a cold tier,
// SpillAll (the graceful-drain path), tear the process state down,
// recover a brand-new store from the same directory, and keep going —
// every post-restart decision must match bare mirror controllers that
// never restarted.
func TestColdCrashRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	specs := ctl.Specs()
	const nLinks = 90
	bare := make([]ctl.Controller, nLinks)
	algo := make([]ctl.Algo, nLinks)
	for i := range bare {
		spec := specs[i%len(specs)]
		bare[i] = spec.New()
		algo[i] = spec.ID
	}
	rates := make([]int32, nLinks)
	rng := rand.New(rand.NewSource(47))

	churn := func(st *Store, clk *fakeClock, steps int) {
		t.Helper()
		for step := 0; step < steps; step++ {
			id := rng.Intn(nLinks)
			op := Op{
				LinkID:    uint64(id) + 1,
				Algo:      algo[id],
				Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
				RateIndex: rates[id],
				BER:       rng.Float64() * 0.01,
				SNRdB:     float32(rng.Float64()*30 - 2),
				Delivered: rng.Intn(3) > 0,
			}
			got := st.Apply(op)
			want := bare[id].Apply(ctl.Feedback{
				Kind:      op.Kind,
				RateIndex: int(op.RateIndex),
				BER:       op.BER,
				SNRdB:     float64(op.SNRdB),
				Delivered: op.Delivered,
			})
			if got != want {
				t.Fatalf("step %d link %d (%s): store %d != bare %d",
					step, id, specs[id%len(specs)].Name, got, want)
			}
			rates[id] = int32(got)
			clk.Advance(time.Millisecond)
		}
	}

	clk1 := &fakeClock{}
	cold1 := openCold(t, dir)
	st1 := New(Config{Shards: 4, TTL: 10 * time.Millisecond, Clock: clk1.Now, Cold: cold1, ColdFront: 16})
	churn(st1, clk1, 4000)
	spilled, err := st1.SpillAll()
	if err != nil {
		t.Fatalf("SpillAll: %v", err)
	}
	if spilled == 0 {
		t.Fatal("SpillAll spilled nothing")
	}
	if n := st1.Len(); n != 0 {
		t.Fatalf("store still holds %d hot links after SpillAll", n)
	}
	// Close only releases file handles — every batch is already written,
	// so this is the same on-disk image a killed process would leave
	// after its last commit (the torn-tail cases are fuzzed separately).
	if err := cold1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": fresh clock epoch, fresh store, recovered cold tier.
	clk2 := &fakeClock{}
	cold2 := openCold(t, dir)
	defer cold2.Close()
	st2 := New(Config{Shards: 4, TTL: 10 * time.Millisecond, Clock: clk2.Now, Cold: cold2, ColdFront: 16})
	if got := cold2.Len(); got < spilled {
		t.Fatalf("recovered cold tier holds %d links, SpillAll wrote %d", got, spilled)
	}
	churn(st2, clk2, 4000)
	s := st2.Stats()
	if s.ColdErrors != 0 {
		t.Fatalf("cold errors after restart: %d", s.ColdErrors)
	}
	if s.Cold.Restores == 0 {
		t.Fatal("no link was restored from the recovered tier")
	}
	if s.Cold.TornTails != 0 {
		t.Fatalf("clean shutdown produced %d torn tails", s.Cold.TornTails)
	}
}

// TestArchivedBytesAccounting pins the satellite: Stats reports archived
// *bytes*, so one idle SampleRate link (wide state) and one idle
// SoftRate link (8 bytes) stop counting identically.
func TestArchivedBytesAccounting(t *testing.T) {
	clk := &fakeClock{}
	st := New(Config{Shards: 1, TTL: time.Second, Clock: clk.Now})
	wSoft := ctl.New(ctl.AlgoSoftRate).StateLen()
	wSample := ctl.New(ctl.AlgoSampleRate).StateLen()

	st.Apply(Op{LinkID: 1, Algo: ctl.AlgoSoftRate, Kind: core.KindSilentLoss})
	st.Apply(Op{LinkID: 2, Algo: ctl.AlgoSampleRate, Kind: core.KindSilentLoss})
	if s := st.Stats(); s.ArchivedBytes != 0 {
		t.Fatalf("hot links already count archived bytes: %d", s.ArchivedBytes)
	}
	clk.Advance(2 * time.Second)
	st.EvictIdle()
	s := st.Stats()
	if want := int64(wSoft + wSample); s.ArchivedBytes != want {
		t.Fatalf("ArchivedBytes = %d, want %d", s.ArchivedBytes, want)
	}
	var gotSoft, gotSample int64
	for _, as := range s.Algos {
		switch as.Algo {
		case ctl.AlgoSoftRate:
			gotSoft = as.ArchivedBytes
		case ctl.AlgoSampleRate:
			gotSample = as.ArchivedBytes
		}
	}
	if gotSoft != int64(wSoft) || gotSample != int64(wSample) {
		t.Fatalf("per-algo archived bytes: soft=%d sample=%d, want %d/%d", gotSoft, gotSample, wSoft, wSample)
	}
	// Restoring releases the bytes.
	st.Apply(Op{LinkID: 2, Kind: core.KindSilentLoss})
	if s := st.Stats(); s.ArchivedBytes != int64(wSoft) {
		t.Fatalf("ArchivedBytes after restore = %d, want %d", s.ArchivedBytes, wSoft)
	}
	// Per-shard view agrees.
	var perShard int64
	for _, ss := range st.PerShard() {
		perShard += ss.ArchivedBytes
	}
	if perShard != int64(wSoft) {
		t.Fatalf("PerShard archived bytes = %d, want %d", perShard, wSoft)
	}
}

// TestColdFrontBudgetMassIdle pins the front-budget invariant under a
// synchronized mass idle-out: when one sweep ages out a burst far larger
// than the generation cap, the sweep must keep rotating until the burst
// is on disk — a single rotation would park it in the old generation,
// where the next sweep (seeing an empty current generation) would leave
// it violating the ColdFront budget forever.
func TestColdFrontBudgetMassIdle(t *testing.T) {
	clk := &fakeClock{}
	cold := openCold(t, t.TempDir())
	defer cold.Close()
	const front = 16
	st := New(Config{Shards: 4, TTL: 10 * time.Millisecond, Clock: clk.Now,
		Cold: cold, ColdFront: front})

	// Touch a population 50x the front budget in one burst, then let the
	// whole burst age out together.
	const nLinks = 800
	for i := 0; i < nLinks; i++ {
		st.Apply(Op{LinkID: uint64(i) + 1, Kind: core.KindSilentLoss})
	}
	clk.Advance(time.Second)
	st.EvictIdle()

	s := st.Stats()
	if s.Live != 0 {
		t.Fatalf("burst still live after TTL sweep: %d links", s.Live)
	}
	// Both generations together hold at most the budget (2 x genCap per
	// shard); everything else must be on disk.
	if s.Archived > front {
		t.Fatalf("RAM archive holds %d links after a mass idle-out, budget is %d", s.Archived, front)
	}
	if got := int(s.Archived) + cold.Len(); got != nLinks {
		t.Fatalf("front (%d) + disk (%d) = %d links, want %d", s.Archived, cold.Len(), got, nLinks)
	}

	// The second lap restores every link — almost all from disk — and the
	// states must round-trip exactly.
	for i := 0; i < nLinks; i++ {
		st.Apply(Op{LinkID: uint64(i) + 1, Kind: core.KindSilentLoss})
	}
	s = st.Stats()
	if s.ColdErrors != 0 {
		t.Fatalf("cold errors: %d", s.ColdErrors)
	}
	if s.Cold.Restores < nLinks-front {
		t.Fatalf("only %d disk restores for a %d-link lap over a %d-link front",
			s.Cold.Restores, nLinks, front)
	}
	if s.Live != nLinks {
		t.Fatalf("second lap left %d live links, want %d", s.Live, nLinks)
	}
}

// TestColdPeekReachesDisk checks the read-only surface follows the same
// front-then-disk lookup order as createLocked.
func TestColdPeekReachesDisk(t *testing.T) {
	clk := &fakeClock{}
	cold := openCold(t, t.TempDir())
	defer cold.Close()
	st := New(Config{Shards: 1, TTL: time.Second, Clock: clk.Now, Cold: cold, ColdFront: 2})
	ref := core.New(core.DefaultConfig())
	st.Apply(Op{LinkID: 5, Kind: core.KindBER, RateIndex: 0, BER: berFor(ref, 0, 1)})
	want, _ := softPeek(t, st, 5)

	// Age it out and push enough younger evictions through to force link
	// 5's generation to disk.
	clk.Advance(2 * time.Second)
	st.EvictIdle()
	for i := 0; i < 8; i++ {
		st.Apply(Op{LinkID: uint64(100 + i), Kind: core.KindSilentLoss})
		clk.Advance(2 * time.Second)
		st.EvictIdle()
	}
	if cold.Len() == 0 {
		t.Fatal("nothing spilled to disk")
	}
	if _, _, ok, _ := cold.Peek(5, nil); !ok {
		t.Skip("link 5 still in the RAM front on this sweep schedule")
	}
	got, ok := softPeek(t, st, 5)
	if !ok {
		t.Fatal("Peek lost link 5")
	}
	if got != want {
		t.Fatalf("Peek state %+v != pre-eviction %+v", got, want)
	}
	// Peek must not have restored it.
	if cold.Len() == 0 {
		t.Fatal("Peek drained the cold tier")
	}
}
