// Package linkstore is the decision service's state layer: a hash-sharded,
// striped-lock store of per-link rate controllers. It is built to hold
// millions of concurrent links on one host:
//
//   - Per link it stores only the controller's encoded state (8 bytes for
//     SoftRate, a fixed per-algorithm width for the others) plus a
//     last-used stamp, not a full controller. Every controller built from
//     one ctl.Spec is identical except for that state, so each shard keeps
//     one scratch controller per algorithm and services a link by
//     DecodeState → Apply → EncodeState. Controllers are thus relocatable
//     between shards, processes, and machines.
//   - State bytes live in per-shard, per-algorithm slabs (flat byte arrays
//     of fixed-width slots with a free list), so the hot path touches no
//     per-op heap allocation regardless of algorithm.
//   - A link's algorithm is chosen at first touch — from the op's Algo
//     field, or the store's default for AlgoDefault — and sticks for the
//     link's lifetime, including across eviction and restore. One store
//     serves any per-link mix of the registered §6.1 algorithms.
//   - Links are created lazily on first touch and evicted after a
//     configurable idle TTL. Evicted state moves to a per-shard archive
//     (linkID → encoded state, no stamp), so a link that comes back after
//     an idle period resumes exactly where it left off — eviction is
//     invisible to the protocol, it only sheds hot-map bookkeeping.
//   - With Config.Cold the archive becomes a small bounded front of two
//     generations: recently evicted links restore from RAM, and when the
//     current generation fills, the older one is spilled wholesale to the
//     disk tier in one group-committed batch (internal/coldstore). A
//     returning link is looked up front-first, then restored from disk
//     with a single read. Because spill and restore carry the same
//     encoded state bytes the RAM archive does, decisions stay
//     byte-identical across evict → spill → restore — resident memory is
//     then bounded by the hot set + front + cold index instead of the
//     total link population.
//   - Locking is striped per shard; batches are routed shard-by-shard so a
//     batch of B feedbacks takes O(shards-touched) lock acquisitions, not
//     O(B). With Config.BatchWorkers one caller's batch additionally fans
//     its shard visits out across cores, byte-identically to the
//     sequential executor (per-link order is per-shard order, and shards
//     are independent).
//   - Within a shard visit, contiguous ops for one link are serviced as a
//     run: one lookup and one state materialization for the run, and
//     wide-state algorithms that implement ctl.InPlace (SampleRate) are
//     applied directly to the slab slot with no decode/encode at all.
package linkstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"softrate/internal/bitutil"
	"softrate/internal/coldstore"
	"softrate/internal/core"
	"softrate/internal/ctl"
)

// Config parameterizes a Store.
type Config struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default 64).
	Shards int
	// DefaultAlgo is the algorithm used for ops carrying ctl.AlgoDefault
	// (which v1 wire records and zero-valued Ops do). Zero means
	// ctl.AlgoSoftRate.
	DefaultAlgo ctl.Algo
	// NewController overrides how per-algorithm controllers are built
	// (default ctl.New). Controllers it returns must keep the registered
	// Spec's StateLen — the store slab-allocates at that width — and all
	// controllers of one algorithm must be interchangeable up to state.
	NewController func(ctl.Algo) ctl.Controller
	// TTL is the idle time after which a link is evicted from the hot map
	// (0 disables eviction).
	TTL time.Duration
	// DropOnEvict discards evicted state instead of archiving it: a
	// returning link restarts from a fresh controller. Default false —
	// eviction is transparent.
	DropOnEvict bool
	// Clock returns the current time in nanoseconds (default
	// time.Now().UnixNano; injectable for deterministic tests).
	Clock func() int64
	// ExpectedLinks pre-sizes each shard's hot map and (lazily, on first
	// use per algorithm) its state slabs for about this many links store-
	// wide. Without it, growing a store to millions of links goes through
	// O(log n) map rehashes and slab doublings, each a full copy under the
	// shard lock — the batch_max_ns cold spikes. 0 starts small.
	ExpectedLinks int
	// ExpectedLinksPerAlgo refines the slab reserve for stores serving a
	// mix of algorithms: each algorithm's slabs reserve for about this
	// many links store-wide instead of ExpectedLinks. 0 defaults to
	// ExpectedLinks — right when all links run one algorithm, but a
	// factor-of-algorithms memory overcommit for a heterogeneous fleet
	// of wide-state links.
	ExpectedLinksPerAlgo int
	// Cold, when non-nil, is the disk tier idle links overflow to: the
	// RAM archive becomes a bounded two-generation front of about
	// ColdFront links, and each filled generation is group-committed to
	// Cold in one batch. Nil keeps the unbounded in-RAM archive.
	Cold *coldstore.Store
	// ColdFront is the store-wide RAM-archive budget (links) when Cold is
	// set: links evicted more recently than roughly this many evictions
	// ago restore without disk I/O. 0 means DefaultColdFront.
	ColdFront int
	// BatchWorkers, when > 1, lets a single ApplyBatch call fan its shard
	// visits out across up to this many goroutines (the batch is already
	// routed shard-by-shard; shards are independent, so per-link order —
	// which is per-shard order — is preserved and the output and resulting
	// store state are byte-identical to the sequential executor at any
	// worker count). 0 or 1 keeps ApplyBatch single-threaded; concurrency
	// then comes from concurrent callers, as before.
	BatchWorkers int
}

// Op is one feedback event addressed to one link. It is deliberately 32
// bytes — the loadgen builds millions per second and batches of them must
// stay cache-resident — so the physical quantities that don't need 52
// mantissa bits (SNR in dB, airtime in seconds) travel as float32.
type Op struct {
	// LinkID identifies the link (sender, receiver, direction — however
	// the caller names it).
	LinkID uint64
	// BER is the interference-free BER estimate (KindBER/KindCollision).
	BER float64
	// SNRdB is the receiver's SNR estimate, NaN when unknown (consumed by
	// the SNR-based algorithms; v1 wire records decode to NaN).
	SNRdB float32
	// Airtime is the frame's airtime in seconds, 0 when unknown (consumed
	// by SampleRate's transmission-time metric).
	Airtime float32
	// RateIndex is the rate the frame was sent at (KindBER/KindCollision).
	RateIndex int32
	// Algo selects the link's algorithm at first touch; existing links
	// keep theirs. ctl.AlgoDefault (the zero value) means the store
	// default.
	Algo ctl.Algo
	// Kind is the feedback kind.
	Kind core.FeedbackKind
	// Delivered reports whether the frame body arrived intact (consumed
	// by SampleRate and RRAA).
	Delivered bool
}

// feedback converts the op to the controller-facing form.
func (op *Op) feedback() ctl.Feedback {
	return ctl.Feedback{
		Kind:      op.Kind,
		RateIndex: int(op.RateIndex),
		BER:       op.BER,
		SNRdB:     float64(op.SNRdB),
		Airtime:   float64(op.Airtime),
		Delivered: op.Delivered,
	}
}

// ShardStats counts one shard's activity. Counters are cumulative.
type ShardStats struct {
	// Hits is the number of operations that found the link in the hot map.
	Hits uint64
	// Creates is the number of links created fresh.
	Creates uint64
	// Restores is the number of links revived from the archive.
	Restores uint64
	// Evictions is the number of links moved out of the hot map by TTL.
	Evictions uint64
	// Live is the current hot-map size.
	Live int
	// Archived is the current RAM-archive size (both front generations
	// when a cold tier is attached).
	Archived int
	// ArchivedBytes is the encoded state held by the RAM archive, in
	// bytes — the real memory picture, since a SampleRate link archives
	// ~1.7 KB where a SoftRate link archives 8 bytes.
	ArchivedBytes int64
}

// AlgoStats is the per-algorithm slice of a store's churn counters.
type AlgoStats struct {
	// Algo is the algorithm these counters cover.
	Algo ctl.Algo
	// Creates, Restores and Evictions mirror ShardStats, per algorithm.
	Creates, Restores, Evictions uint64
	// Live and Archived are current populations, per algorithm.
	Live, Archived int
	// ArchivedBytes is the RAM-archived encoded state, per algorithm.
	ArchivedBytes int64
}

// Stats is the store-wide aggregate of ShardStats.
type Stats struct {
	ShardStats
	// Shards is the number of shards aggregated.
	Shards int
	// Algos holds per-algorithm churn for every registered algorithm that
	// saw traffic, in ID order.
	Algos []AlgoStats
	// Cold is the attached disk tier's snapshot, nil without one.
	Cold *coldstore.Stats
	// ColdErrors counts cold-tier operations that failed (the store falls
	// back to a fresh controller on a failed restore and keeps spill
	// generations in RAM on a failed spill — never loses state silently).
	// It is the sum of ColdSpillErrors and ColdRestoreErrors.
	ColdErrors uint64
	// ColdSpillErrors counts failed generation spills (PutBatch errors);
	// each left its generation resident in RAM. ColdRestoreErrors counts
	// failed Take restores; each fell through to a fresh controller.
	ColdSpillErrors   uint64
	ColdRestoreErrors uint64
	// ColdDegraded reports the cold-tier breaker is open: persistent spill
	// failures have switched the store to the unbounded RAM archive until
	// a backoff-paced probe spill succeeds.
	ColdDegraded bool
	// BreakerTrips counts closed→open breaker transitions; SpillRetries
	// counts half-open probe spills attempted while the breaker was open.
	BreakerTrips uint64
	SpillRetries uint64
}

// DefaultColdFront is the store-wide RAM-archive link budget when a cold
// tier is attached and Config.ColdFront is zero.
const DefaultColdFront = 65536

// Cold-tier breaker schedule: trip after this many consecutive spill
// failures, then probe with exponential backoff between these bounds.
const (
	breakerTripAfter  = 3
	breakerMinBackoff = 100 * time.Millisecond
	breakerMaxBackoff = 10 * time.Second
)

// inlineState is the largest encoded state kept inline in the entry.
const inlineState = 8

// tickShift converts clock nanoseconds to the entry timestamp unit:
// 2^20 ns ≈ 1.05 ms per tick, 2^32 ticks ≈ 52 days of store uptime
// before the stamp wraps. Ages are computed in wrapping uint32
// arithmetic, so a wrap can at worst delay one eviction by a sweep
// period — it cannot corrupt state.
const tickShift = 20

// entry is the hot-map value, deliberately 16 bytes: for algorithms
// whose encoded state fits inlineState bytes (SoftRate's 8), the state
// lives directly in the entry — map bucket and state share a cache
// line, exactly the memory shape of the SoftRate-only store this layer
// grew from. Wider states live in the per-algorithm slab, and the slot
// index is overlaid on the (then unused) state bytes.
type entry struct {
	state    [inlineState]byte // encoded state (w <= 8) or LE slab slot in [0:4)
	lastUsed uint32            // ticks since the store epoch
	algo     ctl.Algo
}

func (e *entry) slot() uint32     { return binary.LittleEndian.Uint32(e.state[0:4]) }
func (e *entry) setSlot(v uint32) { binary.LittleEndian.PutUint32(e.state[0:4], v) }

// archInline is the largest encoded state archived without a heap
// allocation (covers SoftRate's 8 bytes and both SNR schemes' 20).
const archInline = 24

type archived struct {
	spill  []byte
	inline [archInline]byte
	algo   ctl.Algo
}

func (a *archived) state(w int) []byte {
	if w <= archInline {
		return a.inline[:w]
	}
	return a.spill
}

// slab is one shard's state storage for one algorithm: fixed-width slots
// in a flat byte array with a free list.
type slab struct {
	data []byte
	free []uint32
}

// alloc returns a free slot, growing the backing array as needed. reserve
// is a capacity hint in slots: the first growth of an empty slab jumps
// straight to it, so a store sized with Config.ExpectedLinks never pays
// the doubling-copy cascade for algorithms that actually see traffic
// (and algorithms that don't never allocate at all).
func (s *slab) alloc(w, reserve int) uint32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	if w <= 0 {
		return 0
	}
	slot := uint32(len(s.data) / w)
	need := len(s.data) + w
	if cap(s.data) < need {
		newCap := 2 * cap(s.data)
		if newCap < need {
			newCap = need
		}
		if r := reserve * w; cap(s.data) == 0 && newCap < r {
			newCap = r
		}
		nd := make([]byte, len(s.data), newCap)
		copy(nd, s.data)
		s.data = nd
	}
	s.data = s.data[:need] // contents overwritten by the caller's copy
	return slot
}

func (s *slab) at(slot uint32, w int) []byte {
	off := int(slot) * w
	return s.data[off : off+w]
}

type algoCounters struct {
	creates, restores, evictions uint64
	live, archived               int
	archivedBytes                int64
}

type shard struct {
	mu sync.Mutex
	// links is the hot map; archive the RAM tier of evicted state. With a
	// cold tier, archive is the current front generation and archiveOld
	// the previous one: a filled current generation rotates, spilling
	// archiveOld to disk in one batch (archiveOld stays nil without a
	// cold tier, and lookups of a nil map are free).
	links      map[uint64]entry
	archive    map[uint64]archived
	archiveOld map[uint64]archived
	// spillBuf/spillRecs are the rotation scratch: one flat byte buffer
	// holding every spilled state (archived values are copied out of the
	// map iteration variable, whose inline array is reused) and the
	// record headers pointing into it.
	spillBuf  []byte
	spillRecs []coldstore.Record
	spillOffs []int
	coldBuf   []byte           // Take destination, reused
	slabs     []slab           // indexed by algo ID
	scratch   []ctl.Controller // indexed by algo ID, built lazily
	// soft caches the unwrapped core controller of any *ctl.SoftRate
	// scratch: the overwhelmingly common algorithm skips the interface
	// round trip (DecodeState/Apply/EncodeState collapse to two uint32
	// loads, the §3.3 threshold rule, and two stores).
	soft []*core.SoftRate // indexed by algo ID; nil for other types
	// inplace caches scratch controllers that run directly against their
	// slab slot (ctl.InPlace): wide-state ops then skip the DecodeState /
	// EncodeState round trip entirely — for SampleRate that round trip is
	// ~3.4 KB of serialization per op and dominates the algorithm's
	// serving cost.
	inplace   []ctl.InPlace  // indexed by algo ID; nil when unsupported
	perAlgo   []algoCounters // indexed by algo ID
	smallBuf  [inlineState]byte
	stats     ShardStats
	lastSweep int64
}

// Store is the sharded link-state store.
type Store struct {
	cfg         Config
	mask        uint64
	ttl         int64  // nanoseconds, for sweep scheduling
	ttlTicks    uint32 // entry-timestamp units, for age checks
	epoch       int64  // clock value ticks are measured from
	defaultAlgo ctl.Algo
	widths      []int    // indexed by algo ID; -1 = unregistered
	fresh       [][]byte // indexed by algo ID: a new controller's state
	build       func(ctl.Algo) ctl.Controller
	workers     int // parallel ApplyBatch executors (<=1: sequential)
	slabReserve int // per-shard slab capacity hint, in slots
	cold        *coldstore.Store
	genCap      int // per-shard archive-generation cap (links), 0 = unbounded
	shards      []shard

	// Cold-tier failure accounting and the degradation breaker. Spill
	// failures never lose state — the failing generation stays resident —
	// so the breaker's job is purely to stop hammering a broken disk:
	// after breakerTripAfter consecutive spill failures rotations stop
	// attempting disk I/O (the RAM archive grows unbounded, exactly the
	// no-cold-tier behavior) and one probe spill is allowed per backoff
	// interval, doubling up to breakerMaxBackoff until a probe succeeds.
	coldSpillErrors   atomic.Uint64
	coldRestoreErrors atomic.Uint64
	breakerTrips      atomic.Uint64
	spillRetries      atomic.Uint64
	breakerMu         sync.Mutex
	breakerOpen       bool
	consecSpillFails  int
	retryAt           int64 // clock ns of the next allowed probe while open
	retryBackoff      int64 // current backoff ns, doubling to the cap

	scratchPool sync.Pool // *batchScratch, for ApplyBatch routing
}

type batchScratch struct {
	perShard [][]int32
	shards   []int32 // shards touched by the current batch, in visit order
}

// New builds a Store.
func New(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	st := &Store{cfg: cfg, mask: uint64(n - 1), ttl: cfg.TTL.Nanoseconds()}
	st.epoch = cfg.Clock()
	if st.ttl > 0 {
		st.ttlTicks = uint32(st.ttl >> tickShift)
		if st.ttlTicks == 0 {
			st.ttlTicks = 1
		}
	}
	st.defaultAlgo = cfg.DefaultAlgo
	if st.defaultAlgo == ctl.AlgoDefault {
		st.defaultAlgo = ctl.AlgoSoftRate
	}
	st.build = cfg.NewController
	if st.build == nil {
		st.build = ctl.New
	}
	nAlgos := int(ctl.MaxID()) + 1
	st.widths = make([]int, nAlgos)
	st.fresh = make([][]byte, nAlgos)
	for i := range st.widths {
		st.widths[i] = -1
	}
	for _, spec := range ctl.Specs() {
		c := st.build(spec.ID)
		w := c.StateLen()
		st.widths[spec.ID] = w
		st.fresh[spec.ID] = make([]byte, w)
		c.EncodeState(st.fresh[spec.ID])
	}
	if st.widths[st.defaultAlgo] < 0 {
		panic("linkstore: default algorithm is not registered")
	}
	st.workers = cfg.BatchWorkers
	perShard := 0
	if cfg.ExpectedLinks > 0 {
		perShard = cfg.ExpectedLinks/n + 1
	}
	st.slabReserve = perShard
	if cfg.ExpectedLinksPerAlgo > 0 {
		st.slabReserve = cfg.ExpectedLinksPerAlgo/n + 1
	}
	st.cold = cfg.Cold
	archSize := perShard / 8
	if st.cold != nil {
		// With a cold tier the archive is a bounded front: each shard
		// holds two generations of genCap links, so the store-wide RAM
		// budget is ColdFront regardless of population. Presize to the
		// budget, not the (now meaningless) hot-map hint.
		front := cfg.ColdFront
		if front <= 0 {
			front = DefaultColdFront
		}
		st.genCap = front / (2 * n)
		if st.genCap < 1 {
			st.genCap = 1
		}
		archSize = st.genCap
	}
	st.shards = make([]shard, n)
	for i := range st.shards {
		st.shards[i].links = make(map[uint64]entry, perShard)
		// Without a cold tier the archive only fills under TTL churn and
		// rarely holds the whole population; an eighth of the hot-map hint
		// avoids doubling the up-front footprint while still skipping the
		// early rehashes. With one, it is presized to its generation cap.
		st.shards[i].archive = make(map[uint64]archived, archSize)
		st.shards[i].slabs = make([]slab, nAlgos)
		st.shards[i].scratch = make([]ctl.Controller, nAlgos)
		st.shards[i].soft = make([]*core.SoftRate, nAlgos)
		st.shards[i].inplace = make([]ctl.InPlace, nAlgos)
		st.shards[i].perAlgo = make([]algoCounters, nAlgos)
		// The default algorithm's scratch is built eagerly: it serves
		// every op that doesn't name an algorithm, and pre-building keeps
		// scratchFor off the fast path for SoftRate defaults.
		st.shards[i].scratchFor(st, st.defaultAlgo)
	}
	st.scratchPool.New = func() any {
		return &batchScratch{perShard: make([][]int32, n), shards: make([]int32, 0, n)}
	}
	return st
}

// NumShards returns the (power-of-two) shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// resolveAlgo maps an op's Algo to a registered algorithm: AlgoDefault
// (and any unregistered ID — the wire codec rejects those, so in-process
// callers get the conservative reading) becomes the store default.
func (st *Store) resolveAlgo(a ctl.Algo) ctl.Algo {
	if int(a) < len(st.widths) && st.widths[a] >= 0 {
		return a
	}
	return st.defaultAlgo
}

// shardIndex mixes the link ID through the SplitMix64 finalizer so that
// sequential IDs spread evenly across shards.
func (st *Store) shardIndex(id uint64) int {
	return int(bitutil.Mix64(id) & st.mask)
}

func (st *Store) shardFor(id uint64) *shard {
	return &st.shards[st.shardIndex(id)]
}

// tickOf converts a clock reading to the entry timestamp unit.
func (st *Store) tickOf(now int64) uint32 {
	d := now - st.epoch
	if d < 0 {
		d = 0
	}
	return uint32(d >> tickShift)
}

// scratchFor returns the shard's scratch controller for an algorithm,
// building it on first use. Caller holds sh.mu.
func (sh *shard) scratchFor(st *Store, a ctl.Algo) ctl.Controller {
	c := sh.scratch[a]
	if c == nil {
		c = st.build(a)
		sh.scratch[a] = c
		if s, ok := c.(*ctl.SoftRate); ok && c.StateLen() == 8 {
			sh.soft[a] = s.SR
		} else if ip, ok := c.(ctl.InPlace); ok && ip.InPlaceOK() && st.widths[a] > inlineState {
			sh.inplace[a] = ip
		}
	}
	return c
}

// createLocked builds the entry for a link absent from the hot map:
// revived from either RAM-archive generation or the cold tier (keeping
// its original algorithm), or created fresh with the op's. Caller holds
// sh.mu.
func (sh *shard) createLocked(st *Store, id uint64, algo ctl.Algo) entry {
	if !st.cfg.DropOnEvict {
		if a, ok := sh.archive[id]; ok {
			delete(sh.archive, id)
			return sh.reviveLocked(st, a)
		}
		if a, ok := sh.archiveOld[id]; ok {
			delete(sh.archiveOld, id)
			return sh.reviveLocked(st, a)
		}
		if st.cold != nil {
			if e, ok := sh.coldRestoreLocked(st, id); ok {
				return e
			}
		}
	}
	w := st.widths[algo]
	e := entry{algo: algo}
	if w <= inlineState {
		copy(e.state[:w], st.fresh[algo])
	} else {
		slot := sh.slabs[algo].alloc(w, st.slabReserve)
		e.setSlot(slot)
		copy(sh.slabs[algo].at(slot, w), st.fresh[algo])
	}
	sh.stats.Creates++
	sh.perAlgo[algo].creates++
	sh.perAlgo[algo].live++
	return e
}

// reviveLocked turns a RAM-archived state back into a hot entry. Caller
// holds sh.mu and has removed a from its generation map.
func (sh *shard) reviveLocked(st *Store, a archived) entry {
	w := st.widths[a.algo]
	e := entry{algo: a.algo}
	if w <= inlineState {
		copy(e.state[:w], a.state(w))
	} else {
		slot := sh.slabs[a.algo].alloc(w, st.slabReserve)
		e.setSlot(slot)
		copy(sh.slabs[a.algo].at(slot, w), a.state(w))
	}
	sh.stats.Restores++
	sh.perAlgo[a.algo].restores++
	sh.perAlgo[a.algo].archived--
	sh.perAlgo[a.algo].archivedBytes -= int64(w)
	sh.perAlgo[a.algo].live++
	return e
}

// coldRestoreLocked takes a link's state back from the disk tier: one
// read, CRC-checked, carrying the exact bytes the link spilled with (so
// the restored controller is byte-identical to the evicted one). A
// failed or unparseable restore counts a cold error and falls through
// to a fresh controller — never a half-decoded one. Caller holds sh.mu.
func (sh *shard) coldRestoreLocked(st *Store, id uint64) (entry, bool) {
	algoB, state, ok, err := st.cold.Take(id, sh.coldBuf[:0])
	if err != nil {
		st.coldRestoreErrors.Add(1)
		return entry{}, false
	}
	if !ok {
		return entry{}, false
	}
	sh.coldBuf = state[:0]
	a := ctl.Algo(algoB)
	if int(a) >= len(st.widths) || st.widths[a] != len(state) {
		// A record from an unregistered algorithm or the wrong width —
		// possible only across an incompatible binary change. Refuse it.
		st.coldRestoreErrors.Add(1)
		return entry{}, false
	}
	w := st.widths[a]
	e := entry{algo: a}
	if w <= inlineState {
		copy(e.state[:w], state)
	} else {
		slot := sh.slabs[a].alloc(w, st.slabReserve)
		e.setSlot(slot)
		copy(sh.slabs[a].at(slot, w), state)
	}
	sh.stats.Restores++
	sh.perAlgo[a].restores++
	sh.perAlgo[a].live++
	return e, true
}

// applyShardLocked services a shard's slice of one batch: idxs index into
// ops/out in batch order. Contiguous ops for the same link — the natural
// shape when a sender batches several frames' feedback per station — are
// serviced as one run: one map lookup, one TTL stamp, and one state
// decode/encode for the whole run instead of one per op. Caller holds
// sh.mu.
func (sh *shard) applyShardLocked(st *Store, ops []Op, idxs []int32, out []int32, nowTick uint32) {
	for k := 0; k < len(idxs); {
		id := ops[idxs[k]].LinkID
		j := k + 1
		for j < len(idxs) && ops[idxs[j]].LinkID == id {
			j++
		}
		sh.applyRunLocked(st, ops, idxs[k:j], out, nowTick)
		k = j
	}
}

// applyRunLocked runs one link's consecutive ops against a shard. The
// link's state is materialized once, every op of the run applied, and the
// result written back once — for in-place-capable wide-state algorithms
// (ctl.InPlace) it is never materialized at all and each op mutates the
// slab slot directly. Caller holds sh.mu.
func (sh *shard) applyRunLocked(st *Store, ops []Op, run []int32, out []int32, nowTick uint32) {
	id := ops[run[0]].LinkID
	// Hot path: the link exists and its algorithm is already bound, so
	// the op's Algo field doesn't even need resolving.
	e, ok := sh.links[id]
	if ok {
		sh.stats.Hits += uint64(len(run))
	} else {
		e = sh.createLocked(st, id, st.resolveAlgo(ops[run[0]].Algo))
		// Later ops of a creating run find the link hot, exactly as the
		// op-at-a-time accounting would report.
		sh.stats.Hits += uint64(len(run) - 1)
	}
	if sr := sh.soft[e.algo]; sr != nil {
		// SoftRate fast path (scratch built eagerly in New): the 8-byte
		// inline state is decoded, applied and re-encoded with no
		// interface dispatch and no slab touch. Byte layout matches
		// ctl.SoftRate's EncodeState/DecodeState exactly.
		sr.Restore(core.State{
			RateIndex: int32(binary.LittleEndian.Uint32(e.state[0:4])),
			SilentRun: int32(binary.LittleEndian.Uint32(e.state[4:8])),
		})
		for _, i := range run {
			out[i] = int32(sr.Apply(ops[i].Kind, int(ops[i].RateIndex), ops[i].BER))
		}
		snap := sr.Snapshot()
		binary.LittleEndian.PutUint32(e.state[0:4], uint32(snap.RateIndex))
		binary.LittleEndian.PutUint32(e.state[4:8], uint32(snap.SilentRun))
	} else if w := st.widths[e.algo]; w > inlineState {
		c := sh.scratchFor(st, e.algo)
		buf := sh.slabs[e.algo].at(e.slot(), w)
		if ip := sh.inplace[e.algo]; ip != nil {
			for _, i := range run {
				ri, ok := ip.ApplyInPlace(buf, ops[i].feedback())
				if !ok {
					// Unreachable through the public API (slots only ever
					// hold what EncodeState wrote); recover to a fresh
					// controller rather than poisoning the shard.
					copy(buf, st.fresh[e.algo])
					c.DecodeState(buf)
					ri = c.Apply(ops[i].feedback())
					c.EncodeState(buf)
				}
				out[i] = int32(ri)
			}
		} else {
			if err := c.DecodeState(buf); err != nil {
				// Unreachable through the public API; recover as above.
				copy(buf, st.fresh[e.algo])
				c.DecodeState(buf)
			}
			for _, i := range run {
				out[i] = int32(c.Apply(ops[i].feedback()))
			}
			c.EncodeState(buf)
		}
	} else if w > 0 {
		// Small-state interface path: bounce through the shard's scratch
		// buffer rather than slicing e.state directly — a slice of a
		// local escaping into an interface call would force the compiler
		// to heap-allocate every entry, on every path of this function.
		c := sh.scratchFor(st, e.algo)
		buf := sh.smallBuf[:w]
		copy(buf, e.state[:w])
		if err := c.DecodeState(buf); err != nil {
			copy(buf, st.fresh[e.algo])
			c.DecodeState(buf)
		}
		for _, i := range run {
			out[i] = int32(c.Apply(ops[i].feedback()))
		}
		c.EncodeState(buf)
		copy(e.state[:w], buf)
	} else {
		c := sh.scratchFor(st, e.algo)
		for _, i := range run {
			out[i] = int32(c.Apply(ops[i].feedback()))
		}
	}
	e.lastUsed = nowTick
	sh.links[id] = e
}

// archiveLocked moves one hot entry's state into the RAM archive's
// current generation and frees its slab slot. Caller holds sh.mu and
// deletes the entry from sh.links itself.
func (sh *shard) archiveLocked(st *Store, id uint64, e entry) {
	w := st.widths[e.algo]
	if !st.cfg.DropOnEvict {
		a := archived{algo: e.algo}
		if w > 0 {
			if w > archInline {
				a.spill = make([]byte, w)
			}
			if w <= inlineState {
				copy(a.state(w), e.state[:w])
			} else {
				copy(a.state(w), sh.slabs[e.algo].at(e.slot(), w))
			}
		}
		sh.archive[id] = a
		sh.perAlgo[e.algo].archived++
		sh.perAlgo[e.algo].archivedBytes += int64(w)
	}
	if w > inlineState {
		sh.slabs[e.algo].free = append(sh.slabs[e.algo].free, e.slot())
	}
	sh.perAlgo[e.algo].evictions++
	sh.perAlgo[e.algo].live--
}

// sweepLocked evicts idle links. Caller holds sh.mu.
func (sh *shard) sweepLocked(st *Store, now int64) int {
	nowTick := st.tickOf(now)
	evicted := 0
	for id, e := range sh.links {
		if nowTick-e.lastUsed >= st.ttlTicks { // wrapping age in ticks
			sh.archiveLocked(st, id, e)
			delete(sh.links, id)
			evicted++
		}
	}
	sh.stats.Evictions += uint64(evicted)
	sh.lastSweep = now
	// Rotate until the RAM front fits its budget again. One sweep can
	// idle out far more than genCap links at once (a synchronized
	// population — everything created in one burst — ages out in one
	// pass), and a single rotation would park that burst in archiveOld
	// without ever reaching disk: the next sweep would see an empty
	// current generation and stand down, leaving the budget violated
	// indefinitely. The loop runs at most twice per sweep in practice
	// (spill old, swap the burst into old, spill it too).
	for st.genCap > 0 &&
		(len(sh.archive) >= st.genCap || len(sh.archive)+len(sh.archiveOld) > 2*st.genCap) {
		if !sh.rotateArchiveLocked(st, now) {
			break // spill error or open breaker: keep both generations in RAM
		}
	}
	return evicted
}

// coldSpillAllowed reports whether a rotation may attempt a disk spill
// now, and whether that attempt is a half-open probe of an open breaker.
// Granting a probe re-arms retryAt immediately, so concurrently sweeping
// shards don't all probe a disk that just failed.
func (st *Store) coldSpillAllowed(now int64) (allowed, probe bool) {
	st.breakerMu.Lock()
	defer st.breakerMu.Unlock()
	if !st.breakerOpen {
		return true, false
	}
	if now >= st.retryAt {
		st.retryAt = now + st.retryBackoff
		return true, true
	}
	return false, false
}

// coldSpillResult feeds one spill outcome into the breaker: any success
// closes it and resets the backoff; breakerTripAfter consecutive failures
// open it, and each further failure doubles the probe backoff up to
// breakerMaxBackoff.
func (st *Store) coldSpillResult(err error) {
	st.breakerMu.Lock()
	defer st.breakerMu.Unlock()
	if err == nil {
		st.breakerOpen = false
		st.consecSpillFails = 0
		st.retryBackoff = 0
		return
	}
	st.consecSpillFails++
	if !st.breakerOpen {
		if st.consecSpillFails < breakerTripAfter {
			return
		}
		st.breakerOpen = true
		st.breakerTrips.Add(1)
	}
	if st.retryBackoff == 0 {
		st.retryBackoff = breakerMinBackoff.Nanoseconds()
	} else if st.retryBackoff < breakerMaxBackoff.Nanoseconds() {
		st.retryBackoff *= 2
		if st.retryBackoff > breakerMaxBackoff.Nanoseconds() {
			st.retryBackoff = breakerMaxBackoff.Nanoseconds()
		}
	}
	st.retryAt = st.cfg.Clock() + st.retryBackoff
}

// ColdDegraded reports whether the cold-tier breaker is open (the store
// is running on the unbounded RAM archive until a probe spill succeeds).
func (st *Store) ColdDegraded() bool {
	st.breakerMu.Lock()
	defer st.breakerMu.Unlock()
	return st.breakerOpen
}

// rotateArchiveLocked ages the archive one generation: the old
// generation is spilled to the cold tier in one group-committed batch
// and its (emptied) map becomes the new current generation. On a spill
// error both generations stay in RAM — nothing is lost, the rotation
// retries at the next sweep — and the rotation reports failure. While
// the breaker is open the spill isn't even attempted (beyond one
// backoff-paced probe): the store has formally degraded to the
// unbounded RAM archive. Caller holds sh.mu.
func (sh *shard) rotateArchiveLocked(st *Store, now int64) bool {
	if len(sh.archiveOld) > 0 {
		allowed, probe := st.coldSpillAllowed(now)
		if !allowed {
			return false
		}
		if probe {
			st.spillRetries.Add(1)
		}
	}
	if err := sh.spillGenLocked(st, sh.archiveOld); err != nil {
		return false
	}
	old := sh.archiveOld
	if old == nil {
		old = make(map[uint64]archived, st.genCap)
	}
	sh.archiveOld = sh.archive
	sh.archive = old
	return true
}

// spillGenLocked writes every record of one archive generation to the
// cold tier in a single batch and empties the generation. The states are
// first copied into one flat reusable buffer: map iteration yields
// archived values whose inline array lives in the (reused) loop
// variable, so records must not point into it — and the flat layout is
// exactly what the cold tier's group commit serializes anyway. Caller
// holds sh.mu.
func (sh *shard) spillGenLocked(st *Store, gen map[uint64]archived) error {
	if len(gen) == 0 {
		return nil
	}
	recs := sh.spillRecs[:0]
	offs := sh.spillOffs[:0]
	buf := sh.spillBuf[:0]
	for id, a := range gen {
		offs = append(offs, len(buf))
		buf = append(buf, a.state(st.widths[a.algo])...)
		recs = append(recs, coldstore.Record{LinkID: id, Algo: uint8(a.algo)})
	}
	// buf may have reallocated while filling; point the records at the
	// final backing array only now.
	for i := range recs {
		w := st.widths[recs[i].Algo]
		recs[i].State = buf[offs[i] : offs[i]+w]
	}
	err := st.cold.PutBatch(recs)
	sh.spillBuf, sh.spillRecs, sh.spillOffs = buf[:0], recs[:0], offs[:0]
	st.coldSpillResult(err)
	if err != nil {
		st.coldSpillErrors.Add(1)
		return err
	}
	for _, a := range gen {
		sh.perAlgo[a.algo].archived--
		sh.perAlgo[a.algo].archivedBytes -= int64(st.widths[a.algo])
	}
	clear(gen)
	return nil
}

// maybeSweepLocked runs a TTL sweep if one is due. A shard sweeps at most
// every TTL/4, so the amortized per-op eviction cost stays constant while
// no link outlives its TTL by more than 25%. Caller holds sh.mu.
func (sh *shard) maybeSweepLocked(st *Store, now int64) {
	if st.ttl <= 0 || now-sh.lastSweep < st.ttl/4 {
		return
	}
	sh.sweepLocked(st, now)
}

// Apply routes one feedback event to its link's controller and returns the
// chosen next-rate index. The link is created (or revived from the
// archive) if absent.
func (st *Store) Apply(op Op) int {
	now := st.cfg.Clock()
	nowTick := st.tickOf(now)
	sh := st.shardFor(op.LinkID)
	ops := [1]Op{op}
	idx := [1]int32{0}
	var out [1]int32
	sh.mu.Lock()
	sh.applyRunLocked(st, ops[:], idx[:], out[:], nowTick)
	sh.maybeSweepLocked(st, now)
	sh.mu.Unlock()
	return int(out[0])
}

// BatchStats receives per-batch tallies collected during ApplyBatchStats'
// routing pass — the pass that touches every op anyway — so service-level
// accounting costs no extra iteration over the batch.
type BatchStats struct {
	// Kinds counts the batch's ops per feedback kind (out-of-range kinds
	// are not counted).
	Kinds [core.NumKinds]uint64
	// Algo is the batch's resolved algorithm when every op resolves to the
	// same one — the common shape, since a sender batches one station's
	// feedback and the loadgen partitions clients per algorithm. When ops
	// resolve to more than one algorithm, Mixed is set and Algo holds the
	// first. Resolution follows each op's Algo field against the store
	// default; a pre-existing link bound to a different algorithm still
	// tallies under the op's requested algorithm (the binding lives behind
	// the shard lock, which the routing pass deliberately never takes).
	Algo ctl.Algo
	// Mixed reports that the batch's ops named more than one algorithm.
	Mixed bool
}

// minParallelOps is the smallest batch the parallel executor bothers
// with: below it, the goroutine handoff costs more than the shard visits.
const minParallelOps = 64

// ApplyBatch processes ops and writes the chosen rate index of ops[i] to
// out[i], which must be at least len(ops) long. Ops are routed shard by
// shard — each touched shard's lock is taken exactly once — while per-link
// ordering is preserved (a link's ops live in one shard and are applied in
// batch order). With Config.BatchWorkers > 1 the shard visits of one call
// run concurrently; outputs and resulting store state are byte-identical
// either way. Returns out[:len(ops)].
func (st *Store) ApplyBatch(ops []Op, out []int32) []int32 {
	return st.ApplyBatchStats(ops, out, nil)
}

// ApplyBatchStats is ApplyBatch with per-batch tallies: when bs is
// non-nil it is filled during the routing pass. bs is not written
// atomically — it must not be shared with other goroutines mid-call.
func (st *Store) ApplyBatchStats(ops []Op, out []int32, bs *BatchStats) []int32 {
	now := st.cfg.Clock()
	nowTick := st.tickOf(now)
	scratch := st.scratchPool.Get().(*batchScratch)
	touched := scratch.shards[:0]
	for i := range ops {
		si := st.shardIndex(ops[i].LinkID)
		if len(scratch.perShard[si]) == 0 {
			touched = append(touched, int32(si))
		}
		scratch.perShard[si] = append(scratch.perShard[si], int32(i))
		if bs != nil {
			if k := ops[i].Kind; k < core.NumKinds {
				bs.Kinds[k]++
			}
			if a := st.resolveAlgo(ops[i].Algo); i == 0 {
				bs.Algo = a
			} else if a != bs.Algo {
				bs.Mixed = true
			}
		}
	}
	scratch.shards = touched
	if st.workers > 1 && len(touched) > 1 && len(ops) >= minParallelOps {
		st.applyShardsParallel(ops, out, scratch, nowTick, now)
	} else {
		for _, si := range touched {
			st.applyOneShard(ops, out, scratch, si, nowTick, now)
		}
	}
	st.scratchPool.Put(scratch)
	return out[:len(ops)]
}

// applyOneShard visits one routed shard of a batch and releases its slice
// of the routing scratch.
func (st *Store) applyOneShard(ops []Op, out []int32, scratch *batchScratch, si int32, nowTick uint32, now int64) {
	sh := &st.shards[si]
	sh.mu.Lock()
	sh.applyShardLocked(st, ops, scratch.perShard[si], out, nowTick)
	sh.maybeSweepLocked(st, now)
	sh.mu.Unlock()
	scratch.perShard[si] = scratch.perShard[si][:0]
}

// applyShardsParallel fans one batch's shard visits out over up to
// st.workers goroutines (the caller is one of them). Shards are handed
// out via an atomic cursor; each is visited by exactly one worker, and
// out[] writes are disjoint by construction, so no further coordination
// is needed and the result is byte-identical to the sequential loop.
func (st *Store) applyShardsParallel(ops []Op, out []int32, scratch *batchScratch, nowTick uint32, now int64) {
	touched := scratch.shards
	n := st.workers
	if n > len(touched) {
		n = len(touched)
	}
	var cursor atomic.Int64
	work := func() {
		for {
			k := cursor.Add(1) - 1
			if k >= int64(len(touched)) {
				return
			}
			st.applyOneShard(ops, out, scratch, touched[k], nowTick, now)
		}
	}
	var wg sync.WaitGroup
	wg.Add(n - 1)
	for i := 0; i < n-1; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
}

// Peek returns the link's algorithm and a copy of its encoded controller
// state without touching its TTL stamp or creating it. The last result
// reports whether the link exists (hot or archived).
func (st *Store) Peek(id uint64) (ctl.Algo, []byte, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.links[id]; ok {
		w := st.widths[e.algo]
		out := make([]byte, w)
		if w <= inlineState {
			copy(out, e.state[:w])
		} else {
			copy(out, sh.slabs[e.algo].at(e.slot(), w))
		}
		return e.algo, out, true
	}
	if a, ok := sh.archive[id]; ok {
		w := st.widths[a.algo]
		out := make([]byte, w)
		copy(out, a.state(w))
		return a.algo, out, true
	}
	if a, ok := sh.archiveOld[id]; ok {
		w := st.widths[a.algo]
		out := make([]byte, w)
		copy(out, a.state(w))
		return a.algo, out, true
	}
	if st.cold != nil {
		if algoB, state, ok, err := st.cold.Peek(id, nil); err == nil && ok {
			return ctl.Algo(algoB), state, true
		}
	}
	return ctl.AlgoDefault, nil, false
}

// SpillAll moves every link — hot, and both RAM-archive generations —
// into the cold tier and empties the store. It is the graceful-shutdown
// half of the crash-restart contract: after SpillAll, a process that
// reopens the same cold directory restores every link byte-identically,
// including links that had been taken back from disk since their last
// spill. Returns the number of links spilled; a no-op without a cold
// tier. Every shard is attempted regardless of earlier failures (and
// regardless of the breaker — this is the last chance to persist); a
// failing shard keeps its state in RAM, and the returned error joins
// every shard's failure (errors.Join, each wrapped with its shard index)
// so a partial drain spill is diagnosable from the exit dump. The
// per-failure counts also land in Stats.ColdSpillErrors.
func (st *Store) SpillAll() (int, error) {
	if st.cold == nil {
		return 0, nil
	}
	now := st.cfg.Clock()
	total := 0
	var errs []error
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, e := range sh.links {
			sh.archiveLocked(st, id, e)
			sh.stats.Evictions++
			delete(sh.links, id)
		}
		n := len(sh.archive) + len(sh.archiveOld)
		err := sh.spillGenLocked(st, sh.archiveOld)
		if err == nil {
			err = sh.spillGenLocked(st, sh.archive)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
		} else {
			total += n
		}
		sh.lastSweep = now
		sh.mu.Unlock()
	}
	return total, errors.Join(errs...)
}

// EvictIdle sweeps every shard now, evicting links idle for at least the
// TTL, and returns the number evicted. A no-op when TTL is zero.
func (st *Store) EvictIdle() int {
	if st.ttl <= 0 {
		return 0
	}
	now := st.cfg.Clock()
	total := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		total += sh.sweepLocked(st, now)
		sh.mu.Unlock()
	}
	return total
}

// Len returns the number of links in the hot maps.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.links)
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates all shards' counters.
func (st *Store) Stats() Stats {
	var out Stats
	out.Shards = len(st.shards)
	perAlgo := make([]algoCounters, len(st.widths))
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		s := sh.stats
		s.Live = len(sh.links)
		s.Archived = len(sh.archive) + len(sh.archiveOld)
		for a := range sh.perAlgo {
			c := &sh.perAlgo[a]
			perAlgo[a].creates += c.creates
			perAlgo[a].restores += c.restores
			perAlgo[a].evictions += c.evictions
			perAlgo[a].archived += c.archived
			perAlgo[a].archivedBytes += c.archivedBytes
			perAlgo[a].live += c.live
		}
		sh.mu.Unlock()
		out.Hits += s.Hits
		out.Creates += s.Creates
		out.Restores += s.Restores
		out.Evictions += s.Evictions
		out.Live += s.Live
		out.Archived += s.Archived
	}
	for a := range perAlgo {
		c := perAlgo[a]
		if c.creates == 0 && c.restores == 0 && c.evictions == 0 && c.live == 0 && c.archived == 0 {
			continue
		}
		out.ArchivedBytes += c.archivedBytes
		out.Algos = append(out.Algos, AlgoStats{
			Algo: ctl.Algo(a), Creates: c.creates, Restores: c.restores,
			Evictions: c.evictions, Live: c.live, Archived: c.archived,
			ArchivedBytes: c.archivedBytes,
		})
	}
	if st.cold != nil {
		cs := st.cold.Stats()
		out.Cold = &cs
	}
	out.ColdSpillErrors = st.coldSpillErrors.Load()
	out.ColdRestoreErrors = st.coldRestoreErrors.Load()
	out.ColdErrors = out.ColdSpillErrors + out.ColdRestoreErrors
	out.ColdDegraded = st.ColdDegraded()
	out.BreakerTrips = st.breakerTrips.Load()
	out.SpillRetries = st.spillRetries.Load()
	return out
}

// PerShard returns a snapshot of each shard's stats (for balance checks
// and the softrated stats endpoint).
func (st *Store) PerShard() []ShardStats {
	out := make([]ShardStats, len(st.shards))
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		out[i] = sh.stats
		out[i].Live = len(sh.links)
		out[i].Archived = len(sh.archive) + len(sh.archiveOld)
		for a := range sh.perAlgo {
			out[i].ArchivedBytes += sh.perAlgo[a].archivedBytes
		}
		sh.mu.Unlock()
	}
	return out
}
