// Package linkstore is the decision service's state layer: a hash-sharded,
// striped-lock store of per-link SoftRate controllers. It is built to hold
// millions of concurrent links on one host:
//
//   - Per link it stores only core.State (8 bytes) plus a last-used stamp,
//     not a full controller. Every controller built from one Config is
//     identical except for that State (the thresholds are pure functions of
//     the Config), so each shard keeps a single scratch controller and
//     services a link by Restore → apply → Snapshot. Controllers are thus
//     relocatable between shards, processes, and machines.
//   - Links are created lazily on first touch and evicted after a
//     configurable idle TTL. Evicted state moves to a per-shard archive (a
//     bare linkID → State map, no stamp), so a link that comes back after
//     an idle period resumes exactly where it left off — eviction is
//     invisible to the protocol, it only sheds hot-map bookkeeping.
//   - Locking is striped per shard; batches are routed shard-by-shard so a
//     batch of B feedbacks takes O(shards-touched) lock acquisitions, not
//     O(B).
package linkstore

import (
	"sync"
	"time"

	"softrate/internal/bitutil"
	"softrate/internal/core"
)

// Config parameterizes a Store.
type Config struct {
	// Shards is the number of lock stripes, rounded up to a power of two
	// (default 64).
	Shards int
	// New builds a link's controller (default core.New(core.DefaultConfig())).
	// All controllers of one store must be built from the same Config —
	// the store relies on controllers being interchangeable up to State.
	New func() *core.SoftRate
	// TTL is the idle time after which a link is evicted from the hot map
	// (0 disables eviction).
	TTL time.Duration
	// DropOnEvict discards evicted state instead of archiving it: a
	// returning link restarts from a fresh controller. Default false —
	// eviction is transparent.
	DropOnEvict bool
	// Clock returns the current time in nanoseconds (default
	// time.Now().UnixNano; injectable for deterministic tests).
	Clock func() int64
}

// Op is one feedback event addressed to one link.
type Op struct {
	// LinkID identifies the link (sender, receiver, direction — however
	// the caller names it).
	LinkID uint64
	// Kind is the feedback kind.
	Kind core.FeedbackKind
	// RateIndex is the rate the frame was sent at (KindBER/KindCollision).
	RateIndex int32
	// BER is the interference-free BER estimate (KindBER/KindCollision).
	BER float64
}

// ShardStats counts one shard's activity. Counters are cumulative.
type ShardStats struct {
	// Hits is the number of operations that found the link in the hot map.
	Hits uint64
	// Creates is the number of links created fresh.
	Creates uint64
	// Restores is the number of links revived from the archive.
	Restores uint64
	// Evictions is the number of links moved out of the hot map by TTL.
	Evictions uint64
	// Live is the current hot-map size.
	Live int
	// Archived is the current archive size.
	Archived int
}

// Stats is the store-wide aggregate of ShardStats.
type Stats struct {
	ShardStats
	// Shards is the number of shards aggregated.
	Shards int
}

type entry struct {
	state    core.State
	lastUsed int64
}

type shard struct {
	mu        sync.Mutex
	links     map[uint64]entry
	archive   map[uint64]core.State
	scratch   *core.SoftRate
	fresh     core.State // a just-built controller's state, for lazy creation
	stats     ShardStats
	lastSweep int64
}

// Store is the sharded link-state store.
type Store struct {
	cfg    Config
	mask   uint64
	ttl    int64
	shards []shard

	scratchPool sync.Pool // *batchScratch, for ApplyBatch routing
}

type batchScratch struct {
	perShard [][]int32
}

// New builds a Store.
func New(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.New == nil {
		cfg.New = func() *core.SoftRate { return core.New(core.DefaultConfig()) }
	}
	if cfg.Clock == nil {
		cfg.Clock = func() int64 { return time.Now().UnixNano() }
	}
	st := &Store{cfg: cfg, mask: uint64(n - 1), ttl: cfg.TTL.Nanoseconds()}
	st.shards = make([]shard, n)
	for i := range st.shards {
		st.shards[i].links = make(map[uint64]entry)
		st.shards[i].archive = make(map[uint64]core.State)
		st.shards[i].scratch = cfg.New()
		st.shards[i].fresh = st.shards[i].scratch.Snapshot()
	}
	st.scratchPool.New = func() any {
		return &batchScratch{perShard: make([][]int32, n)}
	}
	return st
}

// NumShards returns the (power-of-two) shard count.
func (st *Store) NumShards() int { return len(st.shards) }

// shardIndex mixes the link ID through the SplitMix64 finalizer so that
// sequential IDs spread evenly across shards.
func (st *Store) shardIndex(id uint64) int {
	return int(bitutil.Mix64(id) & st.mask)
}

func (st *Store) shardFor(id uint64) *shard {
	return &st.shards[st.shardIndex(id)]
}

// touch returns the link's current state, creating or restoring it as
// needed. Caller holds sh.mu.
func (sh *shard) touch(id uint64, dropOnEvict bool) core.State {
	if e, ok := sh.links[id]; ok {
		sh.stats.Hits++
		return e.state
	}
	if !dropOnEvict {
		if s, ok := sh.archive[id]; ok {
			delete(sh.archive, id)
			sh.stats.Restores++
			return s
		}
	}
	sh.stats.Creates++
	return sh.fresh
}

// applyLocked runs one op against a shard. Caller holds sh.mu.
func (sh *shard) applyLocked(op Op, now int64, dropOnEvict bool) int {
	state := sh.touch(op.LinkID, dropOnEvict)
	sh.scratch.Restore(state)
	ri := sh.scratch.Apply(op.Kind, int(op.RateIndex), op.BER)
	sh.links[op.LinkID] = entry{state: sh.scratch.Snapshot(), lastUsed: now}
	return ri
}

// sweepLocked evicts idle links. Caller holds sh.mu.
func (sh *shard) sweepLocked(now, ttl int64, dropOnEvict bool) int {
	evicted := 0
	for id, e := range sh.links {
		if now-e.lastUsed >= ttl {
			if !dropOnEvict {
				sh.archive[id] = e.state
			}
			delete(sh.links, id)
			evicted++
		}
	}
	sh.stats.Evictions += uint64(evicted)
	sh.lastSweep = now
	return evicted
}

// maybeSweepLocked runs a TTL sweep if one is due. A shard sweeps at most
// every TTL/4, so the amortized per-op eviction cost stays constant while
// no link outlives its TTL by more than 25%. Caller holds sh.mu.
func (sh *shard) maybeSweepLocked(now, ttl int64, dropOnEvict bool) {
	if ttl <= 0 || now-sh.lastSweep < ttl/4 {
		return
	}
	sh.sweepLocked(now, ttl, dropOnEvict)
}

// Apply routes one feedback event to its link's controller and returns the
// chosen next-rate index. The link is created (or revived from the
// archive) if absent.
func (st *Store) Apply(op Op) int {
	now := st.cfg.Clock()
	sh := st.shardFor(op.LinkID)
	sh.mu.Lock()
	ri := sh.applyLocked(op, now, st.cfg.DropOnEvict)
	sh.maybeSweepLocked(now, st.ttl, st.cfg.DropOnEvict)
	sh.mu.Unlock()
	return ri
}

// ApplyBatch processes ops and writes the chosen rate index of ops[i] to
// out[i], which must be at least len(ops) long. Ops are routed shard by
// shard — each touched shard's lock is taken exactly once — while per-link
// ordering is preserved (a link's ops live in one shard and are applied in
// batch order). Returns out[:len(ops)].
func (st *Store) ApplyBatch(ops []Op, out []int32) []int32 {
	now := st.cfg.Clock()
	drop := st.cfg.DropOnEvict
	scratch := st.scratchPool.Get().(*batchScratch)
	for i := range ops {
		si := st.shardIndex(ops[i].LinkID)
		scratch.perShard[si] = append(scratch.perShard[si], int32(i))
	}
	for si := range scratch.perShard {
		idxs := scratch.perShard[si]
		if len(idxs) == 0 {
			continue
		}
		sh := &st.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			out[i] = int32(sh.applyLocked(ops[i], now, drop))
		}
		sh.maybeSweepLocked(now, st.ttl, drop)
		sh.mu.Unlock()
		scratch.perShard[si] = idxs[:0]
	}
	st.scratchPool.Put(scratch)
	return out[:len(ops)]
}

// Peek returns the link's current state without touching its TTL stamp or
// creating it. The second result reports whether the link exists (hot or
// archived).
func (st *Store) Peek(id uint64) (core.State, bool) {
	sh := st.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.links[id]; ok {
		return e.state, true
	}
	if s, ok := sh.archive[id]; ok {
		return s, true
	}
	return core.State{}, false
}

// EvictIdle sweeps every shard now, evicting links idle for at least the
// TTL, and returns the number evicted. A no-op when TTL is zero.
func (st *Store) EvictIdle() int {
	if st.ttl <= 0 {
		return 0
	}
	now := st.cfg.Clock()
	total := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		total += sh.sweepLocked(now, st.ttl, st.cfg.DropOnEvict)
		sh.mu.Unlock()
	}
	return total
}

// Len returns the number of links in the hot maps.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.links)
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates all shards' counters.
func (st *Store) Stats() Stats {
	var out Stats
	out.Shards = len(st.shards)
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		s := sh.stats
		s.Live = len(sh.links)
		s.Archived = len(sh.archive)
		sh.mu.Unlock()
		out.Hits += s.Hits
		out.Creates += s.Creates
		out.Restores += s.Restores
		out.Evictions += s.Evictions
		out.Live += s.Live
		out.Archived += s.Archived
	}
	return out
}

// PerShard returns a snapshot of each shard's stats (for balance checks
// and the softrated stats endpoint).
func (st *Store) PerShard() []ShardStats {
	out := make([]ShardStats, len(st.shards))
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		out[i] = sh.stats
		out[i].Live = len(sh.links)
		out[i].Archived = len(sh.archive)
		sh.mu.Unlock()
	}
	return out
}
