package linkstore

import (
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/ctl"
)

// maskInPlace hides a controller's ctl.InPlace surface, forcing the store
// onto the DecodeState → Apply → EncodeState path — the A in the in-slab
// A/B benchmarks below.
type maskInPlace struct{ ctl.Controller }

func benchOps(algo ctl.Algo, nLinks int) [][]Op {
	const batch = 128
	rng := rand.New(rand.NewSource(3))
	all := make([][]Op, nLinks/batch)
	next := uint64(0)
	for k := range all {
		all[k] = make([]Op, batch)
		for i := range all[k] {
			all[k][i] = Op{
				LinkID:    next%uint64(nLinks) + 1,
				Algo:      algo,
				Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
				RateIndex: int32(rng.Intn(6)),
				BER:       rng.Float64() * 0.01,
				Delivered: rng.Intn(3) > 0,
			}
			next++
		}
	}
	return all
}

// benchApply cycles prebuilt batches across the whole link population
// (the cold regime of BenchmarkDecideCold: every state access misses
// cache, like the load generator).
func benchApply(b *testing.B, st *Store, all [][]Op) {
	out := make([]int32, len(all[0]))
	for k := range all {
		st.ApplyBatch(all[k], out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ApplyBatch(all[i%len(all)], out)
	}
	b.ReportMetric(float64(len(all[0]))*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}

// BenchmarkSampleRateInPlace is SampleRate through the in-slab engine
// (the default store configuration).
func BenchmarkSampleRateInPlace(b *testing.B) {
	const nLinks = 8192
	st := New(Config{Shards: 64, ExpectedLinks: nLinks})
	benchApply(b, st, benchOps(ctl.AlgoSampleRate, nLinks))
}

// BenchmarkSampleRateCodec is the identical workload with the in-place
// surface masked: every op pays the full ~1.7 KB DecodeState/EncodeState
// round trip. The gap to BenchmarkSampleRateInPlace is what the in-slab
// engine buys.
func BenchmarkSampleRateCodec(b *testing.B) {
	const nLinks = 8192
	st := New(Config{
		Shards:        64,
		ExpectedLinks: nLinks,
		NewController: func(a ctl.Algo) ctl.Controller { return maskInPlace{ctl.New(a)} },
	})
	benchApply(b, st, benchOps(ctl.AlgoSampleRate, nLinks))
}

// BenchmarkSoftRateBatch pins the SoftRate fast path under the run-
// coalescing batch executor (regression guard for the rewrite).
func BenchmarkSoftRateBatch(b *testing.B) {
	const nLinks = 8192
	st := New(Config{Shards: 64, ExpectedLinks: nLinks})
	benchApply(b, st, benchOps(ctl.AlgoSoftRate, nLinks))
}
