package rate

import (
	"math"
	"testing"

	"softrate/internal/coding"
	"softrate/internal/modulation"
)

func TestTableMatchesPaper(t *testing.T) {
	// Table 2 of the paper, verbatim.
	want := []struct {
		scheme modulation.Scheme
		code   coding.CodeRate
		mbps   float64
	}{
		{modulation.BPSK, coding.Rate12, 6},
		{modulation.BPSK, coding.Rate34, 9},
		{modulation.QPSK, coding.Rate12, 12},
		{modulation.QPSK, coding.Rate34, 18},
		{modulation.QAM16, coding.Rate12, 24},
		{modulation.QAM16, coding.Rate34, 36},
		{modulation.QAM64, coding.Rate23, 48},
		{modulation.QAM64, coding.Rate34, 54},
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("table has %d rates, want %d", len(all), len(want))
	}
	for i, w := range want {
		r := all[i]
		if r.Index != i || r.Scheme != w.scheme || r.Code != w.code || r.Mbps != w.mbps {
			t.Errorf("row %d = %+v, want %+v", i, r, w)
		}
	}
}

func TestMbpsProportionalToInfoBits(t *testing.T) {
	// Nominal Mbps must be proportional to info bits per subcarrier: the
	// 802.11 rates are all built on 48 data subcarriers and 4 us symbols,
	// i.e. Mbps = 12 * InfoBitsPerSubcarrier.
	for _, r := range All() {
		want := 12 * r.InfoBitsPerSubcarrier()
		if math.Abs(r.Mbps-want) > 1e-9 {
			t.Errorf("%v: Mbps %v but 12*infobits = %v", r, r.Mbps, want)
		}
	}
}

func TestMonotoneThroughput(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i].Mbps <= all[i-1].Mbps {
			t.Fatalf("rate table not monotonically increasing at %d", i)
		}
	}
}

func TestEvaluationSubset(t *testing.T) {
	ev := Evaluation()
	if len(ev) != 6 {
		t.Fatalf("evaluation subset has %d rates, want 6", len(ev))
	}
	if ev[0].Mbps != 6 || ev[5].Mbps != 36 {
		t.Fatalf("evaluation subset spans %g..%g Mbps, want 6..36", ev[0].Mbps, ev[5].Mbps)
	}
}

func TestByIndexAndLowest(t *testing.T) {
	if Lowest().Mbps != 6 {
		t.Fatal("Lowest() must be 6 Mbps")
	}
	for i := 0; i < Count(); i++ {
		if ByIndex(i).Index != i {
			t.Fatalf("ByIndex(%d).Index = %d", i, ByIndex(i).Index)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ByIndex out of range must panic")
		}
	}()
	ByIndex(99)
}

func TestStringForms(t *testing.T) {
	r := ByIndex(3)
	if r.String() != "QPSK 3/4 (18 Mbps)" {
		t.Fatalf("String() = %q", r.String())
	}
	if r.Name() != "QPSK 3/4" {
		t.Fatalf("Name() = %q", r.Name())
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Mbps = 999
	if All()[0].Mbps == 999 {
		t.Fatal("All() exposes internal table storage")
	}
}
