// Package rate defines the 802.11a/g bit rate table of the paper's Table 2:
// the eight modulation × code-rate combinations, their nominal throughput
// over a 20 MHz channel, and ordering helpers used by every rate adaptation
// algorithm in this repository.
package rate

import (
	"fmt"

	"softrate/internal/coding"
	"softrate/internal/modulation"
)

// Rate is one row of Table 2: a modulation scheme combined with a
// convolutional code rate.
type Rate struct {
	// Index is the position in the full table, 0 = most robust (BPSK 1/2).
	Index int
	// Scheme is the constellation used.
	Scheme modulation.Scheme
	// Code is the convolutional code rate.
	Code coding.CodeRate
	// Mbps is the nominal 802.11 data rate over a 20 MHz channel.
	Mbps float64
}

// String renders e.g. "QPSK 3/4 (18 Mbps)".
func (r Rate) String() string {
	return fmt.Sprintf("%v %v (%g Mbps)", r.Scheme, r.Code, r.Mbps)
}

// Name renders the short form, e.g. "QPSK 3/4".
func (r Rate) Name() string {
	return fmt.Sprintf("%v %v", r.Scheme, r.Code)
}

// CodedBitsPerSubcarrier returns the coded bits carried on one data
// subcarrier in one OFDM symbol.
func (r Rate) CodedBitsPerSubcarrier() int { return r.Scheme.BitsPerSymbol() }

// InfoBitsPerSubcarrier returns the information bits per data subcarrier
// per OFDM symbol (coded bits × code rate). It is fractional for rate 3/4
// BPSK, hence float.
func (r Rate) InfoBitsPerSubcarrier() float64 {
	return float64(r.Scheme.BitsPerSymbol()) * r.Code.Value()
}

// table is the full 802.11a/g rate set (Table 2 of the paper). The paper's
// prototype implemented the first six; we implement all eight and default
// the experiments to the 6–36 Mbps subset the evaluation uses (§6.1).
var table = []Rate{
	{0, modulation.BPSK, coding.Rate12, 6},
	{1, modulation.BPSK, coding.Rate34, 9},
	{2, modulation.QPSK, coding.Rate12, 12},
	{3, modulation.QPSK, coding.Rate34, 18},
	{4, modulation.QAM16, coding.Rate12, 24},
	{5, modulation.QAM16, coding.Rate34, 36},
	{6, modulation.QAM64, coding.Rate23, 48},
	{7, modulation.QAM64, coding.Rate34, 54},
}

// All returns the complete eight-rate table.
func All() []Rate {
	out := make([]Rate, len(table))
	copy(out, table)
	return out
}

// Evaluation returns the six-rate subset (6–36 Mbps) used throughout the
// paper's evaluation: its AP "supports the 802.11a/g bit rates from 6 Mbps
// to 36 Mbps".
func Evaluation() []Rate {
	out := make([]Rate, 6)
	copy(out, table[:6])
	return out
}

// ByIndex returns the rate with the given table index.
func ByIndex(i int) Rate {
	if i < 0 || i >= len(table) {
		panic(fmt.Sprintf("rate: index %d out of range", i))
	}
	return table[i]
}

// Count returns the size of the full table.
func Count() int { return len(table) }

// Lowest returns the most robust rate (BPSK 1/2, 6 Mbps), used for ACK and
// feedback frames which SoftRate "always sends at the lowest available bit
// rate" (§3).
func Lowest() Rate { return table[0] }
