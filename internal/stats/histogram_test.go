package stats

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestHistogramBucketLayout(t *testing.T) {
	// Every nanosecond value must land in a bucket whose bounds contain
	// it, and bucket indexes must be monotone in the value.
	prev := -1
	for _, ns := range []int64{0, 1, 5, 15, 16, 17, 31, 32, 100, 1023, 1024, 5e3, 1e6, 1e9, 7e10} {
		idx := bucketIndex(ns)
		if idx < prev {
			t.Fatalf("bucketIndex(%d) = %d, below previous %d — not monotone", ns, idx, prev)
		}
		prev = idx
		if up := bucketUpper(idx); up < ns {
			// The top bucket saturates; everything else must bound.
			if idx != histBuckets-1 {
				t.Fatalf("bucketUpper(%d) = %d < value %d", idx, up, ns)
			}
		}
	}
}

func TestHistogramQuantilesWithinResolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	var exact []float64
	for i := 0; i < 20000; i++ {
		// Log-uniform latencies from 1 µs to 100 ms — the shape a mixed
		// local/remote load generator sees.
		ns := int64(1000 * pow10(rng.Float64()*5))
		h.Observe(time.Duration(ns))
		exact = append(exact, float64(ns))
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := exact[int(q*float64(len(exact)))]
		if got < want*0.9 || got > want*1.13 {
			t.Fatalf("q%.3f: histogram %v, exact %v — outside the 6.25%% design resolution", q, got, want)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 = %v, want exact max %v", h.Quantile(1), h.Max())
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	return r * (1 + x*9) // crude but monotone; only the spread matters
}

func TestHistogramMergeEqualsCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, all Histogram
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1e7))
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
		all.Observe(d)
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Mean() != all.Mean() || a.Max() != all.Max() {
		t.Fatalf("merged summary (%d, %v, %v) != combined (%d, %v, %v)",
			a.Count(), a.Mean(), a.Max(), all.Count(), all.Mean(), all.Max())
	}
	for _, q := range []float64{0.25, 0.5, 0.95, 0.99} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("q%v: merged %v != combined %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(-5) // clock skew: clamp, don't corrupt
	h.Observe(90 * time.Minute)
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if h.Quantile(0) == 0 && h.Quantile(1) != 90*time.Minute {
		t.Fatalf("max not preserved beyond the bucket ceiling: %v", h.Quantile(1))
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}
