package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("std = %v", StdDev(xs))
	}
	if StdDev([]float64{1}) != 0 {
		t.Fatal("single-element std must be 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1e-2, 1e-4})
	if math.Abs(got-1e-3) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 1e-3", got)
	}
	// Non-positive values ignored.
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("all-invalid GeoMean must be 0")
	}
	if g := GeoMean([]float64{0, 4}); g != 4 {
		t.Fatalf("GeoMean with zero = %v, want 4", g)
	}
}

func TestLogBin(t *testing.T) {
	xs := []float64{1e-5, 1.1e-5, 1e-3, 0, -1}
	ys := []float64{1, 3, 10, 99, 99}
	bins := LogBin(xs, ys, 0.5)
	if len(bins) != 2 {
		t.Fatalf("got %d bins: %+v", len(bins), bins)
	}
	if bins[0].Count != 2 || bins[0].Mean != 2 {
		t.Fatalf("first bin %+v", bins[0])
	}
	if bins[1].Count != 1 || bins[1].Mean != 10 {
		t.Fatalf("second bin %+v", bins[1])
	}
	// Ordered by center, ascending.
	if bins[0].Center >= bins[1].Center {
		t.Fatal("bins not ordered")
	}
}

func TestLogBinPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogBin([]float64{1}, nil, 0.1)
}

func TestLinBin(t *testing.T) {
	xs := []float64{0.2, 0.7, 1.4, 1.9}
	ys := []float64{1, 3, 5, 7}
	bins := LinBin(xs, ys, 1)
	if len(bins) != 2 || bins[0].Mean != 2 || bins[1].Mean != 6 {
		t.Fatalf("bins %+v", bins)
	}
}

func TestCCDF(t *testing.T) {
	// Runs: 1,1,2,3 -> P(>=1)=1, P(>=2)=0.5, P(>=3)=0.25.
	ccdf := CCDF([]int{1, 1, 2, 3})
	want := []float64{1, 1, 0.5, 0.25}
	if len(ccdf) != len(want) {
		t.Fatalf("len %d, want %d", len(ccdf), len(want))
	}
	for i := range want {
		if math.Abs(ccdf[i]-want[i]) > 1e-12 {
			t.Fatalf("ccdf[%d] = %v, want %v", i, ccdf[i], want[i])
		}
	}
	if CCDF(nil) != nil {
		t.Fatal("empty CCDF must be nil")
	}
}

func TestCCDFMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		runs := make([]int, 1+rng.Intn(50))
		for i := range runs {
			runs[i] = 1 + rng.Intn(10)
		}
		c := CCDF(runs)
		for i := 1; i < len(c); i++ {
			if c[i] > c[i-1]+1e-12 {
				return false
			}
		}
		return c[1] == 1 // every run is at least length 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunLengths(t *testing.T) {
	flags := []bool{true, true, false, true, false, false, true, true, true}
	got := RunLengths(flags)
	want := []int{2, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("runs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("runs %v, want %v", got, want)
		}
	}
	if RunLengths(nil) != nil {
		t.Fatal("empty input must give nil")
	}
	if rl := RunLengths([]bool{true}); len(rl) != 1 || rl[0] != 1 {
		t.Fatal("trailing run not captured")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(xs, 50))
	}
	if Percentile(xs, 100) != 5 {
		t.Fatalf("p100 = %v", Percentile(xs, 100))
	}
	if Percentile(xs, 0) != 1 {
		t.Fatalf("p0 = %v", Percentile(xs, 0))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}
