package stats

import (
	"testing"
	"time"
)

func TestObserveNMatchesRepeatedObserve(t *testing.T) {
	var a, b Histogram
	samples := []struct {
		d time.Duration
		n uint64
	}{
		{0, 3}, {time.Nanosecond, 1}, {17 * time.Nanosecond, 5},
		{time.Microsecond, 100}, {3 * time.Millisecond, 7},
		{time.Second, 2}, {-time.Second, 4}, {90 * time.Second, 1},
	}
	for _, s := range samples {
		a.ObserveN(s.d, s.n)
		for i := uint64(0); i < s.n; i++ {
			b.Observe(s.d)
		}
	}
	if a != b {
		t.Fatalf("ObserveN diverges from repeated Observe: count %d vs %d, sum %d vs %d",
			a.count, b.count, a.sum, b.sum)
	}
	var c Histogram
	c.ObserveN(time.Second, 0)
	if c.Count() != 0 || c.Max() != 0 {
		t.Fatalf("ObserveN(d, 0) recorded something: count=%d max=%v", c.Count(), c.Max())
	}
}

func TestSnapshotIsIndependentCopy(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	snap := h.Snapshot()
	h.Observe(time.Second)
	if snap.Count() != 1 {
		t.Fatalf("snapshot count %d changed by later observation", snap.Count())
	}
	if h.Count() != 2 {
		t.Fatalf("original count %d", h.Count())
	}
}

func TestBucketsCumulative(t *testing.T) {
	var h Histogram
	durs := []time.Duration{
		5 * time.Nanosecond, 5 * time.Nanosecond, 300 * time.Nanosecond,
		time.Microsecond, 50 * time.Microsecond, 2 * time.Millisecond,
		2 * time.Millisecond, time.Second,
	}
	for _, d := range durs {
		h.Observe(d)
	}

	var (
		visits  int
		lastUp  int64 = -1
		lastCum uint64
	)
	h.Buckets(func(upperNs int64, cum uint64) {
		visits++
		if upperNs <= lastUp {
			t.Fatalf("bucket upper bounds not increasing: %d after %d", upperNs, lastUp)
		}
		if cum <= lastCum {
			t.Fatalf("cumulative not increasing: %d after %d", cum, lastCum)
		}
		lastUp, lastCum = upperNs, cum
	})
	if lastCum != h.Count() {
		t.Fatalf("final cumulative %d != count %d", lastCum, h.Count())
	}
	if visits == 0 || visits > len(durs) {
		t.Fatalf("visited %d buckets for %d observations", visits, len(durs))
	}

	// The iterator and Quantile must agree: the q-quantile is the upper
	// bound of the first bucket whose cumulative reaches rank ceil(q*count)
	// (capped by the exact max) — the shared-read-path property /statusz
	// and the Prometheus renderer rely on.
	for _, q := range []float64{0.01, 0.5, 0.9, 0.99} {
		rank := uint64(float64(h.Count())*q + 0.9999999)
		var want int64 = -1
		h.Buckets(func(upperNs int64, cum uint64) {
			if want < 0 && cum >= rank {
				want = upperNs
			}
		})
		if m := int64(h.Max()); want > m {
			want = m
		}
		if got := int64(h.Quantile(q)); got != want {
			t.Fatalf("q=%v: Quantile %d != bucket-iterator answer %d", q, got, want)
		}
	}

	// Empty histogram: no visits.
	var empty Histogram
	empty.Buckets(func(int64, uint64) { t.Fatal("visit on empty histogram") })
}

func TestSumExact(t *testing.T) {
	var h Histogram
	h.Observe(3 * time.Millisecond)
	h.ObserveN(2*time.Millisecond, 4)
	if got, want := h.Sum(), 11*time.Millisecond; got != want {
		t.Fatalf("Sum %v, want %v", got, want)
	}
}
