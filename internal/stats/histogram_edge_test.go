package stats

import (
	"math/rand"
	"testing"
	"time"
)

// Edge cases of the quantile query: the empty histogram and the q-range
// bounds, which sit one off-by-one away from the cumulative-rank scan.
func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	// Empty: every query answers zero rather than scanning garbage.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram has non-zero aggregates")
	}

	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	h.Observe(30 * time.Microsecond)

	// q <= 0 clamps to the first recorded rank, never below the smallest
	// observation's bucket.
	if got := h.Quantile(0); got < 10*time.Microsecond || got > h.Quantile(0.5) {
		t.Fatalf("Quantile(0) = %v, want within [10µs, p50]", got)
	}
	if h.Quantile(-3) != h.Quantile(0) {
		t.Fatal("negative q must clamp to 0")
	}
	// q = 1 reports the exact maximum, not a bucket upper bound.
	if got := h.Quantile(1); got != 30*time.Microsecond {
		t.Fatalf("Quantile(1) = %v, want the exact max 30µs", got)
	}
	if h.Quantile(5) != h.Quantile(1) {
		t.Fatal("q > 1 must clamp to 1")
	}
	// Every quantile is bounded by the recorded maximum even when the
	// bucket's upper edge lies beyond it.
	h.Observe(1 * time.Nanosecond)
	for q := 0.0; q <= 1.0; q += 0.01 {
		if got := h.Quantile(q); got > h.Max() {
			t.Fatalf("Quantile(%v) = %v exceeds max %v", q, got, h.Max())
		}
	}
}

// Merge must be commutative (and merging-in-empty must be the identity):
// the load generator merges per-client histograms in whatever order the
// goroutines finished.
func TestMergeCommutativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for trial := 0; trial < 50; trial++ {
		var a, b Histogram
		for i, n := 0, rng.Intn(200); i < n; i++ {
			a.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
		for i, n := 0, rng.Intn(200); i < n; i++ {
			b.Observe(time.Duration(rng.Int63n(int64(time.Millisecond))))
		}

		ab, ba := a, b
		ab.Merge(&b)
		ba.Merge(&a)

		if ab.Count() != ba.Count() || ab.Mean() != ba.Mean() || ab.Max() != ba.Max() {
			t.Fatalf("trial %d: aggregates differ by merge order: %+v vs %+v", trial, ab, ba)
		}
		if ab.buckets != ba.buckets {
			t.Fatalf("trial %d: bucket contents differ by merge order", trial)
		}
		for _, q := range quantiles {
			if ab.Quantile(q) != ba.Quantile(q) {
				t.Fatalf("trial %d: Quantile(%v) differs by merge order: %v vs %v",
					trial, q, ab.Quantile(q), ba.Quantile(q))
			}
		}

		// Identity: merging an empty histogram changes nothing.
		before := ab
		var empty Histogram
		ab.Merge(&empty)
		if ab != before {
			t.Fatalf("trial %d: merging empty changed the histogram", trial)
		}
	}
}
