package stats

import (
	"math"
	"math/bits"
	"time"
)

// Histogram is a fixed-layout log-linear latency histogram in the HDR
// style: durations bucket by power-of-two magnitude with 16 linear
// sub-buckets per octave (1/16-octave buckets), covering 1 ns to ~1.2 min.
// Every value-reporting query (Quantile, the Buckets iterator) returns a
// bucket's inclusive upper bound, so reported values overstate the true
// recorded value by at most one sub-bucket width — a relative error bound
// of 1/16 (6.25%); Count, Sum, Mean and Max are exact. The layout is fixed
// so histograms merge by bucket-wise addition — each load-generator client
// records into its own and the report merges them, avoiding hot-path
// locks.
//
// The zero value is ready to use. Not safe for concurrent use (obs.Latency
// wraps it in shard stripes for concurrent writers).
type Histogram struct {
	count   uint64
	sum     int64
	max     int64
	buckets [histBuckets]uint64
}

const (
	histSub     = 16 // linear sub-buckets per octave: 2^4 ⇒ 6.25% resolution
	histSubBits = 4
	histOctaves = 36 // 2^36 ns ≈ 69 s ceiling
	histBuckets = histOctaves * histSub
)

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	// Values below one full octave of sub-buckets land in the linear
	// region, one bucket per nanosecond.
	if ns < histSub {
		return int(ns)
	}
	exp := 63 - bits.LeadingZeros64(uint64(ns)) // floor(log2 ns), >= histSubBits
	sub := int(ns>>(uint(exp)-histSubBits)) - histSub
	idx := (exp-histSubBits+1)*histSub + sub
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound (ns) of a bucket — the
// value quantile queries report.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	exp := idx/histSub + histSubBits - 1
	sub := idx%histSub + histSub
	return (int64(sub+1) << (uint(exp) - histSubBits)) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.buckets[bucketIndex(ns)]++
}

// ObserveN records n observations of d in one update — the batch form used
// to attribute a served batch's per-op latency share without n bucket
// walks. Equivalent to calling Observe(d) n times.
func (h *Histogram) ObserveN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count += n
	h.sum += ns * int64(n)
	if ns > h.max {
		h.max = ns
	}
	h.buckets[bucketIndex(ns)] += n
}

// Snapshot returns a copy of the histogram. It is the one read path shared
// by every renderer: quantile summaries and the Prometheus exposition both
// work from a snapshot's Quantile/Buckets, so a snapshot taken while the
// original keeps recording stays internally consistent.
func (h *Histogram) Snapshot() Histogram { return *h }

// Buckets iterates the occupied buckets in increasing value order, calling
// fn with each bucket's inclusive upper bound (ns) and the cumulative
// observation count at or below that bound. Only buckets holding at least
// one observation are visited (the final call's cumulative equals Count),
// which keeps Prometheus expositions compact: emit one `le` line per visit
// plus +Inf. Upper bounds carry the type-level 1/16-octave error bound.
func (h *Histogram) Buckets(fn func(upperNs int64, cumulative uint64)) {
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		fn(bucketUpper(i), cum)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum) }

// Mean returns the mean duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns an upper bound on the q-quantile (q in [0,1]): the
// inclusive upper bound of the 1/16-octave bucket holding the nearest-rank
// observation, so the result overstates the true quantile by at most 1/16
// (6.25%) of its value. The exact recorded maximum is returned for q = 1
// (and caps every answer).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(h.max)
	}
	if q < 0 {
		q = 0
	}
	// Nearest-rank on the cumulative counts.
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(h.max)
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }
