// Package stats provides the small statistical toolkit the experiment
// harnesses share: means and deviations, logarithmic binning of BER data
// (the paper bins BER estimates "in fixed-sized bins of 0.1 units in the
// SoftPHY metric", i.e. roughly log-sized BER bins), and complementary
// CDFs for run-length plots like Figure 4.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of strictly positive xs, ignoring
// non-positive entries (log-domain averaging for BER data).
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Bin is one aggregation bucket: values' mean, standard deviation and
// count, keyed by the bucket center.
type Bin struct {
	// Center is the representative x-value of the bin.
	Center float64
	// Mean and Std summarize the y-values that fell in the bin.
	Mean, Std float64
	// Count is the number of samples aggregated.
	Count int
}

// LogBin groups (x, y) pairs by log10(x) with the given bin width (the
// paper uses 0.1-decade bins) and returns per-bin mean/σ of y, ordered by
// center. Pairs with non-positive x are dropped.
func LogBin(xs, ys []float64, width float64) []Bin {
	if len(xs) != len(ys) {
		panic("stats: LogBin length mismatch")
	}
	if width <= 0 {
		width = 0.1
	}
	groups := map[int][]float64{}
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		k := int(math.Floor(math.Log10(x) / width))
		groups[k] = append(groups[k], ys[i])
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bin, 0, len(keys))
	for _, k := range keys {
		v := groups[k]
		out = append(out, Bin{
			Center: math.Pow(10, (float64(k)+0.5)*width),
			Mean:   Mean(v),
			Std:    StdDev(v),
			Count:  len(v),
		})
	}
	return out
}

// LinBin is LogBin on a linear x-axis (used for the SNR-vs-BER plots,
// which bin by dB).
func LinBin(xs, ys []float64, width float64) []Bin {
	if len(xs) != len(ys) {
		panic("stats: LinBin length mismatch")
	}
	if width <= 0 {
		width = 1
	}
	groups := map[int][]float64{}
	for i, x := range xs {
		k := int(math.Floor(x / width))
		groups[k] = append(groups[k], ys[i])
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bin, 0, len(keys))
	for _, k := range keys {
		v := groups[k]
		out = append(out, Bin{
			Center: (float64(k) + 0.5) * width,
			Mean:   Mean(v),
			Std:    StdDev(v),
			Count:  len(v),
		})
	}
	return out
}

// CCDF returns, for each integer value v in 1..max(runs), the fraction of
// runs with length >= v — the complementary CDF of Figure 4.
func CCDF(runs []int) []float64 {
	if len(runs) == 0 {
		return nil
	}
	max := 0
	for _, r := range runs {
		if r > max {
			max = r
		}
	}
	out := make([]float64, max+1)
	for _, r := range runs {
		for v := 1; v <= r; v++ {
			out[v]++
		}
	}
	n := float64(len(runs))
	for v := range out {
		out[v] /= n
	}
	out[0] = 1
	return out
}

// RunLengths extracts the lengths of maximal runs of true values.
func RunLengths(flags []bool) []int {
	var runs []int
	cur := 0
	for _, f := range flags {
		if f {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// Percentile returns the p-th percentile (0..100) of xs using
// nearest-rank on a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
