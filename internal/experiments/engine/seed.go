package engine

import (
	"math/rand"
	randv2 "math/rand/v2"

	"softrate/internal/bitutil"
)

// splitmix64 stream constants (Steele, Lea & Flood: "Fast splittable
// pseudorandom number generators", OOPSLA 2014). The golden-gamma
// increment guarantees distinct, well-mixed streams for adjacent trial
// indices even when base seeds are small consecutive integers; the
// finalizer itself lives in bitutil.Mix64.
const (
	goldenGamma = 0x9e3779b97f4a7c15
	streamSalt  = 0xda942042e4dd58b5
)

// Seed derives the seed for one trial from a base seed and the trial's
// index with a SplitMix64 finalizer. The mapping is stable across
// processes and worker counts: it depends only on (base, trial).
func Seed(base int64, trial int) int64 {
	return int64(bitutil.Mix64(uint64(base) + goldenGamma*(uint64(trial)+1)))
}

// Rand returns a math/rand PRNG backed by a private PCG stream seeded
// from Seed(base, trial). Each trial gets its own generator, so trials
// never contend on (or perturb) a shared PRNG, and the stream a trial
// sees is a pure function of (base, trial).
func Rand(base int64, trial int) *rand.Rand {
	s := uint64(Seed(base, trial))
	return rand.New(&pcgSource{pcg: randv2.NewPCG(s, s^streamSalt)})
}

// pcgSource adapts math/rand/v2's PCG generator to the math/rand Source64
// interface the rest of the codebase consumes.
type pcgSource struct{ pcg *randv2.PCG }

func (s *pcgSource) Uint64() uint64 { return s.pcg.Uint64() }
func (s *pcgSource) Int63() int64   { return int64(s.pcg.Uint64() >> 1) }
func (s *pcgSource) Seed(seed int64) {
	s.pcg.Seed(uint64(seed), uint64(seed)^streamSalt)
}
