package engine_test

import (
	"fmt"
	"math/rand"

	"softrate/internal/experiments/engine"
)

// A sweep over independent parameter points: each point is one trial,
// results come back in point order no matter how many workers run.
func ExampleMap() {
	snrs := []float64{5, 10, 15, 20}
	bers := engine.Map(4, len(snrs), func(i int) float64 {
		// Stand-in for a Monte-Carlo run at snrs[i]; a real trial would
		// build its channel and PHY from engine.Rand or its own seed.
		return 1 / (snrs[i] * snrs[i])
	})
	for i, b := range bers {
		fmt.Printf("%2.0f dB -> %.4f\n", snrs[i], b)
	}
	// Output:
	//  5 dB -> 0.0400
	// 10 dB -> 0.0100
	// 15 dB -> 0.0044
	// 20 dB -> 0.0025
}

// Declared trials receive a private PCG stream derived from the base
// seed and their declaration index, so the fan-out is reproducible at
// any worker count.
func ExampleRunSeeded() {
	trials := make([]engine.Trial[int], 3)
	for i := range trials {
		trials[i] = func(rng *rand.Rand) int { return rng.Intn(100) }
	}
	serial := engine.RunSeeded(1, 1234, trials)
	parallel := engine.RunSeeded(8, 1234, trials)
	fmt.Println(equalInts(serial, parallel))
	// Output:
	// true
}

// Seed is a pure function of (base, trial): the same pair always yields
// the same derived seed, and nearby pairs are decorrelated.
func ExampleSeed() {
	fmt.Println(engine.Seed(1, 0) == engine.Seed(1, 0))
	fmt.Println(engine.Seed(1, 0) == engine.Seed(1, 1))
	// Output:
	// true
	// false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
