package engine

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderIndependentOfCompletion(t *testing.T) {
	// Later trials finish first; results must still land at their index.
	n := 32
	got := Map(8, n, func(i int) int {
		time.Sleep(time.Duration(n-i) * time.Microsecond)
		return i * i
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsEveryTrialOnce(t *testing.T) {
	n := 100
	var counts [100]int32
	Map(7, n, func(i int) struct{} {
		atomic.AddInt32(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("trial %d ran %d times", i, c)
		}
	}
}

func TestMapEdgeCases(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0: got %v", got)
	}
	// workers > n and workers <= 0 must both work.
	for _, w := range []int{-1, 0, 1, 1000} {
		got := Map(w, 3, func(i int) int { return i + 1 })
		if !reflect.DeepEqual(got, []int{1, 2, 3}) {
			t.Fatalf("workers=%d: got %v", w, got)
		}
	}
}

func TestMapWithBuildsOneStatePerWorker(t *testing.T) {
	var built atomic.Int32
	type scratch struct{ uses int }
	got := MapWith(4, 64, func() *scratch {
		built.Add(1)
		return &scratch{}
	}, func(ws *scratch, i int) int {
		ws.uses++ // exclusive to one worker: no synchronization needed
		return i * 3
	})
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*3)
		}
	}
	if n := built.Load(); n < 1 || n > 4 {
		t.Fatalf("built %d states for 4 workers, want 1..4", n)
	}
}

func TestMapWithEdgeCases(t *testing.T) {
	if got := MapWith(4, 0, func() int { return 0 }, func(int, int) int { return 1 }); len(got) != 0 {
		t.Fatalf("n=0: got %v", got)
	}
	for _, w := range []int{-1, 0, 1, 1000} {
		got := MapWith(w, 3, func() int { return 10 }, func(s, i int) int { return s + i })
		if !reflect.DeepEqual(got, []int{10, 11, 12}) {
			t.Fatalf("workers=%d: got %v", w, got)
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		return Map(workers, 50, func(i int) int64 {
			rng := Rand(42, i)
			var s int64
			for k := 0; k < 100; k++ {
				s += rng.Int63n(1000)
			}
			return s
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, 8, 16} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged from workers=1", w)
		}
	}
}

func TestRunSeededHandsEachTrialItsOwnStream(t *testing.T) {
	mk := make([]Trial[int64], 20)
	for i := range mk {
		mk[i] = func(rng *rand.Rand) int64 { return rng.Int63() }
	}
	a := RunSeeded(1, 7, mk)
	b := RunSeeded(8, 7, mk)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunSeeded results depend on worker count")
	}
	seen := map[int64]bool{}
	for _, v := range a {
		if seen[v] {
			t.Fatalf("two trials drew the same first value %d", v)
		}
		seen[v] = true
	}
}

func TestSeedScramblesAdjacentInputs(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 10; base++ {
		for trial := 0; trial < 10; trial++ {
			s := Seed(base, trial)
			if seen[s] {
				t.Fatalf("seed collision at base=%d trial=%d", base, trial)
			}
			seen[s] = true
			if s2 := Seed(base, trial); s2 != s {
				t.Fatal("Seed is not stable")
			}
		}
	}
}

func TestRandStable(t *testing.T) {
	a, b := Rand(3, 5), Rand(3, 5)
	for i := 0; i < 1000; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same (base, trial) produced different streams")
		}
	}
	c, d := Rand(3, 6), Rand(4, 5)
	if c.Int63() == b.Int63() || d.Int63() == a.Int63() {
		t.Fatal("distinct (base, trial) pairs produced identical draws")
	}
}
