// Package engine executes experiment trials across a bounded worker pool
// with deterministic results.
//
// Every harness in internal/experiments decomposes into independent
// trials — one per SNR point, seed, topology, algorithm or channel
// condition — that share only immutable inputs (rate tables, channel
// calibration, pre-generated link traces). The engine fans those trials
// across at most runtime.NumCPU() goroutines (or an explicit worker
// count) and aggregates their results in declaration order, so an
// experiment's output is byte-identical at any worker count.
//
// Determinism rests on two rules the API enforces or makes easy:
//
//   - Per-trial seeding. A trial's randomness derives only from a base
//     seed and the trial's index (Seed, Rand), never from goroutine
//     scheduling, wall-clock time or a PRNG shared across trials.
//   - Ordered aggregation. Map and RunSeeded return results indexed by
//     trial, regardless of completion order, so any reduction the caller
//     performs (sums, means, table rows) visits trials in a fixed order
//     and floating-point accumulation order is stable.
//
// A trial must not mutate state reachable from other trials. Shared
// read-only structures (trace.LinkTrace, phy.BERModel, rate tables) are
// safe; anything stateful — channel models with construction-time
// randomness, PHY links, MAC simulations — must be built inside the
// trial from the trial's own seed.
//
// Two seeding styles coexist. New experiments should declare Trial
// closures and let RunSeeded hand each one a golden-gamma-separated PCG
// stream. The harnesses ported from the original serial implementation
// instead keep their historical explicit `Options.Seed + offset`
// derivations inside Map closures: those offsets are part of the
// published outputs (the shape-check tests are tuned to them), so
// re-seeding them through Seed/Rand would change every table.
package engine
