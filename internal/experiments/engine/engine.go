package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: one worker per available CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Map runs trial(i) for every i in [0, n) across a worker pool of the
// given size and returns the results in index order. workers <= 0 means
// DefaultWorkers(); the pool never exceeds n. Trials are claimed from a
// shared counter, so uneven trial costs balance across workers, and the
// result slice is written at each trial's own index, so completion order
// never affects output.
//
// trial must be safe to call concurrently with itself: it may read shared
// immutable state but must not write anything another trial reads, and
// any PRNG it uses must be created inside the call (see Rand).
func Map[T any](workers, n int, trial func(i int) T) []T {
	return MapWith(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return trial(i) })
}

// MapWith is Map with per-worker scratch state: each worker calls state()
// once and passes the result to every trial it claims. It exists for the
// allocation-free simulation hot path — a phy.Workspace (or any other
// reusable buffer set) is built once per worker instead of once per trial
// or once per call inside the trial.
//
// The scratch must not influence results: trials are required to produce
// identical output for a fresh state and a state warmed by any other
// trial (the workspace packages pin this property), which is what keeps
// the engine's byte-identical-at-any-worker-count contract intact.
func MapWith[S, T any](workers, n int, state func() S, trial func(ws S, i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := state()
		for i := 0; i < n; i++ {
			out[i] = trial(ws, i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := state()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = trial(ws, i)
			}
		}()
	}
	wg.Wait()
	return out
}

// Trial is one independent unit of an experiment. It receives a private
// deterministic PRNG and must derive all of its randomness from it (or
// from seeds it computes itself); it may read shared immutable state but
// must not mutate anything reachable from other trials.
type Trial[T any] func(rng *rand.Rand) T

// RunSeeded executes the declared trials across the worker pool, handing
// trial i a PCG-backed PRNG seeded deterministically from (seed, i), and
// returns the results in declaration order.
func RunSeeded[T any](workers int, seed int64, trials []Trial[T]) []T {
	return Map(workers, len(trials), func(i int) T {
		return trials[i](Rand(seed, i))
	})
}
