package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns fast options for integration testing every harness.
func tiny() Options { return Options{Scale: 0.08, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig4", "fig5", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"tab1", "tab2", "tab3",
		"ablation-decoder", "ablation-excision", "ablation-harq",
		"ablation-jumps", "ablation-silent",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig999", DefaultOptions()); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.AddNote("note %d", 5)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	s := buf.String()
	for _, want := range []string{"== x: t ==", "a  bb", "1  2", "note: note 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// runAndCheck executes an experiment at tiny scale and sanity-checks its
// output structure.
func runAndCheck(t *testing.T, id string, minRows int) []*Table {
	t.Helper()
	tables, err := Run(id, tiny())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	total := 0
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Header) == 0 {
			t.Fatalf("%s: malformed table %+v", id, tb)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s/%s: row width %d vs header %d", id, tb.ID, len(row), len(tb.Header))
			}
		}
		total += len(tb.Rows)
	}
	if total < minRows {
		t.Fatalf("%s: only %d rows", id, total)
	}
	return tables
}

func TestTab2Exact(t *testing.T) {
	tables := runAndCheck(t, "tab2", 8)
	if tables[0].Rows[3][2] != "18 Mbps" {
		t.Fatalf("row 3 = %v", tables[0].Rows[3])
	}
}

func TestTab3Exact(t *testing.T) {
	tables := runAndCheck(t, "tab3", 3)
	if tables[0].Rows[0][0] != "long-range" {
		t.Fatalf("rows %v", tables[0].Rows)
	}
}

func TestFig1Shape(t *testing.T) {
	tables := runAndCheck(t, "fig1", 50)
	if len(tables) != 2 {
		t.Fatalf("want coarse + detail tables, got %d", len(tables))
	}
}

func TestFig3DetectsCollisionNotFading(t *testing.T) {
	tables := runAndCheck(t, "fig3", 5)
	notes := strings.Join(tables[0].Notes, "\n")
	if !strings.Contains(notes, "collision frame: true") {
		t.Fatalf("collision frame not detected:\n%s", notes)
	}
}

func TestFig5Monotone(t *testing.T) {
	tables := runAndCheck(t, "fig5", 2)
	// The monotonicity note must report a clear majority of bins.
	note := tables[0].Notes[0]
	var ok, total int
	if _, err := fmtSscanf(note, &ok, &total); err != nil {
		t.Skipf("cannot parse note %q", note)
	}
	if total > 0 && float64(ok)/float64(total) < 0.7 {
		t.Fatalf("monotonicity only %d/%d bins", ok, total)
	}
}

// fmtSscanf pulls the first two integers out of a note string.
func fmtSscanf(s string, a, b *int) (int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r != '/' && (r < '0' || r > '9')
	})
	for _, f := range fields {
		if strings.Contains(f, "/") {
			parts := strings.SplitN(f, "/", 2)
			x, err1 := strconv.Atoi(parts[0])
			y, err2 := strconv.Atoi(parts[1])
			if err1 == nil && err2 == nil {
				*a, *b = x, y
				return 2, nil
			}
		}
	}
	return 0, strconvErr
}

var strconvErr = strconv.ErrSyntax

func TestTab1UnderBound(t *testing.T) {
	tables := runAndCheck(t, "tab1", 2)
	// Every fraction cell must parse and stay under 35% even at tiny
	// scale (the paper's bound is 15% at full scale).
	for _, row := range tables[0].Rows {
		for _, cell := range row[2:] {
			v := parsePct(t, cell)
			if v > 35 {
				t.Fatalf("silent-loss fraction %s too high", cell)
			}
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestFig4CCDFMonotone(t *testing.T) {
	tables := runAndCheck(t, "fig4", 2)
	prev := 2.0
	for _, row := range tables[0].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad ccdf cell %q", row[1])
		}
		if v > prev+1e-9 {
			t.Fatalf("CCDF not monotone: %v", tables[0].Rows)
		}
		prev = v
	}
}

func TestFig15Converges(t *testing.T) {
	tables, err := Run("fig15", Options{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	conv := tables[1]
	// SampleRate must converge at least 5x slower than RRAA on the
	// high->low switch (paper: 600 ms vs 15 ms).
	r := parseMs(t, conv.Rows[0][1])
	s := parseMs(t, conv.Rows[1][1])
	if s < r {
		t.Fatalf("SampleRate (%v ms) converged faster than RRAA (%v ms)", s, r)
	}
	if s < 100 {
		t.Fatalf("SampleRate converged in %v ms; expected hundreds", s)
	}
}

func parseMs(t *testing.T, s string) float64 {
	t.Helper()
	if s == "did not converge" {
		return 1e9
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad ms cell %q", s)
	}
	return v
}

func TestAblationHARQShift(t *testing.T) {
	tables := runAndCheck(t, "ablation-harq", 6)
	// H-ARQ beta (col 4) must be above frame-ARQ beta (col 2) per row.
	for _, row := range tables[0].Rows {
		fb, _ := strconv.ParseFloat(row[2], 64)
		hb, _ := strconv.ParseFloat(row[4], 64)
		if hb <= fb {
			t.Fatalf("H-ARQ beta %v not above frame-ARQ %v", hb, fb)
		}
	}
}

func TestAblationJumpsFaster(t *testing.T) {
	tables := runAndCheck(t, "ablation-jumps", 2)
	d1, _ := strconv.Atoi(tables[0].Rows[0][1])
	d2, _ := strconv.Atoi(tables[0].Rows[1][1])
	if d2 > d1 {
		t.Fatalf("2-level jumps (%d rounds) slower than 1-level (%d)", d2, d1)
	}
}

// The heavyweight harnesses get smoke coverage: structure only.
func TestHeavyExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy experiment smoke tests skipped in -short mode")
	}
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10", "fig11"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runAndCheck(t, id, 2)
		})
	}
}

func TestNetworkExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("network experiment smoke tests skipped in -short mode")
	}
	for _, id := range []string{"fig13", "fig14", "fig16", "fig17", "fig18",
		"ablation-excision", "ablation-silent", "ablation-decoder"} {
		id := id
		t.Run(id, func(t *testing.T) {
			runAndCheck(t, id, 2)
		})
	}
}
