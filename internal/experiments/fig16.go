package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/experiments/engine"
	"softrate/internal/netsim"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

func init() {
	register("fig16", runFig16)
}

// fastFadingTraces builds forward/reverse traces for a given channel
// coherence time at a fixed mean SNR (Table 4, "Simulation": Doppler
// varied from 40 Hz to 4 kHz).
func fastFadingTraces(coherence float64, dur float64, seed int64) (fwd, rev *trace.LinkTrace) {
	fd := channel.DopplerForCoherence(coherence)
	mk := func(s int64) *trace.LinkTrace {
		rng := rand.New(rand.NewSource(s))
		model := channel.NewStaticModel(18, channel.NewRayleigh(rng, fd, 0))
		return trace.Generate(trace.GenConfig{Model: model, Duration: dur, Seed: s + 900})
	}
	return mk(seed), mk(seed + 1)
}

// runFig16 reproduces Figure 16: TCP throughput normalized by the
// omniscient algorithm in simulated fast-fading channels, as the channel
// coherence time shrinks from 1 ms to 100 µs. The SNR-based protocol is
// trained on *walking* traces (40 Hz), so its thresholds are wrong at
// vehicular speeds — the paper's central retraining argument.
func runFig16(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	// Train the SNR protocol on a walking-speed channel, as in §6.3.
	walkFwd, _ := walkingLinkTraces(o.Workers, 1, dur, o.Seed+333)
	walkTrained := ratectl.TrainThresholds(walkFwd[0].TrainingSamples(), walkFwd[0].NumRates(), 0.9)

	out := &Table{
		ID:     "fig16",
		Title:  "Normalized TCP throughput vs channel coherence time (fast fading)",
		Header: []string{"coherence", "SoftRate", "SNR (untrained)", "RRAA", "SampleRate"},
	}
	lossless := losslessAirtimes()
	coherences := []float64{1e-3, 500e-6, 200e-6, 100e-6}
	// Average over independent trace pairs to damp TCP variance. Stage 1:
	// one generation trial per (coherence, repetition) trace pair.
	const reps = 2
	pairSets := engine.Map(o.Workers, len(coherences)*reps, func(t int) [2]*trace.LinkTrace {
		tc, r := coherences[t/reps], t%reps
		f, b := fastFadingTraces(tc, dur, o.Seed+int64(tc*1e7)+int64(777*r))
		return [2]*trace.LinkTrace{f, b}
	})
	algs := []struct {
		name    string
		factory netsim.AdapterFactory
	}{
		{"Omniscient", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(&ratectl.Omniscient{Oracle: f.BestRateAt})
		}},
		{"SoftRate", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.NewSoftRate(core.DefaultConfig())
		}},
		{"SNR (untrained)", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSNRBased(walkTrained, "SNR (untrained)"))
		}},
		{"RRAA", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewRRAA(rateSet(), lossless, false))
		}},
		{"SampleRate", func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSampleRate(rateSet(), lossless, rand.New(rand.NewSource(rng.Int63()))))
		}},
	}
	// Stage 2: one trial per (coherence, algorithm), each averaging its
	// repetitions in order so float accumulation is stable.
	means := engine.Map(o.Workers, len(coherences)*len(algs), func(t int) float64 {
		ci, ai := t/len(algs), t%len(algs)
		var sum float64
		for r := 0; r < reps; r++ {
			cfg := netsim.DefaultConfig()
			cfg.Duration = dur
			cfg.Seed = o.Seed + 71 + int64(r)
			pair := pairSets[ci*reps+r]
			res := netsim.RunUplink(cfg, []*trace.LinkTrace{pair[0]}, []*trace.LinkTrace{pair[1]}, algs[ai].factory)
			sum += res.AggregateBps
		}
		return sum / reps
	})
	worstSNRGap := 1.0
	for ci, tc := range coherences {
		at := func(ai int) float64 { return means[ci*len(algs)+ai] }
		omni, soft, snr, rraa, srate := at(0), at(1), at(2), at(3), at(4)
		norm := func(x float64) string {
			if omni <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.2f", x/omni)
		}
		out.AddRow(fmtCoherence(tc), norm(soft), norm(snr), norm(rraa), norm(srate))
		if omni > 0 && tc <= 200e-6 {
			gap := (snr / omni) / (soft / omni)
			if gap < worstSNRGap {
				worstSNRGap = gap
			}
		}
	}
	out.AddNote("SoftRate holds its normalized throughput as coherence shrinks without retraining (§6.3)")
	out.AddNote("untrained SNR / SoftRate at <=200 us coherence: %.2f (paper: SoftRate gains ~4x at 100 us)", worstSNRGap)
	return []*Table{out}
}

func fmtCoherence(tc float64) string {
	if tc >= 1e-3 {
		return fmt.Sprintf("%.0f ms", tc*1e3)
	}
	return fmt.Sprintf("%.0f us", tc*1e6)
}
