package experiments

import (
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/experiments/engine"
	"softrate/internal/netsim"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

func init() {
	register("fig13", runFig13)
	register("fig14", runFig14)
}

// mkWalkingTrace generates one walking-mobility link trace (Table 4,
// "Walking": sender moving away from the receiver at walking speed).
func mkWalkingTrace(s int64, dur float64) *trace.LinkTrace {
	rng := rand.New(rand.NewSource(s))
	model := channel.NewWalkingModel(rng,
		channel.LinearTrajectory{StartDist: 2, Speed: 1.2},
		channel.PathLoss{RefSNRdB: 26, RefDist: 1, Exponent: 2.2})
	return trace.Generate(trace.GenConfig{Model: model, Duration: dur, Seed: s + 500})
}

// walkingLinkTraces generates n forward and n reverse walking traces of
// duration dur, one engine trial per trace.
func walkingLinkTraces(workers, n int, dur float64, seed int64) (fwd, rev []*trace.LinkTrace) {
	traces := engine.Map(workers, 2*n, func(k int) *trace.LinkTrace {
		return mkWalkingTrace(seed+int64(k), dur)
	})
	for i := 0; i < n; i++ {
		fwd = append(fwd, traces[2*i])
		rev = append(rev, traces[2*i+1])
	}
	return fwd, rev
}

// algorithmFactories returns the §6.1 algorithm set, keyed by display
// name, in the paper's legend order. Each factory builds a fresh adapter
// per link; training-based algorithms train on the link's own trace (the
// paper computes SNR-BER relationships "from the traces used for
// evaluation").
func algorithmFactories() []struct {
	name    string
	factory netsim.AdapterFactory
} {
	lossless := losslessAirtimes()
	return []struct {
		name    string
		factory netsim.AdapterFactory
	}{
		{"Omniscient", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(&ratectl.Omniscient{Oracle: fwd.BestRateAt})
		}},
		{"SoftRate", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.NewSoftRate(core.DefaultConfig())
		}},
		{"SNR (trained)", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			th := ratectl.TrainThresholds(fwd.TrainingSamples(), fwd.NumRates(), 0.9)
			return ctl.Wrap(ratectl.NewSNRBased(th, "SNR (trained)"))
		}},
		{"CHARM", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			th := ratectl.TrainThresholds(fwd.TrainingSamples(), fwd.NumRates(), 0.9)
			return ctl.Wrap(ratectl.NewCHARM(th))
		}},
		{"RRAA", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewRRAA(rateSet(), lossless, true))
		}},
		{"SampleRate", func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSampleRate(rateSet(), lossless, rand.New(rand.NewSource(rng.Int63()))))
		}},
	}
}

// runFig13 reproduces Figure 13: aggregate TCP throughput versus number of
// clients over slow-fading walking channels, for all six algorithms.
func runFig13(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	maxN := 5
	// Average over independent trace sets (the paper's ten walking runs
	// play the same variance-damping role). Stage 1: every trace is an
	// independent generation trial.
	const reps = 3
	allTraces := engine.Map(o.Workers, reps*2*maxN, func(t int) *trace.LinkTrace {
		r, k := t/(2*maxN), t%(2*maxN)
		return mkWalkingTrace(o.Seed+int64(1000*r)+int64(k), dur)
	})
	var fwd, rev [][]*trace.LinkTrace
	for r := 0; r < reps; r++ {
		var f, b []*trace.LinkTrace
		for i := 0; i < maxN; i++ {
			f = append(f, allTraces[r*2*maxN+2*i])
			b = append(b, allTraces[r*2*maxN+2*i+1])
		}
		fwd = append(fwd, f)
		rev = append(rev, b)
	}

	out := &Table{
		ID:     "fig13",
		Title:  "Aggregate TCP throughput (Mbps) vs number of clients, slow-fading mobile channel",
		Header: []string{"algorithm", "N=1", "N=2", "N=3", "N=4", "N=5"},
	}
	// Stage 2: one trial per (algorithm, client count, repetition); the
	// traces are shared read-only across trials.
	algs := algorithmFactories()
	type runKey struct{ a, n, r int }
	var keys []runKey
	for a := range algs {
		for n := 1; n <= maxN; n++ {
			for r := 0; r < reps; r++ {
				keys = append(keys, runKey{a, n, r})
			}
		}
	}
	bps := engine.Map(o.Workers, len(keys), func(i int) float64 {
		k := keys[i]
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + int64(k.n+10*k.r)
		return netsim.RunUplink(cfg, fwd[k.r][:k.n], rev[k.r][:k.n], algs[k.a].factory).AggregateBps
	})
	results := map[string][]float64{}
	for ai, alg := range algs {
		row := []string{alg.name}
		for n := 1; n <= maxN; n++ {
			var sum float64
			for r := 0; r < reps; r++ {
				sum += bps[(ai*maxN+(n-1))*reps+r]
			}
			meanBps := sum / reps
			row = append(row, fmtMbps(meanBps))
			results[alg.name] = append(results[alg.name], meanBps)
		}
		out.AddRow(row...)
	}

	// Shape checks from §6.2.
	soft := mean(results["SoftRate"])
	out.AddNote("SoftRate/omniscient ratio (mean over N): %.2f (paper: SoftRate comes closest to omniscient)",
		soft/mean(results["Omniscient"]))
	out.AddNote("SoftRate/SNR-trained: %.2fx (paper: up to ~1.2x)", soft/mean(results["SNR (trained)"]))
	out.AddNote("SoftRate/RRAA: %.2fx (paper: up to ~2x)", soft/mean(results["RRAA"]))
	out.AddNote("SoftRate/SampleRate: %.2fx (paper: up to ~4x)", soft/mean(results["SampleRate"]))
	return []*Table{out}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// runFig14 reproduces Figure 14: rate-selection accuracy with one TCP flow
// in the mobile slow-fading channel — the fraction of frames sent above,
// at, and below the highest bit rate that would have succeeded.
func runFig14(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	fwd, rev := walkingLinkTraces(o.Workers, 1, dur, o.Seed+9000)
	out := &Table{
		ID:     "fig14",
		Title:  "Rate selection accuracy, one TCP flow, slow-fading mobile channel",
		Header: []string{"algorithm", "underselect", "accurate", "overselect"},
	}
	type acc struct{ under, ok, over float64 }
	// One trial per algorithm; Omniscient is skipped (trivially accurate).
	var algs []struct {
		name    string
		factory netsim.AdapterFactory
	}
	for _, alg := range algorithmFactories() {
		if alg.name != "Omniscient" {
			algs = append(algs, alg)
		}
	}
	counts := engine.Map(o.Workers, len(algs), func(i int) [3]int {
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + 17
		cfg.RecordTx = true
		res := netsim.RunUplink(cfg, fwd, rev, algs[i].factory)
		var c [3]int
		for _, r := range res.ClientStats[0].Records {
			switch {
			case r.RateIndex < r.OracleIndex:
				c[0]++
			case r.RateIndex == r.OracleIndex:
				c[1]++
			default:
				c[2]++
			}
		}
		return c
	})
	accs := map[string]acc{}
	for i, alg := range algs {
		under, ok, over := counts[i][0], counts[i][1], counts[i][2]
		total := float64(under + ok + over)
		if total == 0 {
			continue
		}
		a := acc{float64(under) / total, float64(ok) / total, float64(over) / total}
		accs[alg.name] = a
		out.AddRow(alg.name, fmtPct(a.under), fmtPct(a.ok), fmtPct(a.over))
	}
	if a, found := accs["SoftRate"]; found {
		out.AddNote("SoftRate accurate fraction: %s (paper: over 80%%)", fmtPct(a.ok))
	}
	return []*Table{out}
}
