package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/experiments/engine"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/softphy"
)

func init() {
	register("fig10", runFig10)
	register("fig11", runFig11)
}

// interferenceOutcome classifies one frame of the static-interference
// experiment (Table 4, "Static (interference)"): correct reception,
// received-with-errors flagged as collision, received-with-errors flagged
// as noise, or silent loss.
type interferenceOutcome int

const (
	outCorrect interferenceOutcome = iota
	outCollision
	outNoise
	outSilent
)

// runInterferenceTrial sends frames from a sender at a healthy SNR while
// an interferer of the given relative power (dB, relative to the sender)
// transmits with random jitter of about one packet time, mirroring the
// paper's static interference experiment. It returns outcome counts and
// detection accuracy.
func runInterferenceTrial(ws *phy.Workspace, o Options, relPowerDB float64, ri int, frames int, seed int64) (counts [4]int, accuracy float64) {
	cfg := phy.DefaultConfig()
	const senderSNR = 17.0
	link := &phy.Link{
		Cfg:   cfg,
		Model: channel.NewStaticModel(senderSNR, nil),
		Rng:   rand.New(rand.NewSource(seed)),
		WS:    ws,
	}
	rng := rand.New(rand.NewSource(seed + 1))
	det := softphy.DefaultDetector()

	payload := make([]byte, 480)
	flagged, errored := 0, 0
	batch := o.decodeBatch()
	classify := func(rx *phy.Reception) {
		switch {
		case !rx.Detected:
			counts[outSilent]++
		case rx.BitErrors == 0:
			counts[outCorrect]++
		default:
			errored++
			a := softphy.Analyze(rx.Hints, softphy.BlockBits(rx.InfoBitsPerSymbol), det)
			if a.Collision {
				counts[outCollision]++
				flagged++
			} else {
				counts[outNoise]++
			}
		}
	}
	for i := 0; i < frames; i++ {
		rng.Read(payload)
		tx := phy.TransmitWS(ws, cfg, phy.Frame{Header: []byte{7, 7, 7, 7}, Payload: payload, Rate: rate.ByIndex(ri)})
		air := tx.Airtime()
		// Interferer power relative to the unit noise floor.
		iPow := channel.DBToLinear(senderSNR + relPowerDB)
		// Random jitter of around one packet-time between transmissions.
		offset := (rng.Float64()*2 - 1) * air
		start := float64(i) * 0.02
		burst := phy.Burst{Start: start + offset, End: start + offset + air, Power: iPow}
		if batch > 0 {
			link.QueueDeliver(tx, start, []phy.Burst{burst})
			if ws.PendingReceives() == batch || i == frames-1 {
				for _, rx := range link.FlushDeliveries() {
					classify(rx)
				}
			}
			continue
		}
		classify(link.Deliver(tx, start, []phy.Burst{burst}))
	}
	if errored > 0 {
		accuracy = float64(flagged) / float64(errored)
	}
	return counts, accuracy
}

// runFig10 reproduces Figure 10: interference detection accuracy as a
// function of relative interferer power, with the outcome mix per power.
func runFig10(o Options) []*Table {
	out := &Table{
		ID:     "fig10",
		Title:  "Interference detection accuracy vs relative interferer power (QPSK 3/4 sender)",
		Header: []string{"rel power (dB)", "correct", "collision", "noise", "silent", "accuracy"},
	}
	frames := o.scaled(60)
	rels := []float64{-15, -8, -4, -2, 0}
	type powerTrial struct {
		counts [4]int
		acc    float64
		fp     float64
	}
	// One trial per interferer power, plus a final trial measuring the
	// false-positive rate on an interference-free fading channel.
	res := engine.MapWith(o.Workers, len(rels)+1, phy.NewWorkspace, func(ws *phy.Workspace, i int) powerTrial {
		if i == len(rels) {
			return powerTrial{fp: falsePositiveRate(ws, o)}
		}
		counts, acc := runInterferenceTrial(ws, o, rels[i], 3, frames, o.Seed+int64(rels[i]*13))
		return powerTrial{counts: counts, acc: acc}
	})
	okAll := true
	for i, rel := range rels {
		counts, acc := res[i].counts, res[i].acc
		total := float64(counts[0] + counts[1] + counts[2] + counts[3])
		out.AddRow(fmt.Sprintf("%.0f", rel),
			fmtPct(float64(counts[outCorrect])/total),
			fmtPct(float64(counts[outCollision])/total),
			fmtPct(float64(counts[outNoise])/total),
			fmtPct(float64(counts[outSilent])/total),
			fmtPct(acc))
		if counts[outCollision]+counts[outNoise] >= 5 && acc < 0.8 {
			okAll = false
		}
	}
	out.AddNote("paper: accuracy always above 80%% of errored receptions; all-powers-above-80%% holds here: %v", okAll)

	// False positives: fading-only channel, no interference.
	out.AddNote("false positive rate on interference-free fading losses: %s (paper: under 1%%)", fmtPct(res[len(rels)].fp))
	return []*Table{out}
}

// falsePositiveRate measures how often the detector flags fading-induced
// errors as collisions on a quiet band (the §5.3 false-positive check).
func falsePositiveRate(ws *phy.Workspace, o Options) float64 {
	cfg := phy.DefaultConfig()
	link := &phy.Link{
		Cfg:   cfg,
		Model: channel.NewStaticModel(11, channel.NewRayleigh(rand.New(rand.NewSource(o.Seed+77)), 40, 0)),
		Rng:   rand.New(rand.NewSource(o.Seed + 78)),
		WS:    ws,
	}
	rng := rand.New(rand.NewSource(o.Seed + 79))
	det := softphy.DefaultDetector()
	payload := make([]byte, 480)
	flagged, errored := 0, 0
	batch := o.decodeBatch()
	classify := func(rx *phy.Reception) {
		if !rx.Detected || rx.BitErrors == 0 {
			return
		}
		errored++
		if softphy.Analyze(rx.Hints, softphy.BlockBits(rx.InfoBitsPerSymbol), det).Collision {
			flagged++
		}
	}
	n := o.scaled(160)
	for i := 0; i < n; i++ {
		rng.Read(payload)
		tx := phy.TransmitWS(ws, cfg, phy.Frame{Header: []byte{7}, Payload: payload, Rate: rate.ByIndex(3)})
		if batch > 0 {
			link.QueueDeliver(tx, float64(i)*0.023, nil)
			if ws.PendingReceives() == batch || i == n-1 {
				for _, rx := range link.FlushDeliveries() {
					classify(rx)
				}
			}
			continue
		}
		classify(link.Deliver(tx, float64(i)*0.023, nil))
	}
	if errored == 0 {
		return 0
	}
	return float64(flagged) / float64(errored)
}

// runFig11 reproduces Figure 11: detection accuracy broken down by the
// sender's bit rate at a fixed interferer power.
func runFig11(o Options) []*Table {
	out := &Table{
		ID:     "fig11",
		Title:  "Interference detection accuracy vs transmit bit rate (interferer at -4 dB)",
		Header: []string{"rate", "correct", "collision", "noise", "silent", "accuracy"},
	}
	frames := o.scaled(60)
	const nRates = 5 // the paper omits QAM16 3/4 (untuned)
	type rateTrial struct {
		counts [4]int
		acc    float64
	}
	res := engine.MapWith(o.Workers, nRates, phy.NewWorkspace, func(ws *phy.Workspace, ri int) rateTrial {
		counts, acc := runInterferenceTrial(ws, o, -4, ri, frames, o.Seed+int64(ri)*101)
		return rateTrial{counts, acc}
	})
	for ri := 0; ri < nRates; ri++ {
		counts, acc := res[ri].counts, res[ri].acc
		total := float64(counts[0] + counts[1] + counts[2] + counts[3])
		out.AddRow(rate.ByIndex(ri).Name(),
			fmtPct(float64(counts[outCorrect])/total),
			fmtPct(float64(counts[outCollision])/total),
			fmtPct(float64(counts[outNoise])/total),
			fmtPct(float64(counts[outSilent])/total),
			fmtPct(acc))
	}
	out.AddNote("paper reports >80%% of errored frames identified as collisions at every rate (QAM16 3/4 omitted as untuned)")
	return []*Table{out}
}
