package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/coding"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/experiments/engine"
	"softrate/internal/netsim"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/softphy"
	"softrate/internal/trace"
)

func init() {
	register("ablation-decoder", runAblationDecoder)
	register("ablation-excision", runAblationExcision)
	register("ablation-jumps", runAblationJumps)
	register("ablation-harq", runAblationHARQ)
	register("ablation-silent", runAblationSilent)
}

// runAblationDecoder compares exact log-MAP against max-log BCJR as the
// source of SoftPHY hints: max-log is ~2.5x faster but its hints are
// optimistic, biasing the BER estimate low.
func runAblationDecoder(o Options) []*Table {
	out := &Table{
		ID:     "ablation-decoder",
		Title:  "BER estimation quality: exact log-MAP vs max-log BCJR hints",
		Header: []string{"decoder", "mean est/true ratio", "frames"},
	}
	modes := []struct {
		name string
		m    coding.BCJRMode
	}{{"log-MAP", coding.LogMAP}, {"max-log", coding.MaxLog}}
	// One trial per decoder mode.
	type decRes struct {
		gm float64
		n  int
	}
	res := engine.MapWith(o.Workers, len(modes), phy.NewWorkspace, func(ws *phy.Workspace, i int) decRes {
		cfg := phy.DefaultConfig()
		cfg.Decoder = modes[i].m
		link := &phy.Link{
			Cfg:   cfg,
			Model: channel.NewStaticModel(6.2, nil),
			Rng:   rand.New(rand.NewSource(o.Seed + 5)),
			WS:    ws,
		}
		rng := rand.New(rand.NewSource(o.Seed + 6))
		payload := make([]byte, 300)
		var ratios []float64
		for f := 0; f < o.scaled(60); f++ {
			rng.Read(payload)
			tx := phy.TransmitWS(ws, cfg, phy.Frame{Header: []byte{1}, Payload: payload, Rate: rate.ByIndex(3)})
			rx := link.Deliver(tx, float64(f), nil)
			if !rx.Detected || rx.BitErrors < 10 {
				continue
			}
			ratios = append(ratios, softphy.FrameBER(rx.Hints)/rx.TrueBER)
		}
		var gm float64
		for _, r := range ratios {
			gm += math.Log(r)
		}
		if len(ratios) > 0 {
			gm = math.Exp(gm / float64(len(ratios)))
		}
		return decRes{gm, len(ratios)}
	})
	for i, mode := range modes {
		out.AddRow(mode.name, fmt.Sprintf("%.2f", res[i].gm), fmt.Sprintf("%d", res[i].n))
	}
	out.AddNote("a ratio near 1.0 means calibrated hints; max-log typically under-reports BER")
	return []*Table{out}
}

// runAblationExcision measures what happens when SoftRate's interference
// excision is disabled in an interference-dominated channel: collision
// losses then read as noise losses and drag the rate down.
func runAblationExcision(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	fwd, rev := staticShortRangeTraces(o.Workers, 5, dur, o.Seed+4100)
	out := &Table{
		ID:     "ablation-excision",
		Title:  "SoftRate with and without interference excision, 5 flows, Pr[CS]=0.2",
		Header: []string{"variant", "aggregate Mbps"},
	}
	run := func(detectP float64) float64 {
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + 91
		cfg.CSProb = 0.2
		cfg.MAC.InterferenceDetectionProb = detectP
		res := netsim.RunUplink(cfg, fwd, rev, func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.NewSoftRate(core.DefaultConfig())
		})
		return res.AggregateBps
	}
	// Two trials: detector on at the measured 80% accuracy, detector off
	// (every collision reads as noise).
	detectPs := []float64{0.8, 0.0}
	bps := engine.Map(o.Workers, len(detectPs), func(i int) float64 { return run(detectPs[i]) })
	with, without := bps[0], bps[1]
	out.AddRow("excision on (80% detection)", fmtMbps(with))
	out.AddRow("excision off", fmtMbps(without))
	out.AddNote("gain from excision: %.2fx — without it SoftRate inherits RRAA's collision pathology", with/math.Max(without, 1))
	return []*Table{out}
}

// runAblationJumps compares 1-level and 2-level rate jumps on convergence
// through a deep SNR step.
func runAblationJumps(o Options) []*Table {
	out := &Table{
		ID:     "ablation-jumps",
		Title:  "Feedback rounds to converge across a deep channel step (rate 5 -> optimal 1 and back)",
		Header: []string{"MaxJump", "down rounds", "up rounds"},
	}
	jumps := []int{1, 2}
	rows := engine.Map(o.Workers, len(jumps), func(i int) [2]int {
		mj := jumps[i]
		cfg := core.DefaultConfig()
		cfg.MaxJump = mj
		// Channel A: optimal rate 1; channel B: optimal rate 5. BER
		// ladder at factor 100 per step around the optimum.
		berAt := func(optimal, i int) float64 {
			b := 1e-6 * math.Pow(100, float64(i-optimal))
			if b > 0.3 {
				b = 0.3
			}
			return b
		}
		countRounds := func(s *core.SoftRate, optimal int) int {
			rounds := 0
			for s.CurrentIndex() != optimal && rounds < 50 {
				s.OnFeedback(core.Feedback{RateIndex: s.CurrentIndex(), BER: berAt(optimal, s.CurrentIndex())})
				rounds++
			}
			return rounds
		}
		s := core.New(cfg)
		// Drive to rate 5 first.
		countRounds(s, 5)
		down := countRounds(s, 1)
		up := countRounds(s, 5)
		return [2]int{down, up}
	})
	for i, mj := range jumps {
		out.AddRow(fmt.Sprintf("%d", mj), fmt.Sprintf("%d", rows[i][0]), fmt.Sprintf("%d", rows[i][1]))
	}
	out.AddNote("2-level jumps halve the traversal cost of deep fades — the paper's implementation does up to two")
	return []*Table{out}
}

// runAblationHARQ shows how the optimal thresholds move under a hybrid-ARQ
// error recovery model (§3.3's modularity argument).
func runAblationHARQ(o Options) []*Table {
	out := &Table{
		ID:     "ablation-harq",
		Title:  "Optimal BER thresholds (alpha, beta) per rate: frame ARQ vs hybrid ARQ (10000-bit frames)",
		Header: []string{"rate", "frame-ARQ alpha", "frame-ARQ beta", "H-ARQ alpha", "H-ARQ beta"},
	}
	mk := func(rec core.ErrorRecovery) *core.SoftRate {
		cfg := core.DefaultConfig()
		cfg.FrameBits = 10000
		cfg.Recovery = rec
		return core.New(cfg)
	}
	// One trial per recovery model (each owns its SoftRate instance).
	rates := rateSet()
	recoveries := []core.ErrorRecovery{core.FrameARQ{}, core.HybridARQ{}}
	thresholds := engine.Map(o.Workers, len(recoveries), func(i int) [][2]float64 {
		s := mk(recoveries[i])
		th := make([][2]float64, len(rates))
		for ri := range rates {
			a, b := s.Thresholds(ri)
			th[ri] = [2]float64{a, b}
		}
		return th
	})
	for ri, r := range rates {
		fa, fb := thresholds[0][ri][0], thresholds[0][ri][1]
		ha, hb := thresholds[1][ri][0], thresholds[1][ri][1]
		out.AddRow(r.Name(), fmtBER(fa), fmtBER(fb), fmtBER(ha), fmtBER(hb))
	}
	out.AddNote("H-ARQ tolerates ~100x higher BER before stepping down: rate adaptation decouples from error recovery by recomputing thresholds only")
	return []*Table{out}
}

// runAblationSilent sweeps the silent-loss run threshold: too small and
// collisions masquerade as weak signal (spurious rate drops), too large
// and genuine signal loss lingers at a dead rate.
func runAblationSilent(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	out := &Table{
		ID:     "ablation-silent",
		Title:  "Silent-loss run threshold sweep (5 hidden-terminal flows, Pr[CS]=0.5, no postambles)",
		Header: []string{"threshold", "aggregate Mbps"},
	}
	fwd, rev := staticShortRangeTraces(o.Workers, 5, dur, o.Seed+5100)
	// One trial per threshold value.
	thresholds := []int{1, 2, 3, 5}
	bps := engine.Map(o.Workers, len(thresholds), func(i int) float64 {
		run := thresholds[i]
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + 93
		cfg.CSProb = 0.5
		res := netsim.RunUplink(cfg, fwd, rev, func(i int, f *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			c := core.DefaultConfig()
			c.SilentLossRun = run
			return ctl.NewSoftRate(c)
		})
		return res.AggregateBps
	})
	for i, run := range thresholds {
		out.AddRow(fmt.Sprintf("%d", run), fmtMbps(bps[i]))
	}
	out.AddNote("the paper picks 3 from the Figure 4 run-length analysis; thresholds of 1 overreact to collision-induced silence")
	return []*Table{out}
}
