package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/experiments/engine"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/softphy"
	"softrate/internal/stats"
)

func init() {
	register("fig7", runFig7)
	register("fig8", runFig8)
	register("fig9", runFig9)
}

// frameSample is one received frame's estimates and ground truth.
type frameSample struct {
	estBER  float64 // SoftPHY-estimated BER
	trueBER float64
	errs    int
	bits    int
	snrDB   float64
	rateIdx int
}

// collectFrames runs the real PHY over a channel model and gathers one
// sample per delivered frame. ws is the worker's reusable PHY scratch;
// every frame of the loop transmits, delivers and summarizes through it
// without allocating. batch > 0 queues that many frames and decodes them
// as one lockstep batch (see phy.Link.QueueDeliver); the samples are
// bit-identical to the per-frame path in either case.
func collectFrames(ws *phy.Workspace, cfg phy.Config, model *channel.Model, rates []rate.Rate, frames int, payload int, spacing float64, seed int64, batch int) []frameSample {
	rng := rand.New(rand.NewSource(seed))
	link := &phy.Link{Cfg: cfg, Model: model, Rng: rand.New(rand.NewSource(seed + 1)), WS: ws}
	var out []frameSample
	pl := make([]byte, payload)
	t := 0.0

	// The per-frame metadata a sample needs beyond its Reception; queued
	// deliveries outlive the workspace-aliased Transmission, so it is
	// captured at queue time.
	type txMeta struct{ bits, rateIdx int }
	var metas []txMeta
	flush := func() {
		for k, rx := range link.FlushDeliveries() {
			if !rx.Detected {
				continue
			}
			out = append(out, frameSample{
				estBER:  softphy.FrameBER(rx.Hints),
				trueBER: rx.TrueBER,
				errs:    rx.BitErrors,
				bits:    metas[k].bits,
				snrDB:   rx.SNREstDB,
				rateIdx: metas[k].rateIdx,
			})
		}
		metas = metas[:0]
	}

	for i := 0; i < frames; i++ {
		for _, r := range rates {
			rng.Read(pl)
			tx := phy.TransmitWS(ws, cfg, phy.Frame{Header: []byte{9, 9, 9, 9}, Payload: pl, Rate: r})
			if batch > 0 {
				link.QueueDeliver(tx, t, nil)
				metas = append(metas, txMeta{bits: len(tx.InfoBits()), rateIdx: r.Index})
				t += spacing
				if len(metas) == batch {
					flush()
				}
				continue
			}
			rx := link.Deliver(tx, t, nil)
			t += spacing
			if !rx.Detected {
				continue
			}
			out = append(out, frameSample{
				estBER:  softphy.FrameBER(rx.Hints),
				trueBER: rx.TrueBER,
				errs:    rx.BitErrors,
				bits:    len(tx.InfoBits()),
				snrDB:   rx.SNREstDB,
				rateIdx: r.Index,
			})
		}
	}
	if len(metas) > 0 {
		flush()
	}
	return out
}

// runFig7 reproduces Figure 7: SoftPHY-based vs SNR-based BER estimation
// in a static channel. (a) per-frame estimated vs true BER, (b) the
// aggregated version reaching far lower BERs, (c) SNR vs true BER for two
// rates showing the wide spread.
func runFig7(o Options) []*Table {
	cfg := phy.DefaultConfig()
	framesPerPoint := o.scaled(8)
	// "20 different transmit powers": a mean-SNR sweep, one trial per
	// transmit power.
	snrs := snrSweep(1, 21, 20)
	perPoint := engine.MapWith(o.Workers, len(snrs), phy.NewWorkspace, func(ws *phy.Workspace, i int) []frameSample {
		model := channel.NewStaticModel(snrs[i], nil)
		return collectFrames(ws, cfg, model, rate.Evaluation(), framesPerPoint, 240, 0.01, o.Seed+int64(i)*31, o.decodeBatch())
	})
	var samples []frameSample
	for _, p := range perPoint {
		samples = append(samples, p...)
	}

	// (a) Per-frame: bin by estimated BER (0.1-decade bins like the
	// paper), mean true BER per bin. Only frames with measurable error
	// rates can be compared per-frame.
	a := &Table{
		ID:     "fig7a",
		Title:  "Per-frame true BER vs SoftPHY-estimated BER (static channel)",
		Header: []string{"est BER (bin)", "true BER (mean)", "σ", "n"},
	}
	var xs, ys []float64
	for _, s := range samples {
		if s.errs > 0 {
			xs = append(xs, s.estBER)
			ys = append(ys, s.trueBER)
		}
	}
	within := 0
	bins := stats.LogBin(xs, ys, 0.2)
	for _, b := range bins {
		a.AddRow(fmtBER(b.Center), fmtBER(b.Mean), fmtBER(b.Std), fmt.Sprintf("%d", b.Count))
		if b.Mean > 0 && b.Center/b.Mean < 3.2 && b.Mean/b.Center < 3.2 {
			within++
		}
	}
	a.AddNote("%d/%d bins agree within half an order of magnitude (paper: excellent 1:1 agreement)", within, len(bins))

	// (b) Aggregated: pool all frames (including error-free ones) by
	// estimated-BER bin; the pooled ground-truth BER extends far below
	// what a single frame can measure.
	b := &Table{
		ID:     "fig7b",
		Title:  "Aggregated true BER vs SoftPHY-estimated BER (error-free frames included)",
		Header: []string{"est BER (bin)", "true BER (pooled)", "bits pooled"},
	}
	type pool struct {
		errs, bits int
	}
	pools := map[int]*pool{}
	for _, s := range samples {
		if s.estBER <= 0 {
			continue
		}
		k := int(math.Floor(math.Log10(s.estBER) / 0.5))
		p := pools[k]
		if p == nil {
			p = &pool{}
			pools[k] = p
		}
		p.errs += s.errs
		p.bits += s.bits
	}
	var keys []int
	for k := range pools {
		keys = append(keys, k)
	}
	sortInts(keys)
	agree := 0
	measurable := 0
	for _, k := range keys {
		p := pools[k]
		center := math.Pow(10, (float64(k)+0.5)*0.5)
		measured := float64(p.errs) / float64(p.bits)
		b.AddRow(fmtBER(center), fmtBER(measured), fmt.Sprintf("%d", p.bits))
		if p.errs >= 5 {
			measurable++
			if measured/center < 5 && center/measured < 5 {
				agree++
			}
		}
	}
	b.AddNote("%d/%d measurable bins agree within ~0.7 orders (paper: accurate down to 1e-7)", agree, measurable)

	// (c) SNR-based prediction: bin true BER by the SNR estimate for two
	// rates; the spread is the story.
	c := &Table{
		ID:     "fig7c",
		Title:  "True BER vs preamble SNR estimate (per-frame, two rates)",
		Header: []string{"SNR bin (dB)", "rate", "true BER (mean)", "σ", "n"},
	}
	for _, ri := range []int{3, 4} { // QPSK 3/4 and QAM16 1/2
		var sx, sy []float64
		for _, s := range samples {
			if s.rateIdx == ri && s.errs > 0 {
				sx = append(sx, s.snrDB)
				sy = append(sy, s.trueBER)
			}
		}
		for _, bin := range stats.LinBin(sx, sy, 1) {
			c.AddRow(fmt.Sprintf("%.1f", bin.Center), rate.ByIndex(ri).Name(),
				fmtBER(bin.Mean), fmtBER(bin.Std), fmt.Sprintf("%d", bin.Count))
		}
	}
	c.AddNote("in a static AWGN channel SNR predicts BER tightly; the SNR failure mode appears under mobility (fig9)")
	return []*Table{a, b, c}
}

// runFig8 reproduces Figure 8: SoftPHY-based BER estimation in mobile
// channels — the estimator is insensitive to mobility speed.
func runFig8(o Options) []*Table {
	cfg := phy.DefaultConfig()
	frames := o.scaled(120)
	if frames < 48 {
		frames = 48 // below this, too few errored frames to bin at all
	}
	out := &Table{
		ID:     "fig8",
		Title:  "True vs SoftPHY-estimated BER in mobile channels (walking 40 Hz, vehicular 400 Hz)",
		Header: []string{"est BER (bin)", "walking true BER", "n", "vehicular true BER", "n"},
	}
	collect := func(ws *phy.Workspace, doppler float64, seed int64) []stats.Bin {
		model := channel.NewStaticModel(11, channel.NewRayleigh(rand.New(rand.NewSource(seed)), doppler, 0))
		samples := collectFrames(ws, cfg, model, []rate.Rate{rate.ByIndex(2), rate.ByIndex(3)}, frames, 240, 0.017, seed+5, o.decodeBatch())
		var xs, ys []float64
		for _, s := range samples {
			if s.errs > 0 {
				xs = append(xs, s.estBER)
				ys = append(ys, s.trueBER)
			}
		}
		return stats.LogBin(xs, ys, 1.0)
	}
	mobilities := []struct {
		doppler float64
		seed    int64
	}{{40, o.Seed}, {400, o.Seed + 100}}
	binsets := engine.MapWith(o.Workers, len(mobilities), phy.NewWorkspace, func(ws *phy.Workspace, i int) []stats.Bin {
		return collect(ws, mobilities[i].doppler, mobilities[i].seed)
	})
	walk, veh := binsets[0], binsets[1]
	idx := map[float64][2]*stats.Bin{}
	for i := range walk {
		v := idx[walk[i].Center]
		v[0] = &walk[i]
		idx[walk[i].Center] = v
	}
	for i := range veh {
		v := idx[veh[i].Center]
		v[1] = &veh[i]
		idx[veh[i].Center] = v
	}
	var centers []float64
	for c := range idx {
		centers = append(centers, c)
	}
	sortFloats(centers)
	agreeBoth := 0
	nBoth := 0
	for _, c := range centers {
		v := idx[c]
		w, ve := "-", "-"
		wn, vn := "-", "-"
		if v[0] != nil {
			w, wn = fmtBER(v[0].Mean), fmt.Sprintf("%d", v[0].Count)
		}
		if v[1] != nil {
			ve, vn = fmtBER(v[1].Mean), fmt.Sprintf("%d", v[1].Count)
		}
		out.AddRow(fmtBER(c), w, wn, ve, vn)
		if v[0] != nil && v[1] != nil && v[0].Count >= 3 && v[1].Count >= 3 {
			nBoth++
			r := v[0].Mean / v[1].Mean
			if r < 4 && r > 0.25 {
				agreeBoth++
			}
		}
	}
	out.AddNote("walking and vehicular curves coincide in %d/%d shared bins: the SoftPHY estimate is mobility-invariant", agreeBoth, nBoth)
	return []*Table{out}
}

// runFig9 reproduces Figure 9: SNR-based BER estimation in mobile
// channels — the SNR-BER relationship shifts with coherence time, which is
// why SNR protocols need retraining.
func runFig9(o Options) []*Table {
	cfg := phy.DefaultConfig()
	frames := o.scaled(60)
	if frames < 25 {
		frames = 25
	}
	out := &Table{
		ID:     "fig9",
		Title:  "True BER vs preamble SNR at QAM16 1/2 under mobility",
		Header: []string{"SNR bin (dB)", "walking BER", "n", "vehicular BER", "n"},
	}
	collect := func(ws *phy.Workspace, doppler float64, seed int64) []stats.Bin {
		model := channel.NewStaticModel(13, channel.NewRayleigh(rand.New(rand.NewSource(seed)), doppler, 0))
		samples := collectFrames(ws, cfg, model, []rate.Rate{rate.ByIndex(4)}, frames, 240, 0.019, seed+5, o.decodeBatch())
		var xs, ys []float64
		for _, s := range samples {
			xs = append(xs, s.snrDB)
			ys = append(ys, s.trueBER)
		}
		return stats.LinBin(xs, ys, 2)
	}
	mobilities := []struct {
		doppler float64
		seed    int64
	}{{40, o.Seed + 200}, {400, o.Seed + 300}}
	binsets := engine.MapWith(o.Workers, len(mobilities), phy.NewWorkspace, func(ws *phy.Workspace, i int) []stats.Bin {
		return collect(ws, mobilities[i].doppler, mobilities[i].seed)
	})
	walk, veh := binsets[0], binsets[1]
	type pair struct{ w, v *stats.Bin }
	idx := map[float64]*pair{}
	for i := range walk {
		if idx[walk[i].Center] == nil {
			idx[walk[i].Center] = &pair{}
		}
		idx[walk[i].Center].w = &walk[i]
	}
	for i := range veh {
		if idx[veh[i].Center] == nil {
			idx[veh[i].Center] = &pair{}
		}
		idx[veh[i].Center].v = &veh[i]
	}
	var centers []float64
	for c := range idx {
		centers = append(centers, c)
	}
	sortFloats(centers)
	diverge := 0
	shared := 0
	for _, c := range centers {
		p := idx[c]
		w, wn, v, vn := "-", "-", "-", "-"
		if p.w != nil {
			w, wn = fmtBER(p.w.Mean), fmt.Sprintf("%d", p.w.Count)
		}
		if p.v != nil {
			v, vn = fmtBER(p.v.Mean), fmt.Sprintf("%d", p.v.Count)
		}
		out.AddRow(fmt.Sprintf("%.0f", c), w, wn, v, vn)
		if p.w != nil && p.v != nil && p.w.Count >= 3 && p.v.Count >= 3 {
			shared++
			hi, lo := p.v.Mean, p.w.Mean
			if lo > hi {
				hi, lo = lo, hi
			}
			if lo <= 0 || hi/lo > 3 {
				diverge++
			}
		}
	}
	out.AddNote("SNR-BER curves diverge between mobility speeds in %d/%d shared bins: same SNR, different BER — the retraining problem", diverge, shared)
	return []*Table{out}
}

func snrSweep(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

func sortFloats(v []float64) {
	for i := range v {
		for j := i + 1; j < len(v); j++ {
			if v[j] < v[i] {
				v[i], v[j] = v[j], v[i]
			}
		}
	}
}
