package experiments

import (
	"softrate/internal/ofdm"
	"softrate/internal/rate"
)

// rateSet returns the evaluation rate set shared by all network
// experiments.
func rateSet() []rate.Rate { return rate.Evaluation() }

// losslessAirtimes returns the no-retry airtime of a 1400-byte frame at
// each evaluation rate in simulation mode — the constant vector SampleRate
// and RRAA derive their thresholds from.
func losslessAirtimes() []float64 {
	rates := rateSet()
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = ofdm.Simulation.PayloadAirtime(1400, r, false)
	}
	return out
}
