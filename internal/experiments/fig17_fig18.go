package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/experiments/engine"
	"softrate/internal/netsim"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

func init() {
	register("fig17", runFig17)
	register("fig18", runFig18)
}

// staticShortRangeTraces builds static, high-quality link traces (Table 4,
// "Static (short range)"): using a static channel isolates interference
// effects from mobility adaptation (§6.4). One engine trial per trace.
func staticShortRangeTraces(workers, n int, dur float64, seed int64) (fwd, rev []*trace.LinkTrace) {
	traces := engine.Map(workers, 2*n, func(k int) *trace.LinkTrace {
		return trace.Generate(trace.GenConfig{
			Model:    channel.NewStaticModel(20, nil),
			Duration: dur,
			Seed:     seed + int64(k),
		})
	})
	for i := 0; i < n; i++ {
		fwd = append(fwd, traces[2*i])
		rev = append(rev, traces[2*i+1])
	}
	return fwd, rev
}

// interferenceAlgorithms returns the §6.4 algorithm set. SoftRate (Ideal)
// gets postambles and perfect interference detection; present SoftRate
// detects 80% of collisions and has no postambles.
func interferenceAlgorithms() []struct {
	name      string
	postamble bool
	detectP   float64
	factory   netsim.AdapterFactory
} {
	lossless := losslessAirtimes()
	softFactory := func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
		return ctl.NewSoftRate(core.DefaultConfig())
	}
	return []struct {
		name      string
		postamble bool
		detectP   float64
		factory   netsim.AdapterFactory
	}{
		{"SoftRate (Ideal)", true, 1.0, softFactory},
		{"SoftRate", false, 0.8, softFactory},
		{"RRAA", false, 0.8, func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewRRAA(rateSet(), lossless, true)) // adaptive RTS on
		}},
		{"SampleRate", false, 0.8, func(i int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller {
			return ctl.Wrap(ratectl.NewSampleRate(rateSet(), lossless, rand.New(rand.NewSource(rng.Int63()))))
		}},
	}
}

// runFig17 reproduces Figure 17: aggregate TCP throughput of five
// uploading clients as the pairwise carrier-sense probability sweeps from
// 0 (all hidden terminals) to 1 (no interference losses).
func runFig17(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	const nClients = 5
	fwd, rev := staticShortRangeTraces(o.Workers, nClients, dur, o.Seed)

	out := &Table{
		ID:     "fig17",
		Title:  "Aggregate TCP throughput (Mbps) of 5 uplink flows vs carrier sense probability",
		Header: []string{"Pr[CS]", "SoftRate (Ideal)", "SoftRate", "RRAA", "SampleRate"},
	}
	// One trial per (carrier-sense probability, algorithm) cell.
	css := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	algs := interferenceAlgorithms()
	bps := engine.Map(o.Workers, len(css)*len(algs), func(t int) float64 {
		cs, alg := css[t/len(algs)], algs[t%len(algs)]
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + int64(cs*100)
		cfg.CSProb = cs
		cfg.MAC.Postamble = alg.postamble
		cfg.MAC.InterferenceDetectionProb = alg.detectP
		return netsim.RunUplink(cfg, fwd, rev, alg.factory).AggregateBps
	})
	results := map[string][]float64{}
	for ci, cs := range css {
		row := []string{fmt.Sprintf("%.1f", cs)}
		for ai, alg := range algs {
			v := bps[ci*len(algs)+ai]
			row = append(row, fmtMbps(v))
			results[alg.name] = append(results[alg.name], v)
		}
		out.AddRow(row...)
	}
	// Shape checks from §6.4: RRAA collapses under hidden terminals;
	// SoftRate and SampleRate stay resilient.
	lowCS := func(name string) float64 { return results[name][0] } // cs = 0
	out.AddNote("at Pr[CS]=0: SoftRate/RRAA = %.2fx (paper: RRAA sees much lower throughput)",
		lowCS("SoftRate")/lowCS("RRAA"))
	out.AddNote("SampleRate is resilient to interference (its long-window metric averages over collisions): SampleRate/RRAA at Pr[CS]=0 = %.2fx",
		lowCS("SampleRate")/lowCS("RRAA"))
	return []*Table{out}
}

// runFig18 reproduces Figure 18: rate-selection accuracy at carrier sense
// probability 0.8.
func runFig18(o Options) []*Table {
	dur := 10 * o.Scale
	if dur < 2 {
		dur = 2
	}
	const nClients = 5
	fwd, rev := staticShortRangeTraces(o.Workers, nClients, dur, o.Seed+400)
	out := &Table{
		ID:     "fig18",
		Title:  "Rate selection accuracy (Pr[carrier sense] = 0.8)",
		Header: []string{"algorithm", "underselect", "accurate", "overselect"},
	}
	// One trial per algorithm, counting (under, accurate, over) picks.
	algs := interferenceAlgorithms()
	counts := engine.Map(o.Workers, len(algs), func(i int) [3]int {
		alg := algs[i]
		cfg := netsim.DefaultConfig()
		cfg.Duration = dur
		cfg.Seed = o.Seed + 41
		cfg.CSProb = 0.8
		cfg.RecordTx = true
		cfg.MAC.Postamble = alg.postamble
		cfg.MAC.InterferenceDetectionProb = alg.detectP
		res := netsim.RunUplink(cfg, fwd, rev, alg.factory)
		var c [3]int
		for _, st := range res.ClientStats {
			for _, r := range st.Records {
				switch {
				case r.RateIndex < r.OracleIndex:
					c[0]++
				case r.RateIndex == r.OracleIndex:
					c[1]++
				default:
					c[2]++
				}
			}
		}
		return c
	})
	for i, alg := range algs {
		under, ok, over := counts[i][0], counts[i][1], counts[i][2]
		total := float64(under + ok + over)
		if total == 0 {
			continue
		}
		out.AddRow(alg.name,
			fmtPct(float64(under)/total),
			fmtPct(float64(ok)/total),
			fmtPct(float64(over)/total))
		if alg.name == "RRAA" && float64(under)/total < 0.05 {
			out.AddNote("expected RRAA to underselect under collisions (it lowers rate on interference losses); got %.1f%%", 100*float64(under)/total)
		}
	}
	out.AddNote("paper: RRAA frequently underselects because it reduces bit rate in response to collision losses")
	return []*Table{out}
}
