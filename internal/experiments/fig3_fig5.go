package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/experiments/engine"
	"softrate/internal/phy"
	"softrate/internal/rate"
	"softrate/internal/softphy"
	"softrate/internal/stats"
	"softrate/internal/trace"
)

func init() {
	register("fig3", runFig3)
	register("fig5", runFig5)
}

// runFig3 reproduces Figure 3: the per-bit SoftPHY hint pattern of a frame
// lost to a collision (sharp, localized confidence crater) versus one lost
// to channel fading (diffuse, gradual degradation). Both frames run
// through the real PHY chain.
func runFig3(o Options) []*Table {
	cfg := phy.DefaultConfig()

	mkFrame := func(rng *rand.Rand) phy.Frame {
		payload := make([]byte, 480)
		rng.Read(payload)
		return phy.Frame{Header: []byte{1, 2, 3, 4}, Payload: payload, Rate: rate.ByIndex(3)}
	}

	// Two trials: the collision loss and the fading loss.
	receptions := engine.Map(o.Workers, 2, func(i int) *phy.Reception {
		if i == 0 {
			// Collision case: strong static channel, an interferer 2 dB
			// below the sender covering the middle of the frame.
			colLink := &phy.Link{Cfg: cfg, Model: channel.NewStaticModel(17, nil), Rng: rand.New(rand.NewSource(o.Seed + 1))}
			colTx := phy.Transmit(cfg, mkFrame(rand.New(rand.NewSource(o.Seed))))
			T := cfg.Mode.SymbolTime()
			n := colTx.NumSymbols()
			burst := phy.Burst{Start: float64(n) * T * 0.45, End: float64(n) * T * 0.75, Power: channel.DBToLinear(15)}
			return colLink.Deliver(colTx, 0, []phy.Burst{burst})
		}
		// Fading case: marginal mean SNR over a walking-speed channel;
		// pick a frame that actually had errors.
		fadeLink := &phy.Link{
			Cfg:   cfg,
			Model: channel.NewStaticModel(10, channel.NewRayleigh(rand.New(rand.NewSource(o.Seed+2)), 40, 0)),
			Rng:   rand.New(rand.NewSource(o.Seed + 3)),
		}
		// The two trials used to draw payloads from one shared stream,
		// collision frame first; skipping that frame's bytes keeps this
		// trial's frames (and hence which fade is displayed) identical to
		// the serial harness while letting the trials run concurrently.
		payloadRng := rand.New(rand.NewSource(o.Seed))
		payloadRng.Read(make([]byte, 480))
		for f := 0; f < 200; f++ {
			rx := fadeLink.Deliver(phy.Transmit(cfg, mkFrame(payloadRng)), float64(f)*0.021, nil)
			if rx.Detected && rx.BitErrors > 5 {
				return rx
			}
		}
		return nil
	})
	colRx, fadeRx := receptions[0], receptions[1]

	out := &Table{
		ID:     "fig3",
		Title:  "Per-OFDM-symbol mean SoftPHY hint: collision vs fading loss",
		Header: []string{"symbol", "hint(collision)", "p_j(collision)", "hint(fading)", "p_j(fading)"},
	}
	colSym := softphy.SymbolBERs(colRx.Hints, colRx.InfoBitsPerSymbol)
	var fadeSym []float64
	if fadeRx != nil {
		fadeSym = softphy.SymbolBERs(fadeRx.Hints, fadeRx.InfoBitsPerSymbol)
	}
	rows := len(colSym)
	if len(fadeSym) > rows {
		rows = len(fadeSym)
	}
	meanHint := func(hints []float64, nbps, j int) float64 {
		base := j * nbps
		if base >= len(hints) {
			return 0
		}
		end := base + nbps
		if end > len(hints) {
			end = len(hints)
		}
		return stats.Mean(hints[base:end])
	}
	for j := 0; j < rows; j++ {
		c1, c2, f1, f2 := "-", "-", "-", "-"
		if j < len(colSym) {
			c1 = fmt.Sprintf("%.2f", meanHint(colRx.Hints, colRx.InfoBitsPerSymbol, j))
			c2 = fmtBER(colSym[j])
		}
		if j < len(fadeSym) {
			f1 = fmt.Sprintf("%.2f", meanHint(fadeRx.Hints, fadeRx.InfoBitsPerSymbol, j))
			f2 = fmtBER(fadeSym[j])
		}
		out.AddRow(fmt.Sprintf("%d", j), c1, c2, f1, f2)
	}

	// Shape checks: the collision's BER series must jump abruptly; the
	// detector must fire on the collision frame.
	det := softphy.Analyze(colRx.Hints, softphy.BlockBits(colRx.InfoBitsPerSymbol), softphy.DefaultDetector())
	out.AddNote("interference detector verdict on collision frame: %v (excised %d symbols)", det.Collision, countTrue(det.Excised))
	if fadeRx != nil {
		detF := softphy.Analyze(fadeRx.Hints, softphy.BlockBits(fadeRx.InfoBitsPerSymbol), softphy.DefaultDetector())
		out.AddNote("interference detector verdict on fading frame: %v (false positive if true)", detF.Collision)
	}
	return []*Table{out}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// runFig5 reproduces Figure 5: BER at the QPSK 3/4 rate versus BER at two
// lower and two higher rates over the walking trace, verifying the two
// BER-prediction observations of §3.3 (monotonicity and order-of-magnitude
// spacing).
func runFig5(o Options) []*Table {
	// The whole figure hangs off one trace generation: a single trial.
	lt := engine.Map(o.Workers, 1, func(int) *trace.LinkTrace {
		rng := rand.New(rand.NewSource(o.Seed))
		model := channel.NewStaticModel(14, channel.NewRayleigh(rng, 40, 0))
		// Small probe frames, as in the paper's round-robin trace
		// collection: a 1400-byte BPSK frame lasts ~1.3 ms and would
		// straddle fades that a 0.4 ms QPSK-3/4 frame misses, corrupting
		// the cross-rate comparison.
		return trace.Generate(trace.GenConfig{
			Model:        model,
			Duration:     float64(o.scaled(40)) * 0.25, // default 10 s at scale 1
			PayloadBytes: 100,
			Seed:         o.Seed + 1,
		})
	})[0]

	ref := 3                    // QPSK 3/4
	others := []int{0, 2, 4, 5} // BPSK 1/2, QPSK 1/2, QAM16 1/2, QAM16 3/4

	out := &Table{
		ID:     "fig5",
		Title:  "BER at other rates vs BER at QPSK 3/4 (walking trace, log-binned)",
		Header: []string{"BER@QPSK3/4", "BPSK 1/2", "QPSK 1/2", "QAM16 1/2", "QAM16 3/4", "n"},
	}

	// Collect per-slot BER pairs and bin by the reference rate's BER.
	nSlots := len(lt.Snapshots[ref])
	var xs []float64
	ys := make([][]float64, len(others))
	for s := 0; s < nSlots; s++ {
		bRef := lt.Snapshots[ref][s].BER
		if bRef <= 1e-11 {
			continue
		}
		xs = append(xs, bRef)
		for k, ri := range others {
			ys[k] = append(ys[k], lt.Snapshots[ri][s].BER)
		}
	}
	// Bin by decade of the reference BER.
	type agg struct {
		sums  []float64
		count int
	}
	bins := map[int]*agg{}
	for i, x := range xs {
		k := decade(x)
		a := bins[k]
		if a == nil {
			a = &agg{sums: make([]float64, len(others))}
			bins[k] = a
		}
		a.count++
		for j := range others {
			a.sums[j] += ys[j][i]
		}
	}
	var keys []int
	for k := range bins {
		keys = append(keys, k)
	}
	sortInts(keys)
	monoOK, spacingOK, spacingTotal, total := 0, 0, 0, 0
	for _, k := range keys {
		a := bins[k]
		center := pow10(k)
		row := []string{fmtBER(center)}
		var means []float64
		for j := range others {
			m := a.sums[j] / float64(a.count)
			means = append(means, m)
			row = append(row, fmtBER(m))
		}
		row = append(row, fmt.Sprintf("%d", a.count))
		out.AddRow(row...)
		if a.count < 5 {
			continue // too noisy to judge shape
		}
		// Shape check per bin (obs. 1): BER non-decreasing across rates,
		// with a factor-2 tolerance for estimator jitter; bins where the
		// reference BER has saturated (> 0.1) are excluded — every rate
		// is equally dead there.
		total++
		seq := []float64{means[0], means[1], center, means[2], means[3]}
		mono := center <= 0.1
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1]/2 {
				mono = false
			}
		}
		if mono {
			monoOK++
		}
		// Obs. 2 (order-of-magnitude spacing) in the usable range,
		// between the reference and the next *modulation* step up.
		if center < 1e-2 && center > 1e-7 {
			spacingTotal++
			if means[2] >= center*5 {
				spacingOK++
			}
		}
	}
	out.AddNote("monotonicity (obs. 1) holds in %d/%d judged bins", monoOK, total)
	out.AddNote("QAM16-1/2 BER >= 5x the QPSK-3/4 BER (obs. 2) in %d/%d usable-range bins", spacingOK, spacingTotal)
	return []*Table{out}
}

func decade(x float64) int {
	k := 0
	for x < 1 {
		x *= 10
		k--
	}
	return k
}

func pow10(k int) float64 {
	v := 1.0
	for ; k < 0; k++ {
		v /= 10
	}
	return v
}

func sortInts(v []int) {
	for i := range v {
		for j := i + 1; j < len(v); j++ {
			if v[j] < v[i] {
				v[i], v[j] = v[j], v[i]
			}
		}
	}
}
