package experiments

import (
	"bytes"
	"testing"
)

// TestBatchDecodeByteIdentical pins the lockstep batch decoder's
// end-to-end contract at the harness level: the rendered tables of the
// PHY-driven experiments must be byte-identical with batching off
// (historical per-frame deliveries), at the default batch of 8, and at an
// odd batch size that forces ragged final flushes — each at one worker and
// at eight. Combined with TestParallelByteIdentical this guarantees the
// fast path changes nothing but speed.
func TestBatchDecodeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("batch determinism tests skipped in -short mode")
	}
	for _, id := range []string{"fig7", "fig9", "fig10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := tiny()
			o.Workers = 1
			o.DecodeBatch = -1
			ref := render(t, id, o)
			for _, batch := range []int{0, 5} {
				for _, workers := range []int{1, 8} {
					o.DecodeBatch, o.Workers = batch, workers
					got := render(t, id, o)
					if !bytes.Equal(ref, got) {
						t.Errorf("%s: output differs between per-frame decode and DecodeBatch=%d Workers=%d\n--- per-frame ---\n%s\n--- batched ---\n%s",
							id, batch, workers, ref, got)
					}
				}
			}
		})
	}
}
