package experiments

import (
	"bytes"
	"testing"
)

// render executes an experiment and returns its full rendered text output.
func render(t *testing.T, id string, o Options) []byte {
	t.Helper()
	tables, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Fprint(&buf)
	}
	return buf.Bytes()
}

// TestParallelByteIdentical is the engine's core contract: for a fixed
// seed, an experiment's rendered tables are byte-identical no matter how
// many workers execute its trials. The set covers PHY sweeps (fig10),
// MAC simulations (tab1, fig4), timeline experiments (fig15),
// single-trial harnesses (fig3), netsim fan-outs (fig14), every
// multi-stage harness with flattened trial-index arithmetic (fig13,
// fig16, fig17, ablation-excision) — where a transposed index would
// silently swap results between algorithms — and every harness that
// threads a shared per-worker phy.Workspace through its trials (fig7,
// fig8, fig9, fig10, fig11, ablation-decoder), where scratch residue
// leaking between trials on one worker would make output depend on the
// worker count.
func TestParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel determinism tests skipped in -short mode")
	}
	for _, id := range []string{"fig3", "fig4", "fig10", "fig15", "tab1", "fig14",
		"fig13", "fig16", "fig17", "ablation-excision",
		"fig7", "fig8", "fig9", "fig11", "ablation-decoder"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := tiny()
			o.Workers = 1
			serial := render(t, id, o)
			o.Workers = 8
			parallel := render(t, id, o)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s: output differs between Workers=1 and Workers=8\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// TestCSVRendering checks the machine-readable table format round-trips
// the structure: typed records, one per header/row/note.
func TestCSVRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "a, \"quoted\" title", Header: []string{"c1", "c2"}}
	tb.AddRow("v1", "v2")
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "table,x,\"a, \"\"quoted\"\" title\"\nheader,c1,c2\nrow,v1,v2\nnote,note 7\n"
	if buf.String() != want {
		t.Errorf("CSV mismatch:\ngot  %q\nwant %q", buf.String(), want)
	}
}
