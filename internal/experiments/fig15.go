package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"softrate/internal/experiments/engine"
	"softrate/internal/mac"
	"softrate/internal/ratectl"
	"softrate/internal/sim"
	"softrate/internal/trace"
)

func init() {
	register("fig15", runFig15)
}

// twoStateTrace builds the synthetic channel of Figure 15: the best
// transmit rate alternates between QAM16 3/4 (rate 5, "good") and QAM16
// 1/2 (rate 4, "bad") every period seconds. BERs follow a physically
// shaped ladder around the optimal rate; the rate one step above optimal
// is marginal (≈55% delivery) rather than dead, as in a real channel
// snapshot — which matters, because a 100%-dead rate lets SampleRate's
// consecutive-failure shortcut bypass its window logic entirely.
func twoStateTrace(dur, period float64, seed int64) *trace.LinkTrace {
	rng := rand.New(rand.NewSource(seed))
	interval := 1e-3
	nSlots := int(dur / interval)
	nRates := 6
	snaps := make([][]trace.Snapshot, nRates)
	for ri := 0; ri < nRates; ri++ {
		snaps[ri] = make([]trace.Snapshot, nSlots)
	}
	for s := 0; s < nSlots; s++ {
		t := float64(s) * interval
		good := 5
		if int(t/period)%2 == 1 {
			good = 4
		}
		for ri := 0; ri < nRates; ri++ {
			ber := 1e-6 * math.Pow(100, float64(ri-good))
			if ber > 0.3 {
				ber = 0.3
			}
			var dp float64
			switch {
			case ri <= good:
				dp = 1
			case ri == good+1:
				dp = 0.55
			default:
				dp = 0
			}
			snaps[ri][s] = trace.Snapshot{
				Detected:    true,
				Delivered:   rng.Float64() < dp,
				DeliverProb: dp,
				BER:         ber,
				SNRdB:       20,
			}
		}
	}
	return trace.NewSynthetic(interval, 1400*8, snaps)
}

// rateTimeline runs one saturated UDP station with the given adapter over
// the two-state trace and logs (time, rateIndex) per transmission.
func rateTimeline(adapter ratectl.Adapter, dur float64, seed int64) []mac.TxRecord {
	var eng sim.Engine
	med := mac.NewMedium(&eng, mac.DefaultConfig(), rand.New(rand.NewSource(seed)))
	st := med.NewStation(adapter, twoStateTrace(dur+1, 1.0, seed+50))
	st.RecordTx = true
	var feed func()
	feed = func() {
		for st.QueueLen() < 3 {
			st.Enqueue(mac.Packet{Bytes: 1400})
		}
		if eng.Now() < dur {
			eng.Schedule(1e-3, feed)
		}
	}
	eng.Schedule(0, feed)
	eng.Run(dur)
	return st.Stats.Records
}

// convergenceTime finds how long after the switch at switchT the adapter
// first settles on wantRate (first pick of wantRate that is followed by a
// majority of wantRate picks over the next 10 frames).
func convergenceTime(recs []mac.TxRecord, switchT float64, wantRate int) float64 {
	for i, r := range recs {
		if r.Time < switchT || r.RateIndex != wantRate {
			continue
		}
		hits, n := 0, 0
		for j := i; j < len(recs) && n < 10; j++ {
			n++
			if recs[j].RateIndex == wantRate {
				hits++
			}
		}
		if hits >= 7 {
			return r.Time - switchT
		}
	}
	return math.NaN()
}

// runFig15 reproduces Figure 15: the bit rates chosen by RRAA and
// SampleRate around optimal-rate switches, and their convergence times in
// both directions.
func runFig15(o Options) []*Table {
	dur := 6.0
	lossless := losslessAirtimes()
	// One trial per algorithm timeline; adapters are stateful, so each
	// trial constructs its own.
	timelines := engine.Map(o.Workers, 2, func(i int) []mac.TxRecord {
		if i == 0 {
			return rateTimeline(ratectl.NewRRAA(rateSet(), lossless, false), dur, o.Seed+1)
		}
		return rateTimeline(ratectl.NewSampleRate(rateSet(), lossless, rand.New(rand.NewSource(o.Seed))), dur, o.Seed+2)
	})
	recsR, recsS := timelines[0], timelines[1]

	timeline := &Table{
		ID:     "fig15",
		Title:  "Rates chosen by RRAA and SampleRate on a channel whose optimal rate flips every 1 s (36<->24 Mbps)",
		Header: []string{"t(ms)", "optimal", "RRAA", "SampleRate"},
	}
	sample := func(recs []mac.TxRecord, t float64) string {
		last := "-"
		for _, r := range recs {
			if r.Time > t {
				break
			}
			last = rateSet()[r.RateIndex].Name()
		}
		return last
	}
	for ms := 900; ms <= 2400; ms += 50 {
		t := float64(ms) / 1000
		opt := "QAM16 3/4"
		if int(t)%2 == 1 {
			opt = "QAM16 1/2"
		}
		timeline.AddRow(fmt.Sprintf("%d", ms), opt, sample(recsR, t), sample(recsS, t))
	}

	conv := &Table{
		ID:     "fig15-convergence",
		Title:  "Convergence time after the optimal rate changes",
		Header: []string{"algorithm", "high->low (ms)", "low->high (ms)"},
	}
	fmtConv := func(v float64) string {
		if math.IsNaN(v) {
			return "did not converge"
		}
		return fmt.Sprintf("%.0f", v*1e3)
	}
	// Switches: good->bad at odd seconds (down to QAM16 1/2), bad->good
	// at even seconds. Average over the repeated switches to damp the
	// dependence on where in its decision cycle each algorithm was.
	avgConv := func(recs []mac.TxRecord, switches []float64, want int) float64 {
		var sum float64
		n := 0
		for _, sw := range switches {
			if v := convergenceTime(recs, sw, want); !math.IsNaN(v) && v < 1.0 {
				sum += v
				n++
			}
		}
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	down := []float64{1, 3, 5}
	up := []float64{2, 4}
	conv.AddRow("RRAA", fmtConv(avgConv(recsR, down, 4)), fmtConv(avgConv(recsR, up, 5)))
	conv.AddRow("SampleRate", fmtConv(avgConv(recsS, down, 4)), fmtConv(avgConv(recsS, up, 5)))
	conv.AddNote("paper: RRAA 15 ms / 85 ms; SampleRate 600 ms / 650 ms — frame-level schemes converge orders of magnitude slower than per-frame feedback")

	// RRAA instability check (top panel of the paper's Figure 15): count
	// rate flaps while the channel is stable in the "good" state.
	flaps := 0
	var prev = -1
	for _, r := range recsR {
		if r.Time < 2.2 || r.Time > 2.9 {
			continue
		}
		if prev >= 0 && r.RateIndex != prev {
			flaps++
		}
		prev = r.RateIndex
	}
	conv.AddNote("RRAA rate flaps during a stable 700 ms window: %d (paper highlights RRAA's instability at a stable optimum)", flaps)
	return []*Table{timeline, conv}
}
