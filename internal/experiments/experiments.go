// Package experiments contains one harness per table and figure of the
// paper's evaluation (§5, §6), each regenerating the corresponding result
// as a printable table. The harnesses are the integration layer: they wire
// the channel models, the PHY, the SoftPHY math, the rate adaptation
// algorithms, the MAC and the network simulator together exactly as the
// paper's experimental setups describe (Table 4 and §6.1).
//
// Every harness accepts Options so that the same code can run at "CI
// scale" (seconds) or "paper scale" (minutes): Scale multiplies frame
// counts and durations without changing the experimental structure.
//
// Harnesses are trial-sharded: each declares its independent trials (one
// per SNR point, seed, algorithm or topology) as closures and fans them
// across the worker pool in the engine subpackage. Trials derive their
// randomness from Options.Seed plus their trial index and aggregate in
// trial order, so for a fixed seed the output is byte-identical at any
// Options.Workers setting.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Options tune an experiment run.
type Options struct {
	// Scale multiplies sample counts/durations; 1.0 approximates the
	// paper's sample sizes, the default 0.25 keeps the full suite fast.
	Scale float64
	// Seed drives all randomness in the experiment.
	Seed int64
	// Workers bounds the engine's trial-level parallelism. Zero or
	// negative means one worker per CPU. Results are byte-identical at
	// any worker count: every trial derives its randomness from Seed and
	// its own trial index, and the engine aggregates in trial order.
	Workers int
	// DecodeBatch sets how many frames the PHY-driven harnesses queue
	// before decoding them as one lockstep batch (the fast path). Zero
	// means the default of 8; negative disables batching (per-frame
	// delivery). The batch decoder is exact, so output is byte-identical
	// at every setting — the knob trades nothing but speed.
	DecodeBatch int
}

// DefaultOptions returns the CI-scale defaults.
func DefaultOptions() Options { return Options{Scale: 0.25, Seed: 1} }

func (o *Options) fill() {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// decodeBatch resolves the DecodeBatch option: 0 means the default of 8,
// negative disables batching (returns 0).
func (o Options) decodeBatch() int {
	switch {
	case o.DecodeBatch == 0:
		return 8
	case o.DecodeBatch < 0:
		return 0
	}
	return o.DecodeBatch
}

// scaled returns max(1, round(n*Scale)).
func (o Options) scaled(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Table is one experiment output: an identifier tying it to the paper, a
// header row and data rows, plus free-form notes (e.g. the shape checks
// the paper's prose asserts).
type Table struct {
	// ID is the paper artifact this reproduces, e.g. "fig13".
	ID string `json:"id"`
	// Title describes the table.
	Title string `json:"title"`
	// Header names the columns.
	Header []string `json:"header"`
	// Rows holds the data, already formatted.
	Rows [][]string `json:"rows"`
	// Notes carries shape observations and caveats.
	Notes []string `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			wdt := 0
			if i < len(widths) {
				wdt = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", wdt, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as CSV records. The first field of every
// record is its type — "table" (ID and title), "header", "row" or
// "note" — so that several tables can share one stream and downstream
// tooling can split them back apart without guessing at widths.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"table", t.ID, t.Title}); err != nil {
		return err
	}
	if err := cw.Write(append([]string{"header"}, t.Header...)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(append([]string{"row"}, row...)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"note", n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Runner is an experiment entry point.
type Runner func(o Options) []*Table

// registry maps experiment IDs to their runners.
var registry = map[string]Runner{}

// register is called from each experiment file's init.
func register(id string, r Runner) { registry[id] = r }

// Run executes the experiment with the given paper-artifact ID.
func Run(id string, o Options) ([]*Table, error) {
	o.fill()
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o), nil
}

// IDs lists the registered experiments in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// fmtBER renders a BER in compact scientific form.
func fmtBER(b float64) string {
	if b == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2e", b)
}

// fmtMbps renders bits/s as Mbps.
func fmtMbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e6) }

// fmtPct renders a fraction as a percentage.
func fmtPct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
