package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/experiments/engine"
	"softrate/internal/ofdm"
	"softrate/internal/phy"
	"softrate/internal/rate"
)

func init() {
	register("fig1", runFig1)
	register("tab2", runTab2)
	register("tab3", runTab3)
}

// runFig1 reproduces Figure 1: SNR fluctuation over a fading channel with
// walking-speed mobility across a 10-second window, a 350 ms detail, and
// the induced BER at BPSK 1/2.
func runFig1(o Options) []*Table {
	rng := rand.New(rand.NewSource(o.Seed))
	// Parameters chosen so the 10 s window spans roughly the ~20 dB of
	// combined large-scale attenuation and fading the paper's Figure 1
	// shows. The model is pure in t after construction, so the coarse and
	// detail windows are two trials sharing it read-only.
	model := channel.NewWalkingModel(rng,
		channel.LinearTrajectory{StartDist: 3, Speed: 1.0},
		channel.PathLoss{RefSNRdB: 30, RefDist: 1, Exponent: 2.0})
	m := phy.DefaultBERModel

	tables := engine.Map(o.Workers, 2, func(i int) *Table {
		if i == 0 {
			coarse := &Table{
				ID:     "fig1",
				Title:  "SNR and BPSK-1/2 BER over a walking-speed fading channel (10 s window, 100 ms sampling)",
				Header: []string{"t(s)", "SNR(dB)", "BER@BPSK1/2"},
			}
			var minSNR, maxSNR float64 = 1e9, -1e9
			for ti := 0; ti < 100; ti++ {
				t := float64(ti) * 0.1
				snr := channel.LinearToDB(model.SNR(t))
				if snr < minSNR {
					minSNR = snr
				}
				if snr > maxSNR {
					maxSNR = snr
				}
				coarse.AddRow(fmt.Sprintf("%.1f", t), fmt.Sprintf("%+.1f", snr), fmtBER(m.BERAt(0, snr)))
			}
			coarse.AddNote("large-scale fading: SNR spans %.1f dB over the window (paper shows ~20 dB swings)", maxSNR-minSNR)
			return coarse
		}
		detail := &Table{
			ID:     "fig1-detail",
			Title:  "350 ms detail (5 ms sampling): fades tens of milliseconds long",
			Header: []string{"t(ms)", "SNR(dB)", "BER@BPSK1/2"},
		}
		// Count fade dips below the window median to show tens-of-ms fades.
		var vals []float64
		for ti := 0; ti < 70; ti++ {
			t := 3.0 + float64(ti)*0.005
			snr := channel.LinearToDB(model.SNR(t))
			vals = append(vals, snr)
			detail.AddRow(fmt.Sprintf("%.0f", (t-3.0)*1e3), fmt.Sprintf("%+.1f", snr), fmtBER(m.BERAt(0, snr)))
		}
		med := median(vals)
		fades := 0
		inFade := false
		for _, v := range vals {
			if v < med-6 {
				if !inFade {
					fades++
					inFade = true
				}
			} else {
				inFade = false
			}
		}
		detail.AddNote("%d deep fades (>6 dB below median) in 350 ms — tens-of-ms fade durations, as in the paper", fades)
		return detail
	})
	return tables
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	for i := range s {
		for j := i + 1; j < len(s); j++ {
			if s[j] < s[i] {
				s[i], s[j] = s[j], s[i]
			}
		}
	}
	return s[len(s)/2]
}

// runTab2 reproduces Table 2: the modulation/code-rate combinations and
// their raw 20 MHz throughput, plus implementation status (all eight are
// implemented here; the paper's prototype stopped at QAM16 3/4).
func runTab2(o Options) []*Table {
	t := &Table{
		ID:     "tab2",
		Title:  "802.11a/g modulation and coding combinations",
		Header: []string{"Modulation", "Code Rate", "802.11 Rate", "Paper prototype", "This repo"},
	}
	paperImpl := map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}
	for _, r := range rate.All() {
		impl := "No"
		if paperImpl[r.Index] {
			impl = "Yes"
		}
		t.AddRow(r.Scheme.String(), r.Code.String(), fmt.Sprintf("%g Mbps", r.Mbps), impl, "Yes")
	}
	return []*Table{t}
}

// runTab3 reproduces Table 3: the OFDM prototype's modes of operation.
func runTab3(o Options) []*Table {
	t := &Table{
		ID:     "tab3",
		Title:  "Modes of operation of the OFDM prototype",
		Header: []string{"Mode", "Bandwidth", "Tones", "Symbol time"},
	}
	for _, m := range []ofdm.Mode{ofdm.LongRange, ofdm.ShortRange, ofdm.Simulation} {
		t.AddRow(m.Name,
			fmt.Sprintf("%g kHz", m.Bandwidth/1e3),
			fmt.Sprintf("%d", m.Tones),
			fmt.Sprintf("%.3g ms", m.SymbolTime()*1e3))
	}
	t.AddNote("cyclic prefix is one quarter of the subcarrier count, as in the paper")
	return []*Table{t}
}
