package experiments

import (
	"fmt"
	"math/rand"

	"softrate/internal/experiments/engine"
	"softrate/internal/mac"
	"softrate/internal/ratectl"
	"softrate/internal/sim"
	"softrate/internal/stats"
	"softrate/internal/trace"
)

func init() {
	register("tab1", runTab1)
	register("fig4", runFig4)
}

// randomRateAdapter picks a uniformly random rate per frame, as in the
// paper's silent-loss simulation ("picking a random transmit bit rate on
// each packet").
type randomRateAdapter struct {
	rng *rand.Rand
	n   int
}

func (r *randomRateAdapter) Name() string            { return "Random" }
func (r *randomRateAdapter) NextRate(float64) int    { return r.rng.Intn(r.n) }
func (r *randomRateAdapter) WantRTS() bool           { return false }
func (r *randomRateAdapter) OnResult(ratectl.Result) {}

// cleanTrace is a trace where every rate always delivers — "the physical
// layer parameters ... are set such that only collisions result in frame
// losses" (§3.2).
func cleanTrace(nRates int, dur, interval float64) *trace.LinkTrace {
	nSlots := int(dur / interval)
	snaps := make([][]trace.Snapshot, nRates)
	for ri := range snaps {
		row := make([]trace.Snapshot, nSlots)
		for s := range row {
			row[s] = trace.Snapshot{Detected: true, Delivered: true, DeliverProb: 1, BER: 1e-7, SNRdB: 30}
		}
		snaps[ri] = row
	}
	return trace.NewSynthetic(interval, 1400*8, snaps)
}

// silentLossRun simulates the two-hidden-senders experiment of §3.2: both
// saturate the channel with UDP frames at random rates, cannot carrier
// sense each other, and we measure per sender the fraction of its frames
// for which *both* the preamble and the postamble were destroyed — the
// frames that remain silent even with postambles.
func silentLossRun(o Options, bytes1, bytes2 int, dur float64) (f [2]float64, runs [2][]int) {
	cfg := mac.DefaultConfig()
	cfg.Postamble = true
	var eng sim.Engine
	rng := rand.New(rand.NewSource(o.Seed))
	med := mac.NewMedium(&eng, cfg, rng)
	med.CSProb = func(a, b int) float64 { return 0 }

	mkStation := func(bytes int, seed int64) *mac.Station {
		st := med.NewStation(&randomRateAdapter{rng: rand.New(rand.NewSource(seed)), n: len(cfg.Rates)}, cleanTrace(len(cfg.Rates), 1, 1e-3))
		st.RecordTx = true
		// Saturated UDP source.
		var feed func()
		feed = func() {
			for st.QueueLen() < 3 {
				st.Enqueue(mac.Packet{Bytes: bytes})
			}
			if eng.Now() < dur {
				eng.Schedule(0.5e-3, feed)
			}
		}
		eng.Schedule(0, feed)
		return st
	}
	s1 := mkStation(bytes1, o.Seed+10)
	s2 := mkStation(bytes2, o.Seed+20)
	eng.Run(dur)

	for i, st := range []*mac.Station{s1, s2} {
		silent := 0
		flags := make([]bool, 0, len(st.Stats.Records))
		for _, r := range st.Stats.Records {
			both := r.Collided && r.PreambleLost && r.PostambleLost
			if both {
				silent++
			}
			flags = append(flags, both)
		}
		if len(st.Stats.Records) > 0 {
			f[i] = float64(silent) / float64(len(st.Stats.Records))
		}
		runs[i] = stats.RunLengths(flags)
	}
	return f, runs
}

// runTab1 reproduces Table 1: the fraction of frames at each of the two
// hidden senders for which both preamble and postamble are lost, for equal
// and unequal frame sizes.
func runTab1(o Options) []*Table {
	dur := 2 * float64(o.scaled(4)) // default 2*1=2 s at CI scale, 8 s at 1.0
	out := &Table{
		ID:     "tab1",
		Title:  "Fraction of frames losing both preamble and postamble (hidden-terminal collisions)",
		Header: []string{"frame size s1", "frame size s2", "f1", "f2"},
	}
	// Two trials: equal and unequal frame-size sender pairs.
	fracs := engine.Map(o.Workers, 2, func(i int) [2]float64 {
		if i == 0 {
			f, _ := silentLossRun(o, 1400, 1400, dur)
			return f
		}
		f, _ := silentLossRun(Options{Scale: o.Scale, Seed: o.Seed + 1000}, 100, 1400, dur)
		return f
	})
	fEq, fNe := fracs[0], fracs[1]
	out.AddRow("1400 bytes", "1400 bytes", fmtPct(fEq[0]), fmtPct(fEq[1]))
	out.AddRow("100 bytes", "1400 bytes", fmtPct(fNe[0]), fmtPct(fNe[1]))
	out.AddNote("paper: 12%%/12%% (equal) and 14%%/1%% (unequal). Our saturated CSMA settles at a higher interferer duty cycle than ns-3's, which scales the absolute fractions up; the structure matches: equal sizes symmetric, and the long-frame sender almost never loses both (f2=%s)", fmtPct(fNe[1]))
	out.AddNote("conditional on colliding at all, the both-lost geometry (~duty cycle squared) matches the paper's")
	return []*Table{out}
}

// runFig4 reproduces Figure 4: the complementary CDF of run lengths of
// consecutive frames whose preamble and postamble are both undetected.
// Long runs are rare — the basis for the three-silent-losses rule.
func runFig4(o Options) []*Table {
	dur := 2 * float64(o.scaled(6))
	out := &Table{
		ID:     "fig4",
		Title:  "CCDF of consecutive both-lost (silent) frame runs under collisions",
		Header: []string{"run length >=", "equal sizes", "unequal (smaller)", "unequal (larger)"},
	}
	// Two trials: equal and unequal frame-size sender pairs.
	runs := engine.Map(o.Workers, 2, func(i int) [2][]int {
		if i == 0 {
			_, r := silentLossRun(o, 1400, 1400, dur)
			return r
		}
		_, r := silentLossRun(Options{Scale: o.Scale, Seed: o.Seed + 2000}, 100, 1400, dur)
		return r
	})
	runsEq, runsNe := runs[0], runs[1]

	// Pool the two equal-size senders.
	pooledEq := append(append([]int{}, runsEq[0]...), runsEq[1]...)
	ccdfEq := stats.CCDF(pooledEq)
	ccdfSm := stats.CCDF(runsNe[0])
	ccdfLg := stats.CCDF(runsNe[1])
	maxLen := len(ccdfEq)
	if len(ccdfSm) > maxLen {
		maxLen = len(ccdfSm)
	}
	if len(ccdfLg) > maxLen {
		maxLen = len(ccdfLg)
	}
	if maxLen > 10 {
		maxLen = 10
	}
	at := func(c []float64, v int) string {
		if v < len(c) {
			return fmt.Sprintf("%.3f", c[v])
		}
		return "0.000"
	}
	for v := 1; v < maxLen; v++ {
		out.AddRow(fmt.Sprintf("%d", v), at(ccdfEq, v), at(ccdfSm, v), at(ccdfLg, v))
	}
	p3 := 0.0
	if len(ccdfEq) > 3 {
		p3 = ccdfEq[3]
	}
	out.AddNote("P(run >= 3) for equal sizes = %.3f — long silent runs are very uncommon under interference alone, justifying the 3-loss rule", p3)
	return []*Table{out}
}
