package netsim

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/ratectl"
	"softrate/internal/trace"
)

// genTraces builds n independent walking-style traces (and reverse links).
func genTraces(n int, meanSNR float64, doppler float64, dur float64, seed int64) (fwd, rev []*trace.LinkTrace) {
	for i := 0; i < n; i++ {
		mk := func(s int64) *trace.LinkTrace {
			rng := rand.New(rand.NewSource(s))
			var fading *channel.Rayleigh
			if doppler > 0 {
				fading = channel.NewRayleigh(rng, doppler, 0)
			}
			return trace.Generate(trace.GenConfig{
				Model:    channel.NewStaticModel(meanSNR, fading),
				Duration: dur,
				Seed:     s + 1000,
			})
		}
		fwd = append(fwd, mk(seed+int64(2*i)))
		rev = append(rev, mk(seed+int64(2*i+1)))
	}
	return fwd, rev
}

func softRateFactory(int, *trace.LinkTrace, *rand.Rand) ctl.Controller {
	return ctl.NewSoftRate(core.DefaultConfig())
}

func fixedFactory(idx int) AdapterFactory {
	return func(int, *trace.LinkTrace, *rand.Rand) ctl.Controller {
		return ctl.Wrap(&ratectl.Fixed{Index: idx})
	}
}

func TestSingleFlowStaticChannel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 5
	fwd, rev := genTraces(1, 25, 0, 3, 1)
	res := RunUplink(cfg, fwd, rev, softRateFactory)
	// A clean 25 dB channel supports 36 Mbps wireless; TCP goodput after
	// MAC overheads should land well above 5 Mbps.
	if res.AggregateBps < 5e6 {
		t.Fatalf("aggregate %.2f Mbps on a clean static channel", res.AggregateBps/1e6)
	}
	if res.Flows[0].Timeouts > 3 {
		t.Fatalf("%d TCP timeouts on a clean channel", res.Flows[0].Timeouts)
	}
}

func TestSoftRateBeatsBadFixedRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 5
	fwd, rev := genTraces(1, 14, 40, 5, 7)
	soft := RunUplink(cfg, fwd, rev, softRateFactory)
	tooFast := RunUplink(cfg, fwd, rev, fixedFactory(5)) // QAM16 3/4 at 14 dB mean + fading: mostly losses
	if soft.AggregateBps <= tooFast.AggregateBps {
		t.Fatalf("SoftRate %.2f Mbps not above overdriven fixed rate %.2f",
			soft.AggregateBps/1e6, tooFast.AggregateBps/1e6)
	}
}

func TestMoreClientsShareTheMedium(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 4
	f1, r1 := genTraces(1, 25, 0, 2, 11)
	one := RunUplink(cfg, f1, r1, softRateFactory)
	f3, r3 := genTraces(3, 25, 0, 2, 11)
	three := RunUplink(cfg, f3, r3, softRateFactory)
	// Aggregate should not degrade much; per-flow must drop.
	if three.AggregateBps < one.AggregateBps*0.5 {
		t.Fatalf("aggregate collapsed with 3 clients: %.2f vs %.2f Mbps",
			three.AggregateBps/1e6, one.AggregateBps/1e6)
	}
	perFlow := three.Flows[0].ThroughputBps
	if perFlow > one.AggregateBps {
		t.Fatalf("one of three flows out-throughputs a solo flow")
	}
}

func TestHiddenTerminalsHurt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 4
	fwd, rev := genTraces(3, 25, 0, 2, 21)
	cfg.CSProb = 1
	good := RunUplink(cfg, fwd, rev, softRateFactory)
	cfg.CSProb = 0
	bad := RunUplink(cfg, fwd, rev, softRateFactory)
	if bad.AggregateBps >= good.AggregateBps {
		t.Fatalf("hidden terminals did not reduce throughput: %.2f vs %.2f Mbps",
			bad.AggregateBps/1e6, good.AggregateBps/1e6)
	}
}

func TestRecordTx(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 2
	cfg.RecordTx = true
	fwd, rev := genTraces(1, 20, 40, 2, 31)
	res := RunUplink(cfg, fwd, rev, softRateFactory)
	if len(res.ClientStats[0].Records) == 0 {
		t.Fatal("no transmission records collected")
	}
	for _, r := range res.ClientStats[0].Records {
		if r.RateIndex < 0 || r.RateIndex >= 6 {
			t.Fatalf("bad rate index %d in record", r.RateIndex)
		}
		if r.OracleIndex < 0 || r.OracleIndex >= 6 {
			t.Fatalf("bad oracle index %d", r.OracleIndex)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 2
	fwd, rev := genTraces(2, 18, 40, 2, 41)
	a := RunUplink(cfg, fwd, rev, softRateFactory)
	b := RunUplink(cfg, fwd, rev, softRateFactory)
	if math.Abs(a.AggregateBps-b.AggregateBps) > 1e-9 {
		t.Fatalf("non-deterministic: %.0f vs %.0f bps", a.AggregateBps, b.AggregateBps)
	}
}

func TestMismatchedTracesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on trace count mismatch")
		}
	}()
	fwd, _ := genTraces(2, 20, 0, 1, 51)
	RunUplink(DefaultConfig(), fwd, nil, softRateFactory)
}
