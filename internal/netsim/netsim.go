// Package netsim assembles the end-to-end evaluation topology of the
// paper's Figure 12: N 802.11 clients associate with an access point; the
// AP connects over a 50 Mbps, 10 ms point-to-point link to wired LAN
// hosts; N TCP flows transfer 1400-byte segments between the clients and
// the corresponding wired nodes. Every wireless hop runs through the
// trace-driven MAC; TCP ACKs ride the wireless medium back through the AP
// and contend for airtime like any other frame.
package netsim

import (
	"fmt"
	"math/rand"

	"softrate/internal/ctl"
	"softrate/internal/mac"
	"softrate/internal/ratectl"
	"softrate/internal/sim"
	"softrate/internal/tcpsim"
	"softrate/internal/trace"
)

// Config parameterizes a simulation run.
type Config struct {
	// MAC is the link-layer configuration.
	MAC mac.Config
	// TCP is the transport configuration.
	TCP tcpsim.Config
	// WiredRate and WiredDelay describe the AP↔LAN point-to-point link
	// (50 Mbps / 10 ms in the paper).
	WiredRate  float64
	WiredDelay float64
	// Duration is the simulated time in seconds.
	Duration float64
	// ClientQueue and APQueue bound the MAC queues in packets; the paper
	// sizes them slightly above the wireless BDP.
	ClientQueue, APQueue int
	// CSProb is the pairwise carrier sense probability between client
	// stations (the AP hears and is heard by everyone). Default 1.
	CSProb float64
	// RecordTx enables per-attempt logs on the client stations.
	RecordTx bool
	// QueueDebug, when set, receives periodic MAC queue depth samples
	// for diagnosis.
	QueueDebug func(t float64, who string, qlen int)
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		MAC:         mac.DefaultConfig(),
		TCP:         tcpsim.DefaultConfig(),
		WiredRate:   50e6,
		WiredDelay:  10e-3,
		Duration:    10,
		ClientQueue: 30,
		APQueue:     60,
		CSProb:      1,
		Seed:        1,
	}
}

// AdapterFactory builds a rate controller for one link, on the unified
// ctl.Controller contract — the same interface the softrated decision
// service stores and relocates, so any algorithm evaluated here is
// servable and vice versa (wrap bare ratectl adapters with ctl.Wrap). The
// factory receives the link's forward trace so oracle- and training-based
// algorithms can be constructed; honest algorithms must only use it for
// training, never for lookahead.
type AdapterFactory func(stationIdx int, fwd *trace.LinkTrace, rng *rand.Rand) ctl.Controller

// FlowResult summarizes one TCP flow.
type FlowResult struct {
	// BytesDelivered is the application-level in-order goodput numerator.
	BytesDelivered int64
	// ThroughputBps is BytesDelivered*8/Duration.
	ThroughputBps float64
	// Retransmits, Timeouts count TCP-level recovery events.
	Retransmits, Timeouts int
}

// Result is the outcome of a simulation run.
type Result struct {
	// Flows holds per-flow results, indexed by client.
	Flows []FlowResult
	// AggregateBps sums the flow throughputs.
	AggregateBps float64
	// ClientStats exposes the MAC-level counters per client station.
	ClientStats []mac.Stats
	// APStats exposes the AP's MAC counters.
	APStats mac.Stats
}

// wiredLink is a FIFO rate+delay pipe (one direction of the point-to-point
// link).
type wiredLink struct {
	eng   *sim.Engine
	rate  float64
	delay float64
	busy  bool
	queue []func() // deliveries pending serialization, FIFO
	sizes []int
}

func (w *wiredLink) send(bytes int, deliver func()) {
	w.queue = append(w.queue, deliver)
	w.sizes = append(w.sizes, bytes)
	if !w.busy {
		w.pump()
	}
}

func (w *wiredLink) pump() {
	if len(w.queue) == 0 {
		w.busy = false
		return
	}
	w.busy = true
	deliver := w.queue[0]
	bytes := w.sizes[0]
	w.queue = w.queue[1:]
	w.sizes = w.sizes[1:]
	txTime := float64(bytes+20) * 8 / w.rate
	w.eng.Schedule(txTime, func() {
		w.eng.Schedule(w.delay, deliver)
		w.pump()
	})
}

// segEnvelope carries a TCP segment and its flow through the MAC.
type segEnvelope struct {
	flow int
	seg  tcpsim.Segment
}

// RunUplink simulates N uplink TCP flows (clients → wired hosts), one per
// entry of fwdTraces. revTraces are the AP→client links carrying TCP ACKs
// (the paper uses independent traces per direction). factory builds the
// rate adaptation algorithm per link; the AP uses the same factory for its
// reverse links.
func RunUplink(cfg Config, fwdTraces, revTraces []*trace.LinkTrace, factory AdapterFactory) Result {
	n := len(fwdTraces)
	if len(revTraces) != n {
		panic("netsim: forward/reverse trace count mismatch")
	}
	eng := &sim.Engine{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	med := mac.NewMedium(eng, cfg.MAC, rng)
	// Stations 0..n-1 are clients; station n is the AP. Clients sense
	// each other with probability CSProb; everyone senses the AP.
	med.CSProb = func(a, b int) float64 {
		if a == n || b == n {
			return 1
		}
		return cfg.CSProb
	}

	clients := make([]*mac.Station, n)
	senders := make([]*tcpsim.Sender, n)
	receivers := make([]*tcpsim.Receiver, n)

	up := &wiredLink{eng: eng, rate: cfg.WiredRate, delay: cfg.WiredDelay}
	down := &wiredLink{eng: eng, rate: cfg.WiredRate, delay: cfg.WiredDelay}

	// AP: one station, per-client adapters and reverse traces.
	apAdapters := make([]ctl.Controller, n)
	for i := 0; i < n; i++ {
		apAdapters[i] = factory(n+i, revTraces[i], rng)
	}
	ap := med.NewStation(apAdapters[0], revTraces[0])
	ap.MaxQueue = cfg.APQueue
	ap.RouteFor = func(p mac.Packet) (ratectl.Adapter, *trace.LinkTrace) {
		env := p.UserData.(segEnvelope)
		return apAdapters[env.flow], revTraces[env.flow]
	}
	// AP wireless delivery: TCP ACK arrives at the client's sender.
	ap.OnDeliver = func(p mac.Packet, at float64) {
		env := p.UserData.(segEnvelope)
		senders[env.flow].OnAck(env.seg.AckNo, env.seg.SentAt)
	}

	for i := 0; i < n; i++ {
		i := i
		clients[i] = med.NewStation(factory(i, fwdTraces[i], rng), fwdTraces[i])
		clients[i].MaxQueue = cfg.ClientQueue
		clients[i].RecordTx = cfg.RecordTx

		senders[i] = tcpsim.NewSender(eng, cfg.TCP)
		receivers[i] = tcpsim.NewReceiver()

		// Client → AP (wireless) → wired host.
		senders[i].Output = func(seg tcpsim.Segment) {
			clients[i].Enqueue(mac.Packet{
				Bytes:    seg.Len + 40,
				UserData: segEnvelope{flow: i, seg: seg},
			})
		}
		clients[i].OnDeliver = func(p mac.Packet, at float64) {
			env := p.UserData.(segEnvelope)
			up.send(p.Bytes, func() { receivers[env.flow].OnSegment(env.seg) })
		}
		// Wired host → AP (wired) → client (wireless ACK frame).
		receivers[i].Output = func(seg tcpsim.Segment) {
			down.send(40, func() {
				ap.Enqueue(mac.Packet{
					Bytes:    40,
					UserData: segEnvelope{flow: i, seg: seg},
				})
			})
		}
	}

	// Stagger flow starts slightly to avoid pathological synchronization.
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(float64(i)*1e-3, senders[i].Start)
	}
	if cfg.QueueDebug != nil {
		var sample func()
		sample = func() {
			for i, c := range clients {
				cfg.QueueDebug(eng.Now(), fmt.Sprintf("client%d", i), c.QueueLen())
			}
			cfg.QueueDebug(eng.Now(), "ap", ap.QueueLen())
			eng.Schedule(0.1, sample)
		}
		eng.Schedule(0.05, sample)
	}
	eng.Run(cfg.Duration)

	res := Result{Flows: make([]FlowResult, n), ClientStats: make([]mac.Stats, n)}
	for i := 0; i < n; i++ {
		fr := FlowResult{
			BytesDelivered: receivers[i].BytesDelivered,
			ThroughputBps:  float64(receivers[i].BytesDelivered) * 8 / cfg.Duration,
			Retransmits:    senders[i].Retransmits,
			Timeouts:       senders[i].Timeouts,
		}
		res.Flows[i] = fr
		res.AggregateBps += fr.ThroughputBps
		res.ClientStats[i] = clients[i].Stats
	}
	res.APStats = ap.Stats
	return res
}
