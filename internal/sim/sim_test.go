package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInOrder(t *testing.T) {
	var e Engine
	var got []float64
	for _, d := range []float64{0.5, 0.1, 0.9, 0.3} {
		d := d
		e.Schedule(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 4 {
		t.Fatalf("fired %d events, want 4", len(got))
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var e Engine
	var trace []string
	e.Schedule(1, func() {
		trace = append(trace, "a")
		e.Schedule(1, func() { trace = append(trace, "c") })
		e.Schedule(0.5, func() { trace = append(trace, "b") })
	})
	e.RunAll()
	want := "abc"
	var got string
	for _, s := range trace {
		got += s
	}
	if got != want {
		t.Fatalf("trace %q, want %q", got, want)
	}
	if e.Now() != 2 {
		t.Fatalf("final time %v, want 2", e.Now())
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(5, func() { fired++ })
	e.Run(2)
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("clock %v, want 2", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d, want 1", e.Pending())
	}
	e.Run(10)
	if fired != 2 {
		t.Fatal("second event never fired")
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	var e Engine
	e.Schedule(1, func() {
		e.At(0.5, func() {
			if e.Now() != 1 {
				t.Errorf("past event fired at %v, want clamped to 1", e.Now())
			}
		})
	})
	e.Schedule(-5, func() {
		if e.Now() != 0 {
			t.Errorf("negative delay fired at %v", e.Now())
		}
	})
	e.RunAll()
}

func TestClockNeverGoesBackwards(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		last := -1.0
		ok := true
		var spawn func()
		n := 0
		spawn = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if n < 100 {
				n++
				e.Schedule(rng.Float64(), spawn)
			}
		}
		for i := 0; i < 5; i++ {
			e.Schedule(rng.Float64(), spawn)
		}
		e.RunAll()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		var e Engine
		rng := rand.New(rand.NewSource(42))
		var times []float64
		var spawn func()
		n := 0
		spawn = func() {
			times = append(times, e.Now())
			if n < 200 {
				n++
				e.Schedule(rng.Float64()*0.1, spawn)
			}
		}
		e.Schedule(0, spawn)
		e.RunAll()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}
