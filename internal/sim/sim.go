// Package sim is a deterministic discrete-event simulation engine — the
// substrate standing in for ns-3 in the trace-driven evaluation (§4.1).
// Events fire in timestamp order with FIFO tie-breaking, so a simulation
// driven by seeded PRNGs is exactly reproducible.
package sim

import "container/heap"

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now float64
	seq int64
	pq  eventQueue
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Schedule runs fn after delay seconds of simulated time. Negative delays
// are clamped to zero (fire "now", after already-queued events at the same
// instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.At(e.now+delay, fn)
}

// At runs fn at absolute simulation time t; times in the past are clamped
// to now.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{time: t, seq: e.seq, fn: fn})
}

// Run processes events in order until the queue is empty or the next event
// lies beyond the until time; the clock never exceeds until.
func (e *Engine) Run(until float64) {
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.time > until {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.time
		next.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll processes every queued event (including those scheduled by other
// events) until the queue drains. Use only when the event graph is known
// to terminate.
func (e *Engine) RunAll() {
	for len(e.pq) > 0 {
		next := heap.Pop(&e.pq).(*event)
		e.now = next.time
		next.fn()
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }
