package benchtrend

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func rec(tool string, cpus int, metrics map[string]float64) Record {
	return Record{Schema: Schema, Tool: tool, UnixSec: 1, GitSHA: "abc",
		GoVersion: "go0", NumCPU: cpus, Metrics: metrics}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	want := []Record{
		rec("loadgen", 4, map[string]float64{"decisions_per_sec": 1e6}),
		rec("simbench", 4, map[string]float64{"decode_fps": 250}),
	}
	for _, r := range want {
		if err := Append(path, r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Tool != want[i].Tool || got[i].NumCPU != want[i].NumCPU {
			t.Fatalf("record %d: %+v, want %+v", i, got[i], want[i])
		}
		for k, v := range want[i].Metrics {
			if got[i].Metrics[k] != v {
				t.Fatalf("record %d metric %s: %g, want %g", i, k, got[i].Metrics[k], v)
			}
		}
	}
}

func TestLoadRejectsMalformedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trend.jsonl")
	if err := os.WriteFile(path, []byte("{\"schema\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted a malformed line")
	}
}

func TestStampEnvironment(t *testing.T) {
	r := Stamp("loadgen", map[string]float64{"x": 1})
	if r.Schema != Schema || r.Tool != "loadgen" {
		t.Fatalf("stamp header %+v", r)
	}
	if r.GoVersion != runtime.Version() || r.NumCPU != runtime.NumCPU() {
		t.Fatalf("environment not stamped: %+v", r)
	}
	if r.GitSHA == "" {
		t.Fatal("empty git sha (want a hash or the \"unknown\" fallback)")
	}
	if r.UnixSec == 0 {
		t.Fatal("unstamped time")
	}
}

func TestGateMedianAndThreshold(t *testing.T) {
	m := func(v float64) map[string]float64 { return map[string]float64{"dps": v} }
	recs := []Record{
		rec("loadgen", 4, m(100)),
		rec("loadgen", 4, m(120)),
		rec("loadgen", 4, m(80)),
		rec("simbench", 4, map[string]float64{"fps": 9}), // other tool: ignored
		rec("loadgen", 8, m(1)),                          // other host shape: ignored
		rec("loadgen", 4, m(60)),                         // newest = current run
	}
	res, err := Gate(recs, "loadgen", "", []string{"dps"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Samples != 3 || r.Median != 100 {
		t.Fatalf("history selection: %+v (want 3 samples, median 100)", r)
	}
	if !r.Pass || r.Ratio != 0.6 {
		t.Fatalf("60 vs median 100 at minRatio 0.5 should pass with ratio 0.6: %+v", r)
	}
	res, err = Gate(recs, "loadgen", "", []string{"dps"}, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Pass {
		t.Fatalf("60 vs median 100 at minRatio 0.7 should fail: %+v", res[0])
	}
}

func TestGateVacuousWithoutHistory(t *testing.T) {
	recs := []Record{rec("loadgen", 4, map[string]float64{"dps": 5})}
	res, err := Gate(recs, "loadgen", "", nil, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].Pass || res[0].Samples != 0 {
		t.Fatalf("first-ever record must pass vacuously: %+v", res)
	}
	if _, err := Gate(recs, "simbench", "", nil, 0.9); err == nil {
		t.Fatal("Gate found a simbench record where none exists")
	}
}

func TestGateLowerIsBetter(t *testing.T) {
	m := func(v float64) map[string]float64 { return map[string]float64{"resident_bytes": v} }
	recs := []Record{
		rec("loadgen", 4, m(100)),
		rec("loadgen", 4, m(120)),
		rec("loadgen", 4, m(80)),
		rec("loadgen", 4, m(130)), // newest = current run
	}
	res, err := GateLower(recs, "loadgen", "", []string{"resident_bytes"}, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Samples != 3 || r.Median != 100 {
		t.Fatalf("history selection: %+v (want 3 samples, median 100)", r)
	}
	if !r.Pass || r.Ratio != 1.3 {
		t.Fatalf("130 vs median 100 at maxRatio 1.5 should pass with ratio 1.3: %+v", r)
	}
	res, err = GateLower(recs, "loadgen", "", []string{"resident_bytes"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Pass {
		t.Fatalf("130 vs median 100 at maxRatio 1.2 should fail: %+v", res[0])
	}
	// The higher-is-better gate on the same history would (wrongly) pass
	// any growth — make sure the two directions really differ.
	res, err = Gate(recs, "loadgen", "", []string{"resident_bytes"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Pass {
		t.Fatalf("sanity: Gate should pass 130 vs 100 at minRatio 0.5: %+v", res[0])
	}
}

func trec(tool, transport string, cpus int, metrics map[string]float64) Record {
	r := rec(tool, cpus, metrics)
	r.Transport = transport
	return r
}

func TestGateMatchesTransport(t *testing.T) {
	m := func(v float64) map[string]float64 { return map[string]float64{"dps": v} }
	recs := []Record{
		trec("loadgen", "udp-loopback", 4, m(100)),
		trec("loadgen", "shm", 4, m(1000)), // other transport: must not gate UDP
		trec("loadgen", "udp-loopback", 4, m(200)),
		trec("loadgen", "shm", 4, m(900)),
		trec("loadgen", "udp-loopback", 4, m(90)), // newest UDP = current run
	}
	res, err := Gate(recs, "loadgen", "udp-loopback", []string{"dps"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Samples != 2 || r.Median != 150 {
		t.Fatalf("history must hold only udp-loopback records: %+v (want 2 samples, median 150)", r)
	}
	if !r.Pass {
		t.Fatalf("90 vs udp median 150 at 0.5 should pass (against the shm median 950 it would not): %+v", r)
	}

	// Empty transport selects the newest record overall, then matches its
	// transport — here the newest is udp-loopback.
	res, err = Gate(recs, "loadgen", "", []string{"dps"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Samples != 2 || res[0].Median != 150 {
		t.Fatalf("empty transport must inherit the newest record's transport: %+v", res[0])
	}

	if _, err := Gate(recs, "loadgen", "tcp-loopback", []string{"dps"}, 0.5); err == nil {
		t.Fatal("Gate found a tcp-loopback record where none exists")
	}
}
