// Package benchtrend is the continuous performance-trend ledger behind
// BENCH_TREND.jsonl: an append-only JSON-lines file of benchmark run
// records, committed to the repo so throughput history rides along with
// the code that produced it.
//
// The one-off bench artifacts (BENCH_loadgen.json, BENCH_experiments.json)
// answer "how fast is this tree"; the trend file answers "how fast has it
// been" — each record stamps the git commit, Go version and host CPU
// count, so a regression gate can compare a fresh run against the median
// of comparable history instead of a hand-maintained floor that goes
// stale the moment the fleet changes.
//
// Records are deliberately flat: one map of named float64 metrics.
// Higher-is-better keys (throughput figures) gate through Gate, whose
// pass condition is current >= minRatio * median; lower-is-better keys
// (resident bytes, latency) gate through GateLower, whose pass condition
// is current <= maxRatio * median.
package benchtrend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Schema identifies the record layout; bump on incompatible change.
const Schema = "softrate-benchtrend/v1"

// Record is one benchmark run appended to the trend file.
type Record struct {
	Schema string `json:"schema"`
	// Tool names the producer ("loadgen", "simbench").
	Tool string `json:"tool"`
	// UnixSec is the run's wall-clock stamp.
	UnixSec int64 `json:"unix_sec"`
	// GitSHA is the short commit the tree was built from ("unknown" when
	// no git metadata is reachable).
	GitSHA string `json:"git_sha"`
	// GoVersion and NumCPU describe the toolchain and host; Gate only
	// compares records with matching NumCPU so a laptop run never gates a
	// CI runner (or vice versa).
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Transport names the transport dimension the run measured
	// ("in-process", "tcp-loopback", "udp-loopback", "shm", ...; empty for
	// tools without one). Gate only compares records with the same
	// transport — a shm number must never gate a UDP run.
	Transport string `json:"transport,omitempty"`
	// Metrics are the run's named measurements.
	Metrics map[string]float64 `json:"metrics"`
}

// GitSHA returns the short commit hash of the working tree, preferring
// git itself and falling back to CI's GITHUB_SHA, then "unknown". Never
// fails: trend records from an exported tarball still append.
func GitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "unknown"
}

// Stamp builds a Record for tool with the current environment (time,
// commit, Go version, CPU count) around the given metrics.
func Stamp(tool string, metrics map[string]float64) Record {
	return Record{
		Schema:    Schema,
		Tool:      tool,
		UnixSec:   time.Now().Unix(),
		GitSHA:    GitSHA(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Metrics:   metrics,
	}
}

// Append writes rec as one JSON line at the end of path, creating the
// file if needed.
func Append(path string, rec Record) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(blob, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads every record from a trend file, in file order. Blank lines
// are skipped; a malformed line is an error (the file is committed, so
// corruption should fail loudly, not silently shrink history).
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// CompareResult is one gated metric's verdict.
type CompareResult struct {
	Metric  string
	Current float64
	// Median is the NumCPU-matched historical median; Samples how many
	// history records contributed. Samples == 0 means no comparable
	// history existed and the metric passed vacuously.
	Median  float64
	Samples int
	// Ratio is Current/Median (0 when Samples == 0).
	Ratio float64
	Pass  bool
}

// Gate compares the newest record for (tool, transport) in recs against
// the median of the earlier records with the same tool, transport and
// NumCPU. transport == "" selects the newest record for tool regardless
// of transport, then matches history against that record's transport —
// so single-transport tools gate exactly as before. A metric passes when
// current >= minRatio*median, or when no comparable history holds that
// metric. metrics selects the gated keys; empty gates every key in the
// newest record (sorted for stable output). The error is non-nil only
// when recs holds no matching record at all.
func Gate(recs []Record, tool, transport string, metrics []string, minRatio float64) ([]CompareResult, error) {
	return gate(recs, tool, transport, metrics, minRatio, false)
}

// GateLower is Gate for lower-is-better metrics (resident bytes, latency
// figures): a metric passes when current <= maxRatio*median, or when no
// comparable history holds it.
func GateLower(recs []Record, tool, transport string, metrics []string, maxRatio float64) ([]CompareResult, error) {
	return gate(recs, tool, transport, metrics, maxRatio, true)
}

func gate(recs []Record, tool, transport string, metrics []string, ratio float64, lowerBetter bool) ([]CompareResult, error) {
	latest := -1
	for i := range recs {
		if recs[i].Tool == tool && (transport == "" || recs[i].Transport == transport) {
			latest = i
		}
	}
	if latest < 0 {
		if transport != "" {
			return nil, fmt.Errorf("no %q records for transport %q in trend history", tool, transport)
		}
		return nil, fmt.Errorf("no %q records in trend history", tool)
	}
	cur := recs[latest]
	if len(metrics) == 0 {
		for k := range cur.Metrics {
			metrics = append(metrics, k)
		}
		sort.Strings(metrics)
	}
	out := make([]CompareResult, 0, len(metrics))
	for _, m := range metrics {
		res := CompareResult{Metric: m, Current: cur.Metrics[m], Pass: true}
		var hist []float64
		for i := 0; i < latest; i++ {
			r := &recs[i]
			if r.Tool != tool || r.Transport != cur.Transport || r.NumCPU != cur.NumCPU {
				continue
			}
			if v, ok := r.Metrics[m]; ok {
				hist = append(hist, v)
			}
		}
		if res.Samples = len(hist); res.Samples > 0 {
			res.Median = median(hist)
			if res.Median > 0 {
				res.Ratio = res.Current / res.Median
				if lowerBetter {
					res.Pass = res.Ratio <= ratio
				} else {
					res.Pass = res.Ratio >= ratio
				}
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// median returns the middle value (mean of the middle pair for even
// lengths). Mutates its argument's order.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
