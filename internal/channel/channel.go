// Package channel provides the statistical wireless channel models used in
// place of the paper's RF testbed: additive white Gaussian noise, Rayleigh
// multipath fading with a configurable Doppler spread (the Zheng–Xiao
// sum-of-sinusoids formulation of the Jakes model — the same simulator the
// paper itself uses for its controlled experiments, reference [26]),
// log-distance path loss, and simple mobility trajectories.
//
// Conventions: the receiver noise floor is normalized to unit complex
// variance, so the squared magnitude of the composite channel gain at time
// t *is* the instantaneous SNR (E_s/N_0) of a symbol sent at t.
package channel

import (
	"math"
	"math/rand"
)

// DefaultOscillators is the number of sinusoids in the fading model.
// Zheng & Xiao show 8+ suffices for accurate second-order statistics.
const DefaultOscillators = 16

// Rayleigh is a wide-sense-stationary Rayleigh fading process with the
// classic Jakes (U-shaped) Doppler spectrum. It is a pure function of
// time: Gain may be evaluated at arbitrary, even non-monotonic, times,
// which is what lets the trace generator present an *identical* fading
// process to every bit rate (the consistency requirement of §6.1).
type Rayleigh struct {
	doppler float64
	// Per-oscillator angular frequencies and phases for the I and Q rails.
	wI, wQ     []float64
	phiI, phiQ []float64
	scale      float64
}

// NewRayleigh builds a Rayleigh fading process with maximum Doppler shift
// dopplerHz using n oscillators, drawing its random phases from rng.
// E[|h|^2] = 1.
func NewRayleigh(rng *rand.Rand, dopplerHz float64, n int) *Rayleigh {
	if n <= 0 {
		n = DefaultOscillators
	}
	r := &Rayleigh{
		doppler: dopplerHz,
		wI:      make([]float64, n),
		wQ:      make([]float64, n),
		phiI:    make([]float64, n),
		phiQ:    make([]float64, n),
		scale:   1 / math.Sqrt(float64(n)),
	}
	theta := (rng.Float64()*2 - 1) * math.Pi
	wd := 2 * math.Pi * dopplerHz
	for k := 0; k < n; k++ {
		// Zheng–Xiao arrival angles: alpha_k = (2*pi*k - pi + theta)/(4n).
		alpha := (2*math.Pi*float64(k+1) - math.Pi + theta) / (4 * float64(n))
		r.wI[k] = wd * math.Cos(alpha)
		r.wQ[k] = wd * math.Sin(alpha)
		r.phiI[k] = (rng.Float64()*2 - 1) * math.Pi
		r.phiQ[k] = (rng.Float64()*2 - 1) * math.Pi
	}
	return r
}

// Doppler returns the maximum Doppler shift of the process in Hz.
func (r *Rayleigh) Doppler() float64 { return r.doppler }

// Gain returns the complex channel gain at time t (seconds).
func (r *Rayleigh) Gain(t float64) complex128 {
	var hi, hq float64
	for k := range r.wI {
		hi += math.Cos(r.wI[k]*t + r.phiI[k])
		hq += math.Cos(r.wQ[k]*t + r.phiQ[k])
	}
	return complex(hi*r.scale, hq*r.scale)
}

// CoherenceTime returns the approximate channel coherence time for a given
// Doppler spread, using the rule of thumb T_c ≈ 0.4/f_d cited by the paper
// (footnote 2, after Tse & Viswanath).
func CoherenceTime(dopplerHz float64) float64 {
	if dopplerHz <= 0 {
		return math.Inf(1)
	}
	return 0.4 / dopplerHz
}

// DopplerForCoherence inverts CoherenceTime.
func DopplerForCoherence(tc float64) float64 {
	if tc <= 0 {
		return math.Inf(1)
	}
	return 0.4 / tc
}

// AWGN is a complex additive white Gaussian noise source with total
// variance Var (Var/2 per real dimension).
type AWGN struct {
	rng *rand.Rand
	sd  float64
	v   float64
}

// NewAWGN builds a noise source of total complex variance variance.
func NewAWGN(rng *rand.Rand, variance float64) *AWGN {
	return &AWGN{rng: rng, sd: math.Sqrt(variance / 2), v: variance}
}

// Variance returns the total complex noise variance.
func (a *AWGN) Variance() float64 { return a.v }

// Sample draws one complex noise sample.
func (a *AWGN) Sample() complex128 {
	return complex(a.sd*a.rng.NormFloat64(), a.sd*a.rng.NormFloat64())
}

// PathLoss is a log-distance large-scale propagation model: the mean SNR at
// distance d is SNR(d0) - 10*Exponent*log10(d/d0) dB.
type PathLoss struct {
	// RefSNRdB is the mean SNR at the reference distance.
	RefSNRdB float64
	// RefDist is the reference distance in meters.
	RefDist float64
	// Exponent is the path-loss exponent (2 free space, 3-4 indoor).
	Exponent float64
}

// SNRdB returns the mean SNR in dB at distance d meters.
func (p PathLoss) SNRdB(d float64) float64 {
	if d < p.RefDist {
		d = p.RefDist
	}
	return p.RefSNRdB - 10*p.Exponent*math.Log10(d/p.RefDist)
}

// LinearTrajectory models a node moving radially at constant speed, e.g.
// the walking experiments of Table 4 where the sender moves away from the
// receiver at walking speed.
type LinearTrajectory struct {
	// StartDist is the distance at t=0 in meters.
	StartDist float64
	// Speed is the radial speed in m/s (positive = moving away).
	Speed float64
}

// Distance returns the sender-receiver distance at time t.
func (l LinearTrajectory) Distance(t float64) float64 {
	d := l.StartDist + l.Speed*t
	if d < 0.1 {
		return 0.1
	}
	return d
}

// DopplerAt24GHz returns the maximum Doppler shift for a given speed in the
// 2.4 GHz band (f_d = v/λ, λ ≈ 12.5 cm).
func DopplerAt24GHz(speedMS float64) float64 {
	const lambda = 299792458.0 / 2.4e9
	return speedMS / lambda
}

// Model is a composite time-varying channel: a deterministic mean-SNR
// profile (large-scale attenuation) multiplied by an optional small-scale
// fading process, with unit-variance receiver noise implied.
type Model struct {
	// MeanSNRdB gives the large-scale mean SNR at time t. Required.
	MeanSNRdB func(t float64) float64
	// Fading is the small-scale process; nil means a pure AWGN channel.
	Fading *Rayleigh
}

// NewStaticModel returns a channel with a constant mean SNR and optional
// fading.
func NewStaticModel(snrDB float64, fading *Rayleigh) *Model {
	return &Model{MeanSNRdB: func(float64) float64 { return snrDB }, Fading: fading}
}

// NewWalkingModel composes a linear move-away trajectory with a path-loss
// law and walking-speed Rayleigh fading, reproducing the structure of the
// paper's Figure 1 channel.
func NewWalkingModel(rng *rand.Rand, traj LinearTrajectory, pl PathLoss) *Model {
	fd := DopplerAt24GHz(math.Abs(traj.Speed))
	if fd < 1 {
		fd = 1
	}
	return &Model{
		MeanSNRdB: func(t float64) float64 { return pl.SNRdB(traj.Distance(t)) },
		Fading:    NewRayleigh(rng, fd, DefaultOscillators),
	}
}

// Gain returns the composite complex gain at time t. |Gain|^2 is the
// instantaneous SNR against the unit noise floor.
func (m *Model) Gain(t float64) complex128 {
	amp := math.Sqrt(DBToLinear(m.MeanSNRdB(t)))
	if m.Fading == nil {
		return complex(amp, 0)
	}
	return complex(amp, 0) * m.Fading.Gain(t)
}

// SNR returns the instantaneous linear SNR at time t.
func (m *Model) SNR(t float64) float64 {
	g := m.Gain(t)
	return real(g)*real(g) + imag(g)*imag(g)
}

// DBToLinear converts decibels to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}
