package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestRayleighUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 50
	const samples = 2000
	for i := 0; i < n; i++ {
		r := NewRayleigh(rng, 100, DefaultOscillators)
		for j := 0; j < samples; j++ {
			g := r.Gain(float64(j) * 1e-3)
			sum += real(g)*real(g) + imag(g)*imag(g)
		}
	}
	mean := sum / (n * samples)
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("E[|h|^2] = %v, want 1", mean)
	}
}

func TestRayleighEnvelopeStatistics(t *testing.T) {
	// For a Rayleigh envelope with E[r^2]=1, E[r] = sqrt(pi)/2 ≈ 0.8862.
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 50
	const samples = 2000
	for i := 0; i < n; i++ {
		r := NewRayleigh(rng, 50, DefaultOscillators)
		for j := 0; j < samples; j++ {
			sum += cmplx.Abs(r.Gain(float64(j) * 2e-3))
		}
	}
	mean := sum / (n * samples)
	want := math.Sqrt(math.Pi) / 2
	if math.Abs(mean-want) > 0.03 {
		t.Fatalf("E[|h|] = %v, want %v", mean, want)
	}
}

func TestRayleighDeterministicInTime(t *testing.T) {
	r := NewRayleigh(rand.New(rand.NewSource(3)), 200, 0)
	a := r.Gain(0.123)
	b := r.Gain(0.456)
	if r.Gain(0.123) != a || r.Gain(0.456) != b {
		t.Fatal("Gain is not a pure function of time")
	}
	if a == b {
		t.Fatal("distinct times produced identical gains")
	}
}

func TestRayleighSeedsDiffer(t *testing.T) {
	r1 := NewRayleigh(rand.New(rand.NewSource(4)), 100, 0)
	r2 := NewRayleigh(rand.New(rand.NewSource(5)), 100, 0)
	if r1.Gain(0.05) == r2.Gain(0.05) {
		t.Fatal("different seeds produced identical processes")
	}
}

func TestRayleighDecorrelatesAtCoherenceTime(t *testing.T) {
	// Autocorrelation of the Jakes process is J0(2*pi*fd*tau); at
	// tau = coherence time (0.4/fd), J0(2.51) ≈ -0.05, i.e. nearly
	// uncorrelated, while at tau = Tc/20 it stays above 0.9.
	rng := rand.New(rand.NewSource(6))
	fd := 100.0
	tc := CoherenceTime(fd)
	corrAt := func(tau float64) float64 {
		var num, den float64
		for i := 0; i < 200; i++ {
			r := NewRayleigh(rng, fd, DefaultOscillators)
			for j := 0; j < 20; j++ {
				t0 := float64(j) * 7 * tc
				a, b := r.Gain(t0), r.Gain(t0+tau)
				num += real(a)*real(b) + imag(a)*imag(b)
				den += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		return num / den
	}
	short := corrAt(tc / 20)
	long := corrAt(tc)
	if short < 0.85 {
		t.Errorf("correlation at Tc/20 = %.3f, want > 0.85", short)
	}
	if math.Abs(long) > 0.25 {
		t.Errorf("correlation at Tc = %.3f, want ~0", long)
	}
}

func TestCoherenceTimeRoundTrip(t *testing.T) {
	for _, fd := range []float64{40, 400, 4000} {
		tc := CoherenceTime(fd)
		if math.Abs(DopplerForCoherence(tc)-fd) > 1e-9 {
			t.Fatalf("coherence time round trip failed at %v Hz", fd)
		}
	}
	if !math.IsInf(CoherenceTime(0), 1) {
		t.Fatal("zero Doppler must give infinite coherence time")
	}
}

func TestAWGNVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAWGN(rng, 2.5)
	if a.Variance() != 2.5 {
		t.Fatalf("Variance() = %v", a.Variance())
	}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		s := a.Sample()
		sum += real(s)*real(s) + imag(s)*imag(s)
	}
	if got := sum / n; math.Abs(got-2.5) > 0.05 {
		t.Fatalf("measured variance %v, want 2.5", got)
	}
}

func TestPathLossMonotonic(t *testing.T) {
	pl := PathLoss{RefSNRdB: 30, RefDist: 1, Exponent: 3}
	prev := math.Inf(1)
	for d := 1.0; d < 100; d *= 1.5 {
		s := pl.SNRdB(d)
		if s >= prev {
			t.Fatalf("path loss not monotonic at d=%v", d)
		}
		prev = s
	}
	// 10x distance at exponent 3 = 30 dB drop.
	if diff := pl.SNRdB(1) - pl.SNRdB(10); math.Abs(diff-30) > 1e-9 {
		t.Fatalf("10x distance dropped %v dB, want 30", diff)
	}
	// Below reference distance, clamp.
	if pl.SNRdB(0.01) != 30 {
		t.Fatal("distances under RefDist must clamp to RefSNRdB")
	}
}

func TestLinearTrajectory(t *testing.T) {
	traj := LinearTrajectory{StartDist: 2, Speed: 1.5}
	if d := traj.Distance(4); math.Abs(d-8) > 1e-12 {
		t.Fatalf("Distance(4) = %v, want 8", d)
	}
	// Never collapses to zero.
	back := LinearTrajectory{StartDist: 1, Speed: -10}
	if d := back.Distance(100); d != 0.1 {
		t.Fatalf("clamped distance = %v, want 0.1", d)
	}
}

func TestDopplerAt24GHzWalking(t *testing.T) {
	// Walking pace ~1.4 m/s is ~11 Hz; the paper's "walking" simulations
	// use 40 Hz (brisker, includes environment motion). Just sanity-check
	// the scale.
	fd := DopplerAt24GHz(1.4)
	if fd < 8 || fd > 15 {
		t.Fatalf("walking Doppler %v Hz out of plausible range", fd)
	}
}

func TestModelAWGNOnly(t *testing.T) {
	m := NewStaticModel(10, nil)
	if snr := m.SNR(0.5); math.Abs(snr-10.0) > 1e-9 && math.Abs(LinearToDB(snr)-10) > 1e-9 {
		t.Fatalf("static AWGN model SNR = %v dB, want 10", LinearToDB(snr))
	}
}

func TestModelFadingMeanSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var sum float64
	const n = 300
	for i := 0; i < n; i++ {
		m := NewStaticModel(7, NewRayleigh(rng, 100, 0))
		for j := 0; j < 100; j++ {
			sum += m.SNR(float64(j) * 1e-3)
		}
	}
	meanDB := LinearToDB(sum / (n * 100))
	if math.Abs(meanDB-7) > 0.5 {
		t.Fatalf("fading model mean SNR %v dB, want 7", meanDB)
	}
}

func TestWalkingModelSNRDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewWalkingModel(rng,
		LinearTrajectory{StartDist: 1, Speed: 1.4},
		PathLoss{RefSNRdB: 25, RefDist: 1, Exponent: 3})
	// Average instantaneous SNR over windows early vs late: must drop.
	avg := func(t0 float64) float64 {
		var s float64
		for i := 0; i < 500; i++ {
			s += m.SNR(t0 + float64(i)*1e-3)
		}
		return s / 500
	}
	early, late := avg(0), avg(9)
	if LinearToDB(early)-LinearToDB(late) < 6 {
		t.Fatalf("walking SNR early %.1f dB late %.1f dB: expected a clear drop",
			LinearToDB(early), LinearToDB(late))
	}
}

func TestDBConversions(t *testing.T) {
	if DBToLinear(20) != 100 {
		t.Fatal("20 dB != 100x")
	}
	if math.Abs(LinearToDB(1000)-30) > 1e-12 {
		t.Fatal("1000x != 30 dB")
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Fatal("0 linear must be -inf dB")
	}
}

func BenchmarkRayleighGain(b *testing.B) {
	r := NewRayleigh(rand.New(rand.NewSource(1)), 100, DefaultOscillators)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Gain(float64(i) * 1e-5)
	}
}
