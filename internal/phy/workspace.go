package phy

import (
	"softrate/internal/coding"
)

// Workspace holds the per-worker scratch memory of the PHY chain so that
// steady-state transmit and receive perform zero heap allocations. A
// Workspace is owned by one goroutine at a time — the experiment engine
// hands one to each worker — and the Transmission and Reception values
// produced through it alias its internal buffers: they are valid until the
// next TransmitWS / ReceiveWS call on the same Workspace.
//
// Reuse is contractually invisible: for identical inputs (including the
// noise stream), the workspace chain produces bit-for-bit the same frames,
// hints and verdicts as the allocating Transmit/Receive entry points.
type Workspace struct {
	// Coding is the decoder scratch (BCJR/Viterbi planes, depuncture
	// lattice), exported so callers driving the decoders directly can share
	// one set of planes with the full receive chain.
	Coding coding.Workspace

	// Receive-side scratch.
	gains    []complex128
	ivar     []float64
	tones    []complex128
	chanLLRs []float64
	deint    []float64
	hints    []float64
	hdrBytes []byte
	body     []byte
	rec      Reception

	// Batched receive state (QueueReceive / FlushReceptions, batch.go).
	bq batchQueue

	// Transmit-side scratch.
	tx          Transmission
	hdrFrame    []byte
	bodyFrame   []byte
	hdrInfo     []byte
	info        []byte
	coded       []byte
	punct       []byte
	inter       []byte
	hdrSymFlat  []complex128
	dataSymFlat []complex128
	hdrSyms     [][]complex128
	dataSyms    [][]complex128
}

// NewWorkspace returns an empty workspace; buffers grow to their working
// sizes during the first frames and are reused thereafter.
func NewWorkspace() *Workspace { return &Workspace{} }

// growC returns buf resized to n complex entries, reallocating only when
// capacity is insufficient. Contents are unspecified.
func growC(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		return make([]complex128, n)
	}
	return buf[:n]
}

// growF is growC for float64 slices.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
