package phy

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
)

func staticLink(snrDB float64, seed int64) *Link {
	return &Link{
		Cfg:   DefaultConfig(),
		Model: channel.NewStaticModel(snrDB, nil),
		Rng:   rand.New(rand.NewSource(seed)),
	}
}

func testFrame(rng *rand.Rand, n int, r rate.Rate) Frame {
	payload := make([]byte, n)
	rng.Read(payload)
	return Frame{
		Header:  []byte{0xAB, 0xCD, 0x01, 0x02, 0x00, 0x10},
		Payload: payload,
		Rate:    r,
	}
}

func TestCleanRoundTripAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	link := staticLink(30, 2)
	for _, r := range rate.All() {
		f := testFrame(rng, 200, r)
		tx := Transmit(link.Cfg, f)
		rx := link.Deliver(tx, 0, nil)
		if !rx.Detected {
			t.Fatalf("%v: frame not detected at 30 dB", r)
		}
		if !rx.HeaderOK {
			t.Fatalf("%v: header CRC failed at 30 dB", r)
		}
		if !bytes.Equal(rx.Header, f.Header) {
			t.Fatalf("%v: header mismatch", r)
		}
		if !rx.PayloadOK {
			t.Fatalf("%v: payload CRC failed at 30 dB (trueBER=%v)", r, rx.TrueBER)
		}
		if !bytes.Equal(rx.Payload, f.Payload) {
			t.Fatalf("%v: payload mismatch", r)
		}
		if rx.BitErrors != 0 {
			t.Fatalf("%v: %d bit errors at 30 dB", r, rx.BitErrors)
		}
	}
}

func TestSilentLossAtVeryLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	link := staticLink(-15, 4)
	f := testFrame(rng, 100, rate.ByIndex(0))
	rx := link.Deliver(Transmit(link.Cfg, f), 0, nil)
	if rx.Detected {
		t.Fatal("frame detected at -15 dB SNR")
	}
}

func TestSNREstimateTracksChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, snr := range []float64{5, 10, 15, 20} {
		link := staticLink(snr, rng.Int63())
		f := testFrame(rng, 100, rate.ByIndex(2))
		var sum float64
		const n = 20
		for i := 0; i < n; i++ {
			rx := link.Deliver(Transmit(link.Cfg, f), float64(i), nil)
			sum += rx.SNREstDB
		}
		if got := sum / n; math.Abs(got-snr) > 1.0 {
			t.Errorf("SNR estimate %.2f dB, channel %v dB", got, snr)
		}
	}
}

func TestHintsReflectChannelQuality(t *testing.T) {
	// Average hint-implied error probability must be near zero on a clean
	// channel and large on a marginal one.
	rng := rand.New(rand.NewSource(6))
	f := testFrame(rng, 200, rate.ByIndex(3)) // QPSK 3/4

	berFromHints := func(rx *Reception) float64 {
		var sum float64
		for _, s := range rx.Hints {
			sum += 1 / (1 + math.Exp(s))
		}
		return sum / float64(len(rx.Hints))
	}

	clean := staticLink(25, 7)
	rxClean := clean.Deliver(Transmit(clean.Cfg, f), 0, nil)
	if b := berFromHints(rxClean); b > 1e-6 {
		t.Errorf("clean channel hint BER %v, want < 1e-6", b)
	}

	noisy := staticLink(3, 8)
	rxNoisy := noisy.Deliver(Transmit(noisy.Cfg, f), 0, nil)
	if b := berFromHints(rxNoisy); b < 1e-3 {
		t.Errorf("marginal channel hint BER %v, want > 1e-3", b)
	}
	if rxNoisy.TrueBER == 0 {
		t.Skip("marginal frame happened to be error free")
	}
}

func TestHintEstimateMatchesTrueBER(t *testing.T) {
	// Across frames with errors, hint-estimated BER and true BER must
	// agree within an order of magnitude (they agree much better in
	// aggregate; per-frame we allow slack). This is Figure 7(a) in
	// miniature.
	rng := rand.New(rand.NewSource(9))
	link := staticLink(6.5, 10)
	f := testFrame(rng, 300, rate.ByIndex(3))
	var ratios []float64
	for i := 0; i < 30; i++ {
		rx := link.Deliver(Transmit(link.Cfg, f), float64(i), nil)
		if rx.BitErrors < 20 {
			continue
		}
		var est float64
		for _, s := range rx.Hints {
			est += 1 / (1 + math.Exp(s))
		}
		est /= float64(len(rx.Hints))
		ratios = append(ratios, est/rx.TrueBER)
	}
	if len(ratios) < 5 {
		t.Skip("not enough errored frames at this operating point")
	}
	var mean float64
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	if mean < 0.3 || mean > 3 {
		t.Errorf("mean est/true BER ratio %v, want within [0.3, 3]", mean)
	}
}

func TestInterferenceBurstRaisesSymbolBER(t *testing.T) {
	// An interference burst covering the middle third of the frame must
	// raise the hint-implied BER of those symbols by orders of magnitude
	// relative to the clean symbols — the Figure 3 signature.
	rng := rand.New(rand.NewSource(11))
	link := staticLink(18, 12)
	f := testFrame(rng, 600, rate.ByIndex(3))
	tx := Transmit(link.Cfg, f)
	T := link.Cfg.Mode.SymbolTime()
	nd := tx.NumDataSymbols()
	dataStart := float64(tx.dataSymbolOffset()) * T
	burst := Burst{
		Start: dataStart + float64(nd/3)*T,
		End:   dataStart + float64(2*nd/3)*T,
		Power: 10, // 10 dB above noise floor
	}
	rx := link.Deliver(tx, 0, []Burst{burst})
	if !rx.Detected || !rx.HeaderOK {
		t.Fatal("mid-frame burst must not kill preamble/header")
	}
	nbps := rx.InfoBitsPerSymbol
	symBER := func(j int) float64 {
		var s float64
		for _, h := range rx.Hints[j*nbps : (j+1)*nbps] {
			s += 1 / (1 + math.Exp(h))
		}
		return s / float64(nbps)
	}
	nSym := len(rx.Hints) / nbps
	var cleanMax, dirtyMin float64
	dirtyMin = 1
	for j := 0; j < nSym; j++ {
		b := symBER(j)
		inBurst := j > nd/3 && j < 2*nd/3-1
		if inBurst && b < dirtyMin {
			dirtyMin = b
		}
		if !inBurst && j < nd/3-1 && b > cleanMax {
			cleanMax = b
		}
	}
	if dirtyMin < 100*cleanMax {
		t.Errorf("burst symbols BER >= %v vs clean <= %v: jump too small", dirtyMin, cleanMax)
	}
}

func TestPostambleSurvivesPreambleCollision(t *testing.T) {
	// Interference covering only the start of the frame kills the
	// preamble but leaves the postamble detectable — the silent-loss
	// disambiguation mechanism of §3.2.
	rng := rand.New(rand.NewSource(13))
	link := staticLink(12, 14)
	f := testFrame(rng, 400, rate.ByIndex(2))
	f.Postamble = true
	tx := Transmit(link.Cfg, f)
	T := link.Cfg.Mode.SymbolTime()
	burst := Burst{Start: 0, End: 3 * T, Power: 300}
	rx := link.Deliver(tx, 0, []Burst{burst})
	if rx.Detected {
		t.Fatal("preamble should be lost under a 25 dB collision")
	}
	if !rx.PostambleDetected {
		t.Fatal("postamble should survive a head-only collision")
	}
}

func TestNoPostambleFieldWithoutPostamble(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	link := staticLink(20, 16)
	f := testFrame(rng, 100, rate.ByIndex(1))
	rx := link.Deliver(Transmit(link.Cfg, f), 0, nil)
	if rx.PostambleDetected {
		t.Fatal("postamble reported on a frame that carried none")
	}
}

func TestTransmissionGeometry(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(17))
	f := testFrame(rng, 1400, rate.ByIndex(5))
	tx := Transmit(cfg, f)
	// Airtime equals symbol count times symbol time.
	if got, want := tx.Airtime(), float64(tx.NumSymbols())*cfg.Mode.SymbolTime(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("airtime %v, want %v", got, want)
	}
	f.Postamble = true
	tx2 := Transmit(cfg, f)
	if tx2.NumSymbols() != tx.NumSymbols()+ofdm.PostambleSymbols {
		t.Fatal("postamble must add exactly PostambleSymbols")
	}
	// Padded info bits plus the 6 tail bits must tile OFDM symbols
	// exactly (the 802.11 padding rule); the hint stream is therefore 6
	// entries short of a whole symbol count, and the interference
	// detector's final group is allowed to be short.
	if (len(tx.InfoBits())+6)%cfg.Mode.InfoBitsPerSymbol(f.Rate) != 0 {
		t.Fatal("padded info bits + tail not a whole number of symbols")
	}
}

func TestHeaderSurvivesBodyErrors(t *testing.T) {
	// At an SNR where QAM16 3/4 fails, the BPSK 1/2 header must still
	// decode: this property is what lets the receiver send BER feedback
	// for errored frames.
	rng := rand.New(rand.NewSource(19))
	link := staticLink(8, 20)
	f := testFrame(rng, 400, rate.ByIndex(5))
	headerOK, payloadBad := 0, 0
	for i := 0; i < 15; i++ {
		rx := link.Deliver(Transmit(link.Cfg, f), float64(i), nil)
		if !rx.Detected {
			continue
		}
		if rx.HeaderOK {
			headerOK++
		}
		if !rx.PayloadOK {
			payloadBad++
		}
	}
	if headerOK < 14 {
		t.Errorf("header decoded only %d/15 times at 8 dB", headerOK)
	}
	if payloadBad < 10 {
		t.Errorf("QAM16 3/4 payload failed only %d/15 times at 8 dB; SNR choice wrong", payloadBad)
	}
}

func TestFadingChannelProducesBursts(t *testing.T) {
	// Over a walking-speed fading channel, losses must be bursty: the
	// frame BER sequence should show both clean and heavily-errored
	// frames at the same mean SNR.
	rng := rand.New(rand.NewSource(21))
	link := &Link{
		Cfg:   DefaultConfig(),
		Model: channel.NewStaticModel(12, channel.NewRayleigh(rng, 40, 0)),
		Rng:   rand.New(rand.NewSource(22)),
	}
	f := testFrame(rng, 400, rate.ByIndex(3))
	clean, dirty := 0, 0
	for i := 0; i < 40; i++ {
		rx := link.Deliver(Transmit(link.Cfg, f), float64(i)*0.05, nil)
		if !rx.Detected {
			dirty++
			continue
		}
		if rx.TrueBER == 0 {
			clean++
		} else if rx.TrueBER > 1e-3 {
			dirty++
		}
	}
	if clean == 0 || dirty == 0 {
		t.Errorf("fading channel gave %d clean / %d dirty frames; expected a mix", clean, dirty)
	}
}

func BenchmarkDeliver400BQPSK34(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	link := staticLink(10, 24)
	f := testFrame(rng, 400, rate.ByIndex(3))
	tx := Transmit(link.Cfg, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Deliver(tx, float64(i), nil)
	}
}

func BenchmarkTransmit1400B(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	cfg := DefaultConfig()
	f := testFrame(rng, 1400, rate.ByIndex(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transmit(cfg, f)
	}
}
