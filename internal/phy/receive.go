package phy

import (
	"math"
	"math/rand"

	"softrate/internal/bitutil"
	"softrate/internal/channel"
	"softrate/internal/coding"
	"softrate/internal/modulation"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
)

// Reception is the receiver's view of one frame: detection and CRC
// verdicts, the decoded payload, the per-bit SoftPHY hints exported through
// the SoftPHY interface, and ground-truth error counts available only to
// the experiment harness.
type Reception struct {
	// Detected reports whether the preamble was found (receiver
	// synchronized with the frame). When false every other field except
	// PostambleDetected is meaningless — a silent loss.
	Detected bool
	// HeaderOK reports the header CRC-16 verdict; feedback can be sent
	// only when the header decoded correctly (§3).
	HeaderOK bool
	// Header is the decoded header (valid when HeaderOK).
	Header []byte
	// PayloadOK reports the frame FCS (CRC-32) verdict.
	PayloadOK bool
	// Payload is the decoded frame body (stripped of FCS); only
	// meaningful when PayloadOK.
	Payload []byte
	// Hints are the SoftPHY hints s_k = |LLR(k)| for every payload
	// information bit (including FCS and padding), in decoder order.
	Hints []float64
	// InfoBitsPerSymbol is the number of entries of Hints contributed by
	// each OFDM symbol, the grouping the interference detector uses.
	InfoBitsPerSymbol int
	// SNREstDB is the preamble-based SNR estimate in dB (Schmidl-Cox
	// substitute). It reflects conditions during the preamble only.
	SNREstDB float64
	// PostambleDetected reports whether the trailing sync pattern was
	// found (only when the frame carried one).
	PostambleDetected bool

	// BitErrors is the ground-truth number of errored payload info bits
	// (experiment-only knowledge).
	BitErrors int
	// TrueBER is BitErrors over the payload info bit count.
	TrueBER float64
}

// NormSource supplies standard normal variates for the receiver noise.
// *rand.Rand implements it; the calibration pipeline substitutes a replay
// buffer so that pre-drawn noise can be decoded on any worker with
// byte-identical results.
type NormSource interface {
	NormFloat64() float64
}

// Burst describes an interval of co-channel interference at the receiver:
// linear power (relative to the unit noise floor) active during
// [Start, End) seconds, relative to the same clock as the frame start time.
type Burst struct {
	Start, End float64
	Power      float64
}

// Link binds a channel model and a noise source to a PHY configuration; it
// delivers transmissions through time-varying gains.
type Link struct {
	// Cfg is the PHY configuration (must match the transmitter's).
	Cfg Config
	// Model supplies the composite channel gain over time.
	Model *channel.Model
	// Rng drives the noise; deliveries consume from it.
	Rng *rand.Rand
	// WS optionally holds per-worker scratch; when set, Deliver reuses its
	// buffers and the returned Reception aliases them (valid until the
	// next delivery). When nil every delivery allocates, as before.
	WS *Workspace
}

// Deliver passes a transmission through the channel starting at time start
// (seconds) with optional interference bursts, and runs the full receive
// chain. Gains are sampled once per OFDM symbol.
func (l *Link) Deliver(tx *Transmission, start float64, bursts []Burst) *Reception {
	T := l.Cfg.Mode.SymbolTime()
	n := tx.NumSymbols()
	var gains []complex128
	var ivar []float64
	if l.WS != nil {
		l.WS.gains = growC(l.WS.gains, n)
		l.WS.ivar = growF(l.WS.ivar, n)
		gains, ivar = l.WS.gains, l.WS.ivar
	} else {
		gains = make([]complex128, n)
		ivar = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		t0 := start + float64(j)*T
		gains[j] = l.Model.Gain(t0 + T/2)
		ivar[j] = burstPower(bursts, t0, t0+T)
	}
	return ReceiveWS(l.WS, l.Cfg, tx, gains, ivar, l.Rng)
}

// burstPower sums the interference power active during [t0, t1), weighting
// partially overlapping bursts by their overlap fraction.
func burstPower(bursts []Burst, t0, t1 float64) float64 {
	var p float64
	for _, b := range bursts {
		lo, hi := math.Max(t0, b.Start), math.Min(t1, b.End)
		if hi > lo {
			p += b.Power * (hi - lo) / (t1 - t0)
		}
	}
	return p
}

// Receive runs the receiver chain over per-symbol channel gains and
// interference variances (gains[j], ivar[j] for OFDM symbol j of the whole
// transmission, preamble first). The receiver knows the channel gain
// (genie CSI, standing in for pilot-based estimation) and the thermal
// noise floor, but — crucially — not the interference power: that is what
// makes interference manifest as a spike in the SoftPHY-estimated BER.
// This entry point allocates a fresh Reception per call; the simulation
// hot path uses ReceiveWS.
func Receive(cfg Config, tx *Transmission, gains []complex128, ivar []float64, ns NormSource) *Reception {
	return ReceiveWS(nil, cfg, tx, gains, ivar, ns)
}

// ReceiveWS is Receive backed by per-worker scratch: the returned
// Reception and the slices it references live inside ws and are valid
// until the next ReceiveWS call on it. A nil ws falls back to a fresh
// throwaway workspace (equivalent to Receive).
func ReceiveWS(ws *Workspace, cfg Config, tx *Transmission, gains []complex128, ivar []float64, ns NormSource) *Reception {
	if ws == nil {
		ws = NewWorkspace()
	}
	rx := &ws.rec
	*rx = Reception{}
	T := cfg.Mode
	dataOff := tx.dataSymbolOffset()

	// --- Preamble: SNR estimation and detection. ---
	// The preamble is a known unit-power pattern on every data tone. The
	// receiver measures received power and infers SNR; detection requires
	// the true SINR to clear the sync threshold. Additionally, a colliding
	// transmission whose power approaches the signal's corrupts the
	// synchronization correlation (or captures the receiver outright) —
	// the paper's footnote 1: "if the interferer's signal is much stronger
	// than the sender's, some PHYs will resynchronize with the interferer
	// and abort the sender's frame". The noisy power measurement consumes
	// its variates first; the detection decision itself is pure, which is
	// what lets the calibration pipeline pre-draw noise streams.
	preSNREst := preambleSNREst(cfg, gains[:ofdm.PreambleSymbols], ivar[:ofdm.PreambleSymbols], ns)
	rx.SNREstDB = channel.LinearToDB(preSNREst)
	rx.Detected = PreambleDetects(cfg, gains[:ofdm.PreambleSymbols], ivar[:ofdm.PreambleSymbols])

	// --- Postamble detection (independent of preamble). ---
	if tx.Frame.Postamble {
		off := tx.NumSymbols() - ofdm.PostambleSymbols
		// The power measurement consumes the same variates it always has,
		// even though only the pure SINR decides postamble sync.
		preambleSNREst(cfg, gains[off:], ivar[off:], ns)
		rx.PostambleDetected = meanSINR(gains[off:], ivar[off:]) >= cfg.DetectSINR
	}

	if !rx.Detected {
		return rx
	}

	// --- Header: lowest rate, CRC-16. ---
	hr := headerRate()
	hdrBits, _ := ws.decodeSegment(cfg, tx.hdrSyms, tx.hdrInfoBits, hr,
		gains[ofdm.PreambleSymbols:dataOff], ivar[ofdm.PreambleSymbols:dataOff], ns)
	ws.hdrBytes = bitutil.AppendBitsToBytes(ws.hdrBytes[:0], hdrBits)
	hdrBytes := ws.hdrBytes
	// Strip to the original header + CRC16 length.
	want := len(tx.Frame.Header) + 2
	if len(hdrBytes) >= want {
		hdrBytes = hdrBytes[:want]
		crc := uint16(hdrBytes[want-2])<<8 | uint16(hdrBytes[want-1])
		if bitutil.CRC16CCITT(hdrBytes[:want-2]) == crc {
			rx.HeaderOK = true
			rx.Header = hdrBytes[:want-2]
		}
	}

	// --- Payload: frame rate, SoftPHY hints, CRC-32. ---
	r := tx.Frame.Rate
	info, llrs := ws.decodeSegment(cfg, tx.dataSyms, tx.infoBits, r,
		gains[dataOff:dataOff+len(tx.dataSyms)], ivar[dataOff:dataOff+len(tx.dataSyms)], ns)
	ws.hints = growF(ws.hints, len(llrs))
	rx.Hints = ws.hints
	for i, l := range llrs {
		rx.Hints[i] = math.Abs(l)
	}
	rx.InfoBitsPerSymbol = T.InfoBitsPerSymbol(r)
	rx.BitErrors = bitutil.CountBitErrors(info, tx.infoBits)
	rx.TrueBER = float64(rx.BitErrors) / float64(len(tx.infoBits))
	ws.body = bitutil.AppendBitsToBytes(ws.body[:0], info)
	bodyLen := len(tx.Frame.Payload) + 4
	if len(ws.body) >= bodyLen {
		if payload, ok := bitutil.CheckCRC32(ws.body[:bodyLen]); ok {
			rx.PayloadOK = true
			rx.Payload = payload
		}
	}
	return rx
}

// meanPower averages |h|^2 over a gain slice.
func meanPower(gains []complex128) float64 {
	var s float64
	for _, h := range gains {
		s += real(h)*real(h) + imag(h)*imag(h)
	}
	return s / float64(len(gains))
}

// meanVar averages interference variances.
func meanVar(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// meanSINR returns the true average per-symbol SINR over a sync pattern:
// |h|^2 signal power against the unit noise floor plus interference.
func meanSINR(gains []complex128, ivar []float64) float64 {
	var sinrSum float64
	for j := range gains {
		h := gains[j]
		hp := real(h)*real(h) + imag(h)*imag(h)
		sinrSum += hp / (1 + ivar[j])
	}
	return sinrSum / float64(len(gains))
}

// PreambleDetects reports whether the receiver synchronizes with a frame
// whose preamble experienced the given per-symbol gains and interference
// variances. It is pure — the detection decision consumes no randomness —
// so the calibration pipeline can predict a frame's noise consumption
// before decoding it.
func PreambleDetects(cfg Config, gains []complex128, ivar []float64) bool {
	det := meanSINR(gains, ivar) >= cfg.DetectSINR
	if sig, inter := meanPower(gains), meanVar(ivar); inter > sig/2 {
		det = false
	}
	return det
}

// preambleSNREst models the receiver's measurement of the known sync
// pattern: a noisy preamble-power SNR estimate à la Schmidl-Cox. The
// estimate includes any interference power present during the preamble and
// finite-sample measurement noise, but no knowledge of what happens later
// in the frame. It consumes 2·DataTones variates per preamble symbol.
func preambleSNREst(cfg Config, gains []complex128, ivar []float64, ns NormSource) float64 {
	nTones := cfg.Mode.DataTones
	var powerSum float64
	for j := range gains {
		h := gains[j]
		// Measured per-tone received power: |h*x + n + i|^2 with x unit
		// power. Sample mean over the tones.
		sd := math.Sqrt((1 + ivar[j]) / 2)
		var meas float64
		for k := 0; k < nTones; k++ {
			re := real(h) + sd*ns.NormFloat64()
			im := imag(h) + sd*ns.NormFloat64()
			meas += re*re + im*im
		}
		powerSum += meas / float64(nTones)
	}
	// Subtract the known unit noise floor; clamp to a small positive SNR.
	snrEst := powerSum/float64(len(gains)) - 1
	if snrEst < 1e-3 {
		snrEst = 1e-3
	}
	return snrEst
}

// decodeSegment passes one encoded segment (header or payload) through the
// channel symbols and the soft receive pipeline, returning decoded info
// bits and their a-posteriori LLRs (both aliasing the workspace).
//
// The receiver estimates the noise variance of each OFDM symbol from the
// decision-directed error vector magnitude (EVM) of its tones — what a
// real OFDM receiver obtains from pilots. This per-symbol estimate is what
// makes SoftPHY hints collapse under interference: an unmodeled interferer
// inflates the measured EVM, the LLRs deflate accordingly, and the
// per-symbol BER estimate spikes (Figure 3). With a fixed assumed noise
// floor the LLRs would instead stay (wrongly) confident and the collision
// would be invisible to the hints.
func (ws *Workspace) decodeSegment(cfg Config, syms [][]complex128, infoRef []byte, r rate.Rate, gains []complex128, ivar []float64, ns NormSource) (info []byte, llrs []float64) {
	depunct := ws.segmentLLRs(cfg, syms, len(infoRef), r, gains, ivar, ns)
	return ws.Coding.DecodeBCJR(depunct, len(infoRef), cfg.Decoder)
}

// segmentLLRs is decodeSegment's front end: everything up to (and
// including) depuncturing, i.e. every stage that consumes noise variates.
// The returned rate-1/2 LLR lattice aliases the workspace and is valid
// until the next segmentLLRs call; the batched receive path copies it out
// and defers the decode itself, which consumes no randomness, to a later
// whole-batch BCJR pass.
func (ws *Workspace) segmentLLRs(cfg Config, syms [][]complex128, nInfo int, r rate.Rate, gains []complex128, ivar []float64, ns NormSource) []float64 {
	ncbps := cfg.Mode.CodedBitsPerSymbol(r.Scheme)
	perm := ofdm.CachedPermutation(ncbps, r.Scheme.BitsPerSymbol())
	if cap(ws.chanLLRs) < len(syms)*ncbps {
		ws.chanLLRs = make([]float64, 0, len(syms)*ncbps)
	}
	chanLLRs := ws.chanLLRs[:0]
	ws.tones = growC(ws.tones, cfg.Mode.DataTones)
	rx := ws.tones
	for j, sym := range syms {
		h := gains[j]
		// Actual noise variance includes the interference the receiver
		// does not know about.
		sd := math.Sqrt((1 + ivar[j]) / 2)
		for k, x := range sym {
			rx[k] = h*x + complex(sd*ns.NormFloat64(), sd*ns.NormFloat64())
		}
		noiseEst := estimateNoiseEVM(r.Scheme, rx[:len(sym)], h)
		for _, y := range rx[:len(sym)] {
			chanLLRs = modulation.Demap(r.Scheme, y, h, noiseEst, cfg.ExactDemap, chanLLRs)
		}
	}
	ws.chanLLRs = chanLLRs
	ws.deint = growF(ws.deint, len(chanLLRs))
	deint := ofdm.DeinterleaveLLRsInto(ws.deint, chanLLRs, perm)
	return ws.Coding.DepunctureLLR(deint, r.Code, coding.CodedLen(nInfo))
}

// estimateNoiseEVM measures the decision-directed EVM of one OFDM symbol:
// the mean squared distance between each received tone and its nearest
// constellation point, rescaled to the receiver's reference plane. At low
// SINR decision errors bias the estimate low; the floor keeps the LLR
// scale sane, and the bias only makes the receiver slightly optimistic in
// a regime where the BER estimate is enormous anyway.
func estimateNoiseEVM(s modulation.Scheme, rx []complex128, h complex128) float64 {
	hm2 := real(h)*real(h) + imag(h)*imag(h)
	if hm2 < 1e-18 || len(rx) == 0 {
		return 1
	}
	var sum float64
	for _, y := range rx {
		z := y / h
		d := z - modulation.HardDecision(s, z)
		sum += real(d)*real(d) + imag(d)*imag(d)
	}
	// EVM is measured post-equalization (variance scaled by 1/|h|^2);
	// rescale back to the received plane.
	est := sum / float64(len(rx)) * hm2
	if est < 0.1 {
		est = 0.1
	}
	return est
}
