package phy

import (
	"math"
	"testing"

	"softrate/internal/rate"
)

func TestDefaultBERModelShape(t *testing.T) {
	m := DefaultBERModel
	if len(m.BER) != rate.Count() {
		t.Fatalf("model covers %d rates, want %d", len(m.BER), rate.Count())
	}
	if len(m.SNRdB) < 20 {
		t.Fatalf("grid too small: %d points", len(m.SNRdB))
	}
	for i := 1; i < len(m.SNRdB); i++ {
		if m.SNRdB[i] <= m.SNRdB[i-1] {
			t.Fatal("grid not ascending")
		}
	}
}

func TestBERDecreasesWithSNR(t *testing.T) {
	m := DefaultBERModel
	for ri := 0; ri < rate.Count(); ri++ {
		prev := 1.0
		for snr := -1.0; snr <= 30; snr += 0.25 {
			b := m.BERAt(ri, snr)
			if b > prev*1.5 { // allow small Monte-Carlo non-monotonicity
				t.Errorf("rate %d: BER rose from %v to %v at %v dB", ri, prev, b, snr)
			}
			prev = b
		}
	}
}

func TestBERIncreasesWithRate(t *testing.T) {
	// Observation 1 of §3.3: at fixed SNR, BER is monotone in bit rate.
	m := DefaultBERModel
	for snr := 2.0; snr <= 25; snr += 1 {
		prev := 0.0
		for ri := 0; ri < 6; ri++ {
			b := m.BERAt(ri, snr)
			if b < prev*0.5 && prev > 1e-10 {
				t.Errorf("at %v dB: BER(rate %d)=%v below BER(rate %d)=%v", snr, ri, b, ri-1, prev)
			}
			if b > prev {
				prev = b
			}
		}
	}
}

func TestFactorTenSpacing(t *testing.T) {
	// Observation 2 of §3.3: within the usable range (BER < 1e-2), each
	// rate's BER at a given SNR is >= 10x the next lower rate's. Check at
	// operating points where the higher rate is marginal.
	//
	// The BPSK 3/4 -> QPSK 1/2 pair (9 -> 12 Mbps) is exempt: those two
	// rates are nearly redundant in AWGN (a well-known property of the
	// real 802.11 table — stronger coding offsets the denser
	// constellation almost exactly), and the paper's own §3.3 remedy for
	// such pairs is "pick a subset of rates with the above property".
	m := DefaultBERModel
	for ri := 1; ri < 6; ri++ {
		if ri == 2 {
			continue
		}
		// Find an SNR where rate ri has BER ~ 1e-3 (usable but marginal).
		for snr := 0.0; snr <= 30; snr += 0.25 {
			b := m.BERAt(ri, snr)
			if b < 1e-2 && b > 1e-4 {
				lower := m.BERAt(ri-1, snr)
				if lower > b/10 && lower > 1e-9 {
					t.Errorf("rate %d at %.2f dB: BER %v, lower rate %v (< 10x apart)",
						ri, snr, b, lower)
				}
				break
			}
		}
	}
}

func TestLambdaConsistentWithBER(t *testing.T) {
	// Where BER is high the frame error-event rate must be nonzero, and
	// where BER is vanishing lambda must vanish too.
	m := DefaultBERModel
	for ri := 0; ri < 6; ri++ {
		for snr := 0.0; snr <= 28; snr += 1 {
			b := m.BERAt(ri, snr)
			l := m.LambdaAt(ri, snr)
			if b > 1e-2 && l == 0 {
				t.Errorf("rate %d at %v dB: BER %v but lambda 0", ri, snr, b)
			}
			if b <= 1e-11 && l > 1e-6 {
				t.Errorf("rate %d at %v dB: BER ~0 but lambda %v", ri, snr, l)
			}
		}
	}
}

func TestDeliverProbBounds(t *testing.T) {
	m := DefaultBERModel
	// Very high SNR: certain delivery. Very low: certain loss for any
	// plausible frame.
	if p := m.DeliverProb(3, []float64{30, 30, 30}, 144); p < 0.99 {
		t.Fatalf("deliver prob %v at 30 dB", p)
	}
	if p := m.DeliverProb(3, []float64{0, 0, 0}, 144); p > 0.2 {
		t.Fatalf("deliver prob %v at 0 dB for QPSK 3/4", p)
	}
}

func TestDeliverProbMonotoneInLength(t *testing.T) {
	m := DefaultBERModel
	snrs := []float64{8, 8, 8, 8}
	short := m.DeliverProb(3, snrs[:2], 144)
	long := m.DeliverProb(3, snrs, 144)
	if long > short {
		t.Fatalf("longer frame delivered more often: %v > %v", long, short)
	}
}

func TestInterpolationExtremes(t *testing.T) {
	m := DefaultBERModel
	if b := m.BERAt(2, -20); b != 0.5 {
		t.Fatalf("below-grid BER %v, want 0.5 cap", b)
	}
	if b := m.BERAt(2, 60); b > 1e-10 {
		t.Fatalf("far-above-grid BER %v, want ~floor", b)
	}
	// In-grid interpolation must land between neighbours.
	g := m.SNRdB
	mid := (g[5] + g[6]) / 2
	b5, b6, bm := m.BERAt(2, g[5]), m.BERAt(2, g[6]), m.BERAt(2, mid)
	lo, hi := math.Min(b5, b6), math.Max(b5, b6)
	if bm < lo*0.99 || bm > hi*1.01 {
		t.Fatalf("interpolated BER %v outside [%v, %v]", bm, lo, hi)
	}
}

func TestCalibrateSmall(t *testing.T) {
	// A tiny fresh calibration must roughly agree with the embedded table
	// at a point with measurable BER. This guards against drift between
	// the generated table and the live chain.
	if testing.Short() {
		t.Skip("Monte Carlo calibration is slow")
	}
	cc := CalibrationConfig{
		PHY:            DefaultConfig(),
		Rates:          []rate.Rate{rate.ByIndex(2)},
		SNRdB:          []float64{3, 4, 5},
		FramesPerPoint: 6,
		PayloadBytes:   200,
		Seed:           7,
	}
	m := Calibrate(cc)
	for k, snr := range cc.SNRdB {
		ref := DefaultBERModel.BERAt(2, snr)
		got := m.BER[0][k]
		if ref < 1e-7 || got <= 1e-9 {
			continue
		}
		if got/ref > 30 || ref/got > 30 {
			t.Errorf("fresh calibration at %v dB: %v vs embedded %v", snr, got, ref)
		}
	}
}

func TestCalibrateBatchedMatchesSequential(t *testing.T) {
	// The batched decode stage must not change a single output bit: the
	// same config must produce deeply equal tables with batching off
	// (historical per-frame path, one worker) and on (any chunk size, any
	// worker count).
	if testing.Short() {
		t.Skip("Monte Carlo calibration is slow")
	}
	cc := CalibrationConfig{
		PHY:            DefaultConfig(),
		Rates:          []rate.Rate{rate.ByIndex(0), rate.ByIndex(3)},
		SNRdB:          []float64{2, 6, 10},
		FramesPerPoint: 5,
		PayloadBytes:   120,
		Seed:           11,
		Workers:        1,
		DecodeBatch:    -1,
	}
	want := Calibrate(cc)
	for _, batch := range []int{1, 3, 8} {
		for _, workers := range []int{1, 4} {
			cc.DecodeBatch, cc.Workers = batch, workers
			got := Calibrate(cc)
			for ri := range want.BER {
				for k := range want.BER[ri] {
					if math.Float64bits(got.BER[ri][k]) != math.Float64bits(want.BER[ri][k]) ||
						math.Float64bits(got.Lambda[ri][k]) != math.Float64bits(want.Lambda[ri][k]) {
						t.Fatalf("batch=%d workers=%d: table diverges at rate %d, point %d", batch, workers, ri, k)
					}
				}
			}
		}
	}
}
