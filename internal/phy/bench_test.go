package phy

import (
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/rate"
	"softrate/internal/softphy"
)

// fig79Frame is the Fig 7/9 probe shape: 240-byte payload at QAM16 1/2
// over a static 14 dB channel — the frame collectFrames pushes through the
// chain thousands of times per figure.
func fig79Frame() (Config, Frame, *rand.Rand) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 240)
	rng.Read(payload)
	return cfg, Frame{Header: []byte{9, 9, 9, 9}, Payload: payload, Rate: rate.ByIndex(4)}, rng
}

func benchChain(b *testing.B, ws *Workspace) {
	cfg, frame, _ := fig79Frame()
	link := &Link{Cfg: cfg, Model: channel.NewStaticModel(14, nil), Rng: rand.New(rand.NewSource(2)), WS: ws}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := TransmitWS(ws, cfg, frame)
		rx := link.Deliver(tx, float64(i)*0.01, nil)
		if rx.Detected {
			_ = softphy.FrameBER(rx.Hints)
		}
	}
}

// BenchmarkTxRxFrame measures the allocating transmit→channel→receive
// chain at the Fig 7/9 frame shape (the pre-workspace entry points).
func BenchmarkTxRxFrame(b *testing.B) { benchChain(b, nil) }

// BenchmarkTxRxFrameWorkspace is the warm per-worker scratch form the
// experiment harnesses run; steady state must report 0 allocs/op.
func BenchmarkTxRxFrameWorkspace(b *testing.B) { benchChain(b, NewWorkspace()) }

// BenchmarkCalibratePoint measures one calibration grid point (one rate,
// one SNR, the default 10 frames) through the parallel-safe pipeline.
func BenchmarkCalibratePoint(b *testing.B) {
	cc := CalibrationConfig{
		PHY:            DefaultConfig(),
		Rates:          []rate.Rate{rate.ByIndex(3)},
		SNRdB:          []float64{9},
		FramesPerPoint: 10,
		PayloadBytes:   250,
		Seed:           1,
		Workers:        1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Calibrate(cc)
	}
}
