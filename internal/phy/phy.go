// Package phy implements the 802.11a/g-like OFDM physical layer of the
// paper's prototype (§4) in simulation: a transmitter that convolutionally
// encodes, punctures, interleaves and modulates frames onto OFDM symbols,
// and a receiver that demaps soft LLRs, deinterleaves, runs the soft-output
// BCJR decoder and exports per-bit SoftPHY hints, a preamble-based SNR
// estimate (the Schmidl-Cox substitute) and CRC verdicts.
//
// The chain operates at subcarrier granularity in the frequency domain; the
// channel applies a flat complex gain per OFDM symbol (plus unit-variance
// receiver noise and optional interference power), which is the regime the
// paper's per-symbol interference detector (§4) is designed for.
package phy

import (
	"softrate/internal/bitutil"
	"softrate/internal/coding"
	"softrate/internal/modulation"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
)

// Config collects the PHY parameters shared by transmitter and receiver.
type Config struct {
	// Mode is the OFDM operating mode (Table 3).
	Mode ofdm.Mode
	// Decoder selects exact log-MAP (reference) or max-log BCJR.
	Decoder coding.BCJRMode
	// ExactDemap selects the full log-sum-exp soft demapper; false uses
	// max-log.
	ExactDemap bool
	// DetectSINR is the linear preamble/postamble SINR above which the
	// receiver synchronizes with a frame. The default corresponds to
	// roughly -1 dB, below which even BPSK 1/2 is hopeless.
	DetectSINR float64
}

// DefaultConfig returns the configuration used by the experiments:
// simulation mode (20 MHz, 128 tones), exact log-MAP decoding.
func DefaultConfig() Config {
	return Config{
		Mode:       ofdm.Simulation,
		Decoder:    coding.LogMAP,
		ExactDemap: true,
		DetectSINR: 0.8,
	}
}

// Frame is a link-layer frame handed to the PHY for transmission.
type Frame struct {
	// Header carries link-layer addressing and control; it is protected
	// by its own CRC-16 and always travels at the lowest rate so that
	// feedback can identify sender and receiver even when the body is
	// errored (§3).
	Header []byte
	// Payload is the frame body; a CRC-32 FCS is appended by the PHY.
	Payload []byte
	// Rate is the modulation/coding combination for the body.
	Rate rate.Rate
	// Postamble appends a trailing sync pattern enabling detection of
	// frames whose preamble was destroyed by interference (§3.2).
	Postamble bool
}

// Transmission is a frame encoded onto OFDM symbols, ready to traverse a
// channel. It also retains the ground-truth coded/info bits so experiments
// can measure true BER — information a real receiver does not have.
type Transmission struct {
	Cfg   Config
	Frame Frame

	// hdrInfoBits are the padded header information bits (incl. CRC-16).
	hdrInfoBits []byte
	// infoBits are the padded payload information bits (incl. CRC-32).
	infoBits []byte
	// hdrSyms and dataSyms are the modulated OFDM data-tone vectors.
	hdrSyms  [][]complex128
	dataSyms [][]complex128
}

// headerRate returns the rate used for the header: the most robust one.
func headerRate() rate.Rate { return rate.Lowest() }

// appendPaddedBits appends the info bits of frameBytes to dst, zero-padded
// so that, after the 6 tail bits and puncturing at r's code rate, the
// coded stream fills a whole number of OFDM symbols exactly (the 802.11
// padding rule).
func appendPaddedBits(dst []byte, frameBytes []byte, m ofdm.Mode, r rate.Rate) []byte {
	dst = bitutil.AppendBytesToBits(dst, frameBytes)
	ndbps := m.InfoBitsPerSymbol(r)
	n := len(dst) + coding.TailBits
	nSym := (n + ndbps - 1) / ndbps
	for len(dst) < nSym*ndbps-coding.TailBits {
		dst = append(dst, 0)
	}
	return dst
}

// encodeSegment runs info bits through the full TX pipeline at rate r —
// convolutional encoding, puncturing, per-symbol interleaving, modulation —
// reusing the workspace scratch. The modulated tones land in *flat and the
// returned per-symbol views are carved from it into *syms.
func (ws *Workspace) encodeSegment(cfg Config, info []byte, r rate.Rate, flat *[]complex128, syms *[][]complex128) [][]complex128 {
	ws.coded = coding.AppendEncode(ws.coded[:0], info)
	ws.punct = coding.AppendPuncture(ws.punct[:0], ws.coded, r.Code)
	ncbps := cfg.Mode.CodedBitsPerSymbol(r.Scheme)
	perm := ofdm.CachedPermutation(ncbps, r.Scheme.BitsPerSymbol())
	if cap(ws.inter) < len(ws.punct) {
		ws.inter = make([]byte, len(ws.punct))
	}
	inter := ofdm.InterleaveBitsInto(ws.inter[:len(ws.punct)], ws.punct, perm)
	nSym := len(inter) / ncbps
	*flat = (*flat)[:0]
	for j := 0; j < nSym; j++ {
		*flat = modulation.AppendModulate(*flat, r.Scheme, inter[j*ncbps:(j+1)*ncbps])
	}
	// Carve the per-symbol views only after the flat plane has finished
	// growing, so they all point at the final backing array.
	tones := len(*flat) / nSym
	out := (*syms)[:0]
	for j := 0; j < nSym; j++ {
		out = append(out, (*flat)[j*tones:(j+1)*tones])
	}
	*syms = out
	return out
}

// Transmit encodes a frame for the air. The header is sent at the lowest
// rate with a CRC-16; the payload at f.Rate with a CRC-32. This entry
// point allocates a fresh Transmission per call; the simulation hot path
// uses TransmitWS.
func Transmit(cfg Config, f Frame) *Transmission {
	return TransmitWS(nil, cfg, f)
}

// TransmitWS is Transmit backed by per-worker scratch: the returned
// Transmission and everything it references live inside ws and are valid
// until the next TransmitWS call on it. A nil ws falls back to a fresh
// throwaway workspace (equivalent to Transmit).
func TransmitWS(ws *Workspace, cfg Config, f Frame) *Transmission {
	if ws == nil {
		ws = NewWorkspace()
	}
	hr := headerRate()
	hdrCRC := bitutil.CRC16CCITT(f.Header)
	ws.hdrFrame = append(append(ws.hdrFrame[:0], f.Header...), byte(hdrCRC>>8), byte(hdrCRC))
	ws.hdrInfo = appendPaddedBits(ws.hdrInfo[:0], ws.hdrFrame, cfg.Mode, hr)

	ws.bodyFrame = bitutil.AppendCRC32To(ws.bodyFrame[:0], f.Payload)
	ws.info = appendPaddedBits(ws.info[:0], ws.bodyFrame, cfg.Mode, f.Rate)

	ws.tx = Transmission{
		Cfg:         cfg,
		Frame:       f,
		hdrInfoBits: ws.hdrInfo,
		infoBits:    ws.info,
		hdrSyms:     ws.encodeSegment(cfg, ws.hdrInfo, hr, &ws.hdrSymFlat, &ws.hdrSyms),
		dataSyms:    ws.encodeSegment(cfg, ws.info, f.Rate, &ws.dataSymFlat, &ws.dataSyms),
	}
	return &ws.tx
}

// NumSymbols returns the total OFDM symbols on the air, including preamble,
// header, data and optional postamble.
func (t *Transmission) NumSymbols() int {
	n := ofdm.PreambleSymbols + len(t.hdrSyms) + len(t.dataSyms)
	if t.Frame.Postamble {
		n += ofdm.PostambleSymbols
	}
	return n
}

// NumDataSymbols returns the number of payload OFDM symbols.
func (t *Transmission) NumDataSymbols() int { return len(t.dataSyms) }

// Airtime returns the on-air duration of the transmission.
func (t *Transmission) Airtime() float64 {
	return float64(t.NumSymbols()) * t.Cfg.Mode.SymbolTime()
}

// InfoBits exposes the ground-truth padded payload information bits
// (including FCS and padding) for true-BER measurement in experiments.
func (t *Transmission) InfoBits() []byte { return t.infoBits }

// dataSymbolOffset returns the index of the first payload symbol within the
// whole transmission.
func (t *Transmission) dataSymbolOffset() int {
	return ofdm.PreambleSymbols + len(t.hdrSyms)
}

// NoiseDraws returns the number of NormFloat64 variates Receive consumes
// for this transmission given the preamble-detection outcome (which is
// itself pure — see PreambleDetects). The calibration pipeline uses this
// to pre-draw each frame's noise from the sequential master stream and
// decode frames in parallel with byte-identical results.
func (t *Transmission) NoiseDraws(detected bool) int {
	perSym := 2 * t.Cfg.Mode.DataTones
	draws := ofdm.PreambleSymbols * perSym
	if t.Frame.Postamble {
		draws += ofdm.PostambleSymbols * perSym
	}
	if detected {
		draws += (len(t.hdrSyms) + len(t.dataSyms)) * perSym
	}
	return draws
}
