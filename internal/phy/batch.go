package phy

import (
	"math"

	"softrate/internal/bitutil"
	"softrate/internal/channel"
	"softrate/internal/coding"
	"softrate/internal/ofdm"
)

// This file implements the batched receive path: the receiver front end
// (noise sampling, demapping, deinterleaving, depuncturing) runs per frame
// at queue time — consuming exactly the variates, in exactly the order, of
// a sequential ReceiveWS call — while the BCJR decodes, which consume no
// randomness, are deferred and run as one lockstep batch through
// coding.BatchWorkspace at flush time. The split makes the batch path
// bit-identical to the sequential path on the same noise stream, which the
// tests pin; it exists because the decoder dominates receive cost and the
// batch decoder runs several frames per trellis step.

// pendRx is one queued reception awaiting its deferred decodes.
type pendRx struct {
	rec      Reception // front-end verdicts: Detected, SNREstDB, PostambleDetected
	hdrOff   int       // header LLR lattice within batchQueue.llrBuf
	hdrLen   int
	hdrNInfo int
	payOff   int // payload LLR lattice within batchQueue.llrBuf
	payLen   int
	payNInfo int
	infoOff  int // ground-truth payload info bits within batchQueue.infoBuf
	hdrWant  int // original header + CRC-16 length, bytes
	bodyLen  int // original payload + CRC-32 length, bytes
	ibps     int // InfoBitsPerSymbol at the payload rate
}

// batchQueue is the Workspace's batched-receive scratch. Everything the
// deferred decodes need outlives the per-frame transmit scratch: queued
// transmissions are typically workspace-aliased and overwritten by the
// next TransmitWS, so the queue copies the LLR lattices and ground-truth
// bits out at queue time. All buffers are reused across flushes; steady
// state performs zero heap allocations.
type batchQueue struct {
	cw       coding.BatchWorkspace
	pend     []pendRx
	llrBuf   []float64
	infoBuf  []byte
	jobs     []coding.BatchJob
	mode     coding.BCJRMode
	haveMode bool

	recs     []Reception
	recPtrs  []*Reception
	hintsBuf []float64
	hdrBuf   []byte
	bodyBuf  []byte
}

// QueueReceive runs the receiver front end for one transmission now —
// consuming the same noise variates in the same order as ReceiveWS — and
// queues its header and payload decodes for the next FlushReceptions. All
// receptions queued between two flushes must use the same cfg.Decoder.
//
// The transmission may be workspace-aliased and overwritten before the
// flush: everything the deferred decode needs is copied out here.
func (ws *Workspace) QueueReceive(cfg Config, tx *Transmission, gains []complex128, ivar []float64, ns NormSource) {
	q := &ws.bq
	var p pendRx
	dataOff := tx.dataSymbolOffset()

	preSNREst := preambleSNREst(cfg, gains[:ofdm.PreambleSymbols], ivar[:ofdm.PreambleSymbols], ns)
	p.rec.SNREstDB = channel.LinearToDB(preSNREst)
	p.rec.Detected = PreambleDetects(cfg, gains[:ofdm.PreambleSymbols], ivar[:ofdm.PreambleSymbols])

	if tx.Frame.Postamble {
		off := tx.NumSymbols() - ofdm.PostambleSymbols
		preambleSNREst(cfg, gains[off:], ivar[off:], ns)
		p.rec.PostambleDetected = meanSINR(gains[off:], ivar[off:]) >= cfg.DetectSINR
	}

	if p.rec.Detected {
		if !q.haveMode {
			q.mode, q.haveMode = cfg.Decoder, true
		} else if q.mode != cfg.Decoder {
			panic("phy: mixed decoder modes queued in one receive batch")
		}

		hr := headerRate()
		dep := ws.segmentLLRs(cfg, tx.hdrSyms, len(tx.hdrInfoBits), hr,
			gains[ofdm.PreambleSymbols:dataOff], ivar[ofdm.PreambleSymbols:dataOff], ns)
		p.hdrOff, p.hdrLen, p.hdrNInfo = len(q.llrBuf), len(dep), len(tx.hdrInfoBits)
		q.llrBuf = append(q.llrBuf, dep...)

		r := tx.Frame.Rate
		dep = ws.segmentLLRs(cfg, tx.dataSyms, len(tx.infoBits), r,
			gains[dataOff:dataOff+len(tx.dataSyms)], ivar[dataOff:dataOff+len(tx.dataSyms)], ns)
		p.payOff, p.payLen, p.payNInfo = len(q.llrBuf), len(dep), len(tx.infoBits)
		q.llrBuf = append(q.llrBuf, dep...)

		p.infoOff = len(q.infoBuf)
		q.infoBuf = append(q.infoBuf, tx.infoBits...)
		p.hdrWant = len(tx.Frame.Header) + 2
		p.bodyLen = len(tx.Frame.Payload) + 4
		p.ibps = cfg.Mode.InfoBitsPerSymbol(r)
	}
	q.pend = append(q.pend, p)
}

// PendingReceives reports how many receptions are queued and undecoded.
func (ws *Workspace) PendingReceives() int { return len(ws.bq.pend) }

// FlushReceptions decodes every queued reception in one lockstep batch and
// returns the completed Receptions in queue order, each bit-identical to
// what a sequential ReceiveWS call would have produced on the same noise
// stream. The returned slice and the Receptions' fields alias the
// workspace and are valid until the next FlushReceptions call (queueing
// more receptions does not disturb them).
func (ws *Workspace) FlushReceptions() []*Reception {
	q := &ws.bq
	q.jobs = q.jobs[:0]
	for i := range q.pend {
		p := &q.pend[i]
		if !p.rec.Detected {
			continue
		}
		q.jobs = append(q.jobs,
			coding.BatchJob{LLRs: q.llrBuf[p.hdrOff : p.hdrOff+p.hdrLen], NInfo: p.hdrNInfo},
			coding.BatchJob{LLRs: q.llrBuf[p.payOff : p.payOff+p.payLen], NInfo: p.payNInfo})
	}
	var results []coding.BatchResult
	if len(q.jobs) > 0 {
		results = q.cw.DecodeBCJRBatch(q.jobs, q.mode)
	}

	n := len(q.pend)
	if cap(q.recs) < n {
		q.recs = make([]Reception, n)
		q.recPtrs = make([]*Reception, n)
	}
	q.recs, q.recPtrs = q.recs[:n], q.recPtrs[:n]
	q.hintsBuf, q.hdrBuf, q.bodyBuf = q.hintsBuf[:0], q.hdrBuf[:0], q.bodyBuf[:0]

	j := 0
	for i := range q.pend {
		p := &q.pend[i]
		rx := &q.recs[i]
		*rx = p.rec
		q.recPtrs[i] = rx
		if !p.rec.Detected {
			continue
		}

		// Header: CRC-16 over the re-assembled bytes, as in ReceiveWS.
		hdrBits := results[j].Info
		j++
		hStart := len(q.hdrBuf)
		q.hdrBuf = bitutil.AppendBitsToBytes(q.hdrBuf, hdrBits)
		hdrBytes := q.hdrBuf[hStart:]
		if want := p.hdrWant; len(hdrBytes) >= want {
			hdrBytes = hdrBytes[:want]
			crc := uint16(hdrBytes[want-2])<<8 | uint16(hdrBytes[want-1])
			if bitutil.CRC16CCITT(hdrBytes[:want-2]) == crc {
				rx.HeaderOK = true
				rx.Header = hdrBytes[:want-2]
			}
		}

		// Payload: SoftPHY hints, ground-truth errors, CRC-32.
		info, llrs := results[j].Info, results[j].LLR
		j++
		sStart := len(q.hintsBuf)
		for _, l := range llrs {
			q.hintsBuf = append(q.hintsBuf, math.Abs(l))
		}
		rx.Hints = q.hintsBuf[sStart:]
		rx.InfoBitsPerSymbol = p.ibps
		infoRef := q.infoBuf[p.infoOff : p.infoOff+p.payNInfo]
		rx.BitErrors = bitutil.CountBitErrors(info, infoRef)
		rx.TrueBER = float64(rx.BitErrors) / float64(p.payNInfo)
		bStart := len(q.bodyBuf)
		q.bodyBuf = bitutil.AppendBitsToBytes(q.bodyBuf, info)
		body := q.bodyBuf[bStart:]
		if len(body) >= p.bodyLen {
			if payload, ok := bitutil.CheckCRC32(body[:p.bodyLen]); ok {
				rx.PayloadOK = true
				rx.Payload = payload
			}
		}
	}
	q.pend, q.llrBuf, q.infoBuf = q.pend[:0], q.llrBuf[:0], q.infoBuf[:0]
	q.haveMode = false
	return q.recPtrs
}

// QueueDeliver is Deliver's queued form: it samples the channel and runs
// the receiver front end now (consuming the link's noise stream exactly as
// Deliver would) and defers the decodes to the next FlushReceptions on the
// link's workspace. Requires l.WS.
func (l *Link) QueueDeliver(tx *Transmission, start float64, bursts []Burst) {
	if l.WS == nil {
		panic("phy: Link.QueueDeliver requires a Workspace")
	}
	T := l.Cfg.Mode.SymbolTime()
	n := tx.NumSymbols()
	l.WS.gains = growC(l.WS.gains, n)
	l.WS.ivar = growF(l.WS.ivar, n)
	gains, ivar := l.WS.gains, l.WS.ivar
	for j := 0; j < n; j++ {
		t0 := start + float64(j)*T
		gains[j] = l.Model.Gain(t0 + T/2)
		ivar[j] = burstPower(bursts, t0, t0+T)
	}
	l.WS.QueueReceive(l.Cfg, tx, gains, ivar, l.Rng)
}

// FlushDeliveries completes every queued delivery; see FlushReceptions.
func (l *Link) FlushDeliveries() []*Reception {
	if l.WS == nil {
		panic("phy: Link.FlushDeliveries requires a Workspace")
	}
	return l.WS.FlushReceptions()
}
