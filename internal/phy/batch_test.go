package phy

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/coding"
	"softrate/internal/rate"
)

// rxSnapshot deep-copies a Reception out of workspace-aliased storage so
// sequential and batched runs can be compared after their buffers are
// reused.
type rxSnapshot struct {
	Detected, HeaderOK, PayloadOK, PostambleDetected bool
	Header, Payload                                  []byte
	Hints                                            []float64
	InfoBitsPerSymbol, BitErrors                     int
	SNREstDB, TrueBER                                float64
}

func snapshotRx(rx *Reception) rxSnapshot {
	return rxSnapshot{
		Detected:          rx.Detected,
		HeaderOK:          rx.HeaderOK,
		PayloadOK:         rx.PayloadOK,
		PostambleDetected: rx.PostambleDetected,
		Header:            append([]byte(nil), rx.Header...),
		Payload:           append([]byte(nil), rx.Payload...),
		Hints:             append([]float64(nil), rx.Hints...),
		InfoBitsPerSymbol: rx.InfoBitsPerSymbol,
		BitErrors:         rx.BitErrors,
		SNREstDB:          rx.SNREstDB,
		TrueBER:           rx.TrueBER,
	}
}

func sameRx(a, b rxSnapshot) bool {
	if a.Detected != b.Detected || a.HeaderOK != b.HeaderOK ||
		a.PayloadOK != b.PayloadOK || a.PostambleDetected != b.PostambleDetected ||
		a.InfoBitsPerSymbol != b.InfoBitsPerSymbol || a.BitErrors != b.BitErrors {
		return false
	}
	if math.Float64bits(a.SNREstDB) != math.Float64bits(b.SNREstDB) ||
		math.Float64bits(a.TrueBER) != math.Float64bits(b.TrueBER) {
		return false
	}
	if string(a.Header) != string(b.Header) || string(a.Payload) != string(b.Payload) {
		return false
	}
	if len(a.Hints) != len(b.Hints) {
		return false
	}
	for i := range a.Hints {
		if math.Float64bits(a.Hints[i]) != math.Float64bits(b.Hints[i]) {
			return false
		}
	}
	return true
}

// batchTestFrame describes one frame of the equivalence scenario.
type batchTestFrame struct {
	payloadLen int
	rateIdx    int
	snrDB      float64
	postamble  bool
	burst      bool
}

// batchScenario mixes rates, payload lengths, SNRs (including frames below
// the detection threshold), postambles and interference bursts so the
// queued path must reproduce every branch of ReceiveWS.
func batchScenario() []batchTestFrame {
	return []batchTestFrame{
		{240, 0, 12, false, false},
		{240, 3, 17, false, false},
		{100, 5, 25, true, false},
		{240, 3, -9, false, false}, // below detection threshold: silent loss
		{64, 1, 9, false, false},
		{240, 3, 17, false, true}, // interference burst over the payload
		{240, 4, 21, true, false},
		{32, 2, 11, false, false},
		{240, 3, 2, false, false}, // marginal SNR: errored frames likely
	}
}

// runScenario pushes the scenario through one link, either sequentially or
// queued with the given flush interval, and returns per-frame snapshots.
func runScenario(ws *Workspace, cfg Config, frames []batchTestFrame, seed int64, flushEvery int) []rxSnapshot {
	rng := rand.New(rand.NewSource(seed + 1))
	payload := make([]byte, 512)
	out := make([]rxSnapshot, 0, len(frames))
	queued := 0
	var link *Link
	for i, f := range frames {
		// One static-SNR link per frame keeps per-frame SNR control while
		// the noise stream stays a single sequential source.
		if link == nil {
			link = &Link{Cfg: cfg, Rng: rand.New(rand.NewSource(seed)), WS: ws}
		}
		link.Model = channel.NewStaticModel(f.snrDB, nil)
		rng.Read(payload[:f.payloadLen])
		tx := TransmitWS(ws, cfg, Frame{
			Header:    []byte{byte(i), 0xA5},
			Payload:   payload[:f.payloadLen],
			Rate:      rate.ByIndex(f.rateIdx),
			Postamble: f.postamble,
		})
		start := float64(i) * 0.02
		var bursts []Burst
		if f.burst {
			air := tx.Airtime()
			bursts = []Burst{{Start: start + air*0.3, End: start + air*0.9, Power: 40}}
		}
		if flushEvery <= 0 {
			out = append(out, snapshotRx(link.Deliver(tx, start, bursts)))
			continue
		}
		link.QueueDeliver(tx, start, bursts)
		queued++
		if queued == flushEvery {
			for _, rx := range link.FlushDeliveries() {
				out = append(out, snapshotRx(rx))
			}
			queued = 0
		}
	}
	if flushEvery > 0 && queued > 0 {
		for _, rx := range link.FlushDeliveries() {
			out = append(out, snapshotRx(rx))
		}
	}
	return out
}

// TestQueueReceiveMatchesSequential pins the batched receive path's
// bit-identity contract: for the same noise stream, QueueDeliver +
// FlushReceptions must reproduce Deliver's Receptions exactly — every
// verdict, every hint bit pattern — at any flush interval, on a dirty
// workspace, for both decoder modes.
func TestQueueReceiveMatchesSequential(t *testing.T) {
	frames := batchScenario()
	for _, mode := range []coding.BCJRMode{coding.LogMAP, coding.MaxLog} {
		cfg := DefaultConfig()
		cfg.Decoder = mode
		want := runScenario(NewWorkspace(), cfg, frames, 42, 0)
		for _, flushEvery := range []int{1, 3, len(frames), 100} {
			ws := NewWorkspace()
			// Dirty the workspace (including the batch queue) with a
			// different scenario first; reuse must be invisible.
			runScenario(ws, cfg, frames[:4], 7, 2)
			got := runScenario(ws, cfg, frames, 42, flushEvery)
			if len(got) != len(want) {
				t.Fatalf("mode %v flush %d: got %d receptions, want %d", mode, flushEvery, len(got), len(want))
			}
			for i := range want {
				if !sameRx(got[i], want[i]) {
					t.Errorf("mode %v flush %d: frame %d reception differs from sequential:\n got %+v\nwant %+v",
						mode, flushEvery, i, got[i], want[i])
				}
			}
		}
	}
}

// TestQueueReceiveScenarioCoverage guards the scenario itself: it must
// exercise silent losses, postamble detections, errored-and-clean frames,
// failed CRCs — otherwise the equivalence test proves less than it claims.
func TestQueueReceiveScenarioCoverage(t *testing.T) {
	got := runScenario(NewWorkspace(), DefaultConfig(), batchScenario(), 42, 4)
	var silent, post, clean, errored int
	for _, rx := range got {
		switch {
		case !rx.Detected:
			silent++
		case rx.BitErrors == 0:
			clean++
		default:
			errored++
		}
		if rx.PostambleDetected {
			post++
		}
	}
	if silent == 0 || post == 0 || clean == 0 || errored == 0 {
		t.Fatalf("scenario lacks coverage: silent=%d postamble=%d clean=%d errored=%d",
			silent, post, clean, errored)
	}
}

// TestQueuedDeliveriesSurviveRequeue pins the documented lifetime: the
// Receptions returned by one flush stay intact while the next batch is
// being queued.
func TestQueuedDeliveriesSurviveRequeue(t *testing.T) {
	cfg := DefaultConfig()
	frames := batchScenario()
	ws := NewWorkspace()
	want := runScenario(NewWorkspace(), cfg, frames, 9, 0)

	rng := rand.New(rand.NewSource(10))
	payload := make([]byte, 512)
	link := &Link{Cfg: cfg, Rng: rand.New(rand.NewSource(9)), WS: ws}
	var snaps []rxSnapshot
	var lastFlush []*Reception
	for i, f := range frames {
		link.Model = channel.NewStaticModel(f.snrDB, nil)
		rng.Read(payload[:f.payloadLen])
		tx := TransmitWS(ws, cfg, Frame{
			Header:    []byte{byte(i), 0xA5},
			Payload:   payload[:f.payloadLen],
			Rate:      rate.ByIndex(f.rateIdx),
			Postamble: f.postamble,
		})
		start := float64(i) * 0.02
		var bursts []Burst
		if f.burst {
			air := tx.Airtime()
			bursts = []Burst{{Start: start + air*0.3, End: start + air*0.9, Power: 40}}
		}
		// Queue frame i on top of frame i-1's flushed reception, and only
		// then snapshot it: queueing must not disturb flushed results.
		link.QueueDeliver(tx, start, bursts)
		if lastFlush != nil {
			snaps = append(snaps, snapshotRx(lastFlush[0]))
		}
		lastFlush = link.FlushDeliveries()
	}
	snaps = append(snaps, snapshotRx(lastFlush[0]))
	if len(snaps) != len(want) {
		t.Fatalf("got %d receptions, want %d", len(snaps), len(want))
	}
	for i := range want {
		if !sameRx(snaps[i], want[i]) {
			t.Errorf("frame %d reception mutated by queueing the next batch", i)
		}
	}
}

// TestBatchReceiveDoesNotAllocateSteadyState pins the zero-allocation
// contract of the queued receive path once the workspace is warm.
func TestBatchReceiveDoesNotAllocateSteadyState(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin skipped in -short")
	}
	cfg := DefaultConfig()
	ws := NewWorkspace()
	link := &Link{
		Cfg:   cfg,
		Model: channel.NewStaticModel(17, nil),
		Rng:   rand.New(rand.NewSource(3)),
		WS:    ws,
	}
	payload := make([]byte, 240)
	frame := Frame{Header: []byte{1, 2}, Payload: payload, Rate: rate.ByIndex(3)}
	rng := rand.New(rand.NewSource(4))
	round := func() {
		for i := 0; i < 4; i++ {
			rng.Read(payload)
			tx := TransmitWS(ws, cfg, frame)
			link.QueueDeliver(tx, float64(i)*0.02, nil)
		}
		if got := link.FlushDeliveries(); len(got) != 4 {
			t.Fatalf("flushed %d receptions, want 4", len(got))
		}
	}
	round() // warm all buffers
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("queued receive allocates %v times per 4-frame batch in steady state", allocs)
	}
}

// BenchmarkReceiveSequential and BenchmarkReceiveBatched measure the full
// receive chain (front end + decode) per frame with and without batching.
func benchReceive(b *testing.B, batch int) {
	cfg := DefaultConfig()
	ws := NewWorkspace()
	link := &Link{
		Cfg:   cfg,
		Model: channel.NewStaticModel(17, nil),
		Rng:   rand.New(rand.NewSource(3)),
		WS:    ws,
	}
	payload := make([]byte, 240)
	rand.New(rand.NewSource(4)).Read(payload)
	frame := Frame{Header: []byte{1, 2}, Payload: payload, Rate: rate.ByIndex(3)}
	b.ReportAllocs()
	b.ResetTimer()
	i := 0
	for n := 0; n < b.N; n++ {
		tx := TransmitWS(ws, cfg, frame)
		if batch <= 0 {
			link.Deliver(tx, float64(i)*0.02, nil)
			i++
			continue
		}
		link.QueueDeliver(tx, float64(i)*0.02, nil)
		i++
		if ws.PendingReceives() == batch {
			link.FlushDeliveries()
		}
	}
	if batch > 0 {
		link.FlushDeliveries()
	}
}

func BenchmarkReceiveSequential(b *testing.B) { benchReceive(b, 0) }
func BenchmarkReceiveBatched8(b *testing.B)   { benchReceive(b, 8) }
