package phy

import (
	"math"
	"math/rand"
	"testing"

	"softrate/internal/channel"
	"softrate/internal/rate"
)

// deliverPair runs the same frame sequence through a workspace-backed link
// and a fresh-allocation link fed by identical PRNG streams, handing both
// receptions to check after every frame.
func deliverPair(t *testing.T, frames int, withBursts bool, check func(i int, ws, fresh *Reception)) {
	t.Helper()
	cfg := DefaultConfig()
	mkLink := func(ws *Workspace) (*Link, *rand.Rand) {
		return &Link{
			Cfg:   cfg,
			Model: channel.NewStaticModel(9, channel.NewRayleigh(rand.New(rand.NewSource(5)), 40, 0)),
			Rng:   rand.New(rand.NewSource(6)),
			WS:    ws,
		}, rand.New(rand.NewSource(7))
	}
	ws := NewWorkspace()
	wsLink, wsRng := mkLink(ws)
	freshLink, freshRng := mkLink(nil)
	payload := make([]byte, 300)
	for i := 0; i < frames; i++ {
		r := rate.ByIndex(i % 6)
		wsRng.Read(payload)
		wsTx := TransmitWS(ws, cfg, Frame{Header: []byte{1, 2}, Payload: payload, Rate: r, Postamble: i%3 == 0})
		var bursts []Burst
		if withBursts && i%2 == 0 {
			air := wsTx.Airtime()
			bursts = []Burst{{Start: float64(i)*0.02 + air*0.3, End: float64(i)*0.02 + air*0.7, Power: 40}}
		}
		wsRx := wsLink.Deliver(wsTx, float64(i)*0.02, bursts)

		freshRng.Read(payload)
		freshTx := Transmit(cfg, Frame{Header: []byte{1, 2}, Payload: payload, Rate: r, Postamble: i%3 == 0})
		freshRx := freshLink.Deliver(freshTx, float64(i)*0.02, bursts)
		check(i, wsRx, freshRx)
	}
}

// TestWorkspaceChainMatchesFresh pins the tentpole contract at the PHY
// level: a warm workspace's transmit/deliver/receive chain is bit-for-bit
// the fresh-allocation chain — verdicts, hints, SNR estimate, ground
// truth — across rates, postambles and interference bursts.
func TestWorkspaceChainMatchesFresh(t *testing.T) {
	deliverPair(t, 40, true, func(i int, ws, fresh *Reception) {
		if ws.Detected != fresh.Detected || ws.HeaderOK != fresh.HeaderOK ||
			ws.PayloadOK != fresh.PayloadOK || ws.PostambleDetected != fresh.PostambleDetected {
			t.Fatalf("frame %d: verdicts differ: ws %+v fresh %+v", i, ws, fresh)
		}
		if math.Float64bits(ws.SNREstDB) != math.Float64bits(fresh.SNREstDB) {
			t.Fatalf("frame %d: SNR estimate differs: %v vs %v", i, ws.SNREstDB, fresh.SNREstDB)
		}
		if ws.BitErrors != fresh.BitErrors || math.Float64bits(ws.TrueBER) != math.Float64bits(fresh.TrueBER) {
			t.Fatalf("frame %d: ground truth differs", i)
		}
		if len(ws.Hints) != len(fresh.Hints) {
			t.Fatalf("frame %d: hint count %d vs %d", i, len(ws.Hints), len(fresh.Hints))
		}
		for k := range ws.Hints {
			if math.Float64bits(ws.Hints[k]) != math.Float64bits(fresh.Hints[k]) {
				t.Fatalf("frame %d: hint %d differs: %v vs %v", i, k, ws.Hints[k], fresh.Hints[k])
			}
		}
		if string(ws.Header) != string(fresh.Header) || string(ws.Payload) != string(fresh.Payload) {
			t.Fatalf("frame %d: decoded bytes differ", i)
		}
	})
}

// TestReceiveDoesNotAllocateSteadyState pins the satellite requirement:
// with a warm workspace, the full deliver (channel sampling + receive +
// decode) and the transmit encode perform zero heap allocations.
func TestReceiveDoesNotAllocateSteadyState(t *testing.T) {
	cfg := DefaultConfig()
	ws := NewWorkspace()
	link := &Link{
		Cfg:   cfg,
		Model: channel.NewStaticModel(14, nil),
		Rng:   rand.New(rand.NewSource(2)),
		WS:    ws,
	}
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 240)
	rng.Read(payload)
	frame := Frame{Header: []byte{9, 9, 9, 9}, Payload: payload, Rate: rate.ByIndex(4)}
	// Warm every plane across the rate set once.
	for ri := 0; ri < 6; ri++ {
		f := frame
		f.Rate = rate.ByIndex(ri)
		link.Deliver(TransmitWS(ws, cfg, f), 0, nil)
	}
	i := 0
	if avg := testing.AllocsPerRun(10, func() {
		tx := TransmitWS(ws, cfg, frame)
		link.Deliver(tx, float64(i)*0.01, nil)
		i++
	}); avg != 0 {
		t.Errorf("warm transmit+deliver: %v allocs per frame, want 0", avg)
	}
	tx := TransmitWS(ws, cfg, frame)
	gains := make([]complex128, tx.NumSymbols())
	ivar := make([]float64, tx.NumSymbols())
	for j := range gains {
		gains[j] = 1
	}
	if avg := testing.AllocsPerRun(10, func() {
		ReceiveWS(ws, cfg, tx, gains, ivar, link.Rng)
	}); avg != 0 {
		t.Errorf("warm ReceiveWS: %v allocs per frame, want 0", avg)
	}
}

// TestCalibrateWorkersByteIdentical checks the calibration pipeline's
// engine-parity contract on a reduced grid: any worker count produces the
// exact table the serial master-stream order defines.
func TestCalibrateWorkersByteIdentical(t *testing.T) {
	mk := func(workers int) *BERModel {
		return Calibrate(CalibrationConfig{
			PHY:            DefaultConfig(),
			Rates:          []rate.Rate{rate.ByIndex(0), rate.ByIndex(3), rate.ByIndex(5)},
			SNRdB:          []float64{2, 6, 10, 14},
			FramesPerPoint: 3,
			PayloadBytes:   60,
			Seed:           11,
			Workers:        workers,
		})
	}
	serial := mk(1)
	parallel := mk(7)
	for ri := range serial.BER {
		for k := range serial.BER[ri] {
			if math.Float64bits(serial.BER[ri][k]) != math.Float64bits(parallel.BER[ri][k]) {
				t.Fatalf("BER[%d][%d] differs: w1 %v, w7 %v", ri, k, serial.BER[ri][k], parallel.BER[ri][k])
			}
			if math.Float64bits(serial.Lambda[ri][k]) != math.Float64bits(parallel.Lambda[ri][k]) {
				t.Fatalf("Lambda[%d][%d] differs: w1 %v, w7 %v", ri, k, serial.Lambda[ri][k], parallel.Lambda[ri][k])
			}
		}
	}
}
