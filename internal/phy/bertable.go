package phy

import (
	"math"
	"math/rand"

	"softrate/internal/channel"
	"softrate/internal/rate"
	"softrate/internal/softphy"
)

// BERModel is an empirical characterization of this PHY: for each rate and
// each SNR grid point it records the post-decoder bit error rate (measured
// via SoftPHY hints, so it is meaningful even deep below one error per
// frame) and the frame error-event rate λ (errors per information bit,
// from measured frame error rates, so P(deliver an N-bit frame) = e^{-λN}).
//
// It plays the role the authors' software-radio packet traces play in
// their ns-3 evaluation (§6.1): a faithful statistical summary of the real
// PHY that the network simulator can query cheaply. It is produced by
// Calibrate — Monte Carlo over the actual encode/channel/BCJR chain — and
// a pre-generated copy (DefaultBERModel) is embedded so simulations start
// instantly; `go run ./cmd/calibrate` regenerates it.
type BERModel struct {
	// SNRdB is the calibration grid (ascending).
	SNRdB []float64
	// BER[rateIdx][k] is the mean post-decode BER at SNRdB[k].
	BER [][]float64
	// Lambda[rateIdx][k] is the error-event rate per info bit at
	// SNRdB[k]; 0 means no frame errors were observed.
	Lambda [][]float64
}

// CalibrationConfig controls Calibrate.
type CalibrationConfig struct {
	// PHY is the PHY configuration to characterize.
	PHY Config
	// Rates to calibrate (index order defines BERModel rows).
	Rates []rate.Rate
	// SNRdB grid points.
	SNRdB []float64
	// FramesPerPoint is the Monte Carlo depth (default 8).
	FramesPerPoint int
	// PayloadBytes is the probe frame size (default 250).
	PayloadBytes int
	// Seed makes the calibration reproducible.
	Seed int64
}

// DefaultCalibrationGrid returns the standard grid: -2..30 dB in 1 dB
// steps.
func DefaultCalibrationGrid() []float64 {
	var g []float64
	for s := -2.0; s <= 30.0; s++ {
		g = append(g, s)
	}
	return g
}

// Calibrate measures the PHY by Monte Carlo: constant-SNR AWGN channel,
// real encode/decode chain, hint-based BER estimation.
func Calibrate(cc CalibrationConfig) *BERModel {
	if cc.FramesPerPoint <= 0 {
		cc.FramesPerPoint = 8
	}
	if cc.PayloadBytes <= 0 {
		cc.PayloadBytes = 250
	}
	if len(cc.SNRdB) == 0 {
		cc.SNRdB = DefaultCalibrationGrid()
	}
	if len(cc.Rates) == 0 {
		cc.Rates = rate.Evaluation()
	}
	rng := rand.New(rand.NewSource(cc.Seed))
	m := &BERModel{SNRdB: append([]float64{}, cc.SNRdB...)}
	for _, r := range cc.Rates {
		bers := make([]float64, len(cc.SNRdB))
		lambdas := make([]float64, len(cc.SNRdB))
		for k, snr := range cc.SNRdB {
			link := &Link{
				Cfg:   cc.PHY,
				Model: channel.NewStaticModel(snr, nil),
				Rng:   rng,
			}
			var hintBERSum float64
			frameErrs := 0
			var nBits int
			for i := 0; i < cc.FramesPerPoint; i++ {
				payload := make([]byte, cc.PayloadBytes)
				rng.Read(payload)
				tx := Transmit(cc.PHY, Frame{Header: []byte{1, 2, 3, 4}, Payload: payload, Rate: r})
				rx := link.Deliver(tx, float64(i), nil)
				nBits = len(tx.InfoBits())
				if !rx.Detected || rx.BitErrors > 0 {
					frameErrs++
				}
				if rx.Detected {
					hintBERSum += math.Log(math.Max(softphy.FrameBER(rx.Hints), 1e-12))
				} else {
					hintBERSum += math.Log(0.4)
				}
			}
			bers[k] = math.Exp(hintBERSum / float64(cc.FramesPerPoint))
			fer := float64(frameErrs) / float64(cc.FramesPerPoint)
			if fer >= 1 {
				fer = 1 - 1e-9
			}
			if fer > 0 {
				lambdas[k] = -math.Log(1-fer) / float64(nBits)
			}
		}
		m.BER = append(m.BER, bers)
		m.Lambda = append(m.Lambda, lambdas)
	}
	return m
}

// BERAt returns the interpolated post-decode BER for rate index ri at the
// given instantaneous SNR. Interpolation is log-linear in BER over the dB
// axis; beyond the grid it clamps to 0.5 below and extrapolates the final
// slope above (floored at 1e-12).
func (m *BERModel) BERAt(ri int, snrDB float64) float64 {
	return m.interp(m.BER[ri], snrDB, 0.5, 1e-12)
}

// LambdaAt returns the interpolated error-event rate per info bit.
func (m *BERModel) LambdaAt(ri int, snrDB float64) float64 {
	return m.interp(m.Lambda[ri], snrDB, 1e-2, 0)
}

// interp interpolates log(v) linearly over the dB grid. Zeros in v are
// treated as the floor value; results at or below the floor return floor.
func (m *BERModel) interp(v []float64, snrDB, ceil, floor float64) float64 {
	g := m.SNRdB
	logv := func(i int) float64 {
		x := v[i]
		if x <= floor || x == 0 {
			if floor == 0 {
				return math.Inf(-1)
			}
			x = floor
		}
		return math.Log(x)
	}
	switch {
	case snrDB <= g[0]:
		return ceil
	case snrDB >= g[len(g)-1]:
		// Extrapolate with the slope of the last decade of grid.
		n := len(g)
		a, b := logv(n-6), logv(n-1)
		if math.IsInf(a, -1) || math.IsInf(b, -1) {
			return floor
		}
		slope := (b - a) / (g[n-1] - g[n-6])
		x := b + slope*(snrDB-g[n-1])
		val := math.Exp(x)
		if val < floor {
			return floor
		}
		if val > ceil {
			return ceil
		}
		return val
	}
	// Binary-search-free scan (grids are small).
	k := 0
	for k+1 < len(g) && g[k+1] < snrDB {
		k++
	}
	a, b := logv(k), logv(k+1)
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return floor
	}
	if math.IsInf(b, -1) {
		b = math.Log(math.Max(floor, 1e-15))
	}
	if math.IsInf(a, -1) {
		a = math.Log(math.Max(floor, 1e-15))
	}
	f := (snrDB - g[k]) / (g[k+1] - g[k])
	val := math.Exp(a + f*(b-a))
	if val > ceil {
		return ceil
	}
	if val < floor {
		return floor
	}
	return val
}

// DeliverProb returns the probability that a frame of nInfoBits at rate ri
// survives a sequence of per-symbol SNRs, each symbol carrying bitsPerSym
// info bits: P = exp(-Σ λ(snr_j)·bits_j).
func (m *BERModel) DeliverProb(ri int, snrsDB []float64, bitsPerSym float64) float64 {
	var lam float64
	for _, s := range snrsDB {
		lam += m.LambdaAt(ri, s) * bitsPerSym
	}
	return math.Exp(-lam)
}

// MeanBER returns the mean post-decode BER over a sequence of per-symbol
// SNRs at rate ri.
func (m *BERModel) MeanBER(ri int, snrsDB []float64) float64 {
	if len(snrsDB) == 0 {
		return 0
	}
	var sum float64
	for _, s := range snrsDB {
		sum += m.BERAt(ri, s)
	}
	return sum / float64(len(snrsDB))
}
