package phy

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"softrate/internal/channel"
	"softrate/internal/ofdm"
	"softrate/internal/rate"
	"softrate/internal/softphy"
)

// BERModel is an empirical characterization of this PHY: for each rate and
// each SNR grid point it records the post-decoder bit error rate (measured
// via SoftPHY hints, so it is meaningful even deep below one error per
// frame) and the frame error-event rate λ (errors per information bit,
// from measured frame error rates, so P(deliver an N-bit frame) = e^{-λN}).
//
// It plays the role the authors' software-radio packet traces play in
// their ns-3 evaluation (§6.1): a faithful statistical summary of the real
// PHY that the network simulator can query cheaply. It is produced by
// Calibrate — Monte Carlo over the actual encode/channel/BCJR chain — and
// a pre-generated copy (DefaultBERModel) is embedded so simulations start
// instantly; `go run ./cmd/calibrate` regenerates it.
type BERModel struct {
	// SNRdB is the calibration grid (ascending).
	SNRdB []float64
	// BER[rateIdx][k] is the mean post-decode BER at SNRdB[k].
	BER [][]float64
	// Lambda[rateIdx][k] is the error-event rate per info bit at
	// SNRdB[k]; 0 means no frame errors were observed.
	Lambda [][]float64
}

// CalibrationConfig controls Calibrate.
type CalibrationConfig struct {
	// PHY is the PHY configuration to characterize.
	PHY Config
	// Rates to calibrate (index order defines BERModel rows).
	Rates []rate.Rate
	// SNRdB grid points.
	SNRdB []float64
	// FramesPerPoint is the Monte Carlo depth (default 8).
	FramesPerPoint int
	// PayloadBytes is the probe frame size (default 250).
	PayloadBytes int
	// Seed makes the calibration reproducible.
	Seed int64
	// Workers bounds the decode-stage parallelism; zero or negative means
	// one worker per CPU, matching the experiment engine. The calibration
	// is byte-identical at any worker count: payloads and receiver noise
	// are drawn serially from the master stream (detection is pure, so
	// each frame's consumption is known up front) and only the pure decode
	// work fans out.
	Workers int
	// DecodeBatch sets how many frames each worker claims and decodes as
	// one lockstep batch (QueueReceive/FlushReceptions). Zero means the
	// default of 8; negative disables batching (per-frame ReceiveWS).
	// Results are bit-identical at every setting — the batch decoder is
	// exact — so the knob trades nothing but speed.
	DecodeBatch int
}

// DefaultCalibrationGrid returns the standard grid: -2..30 dB in 1 dB
// steps.
func DefaultCalibrationGrid() []float64 {
	var g []float64
	for s := -2.0; s <= 30.0; s++ {
		g = append(g, s)
	}
	return g
}

// replayNorms replays a pre-drawn slice of normal variates; it panics if a
// consumer asks for more than were predicted, which would mean the draw
// prediction (Transmission.NoiseDraws) diverged from the receive chain.
type replayNorms struct {
	v []float64
	i int
}

func (r *replayNorms) NormFloat64() float64 {
	x := r.v[r.i]
	r.i++
	return x
}

// eachWithWorkspace runs fn(ws, i) for every i in [0, n) across a worker
// pool, each worker owning one Workspace. workers <= 0 means one per CPU.
// It mirrors the experiment engine's MapWith contract (indexed claims,
// per-worker scratch, worker-count-independent results) without making the
// low-level PHY package depend on experiment-harness infrastructure.
func eachWithWorkspace(workers, n int, fn func(ws *Workspace, i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ws := NewWorkspace()
		for i := 0; i < n; i++ {
			fn(ws, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := NewWorkspace()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(ws, i)
			}
		}()
	}
	wg.Wait()
}

// calFrame is one pre-generated calibration frame: everything Receive
// needs, with its randomness already drawn from the master stream.
type calFrame struct {
	tx       *Transmission
	gains    []complex128
	ivar     []float64
	noise    []float64
	detected bool
}

// calResult is the per-frame summary the aggregation stage folds in master
// order.
type calResult struct {
	detected  bool
	errored   bool // undetected or any payload bit error
	logEstBER float64
	nBits     int
}

// calSummarize folds one decoded calibration frame into the per-frame
// summary the serial aggregation stage consumes.
func calSummarize(rx *Reception, f calFrame) calResult {
	res := calResult{
		detected: rx.Detected,
		errored:  !rx.Detected || rx.BitErrors > 0,
		nBits:    len(f.tx.InfoBits()),
	}
	if rx.Detected {
		res.logEstBER = math.Log(math.Max(softphy.FrameBER(rx.Hints), 1e-12))
	} else {
		res.logEstBER = math.Log(0.4)
	}
	return res
}

// Calibrate measures the PHY by Monte Carlo: constant-SNR AWGN channel,
// real encode/decode chain, hint-based BER estimation.
//
// The pipeline is two-stage so the expensive decodes parallelize without
// perturbing the sequential master PRNG: a serial pass draws each frame's
// payload and receiver noise (preamble detection is pure, so the exact
// number of variates a frame consumes is known before decoding it), then
// the decode stage fans the frames across cc.Workers goroutines, each with
// its own Workspace, replaying the pre-drawn noise. Results are aggregated
// in frame order, so the output is byte-identical at any worker count —
// including to the historical fully-serial implementation.
func Calibrate(cc CalibrationConfig) *BERModel {
	if cc.FramesPerPoint <= 0 {
		cc.FramesPerPoint = 8
	}
	if cc.PayloadBytes <= 0 {
		cc.PayloadBytes = 250
	}
	if len(cc.SNRdB) == 0 {
		cc.SNRdB = DefaultCalibrationGrid()
	}
	if len(cc.Rates) == 0 {
		cc.Rates = rate.Evaluation()
	}
	rng := rand.New(rand.NewSource(cc.Seed))
	m := &BERModel{SNRdB: append([]float64{}, cc.SNRdB...)}
	T := cc.PHY.Mode.SymbolTime()
	for _, r := range cc.Rates {
		// Stage 1 (serial, owns the master rng): generate every frame of
		// this rate row. One row at a time bounds the noise buffers held
		// in flight to a few dozen megabytes.
		frames := make([]calFrame, 0, len(cc.SNRdB)*cc.FramesPerPoint)
		for _, snr := range cc.SNRdB {
			model := channel.NewStaticModel(snr, nil)
			for i := 0; i < cc.FramesPerPoint; i++ {
				payload := make([]byte, cc.PayloadBytes)
				rng.Read(payload)
				tx := Transmit(cc.PHY, Frame{Header: []byte{1, 2, 3, 4}, Payload: payload, Rate: r})
				n := tx.NumSymbols()
				gains := make([]complex128, n)
				ivar := make([]float64, n)
				start := float64(i)
				for j := 0; j < n; j++ {
					gains[j] = model.Gain(start + float64(j)*T + T/2)
				}
				det := PreambleDetects(cc.PHY, gains[:ofdm.PreambleSymbols], ivar[:ofdm.PreambleSymbols])
				noise := make([]float64, tx.NoiseDraws(det))
				for j := range noise {
					noise[j] = rng.NormFloat64()
				}
				frames = append(frames, calFrame{tx: tx, gains: gains, ivar: ivar, noise: noise, detected: det})
			}
		}

		// Stage 2 (parallel, pure): decode each frame from its replayed
		// noise stream. With batching on, each worker claims a contiguous
		// chunk of frames, replays their noise through the queued front end
		// and decodes the chunk in one lockstep batch — bit-identical to
		// the per-frame path, since the batch decoder is exact and each
		// frame consumes only its own pre-drawn variates.
		results := make([]calResult, len(frames))
		batch := cc.DecodeBatch
		if batch == 0 {
			batch = 8
		}
		if batch < 1 {
			eachWithWorkspace(cc.Workers, len(frames), func(ws *Workspace, i int) {
				f := frames[i]
				rx := ReceiveWS(ws, cc.PHY, f.tx, f.gains, f.ivar, &replayNorms{v: f.noise})
				results[i] = calSummarize(rx, f)
			})
		} else {
			nChunks := (len(frames) + batch - 1) / batch
			eachWithWorkspace(cc.Workers, nChunks, func(ws *Workspace, c int) {
				lo, hi := c*batch, (c+1)*batch
				if hi > len(frames) {
					hi = len(frames)
				}
				for i := lo; i < hi; i++ {
					f := frames[i]
					ws.QueueReceive(cc.PHY, f.tx, f.gains, f.ivar, &replayNorms{v: f.noise})
				}
				for k, rx := range ws.FlushReceptions() {
					results[lo+k] = calSummarize(rx, frames[lo+k])
				}
			})
		}

		// Stage 3 (serial): fold per-point sums in frame order — the same
		// floating-point summation the historical loop performed.
		bers := make([]float64, len(cc.SNRdB))
		lambdas := make([]float64, len(cc.SNRdB))
		for k := range cc.SNRdB {
			var hintBERSum float64
			frameErrs := 0
			var nBits int
			for i := 0; i < cc.FramesPerPoint; i++ {
				res := results[k*cc.FramesPerPoint+i]
				nBits = res.nBits
				if res.errored {
					frameErrs++
				}
				hintBERSum += res.logEstBER
			}
			bers[k] = math.Exp(hintBERSum / float64(cc.FramesPerPoint))
			fer := float64(frameErrs) / float64(cc.FramesPerPoint)
			if fer >= 1 {
				fer = 1 - 1e-9
			}
			if fer > 0 {
				lambdas[k] = -math.Log(1-fer) / float64(nBits)
			}
		}
		m.BER = append(m.BER, bers)
		m.Lambda = append(m.Lambda, lambdas)
	}
	return m
}

// BERAt returns the interpolated post-decode BER for rate index ri at the
// given instantaneous SNR. Interpolation is log-linear in BER over the dB
// axis; beyond the grid it clamps to 0.5 below and extrapolates the final
// slope above (floored at 1e-12).
func (m *BERModel) BERAt(ri int, snrDB float64) float64 {
	return m.interp(m.BER[ri], snrDB, 0.5, 1e-12)
}

// LambdaAt returns the interpolated error-event rate per info bit.
func (m *BERModel) LambdaAt(ri int, snrDB float64) float64 {
	return m.interp(m.Lambda[ri], snrDB, 1e-2, 0)
}

// interp interpolates log(v) linearly over the dB grid. Zeros in v are
// treated as the floor value; results at or below the floor return floor.
func (m *BERModel) interp(v []float64, snrDB, ceil, floor float64) float64 {
	g := m.SNRdB
	logv := func(i int) float64 {
		x := v[i]
		if x <= floor || x == 0 {
			if floor == 0 {
				return math.Inf(-1)
			}
			x = floor
		}
		return math.Log(x)
	}
	switch {
	case snrDB <= g[0]:
		return ceil
	case snrDB >= g[len(g)-1]:
		// Extrapolate with the slope of the last decade of grid.
		n := len(g)
		a, b := logv(n-6), logv(n-1)
		if math.IsInf(a, -1) || math.IsInf(b, -1) {
			return floor
		}
		slope := (b - a) / (g[n-1] - g[n-6])
		x := b + slope*(snrDB-g[n-1])
		val := math.Exp(x)
		if val < floor {
			return floor
		}
		if val > ceil {
			return ceil
		}
		return val
	}
	// Binary-search-free scan (grids are small).
	k := 0
	for k+1 < len(g) && g[k+1] < snrDB {
		k++
	}
	a, b := logv(k), logv(k+1)
	if math.IsInf(a, -1) && math.IsInf(b, -1) {
		return floor
	}
	if math.IsInf(b, -1) {
		b = math.Log(math.Max(floor, 1e-15))
	}
	if math.IsInf(a, -1) {
		a = math.Log(math.Max(floor, 1e-15))
	}
	f := (snrDB - g[k]) / (g[k+1] - g[k])
	val := math.Exp(a + f*(b-a))
	if val > ceil {
		return ceil
	}
	if val < floor {
		return floor
	}
	return val
}

// DeliverProb returns the probability that a frame of nInfoBits at rate ri
// survives a sequence of per-symbol SNRs, each symbol carrying bitsPerSym
// info bits: P = exp(-Σ λ(snr_j)·bits_j).
func (m *BERModel) DeliverProb(ri int, snrsDB []float64, bitsPerSym float64) float64 {
	var lam float64
	for _, s := range snrsDB {
		lam += m.LambdaAt(ri, s) * bitsPerSym
	}
	return math.Exp(-lam)
}

// MeanBER returns the mean post-decode BER over a sequence of per-symbol
// SNRs at rate ri.
func (m *BERModel) MeanBER(ri int, snrsDB []float64) float64 {
	if len(snrsDB) == 0 {
		return 0
	}
	var sum float64
	for _, s := range snrsDB {
		sum += m.BERAt(ri, s)
	}
	return sum / float64(len(snrsDB))
}
