package ofdm

import "sync"

// The 802.11a block interleaver. Within each OFDM symbol, coded bits are
// permuted in two steps so that (a) adjacent coded bits land on
// non-adjacent subcarriers and (b) they alternate between more and less
// significant constellation bit positions. Property (a) is what makes a
// collision distinguishable from frequency-selective fading: fading takes
// out clusters of adjacent subcarriers while a collision degrades the whole
// symbol (§4, "Interference detector").

// Permutation returns the interleaver mapping for one OFDM symbol carrying
// ncbps coded bits at nbpsc coded bits per subcarrier: output position
// perm[k] holds input bit k. ncbps must be a multiple of 16 (all modes in
// this repository satisfy this).
func Permutation(ncbps, nbpsc int) []int {
	if ncbps%16 != 0 {
		panic("ofdm: N_CBPS must be a multiple of 16")
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: write row-wise, read column-wise over 16
		// columns.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: rotate bits within groups of s so that
		// coded bits alternate significance.
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		perm[k] = j
	}
	return perm
}

// permCache memoizes Permutation results per (ncbps, nbpsc) pair. Only a
// handful of combinations exist (modes × modulation schemes), but the PHY
// historically rebuilt the table for every transmitted and received
// segment — two allocations and O(ncbps) work per frame for a permutation
// that never changes.
var permCache sync.Map // key uint64: ncbps<<8 | nbpsc -> []int

// CachedPermutation returns the shared interleaver mapping for the given
// (ncbps, nbpsc) pair, computing it on first use. Callers must treat the
// slice as read-only.
func CachedPermutation(ncbps, nbpsc int) []int {
	key := uint64(ncbps)<<8 | uint64(nbpsc)
	if p, ok := permCache.Load(key); ok {
		return p.([]int)
	}
	p, _ := permCache.LoadOrStore(key, Permutation(ncbps, nbpsc))
	return p.([]int)
}

// Inverse returns the inverse of a permutation.
func Inverse(perm []int) []int {
	inv := make([]int, len(perm))
	for k, v := range perm {
		inv[v] = k
	}
	return inv
}

// InterleaveBits permutes the coded bits of a whole frame symbol-by-symbol
// using perm (from Permutation). len(bits) must be a multiple of
// len(perm); the PHY pads frames to whole OFDM symbols first.
func InterleaveBits(bits []byte, perm []int) []byte {
	return InterleaveBitsInto(make([]byte, len(bits)), bits, perm)
}

// InterleaveBitsInto is InterleaveBits writing into a caller-provided
// buffer of len(bits) bytes (typically per-worker scratch); it returns
// out. out must not alias bits.
func InterleaveBitsInto(out, bits []byte, perm []int) []byte {
	n := len(perm)
	if len(bits)%n != 0 {
		panic("ofdm: frame not padded to whole symbols")
	}
	out = out[:len(bits)]
	for base := 0; base < len(bits); base += n {
		for k, v := range perm {
			out[base+v] = bits[base+k]
		}
	}
	return out
}

// DeinterleaveLLRs inverts the interleaving on per-coded-bit LLRs,
// restoring decoder order.
func DeinterleaveLLRs(llrs []float64, perm []int) []float64 {
	return DeinterleaveLLRsInto(make([]float64, len(llrs)), llrs, perm)
}

// DeinterleaveLLRsInto is DeinterleaveLLRs writing into a caller-provided
// buffer of len(llrs) entries; it returns out. out must not alias llrs.
func DeinterleaveLLRsInto(out, llrs []float64, perm []int) []float64 {
	n := len(perm)
	if len(llrs)%n != 0 {
		panic("ofdm: LLR stream not a whole number of symbols")
	}
	out = out[:len(llrs)]
	for base := 0; base < len(llrs); base += n {
		for k, v := range perm {
			out[base+k] = llrs[base+v]
		}
	}
	return out
}
