package ofdm

// The 802.11a block interleaver. Within each OFDM symbol, coded bits are
// permuted in two steps so that (a) adjacent coded bits land on
// non-adjacent subcarriers and (b) they alternate between more and less
// significant constellation bit positions. Property (a) is what makes a
// collision distinguishable from frequency-selective fading: fading takes
// out clusters of adjacent subcarriers while a collision degrades the whole
// symbol (§4, "Interference detector").

// Permutation returns the interleaver mapping for one OFDM symbol carrying
// ncbps coded bits at nbpsc coded bits per subcarrier: output position
// perm[k] holds input bit k. ncbps must be a multiple of 16 (all modes in
// this repository satisfy this).
func Permutation(ncbps, nbpsc int) []int {
	if ncbps%16 != 0 {
		panic("ofdm: N_CBPS must be a multiple of 16")
	}
	s := nbpsc / 2
	if s < 1 {
		s = 1
	}
	perm := make([]int, ncbps)
	for k := 0; k < ncbps; k++ {
		// First permutation: write row-wise, read column-wise over 16
		// columns.
		i := (ncbps/16)*(k%16) + k/16
		// Second permutation: rotate bits within groups of s so that
		// coded bits alternate significance.
		j := s*(i/s) + (i+ncbps-16*i/ncbps)%s
		perm[k] = j
	}
	return perm
}

// Inverse returns the inverse of a permutation.
func Inverse(perm []int) []int {
	inv := make([]int, len(perm))
	for k, v := range perm {
		inv[v] = k
	}
	return inv
}

// InterleaveBits permutes the coded bits of a whole frame symbol-by-symbol
// using perm (from Permutation). len(bits) must be a multiple of
// len(perm); the PHY pads frames to whole OFDM symbols first.
func InterleaveBits(bits []byte, perm []int) []byte {
	n := len(perm)
	if len(bits)%n != 0 {
		panic("ofdm: frame not padded to whole symbols")
	}
	out := make([]byte, len(bits))
	for base := 0; base < len(bits); base += n {
		for k, v := range perm {
			out[base+v] = bits[base+k]
		}
	}
	return out
}

// DeinterleaveLLRs inverts the interleaving on per-coded-bit LLRs,
// restoring decoder order.
func DeinterleaveLLRs(llrs []float64, perm []int) []float64 {
	n := len(perm)
	if len(llrs)%n != 0 {
		panic("ofdm: LLR stream not a whole number of symbols")
	}
	out := make([]float64, len(llrs))
	for base := 0; base < len(llrs); base += n {
		for k, v := range perm {
			out[base+k] = llrs[base+v]
		}
	}
	return out
}
