package ofdm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"softrate/internal/bitutil"
	"softrate/internal/modulation"
	"softrate/internal/rate"
)

func TestSymbolTimesMatchTable3(t *testing.T) {
	// Table 3: long range 2.6 ms, short range 160 us, simulation 8 us.
	cases := []struct {
		m    Mode
		want float64
		tol  float64
	}{
		{LongRange, 2.6e-3, 0.05e-3}, // paper rounds 2.56 ms to 2.6
		{ShortRange, 160e-6, 1e-9},
		{Simulation, 8e-6, 1e-12},
		{Standard, 4e-6, 1e-12},
	}
	for _, c := range cases {
		if got := c.m.SymbolTime(); math.Abs(got-c.want) > c.tol {
			t.Errorf("%s symbol time = %v, want %v", c.m.Name, got, c.want)
		}
	}
}

func TestDataTonesProportion(t *testing.T) {
	for _, m := range Modes() {
		if m.DataTones*4 != m.Tones*3 {
			t.Errorf("%s: %d data tones of %d, want 3/4", m.Name, m.DataTones, m.Tones)
		}
	}
}

func TestCodedBitsPerSymbolMultipleOf16(t *testing.T) {
	// Required by the interleaver.
	for _, m := range Modes() {
		for _, s := range []modulation.Scheme{modulation.BPSK, modulation.QPSK, modulation.QAM16, modulation.QAM64} {
			if m.CodedBitsPerSymbol(s)%16 != 0 {
				t.Errorf("%s/%v: N_CBPS=%d not a multiple of 16", m.Name, s, m.CodedBitsPerSymbol(s))
			}
		}
	}
}

func TestInfoBitsPerSymbolStandardRates(t *testing.T) {
	// 802.11a N_DBPS at 48 data tones: 24, 36, 48, 72, 96, 144, 192, 216.
	want := []int{24, 36, 48, 72, 96, 144, 192, 216}
	for i, r := range rate.All() {
		if got := Standard.InfoBitsPerSymbol(r); got != want[i] {
			t.Errorf("%v: N_DBPS=%d, want %d", r, got, want[i])
		}
	}
}

func TestAirtimeInverseToRate(t *testing.T) {
	// Higher rates must never take longer for the same payload. (Ties are
	// possible in modes with very large symbols, where two adjacent rates
	// can need the same whole number of OFDM symbols.)
	for _, m := range Modes() {
		prev := math.Inf(1)
		for _, r := range rate.All() {
			at := m.PayloadAirtime(1400, r, false)
			if at > prev {
				t.Errorf("%s: airtime increased at %v", m.Name, r)
			}
			prev = at
		}
		hi := m.PayloadAirtime(1400, rate.ByIndex(7), false)
		lo := m.PayloadAirtime(1400, rate.ByIndex(0), false)
		if hi*2 > lo {
			t.Errorf("%s: 54 Mbps airtime %v not well under 6 Mbps airtime %v", m.Name, hi, lo)
		}
	}
}

func TestAirtime54MbpsApproximation(t *testing.T) {
	// 1400 bytes at 54 Mbps is ~208 us of payload; with preamble+header
	// the Standard-mode frame should land in 210-240 us.
	at := Standard.PayloadAirtime(1400, rate.ByIndex(7), false)
	if at < 210e-6 || at > 240e-6 {
		t.Fatalf("1400B @ 54 Mbps airtime = %v us", at*1e6)
	}
}

func TestAirtimePostambleAddsTwoSymbols(t *testing.T) {
	for _, m := range Modes() {
		r := rate.ByIndex(3)
		d := m.PayloadAirtime(500, r, true) - m.PayloadAirtime(500, r, false)
		want := float64(PostambleSymbols) * m.SymbolTime()
		if math.Abs(d-want) > 1e-12 {
			t.Errorf("%s: postamble adds %v, want %v", m.Name, d, want)
		}
	}
}

func TestShortRangeFrameUnderMillisecond(t *testing.T) {
	// §5.1: short-range mode frames last under a millisecond, which is
	// what makes walking-speed mobility experiments possible. The paper
	// collects its short-range traces with "small frames" — 100 bytes.
	at := ShortRange.PayloadAirtime(100, rate.ByIndex(2), false)
	if at >= 1.1e-3 {
		t.Fatalf("short-range 100B QPSK1/2 frame lasts %v ms", at*1e3)
	}
	// §5.1: long-range frames last tens of milliseconds.
	atLong := LongRange.PayloadAirtime(960, rate.ByIndex(2), false)
	if atLong < 5e-3 {
		t.Fatalf("long-range frame lasts only %v ms", atLong*1e3)
	}
}

func TestPermutationBijective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nbpsc := []int{1, 2, 4, 6}[rng.Intn(4)]
		ncbps := 16 * (1 + rng.Intn(48)) * nbpsc
		// Keep ncbps a multiple of 16 regardless of nbpsc product shape.
		ncbps = ncbps / 16 * 16
		perm := Permutation(ncbps, nbpsc)
		seen := make([]bool, ncbps)
		for _, v := range perm {
			if v < 0 || v >= ncbps || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, nbpsc := range []int{1, 2, 4, 6} {
		ncbps := Simulation.DataTones * nbpsc
		perm := Permutation(ncbps, nbpsc)
		bits := bitutil.RandomBits(rng, ncbps*3) // three symbols
		inter := InterleaveBits(bits, perm)
		// Deinterleave via the LLR path to exercise both directions.
		llrs := make([]float64, len(inter))
		for i, b := range inter {
			llrs[i] = float64(b)*2 - 1
		}
		back := DeinterleaveLLRs(llrs, perm)
		for i := range bits {
			wantSign := float64(bits[i])*2 - 1
			if back[i] != wantSign {
				t.Fatalf("nbpsc=%d: round trip failed at %d", nbpsc, i)
			}
		}
	}
}

func TestInterleaverSpreadsAdjacentBits(t *testing.T) {
	// Adjacent coded bits must land on different, non-adjacent subcarriers
	// (the anti-burst property).
	for _, nbpsc := range []int{1, 2, 4, 6} {
		ncbps := Standard.DataTones * nbpsc
		perm := Permutation(ncbps, nbpsc)
		for k := 0; k+1 < ncbps; k++ {
			sc1 := perm[k] / nbpsc
			sc2 := perm[k+1] / nbpsc
			if d := sc1 - sc2; d > -2 && d < 2 {
				t.Fatalf("nbpsc=%d: coded bits %d,%d land on adjacent subcarriers %d,%d",
					nbpsc, k, k+1, sc1, sc2)
			}
		}
	}
}

func TestInterleavePanicsOnPartialSymbol(t *testing.T) {
	perm := Permutation(96, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-symbol-multiple input")
		}
	}()
	InterleaveBits(make([]byte, 95), perm)
}

func TestInverse(t *testing.T) {
	perm := Permutation(192, 2)
	inv := Inverse(perm)
	for k := range perm {
		if inv[perm[k]] != k {
			t.Fatalf("Inverse broken at %d", k)
		}
	}
}

func TestHeaderSymbols(t *testing.T) {
	// 64 header bits at BPSK 1/2 in simulation mode (48 info bits/symbol):
	// needs 2 symbols.
	if got := Simulation.HeaderSymbols(64); got != 2 {
		t.Fatalf("HeaderSymbols(64) = %d, want 2", got)
	}
}

func TestModeString(t *testing.T) {
	for _, m := range Modes() {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}
