// Package ofdm models the OFDM framing layer of the prototype: the three
// modes of operation of the paper's Table 3 (long range, short range,
// simulation) plus standard 802.11a, the per-symbol block interleaver that
// spreads adjacent coded bits onto non-adjacent subcarriers (the property
// the collision detector of §4 relies on), and frame geometry / airtime
// computation.
//
// The simulation operates at subcarrier granularity in the frequency
// domain: an OFDM symbol is represented by its DataTones constellation
// points, and the channel applies a flat complex gain per symbol. The
// IFFT/FFT and cyclic prefix are accounted for only in the time budget
// (symbol duration = 1.25 × Tones / Bandwidth, i.e. a CP of one quarter of
// the subcarrier count, as Table 3 specifies).
package ofdm

import (
	"fmt"
	"math"

	"softrate/internal/modulation"
	"softrate/internal/rate"
)

// Mode describes one OFDM operating mode (a row of Table 3).
type Mode struct {
	// Name identifies the mode, e.g. "short-range".
	Name string
	// Bandwidth is the sampled RF bandwidth in Hz.
	Bandwidth float64
	// Tones is the total number of OFDM subcarriers.
	Tones int
	// DataTones is the number of subcarriers carrying data (the rest are
	// pilots/guards; we follow 802.11's 48-of-64 = 3/4 proportion).
	DataTones int
}

// The modes of Table 3 plus the standard 802.11a/g configuration. The
// paper's evaluation ran live experiments in long/short range modes and
// channel-simulator experiments over the 20 MHz "simulation" mode.
var (
	LongRange  = Mode{Name: "long-range", Bandwidth: 500e3, Tones: 1024, DataTones: 768}
	ShortRange = Mode{Name: "short-range", Bandwidth: 4e6, Tones: 512, DataTones: 384}
	Simulation = Mode{Name: "simulation", Bandwidth: 20e6, Tones: 128, DataTones: 96}
	Standard   = Mode{Name: "802.11a", Bandwidth: 20e6, Tones: 64, DataTones: 48}
)

// Modes returns all defined modes in Table 3 order (plus Standard last).
func Modes() []Mode { return []Mode{LongRange, ShortRange, Simulation, Standard} }

// SymbolTime returns the duration of one OFDM symbol including its cyclic
// prefix (one quarter of the useful part): T = 1.25 × Tones / Bandwidth.
func (m Mode) SymbolTime() float64 {
	return 1.25 * float64(m.Tones) / m.Bandwidth
}

// String implements fmt.Stringer.
func (m Mode) String() string {
	return fmt.Sprintf("%s (%.0f kHz, %d tones, T=%s)", m.Name, m.Bandwidth/1e3, m.Tones, fmtDuration(m.SymbolTime()))
}

func fmtDuration(sec float64) string {
	switch {
	case sec >= 1e-3:
		return fmt.Sprintf("%.2g ms", sec*1e3)
	default:
		return fmt.Sprintf("%.3g us", sec*1e6)
	}
}

// CodedBitsPerSymbol returns N_CBPS: the coded bits carried by one OFDM
// symbol at the given modulation.
func (m Mode) CodedBitsPerSymbol(s modulation.Scheme) int {
	return m.DataTones * s.BitsPerSymbol()
}

// InfoBitsPerSymbol returns N_BPS of the paper's Equation 4 context: the
// information (pre-FEC) bits per OFDM symbol at rate r.
func (m Mode) InfoBitsPerSymbol(r rate.Rate) int {
	num, den := r.Code.Fraction()
	return m.CodedBitsPerSymbol(r.Scheme) * num / den
}

// DataSymbols returns the number of OFDM symbols needed to carry nCoded
// coded bits at the given modulation.
func (m Mode) DataSymbols(nCoded int, s modulation.Scheme) int {
	per := m.CodedBitsPerSymbol(s)
	return (nCoded + per - 1) / per
}

// Frame overhead in OFDM symbols. The preamble carries the Schmidl-Cox
// synchronization pattern; the postamble (§3.2, [12]) is an optional
// trailing pattern allowing detection of a frame whose preamble was lost
// to interference. The PLCP-like header travels at the lowest rate.
const (
	PreambleSymbols  = 2
	PostambleSymbols = 2
)

// HeaderSymbols returns the OFDM symbols consumed by a link-layer header of
// hdrBits information bits sent at the most robust rate (BPSK 1/2).
func (m Mode) HeaderSymbols(hdrBits int) int {
	per := m.InfoBitsPerSymbol(rate.ByIndex(0))
	return (hdrBits + per - 1) / per
}

// Airtime returns the on-air duration of a frame carrying nCoded coded
// payload bits at rate r, with hdrBits of header and an optional postamble.
func (m Mode) Airtime(nCoded, hdrBits int, r rate.Rate, postamble bool) float64 {
	syms := PreambleSymbols + m.HeaderSymbols(hdrBits) + m.DataSymbols(nCoded, r.Scheme)
	if postamble {
		syms += PostambleSymbols
	}
	return float64(syms) * m.SymbolTime()
}

// PayloadAirtime is a convenience: the airtime of a payload of n bytes
// (plus 32-bit FCS) at rate r with a 64-bit header, ignoring tail/padding
// detail — used by rate adaptation algorithms to estimate transmission
// cost.
func (m Mode) PayloadAirtime(nBytes int, r rate.Rate, postamble bool) float64 {
	infoBits := (nBytes + 4) * 8
	nCoded := codedLenAtRate(infoBits, r)
	return m.Airtime(nCoded, 64, r, postamble)
}

// codedLenAtRate computes the punctured coded length of infoBits
// information bits at rate r's code rate, including the 6 tail bits:
// transmitted coded bits = (info + tail) / codeRate.
func codedLenAtRate(infoBits int, r rate.Rate) int {
	num, den := r.Code.Fraction()
	return int(math.Ceil(float64((infoBits+6)*den) / float64(num)))
}
