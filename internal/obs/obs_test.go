package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter %d, want 42", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if g.Load() != -3 {
		t.Fatalf("gauge %d, want -3", g.Load())
	}
}

func TestLatencyConcurrentObserve(t *testing.T) {
	var l Latency
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Observe(time.Duration(g+1) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	snap := l.Snapshot()
	if snap.Count() != goroutines*perG {
		t.Fatalf("count %d, want %d", snap.Count(), goroutines*perG)
	}
	if got, want := snap.Max(), time.Duration(goroutines)*time.Microsecond; got != want {
		t.Fatalf("max %v, want %v", got, want)
	}
	l.ObserveN(time.Millisecond, 5)
	if got := l.Count(); got != goroutines*perG+5 {
		t.Fatalf("count after ObserveN %d", got)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatalf("count after Reset %d", l.Count())
	}
}

func TestLatencyObserveDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	var l Latency
	if n := testing.AllocsPerRun(100, func() { l.Observe(time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { l.ObserveN(time.Microsecond, 3) }); n != 0 {
		t.Fatalf("ObserveN allocates %v per op, want 0", n)
	}
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Add(2) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Add(1) }); n != 0 {
		t.Fatalf("Gauge.Add allocates %v per op, want 0", n)
	}
}

func TestPromHistogramFormat(t *testing.T) {
	var l Latency
	l.Observe(time.Microsecond)
	l.Observe(time.Microsecond)
	l.Observe(time.Millisecond)
	snap := l.Snapshot()

	var sb strings.Builder
	PromHistogram(&sb, "softrate_batch_latency_seconds", `algo="softrate"`, "test", &snap)
	out := sb.String()

	for _, want := range []string{
		"# TYPE softrate_batch_latency_seconds histogram",
		`softrate_batch_latency_seconds_bucket{algo="softrate",le="+Inf"} 3`,
		`softrate_batch_latency_seconds_count{algo="softrate"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative le buckets: two occupied buckets → two finite le lines,
	// last finite cumulative equals the count.
	finite := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="`) && !strings.Contains(line, "+Inf") {
			finite++
		}
	}
	if finite != 2 {
		t.Fatalf("want 2 finite le buckets, got %d:\n%s", finite, out)
	}

	var sb2 strings.Builder
	PromCounter(&sb2, "softrate_frames_total", "", "frames", 12)
	PromGauge(&sb2, "softrate_links_live", "", "live links", 34)
	if !strings.Contains(sb2.String(), "softrate_frames_total 12") ||
		!strings.Contains(sb2.String(), "softrate_links_live 34") {
		t.Fatalf("bad counter/gauge exposition:\n%s", sb2.String())
	}
	if got := PromLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("PromLabel escape: %q", got)
	}
}

func TestAdminMux(t *testing.T) {
	drained := make(chan struct{})
	var once sync.Once
	a := &Admin{
		Status:  func() any { return map[string]any{"frames": 7} },
		Metrics: func(w io.Writer) { PromCounter(w, "softrate_frames_total", "", "", 7) },
		Drain:   func() { once.Do(func() { close(drained) }) },
	}
	srv := httptest.NewServer(a.Mux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		io.Copy(&sb, resp.Body)
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body := get("/statusz")
	if code != 200 {
		t.Fatalf("/statusz: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if doc["frames"] != float64(7) {
		t.Fatalf("/statusz frames = %v", doc["frames"])
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "softrate_frames_total 7") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}

	// Drain: replies immediately, fires the hook once, flips health.
	if code, body := get("/drainz"); code != 200 || body != "draining\n" {
		t.Fatalf("/drainz: %d %q", code, body)
	}
	if code, _ := get("/drainz"); code != 200 {
		t.Fatal("second /drainz not idempotent")
	}
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("drain hook never fired")
	}
	if code, _ := get("/healthz"); code != 503 {
		t.Fatalf("/healthz after drain: %d, want 503", code)
	}
}
