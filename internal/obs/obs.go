// Package obs is the ops plane's metrics layer: allocation-free counters,
// gauges and shard-striped latency histograms that the serving hot paths
// (server.Decide, the TCP transport, the link store) record into, plus the
// HTTP admin surface (admin.go) and Prometheus text rendering (prom.go)
// that read them back out.
//
// The design constraint is the house invariant: recording must cost the
// hot path nothing it can notice — no allocation, no shared lock, no
// change to decisions. Counters and gauges are single atomics. Latency
// histograms are striped: writers rotate across latStripes independently
// locked stats.Histogram shards (the per-stripe critical section is one
// bucket increment), and readers merge the stripes into one snapshot —
// the same mergeable-layout trick the load generator uses across client
// goroutines, applied inside one process.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"softrate/internal/stats"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// latStripes is the write-concurrency of one Latency: stripes are handed
// out round-robin, so up to this many writers record without queueing on
// one lock. Must be a power of two.
const latStripes = 8

type latStripe struct {
	mu sync.Mutex
	h  stats.Histogram
	// stats.Histogram is ~4.6 KB, so adjacent stripes' hot words (the
	// mutex and the low buckets) already live on distant cache lines; no
	// explicit padding needed.
}

// Latency is a concurrent-write latency histogram: a shard-striped set of
// stats.Histogram. Observe is allocation-free and safe for any number of
// concurrent writers; Snapshot merges the stripes into one ordinary
// histogram for the read side. The zero value is ready to use.
type Latency struct {
	cursor  atomic.Uint64
	stripes [latStripes]latStripe
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	s := &l.stripes[l.cursor.Add(1)&(latStripes-1)]
	s.mu.Lock()
	s.h.Observe(d)
	s.mu.Unlock()
}

// ObserveN records n observations of d in one stripe visit (see
// stats.Histogram.ObserveN).
func (l *Latency) ObserveN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	s := &l.stripes[l.cursor.Add(1)&(latStripes-1)]
	s.mu.Lock()
	s.h.ObserveN(d, n)
	s.mu.Unlock()
}

// Count returns the total number of observations across stripes.
func (l *Latency) Count() uint64 {
	var n uint64
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		n += s.h.Count()
		s.mu.Unlock()
	}
	return n
}

// Snapshot merges every stripe into one histogram. Stripes are locked one
// at a time, so a snapshot taken under write load is a slightly time-
// smeared but bucket-consistent view (each stripe is internally exact).
func (l *Latency) Snapshot() stats.Histogram {
	var out stats.Histogram
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		out.Merge(&s.h)
		s.mu.Unlock()
	}
	return out
}

// Reset clears all stripes (between benchmark phases; not used while
// writers are active).
func (l *Latency) Reset() {
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		s.h.Reset()
		s.mu.Unlock()
	}
}

// LatencySummary is the JSON-friendly digest of a latency histogram used
// by /statusz. Quantiles carry stats.Histogram's 1/16-octave upper-bound
// error; Count, MeanNs and MaxNs are exact.
type LatencySummary struct {
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// Summarize digests a histogram snapshot.
func Summarize(h *stats.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.5)),
		P99Ns:  int64(h.Quantile(0.99)),
		MaxNs:  int64(h.Max()),
	}
}
