//go:build race

package obs

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions skip under it: the race runtime's shadow
// bookkeeping can allocate on paths that are allocation-free in normal
// builds, so AllocsPerRun is not meaningful there.
const raceEnabled = true
