package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Admin is the HTTP management surface over a serving process — the
// ndn-dpdk-style ops plane over the dataplane, scoped to what softrated
// needs:
//
//	/statusz       full JSON stats snapshot (Status())
//	/metrics       Prometheus text exposition (Metrics(w))
//	/healthz       liveness: 200 "ok" while serving, 503 once draining
//	/drainz        trigger graceful drain (POST or GET; idempotent)
//	/debug/pprof/  the standard Go profiling endpoints
//
// All read endpoints are safe to hit at any rate while the dataplane runs
// full speed: they only take per-stripe histogram locks and per-shard
// store locks, the same ones a concurrent Decide already cycles through.
type Admin struct {
	// Status builds the /statusz document (JSON-marshalable). Required.
	Status func() any
	// Metrics writes the Prometheus exposition. Required.
	Metrics func(io.Writer)
	// Drain starts a graceful drain: stop accepting work, finish what is
	// in flight, then shut the process down. Called at most once, from a
	// fresh goroutine — /drainz replies before the drain completes. nil
	// disables /drainz (404).
	Drain func()

	drainOnce sync.Once
	draining  bool
	mu        sync.Mutex
}

// Mux builds the admin handler.
func (a *Admin) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		a.mu.Lock()
		draining := a.draining
		a.mu.Unlock()
		if draining {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(a.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		a.Metrics(w)
	})
	if a.Drain != nil {
		mux.HandleFunc("/drainz", func(w http.ResponseWriter, r *http.Request) {
			a.mu.Lock()
			a.draining = true
			a.mu.Unlock()
			a.drainOnce.Do(func() { go a.Drain() })
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			io.WriteString(w, "draining\n")
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
