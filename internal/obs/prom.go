package obs

import (
	"fmt"
	"io"
	"strings"

	"softrate/internal/stats"
)

// Prometheus text exposition (format version 0.0.4). These helpers render
// from the same snapshots /statusz serializes — one read path, two
// encodings — so the two surfaces can never disagree about a value.
//
// A metric family must emit its TYPE header exactly once: single-sample
// families use the PromCounter/PromGauge/PromHistogram conveniences;
// families with one sample per label set (per algorithm, per shard, …)
// call PromHeader once and then PromSample/PromHistogramSamples per set.

// PromHeader emits a family's HELP/TYPE preamble. typ is "counter",
// "gauge" or "histogram".
func PromHeader(w io.Writer, name, typ, help string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// PromSample writes one sample line. labels is either empty or a
// comma-joined list of `name="value"` pairs (values pre-escaped by
// PromLabel if they can contain specials).
func PromSample(w io.Writer, name, labels string, v float64) {
	promSample(w, name, labels, "", v)
}

// PromHistogramSamples writes one label set's histogram samples from a
// snapshot: one cumulative `le` bucket line per occupied bucket (bounds in
// seconds, carrying stats.Histogram's 1/16-octave upper-bound error), the
// +Inf bucket, and the _sum/_count samples.
func PromHistogramSamples(w io.Writer, name, labels string, h *stats.Histogram) {
	h.Buckets(func(upperNs int64, cum uint64) {
		le := fmt.Sprintf(`le="%g"`, float64(upperNs)/1e9)
		promSample(w, name+"_bucket", labels, le, float64(cum))
	})
	promSample(w, name+"_bucket", labels, `le="+Inf"`, float64(h.Count()))
	promSample(w, name+"_sum", labels, "", h.Sum().Seconds())
	promSample(w, name+"_count", labels, "", float64(h.Count()))
}

// PromCounter writes a single-sample counter family.
func PromCounter(w io.Writer, name, labels, help string, v uint64) {
	PromHeader(w, name, "counter", help)
	promSample(w, name, labels, "", float64(v))
}

// PromGauge writes a single-sample gauge family.
func PromGauge(w io.Writer, name, labels, help string, v float64) {
	PromHeader(w, name, "gauge", help)
	promSample(w, name, labels, "", v)
}

// PromHistogram writes a single-label-set histogram family.
func PromHistogram(w io.Writer, name, labels, help string, h *stats.Histogram) {
	PromHeader(w, name, "histogram", help)
	PromHistogramSamples(w, name, labels, h)
}

// PromLabel escapes a label value per the exposition format.
func PromLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

func promSample(w io.Writer, name, labels, extra string, v float64) {
	switch {
	case labels == "" && extra == "":
		fmt.Fprintf(w, "%s %g\n", name, v)
	case labels == "":
		fmt.Fprintf(w, "%s{%s} %g\n", name, extra, v)
	case extra == "":
		fmt.Fprintf(w, "%s{%s} %g\n", name, labels, v)
	default:
		fmt.Fprintf(w, "%s{%s,%s} %g\n", name, labels, extra, v)
	}
}
