package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
	"softrate/internal/obs"
	"softrate/internal/stats"
)

// The ops-plane read side. Status() is the one snapshot path: it drains
// every counter, merges every latency stripe (stats.Histogram.Snapshot),
// and aggregates the store — /statusz serializes the result as JSON and
// WritePrometheus renders the same snapshot as a Prometheus exposition,
// so the two surfaces can never disagree mid-run.

// kindNames label the core.FeedbackKind counters.
var kindNames = [core.NumKinds]string{"ber", "collision", "silent", "postamble"}

// AlgoStatus is one algorithm's slice of a Status snapshot (slot "mixed"
// collects batches whose ops named more than one algorithm).
type AlgoStatus struct {
	// Algo is the algorithm name, or "mixed".
	Algo string `json:"algo"`
	// Batches and Frames count Decide calls and feedback records
	// attributed to this algorithm.
	Batches uint64 `json:"batches"`
	Frames  uint64 `json:"frames"`
	// BatchLatency digests the per-Decide latency histogram; OpLatency the
	// per-record share (batch latency / batch size, weighted by size).
	BatchLatency obs.LatencySummary `json:"batch_latency"`
	OpLatency    obs.LatencySummary `json:"op_latency"`

	batchHist stats.Histogram // retained for the Prometheus renderer
	opHist    stats.Histogram
}

// TransportStatus is the TCP transport's counter snapshot.
type TransportStatus struct {
	// ConnsAccepted counts accepted connections; ConnsActive is the
	// current open count.
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsActive   int64  `json:"conns_active"`
	// RequestsV1/V2/V3 count request batches by wire framing version.
	RequestsV1 uint64 `json:"requests_v1"`
	RequestsV2 uint64 `json:"requests_v2"`
	RequestsV3 uint64 `json:"requests_v3"`
	// FramingErrors counts protocol violations (oversized or undecodable
	// payloads); each drops its connection.
	FramingErrors uint64 `json:"framing_errors"`
	// ClientsPoisoned counts Client-side poisonings in this process —
	// nonzero only for loopback/embedded clients (a remote softrated
	// always reports 0 here; its clients poison themselves).
	ClientsPoisoned uint64 `json:"clients_poisoned"`
	// SlowClientsEvicted counts connections dropped by the write-deadline
	// policy: the peer stopped reading until the server's write path
	// blocked for the full Config.WriteTimeout.
	SlowClientsEvicted uint64 `json:"slow_clients_evicted"`
	// Draining reports that a graceful drain is in progress or done.
	Draining bool `json:"draining"`
}

// OverloadStatus is the admission-gate snapshot.
type OverloadStatus struct {
	// MaxInflight is the configured Decide concurrency bound (0 =
	// unbounded, and Inflight then always reads 0).
	MaxInflight int `json:"max_inflight"`
	// Inflight is the number of Decide batches holding a gate token at
	// snapshot time.
	Inflight int `json:"inflight"`
}

// DatagramStatus is a datagram transport's (UDP or shm) counter
// snapshot. The same shape serves both: rx/tx/drops count datagrams (or
// ring messages), bursts and the burst-size histogram describe how well
// the burst loop is amortizing Decide calls, and RingsAttached is
// meaningful only for shm.
type DatagramStatus struct {
	// DatagramsRx counts request payloads received (well-formed or not);
	// DatagramsTx response payloads written.
	DatagramsRx uint64 `json:"datagrams_rx"`
	DatagramsTx uint64 `json:"datagrams_tx"`
	// Bursts counts burst-loop iterations that served at least one
	// datagram; BurstSizes histograms their sizes into power-of-two
	// buckets (upper bounds as keys). DatagramsRx/Bursts is the mean
	// amortization factor.
	Bursts     uint64            `json:"bursts"`
	BurstSizes map[string]uint64 `json:"burst_sizes"`
	// Drops counts malformed request payloads dropped without a
	// response; TxErrors responses the transport failed to write.
	Drops    uint64 `json:"drops"`
	TxErrors uint64 `json:"tx_errors"`
	// Shed counts datagrams dropped unserved because the admission gate
	// was saturated (UDP only; the loss contract covers them).
	Shed uint64 `json:"shed"`
	// RequestsV1/V2/V3 count well-formed request payloads by framing
	// version.
	RequestsV1 uint64 `json:"requests_v1"`
	RequestsV2 uint64 `json:"requests_v2"`
	RequestsV3 uint64 `json:"requests_v3"`
	// RingsAttached is the number of shm rings with a live client (always
	// 0 for UDP).
	RingsAttached int64 `json:"rings_attached"`
}

// burstBucketLabels are the burst-size histogram's upper bounds, in
// bucket order.
var burstBucketLabels = [burstBucketCount]string{"1", "2", "4", "8", "16", "32"}

// dgramStatus snapshots one datagram transport's counters.
func (st *dgramState) status() DatagramStatus {
	out := DatagramStatus{
		DatagramsRx:   st.rx.Load(),
		DatagramsTx:   st.tx.Load(),
		Bursts:        st.bursts.Load(),
		BurstSizes:    make(map[string]uint64, burstBucketCount),
		Drops:         st.drops.Load(),
		TxErrors:      st.txErrs.Load(),
		Shed:          st.shed.Load(),
		RequestsV1:    st.reqV1.Load(),
		RequestsV2:    st.reqV2.Load(),
		RequestsV3:    st.reqV3.Load(),
		RingsAttached: st.ringsAttached.Load(),
	}
	for i, label := range burstBucketLabels {
		out.BurstSizes[label] = st.burstBuckets[i].Load()
	}
	return out
}

// Status is the full ops-plane snapshot served at /statusz.
type Status struct {
	// UptimeSec is seconds since the server was built.
	UptimeSec float64 `json:"uptime_sec"`
	// Batches and Frames mirror Stats (cumulative Decide calls/records).
	Batches uint64 `json:"batches"`
	Frames  uint64 `json:"frames"`
	// Kinds counts records per feedback kind, by name.
	Kinds map[string]uint64 `json:"kinds"`
	// Algos holds per-algorithm decision metrics for every slot that saw
	// traffic ("mixed" first when present, then ID order).
	Algos []AlgoStatus `json:"algos"`
	// Store is the link store's aggregate view (including per-algorithm
	// churn in Store.Algos); PerShard is the per-shard breakdown.
	Store    linkstore.Stats        `json:"store"`
	PerShard []linkstore.ShardStats `json:"per_shard"`
	// Transport is the TCP transport's counter snapshot; UDP and SHM the
	// datagram transports' (request counters are per transport, so the
	// three sections together break total traffic out by transport).
	Transport TransportStatus `json:"transport"`
	UDP       DatagramStatus  `json:"udp"`
	SHM       DatagramStatus  `json:"shm"`
	// Overload is the admission-gate snapshot.
	Overload OverloadStatus `json:"overload"`
}

// slotName returns the metric label of a per-algorithm slot.
func slotName(slot int) string {
	if slot == 0 {
		return "mixed"
	}
	if spec, ok := ctl.Lookup(ctl.Algo(slot)); ok {
		return spec.Name
	}
	return fmt.Sprintf("algo%d", slot)
}

// Status snapshots every service counter, latency histogram and store
// stat. Safe to call at any rate concurrently with Decide; it takes only
// the same stripe and shard locks the hot path cycles through.
func (s *Server) Status() Status {
	out := Status{
		UptimeSec: time.Since(s.start).Seconds(),
		Batches:   atomic.LoadUint64(&s.batches),
		Frames:    atomic.LoadUint64(&s.frames),
		Kinds:     make(map[string]uint64, core.NumKinds),
	}
	for k, name := range kindNames {
		out.Kinds[name] = atomic.LoadUint64(&s.kinds[k])
	}
	for slot := 0; slot < maxAlgoSlots; slot++ {
		batches := s.algoBatches[slot].Load()
		if batches == 0 {
			continue
		}
		as := AlgoStatus{
			Algo:      slotName(slot),
			Batches:   batches,
			Frames:    s.algoFrames[slot].Load(),
			batchHist: s.batchLat[slot].Snapshot(),
			opHist:    s.opLat[slot].Snapshot(),
		}
		as.BatchLatency = obs.Summarize(&as.batchHist)
		as.OpLatency = obs.Summarize(&as.opHist)
		out.Algos = append(out.Algos, as)
	}
	out.Store = s.store.Stats()
	out.PerShard = s.store.PerShard()
	out.Transport = s.transportStatus()
	out.UDP = s.udp.status()
	out.SHM = s.shm.status()
	if s.gate != nil {
		out.Overload = OverloadStatus{MaxInflight: cap(s.gate), Inflight: len(s.gate)}
	}
	return out
}

// writeDatagramProm renders one datagram transport's snapshot under the
// softrated_<transport>_* metric family names.
func writeDatagramProm(w io.Writer, transport string, d *DatagramStatus) {
	p := "softrated_" + transport
	obs.PromCounter(w, p+"_datagrams_rx_total", "", transport+" request payloads received", d.DatagramsRx)
	obs.PromCounter(w, p+"_datagrams_tx_total", "", transport+" response payloads written", d.DatagramsTx)
	obs.PromCounter(w, p+"_bursts_total", "", transport+" burst-loop iterations serving >= 1 datagram", d.Bursts)
	obs.PromHeader(w, p+"_burst_size", "histogram", transport+" datagrams per burst (power-of-two buckets)")
	cum := uint64(0)
	for _, label := range burstBucketLabels {
		cum += d.BurstSizes[label]
		obs.PromSample(w, p+"_burst_size_bucket", `le="`+label+`"`, float64(cum))
	}
	obs.PromSample(w, p+"_burst_size_bucket", `le="+Inf"`, float64(cum))
	obs.PromSample(w, p+"_burst_size_count", "", float64(cum))
	obs.PromCounter(w, p+"_drops_total", "", transport+" malformed payloads dropped without a response", d.Drops)
	obs.PromCounter(w, p+"_tx_errors_total", "", transport+" responses the transport failed to write", d.TxErrors)
	obs.PromCounter(w, p+"_shed_total", "", transport+" datagrams shed unserved at a saturated admission gate", d.Shed)
	obs.PromHeader(w, p+"_requests_total", "counter", transport+" request payloads by wire framing version")
	obs.PromSample(w, p+"_requests_total", `version="v1"`, float64(d.RequestsV1))
	obs.PromSample(w, p+"_requests_total", `version="v2"`, float64(d.RequestsV2))
	obs.PromSample(w, p+"_requests_total", `version="v3"`, float64(d.RequestsV3))
	if transport == "shm" {
		obs.PromGauge(w, p+"_rings_attached", "", "shm rings with a live client", float64(d.RingsAttached))
	}
}

// WritePrometheus renders a Status snapshot as a Prometheus text
// exposition. Metric names are documented in the README's Observability
// section.
func (s *Server) WritePrometheus(w io.Writer) {
	st := s.Status()

	obs.PromGauge(w, "softrated_uptime_seconds", "", "seconds since the server started", st.UptimeSec)
	obs.PromCounter(w, "softrated_batches_total", "", "Decide batches served", st.Batches)
	obs.PromCounter(w, "softrated_frames_total", "", "feedback records served", st.Frames)

	obs.PromHeader(w, "softrated_frames_by_kind_total", "counter", "feedback records by kind")
	for _, name := range kindNames {
		obs.PromSample(w, "softrated_frames_by_kind_total", `kind="`+name+`"`, float64(st.Kinds[name]))
	}

	obs.PromHeader(w, "softrated_batches_by_algo_total", "counter", "Decide batches by attributed algorithm")
	for i := range st.Algos {
		obs.PromSample(w, "softrated_batches_by_algo_total", `algo="`+st.Algos[i].Algo+`"`, float64(st.Algos[i].Batches))
	}
	obs.PromHeader(w, "softrated_frames_by_algo_total", "counter", "feedback records by attributed algorithm")
	for i := range st.Algos {
		obs.PromSample(w, "softrated_frames_by_algo_total", `algo="`+st.Algos[i].Algo+`"`, float64(st.Algos[i].Frames))
	}
	obs.PromHeader(w, "softrated_batch_latency_seconds", "histogram", "Decide batch latency by attributed algorithm")
	for i := range st.Algos {
		obs.PromHistogramSamples(w, "softrated_batch_latency_seconds", `algo="`+st.Algos[i].Algo+`"`, &st.Algos[i].batchHist)
	}
	obs.PromHeader(w, "softrated_op_latency_seconds", "histogram", "per-record share of batch latency by attributed algorithm")
	for i := range st.Algos {
		obs.PromHistogramSamples(w, "softrated_op_latency_seconds", `algo="`+st.Algos[i].Algo+`"`, &st.Algos[i].opHist)
	}

	obs.PromGauge(w, "softrated_links_live", "", "links in the hot maps", float64(st.Store.Live))
	obs.PromGauge(w, "softrated_links_archived", "", "evicted links in the RAM archive", float64(st.Store.Archived))
	obs.PromGauge(w, "softrated_links_archived_bytes", "", "encoded state held by the RAM archive", float64(st.Store.ArchivedBytes))
	obs.PromCounter(w, "softrated_store_hits_total", "", "ops that found their link hot", st.Store.Hits)
	obs.PromCounter(w, "softrated_store_creates_total", "", "links created fresh", st.Store.Creates)
	obs.PromCounter(w, "softrated_store_restores_total", "", "links revived from the archive", st.Store.Restores)
	obs.PromCounter(w, "softrated_store_evictions_total", "", "links evicted by TTL", st.Store.Evictions)

	obs.PromHeader(w, "softrated_store_links_by_algo", "gauge", "live and archived links by bound algorithm")
	for _, as := range st.Store.Algos {
		name := slotName(int(as.Algo))
		obs.PromSample(w, "softrated_store_links_by_algo", `algo="`+name+`",state="live"`, float64(as.Live))
		obs.PromSample(w, "softrated_store_links_by_algo", `algo="`+name+`",state="archived"`, float64(as.Archived))
	}
	obs.PromHeader(w, "softrated_store_churn_by_algo_total", "counter", "store churn by bound algorithm")
	for _, as := range st.Store.Algos {
		name := slotName(int(as.Algo))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="create"`, float64(as.Creates))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="restore"`, float64(as.Restores))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="evict"`, float64(as.Evictions))
	}

	if c := st.Store.Cold; c != nil {
		obs.PromGauge(w, "softrated_cold_links", "", "links resident in the disk tier", float64(c.Links))
		obs.PromGauge(w, "softrated_cold_segments", "", "disk-tier segment files", float64(c.Segments))
		obs.PromGauge(w, "softrated_cold_live_bytes", "", "disk-tier record bytes still referenced by the index", float64(c.LiveBytes))
		obs.PromGauge(w, "softrated_cold_dead_bytes", "", "disk-tier record bytes superseded or restored (compaction reclaims them)", float64(c.DeadBytes))
		obs.PromGauge(w, "softrated_cold_disk_bytes", "", "total disk-tier segment bytes", float64(c.DiskBytes))
		obs.PromCounter(w, "softrated_cold_spilled_links_total", "", "links group-committed to the disk tier", c.Spills)
		obs.PromCounter(w, "softrated_cold_restored_links_total", "", "links restored from the disk tier", c.Restores)
		obs.PromCounter(w, "softrated_cold_compactions_total", "", "disk-tier segments reclaimed by compaction", c.Compactions)
		obs.PromCounter(w, "softrated_cold_torn_tails_total", "", "partial batch tails truncated at recovery", c.TornTails)
		obs.PromCounter(w, "softrated_cold_errors_total", "", "failed cold-tier operations (the store fell back without losing state)", st.Store.ColdErrors)
		obs.PromCounter(w, "softrated_cold_spill_errors_total", "", "failed generation spills (each kept its generation resident in RAM)", st.Store.ColdSpillErrors)
		obs.PromCounter(w, "softrated_cold_restore_errors_total", "", "failed disk restores (each fell through to a fresh controller)", st.Store.ColdRestoreErrors)
		degraded := 0.0
		if st.Store.ColdDegraded {
			degraded = 1
		}
		obs.PromGauge(w, "softrated_cold_degraded", "", "1 while the cold-tier breaker is open and the store runs on the unbounded RAM archive", degraded)
		obs.PromCounter(w, "softrated_cold_breaker_trips_total", "", "cold-tier breaker closed-to-open transitions", st.Store.BreakerTrips)
		obs.PromCounter(w, "softrated_cold_spill_retries_total", "", "half-open probe spills attempted while the breaker was open", st.Store.SpillRetries)
		obs.PromHeader(w, "softrated_cold_restore_latency_seconds", "histogram", "disk-restore latency")
		obs.PromHistogramSamples(w, "softrated_cold_restore_latency_seconds", "", &c.RestoreHist)
	}

	obs.PromCounter(w, "softrated_conns_accepted_total", "", "TCP connections accepted", st.Transport.ConnsAccepted)
	obs.PromGauge(w, "softrated_conns_active", "", "open TCP connections", float64(st.Transport.ConnsActive))
	obs.PromHeader(w, "softrated_requests_total", "counter", "request batches by wire framing version")
	obs.PromSample(w, "softrated_requests_total", `version="v1"`, float64(st.Transport.RequestsV1))
	obs.PromSample(w, "softrated_requests_total", `version="v2"`, float64(st.Transport.RequestsV2))
	obs.PromSample(w, "softrated_requests_total", `version="v3"`, float64(st.Transport.RequestsV3))
	obs.PromCounter(w, "softrated_framing_errors_total", "", "protocol violations (each drops its connection)", st.Transport.FramingErrors)
	obs.PromCounter(w, "softrated_clients_poisoned_total", "", "in-process clients poisoned by transport errors", st.Transport.ClientsPoisoned)
	obs.PromCounter(w, "softrated_slow_clients_evicted_total", "", "TCP connections evicted by the write-deadline policy", st.Transport.SlowClientsEvicted)
	obs.PromGauge(w, "softrated_max_inflight", "", "configured Decide admission bound (0 = unbounded)", float64(st.Overload.MaxInflight))
	obs.PromGauge(w, "softrated_decide_inflight", "", "Decide batches holding an admission token", float64(st.Overload.Inflight))
	draining := 0.0
	if st.Transport.Draining {
		draining = 1
	}
	obs.PromGauge(w, "softrated_draining", "", "1 while a graceful drain is in progress or done", draining)

	writeDatagramProm(w, "udp", &st.UDP)
	writeDatagramProm(w, "shm", &st.SHM)
}
