package server

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
	"softrate/internal/obs"
	"softrate/internal/stats"
)

// The ops-plane read side. Status() is the one snapshot path: it drains
// every counter, merges every latency stripe (stats.Histogram.Snapshot),
// and aggregates the store — /statusz serializes the result as JSON and
// WritePrometheus renders the same snapshot as a Prometheus exposition,
// so the two surfaces can never disagree mid-run.

// kindNames label the core.FeedbackKind counters.
var kindNames = [core.NumKinds]string{"ber", "collision", "silent", "postamble"}

// AlgoStatus is one algorithm's slice of a Status snapshot (slot "mixed"
// collects batches whose ops named more than one algorithm).
type AlgoStatus struct {
	// Algo is the algorithm name, or "mixed".
	Algo string `json:"algo"`
	// Batches and Frames count Decide calls and feedback records
	// attributed to this algorithm.
	Batches uint64 `json:"batches"`
	Frames  uint64 `json:"frames"`
	// BatchLatency digests the per-Decide latency histogram; OpLatency the
	// per-record share (batch latency / batch size, weighted by size).
	BatchLatency obs.LatencySummary `json:"batch_latency"`
	OpLatency    obs.LatencySummary `json:"op_latency"`

	batchHist stats.Histogram // retained for the Prometheus renderer
	opHist    stats.Histogram
}

// TransportStatus is the TCP transport's counter snapshot.
type TransportStatus struct {
	// ConnsAccepted counts accepted connections; ConnsActive is the
	// current open count.
	ConnsAccepted uint64 `json:"conns_accepted"`
	ConnsActive   int64  `json:"conns_active"`
	// RequestsV1/V2/V3 count request batches by wire framing version.
	RequestsV1 uint64 `json:"requests_v1"`
	RequestsV2 uint64 `json:"requests_v2"`
	RequestsV3 uint64 `json:"requests_v3"`
	// FramingErrors counts protocol violations (oversized or undecodable
	// payloads); each drops its connection.
	FramingErrors uint64 `json:"framing_errors"`
	// ClientsPoisoned counts Client-side poisonings in this process —
	// nonzero only for loopback/embedded clients (a remote softrated
	// always reports 0 here; its clients poison themselves).
	ClientsPoisoned uint64 `json:"clients_poisoned"`
	// Draining reports that a graceful drain is in progress or done.
	Draining bool `json:"draining"`
}

// Status is the full ops-plane snapshot served at /statusz.
type Status struct {
	// UptimeSec is seconds since the server was built.
	UptimeSec float64 `json:"uptime_sec"`
	// Batches and Frames mirror Stats (cumulative Decide calls/records).
	Batches uint64 `json:"batches"`
	Frames  uint64 `json:"frames"`
	// Kinds counts records per feedback kind, by name.
	Kinds map[string]uint64 `json:"kinds"`
	// Algos holds per-algorithm decision metrics for every slot that saw
	// traffic ("mixed" first when present, then ID order).
	Algos []AlgoStatus `json:"algos"`
	// Store is the link store's aggregate view (including per-algorithm
	// churn in Store.Algos); PerShard is the per-shard breakdown.
	Store    linkstore.Stats        `json:"store"`
	PerShard []linkstore.ShardStats `json:"per_shard"`
	// Transport is the TCP transport's counter snapshot.
	Transport TransportStatus `json:"transport"`
}

// slotName returns the metric label of a per-algorithm slot.
func slotName(slot int) string {
	if slot == 0 {
		return "mixed"
	}
	if spec, ok := ctl.Lookup(ctl.Algo(slot)); ok {
		return spec.Name
	}
	return fmt.Sprintf("algo%d", slot)
}

// Status snapshots every service counter, latency histogram and store
// stat. Safe to call at any rate concurrently with Decide; it takes only
// the same stripe and shard locks the hot path cycles through.
func (s *Server) Status() Status {
	out := Status{
		UptimeSec: time.Since(s.start).Seconds(),
		Batches:   atomic.LoadUint64(&s.batches),
		Frames:    atomic.LoadUint64(&s.frames),
		Kinds:     make(map[string]uint64, core.NumKinds),
	}
	for k, name := range kindNames {
		out.Kinds[name] = atomic.LoadUint64(&s.kinds[k])
	}
	for slot := 0; slot < maxAlgoSlots; slot++ {
		batches := s.algoBatches[slot].Load()
		if batches == 0 {
			continue
		}
		as := AlgoStatus{
			Algo:      slotName(slot),
			Batches:   batches,
			Frames:    s.algoFrames[slot].Load(),
			batchHist: s.batchLat[slot].Snapshot(),
			opHist:    s.opLat[slot].Snapshot(),
		}
		as.BatchLatency = obs.Summarize(&as.batchHist)
		as.OpLatency = obs.Summarize(&as.opHist)
		out.Algos = append(out.Algos, as)
	}
	out.Store = s.store.Stats()
	out.PerShard = s.store.PerShard()
	out.Transport = s.transportStatus()
	return out
}

// WritePrometheus renders a Status snapshot as a Prometheus text
// exposition. Metric names are documented in the README's Observability
// section.
func (s *Server) WritePrometheus(w io.Writer) {
	st := s.Status()

	obs.PromGauge(w, "softrated_uptime_seconds", "", "seconds since the server started", st.UptimeSec)
	obs.PromCounter(w, "softrated_batches_total", "", "Decide batches served", st.Batches)
	obs.PromCounter(w, "softrated_frames_total", "", "feedback records served", st.Frames)

	obs.PromHeader(w, "softrated_frames_by_kind_total", "counter", "feedback records by kind")
	for _, name := range kindNames {
		obs.PromSample(w, "softrated_frames_by_kind_total", `kind="`+name+`"`, float64(st.Kinds[name]))
	}

	obs.PromHeader(w, "softrated_batches_by_algo_total", "counter", "Decide batches by attributed algorithm")
	for i := range st.Algos {
		obs.PromSample(w, "softrated_batches_by_algo_total", `algo="`+st.Algos[i].Algo+`"`, float64(st.Algos[i].Batches))
	}
	obs.PromHeader(w, "softrated_frames_by_algo_total", "counter", "feedback records by attributed algorithm")
	for i := range st.Algos {
		obs.PromSample(w, "softrated_frames_by_algo_total", `algo="`+st.Algos[i].Algo+`"`, float64(st.Algos[i].Frames))
	}
	obs.PromHeader(w, "softrated_batch_latency_seconds", "histogram", "Decide batch latency by attributed algorithm")
	for i := range st.Algos {
		obs.PromHistogramSamples(w, "softrated_batch_latency_seconds", `algo="`+st.Algos[i].Algo+`"`, &st.Algos[i].batchHist)
	}
	obs.PromHeader(w, "softrated_op_latency_seconds", "histogram", "per-record share of batch latency by attributed algorithm")
	for i := range st.Algos {
		obs.PromHistogramSamples(w, "softrated_op_latency_seconds", `algo="`+st.Algos[i].Algo+`"`, &st.Algos[i].opHist)
	}

	obs.PromGauge(w, "softrated_links_live", "", "links in the hot maps", float64(st.Store.Live))
	obs.PromGauge(w, "softrated_links_archived", "", "evicted links in the archive", float64(st.Store.Archived))
	obs.PromCounter(w, "softrated_store_hits_total", "", "ops that found their link hot", st.Store.Hits)
	obs.PromCounter(w, "softrated_store_creates_total", "", "links created fresh", st.Store.Creates)
	obs.PromCounter(w, "softrated_store_restores_total", "", "links revived from the archive", st.Store.Restores)
	obs.PromCounter(w, "softrated_store_evictions_total", "", "links evicted by TTL", st.Store.Evictions)

	obs.PromHeader(w, "softrated_store_links_by_algo", "gauge", "live and archived links by bound algorithm")
	for _, as := range st.Store.Algos {
		name := slotName(int(as.Algo))
		obs.PromSample(w, "softrated_store_links_by_algo", `algo="`+name+`",state="live"`, float64(as.Live))
		obs.PromSample(w, "softrated_store_links_by_algo", `algo="`+name+`",state="archived"`, float64(as.Archived))
	}
	obs.PromHeader(w, "softrated_store_churn_by_algo_total", "counter", "store churn by bound algorithm")
	for _, as := range st.Store.Algos {
		name := slotName(int(as.Algo))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="create"`, float64(as.Creates))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="restore"`, float64(as.Restores))
		obs.PromSample(w, "softrated_store_churn_by_algo_total", `algo="`+name+`",event="evict"`, float64(as.Evictions))
	}

	obs.PromCounter(w, "softrated_conns_accepted_total", "", "TCP connections accepted", st.Transport.ConnsAccepted)
	obs.PromGauge(w, "softrated_conns_active", "", "open TCP connections", float64(st.Transport.ConnsActive))
	obs.PromHeader(w, "softrated_requests_total", "counter", "request batches by wire framing version")
	obs.PromSample(w, "softrated_requests_total", `version="v1"`, float64(st.Transport.RequestsV1))
	obs.PromSample(w, "softrated_requests_total", `version="v2"`, float64(st.Transport.RequestsV2))
	obs.PromSample(w, "softrated_requests_total", `version="v3"`, float64(st.Transport.RequestsV3))
	obs.PromCounter(w, "softrated_framing_errors_total", "", "protocol violations (each drops its connection)", st.Transport.FramingErrors)
	obs.PromCounter(w, "softrated_clients_poisoned_total", "", "in-process clients poisoned by transport errors", st.Transport.ClientsPoisoned)
	draining := 0.0
	if st.Transport.Draining {
		draining = 1
	}
	obs.PromGauge(w, "softrated_draining", "", "1 while a graceful drain is in progress or done", draining)
}
