package server

import (
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// TestPipelinedEndToEndMatchesInProcess drives a depth-4 pipelined
// connection with a full window of batches in flight and checks every
// decision against an in-process replay — including waiting on pendings
// out of submission order, which parks earlier responses in the ring.
func TestPipelinedEndToEndMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 32}})
	local := New(Config{Store: linkstore.Config{Shards: 32}})
	addr := startTCP(t, remote)

	const depth = 4
	cli, err := DialPipelined(addr, depth)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(17))
	got := make([]int32, 200)
	want := make([]int32, 200)
	for round := 0; round < 25; round++ {
		// Disjoint link ranges per slot keep per-link order trivially
		// preserved while the batches interleave on the wire.
		batches := make([][]linkstore.Op, depth)
		pendings := make([]*Pending, depth)
		for d := 0; d < depth; d++ {
			ops := randOps(rng, 50, 100)
			for j := range ops {
				ops[j].LinkID += uint64(d) * 10000
			}
			batches[d] = ops
			if pendings[d], err = cli.Submit(ops); err != nil {
				t.Fatalf("round %d submit %d: %v", round, d, err)
			}
		}
		if _, err := cli.Submit(batches[0]); !errors.Is(err, ErrPipelineFull) {
			t.Fatalf("submit past the window returned %v, want ErrPipelineFull", err)
		}
		// Wait newest-first on odd rounds: responses still arrive oldest-
		// first and must land in their ring slots.
		for k := 0; k < depth; k++ {
			d := k
			if round%2 == 1 {
				d = depth - 1 - k
			}
			if _, err := cli.Wait(pendings[d], got); err != nil {
				t.Fatalf("round %d wait %d: %v", round, d, err)
			}
			local.Decide(batches[d], want)
			for i := range batches[d] {
				if got[i] != want[i] {
					t.Fatalf("round %d slot %d op %d: pipelined %d != in-process %d",
						round, d, i, got[i], want[i])
				}
			}
		}
	}
	if st := remote.Stats(); st.Frames != 25*depth*50 {
		t.Fatalf("remote served %d frames, want %d", st.Frames, 25*depth*50)
	}
}

// TestPipelinedDecideInterleavesWithClassicClients checks a pipelined and
// a classic client can share one server, and that Decide on a pipelined
// client is just Submit+Wait.
func TestPipelinedDecideInterleavesWithClassicClients(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 8}})
	local := New(Config{Store: linkstore.Config{Shards: 8}})
	addr := startTCP(t, remote)

	pip, err := DialPipelined(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	classic, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer classic.Close()

	rng := rand.New(rand.NewSource(5))
	got := make([]int32, 64)
	want := make([]int32, 64)
	for i := 0; i < 30; i++ {
		cli := pip
		if i%2 == 1 {
			cli = classic
		}
		ops := randOps(rng, 64, 50)
		for j := range ops {
			ops[j].LinkID += uint64(i%2) * 1000 // disjoint per client
		}
		if _, err := cli.Decide(ops, got); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		local.Decide(ops, want)
		for j := range ops {
			if got[j] != want[j] {
				t.Fatalf("round %d op %d: %d != %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestPipelineSlotHeldUntilWaited pins the ring-slot lifetime: an
// answered-but-unwaited Pending still occupies its slot, so a Submit
// that would land on it reports ErrPipelineFull instead of silently
// rebinding the parked response to a new request; and a Pending can be
// waited on exactly once.
func TestPipelineSlotHeldUntilWaited(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 8}})
	local := New(Config{Store: linkstore.Config{Shards: 8}})
	addr := startTCP(t, remote)
	cli, err := DialPipelined(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(33))
	mkBatch := func(base uint64) []linkstore.Op {
		ops := randOps(rng, 32, 50)
		for i := range ops {
			ops[i].LinkID += base
		}
		return ops
	}
	a, b, c := mkBatch(0), mkBatch(1000), mkBatch(2000)
	pA, err := cli.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	pB, err := cli.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int32, 32)
	// Waiting on B first parks A's response in its slot...
	if _, err := cli.Wait(pB, out); err != nil {
		t.Fatal(err)
	}
	// ...so a depth-2 client has no free slot for C yet.
	if _, err := cli.Submit(c); !errors.Is(err, ErrPipelineFull) {
		t.Fatalf("Submit onto a parked slot returned %v, want ErrPipelineFull", err)
	}
	// Collecting A frees the slot and must yield A's decisions, not C's.
	want := make([]int32, 32)
	local.Decide(a, want)
	got, err := cli.Wait(pA, out)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parked batch op %d: got %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := cli.Wait(pA, out); err == nil {
		t.Fatal("second Wait on a collected Pending succeeded")
	}
	pC, err := cli.Submit(c)
	if err != nil {
		t.Fatalf("Submit after collecting the parked slot: %v", err)
	}
	if _, err := cli.Wait(pC, out); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitNeedsPipelinedClient pins the mode split: Submit is a
// pipelined-only API, and a bad Wait is rejected.
func TestSubmitNeedsPipelinedClient(t *testing.T) {
	srv := New(Config{})
	addr := startTCP(t, srv)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Submit([]linkstore.Op{{LinkID: 1}}); err == nil {
		t.Fatal("Submit on a classic client succeeded")
	}
	out := make([]int32, 1)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatalf("classic client was broken by the rejected Submit: %v", err)
	}

	pip, err := DialPipelined(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pip.Close()
	if _, err := pip.Wait(&Pending{id: 7}, out); err == nil {
		t.Fatal("Wait on a never-submitted Pending succeeded")
	}
}

// misbehavingServer accepts one connection, answers its first request
// with a response claiming the wrong record count, and keeps the
// connection open so the stray bytes stay on the wire.
func misbehavingServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		payload := make([]byte, binary.LittleEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		ops, _, _, err := DecodeRequest(payload, nil)
		if err != nil {
			return
		}
		// Claim one extra record and send that many rate bytes.
		resp := make([]byte, 4+len(ops)+1)
		binary.LittleEndian.PutUint32(resp[0:4], uint32(len(ops)+1))
		conn.Write(resp)
		// Hold the connection open until the test finishes.
		io.ReadFull(conn, hdr[:])
	}()
	return l.Addr().String()
}

// TestClientPoisonedAfterDesync is the desync-after-error fix: a response
// whose count disagrees with the request leaves unread bytes on the wire,
// so the client must fail that call AND refuse all later ones rather than
// resynchronizing on garbage.
func TestClientPoisonedAfterDesync(t *testing.T) {
	addr := misbehavingServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ops := []linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}, {LinkID: 2, Kind: core.KindSilentLoss}}
	out := make([]int32, len(ops))
	if _, err := cli.Decide(ops, out); err == nil {
		t.Fatal("count-mismatched response accepted")
	} else if strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("first error should be the root cause, got %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cli.Decide(ops, out); err == nil {
			t.Fatal("poisoned client served a call")
		} else if !strings.Contains(err.Error(), "poisoned") {
			t.Fatalf("call %d after poisoning returned %v, want the sticky poison error", i, err)
		}
	}
}

// TestValidationErrorsDoNotPoison: rejecting a bad argument writes
// nothing, so the connection stays usable.
func TestValidationErrorsDoNotPoison(t *testing.T) {
	srv := New(Config{})
	addr := startTCP(t, srv)
	cli, err := DialPipelined(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 4)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, RateIndex: 1000}}, out); err == nil {
		t.Fatal("unencodable rate index accepted")
	}
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatalf("client unusable after a validation error: %v", err)
	}
}

// TestCodecV3RoundTrip pins the pipelined framing: length class, request
// ID round trip, and byte-level compatibility with v2 records.
func TestCodecV3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ops := randOps(rng, 100, 1<<40)
	buf := AppendOpsV3(nil, 0xdeadbeef, ops)
	if want := headerSizeV3 + len(ops)*RecordSizeV2; len(buf) != want {
		t.Fatalf("encoded %d bytes, want %d", len(buf), want)
	}
	if len(buf)%2 != 1 || len(buf)%RecordSize == 0 {
		t.Fatal("v3 payload length collides with the v1 length class")
	}
	if (len(buf)-1)%RecordSizeV2 == 0 {
		t.Fatal("v3 payload length collides with the v2 length class")
	}
	got, reqID, tagged, err := DecodeRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tagged || reqID != 0xdeadbeef {
		t.Fatalf("decoded tagged=%v reqID=%#x, want true/0xdeadbeef", tagged, reqID)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !opsEqual(got[i], ops[i]) {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
	// The records after the v3 header are exactly the v2 encoding.
	v2 := AppendOpsV2(nil, ops)
	if string(buf[headerSizeV3:]) != string(v2[1:]) {
		t.Fatal("v3 record bytes drifted from the v2 encoding")
	}
	// And v1/v2 payloads pass through DecodeRequest untagged.
	if _, id, tagged, err := DecodeRequest(v2, nil); err != nil || tagged || id != 0 {
		t.Fatalf("v2 payload through DecodeRequest: id=%d tagged=%v err=%v", id, tagged, err)
	}
}
