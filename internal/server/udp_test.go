package server

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// startUDP spins up a served datagram socket and returns its address.
func startUDP(t *testing.T, srv *Server) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeUDP(conn) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeUDP: %v", err)
		}
	})
	return conn.LocalAddr().String()
}

func TestUDPEndToEndMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 32}})
	local := New(Config{Store: linkstore.Config{Shards: 32}})
	addr := startUDP(t, remote)

	cli, err := DialUDP(addr, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(2))
	got := make([]int32, 300)
	want := make([]int32, 300)
	for batch := 0; batch < 20; batch++ {
		ops := randOps(rng, 300, 500)
		res, ok, err := cli.Decide(ops, got)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !ok {
			t.Fatalf("batch %d: decision lost on loopback with a 1s timeout", batch)
		}
		if len(res) != len(ops) {
			t.Fatalf("batch %d: %d rates for %d ops", batch, len(res), len(ops))
		}
		local.Decide(ops, want)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("batch %d op %d: UDP %d != in-process %d", batch, i, got[i], want[i])
			}
		}
	}
	if st := remote.Stats(); st.Frames != 300*20 {
		t.Fatalf("remote served %d frames, want %d", st.Frames, 300*20)
	}
	if s := remote.Status(); s.UDP.DatagramsRx != 20 || s.UDP.RequestsV3 != 20 || s.UDP.Drops != 0 {
		t.Fatalf("udp counters %+v, want 20 v3 datagrams and no drops", s.UDP)
	}
}

// TestUDPWindowedMatchesInProcess exercises the windowed client (several
// datagrams in flight, so the server actually forms multi-datagram
// bursts) with disjoint link cohorts per slot, exactly as the loadgen
// partitions them: per-link feedback order is then submit order, and a
// mirror server fed the same batches one Decide each must agree
// byte-for-byte.
func TestUDPWindowedMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 16}})
	local := New(Config{Store: linkstore.Config{Shards: 16}})
	addr := startUDP(t, remote)

	const window = 8
	cli, err := DialUDP(addr, window, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(5))
	type flight struct {
		ops []linkstore.Op
		p   *UDPPending
	}
	out := make([]int32, 64)
	want := make([]int32, 64)
	for round := 0; round < 30; round++ {
		var fl [window]flight
		for s := 0; s < window; s++ {
			ops := randOps(rng, 64, 50)
			for j := range ops {
				ops[j].LinkID += uint64(s) * 1000 // cohort: disjoint links per slot
			}
			p, err := cli.Submit(ops)
			if err != nil {
				t.Fatalf("round %d slot %d: %v", round, s, err)
			}
			fl[s] = flight{ops, p}
		}
		for s := 0; s < window; s++ {
			res, ok, err := cli.Wait(fl[s].p, out)
			if err != nil {
				t.Fatalf("round %d slot %d: %v", round, s, err)
			}
			if !ok {
				t.Fatalf("round %d slot %d: lost on loopback", round, s)
			}
			local.Decide(fl[s].ops, want)
			for i := range res {
				if res[i] != want[i] {
					t.Fatalf("round %d slot %d op %d: UDP %d != in-process %d", round, s, i, res[i], want[i])
				}
			}
		}
	}
	if st := cli.Stats(); st.Answered != 30*window || st.Timeouts != 0 {
		t.Fatalf("client stats %+v, want %d answered, 0 timeouts", st, 30*window)
	}
	// The window genuinely put multiple datagrams in flight, so at least
	// some bursts must have drained more than one.
	if s := remote.Status(); s.UDP.Bursts == s.UDP.DatagramsRx {
		t.Logf("note: every burst had size 1 (%d bursts); timing-dependent, not a failure", s.UDP.Bursts)
	}
}

// TestUDPClientLossSemantics drives the client against a hand-rolled
// peer socket so response loss, reordering and duplication are exact:
// a timed-out decision reports ok=false and does NOT poison the client
// (unlike the TCP client, where a framing error is sticky), out-of-order
// responses park in their slots, and late duplicates are counted stale
// and dropped.
func TestUDPClientLossSemantics(t *testing.T) {
	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	cli, err := DialUDP(peer.LocalAddr().String(), 4, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ops := []linkstore.Op{{LinkID: 1, Kind: core.KindBER, BER: 1e-5}}
	buf := make([]byte, MaxDatagram)
	readReq := func() (seq uint32, n int, from *net.UDPAddr) {
		t.Helper()
		peer.SetReadDeadline(time.Now().Add(2 * time.Second))
		ln, addr, err := peer.ReadFromUDP(buf)
		if err != nil {
			t.Fatal(err)
		}
		if ln < headerSizeV3 || buf[0] != VersionV3 {
			t.Fatalf("peer got a non-v3 request (%d bytes)", ln)
		}
		return binary.LittleEndian.Uint32(buf[1:5]), (ln - headerSizeV3) / RecordSizeV2, addr
	}
	respond := func(seq uint32, n int, rate byte, to *net.UDPAddr) {
		t.Helper()
		resp := make([]byte, 8+n)
		binary.LittleEndian.PutUint32(resp[0:4], seq)
		binary.LittleEndian.PutUint32(resp[4:8], uint32(n))
		for i := 0; i < n; i++ {
			resp[8+i] = rate
		}
		if _, err := peer.WriteToUDP(resp, to); err != nil {
			t.Fatal(err)
		}
	}

	// Out-of-order: two in flight, answered newest-first. Both Waits must
	// succeed with their own rates.
	p1, err := cli.Submit(ops)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cli.Submit(ops)
	if err != nil {
		t.Fatal(err)
	}
	s1, n1, addr := readReq()
	s2, n2, _ := readReq()
	respond(s2, n2, 5, addr)
	respond(s1, n1, 3, addr)
	out := make([]int32, 1)
	if res, ok, err := cli.Wait(p1, out); err != nil || !ok || res[0] != 3 {
		t.Fatalf("Wait(p1) = %v, %v, %v; want rate 3", res, ok, err)
	}
	if res, ok, err := cli.Wait(p2, out); err != nil || !ok || res[0] != 5 {
		t.Fatalf("Wait(p2) = %v, %v, %v; want rate 5 (parked while p1 waited)", res, ok, err)
	}

	// Dropped response: the peer reads the request and stays silent. Wait
	// times out with ok=false and NO error — the decision is lost, the
	// caller keeps its rate, and the client stays usable.
	p3, err := cli.Submit(ops)
	if err != nil {
		t.Fatal(err)
	}
	s3, n3, _ := readReq()
	if res, ok, err := cli.Wait(p3, out); err != nil || ok || res != nil {
		t.Fatalf("Wait on a dropped response = %v, %v, %v; want nil, false, nil", res, ok, err)
	}

	// Late duplicate: p3's response finally shows up, twice, while p4 is
	// in flight. Both copies are stale (their request already timed out);
	// p4's own answer still lands.
	respond(s3, n3, 7, addr)
	respond(s3, n3, 7, addr)
	p4, err := cli.Submit(ops)
	if err != nil {
		t.Fatalf("Submit after a timeout must work (loss does not poison): %v", err)
	}
	s4, n4, _ := readReq()
	respond(s4, n4, 2, addr)
	if res, ok, err := cli.Wait(p4, out); err != nil || !ok || res[0] != 2 {
		t.Fatalf("Wait(p4) = %v, %v, %v; want rate 2 despite stale traffic", res, ok, err)
	}

	// Malformed response: counted, dropped, no wedge.
	p5, err := cli.Submit(ops)
	if err != nil {
		t.Fatal(err)
	}
	s5, n5, _ := readReq()
	peer.WriteToUDP([]byte{1, 2, 3}, addr)
	respond(s5, n5, 4, addr)
	if res, ok, err := cli.Wait(p5, out); err != nil || !ok || res[0] != 4 {
		t.Fatalf("Wait(p5) = %v, %v, %v; want rate 4 after a malformed datagram", res, ok, err)
	}

	st := cli.Stats()
	if st.Sent != 5 || st.Answered != 4 || st.Timeouts != 1 || st.Stale != 2 || st.Malformed != 1 {
		t.Fatalf("stats %+v; want sent=5 answered=4 timeouts=1 stale=2 malformed=1", st)
	}
}

// TestUDPDropShimInjectsLoss pins the -udp-drop test hook: an injected
// response drop is indistinguishable from network loss (timeout, keep
// rate, no poison), and the server's decision still applied — the next
// answered decision reflects it, byte-identical to an in-process mirror
// that saw every request.
func TestUDPDropShimInjectsLoss(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 8}})
	local := New(Config{Store: linkstore.Config{Shards: 8}})
	addr := startUDP(t, remote)

	cli, err := DialUDP(addr, 1, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	drop := uint32(3) // drop exactly the 4th response (seq 3)
	cli.DropResponse = func(seq uint32) bool { return seq == drop }

	rng := rand.New(rand.NewSource(11))
	got := make([]int32, 32)
	want := make([]int32, 32)
	answered := 0
	for batch := 0; batch < 10; batch++ {
		ops := randOps(rng, 32, 40)
		res, ok, err := cli.Decide(ops, got)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		// The mirror advances on every request — the server applied the
		// dropped batch too; only its answer was lost.
		local.Decide(ops, want)
		if batch == int(drop) {
			if ok {
				t.Fatalf("batch %d: the shim should have dropped this response", batch)
			}
			continue
		}
		if !ok {
			t.Fatalf("batch %d: lost without injection", batch)
		}
		answered++
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("batch %d op %d: UDP %d != mirror %d (state diverged across the drop)", batch, i, res[i], want[i])
			}
		}
	}
	st := cli.Stats()
	if st.Injected != 1 || st.Timeouts != 1 || int(st.Answered) != answered {
		t.Fatalf("stats %+v; want exactly one injected drop and one timeout", st)
	}
}

// TestServeUDPGarbageDatagrams sends undecodable datagrams between valid
// ones: the garbage is dropped (counted, unanswered) and the valid
// traffic is served unharmed — no connection to poison, no desync.
func TestServeUDPGarbageDatagrams(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	addr := startUDP(t, srv)

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	for _, garbage := range [][]byte{
		{0x7f},                     // bad version, matches no length class
		{0x03, 1, 2, 3},            // v3 header truncated
		make([]byte, RecordSize+1), // misaligned v1
		make([]byte, headerSizeV3+RecordSizeV2-1), // truncated v3 record
	} {
		if _, err := raw.Write(garbage); err != nil {
			t.Fatal(err)
		}
	}

	cli, err := DialUDP(addr, 1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 1)
	if _, ok, err := cli.Decide([]linkstore.Op{{LinkID: 9, Kind: core.KindSilentLoss}}, out); err != nil || !ok {
		t.Fatalf("healthy client failed after garbage datagrams: ok=%v err=%v", ok, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		if s := srv.Status(); s.UDP.Drops == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("udp drops = %d, want 4", srv.Status().UDP.Drops)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServeUDPConcurrentClients(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 16, TTL: 50 * time.Millisecond}})
	addr := startUDP(t, srv)

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := DialUDP(addr, 2, time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			out := make([]int32, 64)
			for i := 0; i < 50; i++ {
				ops := randOps(rng, 64, 100)
				for j := range ops {
					ops[j].LinkID += uint64(c) * 1000
				}
				if _, _, err := cli.Decide(ops, out); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Frames != clients*50*64 {
		t.Fatalf("served %d frames, want %d", st.Frames, clients*50*64)
	}
}

// TestServeUDPDrain: Drain answers what has arrived and winds the
// datagram loop down; requests sent after the drain get no response —
// by the loss contract, indistinguishable from a lost datagram.
func TestServeUDPDrain(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeUDP(conn) }()

	cli, err := DialUDP(conn.LocalAddr().String(), 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 1)
	if _, ok, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindBER, BER: 1e-5}}, out); err != nil || !ok {
		t.Fatalf("pre-drain decide: ok=%v err=%v", ok, err)
	}

	srv.Drain(time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeUDP after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUDP did not exit after Drain")
	}

	// Post-drain requests are lost decisions, not errors.
	if _, ok, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindBER, BER: 1e-5}}, out); err != nil || ok {
		t.Fatalf("post-drain decide: ok=%v err=%v; want a quiet timeout", ok, err)
	}
}
