//go:build !unix

package shmring

import (
	"errors"
	"os"
)

// ErrUnsupported is returned on platforms without MAP_SHARED mmap; the
// shared-memory transport is unix-only and softrated refuses -shm there.
var ErrUnsupported = errors.New("shmring: shared-memory rings are not supported on this platform")

func mapShared(f *os.File, size int) ([]byte, error) {
	return nil, ErrUnsupported
}

func unmap(mem []byte) error { return nil }
