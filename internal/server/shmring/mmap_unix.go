//go:build unix

package shmring

import (
	"os"
	"syscall"
)

// mapShared maps size bytes of f shared and read-write: stores by either
// process are visible to the other through the page cache.
func mapShared(f *os.File, size int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

func unmap(mem []byte) error {
	return syscall.Munmap(mem)
}
