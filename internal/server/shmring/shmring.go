// Package shmring is the shared-memory transport substrate for
// co-located softrated clients: a pair of SPSC byte rings (request:
// client→server, response: server→client) living in one mmap-backed
// file both processes map MAP_SHARED. No syscalls on the data path —
// a message moves as one copy into the ring plus one atomic publish of
// the producer's tail — so a co-located client pays neither the socket
// round trip nor the kernel's per-datagram bookkeeping.
//
// Layout (all little-endian, offsets fixed by the header so any
// mapper can validate before touching data):
//
//	[0:8)    magic "SRRING1\x00"
//	[8:16)   per-ring capacity in bytes (power of two)
//	[64]     request-ring head  (consumer: server)   — own cache line
//	[128]    request-ring tail  (producer: client)   — own cache line
//	[192]    response-ring head (consumer: client)   — own cache line
//	[256]    response-ring tail (producer: server)   — own cache line
//	[320]    attach state u32: 0 free, 1 attached, 2 closing
//	[324]    draining u32: server is draining; clients must stop submitting
//	[4096:4096+cap)        request ring data
//	[4096+cap:4096+2cap)   response ring data
//
// Each ring is a free-running-counter SPSC queue of length-prefixed
// messages: [u32 len][payload, padded to 4 bytes]. A message never
// wraps — when the tail is too close to the end, the producer writes a
// wrap marker (len = 0xFFFFFFFF, or nothing if fewer than 4 bytes
// remain, which the 4-byte alignment rules out) and continues at
// offset 0 — so a consumer always sees its payload contiguous and can
// decode it in place, zero-copy. head and tail are monotonic uint64s
// (index = value & (cap-1)); the producer publishes with an atomic
// store of tail after the payload bytes are in place, the consumer
// releases space with an atomic store of head, and Go's atomics give
// the acquire/release ordering both sides need — across goroutines and
// across processes sharing the mapping alike.
//
// Attach discipline: the server creates the file and owns reclaim; a
// client claims the region by a compare-and-swap of the attach state
// (0→1) — which works cross-process because the flag lives in the
// shared mapping — and marks it 2 (closing) on exit. The server
// observes 2, resets both rings, and stores 0 so the slot is reusable.
package shmring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sync/atomic"
	"unsafe"
)

const (
	magic = "SRRING1\x00"

	// headerBytes reserves the first page for the header and the
	// cache-line-padded cursors.
	headerBytes = 4096

	offMagic    = 0
	offCap      = 8
	offReqHead  = 64
	offReqTail  = 128
	offRespHead = 192
	offRespTail = 256
	offState    = 320
	offDraining = 324

	// wrapMarker in a length slot tells the consumer to continue at
	// offset 0.
	wrapMarker = ^uint32(0)

	// MinCapacity and DefaultCapacity bound a ring's data size. The
	// minimum keeps the wrap arithmetic trivially safe for MaxMessage.
	MinCapacity     = 64 << 10
	DefaultCapacity = 1 << 20
)

// Attach states stored at offState.
const (
	StateFree     = 0
	StateAttached = 1
	StateClosing  = 2
)

// MaxMessage bounds one message's payload so a single message can never
// deadlock a ring (it always fits with room to spare).
func MaxMessage(capacity int) int { return capacity / 4 }

// Ring is one direction of a region: an SPSC byte queue over shared
// memory. Exactly one goroutine/process may produce and one may consume.
type Ring struct {
	head *atomic.Uint64 // consumer cursor
	tail *atomic.Uint64 // producer cursor
	data []byte
	mask uint64
}

// align4 rounds n up to a multiple of 4.
func align4(n int) int { return (n + 3) &^ 3 }

// Push copies payload into the ring and publishes it. Returns false when
// the ring lacks space (try again after the consumer drains). Only the
// producer side may call it.
func (r *Ring) Push(payload []byte) bool {
	need := uint64(4 + align4(len(payload)))
	capacity := uint64(len(r.data))
	tail := r.tail.Load()
	head := r.head.Load()
	free := capacity - (tail - head)
	off := tail & r.mask
	rem := capacity - off
	if rem < need {
		// Marker + restart at 0: the message consumes the tail-end
		// remainder too.
		if free < rem+need {
			return false
		}
		binary.LittleEndian.PutUint32(r.data[off:], wrapMarker)
		tail += rem
		off = 0
	} else if free < need {
		return false
	}
	binary.LittleEndian.PutUint32(r.data[off:], uint32(len(payload)))
	copy(r.data[off+4:], payload)
	r.tail.Store(tail + need) // publish: payload bytes land before the tail moves
	return true
}

// Peek returns the oldest unconsumed message's payload, aliased into the
// ring — valid until Advance. Returns ok=false when the ring is empty.
// Only the consumer side may call it.
func (r *Ring) Peek() (payload []byte, ok bool) {
	capacity := uint64(len(r.data))
	for {
		head := r.head.Load()
		if head == r.tail.Load() {
			return nil, false
		}
		off := head & r.mask
		ln := binary.LittleEndian.Uint32(r.data[off:])
		if ln == wrapMarker {
			r.head.Store(head + (capacity - off))
			continue
		}
		return r.data[off+4 : off+4+uint64(ln)], true
	}
}

// Advance releases the message last returned by Peek, making its space
// available to the producer. Call exactly once per successful Peek,
// after the payload has been fully consumed.
func (r *Ring) Advance() {
	head := r.head.Load()
	off := head & r.mask
	ln := binary.LittleEndian.Uint32(r.data[off:])
	r.head.Store(head + uint64(4+align4(int(ln))))
}

// Region is one mapped ring pair.
type Region struct {
	mem  []byte
	f    *os.File
	req  Ring // client → server
	resp Ring // server → client
}

// Request returns the client→server ring (producer: client; consumer:
// server).
func (g *Region) Request() *Ring { return &g.req }

// Response returns the server→client ring (producer: server; consumer:
// client).
func (g *Region) Response() *Ring { return &g.resp }

func (g *Region) u64(off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&g.mem[off]))
}

func (g *Region) u32(off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&g.mem[off]))
}

func (g *Region) initRings() {
	capacity := binary.LittleEndian.Uint64(g.mem[offCap:])
	g.req = Ring{
		head: g.u64(offReqHead), tail: g.u64(offReqTail),
		data: g.mem[headerBytes : headerBytes+capacity],
		mask: capacity - 1,
	}
	g.resp = Ring{
		head: g.u64(offRespHead), tail: g.u64(offRespTail),
		data: g.mem[headerBytes+capacity : headerBytes+2*capacity],
		mask: capacity - 1,
	}
}

// Create builds a fresh region file at path (truncating any previous
// one) with the given per-ring capacity (0 picks DefaultCapacity;
// otherwise it must be a power of two >= MinCapacity) and maps it. The
// creator is the server side.
func Create(path string, capacity int) (*Region, error) {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < MinCapacity || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("shmring: capacity %d must be a power of two >= %d", capacity, MinCapacity)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	size := headerBytes + 2*capacity
	// Truncate down then up so a reused path starts all-zero.
	if err := f.Truncate(0); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		return nil, err
	}
	mem, err := mapShared(f, size)
	if err != nil {
		f.Close()
		return nil, err
	}
	g := &Region{mem: mem, f: f}
	binary.LittleEndian.PutUint64(mem[offCap:], uint64(capacity))
	copy(mem[offMagic:], magic) // magic last: an Open racing Create sees it only when the header is complete
	g.initRings()
	return g, nil
}

// Open maps an existing region file (the client side).
func Open(path string) (*Region, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < headerBytes {
		f.Close()
		return nil, fmt.Errorf("shmring: %s: too small to hold a header", path)
	}
	mem, err := mapShared(f, int(st.Size()))
	if err != nil {
		f.Close()
		return nil, err
	}
	g := &Region{mem: mem, f: f}
	if string(mem[offMagic:offMagic+8]) != magic {
		g.Close()
		return nil, fmt.Errorf("shmring: %s: bad magic (not a ring region, or still initializing)", path)
	}
	capacity := binary.LittleEndian.Uint64(mem[offCap:])
	if capacity < MinCapacity || capacity&(capacity-1) != 0 || int64(headerBytes+2*capacity) != st.Size() {
		g.Close()
		return nil, fmt.Errorf("shmring: %s: header capacity %d inconsistent with file size %d", path, capacity, st.Size())
	}
	g.initRings()
	return g, nil
}

// Attach claims the region for this client: a cross-process CAS of the
// attach state from free to attached. Returns false when another client
// holds it (or its teardown is still being reclaimed).
func (g *Region) Attach() bool {
	return g.u32(offState).CompareAndSwap(StateFree, StateAttached)
}

// ClientClose marks the region closing. The server reclaims it (resets
// the rings, frees the slot); the client must not touch the rings after
// this.
func (g *Region) ClientClose() {
	g.u32(offState).Store(StateClosing)
}

// State returns the attach state (StateFree/StateAttached/StateClosing).
func (g *Region) State() uint32 { return g.u32(offState).Load() }

// Reclaim resets a closing region to free: both rings are emptied and
// the attach slot reopened. Server side only, and only meaningful when
// State is StateClosing (it refuses otherwise).
func (g *Region) Reclaim() bool {
	if g.u32(offState).Load() != StateClosing {
		return false
	}
	g.u64(offReqHead).Store(0)
	g.u64(offReqTail).Store(0)
	g.u64(offRespHead).Store(0)
	g.u64(offRespTail).Store(0)
	g.u32(offState).Store(StateFree)
	return true
}

// SetDraining raises the draining flag: clients must stop submitting
// (their next Submit/Wait fails with a draining error) while the server
// answers what the request ring already holds.
func (g *Region) SetDraining() { g.u32(offDraining).Store(1) }

// Draining reports the draining flag.
func (g *Region) Draining() bool { return g.u32(offDraining).Load() != 0 }

// ErrClosed is returned by Close on double-close.
var ErrClosed = errors.New("shmring: region already closed")

// Close unmaps the region and closes its file. The file itself is left
// on disk (the creator decides when to unlink it).
func (g *Region) Close() error {
	if g.mem == nil {
		return ErrClosed
	}
	mem := g.mem
	g.mem = nil
	g.req = Ring{}
	g.resp = Ring{}
	err := unmap(mem)
	if cerr := g.f.Close(); err == nil {
		err = cerr
	}
	return err
}
