package shmring

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func newRegion(t *testing.T, capacity int) *Region {
	t.Helper()
	g, err := Create(filepath.Join(t.TempDir(), "ring"), capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Close() })
	return g
}

func TestRingRoundTrip(t *testing.T) {
	g := newRegion(t, MinCapacity)
	r := g.Request()
	if _, ok := r.Peek(); ok {
		t.Fatal("fresh ring is not empty")
	}
	msgs := [][]byte{
		[]byte("a"),
		[]byte("four"),
		{},
		bytes.Repeat([]byte{0xab}, 1000),
	}
	for _, m := range msgs {
		if !r.Push(m) {
			t.Fatalf("Push(%d bytes) failed on an empty ring", len(m))
		}
	}
	for i, want := range msgs {
		got, ok := r.Peek()
		if !ok {
			t.Fatalf("message %d missing", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: %q != %q", i, got, want)
		}
		r.Advance()
	}
	if _, ok := r.Peek(); ok {
		t.Fatal("drained ring is not empty")
	}
}

// TestRingWrapMarker forces the wrap path: fill so the next message does
// not fit in the tail remainder, then check it arrives intact from
// offset 0 and that space accounting (marker included) stays exact.
func TestRingWrapMarker(t *testing.T) {
	g := newRegion(t, MinCapacity)
	r := g.Request()
	msg := bytes.Repeat([]byte{0x5a}, 1000)
	// March the cursors close to the end of the ring.
	for uint64(len(r.data))-(r.tail.Load()&r.mask) > uint64(len(msg)) {
		if !r.Push(msg) {
			t.Fatal("Push failed with the ring being drained in lockstep")
		}
		if _, ok := r.Peek(); !ok {
			t.Fatal("Peek failed in lockstep drain")
		}
		r.Advance()
	}
	// Now rem < need: this Push writes a wrap marker and restarts at 0.
	big := bytes.Repeat([]byte{0xc3}, 2000)
	if !r.Push(big) {
		t.Fatal("wrapping Push failed on an otherwise empty ring")
	}
	got, ok := r.Peek()
	if !ok || !bytes.Equal(got, big) {
		t.Fatalf("message lost or corrupted across the wrap (ok=%v, %d bytes)", ok, len(got))
	}
	if off := r.head.Load() & r.mask; off != 0 {
		t.Fatalf("head at data offset %d after skipping the marker, want 0 (message restarted)", off)
	}
	r.Advance()
	if r.head.Load() != r.tail.Load() {
		t.Fatal("cursors disagree after draining the wrapped message")
	}
}

func TestRingFullRejectsAndRecovers(t *testing.T) {
	g := newRegion(t, MinCapacity)
	r := g.Request()
	msg := bytes.Repeat([]byte{1}, MaxMessage(MinCapacity))
	pushed := 0
	for r.Push(msg) {
		pushed++
		if pushed > MinCapacity {
			t.Fatal("ring never filled")
		}
	}
	if pushed < 3 {
		t.Fatalf("only %d MaxMessage payloads fit, capacity accounting is off", pushed)
	}
	// Drain one message; the same push must now succeed.
	if _, ok := r.Peek(); !ok {
		t.Fatal("full ring has nothing to peek")
	}
	r.Advance()
	if !r.Push(msg) {
		t.Fatal("Push still fails after freeing a same-sized message")
	}
}

// TestRingSPSCConcurrent hammers one ring with a real producer/consumer
// pair — under -race this also proves the publish discipline (payload
// bytes before the tail store) has no data race.
func TestRingSPSCConcurrent(t *testing.T) {
	g := newRegion(t, MinCapacity)
	r := g.Request()
	const total = 20000
	errc := make(chan error, 1)
	go func() {
		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, 512)
		for i := 0; i < total; i++ {
			n := 4 + rng.Intn(500)
			binary.LittleEndian.PutUint32(buf[:4], uint32(i))
			for !r.Push(buf[:n]) {
			}
		}
		errc <- nil
	}()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < total; i++ {
		var payload []byte
		for {
			var ok bool
			if payload, ok = r.Peek(); ok {
				break
			}
		}
		wantN := 4 + rng.Intn(500)
		if len(payload) != wantN {
			t.Fatalf("message %d: %d bytes, want %d", i, len(payload), wantN)
		}
		if got := binary.LittleEndian.Uint32(payload[:4]); got != uint32(i) {
			t.Fatalf("message %d carries sequence %d: reordered or corrupted", i, got)
		}
		r.Advance()
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestCreateRejectsBadCapacity(t *testing.T) {
	dir := t.TempDir()
	for _, c := range []int{MinCapacity / 2, MinCapacity + 1, 3 * MinCapacity} {
		if g, err := Create(filepath.Join(dir, "bad"), c); err == nil {
			g.Close()
			t.Fatalf("Create accepted capacity %d", c)
		}
	}
}

func TestOpenValidatesHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring")
	g, err := Create(path, MinCapacity)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	o, err := Open(path)
	if err != nil {
		t.Fatalf("Open of a valid region: %v", err)
	}
	o.Close()

	// Too small, bad magic, size/capacity mismatch: all rejected.
	short := filepath.Join(t.TempDir(), "short")
	writeFile(t, short, make([]byte, 100))
	if _, err := Open(short); err == nil {
		t.Fatal("Open accepted a file smaller than the header")
	}
	noMagic := filepath.Join(t.TempDir(), "nomagic")
	writeFile(t, noMagic, make([]byte, headerBytes+2*MinCapacity))
	if _, err := Open(noMagic); err == nil {
		t.Fatal("Open accepted a zeroed file (no magic)")
	}
	truncated := filepath.Join(t.TempDir(), "trunc")
	hdr := make([]byte, headerBytes+MinCapacity) // header claims 2x this
	copy(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[offCap:], MinCapacity)
	writeFile(t, truncated, hdr)
	if _, err := Open(truncated); err == nil {
		t.Fatal("Open accepted a capacity/size mismatch")
	}
}

func TestAttachLifecycle(t *testing.T) {
	g := newRegion(t, MinCapacity)
	if g.State() != StateFree {
		t.Fatalf("fresh region state %d, want free", g.State())
	}
	if !g.Attach() {
		t.Fatal("Attach failed on a free region")
	}
	if g.Attach() {
		t.Fatal("second Attach succeeded on a held region")
	}
	if g.Reclaim() {
		t.Fatal("Reclaim succeeded while the client is attached")
	}
	// Leave some garbage in the rings; reclaim must reset it.
	g.Request().Push([]byte("stale"))
	g.Response().Push([]byte("stale"))
	g.ClientClose()
	if g.State() != StateClosing {
		t.Fatalf("state %d after ClientClose, want closing", g.State())
	}
	if !g.Reclaim() {
		t.Fatal("Reclaim failed on a closing region")
	}
	if g.State() != StateFree {
		t.Fatalf("state %d after Reclaim, want free", g.State())
	}
	if _, ok := g.Request().Peek(); ok {
		t.Fatal("reclaimed request ring still holds a message")
	}
	if !g.Attach() {
		t.Fatal("Attach failed on a reclaimed region")
	}
}

func TestDrainingFlag(t *testing.T) {
	g := newRegion(t, MinCapacity)
	if g.Draining() {
		t.Fatal("fresh region is draining")
	}
	g.SetDraining()
	if !g.Draining() {
		t.Fatal("SetDraining did not stick")
	}
}

// TestTwoMappingsShareState maps the same file twice — the in-process
// stand-in for two processes — and checks messages and attach state flow
// across mappings.
func TestTwoMappingsShareState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring")
	srv, err := Create(path, MinCapacity)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if !cli.Attach() {
		t.Fatal("client mapping failed to attach")
	}
	if srv.State() != StateAttached {
		t.Fatal("attach not visible through the server mapping")
	}
	if !cli.Request().Push([]byte("hello")) {
		t.Fatal("push through the client mapping failed")
	}
	got, ok := srv.Request().Peek()
	if !ok || string(got) != "hello" {
		t.Fatalf("server mapping sees %q, %v", got, ok)
	}
	srv.Request().Advance()
	if !srv.Response().Push([]byte("world")) {
		t.Fatal("response push failed")
	}
	got, ok = cli.Response().Peek()
	if !ok || string(got) != "world" {
		t.Fatalf("client mapping sees %q, %v", got, ok)
	}
	cli.Response().Advance()
	srv.SetDraining()
	if !cli.Draining() {
		t.Fatal("draining flag not visible through the client mapping")
	}
}

func TestCloseIsTerminal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring")
	g, err := Create(path, MinCapacity)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != ErrClosed {
		t.Fatalf("double Close returned %v, want ErrClosed", err)
	}
}

func writeFile(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}
