package server

import (
	"encoding/binary"
	"math/bits"
	"net/netip"

	"softrate/internal/linkstore"
	"softrate/internal/obs"
)

// The burst engine is the shared core of the datagram transports (udp.go,
// shm.go): gather up to BurstSize self-contained request payloads, route
// every decoded record into ONE Server.Decide — so the whole burst pays
// the shard-routing and lock cost once, the amortization the pipelined
// TCP path only gets from a deep client window — then build all the
// response datagrams back-to-back. A malformed payload is dropped (no
// response, one counter bump) without touching the rest of its burst;
// decisions for the well-formed payloads are byte-identical to serving
// each alone. All buffers are reused, so a warm engine processes bursts
// with zero allocations even with metrics on.

const (
	// MaxDatagram is the largest request payload the datagram transports
	// accept (covers the IPv4 UDP maximum; also the shm message bound).
	MaxDatagram = 64 << 10
	// BurstSize is the most payloads one burst drains before deciding.
	BurstSize = 32
	// burstBucketCount sizes the burst-size histogram: power-of-two
	// buckets <=1, <=2, <=4, <=8, <=16, <=32.
	burstBucketCount = 6
)

// dgramState holds one datagram transport's counters. Recording is one
// atomic per datagram or per burst — never per record.
type dgramState struct {
	rx     obs.Counter // datagrams received (well-formed or not)
	tx     obs.Counter // response datagrams written
	bursts obs.Counter // burst loop iterations that served >= 1 datagram
	drops  obs.Counter // malformed datagrams dropped without a response
	txErrs obs.Counter // responses the transport failed to write
	shed   obs.Counter // datagrams shed unserved at a saturated gate

	reqV1, reqV2, reqV3 obs.Counter // request payloads by framing version

	burstBuckets [burstBucketCount]obs.Counter // burst sizes, power-of-two

	ringsAttached obs.Gauge // shm only: rings with a live client
}

// burstBucket maps a burst size in [1, BurstSize] to its histogram slot.
func burstBucket(n int) int {
	b := bits.Len(uint(n - 1)) // 1→0, 2→1, 3-4→2, 5-8→3, 9-16→4, 17-32→5
	if b >= burstBucketCount {
		b = burstBucketCount - 1
	}
	return b
}

// dgram is one request payload of a burst.
type dgram struct {
	reqID  uint32
	tagged bool
	ok     bool // decoded cleanly; gets a response
	// Op range in the engine's burst-wide ops slice.
	opStart, opEnd int32
	// Response span in the engine's burst-wide response buffer.
	respStart, respEnd int32
	// Transport tags: the UDP loop stores the peer address, the shm loop
	// the ring index. The engine itself never reads either.
	addr netip.AddrPort
	ring int
}

// burstEngine accumulates one burst. Not safe for concurrent use; each
// transport loop owns one.
type burstEngine struct {
	s  *Server
	st *dgramState
	n  int
	dg [BurstSize]dgram

	ops  []linkstore.Op
	out  []int32
	resp []byte
}

func newBurstEngine(s *Server, st *dgramState) *burstEngine {
	return &burstEngine{s: s, st: st}
}

// reset starts a new burst.
func (e *burstEngine) reset() {
	e.n = 0
	e.ops = e.ops[:0]
}

// add decodes one request payload into the burst and returns its slot (so
// the transport can tag it with an address or ring index). A payload that
// fails to decode is counted in drops and marked not-ok: it gets no
// response and contributes no ops, and the rest of the burst is
// unaffected. The payload bytes are fully consumed here — the caller may
// reuse or unmap them as soon as add returns.
func (e *burstEngine) add(payload []byte) *dgram {
	d := &e.dg[e.n]
	e.n++
	start := int32(len(e.ops))
	*d = dgram{opStart: start}
	e.st.rx.Inc()
	ops, reqID, tagged, err := appendDecodeRequest(payload, e.ops)
	e.ops = ops // keep grown capacity even when the decode failed midway
	if err != nil {
		e.ops = e.ops[:start]
		e.st.drops.Inc()
		return d
	}
	d.reqID, d.tagged, d.ok = reqID, tagged, true
	d.opEnd = int32(len(e.ops))
	switch {
	case tagged:
		e.st.reqV3.Inc()
	case len(payload)%RecordSize == 0:
		e.st.reqV1.Inc()
	default:
		e.st.reqV2.Inc()
	}
	return d
}

// finish decides the whole burst in one Decide and builds every response
// payload. After finish, response(d) returns each ok datagram's response
// bytes (valid until the next reset).
func (e *burstEngine) finish() {
	if e.n == 0 {
		return
	}
	e.st.bursts.Inc()
	e.st.burstBuckets[burstBucket(e.n)].Inc()
	total := len(e.ops)
	if cap(e.out) < total {
		e.out = make([]int32, total)
	}
	out := e.out[:total]
	if total > 0 {
		e.s.Decide(e.ops, out)
	}
	e.resp = e.resp[:0]
	for i := 0; i < e.n; i++ {
		d := &e.dg[i]
		if !d.ok {
			continue
		}
		n := int(d.opEnd - d.opStart)
		d.respStart = int32(len(e.resp))
		var hdr [8]byte
		if d.tagged {
			binary.LittleEndian.PutUint32(hdr[0:4], d.reqID)
			binary.LittleEndian.PutUint32(hdr[4:8], uint32(n))
			e.resp = append(e.resp, hdr[:8]...)
		} else {
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
			e.resp = append(e.resp, hdr[:4]...)
		}
		for _, ri := range out[d.opStart:d.opEnd] {
			e.resp = append(e.resp, uint8(ri))
		}
		d.respEnd = int32(len(e.resp))
	}
}

// dgrams returns the burst's slots (valid until the next reset).
func (e *burstEngine) dgrams() []dgram { return e.dg[:e.n] }

// response returns d's encoded response (valid until the next reset).
func (e *burstEngine) response(d *dgram) []byte { return e.resp[d.respStart:d.respEnd] }
