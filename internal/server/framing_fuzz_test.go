package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// frame prefixes a payload with the uint32 length header the TCP
// transport uses.
func frame(payload []byte) []byte {
	b := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}

// FuzzServeFraming feeds an arbitrary byte stream to a served connection
// and checks the transport contract above the codec:
//
//   - the handler never panics, whatever the peer sends;
//   - every well-formed request in the prefix before the first protocol
//     violation is answered in order, a v3 request's response echoes its
//     request ID, the count matches the batch, and the rate bytes equal
//     an in-process replay's decisions;
//   - at the first violation (oversized length, undecodable payload) the
//     connection is dropped without taking the server down: a fresh
//     connection is served and continues from the same store state.
func FuzzServeFraming(f *testing.F) {
	opsA := []linkstore.Op{{LinkID: 1, Kind: core.KindBER, RateIndex: 3, BER: 1e-5}}
	opsB := []linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}, {LinkID: 2, Kind: core.KindPostamble, RateIndex: 2}}
	v3a := AppendOpsV3(nil, 7, opsA)
	v2b := AppendOpsV2(nil, opsB)
	oversized := make([]byte, 4)
	binary.LittleEndian.PutUint32(oversized, maxPayload+1)

	f.Add(frame(v3a))
	f.Add(append(frame(v3a), frame(v2b)...))
	f.Add(append(frame(v2b), frame(v3a)...))
	f.Add(append(frame(v3a), oversized...))              // drop on length
	f.Add(append(frame(v3a), frame([]byte{1, 2, 3})...)) // drop on decode
	f.Add(frame(v3a)[:7])                                // truncated mid-payload
	f.Add(frame(nil))                                    // empty v1 batch
	f.Add(frame(AppendOpsV3(nil, 0xffffffff, nil)))      // empty pipelined batch

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<15 {
			data = data[:1<<15]
		}
		remote := New(Config{Store: linkstore.Config{Shards: 4}})
		local := New(Config{Store: linkstore.Config{Shards: 4}})

		cli, srv := net.Pipe()
		done := make(chan struct{})
		go func() {
			remote.handleConn(srv)
			close(done)
		}()
		cli.SetDeadline(time.Now().Add(30 * time.Second))

		// Walk the stream with the same parse the handler runs. Each
		// complete well-formed frame goes out in its own Write, so the
		// server sees an empty read buffer after serving it and must
		// flush the response before we send the next frame.
		rest := data
		for len(rest) >= 4 {
			n := binary.LittleEndian.Uint32(rest[:4])
			if n > maxPayload {
				break // the server drops the connection on this header
			}
			if uint64(len(rest)-4) < uint64(n) {
				break // incomplete trailing frame
			}
			payload := rest[4 : 4+int(n)]
			ops, reqID, tagged, err := DecodeRequest(payload, nil)
			if err != nil {
				break // the server drops after consuming this frame
			}
			fr := rest[:4+int(n)]
			rest = rest[4+int(n):]
			if _, err := cli.Write(fr); err != nil {
				t.Fatalf("write of a well-formed frame failed: %v", err)
			}
			want := local.Decide(ops, make([]int32, len(ops)))
			hdrLen := 4
			if tagged {
				hdrLen = 8
			}
			resp := make([]byte, hdrLen+len(ops))
			if _, err := io.ReadFull(cli, resp); err != nil {
				t.Fatalf("reading the response for a well-formed frame: %v", err)
			}
			off := 0
			if tagged {
				if got := binary.LittleEndian.Uint32(resp[:4]); got != reqID {
					t.Fatalf("response echoed request ID %d, want %d", got, reqID)
				}
				off = 4
			}
			if got := binary.LittleEndian.Uint32(resp[off : off+4]); got != uint32(len(ops)) {
				t.Fatalf("response count %d for a batch of %d", got, len(ops))
			}
			for i := range ops {
				if int32(resp[off+4+i]) != want[i] {
					t.Fatalf("op %d: remote rate %d != in-process replay %d", i, resp[off+4+i], want[i])
				}
			}
		}
		// Whatever remains is an oversized header, an undecodable payload
		// or a truncated frame. The write may race the server's drop (a
		// closed pipe mid-write is fine); the handler must just exit.
		if len(rest) > 0 {
			cli.Write(rest)
		}
		cli.Close()
		<-done

		// Recovery: dropping one misbehaving peer must not take the
		// service down or corrupt its state. A fresh connection is served
		// and its decisions continue from where the in-process replay is.
		cli2, srv2 := net.Pipe()
		done2 := make(chan struct{})
		go func() {
			remote.handleConn(srv2)
			close(done2)
		}()
		cli2.SetDeadline(time.Now().Add(30 * time.Second))
		probe := []linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}
		if _, err := cli2.Write(frame(AppendOpsV3(nil, 42, probe))); err != nil {
			t.Fatalf("probe on a fresh connection failed to send: %v", err)
		}
		var resp [9]byte
		if _, err := io.ReadFull(cli2, resp[:]); err != nil {
			t.Fatalf("no response on a fresh connection after a dropped peer: %v", err)
		}
		if id := binary.LittleEndian.Uint32(resp[:4]); id != 42 {
			t.Fatalf("fresh connection echoed request ID %d, want 42", id)
		}
		if count := binary.LittleEndian.Uint32(resp[4:8]); count != 1 {
			t.Fatalf("fresh connection response count %d, want 1", count)
		}
		if want := local.Decide(probe, make([]int32, 1)); int32(resp[8]) != want[0] {
			t.Fatalf("fresh connection rate %d != in-process replay %d", resp[8], want[0])
		}
		cli2.Close()
		<-done2
	})
}

// FuzzClientPipelinedResponses feeds an arbitrary response stream to a
// pipelined Client with two batches in flight and checks the client-side
// half of the v3 contract:
//
//   - no panic on any stream;
//   - a stream that is exactly the two in-order responses (IDs 0 and 1,
//     correct counts) yields each batch's rate bytes unchanged;
//   - anything else fails the Wait with the root-cause error, and every
//     later call on the client fails fast with the sticky poison error
//     rather than resynchronizing on garbage;
//   - a fresh client (the documented re-dial recovery) works against a
//     real server.
func FuzzClientPipelinedResponses(f *testing.F) {
	const n1, n2 = 3, 2
	respFor := func(id uint32, rates ...byte) []byte {
		b := make([]byte, 8, 8+len(rates))
		binary.LittleEndian.PutUint32(b[:4], id)
		binary.LittleEndian.PutUint32(b[4:], uint32(len(rates)))
		return append(b, rates...)
	}
	good := append(respFor(0, 1, 2, 3), respFor(1, 4, 0)...)
	f.Add(good)
	f.Add(good[:10]) // truncated rates
	f.Add([]byte{})
	f.Add(respFor(9, 1, 2, 3))                        // wrong request ID
	f.Add(append(respFor(0, 1, 2), respFor(1, 4)...)) // wrong counts
	f.Add(good[:8])

	f.Fuzz(func(t *testing.T, stream []byte) {
		if len(stream) > 1<<12 {
			stream = stream[:1<<12]
		}
		cliConn, srvConn := net.Pipe()
		cliConn.SetDeadline(time.Now().Add(30 * time.Second))

		// Fake peer: drain every request byte, push the fuzzed response
		// stream, then hang up so a client expecting more bytes sees EOF
		// instead of blocking.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			io.Copy(io.Discard, srvConn)
		}()
		go func() {
			defer wg.Done()
			srvConn.Write(stream)
			srvConn.Close()
		}()

		cli := &Client{
			conn:  cliConn,
			br:    bufio.NewReaderSize(cliConn, 64<<10),
			bw:    bufio.NewWriterSize(cliConn, 64<<10),
			depth: 2,
			ring:  make([]Pending, 2),
		}
		mkOps := func(n int) []linkstore.Op {
			ops := make([]linkstore.Op, n)
			for i := range ops {
				ops[i] = linkstore.Op{LinkID: uint64(i + 1), Kind: core.KindSilentLoss}
			}
			return ops
		}
		ops1, ops2 := mkOps(n1), mkOps(n2)
		p1, err := cli.Submit(ops1)
		if err != nil {
			t.Fatalf("first Submit (pure buffering) failed: %v", err)
		}
		p2, err := cli.Submit(ops2)
		if err != nil {
			t.Fatalf("second Submit (pure buffering) failed: %v", err)
		}

		// Oracle: mirror Wait's parse of one response off the stream.
		expect := func(s []byte, id uint32, n int) (rates, rest []byte, ok bool) {
			if len(s) < 8 {
				return nil, nil, false
			}
			if binary.LittleEndian.Uint32(s[:4]) != id ||
				binary.LittleEndian.Uint32(s[4:8]) != uint32(n) ||
				len(s) < 8+n {
				return nil, nil, false
			}
			return s[8 : 8+n], s[8+n:], true
		}

		out := make([]int32, 4)
		want1, rest, ok1 := expect(stream, 0, n1)
		got1, err1 := cli.Wait(p1, out)
		poisoned := false
		switch {
		case ok1 && err1 != nil:
			t.Fatalf("Wait(p1) failed on a conforming response: %v", err1)
		case !ok1 && err1 == nil:
			t.Fatal("Wait(p1) accepted a malformed response")
		case err1 != nil:
			if strings.Contains(err1.Error(), "poisoned") {
				t.Fatalf("first error should be the root cause, got %v", err1)
			}
			poisoned = true
		default:
			for i := 0; i < n1; i++ {
				if got1[i] != int32(want1[i]) {
					t.Fatalf("Wait(p1) rate %d: got %d, want %d", i, got1[i], want1[i])
				}
			}
			want2, _, ok2 := expect(rest, 1, n2)
			got2, err2 := cli.Wait(p2, out)
			switch {
			case ok2 && err2 != nil:
				t.Fatalf("Wait(p2) failed on a conforming response: %v", err2)
			case !ok2 && err2 == nil:
				t.Fatal("Wait(p2) accepted a malformed response")
			case err2 != nil:
				poisoned = true
			default:
				for i := 0; i < n2; i++ {
					if got2[i] != int32(want2[i]) {
						t.Fatalf("Wait(p2) rate %d: got %d, want %d", i, got2[i], want2[i])
					}
				}
			}
		}
		if poisoned {
			// Sticky poison: every later call fails fast with the wrapped
			// first error — Wait, Submit and Decide alike.
			if _, err := cli.Wait(p2, out); err == nil || !strings.Contains(err.Error(), "poisoned") {
				t.Fatalf("Wait after poisoning returned %v, want the sticky poison error", err)
			}
			if _, err := cli.Submit(ops1); err == nil || !strings.Contains(err.Error(), "poisoned") {
				t.Fatalf("Submit after poisoning returned %v, want the sticky poison error", err)
			}
			if _, err := cli.Decide(ops1, out); err == nil || !strings.Contains(err.Error(), "poisoned") {
				t.Fatalf("Decide after poisoning returned %v, want the sticky poison error", err)
			}
		}
		cliConn.Close()
		wg.Wait()

		if poisoned {
			// Documented recovery path: dial again. A fresh client against
			// a real served connection must work.
			remote := New(Config{Store: linkstore.Config{Shards: 2}})
			c2, s2 := net.Pipe()
			done := make(chan struct{})
			go func() {
				remote.handleConn(s2)
				close(done)
			}()
			c2.SetDeadline(time.Now().Add(30 * time.Second))
			fresh := &Client{
				conn:  c2,
				br:    bufio.NewReaderSize(c2, 64<<10),
				bw:    bufio.NewWriterSize(c2, 64<<10),
				depth: 2,
				ring:  make([]Pending, 2),
			}
			if _, err := fresh.Decide(ops1, out); err != nil {
				t.Fatalf("fresh client after poisoning failed: %v", err)
			}
			c2.Close()
			<-done
		}
	})
}
