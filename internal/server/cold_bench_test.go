package server

import (
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// BenchmarkDecideCold cycles prebuilt batches across the whole 10k-link
// population, so every map and state access misses cache — the load
// generator's regime, unlike BenchmarkDecideInProcess which reuses one
// (hot) batch. The spread between the two is the store's memory-shape
// cost; keep both when judging hot-path changes.
func BenchmarkDecideCold(b *testing.B) {
	const nLinks = 10000
	const batch = 128
	srv := New(Config{Store: linkstore.Config{Shards: 64}})
	rng := rand.New(rand.NewSource(3))
	nBatches := nLinks / batch
	all := make([][]linkstore.Op, nBatches)
	next := uint64(0)
	for k := range all {
		all[k] = make([]linkstore.Op, batch)
		for i := range all[k] {
			all[k][i] = linkstore.Op{
				LinkID:    next%nLinks + 1,
				Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
				RateIndex: int32(rng.Intn(6)),
				BER:       rng.Float64() * 0.01,
			}
			next++
		}
	}
	out := make([]int32, batch)
	for k := range all {
		srv.Decide(all[k], out)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Decide(all[i%nBatches], out)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
