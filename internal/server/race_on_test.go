//go:build race

package server

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions skip under it: the race runtime's shadow
// bookkeeping allocates on paths that are allocation-free in normal
// builds, so AllocsPerRun is not meaningful there.
const raceEnabled = true
