package server

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/linkstore"
	"softrate/internal/server/shmring"
)

// startSHM creates n ring regions under a temp prefix, serves them, and
// returns the prefix for clients to dial.
func startSHM(t *testing.T, srv *Server, n int) string {
	t.Helper()
	prefix := filepath.Join(t.TempDir(), "ring")
	regions := make([]*shmring.Region, n)
	for i := range regions {
		g, err := shmring.Create(RingPath(prefix, i), shmring.MinCapacity)
		if err != nil {
			t.Fatal(err)
		}
		regions[i] = g
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeSHM(regions) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeSHM: %v", err)
		}
		for _, g := range regions {
			g.Close()
		}
	})
	return prefix
}

func TestRingPath(t *testing.T) {
	if p := RingPath("/x/ring", 0); p != "/x/ring" {
		t.Fatalf("ring 0 path %q", p)
	}
	if p := RingPath("/x/ring", 3); p != "/x/ring.3" {
		t.Fatalf("ring 3 path %q", p)
	}
}

func TestSHMEndToEndMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 32}})
	local := New(Config{Store: linkstore.Config{Shards: 32}})
	prefix := startSHM(t, remote, 1)

	cli, err := DialSHM(prefix, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(3))
	got := make([]int32, 300)
	want := make([]int32, 300)
	for batch := 0; batch < 20; batch++ {
		ops := randOps(rng, 300, 500)
		res, err := cli.Decide(ops, got)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if len(res) != len(ops) {
			t.Fatalf("batch %d: %d rates for %d ops", batch, len(res), len(ops))
		}
		local.Decide(ops, want)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("batch %d op %d: shm %d != in-process %d", batch, i, got[i], want[i])
			}
		}
	}
	if st := remote.Stats(); st.Frames != 300*20 {
		t.Fatalf("remote served %d frames, want %d", st.Frames, 300*20)
	}
	if s := remote.Status(); s.SHM.DatagramsRx != 20 || s.SHM.RequestsV3 != 20 || s.SHM.Drops != 0 {
		t.Fatalf("shm counters %+v, want 20 v3 messages and no drops", s.SHM)
	}
}

// TestSHMPipelinedWaitOrderFree mirrors the TCP pipelining contract:
// several batches in flight, Waits in reverse order, responses park in
// their slots, everything byte-identical to an in-process mirror.
func TestSHMPipelinedWaitOrderFree(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 16}})
	local := New(Config{Store: linkstore.Config{Shards: 16}})
	prefix := startSHM(t, remote, 1)

	const depth = 8
	cli, err := DialSHM(prefix, depth, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(7))
	out := make([]int32, 64)
	want := make([]int32, 64)
	for round := 0; round < 20; round++ {
		var batches [depth][]linkstore.Op
		var pend [depth]*Pending
		for s := 0; s < depth; s++ {
			ops := randOps(rng, 64, 50)
			for j := range ops {
				ops[j].LinkID += uint64(s) * 1000 // disjoint cohorts per slot
			}
			p, err := cli.Submit(ops)
			if err != nil {
				t.Fatalf("round %d slot %d: %v", round, s, err)
			}
			batches[s], pend[s] = ops, p
		}
		for s := depth - 1; s >= 0; s-- { // reverse order: older responses park
			res, err := cli.Wait(pend[s], out)
			if err != nil {
				t.Fatalf("round %d slot %d: %v", round, s, err)
			}
			local.Decide(batches[s], want)
			for i := range res {
				if res[i] != want[i] {
					t.Fatalf("round %d slot %d op %d: shm %d != in-process %d", round, s, i, res[i], want[i])
				}
			}
		}
	}
}

// TestSHMMultiRingConcurrentClients runs one client per ring from
// separate goroutines, disjoint link cohorts, all against one serve
// loop — the co-located many-process shape, in-process.
func TestSHMMultiRingConcurrentClients(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 16}})
	const clients = 3
	prefix := startSHM(t, srv, clients)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := DialSHM(RingPath(prefix, c), 2, 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			out := make([]int32, 64)
			for i := 0; i < 50; i++ {
				ops := randOps(rng, 64, 100)
				for j := range ops {
					ops[j].LinkID += uint64(c) * 1000
				}
				if _, err := cli.Decide(ops, out); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Frames != clients*50*64 {
		t.Fatalf("served %d frames, want %d", st.Frames, clients*50*64)
	}
}

// TestSHMAttachExclusiveAndReclaim: one client per ring, enforced by the
// attach CAS; after a client closes, the serve loop reclaims the region
// and a new client can take its place.
func TestSHMAttachExclusiveAndReclaim(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	prefix := startSHM(t, srv, 1)

	cli, err := DialSHM(prefix, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DialSHM(prefix, 1, 5*time.Second); err == nil {
		t.Fatal("second DialSHM on a held ring succeeded")
	}
	out := make([]int32, 1)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// The serve loop reclaims the region on its next sweep; a fresh
	// client attaches once it has.
	deadline := time.Now().Add(5 * time.Second)
	var cli2 *SHMClient
	for {
		if cli2, err = DialSHM(prefix, 1, 5*time.Second); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never reclaimed: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	defer cli2.Close()
	if _, err := cli2.Decide([]linkstore.Op{{LinkID: 2, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatalf("reclaimed ring does not serve: %v", err)
	}
}

// TestSHMDrain: Drain answers what is already in the rings, the serve
// loop exits, and the client's next Submit fails with ErrDraining.
func TestSHMDrain(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	prefix := filepath.Join(t.TempDir(), "ring")
	g, err := shmring.Create(prefix, shmring.MinCapacity)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	done := make(chan error, 1)
	go func() { done <- srv.ServeSHM([]*shmring.Region{g}) }()

	cli, err := DialSHM(prefix, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 1)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindBER, BER: 1e-5}}, out); err != nil {
		t.Fatal(err)
	}

	srv.Drain(time.Second)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeSHM after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeSHM did not exit after Drain")
	}
	if _, err := cli.Submit([]linkstore.Op{{LinkID: 1, Kind: core.KindBER, BER: 1e-5}}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain Submit returned %v, want ErrDraining", err)
	}
	// And the poison is sticky, like the TCP client's.
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err == nil {
		t.Fatal("client usable after ErrDraining poison")
	}
}

// TestDialSHMRejectsGarbageFile: a non-region file is refused by header
// validation, not attached to.
func TestDialSHMRejectsGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notaring")
	if err := os.WriteFile(path, make([]byte, 8192), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DialSHM(path, 1, time.Second); err == nil {
		t.Fatal("DialSHM accepted a garbage file")
	}
}

// BenchmarkSHMDecideRoundTrip guards the client's warm polling path: on
// a live server a round trip completes inside the clock-free spin tier,
// so Submit/Wait should read the wall clock zero times per decision. A
// time.Now() creeping back into the per-spin loops shows up here as a
// step change in ns/op.
func BenchmarkSHMDecideRoundTrip(b *testing.B) {
	srv := New(Config{Store: linkstore.Config{Shards: 32}})
	path := filepath.Join(b.TempDir(), "ring")
	g, err := shmring.Create(path, shmring.MinCapacity)
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ServeSHM([]*shmring.Region{g}) }()
	defer func() {
		srv.Close()
		if err := <-done; err != nil {
			b.Errorf("ServeSHM: %v", err)
		}
		g.Close()
	}()
	cli, err := DialSHM(path, 1, 5*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(7))
	ops := randOps(rng, 64, 200)
	out := make([]int32, len(ops))
	if _, err := cli.Decide(ops, out); err != nil { // warm the rings
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Decide(ops, out); err != nil {
			b.Fatal(err)
		}
	}
}
