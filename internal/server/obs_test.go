package server

import (
	"io"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
	"softrate/internal/obs"
)

// churnOps builds a deterministic batch of feedback ops across nLinks
// links of one algorithm (ctl.AlgoDefault for the store default).
func churnOps(rng *rand.Rand, algo ctl.Algo, nLinks, batch int, base uint64) []linkstore.Op {
	ops := make([]linkstore.Op, batch)
	for i := range ops {
		ops[i] = linkstore.Op{
			LinkID:    base + uint64(rng.Intn(nLinks)),
			Algo:      algo,
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: int32(rng.Intn(8)),
			BER:       rng.Float64() * 1e-3,
			SNRdB:     float32(5 + rng.Float64()*25),
			Airtime:   float32(rng.Float64() * 1e-3),
			Delivered: rng.Intn(2) == 0,
		}
	}
	return ops
}

// TestStatusReadsDuringDecideChurn hammers Status/Stats/WritePrometheus
// from reader goroutines while writers churn Decide — the satellite -race
// requirement — and then checks the final snapshot is exact.
func TestStatusReadsDuringDecideChurn(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 8, TTL: 20 * time.Millisecond}})
	const (
		writers  = 4
		batches  = 300
		batchLen = 64
	)
	var stop atomic.Bool
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for !stop.Load() {
				st := srv.Status()
				if st.Frames < st.Batches {
					t.Errorf("snapshot: %d frames < %d batches", st.Frames, st.Batches)
					return
				}
				srv.WritePrometheus(io.Discard)
				_ = srv.Stats()
			}
		}()
	}

	algos := []ctl.Algo{ctl.AlgoDefault, 2, 3, 4, 5}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			out := make([]int32, batchLen)
			for b := 0; b < batches; b++ {
				algo := algos[b%len(algos)]
				ops := churnOps(rng, algo, 500, batchLen, uint64(w+1)<<32)
				srv.Decide(ops, out)
			}
		}(w)
	}
	writersWG.Wait()
	stop.Store(true)
	readers.Wait()

	st := srv.Status()
	if want := uint64(writers * batches * batchLen); st.Frames != want {
		t.Fatalf("final frames %d, want %d", st.Frames, want)
	}
	if want := uint64(writers * batches); st.Batches != want {
		t.Fatalf("final batches %d, want %d", st.Batches, want)
	}
	var kindSum, algoFrames, algoBatches, latCount uint64
	for _, n := range st.Kinds {
		kindSum += n
	}
	for _, as := range st.Algos {
		algoFrames += as.Frames
		algoBatches += as.Batches
		latCount += as.BatchLatency.Count
		if as.OpLatency.Count != as.Frames {
			t.Fatalf("algo %s: op-latency count %d != frames %d", as.Algo, as.OpLatency.Count, as.Frames)
		}
	}
	if kindSum != st.Frames || algoFrames != st.Frames {
		t.Fatalf("kind sum %d / algo frames %d, want %d", kindSum, algoFrames, st.Frames)
	}
	if algoBatches != st.Batches || latCount != st.Batches {
		t.Fatalf("algo batches %d / latency count %d, want %d", algoBatches, latCount, st.Batches)
	}
}

// TestAdminEnabledByteIdentical replays one op sequence against two
// servers — one bare, one with its admin plane served over HTTP and
// polled as fast as a goroutine can — and requires byte-identical
// decisions: the ops plane must be invisible to the dataplane.
func TestAdminEnabledByteIdentical(t *testing.T) {
	mk := func() *Server {
		return New(Config{Store: linkstore.Config{Shards: 8, TTL: 10 * time.Millisecond}})
	}
	plain, admin := mk(), mk()

	a := &obs.Admin{Status: func() any { return admin.Status() }, Metrics: admin.WritePrometheus}
	hts := httptest.NewServer(a.Mux())
	defer hts.Close()
	var stop atomic.Bool
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for !stop.Load() {
			for _, p := range []string{"/statusz", "/metrics", "/healthz"} {
				resp, err := hts.Client().Get(hts.URL + p)
				if err != nil {
					t.Errorf("GET %s: %v", p, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	rng := rand.New(rand.NewSource(7))
	outA := make([]int32, 128)
	outB := make([]int32, 128)
	mismatches := 0
	for b := 0; b < 400; b++ {
		algo := ctl.Algo(b % 6) // AlgoDefault plus every registered ID
		ops := churnOps(rng, algo, 300, 128, 1)
		plain.Decide(ops, outA)
		admin.Decide(ops, outB)
		for i := range ops {
			if outA[i] != outB[i] {
				mismatches++
			}
		}
		if b%50 == 0 {
			time.Sleep(time.Millisecond) // let TTL eviction interleave differently
		}
	}
	stop.Store(true)
	poller.Wait()
	if mismatches != 0 {
		t.Fatalf("%d decisions differ between admin-polled and bare servers", mismatches)
	}
}

// TestDecideDoesNotAllocateSteadyState pins the hard constraint: with
// metrics recording always on, a warm Decide is 0 allocs/op — for the
// SoftRate inline fast path, the in-place wide-state path, and a
// mixed-algorithm batch (the mixed metric slot).
func TestDecideDoesNotAllocateSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	cases := []struct {
		name  string
		algos []ctl.Algo
	}{
		{"softrate", []ctl.Algo{ctl.AlgoSoftRate}},
		{"samplerate_inplace", []ctl.Algo{2}},
		{"mixed_all_algos", []ctl.Algo{1, 2, 3, 4, 5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(Config{Store: linkstore.Config{Shards: 8, ExpectedLinks: 512}})
			rng := rand.New(rand.NewSource(3))
			ops := make([]linkstore.Op, 128)
			for i := range ops {
				ops[i] = linkstore.Op{
					LinkID:    uint64(1 + rng.Intn(256)),
					Algo:      tc.algos[i%len(tc.algos)],
					Kind:      core.KindBER,
					RateIndex: int32(rng.Intn(8)),
					BER:       rng.Float64() * 1e-4,
					SNRdB:     20,
					Airtime:   1e-4,
					Delivered: true,
				}
			}
			out := make([]int32, len(ops))
			for warm := 0; warm < 3; warm++ {
				srv.Decide(ops, out)
			}
			if n := testing.AllocsPerRun(50, func() { srv.Decide(ops, out) }); n != 0 {
				t.Fatalf("Decide allocates %v per batch in steady state, want 0", n)
			}
		})
	}
}

// TestDrainAnswersInFlight: a drain must answer and flush every request
// the server has received before closing, and Serve must return nil.
func TestDrainAnswersInFlight(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	cli, err := DialPipelined(l.Addr().String(), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ops := churnOps(rand.New(rand.NewSource(1)), ctl.AlgoDefault, 50, 32, 1)
	pendings := make([]*Pending, 4)
	for i := range pendings {
		if pendings[i], err = cli.Submit(ops); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]int32, len(ops))
	// First Wait flushes all four requests to the server.
	if _, err := cli.Wait(pendings[0], out); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // server has surely buffered the rest

	drained := make(chan struct{})
	go func() {
		srv.Drain(2 * time.Second)
		close(drained)
	}()

	for _, p := range pendings[1:] {
		if _, err := cli.Wait(p, out); err != nil {
			t.Fatalf("in-flight batch dropped by drain: %v", err)
		}
	}

	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after drain, want nil", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve never returned after drain")
	}

	st := srv.Status()
	if !st.Transport.Draining {
		t.Fatal("Transport.Draining not set after drain")
	}
	if st.Transport.ConnsActive != 0 {
		t.Fatalf("%d connections still active after drain", st.Transport.ConnsActive)
	}
	if st.Transport.RequestsV3 != 4 {
		t.Fatalf("requests_v3 = %d, want 4", st.Transport.RequestsV3)
	}
	// New work is refused after the drain.
	if _, err := Dial(l.Addr().String()); err == nil {
		t.Fatal("Dial succeeded after drain closed the listener")
	}
}

// TestTransportCountersByVersion serves one batch per framing version and
// one violation, then checks the counters and the exposition.
func TestTransportCountersByVersion(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}})
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()

	ops := []linkstore.Op{{LinkID: 9, Kind: core.KindBER, RateIndex: 3, BER: 1e-5}}
	out := make([]int32, 1)

	// v2 then v1 on one classic connection.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Decide(ops, out); err != nil {
		t.Fatal(err)
	}
	var raw [4 + RecordSize]byte
	buf := AppendOps(raw[:4], ops)
	binaryPutLen(raw[:4], uint32(len(buf)-4))
	if _, err := cli.conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	var resp [5]byte
	if _, err := io.ReadFull(cli.br, resp[:]); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	// v3 on a pipelined connection.
	pcli, err := DialPipelined(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pcli.Decide(ops, out); err != nil {
		t.Fatal(err)
	}
	pcli.Close()

	// Framing violation: an oversized length prefix.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var bad [4]byte
	binaryPutLen(bad[:], uint32(maxPayload+1))
	conn.Write(bad[:])
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept the connection after an oversized prefix")
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		ts := srv.transportStatus()
		if ts.RequestsV1 == 1 && ts.RequestsV2 == 1 && ts.RequestsV3 == 1 &&
			ts.FramingErrors == 1 && ts.ConnsAccepted == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transport counters never converged: %+v", ts)
		}
		time.Sleep(5 * time.Millisecond)
	}

	var sb strings.Builder
	srv.WritePrometheus(&sb)
	for _, want := range []string{
		`softrated_requests_total{version="v1"} 1`,
		`softrated_requests_total{version="v2"} 1`,
		`softrated_requests_total{version="v3"} 1`,
		`softrated_framing_errors_total 1`,
		`softrated_conns_accepted_total 3`,
		"softrated_batch_latency_seconds_bucket",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}

func binaryPutLen(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
