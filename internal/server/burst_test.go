package server

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
)

func TestBurstBucket(t *testing.T) {
	want := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5}
	for n, b := range want {
		if got := burstBucket(n); got != b {
			t.Errorf("burstBucket(%d) = %d, want %d", n, got, b)
		}
	}
}

// packDatagrams encodes payloads in the fuzz corpus shape consumed by
// FuzzServeDatagrams: [u16 len][payload] repeated.
func packDatagrams(payloads ...[]byte) []byte {
	var b []byte
	for _, p := range payloads {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p)))
		b = append(b, p...)
	}
	return b
}

// FuzzServeDatagrams throws arbitrary datagram bursts at the burst
// engine — the shared core of the UDP and shm transports. The input is
// split into up to BurstSize payloads ([u16 len][bytes] framing), which
// covers bad version bytes, truncated records, and duplicate/stale seq
// values by construction. Properties on every burst:
//
//   - the engine never panics and never desyncs: exactly the payloads
//     that decode cleanly are marked ok and get a response, malformed
//     ones only bump the drop counter;
//   - every ok payload's response is byte-identical to an in-process
//     replay: a mirror server fed the same payloads one DecodeRequest +
//     one Decide at a time produces the same seq echo, count, and rates
//     — batching a burst into one Decide is unobservable;
//   - counters add up (rx = payload count, drops = malformed count,
//     version counters = well-formed count).
func FuzzServeDatagrams(f *testing.F) {
	v1 := AppendOps(nil, []linkstore.Op{{LinkID: 1, Kind: core.KindBER, RateIndex: 3, BER: 1e-5}})
	v2 := AppendOpsV2(nil, []linkstore.Op{{LinkID: 2, Algo: ctl.AlgoRRAA, Kind: core.KindBER, BER: 1e-4, SNRdB: 11}})
	v3 := AppendOpsV3(nil, 7, []linkstore.Op{
		{LinkID: 3, Algo: ctl.AlgoSampleRate, Kind: core.KindBER, RateIndex: 2, BER: 1e-6, Airtime: 5e-4, Delivered: true},
		{LinkID: 4, Kind: core.KindSilentLoss},
	})
	dup := AppendOpsV3(nil, 7, []linkstore.Op{{LinkID: 3, Kind: core.KindPostamble, RateIndex: 1}})
	f.Add(packDatagrams(v3, v1, v2))
	f.Add(packDatagrams(v3, dup, v3))            // duplicate/stale seq in one burst
	f.Add(packDatagrams(v3[:len(v3)-1], v3))     // truncated v3 record beside a good one
	f.Add(packDatagrams([]byte{0x7f, 0, 0}, v1)) // bad version byte
	f.Add(packDatagrams(nil, v2, []byte{VersionV3}))
	f.Add(packDatagrams(bytes.Repeat([]byte{0xff}, RecordSize)))

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(Config{Store: linkstore.Config{Shards: 4}})
		mirror := New(Config{Store: linkstore.Config{Shards: 4}})
		var payloads [][]byte
		for len(data) >= 2 && len(payloads) < BurstSize {
			n := int(binary.LittleEndian.Uint16(data[:2])) % 1024
			data = data[2:]
			if n > len(data) {
				n = len(data)
			}
			payloads = append(payloads, data[:n])
			data = data[n:]
		}

		eng := newBurstEngine(srv, &srv.udp)
		eng.reset()
		for _, p := range payloads {
			eng.add(p)
		}
		eng.finish()

		dgs := eng.dgrams()
		if len(dgs) != len(payloads) {
			t.Fatalf("%d slots for %d payloads", len(dgs), len(payloads))
		}
		var out []int32
		wellFormed, malformed := 0, 0
		for i := range dgs {
			d := &dgs[i]
			ops, reqID, tagged, err := DecodeRequest(payloads[i], nil)
			if (err == nil) != d.ok {
				t.Fatalf("payload %d (%d bytes): engine ok=%v, DecodeRequest err=%v", i, len(payloads[i]), d.ok, err)
			}
			if err != nil {
				malformed++
				continue
			}
			wellFormed++
			if cap(out) < len(ops) {
				out = make([]int32, len(ops))
			}
			mirror.Decide(ops, out[:len(ops)])
			want := make([]byte, 0, 8+len(ops))
			if tagged {
				want = binary.LittleEndian.AppendUint32(want, reqID)
			}
			want = binary.LittleEndian.AppendUint32(want, uint32(len(ops)))
			for _, ri := range out[:len(ops)] {
				want = append(want, uint8(ri))
			}
			if got := eng.response(d); !bytes.Equal(got, want) {
				t.Fatalf("payload %d: burst response %x != in-process replay %x", i, got, want)
			}
		}
		st := srv.udp.status()
		if int(st.DatagramsRx) != len(payloads) || int(st.Drops) != malformed {
			t.Fatalf("counters rx=%d drops=%d, want rx=%d drops=%d", st.DatagramsRx, st.Drops, len(payloads), malformed)
		}
		if got := int(st.RequestsV1 + st.RequestsV2 + st.RequestsV3); got != wellFormed {
			t.Fatalf("version counters sum to %d, want %d well-formed", got, wellFormed)
		}
	})
}

// TestBurstEngineZeroAlloc pins the tentpole perf property: a warm burst
// engine — metrics on, full BurstSize bursts — runs reset/add/finish and
// reads back every response without a single allocation.
func TestBurstEngineZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under -race")
	}
	srv := New(Config{Store: linkstore.Config{Shards: 8}})
	eng := newBurstEngine(srv, &srv.udp)

	rng := rand.New(rand.NewSource(42))
	payloads := make([][]byte, BurstSize)
	for i := range payloads {
		ops := randOps(rng, 48, 200)
		payloads[i] = AppendOpsV3(nil, uint32(i), ops)
	}
	burst := func() {
		eng.reset()
		for _, p := range payloads {
			eng.add(p)
		}
		eng.finish()
		for i := range eng.dgrams() {
			d := &eng.dgrams()[i]
			if !d.ok {
				t.Fatal("a pre-encoded payload failed to decode")
			}
			if len(eng.response(d)) == 0 {
				t.Fatal("empty response")
			}
		}
	}
	burst() // warm: size the reusable buffers, populate the link store
	if allocs := testing.AllocsPerRun(50, burst); allocs != 0 {
		t.Fatalf("warm burst path allocated %.1f times per burst, want 0", allocs)
	}
}
