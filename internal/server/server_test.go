package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
)

func randOps(rng *rand.Rand, n, links int) []linkstore.Op {
	ops := make([]linkstore.Op, n)
	for i := range ops {
		ops[i] = linkstore.Op{
			LinkID:    uint64(rng.Intn(links)),
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: int32(rng.Intn(6)),
			BER:       rng.Float64() * 0.01,
			SNRdB:     float32(math.NaN()), // what a v1 record decodes to
		}
	}
	return ops
}

// opsEqual compares ops treating NaN SNRs as equal (NaN is the wire's
// "unknown SNR" and never compares equal to itself).
func opsEqual(a, b linkstore.Op) bool {
	sa, sb := a.SNRdB, b.SNRdB
	if sa != sa && sb != sb { // both NaN
		sa, sb = 0, 0
	}
	a.SNRdB, b.SNRdB = 0, 0
	return a == b && sa == sb
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := randOps(rng, 500, 1<<62) // huge ID space: exercises all 8 bytes
	ops = append(ops, linkstore.Op{LinkID: math.MaxUint64, Kind: core.KindPostamble, RateIndex: 255, BER: 0.5, SNRdB: float32(math.NaN())})
	buf := AppendOps(nil, ops)
	if len(buf) != len(ops)*RecordSize {
		t.Fatalf("encoded %d bytes for %d ops, want %d", len(buf), len(ops), len(ops)*RecordSize)
	}
	got, err := DecodeOps(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !opsEqual(got[i], ops[i]) {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestCodecV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ops := randOps(rng, 300, 1<<62)
	algos := ctl.Specs()
	for i := range ops {
		ops[i].Algo = algos[i%len(algos)].ID
		ops[i].Airtime = rng.Float32() * 1e-3
		ops[i].Delivered = rng.Intn(2) == 0
		if i%3 == 0 {
			ops[i].SNRdB = rng.Float32()*30 - 2
		}
	}
	ops = append(ops, linkstore.Op{LinkID: math.MaxUint64, Algo: ctl.AlgoDefault, Kind: core.KindPostamble, RateIndex: 255, BER: 0.5, SNRdB: float32(math.NaN())})
	buf := AppendOpsV2(nil, ops)
	if want := 1 + len(ops)*RecordSizeV2; len(buf) != want {
		t.Fatalf("encoded %d bytes for %d ops, want %d", len(buf), len(ops), want)
	}
	if len(buf)%2 != 1 {
		t.Fatal("v2 payloads must be odd-length (that is what keeps them distinguishable from v1)")
	}
	got, err := DecodeBatch(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !opsEqual(got[i], ops[i]) {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

// TestCodecV1GoldenBytes pins the v1 wire format: a payload captured from
// the PR 2 era codec must decode identically under the versioned decoder,
// byte for byte.
func TestCodecV1GoldenBytes(t *testing.T) {
	// Two hand-assembled v1 records: link 0x0102030405060708 / kind 0 /
	// rate 3 / BER 1.5e-5, and link 2 / kind 3 (postamble) / rate 0 / BER 0.
	golden := []byte{
		0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, // linkID LE
		0x00,                                           // kind ber
		0x03,                                           // rate 3
		0x69, 0x1d, 0x55, 0x4d, 0x10, 0x75, 0xef, 0x3e, // 1.5e-5 LE f64
		0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
		0x03,
		0x00,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
	}
	ops, err := DecodeBatch(golden, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []linkstore.Op{
		{LinkID: 0x0102030405060708, Kind: core.KindBER, RateIndex: 3, BER: 1.5e-5, SNRdB: float32(math.NaN())},
		{LinkID: 2, Kind: core.KindPostamble, RateIndex: 0, BER: 0, SNRdB: float32(math.NaN())},
	}
	if len(ops) != len(want) {
		t.Fatalf("decoded %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if !opsEqual(ops[i], want[i]) {
			t.Fatalf("op %d: %+v != %+v", i, ops[i], want[i])
		}
		if ops[i].Algo != ctl.AlgoDefault || ops[i].Airtime != 0 || ops[i].Delivered {
			t.Fatalf("op %d: v1 decode invented v2 fields: %+v", i, ops[i])
		}
	}
	// And the current v1 encoder still emits exactly these bytes.
	if got := AppendOps(nil, want); !bytes.Equal(got, golden) {
		t.Fatalf("AppendOps drifted from the golden v1 bytes:\n got %x\nwant %x", got, golden)
	}
}

func TestCodecRejectsMalformedPayloads(t *testing.T) {
	good := AppendOp(nil, linkstore.Op{LinkID: 1, Kind: core.KindBER, BER: 1e-5})

	if _, err := DecodeOps(good[:RecordSize-1], nil); err == nil {
		t.Fatal("truncated record accepted")
	}

	bad := append([]byte(nil), good...)
	bad[8] = byte(core.NumKinds) // first invalid kind
	if _, err := DecodeOps(bad, nil); err == nil {
		t.Fatal("invalid kind accepted")
	}

	goodV2 := AppendOpsV2(nil, []linkstore.Op{{LinkID: 1, Algo: ctl.AlgoRRAA, Kind: core.KindBER, BER: 1e-5, SNRdB: 12}})
	bad = append([]byte(nil), goodV2...)
	bad[1+8] = 200 // unregistered algorithm
	if _, err := DecodeBatch(bad, nil); err == nil {
		t.Fatal("unknown v2 algorithm accepted")
	}
	bad = append([]byte(nil), goodV2...)
	bad[1+11] = 0x80 // undefined flag bit
	if _, err := DecodeBatch(bad, nil); err == nil {
		t.Fatal("undefined v2 flags accepted")
	}
	if _, err := DecodeBatch(goodV2[:len(goodV2)-1], nil); err == nil {
		t.Fatal("truncated v2 record accepted")
	}

	for _, v := range []float64{math.NaN(), math.Inf(1), -1e-3} {
		bad = append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(bad[10:18], math.Float64bits(v))
		if _, err := DecodeOps(bad, nil); err == nil {
			t.Fatalf("invalid BER %v accepted", v)
		}
	}

	huge := make([]byte, (MaxBatch+1)*RecordSize)
	if _, err := DecodeOps(huge, nil); err == nil {
		t.Fatal("oversized batch accepted")
	}
	hugeV2 := make([]byte, 1+(MaxBatch+1)*RecordSizeV2)
	hugeV2[0] = VersionV2
	if _, err := DecodeBatch(hugeV2, nil); err == nil {
		t.Fatal("oversized v2 batch accepted")
	}
}

func TestDecideMatchesBareControllersAt10kLinks(t *testing.T) {
	// The acceptance determinism property at the server layer: 10k links,
	// randomized interleaved batches, every decision byte-identical to a
	// bare per-link core.SoftRate replay.
	const nLinks = 10000
	srv := New(Config{Store: linkstore.Config{Shards: 128}})
	bare := make([]*core.SoftRate, nLinks)
	for i := range bare {
		bare[i] = core.New(core.DefaultConfig())
	}
	rng := rand.New(rand.NewSource(9))
	out := make([]int32, 512)
	for batch := 0; batch < 100; batch++ {
		ops := randOps(rng, 512, nLinks)
		srv.Decide(ops, out)
		for i, op := range ops {
			want := bare[op.LinkID].Apply(op.Kind, int(op.RateIndex), op.BER)
			if int(out[i]) != want {
				t.Fatalf("batch %d op %d link %d: server %d != bare %d", batch, i, op.LinkID, out[i], want)
			}
		}
	}
	st := srv.Stats()
	if st.Frames != 512*100 || st.Batches != 100 {
		t.Fatalf("stats %+v, want 51200 frames in 100 batches", st)
	}
	var kindSum uint64
	for _, c := range st.Kinds {
		kindSum += c
	}
	if kindSum != st.Frames {
		t.Fatalf("kind counters sum to %d, want %d", kindSum, st.Frames)
	}
}

// startTCP spins up a served listener and returns its address.
func startTCP(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

func TestTCPEndToEndMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 32}})
	local := New(Config{Store: linkstore.Config{Shards: 32}})
	addr := startTCP(t, remote)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(2))
	got := make([]int32, 300)
	want := make([]int32, 300)
	for batch := 0; batch < 20; batch++ {
		ops := randOps(rng, 300, 500)
		if _, err := cli.Decide(ops, got); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		local.Decide(ops, want)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("batch %d op %d: TCP %d != in-process %d", batch, i, got[i], want[i])
			}
		}
	}
	if st := remote.Stats(); st.Frames != 300*20 {
		t.Fatalf("remote served %d frames, want %d", st.Frames, 300*20)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 32, TTL: 50 * time.Millisecond}})
	addr := startTCP(t, srv)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			out := make([]int32, 64)
			for i := 0; i < 50; i++ {
				// Disjoint link ranges per client: responses must stay
				// consistent with a per-client serial replay.
				ops := randOps(rng, 64, 100)
				for j := range ops {
					ops[j].LinkID += uint64(c) * 1000
				}
				if _, err := cli.Decide(ops, out); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Frames != clients*50*64 {
		t.Fatalf("served %d frames, want %d", st.Frames, clients*50*64)
	}
}

func TestTCPServerSurvivesGarbageAndShortWrites(t *testing.T) {
	srv := New(Config{})
	addr := startTCP(t, srv)

	// Oversized length prefix: server must drop the connection, not hang
	// or crash.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxPayload+1))
	conn.Write(hdr[:])
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Fatal("server answered an oversized batch instead of dropping the connection")
	}
	conn.Close()

	// Misaligned payload: same story.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(hdr[:], 7)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 7))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Fatal("server answered a misaligned batch")
	}
	conn.Close()

	// A healthy client still gets service afterwards.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 1)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatalf("healthy client failed after garbage peers: %v", err)
	}
}

func BenchmarkDecideInProcess(b *testing.B) {
	srv := New(Config{Store: linkstore.Config{Shards: 64}})
	rng := rand.New(rand.NewSource(3))
	ops := randOps(rng, 256, 10000)
	out := make([]int32, len(ops))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Decide(ops, out)
	}
	b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
