package server

import (
	"encoding/binary"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

func randOps(rng *rand.Rand, n, links int) []linkstore.Op {
	ops := make([]linkstore.Op, n)
	for i := range ops {
		ops[i] = linkstore.Op{
			LinkID:    uint64(rng.Intn(links)),
			Kind:      core.FeedbackKind(rng.Intn(int(core.NumKinds))),
			RateIndex: int32(rng.Intn(6)),
			BER:       rng.Float64() * 0.01,
		}
	}
	return ops
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := randOps(rng, 500, 1<<62) // huge ID space: exercises all 8 bytes
	ops = append(ops, linkstore.Op{LinkID: math.MaxUint64, Kind: core.KindPostamble, RateIndex: 255, BER: 0.5})
	buf := AppendOps(nil, ops)
	if len(buf) != len(ops)*RecordSize {
		t.Fatalf("encoded %d bytes for %d ops, want %d", len(buf), len(ops), len(ops)*RecordSize)
	}
	got, err := DecodeOps(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}
}

func TestCodecRejectsMalformedPayloads(t *testing.T) {
	good := AppendOp(nil, linkstore.Op{LinkID: 1, Kind: core.KindBER, BER: 1e-5})

	if _, err := DecodeOps(good[:RecordSize-1], nil); err == nil {
		t.Fatal("truncated record accepted")
	}

	bad := append([]byte(nil), good...)
	bad[8] = byte(core.NumKinds) // first invalid kind
	if _, err := DecodeOps(bad, nil); err == nil {
		t.Fatal("invalid kind accepted")
	}

	for _, v := range []float64{math.NaN(), math.Inf(1), -1e-3} {
		bad = append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(bad[10:18], math.Float64bits(v))
		if _, err := DecodeOps(bad, nil); err == nil {
			t.Fatalf("invalid BER %v accepted", v)
		}
	}

	huge := make([]byte, (MaxBatch+1)*RecordSize)
	if _, err := DecodeOps(huge, nil); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestDecideMatchesBareControllersAt10kLinks(t *testing.T) {
	// The acceptance determinism property at the server layer: 10k links,
	// randomized interleaved batches, every decision byte-identical to a
	// bare per-link core.SoftRate replay.
	const nLinks = 10000
	srv := New(Config{Store: linkstore.Config{Shards: 128}})
	bare := make([]*core.SoftRate, nLinks)
	for i := range bare {
		bare[i] = core.New(core.DefaultConfig())
	}
	rng := rand.New(rand.NewSource(9))
	out := make([]int32, 512)
	for batch := 0; batch < 100; batch++ {
		ops := randOps(rng, 512, nLinks)
		srv.Decide(ops, out)
		for i, op := range ops {
			want := bare[op.LinkID].Apply(op.Kind, int(op.RateIndex), op.BER)
			if int(out[i]) != want {
				t.Fatalf("batch %d op %d link %d: server %d != bare %d", batch, i, op.LinkID, out[i], want)
			}
		}
	}
	st := srv.Stats()
	if st.Frames != 512*100 || st.Batches != 100 {
		t.Fatalf("stats %+v, want 51200 frames in 100 batches", st)
	}
	var kindSum uint64
	for _, c := range st.Kinds {
		kindSum += c
	}
	if kindSum != st.Frames {
		t.Fatalf("kind counters sum to %d, want %d", kindSum, st.Frames)
	}
}

// startTCP spins up a served listener and returns its address.
func startTCP(t *testing.T, srv *Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

func TestTCPEndToEndMatchesInProcess(t *testing.T) {
	remote := New(Config{Store: linkstore.Config{Shards: 32}})
	local := New(Config{Store: linkstore.Config{Shards: 32}})
	addr := startTCP(t, remote)

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	rng := rand.New(rand.NewSource(2))
	got := make([]int32, 300)
	want := make([]int32, 300)
	for batch := 0; batch < 20; batch++ {
		ops := randOps(rng, 300, 500)
		if _, err := cli.Decide(ops, got); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		local.Decide(ops, want)
		for i := range ops {
			if got[i] != want[i] {
				t.Fatalf("batch %d op %d: TCP %d != in-process %d", batch, i, got[i], want[i])
			}
		}
	}
	if st := remote.Stats(); st.Frames != 300*20 {
		t.Fatalf("remote served %d frames, want %d", st.Frames, 300*20)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 32, TTL: 50 * time.Millisecond}})
	addr := startTCP(t, srv)

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			out := make([]int32, 64)
			for i := 0; i < 50; i++ {
				// Disjoint link ranges per client: responses must stay
				// consistent with a per-client serial replay.
				ops := randOps(rng, 64, 100)
				for j := range ops {
					ops[j].LinkID += uint64(c) * 1000
				}
				if _, err := cli.Decide(ops, out); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Frames != clients*50*64 {
		t.Fatalf("served %d frames, want %d", st.Frames, clients*50*64)
	}
}

func TestTCPServerSurvivesGarbageAndShortWrites(t *testing.T) {
	srv := New(Config{})
	addr := startTCP(t, srv)

	// Oversized length prefix: server must drop the connection, not hang
	// or crash.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(maxPayload+1))
	conn.Write(hdr[:])
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Fatal("server answered an oversized batch instead of dropping the connection")
	}
	conn.Close()

	// Misaligned payload: same story.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(hdr[:], 7)
	conn.Write(hdr[:])
	conn.Write(make([]byte, 7))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(hdr[:]); err == nil {
		t.Fatal("server answered a misaligned batch")
	}
	conn.Close()

	// A healthy client still gets service afterwards.
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	out := make([]int32, 1)
	if _, err := cli.Decide([]linkstore.Op{{LinkID: 1, Kind: core.KindSilentLoss}}, out); err != nil {
		t.Fatalf("healthy client failed after garbage peers: %v", err)
	}
}

func BenchmarkDecideInProcess(b *testing.B) {
	srv := New(Config{Store: linkstore.Config{Shards: 64}})
	rng := rand.New(rand.NewSource(3))
	ops := randOps(rng, 256, 10000)
	out := make([]int32, len(ops))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Decide(ops, out)
	}
	b.ReportMetric(float64(len(ops))*float64(b.N)/b.Elapsed().Seconds(), "decisions/s")
}
