package server

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"softrate/internal/linkstore"
)

// TestAdmissionGateBlocksAtCapacity: with -max-inflight set, a Decide
// past the bound parks on the gate and proceeds the moment a slot frees
// — backpressure, not rejection, for the blocking transports.
func TestAdmissionGateBlocksAtCapacity(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}, MaxInflight: 2})
	rng := rand.New(rand.NewSource(9))
	ops := randOps(rng, 64, 64)
	out := make([]int32, len(ops))
	srv.Decide(ops, out) // sanity: a free gate admits immediately

	srv.gate <- struct{}{}
	srv.gate <- struct{}{}
	if !srv.gateSaturated() {
		t.Fatal("gate with MaxInflight tokens should read saturated")
	}
	done := make(chan struct{})
	go func() { srv.Decide(ops, out); close(done) }()
	select {
	case <-done:
		t.Fatal("Decide ran past a saturated admission gate")
	case <-time.After(100 * time.Millisecond):
	}
	<-srv.gate // free one slot
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Decide never acquired the freed slot")
	}
	<-srv.gate // drain the second manual token
	if st := srv.Status(); st.Overload.MaxInflight != 2 || st.Overload.Inflight != 0 {
		t.Fatalf("overload status %+v, want max_inflight=2 inflight=0", st.Overload)
	}
}

// TestUDPShedsWhenGateSaturated: the datagram transport must not park
// readers on the gate — a burst arriving while the gate is saturated is
// dropped unserved (counted, no response, ops never applied), and
// service resumes as soon as the gate frees.
func TestUDPShedsWhenGateSaturated(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}, MaxInflight: 1})
	addr := startUDP(t, srv)
	cli, err := DialUDP(addr, 1, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	rng := rand.New(rand.NewSource(4))
	ops := randOps(rng, 32, 64)
	got := make([]int32, len(ops))
	if _, ok, err := cli.Decide(ops, got); err != nil || !ok {
		t.Fatalf("healthy decide: ok=%v err=%v", ok, err)
	}

	srv.gate <- struct{}{} // saturate the gate
	if _, ok, err := cli.Decide(ops, got); err != nil {
		t.Fatalf("decide against a saturated gate errored: %v", err)
	} else if ok {
		t.Fatal("a shed datagram was answered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Status().UDP.Shed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("shed counter never moved")
		}
		time.Sleep(5 * time.Millisecond)
	}
	framesBefore := srv.Stats().Frames

	<-srv.gate // free the gate; service resumes
	if _, ok, err := cli.Decide(ops, got); err != nil || !ok {
		t.Fatalf("decide after the gate freed: ok=%v err=%v", ok, err)
	}
	// The shed batch was never applied: only the two answered batches
	// reached the store.
	if frames := srv.Stats().Frames; frames != framesBefore+uint64(len(ops)) {
		t.Fatalf("store saw %d frames, want %d (shed ops must never be applied)",
			frames, framesBefore+uint64(len(ops)))
	}
}

// TestSlowClientEvicted: a client that submits forever and never reads a
// response must be evicted by the write-deadline policy — counted in
// status — while a well-behaved client on the same server keeps getting
// answers.
func TestSlowClientEvicted(t *testing.T) {
	srv := New(Config{Store: linkstore.Config{Shards: 4}, WriteTimeout: 150 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	defer func() {
		srv.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(6))
	payload := AppendOpsV3(nil, 0, randOps(rng, 4096, 2048))
	frame := make([]byte, 4, 4+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)

	// Write without ever reading until the server cuts us off. Our own
	// sends start timing out once the server stops reading (its writes
	// to us are stuck — the point); keep the socket open through those.
	evicted := false
	overall := time.Now().Add(10 * time.Second)
	for time.Now().Before(overall) {
		conn.SetWriteDeadline(time.Now().Add(100 * time.Millisecond))
		if _, err := conn.Write(frame); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("server never evicted a client that reads nothing")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Status().Transport.SlowClientsEvicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("eviction not counted in status")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is still healthy for everyone else.
	cli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ops := randOps(rng, 32, 64)
	out := make([]int32, len(ops))
	if _, err := cli.Decide(ops, out); err != nil {
		t.Fatalf("well-behaved client after an eviction: %v", err)
	}
}

// TestDecideZeroAllocWithGate extends the steady-state allocation pin
// over the admission gate: acquiring and releasing a token must cost no
// allocations on the warm path.
func TestDecideZeroAllocWithGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	srv := New(Config{Store: linkstore.Config{Shards: 8, ExpectedLinks: 512}, MaxInflight: 4})
	rng := rand.New(rand.NewSource(3))
	ops := randOps(rng, 128, 256)
	out := make([]int32, len(ops))
	for warm := 0; warm < 3; warm++ {
		srv.Decide(ops, out)
	}
	if n := testing.AllocsPerRun(50, func() { srv.Decide(ops, out) }); n != 0 {
		t.Fatalf("gated Decide allocates %v per batch in steady state, want 0", n)
	}
}
