package server

import (
	"math"
	"testing"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
)

// FuzzDecodeBatch throws arbitrary payloads at the versioned batch
// decoder. Properties checked on every input:
//
//   - no panic, ever (the TCP handler feeds DecodeBatch peer-controlled
//     bytes after only a length check);
//   - an accepted payload yields a record count consistent with its
//     framing (v1: len/RecordSize; v2: (len-1)/RecordSizeV2) and only
//     validated field
//     values (known kinds and algorithms, sane BER/airtime/SNR);
//   - accepted batches survive a v2 re-encode → decode round trip
//     unchanged — decode is a bijection onto the validated op space.
func FuzzDecodeBatch(f *testing.F) {
	// Seed corpus: valid v1, valid v2, empty variants, and the malformed
	// shapes the unit tests cover (truncation, bad kind, bad BER, bad
	// algo, bad flags, length confusions).
	f.Add([]byte{})
	f.Add([]byte{VersionV2})
	v1 := AppendOps(nil, []linkstore.Op{
		{LinkID: 1, Kind: core.KindBER, RateIndex: 3, BER: 1e-5},
		{LinkID: math.MaxUint64, Kind: core.KindPostamble, RateIndex: 255},
	})
	f.Add(v1)
	f.Add(v1[:RecordSize-1]) // truncated v1
	bad := append([]byte(nil), v1...)
	bad[8] = byte(core.NumKinds) // invalid kind
	f.Add(bad)
	v2 := AppendOpsV2(nil, []linkstore.Op{
		{LinkID: 2, Algo: ctl.AlgoRRAA, Kind: core.KindBER, RateIndex: 1, BER: 1e-4, SNRdB: 11, Airtime: 1e-3, Delivered: true},
		{LinkID: 3, Algo: ctl.AlgoSampleRate, Kind: core.KindSilentLoss, SNRdB: float32(math.NaN())},
	})
	f.Add(v2)
	f.Add(v2[:len(v2)-1]) // truncated v2 record
	f.Add(append(v2, 0))  // even length: neither framing
	badAlgo := append([]byte(nil), v2...)
	badAlgo[1+8] = 250 // unregistered algorithm
	f.Add(badAlgo)
	badFlags := append([]byte(nil), v2...)
	badFlags[1+11] = 0xfe // undefined flag bits
	f.Add(badFlags)
	nanBER := append([]byte(nil), v1...)
	for i := 10; i < 18; i++ {
		nanBER[i] = 0xff // NaN BER bits
	}
	f.Add(nanBER)
	v3 := AppendOpsV3(nil, 0x01020304, []linkstore.Op{
		{LinkID: 9, Algo: ctl.AlgoSampleRate, Kind: core.KindBER, RateIndex: 2, BER: 1e-6, SNRdB: float32(math.NaN()), Airtime: 5e-4, Delivered: true},
	})
	f.Add(v3)
	f.Add(v3[:headerSizeV3])      // empty pipelined batch
	f.Add(v3[:len(v3)-1])         // truncated v3 record
	f.Add(append(v3, 0, 0, 0, 0)) // length in no framing class

	f.Fuzz(func(t *testing.T, payload []byte) {
		// The full request surface first: DecodeRequest must never panic,
		// must tag exactly the v3 length class, and must agree with
		// DecodeBatch on everything else.
		reqOps, reqID, tagged, reqErr := DecodeRequest(payload, nil)
		isV3 := len(payload) >= headerSizeV3 && payload[0] == VersionV3 &&
			(len(payload)-headerSizeV3)%RecordSizeV2 == 0
		if tagged != isV3 {
			t.Fatalf("tagged=%v for a payload of length %d (v3 shape: %v, err %v)",
				tagged, len(payload), isV3, reqErr)
		}
		if tagged && reqErr == nil {
			// A tagged decode must survive a v3 re-encode unchanged.
			re, id2, tag2, err := DecodeRequest(AppendOpsV3(nil, reqID, reqOps), nil)
			if err != nil || !tag2 || id2 != reqID || len(re) != len(reqOps) {
				t.Fatalf("v3 round trip broke: id %d→%d tagged=%v err=%v", reqID, id2, tag2, err)
			}
		}

		ops, err := DecodeBatch(payload, nil)
		if err != nil {
			return
		}
		if isV3 {
			t.Fatalf("a v3-shaped payload of length %d was accepted by the batch decoder", len(payload))
		}
		if !tagged && (reqErr != nil || len(reqOps) != len(ops)) {
			t.Fatalf("DecodeRequest disagrees with DecodeBatch on an untagged payload: %v", reqErr)
		}
		var wantN int
		switch {
		case len(payload)%RecordSize == 0:
			wantN = len(payload) / RecordSize
		case payload[0] == VersionV2 && (len(payload)-1)%RecordSizeV2 == 0:
			wantN = (len(payload) - 1) / RecordSizeV2
		default:
			t.Fatalf("accepted a payload of length %d that matches neither framing", len(payload))
		}
		if len(ops) != wantN {
			t.Fatalf("decoded %d ops from a %d-byte payload, framing says %d", len(ops), len(payload), wantN)
		}
		for i, op := range ops {
			if op.Kind >= core.NumKinds {
				t.Fatalf("op %d: invalid kind %d accepted", i, op.Kind)
			}
			if op.Algo != ctl.AlgoDefault {
				if _, ok := ctl.Lookup(op.Algo); !ok {
					t.Fatalf("op %d: unregistered algorithm %d accepted", i, op.Algo)
				}
			}
			if math.IsNaN(op.BER) || math.IsInf(op.BER, 0) || op.BER < 0 {
				t.Fatalf("op %d: invalid BER %v accepted", i, op.BER)
			}
			if op.Airtime != op.Airtime || math.IsInf(float64(op.Airtime), 0) || op.Airtime < 0 {
				t.Fatalf("op %d: invalid airtime %v accepted", i, op.Airtime)
			}
			if math.IsInf(float64(op.SNRdB), 0) {
				t.Fatalf("op %d: infinite SNR accepted", i)
			}
		}
		// Round trip through the richer encoding: nothing may change.
		re, err := DecodeBatch(AppendOpsV2(nil, ops), nil)
		if err != nil {
			t.Fatalf("re-encode of accepted ops rejected: %v", err)
		}
		if len(re) != len(ops) {
			t.Fatalf("round trip count %d != %d", len(re), len(ops))
		}
		for i := range ops {
			if !opsEqual(re[i], ops[i]) {
				t.Fatalf("op %d changed across round trip: %+v != %+v", i, re[i], ops[i])
			}
		}
	})
}
