package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"softrate/internal/core"
	"softrate/internal/linkstore"
)

// Wire format. A request batch is a sequence of fixed-size records; a
// response is one byte (the chosen rate index) per record, in request
// order. Fixed-size records keep decode branch-free and let a receiver
// validate a batch by length alone.
//
//	request record (18 bytes, little-endian):
//	  [0:8)   linkID  uint64
//	  [8]     kind    uint8  (core.FeedbackKind)
//	  [9]     rate    uint8  (index the frame was sent at)
//	  [10:18) ber     float64 bits
//
// Over TCP each batch is prefixed with a uint32 payload length (see
// tcp.go); the in-process API skips framing entirely.

// RecordSize is the encoded size of one feedback record.
const RecordSize = 18

// MaxBatch bounds the records per batch (and with it the frame size a TCP
// peer can make the server buffer).
const MaxBatch = 65536

// AppendOp appends one encoded feedback record to buf. The wire format
// carries the rate index in one byte; callers must keep Op.RateIndex in
// [0, 255] (Client.Decide enforces this) or the index silently truncates.
func AppendOp(buf []byte, op linkstore.Op) []byte {
	var rec [RecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], op.LinkID)
	rec[8] = uint8(op.Kind)
	rec[9] = uint8(op.RateIndex)
	binary.LittleEndian.PutUint64(rec[10:18], math.Float64bits(op.BER))
	return append(buf, rec[:]...)
}

// AppendOps appends a whole batch.
func AppendOps(buf []byte, ops []linkstore.Op) []byte {
	for _, op := range ops {
		buf = AppendOp(buf, op)
	}
	return buf
}

// DecodeOps parses a batch payload into dst (reused if it has capacity).
// The payload must be a whole number of records; kinds are validated, BERs
// must be finite and non-negative.
func DecodeOps(payload []byte, dst []linkstore.Op) ([]linkstore.Op, error) {
	if len(payload)%RecordSize != 0 {
		return nil, fmt.Errorf("server: payload length %d is not a multiple of the %d-byte record", len(payload), RecordSize)
	}
	n := len(payload) / RecordSize
	if n > MaxBatch {
		return nil, fmt.Errorf("server: batch of %d records exceeds the maximum %d", n, MaxBatch)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		rec := payload[i*RecordSize : (i+1)*RecordSize]
		kind := core.FeedbackKind(rec[8])
		if kind >= core.NumKinds {
			return nil, fmt.Errorf("server: record %d: unknown feedback kind %d", i, rec[8])
		}
		ber := math.Float64frombits(binary.LittleEndian.Uint64(rec[10:18]))
		if math.IsNaN(ber) || math.IsInf(ber, 0) || ber < 0 {
			return nil, fmt.Errorf("server: record %d: invalid BER %v", i, ber)
		}
		dst = append(dst, linkstore.Op{
			LinkID:    binary.LittleEndian.Uint64(rec[0:8]),
			Kind:      kind,
			RateIndex: int32(rec[9]),
			BER:       ber,
		})
	}
	return dst, nil
}
