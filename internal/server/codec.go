package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"softrate/internal/core"
	"softrate/internal/ctl"
	"softrate/internal/linkstore"
)

// Wire format. A request batch is either a v1 or a v2 payload; a response
// is one byte (the chosen rate index) per record, in request order.
// Fixed-size records keep decode branch-free and let a receiver validate
// a batch by length alone.
//
//	v1 request record (18 bytes, little-endian; the whole payload is a
//	bare sequence of records — no header):
//	  [0:8)   linkID  uint64
//	  [8]     kind    uint8  (core.FeedbackKind)
//	  [9]     rate    uint8  (index the frame was sent at)
//	  [10:18) ber     float64 bits
//
//	v2 request payload: one version byte (0x02) followed by 28-byte
//	records carrying the fields the frame-level §6.1 algorithms need
//	(little-endian):
//	  [0:8)   linkID  uint64
//	  [8]     algo    uint8  (ctl.Algo; 0 = server default, selected at
//	                          the link's first touch)
//	  [9]     kind    uint8  (core.FeedbackKind)
//	  [10]    rate    uint8  (index the frame was sent at)
//	  [11]    flags   uint8  (bit 0: delivered; other bits must be zero)
//	  [12:20) ber     float64 bits
//	  [20:24) airtime float32 bits (seconds; 0 = unknown)
//	  [24:28) snr     float32 bits (dB; NaN = unknown)
//
//	v3 ("pipelined") request payload: one version byte (0x03), a uint32
//	little-endian request ID chosen by the client, then v2-format 28-byte
//	records. v3 is the pipelined framing mode: because responses carry the
//	request ID back, a client may keep many batches in flight on one
//	connection instead of running stop-and-wait (bounded by its response-
//	byte budget — see maxPipelineBytes in tcp.go), and the server
//	coalesces response flushes while more requests are already buffered
//	(see tcp.go). The server answers requests of one connection strictly
//	in arrival order — per-link decision order is the order the client
//	submitted, exactly as with one batch in flight.
//
//	response, to a v1/v2 request: a uint32 record count followed by one
//	rate-index byte per record, in request order.
//	response, to a v3 request: the uint32 request ID being answered, then
//	the count and rate bytes as above.
//
// The three framings are self-distinguishing by length alone: a v1
// payload is a multiple of 18 bytes (even), a v2 payload is 1+28·n bytes
// (always odd, ≡1 mod 28), and a v3 payload is 5+28·n bytes (also odd,
// ≡5 mod 28, and 10n+5 ≡ 0 mod 18 has no solution) — so v1 and v2 peers
// keep working byte-for-byte against a v3-capable server. Over TCP each
// payload is prefixed with a uint32 payload length (see tcp.go); the
// in-process API skips framing entirely.

// RecordSize is the encoded size of one v1 feedback record.
const RecordSize = 18

// RecordSizeV2 is the encoded size of one v2 feedback record.
const RecordSizeV2 = 28

// VersionV2 is the v2 payload's leading version byte.
const VersionV2 = 0x02

// VersionV3 is the pipelined request payload's leading version byte.
const VersionV3 = 0x03

// headerSizeV3 is the v3 payload header: version byte + uint32 request ID.
const headerSizeV3 = 5

// flagDelivered is the v2 flags bit reporting an intact frame body.
const flagDelivered = 1 << 0

// MaxBatch bounds the records per batch (and with it the frame size a TCP
// peer can make the server buffer).
const MaxBatch = 65536

// AppendOp appends one encoded v1 feedback record to buf. The wire format
// carries the rate index in one byte; callers must keep Op.RateIndex in
// [0, 255] (Client.Decide enforces this) or the index silently truncates.
// v1 records carry no algorithm, airtime, SNR or delivered flag — encode
// with AppendOpsV2 when those matter.
func AppendOp(buf []byte, op linkstore.Op) []byte {
	var rec [RecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], op.LinkID)
	rec[8] = uint8(op.Kind)
	rec[9] = uint8(op.RateIndex)
	binary.LittleEndian.PutUint64(rec[10:18], math.Float64bits(op.BER))
	return append(buf, rec[:]...)
}

// AppendOps appends a whole batch in the v1 format.
func AppendOps(buf []byte, ops []linkstore.Op) []byte {
	for _, op := range ops {
		buf = AppendOp(buf, op)
	}
	return buf
}

// AppendOpsV2 appends a whole batch in the v2 format: the version byte
// followed by one 28-byte record per op.
func AppendOpsV2(buf []byte, ops []linkstore.Op) []byte {
	return appendRecordsV2(append(buf, VersionV2), ops)
}

// AppendOpsV3 appends a whole batch in the pipelined v3 format: the
// version byte, the request ID, then one 28-byte record per op.
func AppendOpsV3(buf []byte, reqID uint32, ops []linkstore.Op) []byte {
	buf = append(buf, VersionV3)
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], reqID)
	return appendRecordsV2(append(buf, id[:]...), ops)
}

func appendRecordsV2(buf []byte, ops []linkstore.Op) []byte {
	for i := range ops {
		op := &ops[i]
		var rec [RecordSizeV2]byte
		binary.LittleEndian.PutUint64(rec[0:8], op.LinkID)
		rec[8] = uint8(op.Algo)
		rec[9] = uint8(op.Kind)
		rec[10] = uint8(op.RateIndex)
		if op.Delivered {
			rec[11] = flagDelivered
		}
		binary.LittleEndian.PutUint64(rec[12:20], math.Float64bits(op.BER))
		binary.LittleEndian.PutUint32(rec[20:24], math.Float32bits(op.Airtime))
		binary.LittleEndian.PutUint32(rec[24:28], math.Float32bits(op.SNRdB))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeBatch parses a batch payload — v1 or v2, distinguished by length
// parity as documented above — into dst (reused if it has capacity).
// Kinds and algorithms are validated, BERs and airtimes must be finite
// and non-negative, SNRs must not be infinite. v1 records decode with
// Algo = ctl.AlgoDefault, SNRdB = NaN, Airtime = 0 and Delivered = false.
func DecodeBatch(payload []byte, dst []linkstore.Op) ([]linkstore.Op, error) {
	if len(payload)%RecordSize == 0 {
		return decodeV1(payload, dst[:0])
	}
	if payload[0] == VersionV2 && (len(payload)-1)%RecordSizeV2 == 0 {
		return decodeV2(payload[1:], dst[:0])
	}
	return nil, fmt.Errorf("server: payload length %d is neither v1 (multiple of %d) nor v2 (1+multiple of %d with version byte)",
		len(payload), RecordSize, RecordSizeV2)
}

// DecodeOps is the historical name of DecodeBatch; it accepts both
// versions too.
func DecodeOps(payload []byte, dst []linkstore.Op) ([]linkstore.Op, error) {
	return DecodeBatch(payload, dst)
}

// DecodeRequest parses any request payload the server accepts: v1, v2, or
// pipelined v3. For v3 it additionally returns the request ID and
// tagged=true, telling the responder to tag its response frame. The
// length classes of the three framings are disjoint (see the package
// comment), so the dispatch is unambiguous.
func DecodeRequest(payload []byte, dst []linkstore.Op) (ops []linkstore.Op, reqID uint32, tagged bool, err error) {
	if len(payload) >= headerSizeV3 && payload[0] == VersionV3 && (len(payload)-headerSizeV3)%RecordSizeV2 == 0 {
		ops, err = decodeV2(payload[headerSizeV3:], dst[:0])
		return ops, binary.LittleEndian.Uint32(payload[1:5]), true, err
	}
	ops, err = DecodeBatch(payload, dst)
	return ops, 0, false, err
}

// appendDecodeRequest is DecodeRequest in append form: decoded records
// land after dst's existing contents instead of replacing them. The burst
// transports (udp.go, shm.go) use it to gather a whole burst of
// independent datagrams into one ops slice for a single ApplyBatch; the
// MaxBatch bound still applies per payload, not to the accumulated slice.
func appendDecodeRequest(payload []byte, dst []linkstore.Op) (ops []linkstore.Op, reqID uint32, tagged bool, err error) {
	if len(payload) >= headerSizeV3 && payload[0] == VersionV3 && (len(payload)-headerSizeV3)%RecordSizeV2 == 0 {
		ops, err = decodeV2(payload[headerSizeV3:], dst)
		return ops, binary.LittleEndian.Uint32(payload[1:5]), true, err
	}
	if len(payload)%RecordSize == 0 {
		ops, err = decodeV1(payload, dst)
		return ops, 0, false, err
	}
	if payload[0] == VersionV2 && (len(payload)-1)%RecordSizeV2 == 0 {
		ops, err = decodeV2(payload[1:], dst)
		return ops, 0, false, err
	}
	return dst, 0, false, fmt.Errorf("server: payload length %d matches no framing version", len(payload))
}

// decodeV1 and decodeV2 append decoded records to dst; whole-payload
// entry points pass dst[:0].
func decodeV1(payload []byte, dst []linkstore.Op) ([]linkstore.Op, error) {
	n := len(payload) / RecordSize
	if n > MaxBatch {
		return dst, fmt.Errorf("server: batch of %d records exceeds the maximum %d", n, MaxBatch)
	}
	for i := 0; i < n; i++ {
		rec := payload[i*RecordSize : (i+1)*RecordSize]
		kind := core.FeedbackKind(rec[8])
		if kind >= core.NumKinds {
			return dst, fmt.Errorf("server: record %d: unknown feedback kind %d", i, rec[8])
		}
		ber := math.Float64frombits(binary.LittleEndian.Uint64(rec[10:18]))
		if math.IsNaN(ber) || math.IsInf(ber, 0) || ber < 0 {
			return dst, fmt.Errorf("server: record %d: invalid BER %v", i, ber)
		}
		dst = append(dst, linkstore.Op{
			LinkID:    binary.LittleEndian.Uint64(rec[0:8]),
			Kind:      kind,
			RateIndex: int32(rec[9]),
			BER:       ber,
			SNRdB:     float32(math.NaN()),
		})
	}
	return dst, nil
}

func decodeV2(payload []byte, dst []linkstore.Op) ([]linkstore.Op, error) {
	n := len(payload) / RecordSizeV2
	if n > MaxBatch {
		return dst, fmt.Errorf("server: batch of %d records exceeds the maximum %d", n, MaxBatch)
	}
	for i := 0; i < n; i++ {
		rec := payload[i*RecordSizeV2 : (i+1)*RecordSizeV2]
		algo := ctl.Algo(rec[8])
		if algo != ctl.AlgoDefault {
			if _, ok := ctl.Lookup(algo); !ok {
				return dst, fmt.Errorf("server: record %d: unknown algorithm %d", i, rec[8])
			}
		}
		kind := core.FeedbackKind(rec[9])
		if kind >= core.NumKinds {
			return dst, fmt.Errorf("server: record %d: unknown feedback kind %d", i, rec[9])
		}
		if rec[11]&^flagDelivered != 0 {
			return dst, fmt.Errorf("server: record %d: unknown flags %#x", i, rec[11])
		}
		ber := math.Float64frombits(binary.LittleEndian.Uint64(rec[12:20]))
		if math.IsNaN(ber) || math.IsInf(ber, 0) || ber < 0 {
			return dst, fmt.Errorf("server: record %d: invalid BER %v", i, ber)
		}
		airtime := math.Float32frombits(binary.LittleEndian.Uint32(rec[20:24]))
		if airtime != airtime || math.IsInf(float64(airtime), 0) || airtime < 0 {
			return dst, fmt.Errorf("server: record %d: invalid airtime %v", i, airtime)
		}
		snr := math.Float32frombits(binary.LittleEndian.Uint32(rec[24:28]))
		if math.IsInf(float64(snr), 0) {
			return dst, fmt.Errorf("server: record %d: invalid SNR %v", i, snr)
		}
		dst = append(dst, linkstore.Op{
			LinkID:    binary.LittleEndian.Uint64(rec[0:8]),
			Algo:      algo,
			Kind:      kind,
			RateIndex: int32(rec[10]),
			BER:       ber,
			SNRdB:     snr,
			Airtime:   airtime,
			Delivered: rec[11]&flagDelivered != 0,
		})
	}
	return dst, nil
}
